(* SMP tests: per-core PKRU/TLB state, cross-core shootdowns, the
   multi-core scheduler's migration and work stealing, per-core event
   tracks, and the per-core cycle-attribution invariant. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- per-core hardware state ------------------------------------------- *)

let test_per_core_pkru () =
  let cpu = Hw.Cpu.create ~ncores:2 () in
  check_int "two cores" 2 (Hw.Cpu.ncores cpu);
  check_int "boots on core 0" 0 (Hw.Cpu.core_id cpu);
  let p = Hw.Pkru.of_keys [ 3 ] in
  Hw.Cpu.wrpkru cpu p;
  Hw.Cpu.set_core cpu 1;
  (* core 1 has its own register: untouched by core 0's wrpkru *)
  check_bool "core 1 pkru is its own" true (Hw.Cpu.pkru cpu <> p);
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 5 ]);
  Hw.Cpu.set_core cpu 0;
  check_bool "core 0 pkru survived core 1's wrpkru" true (Hw.Cpu.pkru cpu = p)

let test_set_core_validates () =
  let cpu = Hw.Cpu.create ~ncores:2 () in
  Alcotest.check_raises "no core 2"
    (Invalid_argument "Cpu.set_core: no core 2 (machine has 2)") (fun () ->
      Hw.Cpu.set_core cpu 2)

let test_cross_core_shootdown () =
  let mon = Monitor.create ~ncores:2 ~protection:Types.Full () in
  let cpu = Monitor.cpu mon in
  let a =
    Monitor.create_cubicle mon ~name:"A" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  let ctx = Monitor.ctx_for mon a in
  let buf = Api.malloc_page_aligned ctx Hw.Addr.page_size in
  (* warm both cores' TLBs on the page *)
  Monitor.run_as mon a (fun () -> ignore (Api.read_u8 ctx buf));
  Hw.Cpu.set_core cpu 1;
  Monitor.run_as mon a (fun () -> ignore (Api.read_u8 ctx buf));
  Hw.Cpu.set_core cpu 0;
  let before = Hw.Cpu.shootdown_count cpu in
  (* a page-table change must be broadcast: every remote core's TLB
     entry for the page is invalidated *)
  Hw.Cpu.set_page_key cpu (Hw.Addr.page_of buf) (Monitor.cubicle_key mon a);
  check_int "one remote delivery per other core" (before + 1) (Hw.Cpu.shootdown_count cpu)

let test_single_core_no_shootdowns () =
  let mon = Monitor.create ~protection:Types.Full () in
  let a =
    Monitor.create_cubicle mon ~name:"A" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  let ctx = Monitor.ctx_for mon a in
  let buf = Api.malloc_page_aligned ctx Hw.Addr.page_size in
  Hw.Cpu.set_page_key (Monitor.cpu mon) (Hw.Addr.page_of buf) 0;
  check_int "no remote cores, no shootdowns" 0 (Hw.Cpu.shootdown_count (Monitor.cpu mon))

(* --- the multi-core scheduler ------------------------------------------ *)

let mk_smp ncores =
  let mon = Monitor.create ~ncores ~protection:Types.Full () in
  let a =
    Monitor.create_cubicle mon ~name:"A" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2
  in
  (mon, a)

let test_work_stealing () =
  (* pile every thread onto core 0: core 1 is idle and must steal *)
  let mon, a = mk_smp 2 in
  let sched = Libos.Sched.create mon in
  for _ = 1 to 4 do
    ignore
      (Libos.Sched.spawn ~core:0 sched a (fun () ->
           for _ = 1 to 3 do
             Libos.Sched.yield ()
           done))
  done;
  Libos.Sched.run sched;
  check_int "all done" 0 (Libos.Sched.alive sched);
  check_bool "idle core stole work" true (Libos.Sched.steals sched > 0);
  check_bool "stolen threads migrated" true (Libos.Sched.migrations sched > 0)

let test_spawn_spreads_load () =
  (* default placement is least-loaded: two spawns land on two cores *)
  let mon, a = mk_smp 2 in
  let cpu = Monitor.cpu mon in
  let sched = Libos.Sched.create mon in
  let cores = ref [] in
  for _ = 1 to 2 do
    ignore
      (Libos.Sched.spawn sched a (fun () -> cores := Hw.Cpu.core_id cpu :: !cores))
  done;
  Libos.Sched.run sched;
  check_bool "first slices on distinct cores" true
    (List.sort compare !cores = [ 0; 1 ])

let test_scheduler_restores_entry_core () =
  let mon, a = mk_smp 4 in
  let cpu = Monitor.cpu mon in
  let sched = Libos.Sched.create mon in
  for _ = 1 to 8 do
    ignore (Libos.Sched.spawn sched a (fun () -> Libos.Sched.yield ()))
  done;
  Libos.Sched.run sched;
  check_int "machine back on the entry core" 0 (Hw.Cpu.core_id cpu)

let test_ncores_bounded_by_machine () =
  let mon, _ = mk_smp 2 in
  check_bool "ncores > machine rejected" true
    (try
       ignore (Libos.Sched.create ~ncores:3 mon);
       false
     with Invalid_argument _ -> true)

(* --- per-core event tracks --------------------------------------------- *)

let test_per_core_trace_lanes () =
  let cpu = Hw.Cpu.create ~ncores:2 () in
  let bus = Hw.Cpu.bus cpu in
  Telemetry.Bus.set_tracing bus true;
  Telemetry.Bus.emit bus (Telemetry.Event.Mark "on-core-0");
  Hw.Cpu.set_core cpu 1;
  Telemetry.Bus.emit bus (Telemetry.Event.Mark "on-core-1");
  Hw.Cpu.set_core cpu 0;
  Telemetry.Bus.emit bus (Telemetry.Event.Mark "back-on-0");
  let entries = Telemetry.Bus.events bus in
  check_int "emission order preserved across per-core rings" 3 (List.length entries);
  Alcotest.(check (list int))
    "entries carry their core" [ 0; 1; 0 ]
    (List.map (fun (e : Telemetry.Bus.entry) -> e.Telemetry.Bus.core) entries);
  let json =
    Telemetry.Export.trace_json
      ~names:(Printf.sprintf "C%d")
      ~cycles_per_us:Hw.Cost.cycles_per_us entries
  in
  let has needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "core 0 lane (tid 1)" true (has "\"tid\":1");
  check_bool "core 1 lane (tid 2)" true (has "\"tid\":2")

(* --- the attribution invariant, per core -------------------------------- *)

let check_core_invariants mon =
  let cost = Monitor.cost mon in
  let attrib = cost.Hw.Cost.attrib in
  let sum = ref 0 in
  for c = 0 to Hw.Cost.ncores cost - 1 do
    sum := !sum + Hw.Cost.core_cycles cost c;
    check_int
      (Printf.sprintf "attrib core %d == cost core %d" c c)
      (Hw.Cost.core_cycles cost c)
      (Telemetry.Attrib.core_total attrib ~core:c)
  done;
  check_int "per-core counters sum to total" (Hw.Cost.cycles cost) !sum;
  check_int "attribution sums to total" (Hw.Cost.cycles cost)
    (Telemetry.Attrib.total attrib)

let test_attrib_sums_across_cores () =
  let mon, a = mk_smp 4 in
  let b =
    Monitor.create_cubicle mon ~name:"B" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2
  in
  let sched = Libos.Sched.create mon in
  List.iteri
    (fun i cid ->
      ignore
        (Libos.Sched.spawn ~core:(i mod 4) sched cid (fun () ->
             for _ = 1 to 3 do
               Hw.Cost.charge (Monitor.cost mon) (100 * (i + 1));
               Libos.Sched.yield ()
             done)))
    [ a; b; a; b; a; b ];
  Libos.Sched.run sched;
  check_core_invariants mon

(* qcheck: under a random N-core schedule — random core pinning, work
   per slice and yield counts — the per-core cycle counters always sum
   to Cost.cycles, and every core plane of the attribution table equals
   its core's counter. *)
let prop_random_schedules =
  QCheck.Test.make ~name:"attrib: core planes match per-core counters" ~count:60
    QCheck.(
      pair (int_range 1 4)
        (list_of_size (Gen.int_range 1 12) (triple (int_range 0 3) (int_range 1 5) small_nat)))
    (fun (ncores, threads) ->
      let mon, a = mk_smp ncores in
      let cost = Monitor.cost mon in
      let sched = Libos.Sched.create mon in
      List.iter
        (fun (core, yields, work) ->
          ignore
            (Libos.Sched.spawn ~core:(core mod ncores) sched a (fun () ->
                 for _ = 1 to yields do
                   Hw.Cost.charge cost (50 * (work + 1));
                   Libos.Sched.yield ()
                 done)))
        threads;
      Libos.Sched.run sched;
      let attrib = cost.Hw.Cost.attrib in
      let sum = ref 0 in
      let planes_ok = ref true in
      for c = 0 to Hw.Cost.ncores cost - 1 do
        sum := !sum + Hw.Cost.core_cycles cost c;
        if Telemetry.Attrib.core_total attrib ~core:c <> Hw.Cost.core_cycles cost c then
          planes_ok := false
      done;
      !planes_ok
      && !sum = Hw.Cost.cycles cost
      && Telemetry.Attrib.total attrib = Hw.Cost.cycles cost)

let () =
  Alcotest.run "smp"
    [
      ( "per-core hw",
        [
          Alcotest.test_case "per-core pkru" `Quick test_per_core_pkru;
          Alcotest.test_case "set_core validates" `Quick test_set_core_validates;
          Alcotest.test_case "cross-core shootdown" `Quick test_cross_core_shootdown;
          Alcotest.test_case "single-core quiet" `Quick test_single_core_no_shootdowns;
        ] );
      ( "smp scheduler",
        [
          Alcotest.test_case "work stealing" `Quick test_work_stealing;
          Alcotest.test_case "least-loaded spawn" `Quick test_spawn_spreads_load;
          Alcotest.test_case "entry core restored" `Quick test_scheduler_restores_entry_core;
          Alcotest.test_case "ncores bounded" `Quick test_ncores_bounded_by_machine;
        ] );
      ( "per-core telemetry",
        [
          Alcotest.test_case "trace lanes" `Quick test_per_core_trace_lanes;
          Alcotest.test_case "attrib across cores" `Quick test_attrib_sums_across_cores;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_schedules ] );
    ]
