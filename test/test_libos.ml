(* Integration tests for the library OS substrate: the Figure-2 write
   path (app -> VFSCORE -> RAMFS -> LIBC memcpy), the network stack,
   and isolation along those paths. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let is_violation f = match f () with
  | _ -> false
  | exception Hw.Fault.Violation _ -> true

let is_error f = match f () with
  | _ -> false
  | exception Types.Error _ -> true

let app_component () = Builder.component ~heap_pages:64 ~stack_pages:4 "APP"

let boot_fs ?protection ?merge_fs () =
  Libos.Boot.fs_stack ?protection ?merge_fs
    ~extra:[ (app_component (), Types.Isolated) ]
    ()

(* --- write path ------------------------------------------------------------ *)

let test_write_read_roundtrip () =
  let sys = boot_fs () in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  Libos.Fileio.write_file fio "/hello.txt" "Hello, CubicleOS!";
  check_str "roundtrip" "Hello, CubicleOS!" (Libos.Fileio.read_file fio "/hello.txt");
  check_int "one file" 1 (Libos.Ramfs.file_count sys.ramfs)

let test_write_read_all_protections () =
  List.iter
    (fun protection ->
      let sys = boot_fs ~protection () in
      let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
      Libos.Fileio.write_file fio "/data.bin" (String.make 10000 'x');
      check_str
        (Printf.sprintf "roundtrip at %s" (Types.protection_to_string protection))
        (String.make 10000 'x')
        (Libos.Fileio.read_file fio "/data.bin"))
    [ Types.None_; Types.Trampolines; Types.Mpk; Types.Full ]

let test_write_without_window_faults () =
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let fio = Libos.Fileio.make ctx in
  let fd = Libos.Fileio.open_file fio "/f" ~create:true in
  let buf = Api.malloc_page_aligned ctx 64 in
  Api.write_string ctx buf "secret data here";
  (* calling the VFS directly without opening a window: RAMFS's memcpy
     cannot read the app's buffer *)
  check_bool "unwindowed write faults" true
    (is_violation (fun () -> ignore (Api.call ctx "vfs_pwrite" [| fd; buf; 16; 0 |])))

let test_window_only_for_vfs_not_backend_faults () =
  (* The nested-call rule: opening for VFSCORE alone is not enough,
     RAMFS is the cubicle that actually touches the buffer. *)
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let fio = Libos.Fileio.make ctx in
  let fd = Libos.Fileio.open_file fio "/f" ~create:true in
  let buf = Api.malloc_page_aligned ctx 64 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:64;
  Api.window_open ctx wid (Api.cid_of ctx "VFSCORE");
  check_bool "backend window missing faults" true
    (is_violation (fun () -> ignore (Api.call ctx "vfs_pwrite" [| fd; buf; 16; 0 |])))

let test_large_file_spanning_chunks () =
  let sys = boot_fs () in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  let contents = String.init 20000 (fun i -> Char.chr (i mod 251)) in
  Libos.Fileio.write_file fio "/big" contents;
  check_str "20000 bytes across 5 chunks" contents (Libos.Fileio.read_file fio "/big")

let test_sparse_write () =
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let fio = Libos.Fileio.make ctx in
  let fd = Libos.Fileio.open_file fio "/sparse" ~create:true in
  let buf = Api.malloc_page_aligned ctx 16 in
  Api.write_string ctx buf "tail";
  check_int "write at offset" 4 (Libos.Fileio.pwrite fio ~fd ~buf ~len:4 ~off:10000);
  check_int "size includes hole" 10004 (Libos.Fileio.file_size fio fd);
  (* the hole reads back as zeroes *)
  let rbuf = Api.malloc_page_aligned ctx 16 in
  check_int "read from hole" 16 (Libos.Fileio.pread fio ~fd ~buf:rbuf ~len:16 ~off:100);
  check_str "zeroes" (String.make 16 '\000') (Api.read_string ctx rbuf 16)

let test_pread_past_eof () =
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let fio = Libos.Fileio.make ctx in
  let fd = Libos.Fileio.open_file fio "/short" ~create:true in
  let buf = Api.malloc_page_aligned ctx 16 in
  Api.write_string ctx buf "abc";
  ignore (Libos.Fileio.pwrite fio ~fd ~buf ~len:3 ~off:0);
  check_int "read at eof" 0 (Libos.Fileio.pread fio ~fd ~buf ~len:16 ~off:3);
  check_int "read across eof" 2 (Libos.Fileio.pread fio ~fd ~buf ~len:16 ~off:1)

let test_unlink_rename_exists () =
  let sys = boot_fs () in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  Libos.Fileio.write_file fio "/a" "A";
  Libos.Fileio.write_file fio "/b" "B";
  check_bool "a exists" true (Libos.Fileio.exists fio "/a");
  check_int "rename a->c" 0 (Libos.Fileio.rename fio ~old_name:"/a" ~new_name:"/c");
  check_bool "a gone" false (Libos.Fileio.exists fio "/a");
  check_str "c has contents" "A" (Libos.Fileio.read_file fio "/c");
  (* rename over existing replaces *)
  check_int "rename c->b" 0 (Libos.Fileio.rename fio ~old_name:"/c" ~new_name:"/b");
  check_str "b replaced" "A" (Libos.Fileio.read_file fio "/b");
  check_int "unlink b" 0 (Libos.Fileio.unlink fio "/b");
  check_bool "b gone" false (Libos.Fileio.exists fio "/b");
  check_int "unlink missing" Libos.Sysdefs.enoent (Libos.Fileio.unlink fio "/b");
  check_int "no files left" 0 (Libos.Ramfs.file_count sys.ramfs)

let test_truncate_frees_chunks () =
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let fio = Libos.Fileio.make ctx in
  Libos.Fileio.write_file fio "/t" (String.make 20000 'z');
  let fd = Libos.Fileio.open_file fio "/t" ~create:false in
  check_int "truncate" 0 (Libos.Fileio.truncate fio ~fd ~size:100);
  check_int "new size" 100 (Libos.Fileio.file_size fio fd);
  check_int "bytes accounted" 100 (Libos.Ramfs.total_bytes sys.ramfs)

let test_open_missing_fails () =
  let sys = boot_fs () in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  check_int "enoent" Libos.Sysdefs.enoent (Libos.Fileio.open_file fio "/nope" ~create:false)

let test_bad_fd () =
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  check_int "ebadf" Libos.Sysdefs.ebadf (Api.call ctx "vfs_size" [| 99 |]);
  check_int "close ebadf" Libos.Sysdefs.ebadf (Api.call ctx "vfs_close" [| 99 |])

let test_merged_fs_stack () =
  (* Figure 9a: VFSCORE+RAMFS in one cubicle. Same behaviour, fewer
     cross-cubicle edges. *)
  let sys = boot_fs ~merge_fs:true () in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  Libos.Fileio.write_file fio "/m" "merged";
  check_str "roundtrip" "merged" (Libos.Fileio.read_file fio "/m");
  (* no VFSCORE->RAMFS cross-cubicle edge exists *)
  let vfs = Builder.cid sys.built "VFSCORE" in
  check_int "no self edge counted" 0
    (Stats.calls_between (Monitor.stats sys.mon) ~caller:vfs ~callee:vfs)

let test_fig2_call_edges () =
  (* The write path produces the Figure 2 edges: APP->VFSCORE,
     VFSCORE->RAMFS, and shared-cubicle memcpy calls. *)
  let sys = boot_fs () in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  let stats = Monitor.stats sys.mon in
  let before = Stats.snapshot stats in
  Libos.Fileio.write_file fio "/edges" "x";
  let app = Builder.cid sys.built "APP" in
  let vfs = Builder.cid sys.built "VFSCORE" in
  let ramfs = Builder.cid sys.built "RAMFS" in
  let edges = Stats.diff_edges stats ~since:before in
  check_bool "app->vfs" true (List.mem_assoc (app, vfs) edges);
  check_bool "vfs->ramfs" true (List.mem_assoc (vfs, ramfs) edges);
  check_bool "memcpy used" true (Stats.calls_to_sym stats "memcpy" > 0)

(* --- allocator component ---------------------------------------------------- *)

let test_alloc_assigns_to_caller () =
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let page = Api.call ctx "uk_palloc" [| 2 |] in
  check_bool "owned by app" true
    (Monitor.page_owner sys.mon (Hw.Addr.page_of page)
    = Some (Builder.cid sys.built "APP"));
  check_int "free ok" 0 (Api.call ctx "uk_pfree" [| page |])

let test_time_monotonic () =
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let t1 = Api.call ctx "uk_time_ns" [||] in
  let fio = Libos.Fileio.make ctx in
  Libos.Fileio.write_file fio "/tick" "x";
  let t2 = Api.call ctx "uk_time_ns" [||] in
  check_bool "time advanced" true (t2 > t1)

let test_plat_console () =
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  String.iter (fun c -> ignore (Api.call ctx "plat_putc" [| Char.code c |])) "boot ok";
  check_str "console" "boot ok" (Libos.Plat.console_contents sys.plat)

let test_plat_rand_deterministic () =
  let sys1 = boot_fs () and sys2 = boot_fs () in
  let c1 = Libos.Boot.app_ctx sys1 "APP" and c2 = Libos.Boot.app_ctx sys2 "APP" in
  let seq ctx = List.init 5 (fun _ -> Api.call ctx "plat_rand" [||]) in
  check_bool "same sequence" true (seq c1 = seq c2)

(* --- network stack ------------------------------------------------------------ *)

let boot_net ?protection () =
  Libos.Boot.net_stack ?protection ~extra:[ (app_component (), Types.Isolated) ] ()

(* App-side socket helper mirroring Fileio's window discipline. *)
let net_window ctx ~lwip_cid ~ptr ~size f =
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr ~size;
  Api.window_open ctx wid lwip_cid;
  Fun.protect ~finally:(fun () -> Api.window_destroy ctx wid) f

let test_tcp_echo () =
  let sys = boot_net () in
  let netdev = Option.get sys.netdev in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let lwip_cid = Api.cid_of ctx "LWIP" in
  check_int "listen" 0 (Api.call ctx "lwip_listen" [| 80 |]);
  (* host client opens conn 1 and sends a request *)
  Libos.Netdev.host_inject netdev (Libos.Lwip.Frame.encode ~conn:1 ~kind:Syn ~payload:"" ());
  Libos.Netdev.host_inject netdev
    (Libos.Lwip.Frame.encode ~conn:1 ~kind:Data ~payload:"ping" ());
  let conn = Api.call ctx "lwip_accept" [||] in
  check_int "accepted conn" 1 conn;
  let buf = Api.malloc_page_aligned ctx 4096 in
  let n =
    net_window ctx ~lwip_cid ~ptr:buf ~size:4096 (fun () ->
        Api.call ctx "lwip_recv" [| conn; buf; 4096 |])
  in
  check_int "received" 4 n;
  check_str "payload" "ping" (Api.read_string ctx buf 4);
  (* echo it back *)
  let sent =
    net_window ctx ~lwip_cid ~ptr:buf ~size:4096 (fun () ->
        Api.call ctx "lwip_send" [| conn; buf; n |])
  in
  check_int "sent" 4 sent;
  let frames = Libos.Netdev.host_collect netdev in
  check_int "one frame out" 1 (List.length frames);
  let cid, kind, seq, payload = Libos.Lwip.Frame.decode (List.hd frames) in
  check_int "conn id" 1 cid;
  check_bool "data frame" true (kind = Libos.Lwip.Frame.Data);
  check_int "first segment" 0 seq;
  check_str "echo" "ping" payload

let test_tcp_large_transfer_segments () =
  let sys = boot_net () in
  let netdev = Option.get sys.netdev in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let lwip_cid = Api.cid_of ctx "LWIP" in
  ignore (Api.call ctx "lwip_listen" [| 80 |]);
  Libos.Netdev.host_inject netdev (Libos.Lwip.Frame.encode ~conn:7 ~kind:Syn ~payload:"" ());
  let conn = Api.call ctx "lwip_accept" [||] in
  let size = 10_000 in
  let buf = Api.malloc_page_aligned ctx size in
  Api.write_string ctx buf (String.make size 'q');
  let sent =
    net_window ctx ~lwip_cid ~ptr:buf ~size (fun () ->
        Api.call ctx "lwip_send" [| conn; buf; size |])
  in
  check_int "all sent" size sent;
  let frames = Libos.Netdev.host_collect netdev in
  check_int "segments" ((size + Libos.Sysdefs.mss - 1) / Libos.Sysdefs.mss)
    (List.length frames);
  let total =
    List.fold_left
      (fun acc f ->
        let _, _, _, p = Libos.Lwip.Frame.decode f in
        acc + String.length p)
      0 frames
  in
  check_int "all bytes arrive" size total

let test_tcp_fin_semantics () =
  let sys = boot_net () in
  let netdev = Option.get sys.netdev in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let lwip_cid = Api.cid_of ctx "LWIP" in
  ignore (Api.call ctx "lwip_listen" [| 80 |]);
  Libos.Netdev.host_inject netdev (Libos.Lwip.Frame.encode ~conn:2 ~kind:Syn ~payload:"" ());
  Libos.Netdev.host_inject netdev (Libos.Lwip.Frame.encode ~conn:2 ~kind:Data ~payload:"x" ());
  Libos.Netdev.host_inject netdev (Libos.Lwip.Frame.encode ~conn:2 ~kind:Fin ~payload:"" ());
  let conn = Api.call ctx "lwip_accept" [||] in
  let buf = Api.malloc_page_aligned ctx 64 in
  let n =
    net_window ctx ~lwip_cid ~ptr:buf ~size:64 (fun () ->
        Api.call ctx "lwip_recv" [| conn; buf; 64 |])
  in
  check_int "data before fin" 1 n;
  (* after the stream drains, recv reports the closed connection *)
  check_int "ebadf after fin" Libos.Sysdefs.ebadf
    (net_window ctx ~lwip_cid ~ptr:buf ~size:64 (fun () ->
         Api.call ctx "lwip_recv" [| conn; buf; 64 |]))

let test_out_of_order_reassembly () =
  (* frames injected out of order arrive on the stream in order *)
  let sys = boot_net () in
  let netdev = Option.get sys.netdev in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let lwip_cid = Api.cid_of ctx "LWIP" in
  ignore (Api.call ctx "lwip_listen" [| 80 |]);
  Libos.Netdev.host_inject netdev (Libos.Lwip.Frame.encode ~conn:4 ~kind:Syn ~payload:"" ());
  (* sequence 2, then 0, then 1 *)
  Libos.Netdev.host_inject netdev
    (Libos.Lwip.Frame.encode ~seq:2 ~conn:4 ~kind:Data ~payload:"gamma" ());
  Libos.Netdev.host_inject netdev
    (Libos.Lwip.Frame.encode ~seq:0 ~conn:4 ~kind:Data ~payload:"alpha" ());
  Libos.Netdev.host_inject netdev
    (Libos.Lwip.Frame.encode ~seq:1 ~conn:4 ~kind:Data ~payload:"beta!" ());
  let conn = Api.call ctx "lwip_accept" [||] in
  let buf = Api.malloc_page_aligned ctx 64 in
  let collected = Buffer.create 16 in
  let rec drain () =
    let n =
      net_window ctx ~lwip_cid ~ptr:buf ~size:64 (fun () ->
          Api.call ctx "lwip_recv" [| conn; buf; 64 |])
    in
    if n > 0 then begin
      Buffer.add_string collected (Api.read_string ctx buf n);
      drain ()
    end
  in
  drain ();
  check_str "in order despite arrival order" "alphabeta!gamma" (Buffer.contents collected)

let test_reassembly_helper () =
  let r = Libos.Lwip.Reassembly.create () in
  Libos.Lwip.Reassembly.push r ~seq:1 "B";
  check_int "gap parks" 1 (Libos.Lwip.Reassembly.pending r);
  check_str "nothing ready" "" (Libos.Lwip.Reassembly.pop_ready r);
  Libos.Lwip.Reassembly.push r ~seq:0 "A";
  check_str "gap filled" "AB" (Libos.Lwip.Reassembly.pop_ready r);
  (* duplicates of consumed sequences are ignored *)
  Libos.Lwip.Reassembly.push r ~seq:0 "A";
  check_str "dup dropped" "" (Libos.Lwip.Reassembly.pop_ready r)

let test_accept_empty () =
  let sys = boot_net () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  ignore (Api.call ctx "lwip_listen" [| 80 |]);
  check_int "eagain" Libos.Sysdefs.eagain (Api.call ctx "lwip_accept" [||])

let test_netdev_counts_frames () =
  let sys = boot_net () in
  let netdev = Option.get sys.netdev in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  ignore (Api.call ctx "lwip_listen" [| 80 |]);
  Libos.Netdev.host_inject netdev (Libos.Lwip.Frame.encode ~conn:1 ~kind:Syn ~payload:"" ());
  ignore (Api.call ctx "lwip_accept" [||]);
  check_int "rx counted" 1 (Libos.Netdev.rx_frames netdev)

(* --- fileio window/fd hygiene ------------------------------------------------- *)

let test_with_window_rollback_on_failed_setup () =
  (* Regression: with_window's setup can fail halfway — the range is
     added and the VFSCORE open done, then the backend open fails (the
     backend cubicle is gone). The partial grant used to leak into
     every later use of the shared data window; it must be rolled
     back. *)
  let sys = boot_fs () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let fio = Libos.Fileio.make ctx in
  let fd = Libos.Fileio.open_file fio "/f" ~create:true in
  let buf = Api.malloc_page_aligned ctx 4096 in
  let ramfs_cid = Api.cid_of ctx "RAMFS" in
  Monitor.destroy_cubicle sys.Libos.Boot.mon ramfs_cid;
  let is_err () =
    is_error (fun () -> ignore (Libos.Fileio.pread fio ~fd ~buf ~len:64 ~off:0))
  in
  check_bool "pread raises" true (is_err ());
  check_bool "second attempt raises too" true (is_err ());
  let tbl = Monitor.windows_of sys.Libos.Boot.mon ctx.Monitor.self in
  let grants_over_buf =
    List.concat_map
      (fun w -> List.filter (fun r -> r.Window.ptr = buf) w.Window.ranges)
      (Window.live_windows tbl)
  in
  check_int "no leaked grant over the buffer" 0 (List.length grants_over_buf);
  check_bool "no window left open for VFSCORE beyond the path window" true
    (List.length
       (List.filter
          (fun w -> Window.is_open_for w (Api.cid_of ctx "VFSCORE"))
          (Window.live_windows tbl))
    <= 1)

let test_fd_table_reuse () =
  (* Regression: closed descriptors go on a free list instead of the
     table growing forever under open/close churn. *)
  let sys = boot_fs () in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  List.iter (fun p -> Libos.Fileio.write_file fio p "x") [ "/a"; "/b" ];
  let fd1 = Libos.Fileio.open_file fio "/a" ~create:false in
  let fd2 = Libos.Fileio.open_file fio "/b" ~create:false in
  check_bool "distinct fds" true (fd1 <> fd2);
  ignore (Libos.Fileio.close_file fio fd1);
  let fd3 = Libos.Fileio.open_file fio "/b" ~create:false in
  check_int "closed slot recycled" fd1 fd3;
  for _ = 1 to 100 do
    let fd = Libos.Fileio.open_file fio "/a" ~create:false in
    ignore (Libos.Fileio.close_file fio fd)
  done;
  let fd4 = Libos.Fileio.open_file fio "/a" ~create:false in
  check_bool "churn does not grow the table" true (fd4 <= fd2 + 1)

(* --- populate helper ------------------------------------------------------------ *)

let test_populate () =
  let sys = boot_fs () in
  Libos.Boot.populate sys ~as_app:"APP" [ ("/index.html", "<html/>"); ("/a.bin", "AA") ];
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  check_str "file 1" "<html/>" (Libos.Fileio.read_file fio "/index.html");
  check_str "file 2" "AA" (Libos.Fileio.read_file fio "/a.bin")

(* --- frame codec property --------------------------------------------------------- *)

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"lwip frame: encode/decode roundtrip"
    QCheck.(triple (int_bound 100000) (int_bound 100000) (string_of_size (QCheck.Gen.int_bound 1460)))
    (fun (conn, seq, payload) ->
      let f = Libos.Lwip.Frame.encode ~seq ~conn ~kind:Libos.Lwip.Frame.Data ~payload () in
      let c, k, s, p = Libos.Lwip.Frame.decode f in
      c = conn && k = Libos.Lwip.Frame.Data && s = seq && p = payload)

let prop_fs_roundtrip =
  QCheck.Test.make ~count:30 ~name:"fs: arbitrary contents roundtrip"
    QCheck.(string_of_size (QCheck.Gen.int_bound 9000))
    (fun contents ->
      let sys = boot_fs () in
      let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
      Libos.Fileio.write_file fio "/p" contents;
      Libos.Fileio.read_file fio "/p" = contents)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_frame_roundtrip; prop_fs_roundtrip ]

let () =
  Alcotest.run "libos"
    [
      ( "write path",
        [
          Alcotest.test_case "roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "all protections" `Quick test_write_read_all_protections;
          Alcotest.test_case "no window faults" `Quick test_write_without_window_faults;
          Alcotest.test_case "nested window rule" `Quick test_window_only_for_vfs_not_backend_faults;
          Alcotest.test_case "large file" `Quick test_large_file_spanning_chunks;
          Alcotest.test_case "sparse write" `Quick test_sparse_write;
          Alcotest.test_case "pread past eof" `Quick test_pread_past_eof;
          Alcotest.test_case "unlink/rename/exists" `Quick test_unlink_rename_exists;
          Alcotest.test_case "truncate frees" `Quick test_truncate_frees_chunks;
          Alcotest.test_case "open missing" `Quick test_open_missing_fails;
          Alcotest.test_case "bad fd" `Quick test_bad_fd;
          Alcotest.test_case "merged fs" `Quick test_merged_fs_stack;
          Alcotest.test_case "fig2 edges" `Quick test_fig2_call_edges;
          Alcotest.test_case "with_window rollback" `Quick
            test_with_window_rollback_on_failed_setup;
          Alcotest.test_case "fd table reuse" `Quick test_fd_table_reuse;
        ] );
      ( "services",
        [
          Alcotest.test_case "alloc caller" `Quick test_alloc_assigns_to_caller;
          Alcotest.test_case "time monotonic" `Quick test_time_monotonic;
          Alcotest.test_case "console" `Quick test_plat_console;
          Alcotest.test_case "rand deterministic" `Quick test_plat_rand_deterministic;
          Alcotest.test_case "populate" `Quick test_populate;
        ] );
      ( "network",
        [
          Alcotest.test_case "tcp echo" `Quick test_tcp_echo;
          Alcotest.test_case "large transfer" `Quick test_tcp_large_transfer_segments;
          Alcotest.test_case "fin semantics" `Quick test_tcp_fin_semantics;
          Alcotest.test_case "out-of-order frames" `Quick test_out_of_order_reassembly;
          Alcotest.test_case "reassembly helper" `Quick test_reassembly_helper;
          Alcotest.test_case "accept empty" `Quick test_accept_empty;
          Alcotest.test_case "frame counters" `Quick test_netdev_counts_frames;
        ] );
      ("properties", qsuite);
    ]
