(* Tests for the telemetry subsystem: the ring buffer, the
   tracing-never-perturbs-simulation invariant, per-cubicle cycle
   attribution, the exporters, and the property that Core.Stats —
   now a view over the bus's counter plane — agrees with the event
   stream on random workloads. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* --- ring buffer --------------------------------------------------------- *)

let test_ring_basic () =
  let r = Telemetry.Ring.create ~capacity:4 ~dummy:0 in
  check_int "empty" 0 (Telemetry.Ring.length r);
  Telemetry.Ring.push r 1;
  Telemetry.Ring.push r 2;
  check_int "len 2" 2 (Telemetry.Ring.length r);
  Alcotest.(check (list int)) "order" [ 1; 2 ] (Telemetry.Ring.to_list r);
  check_int "no drops" 0 (Telemetry.Ring.dropped r)

let test_ring_wraparound () =
  let r = Telemetry.Ring.create ~capacity:4 ~dummy:0 in
  for i = 1 to 6 do
    Telemetry.Ring.push r i
  done;
  check_int "len capped" 4 (Telemetry.Ring.length r);
  Alcotest.(check (list int)) "oldest overwritten" [ 3; 4; 5; 6 ] (Telemetry.Ring.to_list r);
  check_int "dropped" 2 (Telemetry.Ring.dropped r);
  check_int "total" 6 (Telemetry.Ring.total r)

let test_ring_clear () =
  let r = Telemetry.Ring.create ~capacity:4 ~dummy:0 in
  for i = 1 to 6 do
    Telemetry.Ring.push r i
  done;
  Telemetry.Ring.clear r;
  check_int "len" 0 (Telemetry.Ring.length r);
  check_int "dropped" 0 (Telemetry.Ring.dropped r);
  check_int "total" 0 (Telemetry.Ring.total r);
  Telemetry.Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Telemetry.Ring.to_list r)

(* --- a small two-cubicle world for workload tests ------------------------ *)

type world = {
  w_mon : Monitor.t;
  w_foo : Types.cid;
  w_bar : Types.cid;
  w_ctx : Monitor.ctx;
  w_buf : int;
  w_wid : Types.wid;
}

let build_world () =
  let mon = Monitor.create ~protection:Types.Full () in
  let foo =
    Monitor.create_cubicle mon ~name:"FOO" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2
  in
  let bar =
    Monitor.create_cubicle mon ~name:"BAR" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2
  in
  let sh =
    Monitor.create_cubicle mon ~name:"SH" ~kind:Types.Shared ~heap_pages:4 ~stack_pages:0
  in
  Monitor.register_exports mon bar
    [ { Monitor.sym = "bar_peek"; fn = (fun c a -> Api.read_u8 c a.(0)); stack_bytes = 0 } ];
  Monitor.register_exports mon sh
    [ { Monitor.sym = "sh_fn"; fn = (fun _ _ -> 7); stack_bytes = 0 } ];
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 4096 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:4096;
  { w_mon = mon; w_foo = foo; w_bar = bar; w_ctx = ctx; w_buf = buf; w_wid = wid }

(* One workload step; every branch is total so random sequences run to
   completion whatever state they reach. *)
let apply w op =
  match op mod 6 with
  | 0 -> ( try ignore (Monitor.call w.w_mon ~caller:w.w_foo "bar_peek" [| w.w_buf |]) with _ -> ())
  | 1 -> Api.window_open w.w_ctx w.w_wid w.w_bar
  | 2 -> Api.window_close w.w_ctx w.w_wid w.w_bar
  | 3 -> ignore (Monitor.call w.w_mon ~caller:w.w_foo "sh_fn" [||])
  | 4 ->
      (* touch the buffer as its owner: faults back (trap-and-map) when
         a previous call migrated the page to BAR *)
      Monitor.run_as w.w_mon w.w_foo (fun () -> Api.write_u8 w.w_ctx w.w_buf 1)
  | _ -> ( try ignore (Monitor.call w.w_mon ~caller:w.w_foo "nosuch" [||]) with _ -> ())

let run_workload ?(tracing = false) ops =
  let w = build_world () in
  let bus = Monitor.bus w.w_mon in
  Stats.reset (Monitor.stats w.w_mon);
  Telemetry.Bus.clear_ring bus;
  Telemetry.Bus.set_tracing bus tracing;
  List.iter (apply w) ops;
  w

let some_ops = [ 1; 0; 0; 2; 0; 4; 3; 5; 1; 0; 4; 2; 4; 0; 3 ]

(* --- tracing must not perturb the simulation ----------------------------- *)

let test_cycle_identity () =
  let observe w =
    ( (Hw.Cost.cycles (Monitor.cost w.w_mon), Hw.Cpu.fault_count (Monitor.cpu w.w_mon)),
      (Hw.Cpu.wrpkru_count (Monitor.cpu w.w_mon), Stats.retags (Monitor.stats w.w_mon)) )
  in
  let off = observe (run_workload ~tracing:false some_ops) in
  let on = observe (run_workload ~tracing:true some_ops) in
  Alcotest.(check (pair (pair int int) (pair int int)))
    "tracing on/off bit-identical" off on

(* --- attribution --------------------------------------------------------- *)

let test_attrib_sums_to_cycles () =
  let w = run_workload ~tracing:true some_ops in
  let cost = Monitor.cost w.w_mon in
  check_int "rows sum to Cost.cycles"
    (Hw.Cost.cycles cost)
    (Telemetry.Attrib.total cost.Hw.Cost.attrib);
  (* categories the workload certainly exercised *)
  check_bool "trampoline cycles billed" true
    (Telemetry.Attrib.category_total cost.Hw.Cost.attrib Telemetry.Attrib.Tramp > 0);
  check_bool "MPK cycles billed" true
    (Telemetry.Attrib.category_total cost.Hw.Cost.attrib Telemetry.Attrib.Mpk > 0);
  (* trap-and-map work during calls into BAR is billed to BAR's row *)
  check_bool "BAR row non-empty" true
    (Array.fold_left ( + ) 0 (Telemetry.Attrib.row cost.Hw.Cost.attrib ~cid:w.w_bar) > 0)

let test_attrib_reset () =
  let w = run_workload some_ops in
  let cost = Monitor.cost w.w_mon in
  Hw.Cost.reset cost;
  check_int "attrib reset with cost" 0 (Telemetry.Attrib.total cost.Hw.Cost.attrib);
  check_int "cycles reset" 0 (Hw.Cost.cycles cost)

(* --- Stats as a fold over the bus ---------------------------------------- *)

let count_events bus =
  let calls = ref 0
  and shared = ref 0
  and faults = ref 0
  and retags = ref 0
  and window_ops = ref 0
  and rejected = ref 0
  and returns = ref 0 in
  Telemetry.Bus.iter_events
    (fun { Telemetry.Bus.ev; _ } ->
      match ev with
      | Telemetry.Event.Call _ -> incr calls
      | Telemetry.Event.Return _ -> incr returns
      | Telemetry.Event.Shared_call _ -> incr shared
      | Telemetry.Event.Fault _ -> incr faults
      | Telemetry.Event.Retag _ -> incr retags
      | Telemetry.Event.Window _ -> incr window_ops
      | Telemetry.Event.Rejected _ -> incr rejected
      | _ -> ())
    bus;
  (!calls, !shared, !faults, !retags, !window_ops, !rejected, !returns)

let stats_match_events w =
  let bus = Monitor.bus w.w_mon in
  let st = Monitor.stats w.w_mon in
  let calls, shared, faults, retags, window_ops, rejected, returns = count_events bus in
  Telemetry.Bus.dropped bus = 0
  && calls = Stats.total_calls st
  && returns = calls
  && shared = Stats.shared_calls st
  && faults = Stats.faults st
  && retags = Stats.retags st
  && window_ops = Stats.window_ops st
  && rejected = Stats.rejected st

let test_stats_equal_events () =
  let w = run_workload ~tracing:true some_ops in
  check_bool "counters equal event stream" true (stats_match_events w)

let prop_stats_equal_events =
  QCheck.Test.make ~count:60
    ~name:"stats rebuilt from the event stream equal the counter plane"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) (int_range 0 5)))
    (fun ops -> stats_match_events (run_workload ~tracing:true ops))

(* --- TLB counters are read through, not synced --------------------------- *)

let test_tlb_read_through () =
  let w = build_world () in
  let cpu = Monitor.cpu w.w_mon in
  (* take the Stats value FIRST; reads later must still see live data *)
  let st = Monitor.stats w.w_mon in
  Hw.Tlb.reset_counters (Hw.Cpu.tlb cpu);
  Monitor.run_as w.w_mon w.w_foo (fun () ->
      for i = 0 to 999 do
        ignore (Hw.Cpu.read_u8 cpu (w.w_buf + (i land 0xFFF)))
      done);
  check_bool "hits visible without sync" true (Stats.tlb_hits st > 0);
  check_int "hits equal the machine's" (Hw.Tlb.hits (Hw.Cpu.tlb cpu)) (Stats.tlb_hits st);
  check_int "misses equal the machine's" (Hw.Tlb.misses (Hw.Cpu.tlb cpu)) (Stats.tlb_misses st)

(* --- standalone Stats (no machine) --------------------------------------- *)

let test_standalone_stats_tlb_zero () =
  let s = Stats.create () in
  check_int "tlb hits 0 without machine" 0 (Stats.tlb_hits s);
  Alcotest.(check (float 0.0)) "hit rate 0" 0.0 (Stats.tlb_hit_rate s)

(* --- bus plumbing --------------------------------------------------------- *)

let test_bus_off_captures_nothing () =
  let w = run_workload ~tracing:false some_ops in
  let bus = Monitor.bus w.w_mon in
  check_int "nothing captured" 0 (Telemetry.Bus.captured bus);
  check_int "nothing emitted" 0 (Telemetry.Bus.total_emitted bus);
  (* ...but the counter plane saw everything *)
  check_bool "counters alive" true (Stats.total_calls (Monitor.stats w.w_mon) > 0)

let test_bus_timestamps_monotone () =
  let w = run_workload ~tracing:true some_ops in
  let last = ref min_int in
  let ok = ref true in
  Telemetry.Bus.iter_events
    (fun { Telemetry.Bus.at; _ } ->
      if at < !last then ok := false;
      last := at)
    (Monitor.bus w.w_mon);
  check_bool "cycle timestamps non-decreasing" true !ok

(* --- exporters ------------------------------------------------------------ *)

let test_export_trace_json () =
  let w = run_workload ~tracing:true some_ops in
  let entries = Telemetry.Bus.events (Monitor.bus w.w_mon) in
  let names cid = Monitor.cubicle_name w.w_mon cid in
  let json = Telemetry.Export.trace_json ~names ~cycles_per_us:2200. entries in
  check_bool "has traceEvents" true
    (String.length json > 0
    && contains_sub json "\"traceEvents\""
    && contains_sub json "\"ph\":\"B\""
    && contains_sub json "\"ph\":\"E\"");
  (* crude balance check: equally many begin and end slices *)
  let count affix =
    let n = ref 0 in
    let len = String.length affix in
    for i = 0 to String.length json - len do
      if String.sub json i len = affix then incr n
    done;
    !n
  in
  check_int "B/E slices balanced" (count "\"ph\":\"B\"") (count "\"ph\":\"E\"")

let test_export_folded () =
  let w = run_workload ~tracing:true some_ops in
  let entries = Telemetry.Bus.events (Monitor.bus w.w_mon) in
  let names cid = Monitor.cubicle_name w.w_mon cid in
  let folded = Telemetry.Export.folded_stacks ~names entries in
  let lines = String.split_on_char '\n' folded |> List.filter (fun l -> l <> "") in
  check_bool "has stacks" true (List.length lines > 0);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "malformed folded line: %s" line
      | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          check_bool "positive cycle count" true (int_of_string v > 0))
    lines;
  check_bool "a BAR frame appears" true
    (List.exists (fun l -> contains_sub l "BAR:bar_peek") lines)

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wrap-around + drops" `Quick test_ring_wraparound;
          Alcotest.test_case "clear" `Quick test_ring_clear;
        ] );
      ( "identity",
        [ Alcotest.test_case "tracing on/off bit-identical" `Quick test_cycle_identity ] );
      ( "attribution",
        [
          Alcotest.test_case "rows sum to Cost.cycles" `Quick test_attrib_sums_to_cycles;
          Alcotest.test_case "reset" `Quick test_attrib_reset;
        ] );
      ( "stats-vs-events",
        [
          Alcotest.test_case "fixed workload" `Quick test_stats_equal_events;
          QCheck_alcotest.to_alcotest prop_stats_equal_events;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "read-through, no sync" `Quick test_tlb_read_through;
          Alcotest.test_case "standalone stats" `Quick test_standalone_stats_tlb_zero;
        ] );
      ( "bus",
        [
          Alcotest.test_case "off captures nothing" `Quick test_bus_off_captures_nothing;
          Alcotest.test_case "timestamps monotone" `Quick test_bus_timestamps_monotone;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace json" `Quick test_export_trace_json;
          Alcotest.test_case "folded stacks" `Quick test_export_folded;
        ] );
    ]
