(* Tests for the telemetry subsystem: the ring buffer, the
   tracing-never-perturbs-simulation invariant, per-cubicle cycle
   attribution, the exporters, and the property that Core.Stats —
   now a view over the bus's counter plane — agrees with the event
   stream on random workloads. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* --- ring buffer --------------------------------------------------------- *)

let test_ring_basic () =
  let r = Telemetry.Ring.create ~capacity:4 ~dummy:0 in
  check_int "empty" 0 (Telemetry.Ring.length r);
  Telemetry.Ring.push r 1;
  Telemetry.Ring.push r 2;
  check_int "len 2" 2 (Telemetry.Ring.length r);
  Alcotest.(check (list int)) "order" [ 1; 2 ] (Telemetry.Ring.to_list r);
  check_int "no drops" 0 (Telemetry.Ring.dropped r)

let test_ring_wraparound () =
  let r = Telemetry.Ring.create ~capacity:4 ~dummy:0 in
  for i = 1 to 6 do
    Telemetry.Ring.push r i
  done;
  check_int "len capped" 4 (Telemetry.Ring.length r);
  Alcotest.(check (list int)) "oldest overwritten" [ 3; 4; 5; 6 ] (Telemetry.Ring.to_list r);
  check_int "dropped" 2 (Telemetry.Ring.dropped r);
  check_int "total" 6 (Telemetry.Ring.total r)

let test_ring_clear () =
  let r = Telemetry.Ring.create ~capacity:4 ~dummy:0 in
  for i = 1 to 6 do
    Telemetry.Ring.push r i
  done;
  Telemetry.Ring.clear r;
  check_int "len" 0 (Telemetry.Ring.length r);
  check_int "dropped" 0 (Telemetry.Ring.dropped r);
  check_int "total" 0 (Telemetry.Ring.total r);
  Telemetry.Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Telemetry.Ring.to_list r)

(* --- a small two-cubicle world for workload tests ------------------------ *)

type world = {
  w_mon : Monitor.t;
  w_foo : Types.cid;
  w_bar : Types.cid;
  w_ctx : Monitor.ctx;
  w_buf : int;
  w_wid : Types.wid;
}

let build_world () =
  let mon = Monitor.create ~protection:Types.Full () in
  let foo =
    Monitor.create_cubicle mon ~name:"FOO" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2
  in
  let bar =
    Monitor.create_cubicle mon ~name:"BAR" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2
  in
  let sh =
    Monitor.create_cubicle mon ~name:"SH" ~kind:Types.Shared ~heap_pages:4 ~stack_pages:0
  in
  Monitor.register_exports mon bar
    [ { Monitor.sym = "bar_peek"; fn = (fun c a -> Api.read_u8 c a.(0)); stack_bytes = 0 } ];
  Monitor.register_exports mon sh
    [ { Monitor.sym = "sh_fn"; fn = (fun _ _ -> 7); stack_bytes = 0 } ];
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 4096 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:4096;
  { w_mon = mon; w_foo = foo; w_bar = bar; w_ctx = ctx; w_buf = buf; w_wid = wid }

(* One workload step; every branch is total so random sequences run to
   completion whatever state they reach. *)
let apply w op =
  match op mod 6 with
  | 0 -> ( try ignore (Monitor.call w.w_mon ~caller:w.w_foo "bar_peek" [| w.w_buf |]) with _ -> ())
  | 1 -> Api.window_open w.w_ctx w.w_wid w.w_bar
  | 2 -> Api.window_close w.w_ctx w.w_wid w.w_bar
  | 3 -> ignore (Monitor.call w.w_mon ~caller:w.w_foo "sh_fn" [||])
  | 4 ->
      (* touch the buffer as its owner: faults back (trap-and-map) when
         a previous call migrated the page to BAR *)
      Monitor.run_as w.w_mon w.w_foo (fun () -> Api.write_u8 w.w_ctx w.w_buf 1)
  | _ -> ( try ignore (Monitor.call w.w_mon ~caller:w.w_foo "nosuch" [||]) with _ -> ())

let run_workload ?(tracing = false) ?(sample = 1) ?stream_into ?(latency = false) ops =
  let w = build_world () in
  let bus = Monitor.bus w.w_mon in
  Stats.reset (Monitor.stats w.w_mon);
  Telemetry.Bus.clear_ring bus;
  Telemetry.Bus.set_tracing bus tracing;
  if sample > 1 then Telemetry.Bus.set_sampling bus ~every:sample;
  Option.iter
    (fun buf ->
      let st =
        Telemetry.Export.Stream.create
          ~names:(fun cid -> Monitor.cubicle_name w.w_mon cid)
          ~cycles_per_us:2200. ~write:(Buffer.add_string buf) ()
      in
      Telemetry.Bus.set_sink bus (Some (Telemetry.Export.Stream.entry st)))
    stream_into;
  if latency then Telemetry.Bus.set_latency bus (Some (Telemetry.Latency.create ()));
  List.iter (apply w) ops;
  w

let some_ops = [ 1; 0; 0; 2; 0; 4; 3; 5; 1; 0; 4; 2; 4; 0; 3 ]

(* --- tracing must not perturb the simulation ----------------------------- *)

let test_cycle_identity () =
  let observe w =
    ( (Hw.Cost.cycles (Monitor.cost w.w_mon), Hw.Cpu.fault_count (Monitor.cpu w.w_mon)),
      (Hw.Cpu.wrpkru_count (Monitor.cpu w.w_mon), Stats.retags (Monitor.stats w.w_mon)) )
  in
  let off = observe (run_workload ~tracing:false some_ops) in
  let on = observe (run_workload ~tracing:true some_ops) in
  let sampled = observe (run_workload ~tracing:true ~sample:4 some_ops) in
  let streamed =
    observe (run_workload ~tracing:true ~stream_into:(Buffer.create 4096) some_ops)
  in
  let with_latency = observe (run_workload ~tracing:true ~latency:true some_ops) in
  let chk what = Alcotest.(check (pair (pair int int) (pair int int))) what off in
  chk "tracing on/off bit-identical" on;
  chk "sampled tracing bit-identical" sampled;
  chk "streamed tracing bit-identical" streamed;
  chk "latency sink bit-identical" with_latency

(* --- attribution --------------------------------------------------------- *)

let test_attrib_sums_to_cycles () =
  let w = run_workload ~tracing:true some_ops in
  let cost = Monitor.cost w.w_mon in
  check_int "rows sum to Cost.cycles"
    (Hw.Cost.cycles cost)
    (Telemetry.Attrib.total cost.Hw.Cost.attrib);
  (* categories the workload certainly exercised *)
  check_bool "trampoline cycles billed" true
    (Telemetry.Attrib.category_total cost.Hw.Cost.attrib Telemetry.Attrib.Tramp > 0);
  check_bool "MPK cycles billed" true
    (Telemetry.Attrib.category_total cost.Hw.Cost.attrib Telemetry.Attrib.Mpk > 0);
  (* trap-and-map work during calls into BAR is billed to BAR's row *)
  check_bool "BAR row non-empty" true
    (Array.fold_left ( + ) 0 (Telemetry.Attrib.row cost.Hw.Cost.attrib ~cid:w.w_bar) > 0)

let test_attrib_reset () =
  let w = run_workload some_ops in
  let cost = Monitor.cost w.w_mon in
  Hw.Cost.reset cost;
  check_int "attrib reset with cost" 0 (Telemetry.Attrib.total cost.Hw.Cost.attrib);
  check_int "cycles reset" 0 (Hw.Cost.cycles cost)

(* --- Stats as a fold over the bus ---------------------------------------- *)

let count_events bus =
  let calls = ref 0
  and shared = ref 0
  and faults = ref 0
  and retags = ref 0
  and window_ops = ref 0
  and rejected = ref 0
  and returns = ref 0 in
  Telemetry.Bus.iter_events
    (fun { Telemetry.Bus.ev; _ } ->
      match ev with
      | Telemetry.Event.Call _ -> incr calls
      | Telemetry.Event.Return _ -> incr returns
      | Telemetry.Event.Shared_call _ -> incr shared
      | Telemetry.Event.Fault _ -> incr faults
      | Telemetry.Event.Retag _ -> incr retags
      | Telemetry.Event.Window _ -> incr window_ops
      | Telemetry.Event.Rejected _ -> incr rejected
      | _ -> ())
    bus;
  (!calls, !shared, !faults, !retags, !window_ops, !rejected, !returns)

let stats_match_events w =
  let bus = Monitor.bus w.w_mon in
  let st = Monitor.stats w.w_mon in
  let calls, shared, faults, retags, window_ops, rejected, returns = count_events bus in
  Telemetry.Bus.dropped bus = 0
  && calls = Stats.total_calls st
  && returns = calls
  && shared = Stats.shared_calls st
  && faults = Stats.faults st
  && retags = Stats.retags st
  && window_ops = Stats.window_ops st
  && rejected = Stats.rejected st

let test_stats_equal_events () =
  let w = run_workload ~tracing:true some_ops in
  check_bool "counters equal event stream" true (stats_match_events w)

let prop_stats_equal_events =
  QCheck.Test.make ~count:60
    ~name:"stats rebuilt from the event stream equal the counter plane"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) (int_range 0 5)))
    (fun ops -> stats_match_events (run_workload ~tracing:true ops))

(* --- TLB counters are read through, not synced --------------------------- *)

let test_tlb_read_through () =
  let w = build_world () in
  let cpu = Monitor.cpu w.w_mon in
  (* take the Stats value FIRST; reads later must still see live data *)
  let st = Monitor.stats w.w_mon in
  Hw.Tlb.reset_counters (Hw.Cpu.tlb cpu);
  Monitor.run_as w.w_mon w.w_foo (fun () ->
      for i = 0 to 999 do
        ignore (Hw.Cpu.read_u8 cpu (w.w_buf + (i land 0xFFF)))
      done);
  check_bool "hits visible without sync" true (Stats.tlb_hits st > 0);
  check_int "hits equal the machine's" (Hw.Tlb.hits (Hw.Cpu.tlb cpu)) (Stats.tlb_hits st);
  check_int "misses equal the machine's" (Hw.Tlb.misses (Hw.Cpu.tlb cpu)) (Stats.tlb_misses st)

(* --- standalone Stats (no machine) --------------------------------------- *)

let test_standalone_stats_tlb_zero () =
  let s = Stats.create () in
  check_int "tlb hits 0 without machine" 0 (Stats.tlb_hits s);
  Alcotest.(check (float 0.0)) "hit rate 0" 0.0 (Stats.tlb_hit_rate s)

(* --- bus plumbing --------------------------------------------------------- *)

let test_bus_off_captures_nothing () =
  let w = run_workload ~tracing:false some_ops in
  let bus = Monitor.bus w.w_mon in
  check_int "nothing captured" 0 (Telemetry.Bus.captured bus);
  check_int "nothing emitted" 0 (Telemetry.Bus.total_emitted bus);
  (* ...but the counter plane saw everything *)
  check_bool "counters alive" true (Stats.total_calls (Monitor.stats w.w_mon) > 0)

let test_bus_timestamps_monotone () =
  let w = run_workload ~tracing:true some_ops in
  let last = ref min_int in
  let ok = ref true in
  Telemetry.Bus.iter_events
    (fun { Telemetry.Bus.at; _ } ->
      if at < !last then ok := false;
      last := at)
    (Monitor.bus w.w_mon);
  check_bool "cycle timestamps non-decreasing" true !ok

(* --- exporters ------------------------------------------------------------ *)

let test_export_trace_json () =
  let w = run_workload ~tracing:true some_ops in
  let entries = Telemetry.Bus.events (Monitor.bus w.w_mon) in
  let names cid = Monitor.cubicle_name w.w_mon cid in
  let json = Telemetry.Export.trace_json ~names ~cycles_per_us:2200. entries in
  check_bool "has traceEvents" true
    (String.length json > 0
    && contains_sub json "\"traceEvents\""
    && contains_sub json "\"ph\":\"B\""
    && contains_sub json "\"ph\":\"E\"");
  (* crude balance check: equally many begin and end slices *)
  let count affix =
    let n = ref 0 in
    let len = String.length affix in
    for i = 0 to String.length json - len do
      if String.sub json i len = affix then incr n
    done;
    !n
  in
  check_int "B/E slices balanced" (count "\"ph\":\"B\"") (count "\"ph\":\"E\"")

let test_export_folded () =
  let w = run_workload ~tracing:true some_ops in
  let entries = Telemetry.Bus.events (Monitor.bus w.w_mon) in
  let names cid = Monitor.cubicle_name w.w_mon cid in
  let folded = Telemetry.Export.folded_stacks ~names entries in
  let lines = String.split_on_char '\n' folded |> List.filter (fun l -> l <> "") in
  check_bool "has stacks" true (List.length lines > 0);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "malformed folded line: %s" line
      | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          check_bool "positive cycle count" true (int_of_string v > 0))
    lines;
  check_bool "a BAR frame appears" true
    (List.exists (fun l -> contains_sub l "BAR:bar_peek") lines)

(* --- ring vs a list model (wraparound property) --------------------------- *)

(* Replays an arbitrary push/clear sequence against plain-list semantics
   of a bounded ring: to_list, iter, length, total and dropped must all
   agree, whatever the wrap pattern. op = 0 clears, anything else
   pushes. *)
let prop_ring_model =
  QCheck.Test.make ~count:300 ~name:"ring agrees with a list model under push/clear"
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 8) (list_size (int_range 0 120) (int_range 0 100))))
    (fun (capacity, ops) ->
      let r = Telemetry.Ring.create ~capacity ~dummy:(-1) in
      let model = ref [] (* newest first *) and pushed = ref 0 in
      List.iter
        (fun op ->
          if op = 0 then begin
            Telemetry.Ring.clear r;
            model := [];
            pushed := 0
          end
          else begin
            Telemetry.Ring.push r op;
            model := op :: !model;
            incr pushed
          end)
        ops;
      let kept = List.rev (List.filteri (fun i _ -> i < capacity) !model) in
      let via_iter = ref [] in
      Telemetry.Ring.iter (fun v -> via_iter := v :: !via_iter) r;
      Telemetry.Ring.to_list r = kept
      && List.rev !via_iter = kept
      && Telemetry.Ring.length r = List.length kept
      && Telemetry.Ring.total r = !pushed
      && Telemetry.Ring.dropped r = !pushed - List.length kept)

(* --- histograms ----------------------------------------------------------- *)

let test_hist_empty () =
  let h = Telemetry.Hist.create () in
  check_int "count" 0 (Telemetry.Hist.count h);
  check_int "sum" 0 (Telemetry.Hist.sum h);
  check_int "min" 0 (Telemetry.Hist.min_value h);
  check_int "max" 0 (Telemetry.Hist.max_value h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Telemetry.Hist.mean h);
  List.iter
    (fun q -> check_int "percentile of empty" 0 (Telemetry.Hist.percentile h q))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_hist_single () =
  let h = Telemetry.Hist.create () in
  Telemetry.Hist.add h 12345;
  check_int "count" 1 (Telemetry.Hist.count h);
  check_int "min" 12345 (Telemetry.Hist.min_value h);
  check_int "max" 12345 (Telemetry.Hist.max_value h);
  (* clamping into [min,max] makes a single sample exact everywhere *)
  List.iter
    (fun q -> check_int "single sample exact" 12345 (Telemetry.Hist.percentile h q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_hist_boundaries () =
  (* values below 16 are exact, and every 16-sub-bucket boundary above
     is its bucket's lower bound — both report exactly even when a far
     larger sample keeps the clamp from helping *)
  List.iter
    (fun v ->
      let h = Telemetry.Hist.create () in
      Telemetry.Hist.add h v;
      Telemetry.Hist.add h v;
      Telemetry.Hist.add h 1_000_000;
      check_int (Printf.sprintf "p50 of boundary %d" v) v (Telemetry.Hist.percentile h 0.5))
    [ 0; 1; 15; 16; 17; 31; 32; 48; 64; 96; 1024; 1088; 65536 ];
  (* negative samples clamp to 0 but are counted *)
  let h = Telemetry.Hist.create () in
  Telemetry.Hist.add h (-5);
  check_int "negative clamps to 0" 0 (Telemetry.Hist.percentile h 1.0);
  check_int "still counted" 1 (Telemetry.Hist.count h);
  (* percentiles are monotone in q and bounded by min/max *)
  let h = Telemetry.Hist.create () in
  List.iter (Telemetry.Hist.add h) [ 3; 700; 41; 90_000; 41; 8; 555_555; 64 ];
  let last = ref 0 in
  List.iter
    (fun q ->
      let p = Telemetry.Hist.percentile h q in
      check_bool "monotone" true (p >= !last);
      check_bool "within [min,max]" true
        (p >= Telemetry.Hist.min_value h && p <= Telemetry.Hist.max_value h);
      last := p)
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ];
  check_int "p0 is min" (Telemetry.Hist.min_value h) (Telemetry.Hist.percentile h 0.0);
  check_int "p100 is max" (Telemetry.Hist.max_value h) (Telemetry.Hist.percentile h 1.0)

(* Any percentile of a log-bucketed histogram is the lower bound of the
   right bucket: never above the true sample, never more than one
   sub-bucket width (1/16th of the bucket's power of two) below it. *)
let prop_hist_quantisation =
  QCheck.Test.make ~count:300 ~name:"median within one sub-bucket of the true sample"
    (QCheck.make QCheck.Gen.(int_range 0 2_000_000))
    (fun v ->
      let h = Telemetry.Hist.create () in
      Telemetry.Hist.add h v;
      Telemetry.Hist.add h v;
      Telemetry.Hist.add h 4_000_000;
      let p = Telemetry.Hist.percentile h 0.5 in
      p <= v && float_of_int (v - p) <= Float.max 1. (float_of_int v /. 16.))

let test_export_hdr () =
  (* empty histogram: header only, no rows, no footer *)
  let empty = Telemetry.Export.hdr (Telemetry.Hist.create ()) in
  check_bool "empty has header" true
    (String.length empty > 0
    && String.sub empty 0 12 = "       Value");
  check_int "empty has one line" 2 (List.length (String.split_on_char '\n' empty) - 1);
  let h = Telemetry.Hist.create () in
  List.iter (Telemetry.Hist.add h) [ 3; 700; 41; 90_000; 41; 8; 555_555; 64 ];
  let out = Telemetry.Export.hdr h in
  let lines = String.split_on_char '\n' out in
  let rows =
    List.filter
      (fun l -> String.length l > 0 && l.[0] = ' ' && String.trim l <> "" && l.[7] <> 'V')
      lines
  in
  (* one cumulative row per non-empty bucket; 8 distinct-bucket samples
     minus the two 41s sharing a bucket *)
  check_int "one row per non-empty bucket" 7 (List.length rows);
  (* cumulative TotalCount is monotone and ends at the sample count *)
  let counts =
    List.map
      (fun l ->
        match String.split_on_char ' ' l |> List.filter (fun s -> s <> "") with
        | _value :: _q :: total :: _ -> int_of_string total
        | _ -> Alcotest.fail ("unparseable hdr row: " ^ l))
      rows
  in
  let last = ref 0 in
  List.iter
    (fun c ->
      check_bool "TotalCount monotone" true (c > !last);
      last := c)
    counts;
  check_int "final TotalCount is the sample count" (Telemetry.Hist.count h) !last;
  (* the final row reports the exact tracked maximum at percentile 1.0 *)
  let final = List.nth rows (List.length rows - 1) in
  (match String.split_on_char ' ' final |> List.filter (fun s -> s <> "") with
  | value :: q :: _ ->
      check_bool "final value is max" true
        (float_of_string value = float_of_int (Telemetry.Hist.max_value h));
      check_bool "final percentile is 1.0" true (float_of_string q = 1.0)
  | _ -> Alcotest.fail "unparseable final hdr row");
  (* footer carries Max / Total count matching the histogram *)
  check_bool "footer mean" true
    (List.exists (fun l -> String.length l > 7 && String.sub l 0 7 = "#[Mean ") lines);
  let max_line =
    List.find (fun l -> String.length l > 6 && String.sub l 0 6 = "#[Max ") lines
  in
  check_bool "footer max and total" true
    (let parts =
       String.split_on_char ' ' max_line |> List.filter (fun s -> s <> "")
     in
     List.exists
       (fun p ->
         p = Printf.sprintf "%.3f," (float_of_int (Telemetry.Hist.max_value h)))
       parts
     && List.exists (fun p -> p = Printf.sprintf "%d]" (Telemetry.Hist.count h)) parts)

(* --- event-plane sampling ------------------------------------------------- *)

let test_bus_sampling () =
  let bus = Telemetry.Bus.create ~capacity:64 () in
  Telemetry.Bus.set_tracing bus true;
  Telemetry.Bus.set_sampling bus ~every:3;
  for i = 1 to 10 do
    Telemetry.Bus.emit bus (Telemetry.Event.Mark (string_of_int i))
  done;
  check_int "captured 1-in-3" 4 (Telemetry.Bus.captured bus);
  check_int "sampled out" 6 (Telemetry.Bus.sampled_out bus);
  (* deterministic: the first emission after set_sampling is kept *)
  (match Telemetry.Bus.events bus with
  | { Telemetry.Bus.ev = Telemetry.Event.Mark "1"; _ } :: _ -> ()
  | _ -> Alcotest.fail "first emission after set_sampling was not kept");
  Alcotest.check_raises "every < 1 rejected"
    (Invalid_argument "Bus.set_sampling: every must be >= 1") (fun () ->
      Telemetry.Bus.set_sampling bus ~every:0);
  (* clear_ring resets the stride so captures stay deterministic *)
  Telemetry.Bus.clear_ring bus;
  check_int "sampled_out cleared" 0 (Telemetry.Bus.sampled_out bus);
  Telemetry.Bus.emit bus (Telemetry.Event.Mark "fresh");
  check_int "first post-clear emission kept" 1 (Telemetry.Bus.captured bus);
  (* counter plane ignores sampling *)
  let w = run_workload ~tracing:true ~sample:1000 some_ops in
  check_bool "counters exact under sampling" true
    (Stats.total_calls (Monitor.stats w.w_mon) > 0
    && Telemetry.Bus.captured (Monitor.bus w.w_mon)
       < Telemetry.Bus.sampled_out (Monitor.bus w.w_mon)
         + Telemetry.Bus.captured (Monitor.bus w.w_mon))

(* --- latency plane -------------------------------------------------------- *)

let latency_counts_equal_edges w =
  let bus = Monitor.bus w.w_mon in
  match Telemetry.Bus.latency bus with
  | None -> Alcotest.fail "latency sink missing"
  | Some lat ->
      check_int "no unmatched returns" 0 (Telemetry.Latency.unmatched lat);
      check_int "none in flight" 0 (Telemetry.Latency.in_flight lat);
      let edges = Telemetry.Bus.edges bus in
      check_bool "workload produced edges" true (edges <> []);
      List.iter
        (fun ((caller, callee), n) ->
          let c =
            match Telemetry.Latency.edge lat ~caller ~callee with
            | Some h -> Telemetry.Hist.count h
            | None -> 0
          in
          check_int (Printf.sprintf "edge %d->%d count" caller callee) n c)
        edges;
      check_int "observed = sum of edges"
        (List.fold_left (fun a (_, n) -> a + n) 0 edges)
        (Telemetry.Latency.observed lat)

let test_latency_counts () = latency_counts_equal_edges (run_workload ~latency:true some_ops)

let test_latency_counts_sampled () =
  (* the latency plane is fed from the counter plane, so event-plane
     sampling must not cost it a single sample *)
  latency_counts_equal_edges (run_workload ~tracing:true ~sample:7 ~latency:true some_ops)

let test_latency_positive () =
  let w = run_workload ~latency:true some_ops in
  match Telemetry.Bus.latency (Monitor.bus w.w_mon) with
  | None -> Alcotest.fail "latency sink missing"
  | Some lat ->
      List.iter
        (fun ((_, _), h) ->
          check_bool "call latency is positive cycles" true (Telemetry.Hist.min_value h > 0))
        (Telemetry.Latency.edges lat)

(* --- streamed export ------------------------------------------------------ *)

let count_sub haystack needle =
  let n = ref 0 in
  let len = String.length needle in
  for i = 0 to String.length haystack - len do
    if String.sub haystack i len = needle then incr n
  done;
  !n

let test_stream_matches_ring_replay () =
  let w = run_workload ~tracing:true some_ops in
  let entries = Telemetry.Bus.events (Monitor.bus w.w_mon) in
  let names cid = Monitor.cubicle_name w.w_mon cid in
  let buf = Buffer.create 4096 in
  let st =
    Telemetry.Export.Stream.create ~names ~cycles_per_us:2200.
      ~write:(Buffer.add_string buf) ()
  in
  List.iter (Telemetry.Export.Stream.entry st) entries;
  Telemetry.Export.Stream.finish st;
  Telemetry.Export.Stream.finish st (* idempotent *);
  Alcotest.(check string) "byte-identical to trace_json"
    (Telemetry.Export.trace_json ~names ~cycles_per_us:2200. entries)
    (Buffer.contents buf);
  Alcotest.check_raises "entry after finish rejected"
    (Invalid_argument "Export.Stream.entry: stream already finished") (fun () ->
      Telemetry.Export.Stream.entry st (List.hd entries))

let test_stream_live_sink_matches_ring () =
  let buf = Buffer.create 4096 in
  let w = run_workload ~tracing:true ~stream_into:buf some_ops in
  let bus = Monitor.bus w.w_mon in
  Telemetry.Bus.set_sink bus None;
  check_int "ring kept everything" 0 (Telemetry.Bus.dropped bus);
  (* the sink never saw finish; replaying the ring through trace_json
     must reproduce the streamed bytes plus only the trailer *)
  let names cid = Monitor.cubicle_name w.w_mon cid in
  let full =
    Telemetry.Export.trace_json ~names ~cycles_per_us:2200. (Telemetry.Bus.events bus)
  in
  let streamed = Buffer.contents buf in
  check_bool "streamed output is a prefix of the ring export" true
    (String.length streamed <= String.length full
    && String.sub full 0 (String.length streamed) = streamed)

let entry ?(core = 0) at ev = { Telemetry.Bus.at; core; seq = 0; ev }

let test_stream_orphan_return_dropped () =
  let names cid = "C" ^ string_of_int cid in
  let entries =
    [
      entry 10 (Telemetry.Event.Return { caller = 0; callee = 1; sym = "wrapped" });
      entry 20 (Telemetry.Event.Call { caller = 0; callee = 1; sym = "g" });
      entry 30 (Telemetry.Event.Return { caller = 0; callee = 1; sym = "g" });
    ]
  in
  let json = Telemetry.Export.trace_json ~names ~cycles_per_us:1. entries in
  check_int "orphan E dropped" 1 (count_sub json "\"ph\":\"E\"");
  check_int "real slice kept" 1 (count_sub json "\"ph\":\"B\"")

let test_stream_synthesizes_close () =
  let names cid = "C" ^ string_of_int cid in
  let buf = Buffer.create 512 in
  let st =
    Telemetry.Export.Stream.create ~names ~cycles_per_us:1. ~write:(Buffer.add_string buf) ()
  in
  Telemetry.Export.Stream.entry st
    (entry 10 (Telemetry.Event.Call { caller = 0; callee = 1; sym = "f" }));
  Telemetry.Export.Stream.entry st
    (entry 20 (Telemetry.Event.Call { caller = 1; callee = 2; sym = "g" }));
  check_int "two slices open" 2 (Telemetry.Export.Stream.open_slices st);
  Telemetry.Export.Stream.finish st;
  check_int "all closed" 0 (Telemetry.Export.Stream.open_slices st);
  let json = Buffer.contents buf in
  check_int "E synthesized for every B" (count_sub json "\"ph\":\"B\"")
    (count_sub json "\"ph\":\"E\"")

let test_folded_until_tail () =
  let names cid = "C" ^ string_of_int cid in
  let entries = [ entry 100 (Telemetry.Event.Call { caller = 0; callee = 1; sym = "f" }) ] in
  let with_tail = Telemetry.Export.folded_stacks ~names ~until:250 entries in
  check_bool "tail cycles attributed to the open stack" true
    (contains_sub with_tail "C1:f 150");
  let without = Telemetry.Export.folded_stacks ~names entries in
  check_bool "tail unattributed without ~until" false (contains_sub without "150")

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wrap-around + drops" `Quick test_ring_wraparound;
          Alcotest.test_case "clear" `Quick test_ring_clear;
          QCheck_alcotest.to_alcotest prop_ring_model;
        ] );
      ( "hist",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample exact" `Quick test_hist_single;
          Alcotest.test_case "bucket boundaries" `Quick test_hist_boundaries;
          QCheck_alcotest.to_alcotest prop_hist_quantisation;
        ] );
      ( "identity",
        [ Alcotest.test_case "tracing on/off bit-identical" `Quick test_cycle_identity ] );
      ( "sampling", [ Alcotest.test_case "1-in-n deterministic" `Quick test_bus_sampling ] );
      ( "latency",
        [
          Alcotest.test_case "counts equal calls_between" `Quick test_latency_counts;
          Alcotest.test_case "exact under sampling" `Quick test_latency_counts_sampled;
          Alcotest.test_case "latencies positive" `Quick test_latency_positive;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "rows sum to Cost.cycles" `Quick test_attrib_sums_to_cycles;
          Alcotest.test_case "reset" `Quick test_attrib_reset;
        ] );
      ( "stats-vs-events",
        [
          Alcotest.test_case "fixed workload" `Quick test_stats_equal_events;
          QCheck_alcotest.to_alcotest prop_stats_equal_events;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "read-through, no sync" `Quick test_tlb_read_through;
          Alcotest.test_case "standalone stats" `Quick test_standalone_stats_tlb_zero;
        ] );
      ( "bus",
        [
          Alcotest.test_case "off captures nothing" `Quick test_bus_off_captures_nothing;
          Alcotest.test_case "timestamps monotone" `Quick test_bus_timestamps_monotone;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace json" `Quick test_export_trace_json;
          Alcotest.test_case "hdr percentile dump" `Quick test_export_hdr;
          Alcotest.test_case "folded stacks" `Quick test_export_folded;
          Alcotest.test_case "folded ~until attributes the tail" `Quick
            test_folded_until_tail;
        ] );
      ( "stream",
        [
          Alcotest.test_case "replay byte-matches trace_json" `Quick
            test_stream_matches_ring_replay;
          Alcotest.test_case "live sink prefixes ring export" `Quick
            test_stream_live_sink_matches_ring;
          Alcotest.test_case "orphan E dropped" `Quick test_stream_orphan_return_dropped;
          Alcotest.test_case "open slices closed at finish" `Quick
            test_stream_synthesizes_close;
        ] );
    ]
