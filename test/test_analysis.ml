(* CubiCheck: the static isolation analyzer and the trace-driven
   dynamic plane. Unit tests per pass, the seeded broken examples, the
   byte-exact window grant semantics, and qcheck properties (a random
   well-formed program analyses clean; each injected violation yields
   exactly one finding). *)

open Cubicle
open Analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fundecl = Iface.fundecl

(* --- little program builders ------------------------------------------ *)

let server ?(derefs = [ 0 ]) () =
  ("SERVER", Types.Isolated, [ "srv" ], [ fundecl ~derefs "srv" [] ])

let client body = ("CLIENT", Types.Isolated, [ "main" ], [ fundecl "main" body ])

let clean_body ?(bytes = 128) () =
  [
    Iface.Alloc { buf = "req"; bytes };
    Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes; standing = false };
    Iface.Window_open { win = "w"; peer = "SERVER" };
    Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", bytes) ] };
    Iface.Window_close { win = "w"; peer = "SERVER" };
    Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
  ]

let keys fs = List.map (fun f -> f.Report.key) fs

(* --- callgraph pass ---------------------------------------------------- *)

let test_callgraph_clean () =
  let p = Ir.make [ client (clean_body ()); server () ] in
  check_int "no findings" 0 (List.length (Static.run p))

let test_callgraph_missing_thunk () =
  let p = Ir.make ~missing_thunks:[ "srv" ] [ client (clean_body ()); server () ] in
  let fs = Callgraph.check p in
  check_int "one finding" 1 (List.length fs);
  let f = List.hd fs in
  check_bool "critical" true (f.Report.severity = Report.Critical);
  check_bool "key" true (f.Report.key = "trampoline:no-thunk:CLIENT.main:srv")

let test_callgraph_missing_guard () =
  let p =
    Ir.make ~missing_guards:[ ("CLIENT", "srv") ] [ client (clean_body ()); server () ]
  in
  let fs = Callgraph.check p in
  check_int "one finding" 1 (List.length fs);
  check_bool "high" true ((List.hd fs).Report.severity = Report.High)

let test_callgraph_direct_call () =
  let p =
    Ir.make [ client [ Iface.Direct_call { sym = "srv" } ]; server () ]
  in
  let fs = Callgraph.check p in
  check_int "one finding" 1 (List.length fs);
  check_bool "critical" true ((List.hd fs).Report.severity = Report.Critical)

let test_callgraph_unresolved () =
  let p = Ir.make [ client [ Iface.Call { sym = "ghost"; ptr_args = [] } ] ] in
  let fs = Callgraph.check p in
  check_int "one finding" 1 (List.length fs);
  check_bool "key" true ((List.hd fs).Report.key = "trampoline:unresolved:CLIENT.main:ghost")

let test_callgraph_edges () =
  let p = Ir.make [ client (clean_body ()); server () ] in
  match Callgraph.edges p with
  | [ e ] ->
      check_bool "edge" true
        (e.Callgraph.caller = "CLIENT" && e.Callgraph.callee = "SERVER"
       && e.Callgraph.sym = "srv")
  | es -> Alcotest.failf "expected 1 edge, got %d" (List.length es)

(* --- coverage pass ------------------------------------------------------ *)

let test_coverage_no_grant () =
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
    ]
  in
  let fs = Windows.check (Ir.make [ client body; server () ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "key" true
    ((List.hd fs).Report.key = "coverage:no-grant:CLIENT.main:srv:0:SERVER")

let test_coverage_not_open () =
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false };
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
      Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
    ]
  in
  let fs = Windows.check (Ir.make [ client body; server () ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "key" true
    ((List.hd fs).Report.key = "coverage:not-open:CLIENT.main:srv:0:SERVER")

let test_coverage_partial () =
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes = 64; standing = false };
      Iface.Window_open { win = "w"; peer = "SERVER" };
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
      Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
    ]
  in
  let fs = Windows.check (Ir.make [ client body; server () ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "key" true
    ((List.hd fs).Report.key = "coverage:partial:CLIENT.main:srv:0:SERVER")

let test_coverage_branch_intersection () =
  (* the grant happens on only one arm: a must-analysis flags the call
     after the join *)
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Branch
        [
          [
            Iface.Window_add
              { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false };
            Iface.Window_open { win = "w"; peer = "SERVER" };
          ];
          [];
        ];
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
    ]
  in
  let fs = Windows.check (Ir.make [ client body; server () ]) in
  check_int "flagged after join" 1 (List.length fs)

let test_coverage_init_seeds_exports () =
  (* a standing grant made in __init covers calls in every export *)
  let iface =
    [
      fundecl "__init"
        [
          Iface.Alloc { buf = "staging"; bytes = 4096 };
          Iface.Window_add
            { win = "w"; buf = Iface.Local "staging"; bytes = 4096; standing = true };
          Iface.Window_open { win = "w"; peer = "SERVER" };
        ];
      fundecl "main"
        [ Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "staging", 4096) ] } ];
    ]
  in
  let p = Ir.make [ ("CLIENT", Types.Isolated, [ "main" ], iface); server () ] in
  check_int "covered from init" 0 (List.length (Static.run p))

let test_coverage_transitive_accessor () =
  (* CLIENT -> PROXY (forwards arg 0) -> SERVER (derefs): the grant must
     be open for SERVER, the transitive accessor, not just PROXY *)
  let proxy =
    ( "PROXY",
      Types.Isolated,
      [ "fwd" ],
      [
        fundecl "fwd" [ Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Param 0, 0) ] } ];
      ] )
  in
  let body_open_for peer =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false };
      Iface.Window_open { win = "w"; peer };
      Iface.Call { sym = "fwd"; ptr_args = [ (0, Iface.Local "req", 128) ] };
      Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
    ]
  in
  let fs_proxy_only =
    Windows.check (Ir.make [ client (body_open_for "PROXY"); proxy; server () ])
  in
  check_bool "proxy-only grant flagged" true
    (List.mem "coverage:not-open:CLIENT.main:fwd:0:SERVER" (keys fs_proxy_only));
  let fs_server =
    Windows.check (Ir.make [ client (body_open_for "SERVER"); proxy; server () ])
  in
  check_bool "server grant has no SERVER finding" false
    (List.mem "coverage:not-open:CLIENT.main:fwd:0:SERVER" (keys fs_server))

let test_coverage_shared_callee_exempt () =
  (* calls into shared code run with the caller's privileges: no window
     needed for the caller's own buffer *)
  let libc =
    ("LIBC", Types.Shared, [ "memcpy" ], [ fundecl ~derefs:[ 0; 1 ] "memcpy" [] ])
  in
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Call { sym = "memcpy"; ptr_args = [ (0, Iface.Local "req", 128) ] };
    ]
  in
  check_int "no findings" 0 (List.length (Static.run (Ir.make [ client body; libc ])))

(* --- leak pass ---------------------------------------------------------- *)

let test_leak_flagged () =
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false };
    ]
  in
  let fs = Leaks.check (Ir.make [ client body ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "high" true ((List.hd fs).Report.severity = Report.High);
  check_bool "key" true ((List.hd fs).Report.key = "leak:CLIENT.main:w/req")

let test_leak_destroy_clean () =
  let body =
    [
      Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false };
      Iface.Window_destroy { win = "w" };
    ]
  in
  check_int "no findings" 0 (List.length (Leaks.check (Ir.make [ client body ])))

let test_leak_standing_exempt () =
  let body =
    [ Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = true } ]
  in
  check_int "no findings" 0 (List.length (Leaks.check (Ir.make [ client body ])))

let test_leak_partial_on_branch () =
  let body =
    [
      Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false };
      Iface.Branch [ [ Iface.Window_remove { win = "w"; buf = Iface.Local "req" } ]; [] ];
    ]
  in
  let fs = Leaks.check (Ir.make [ client body ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "medium" true ((List.hd fs).Report.severity = Report.Medium)

(* --- window grant semantics (byte-exact coverage) ----------------------- *)

let test_window_covers () =
  let tbl = Window.create_table ~owner:1 ~ncubicles:4 in
  let w = Window.init tbl ~klass:Mm.Page_meta.Heap in
  Window.add_range tbl w ~ptr:0x1000 ~size:16;
  check_bool "exact" true (Window.covers w ~ptr:0x1000 ~size:16);
  check_bool "prefix" true (Window.covers w ~ptr:0x1000 ~size:10);
  check_bool "partial (regression)" false (Window.covers w ~ptr:0x1000 ~size:32);
  check_int "covered prefix" 16 (Window.covered_prefix w ~ptr:0x1000 ~size:32);
  (* adjacent ranges stitch *)
  Window.add_range tbl w ~ptr:0x1010 ~size:16;
  check_bool "stitched" true (Window.covers w ~ptr:0x1000 ~size:32);
  (* a hole breaks coverage *)
  Window.add_range tbl w ~ptr:0x1030 ~size:16;
  check_bool "hole" false (Window.covers w ~ptr:0x1000 ~size:64);
  check_int "stops at hole" 32 (Window.covered_prefix w ~ptr:0x1000 ~size:64);
  check_bool "zero size" false (Window.covers w ~ptr:0x1000 ~size:0)

let test_monitor_window_grants () =
  let mon = Monitor.create ~protection:Types.Full () in
  let a =
    Monitor.create_cubicle mon ~name:"A" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2
  in
  let b =
    Monitor.create_cubicle mon ~name:"B" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  let ctx = Monitor.ctx_for mon a in
  let buf = Monitor.run_as mon a (fun () -> Api.malloc ctx 64) in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:32;
  (* permission: granted but not open *)
  check_bool "not open" false (Monitor.window_grants mon a ~peer:b ~ptr:buf ~size:32);
  Api.window_open ctx wid b;
  check_bool "open + covered" true (Monitor.window_grants mon a ~peer:b ~ptr:buf ~size:32);
  (* size: grant smaller than the access (regression for partial
     coverage) *)
  check_bool "partial" false (Monitor.window_grants mon a ~peer:b ~ptr:buf ~size:64);
  Api.window_close ctx wid b;
  check_bool "closed" false (Monitor.window_grants mon a ~peer:b ~ptr:buf ~size:32)

(* --- dynamic plane ------------------------------------------------------ *)

let test_replay_crossing_suppresses_race () =
  (* same two writes as the seeded race, but with a trampoline crossing
     between them: ordered, no race *)
  let det = Races.create ~name_of:(Printf.sprintf "C%d") in
  Races.access det ~cid:2 ~owner:1 ~page:10 ~access:Telemetry.Event.Write ~covered:true;
  Races.crossing det;
  Races.access det ~cid:3 ~owner:1 ~page:10 ~access:Telemetry.Event.Write ~covered:true;
  check_int "no findings" 0 (List.length (Races.findings det))

let test_replay_race_detected () =
  let det = Races.create ~name_of:(Printf.sprintf "C%d") in
  Races.access det ~cid:2 ~owner:1 ~page:10 ~access:Telemetry.Event.Write ~covered:true;
  Races.access det ~cid:3 ~owner:1 ~page:10 ~access:Telemetry.Event.Write ~covered:true;
  let fs = Races.findings det in
  check_int "one finding" 1 (List.length fs);
  check_bool "race" true ((List.hd fs).Report.pass = "race")

let test_replay_mirror_tracks_acl () =
  let t = Replay.create ~name_of:(Printf.sprintf "C%d") in
  let page = 16 in
  let ptr = page * Hw.Addr.page_size in
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Init; wid = 0; peer = -1; ptr = 0; size = 0 });
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Add; wid = 0; peer = -1; ptr; size = 64 });
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Open; wid = 0; peer = 2; ptr = 0; size = 0 });
  Replay.feed t (Telemetry.Event.Window_access { cid = 2; owner = 1; page; access = Telemetry.Event.Write });
  check_int "covered access ok" 0 (List.length (Replay.findings t));
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Close; wid = 0; peer = 2; ptr = 0; size = 0 });
  Replay.feed t (Telemetry.Event.Window_access { cid = 2; owner = 1; page; access = Telemetry.Event.Write });
  let fs = Replay.findings t in
  check_int "one finding" 1 (List.length fs);
  check_bool "use-after-close" true ((List.hd fs).Report.pass = "use-after-close");
  check_bool "critical" true ((List.hd fs).Report.severity = Report.Critical)

(* --- seeded broken examples --------------------------------------------- *)

let test_seeded_all_caught () =
  List.iter
    (fun (sc : Seeded.scenario) ->
      if not (Seeded.caught sc) then
        Alcotest.failf "seeded scenario %s not caught (expected %s/%s, got %d findings: %s)"
          sc.Seeded.sc_name sc.Seeded.expect_pass
          (Report.severity_name sc.Seeded.expect_severity)
          (List.length sc.Seeded.findings)
          (String.concat ", " (keys sc.Seeded.findings)))
    (Seeded.all ())

let test_seeded_static_exactly_one () =
  List.iter
    (fun (sc : Seeded.scenario) ->
      check_int (sc.Seeded.sc_name ^ " finding count") 1 (List.length sc.Seeded.findings))
    [ Seeded.missing_trampoline (); Seeded.uncovered_pointer (); Seeded.leaked_window () ]

(* --- report / baseline --------------------------------------------------- *)

let test_baseline_diff () =
  let f key severity =
    Report.make ~pass:"coverage" ~severity ~plane:Report.Static ~component:"X"
      ~detail:"d" ~key
  in
  let fs = [ f "a" Report.High; f "b" Report.Medium ] in
  check_int "counts" 2 (List.length (Report.baseline_counts fs));
  let fresh, resolved = Report.diff_baseline ~baseline:[ ("a", 1); ("c", 1) ] fs in
  check_bool "fresh" true (fresh = [ ("b", 1) ]);
  check_bool "resolved" true (resolved = [ ("c", 1) ])

(* --- shipped stacks analyse clean ---------------------------------------- *)

let test_fs_stack_clean () =
  let sys = Libos.Boot.fs_stack ~protection:Types.Full () in
  let fs = Static.run_built sys.Libos.Boot.built in
  if fs <> [] then
    Alcotest.failf "fs stack: %d findings: %s" (List.length fs)
      (String.concat ", " (keys fs))

let test_net_stack_clean () =
  let sys = Libos.Boot.net_stack ~protection:Types.Full () in
  let fs = Static.run_built sys.Libos.Boot.built in
  if fs <> [] then
    Alcotest.failf "net stack: %d findings: %s" (List.length fs)
      (String.concat ", " (keys fs))

(* --- qcheck properties ---------------------------------------------------- *)

(* Random well-formed single-client programs plus five injectable
   violations. Generators vary buffer size, cleanup style (remove vs
   destroy), whether the window is closed, and harmless padding
   statements. *)

type injection = Clean | No_thunk | Drop_grant | Shrink_grant | Drop_open | Drop_remove

let gen_case =
  QCheck.Gen.(
    let* size_q = int_range 1 16 in
    let size = size_q * 16 in
    let* use_destroy = bool in
    let* close_first = bool in
    let* pad = bool in
    let* inj = oneofl [ Clean; No_thunk; Drop_grant; Shrink_grant; Drop_open; Drop_remove ] in
    return (size, use_destroy, close_first, pad, inj))

let build_case (size, use_destroy, close_first, pad, inj) =
  let grant_bytes = match inj with Shrink_grant -> size / 2 | _ -> size in
  let body =
    (if pad then [ Iface.Alloc { buf = "scratch"; bytes = 16 } ] else [])
    @ [ Iface.Alloc { buf = "req"; bytes = size } ]
    @ (match inj with
      | Drop_grant -> []
      | _ ->
          [
            Iface.Window_add
              { win = "w"; buf = Iface.Local "req"; bytes = grant_bytes; standing = false };
          ])
    @ (match inj with
      | Drop_open | Drop_grant -> []
      | _ -> [ Iface.Window_open { win = "w"; peer = "SERVER" } ])
    @ [ Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", size) ] } ]
    @ (if close_first && inj <> Drop_grant && inj <> Drop_open then
         [ Iface.Window_close { win = "w"; peer = "SERVER" } ]
       else [])
    @
    match inj with
    | Drop_remove | Drop_grant -> []
    | _ ->
        if use_destroy then [ Iface.Window_destroy { win = "w" } ]
        else [ Iface.Window_remove { win = "w"; buf = Iface.Local "req" } ]
  in
  let missing_thunks = match inj with No_thunk -> [ "srv" ] | _ -> [] in
  Ir.make ~missing_thunks [ client body; server () ]

let expected_key (_, _, _, _, inj) =
  match inj with
  | Clean -> None
  | No_thunk -> Some "trampoline:no-thunk:CLIENT.main:srv"
  | Drop_grant -> Some "coverage:no-grant:CLIENT.main:srv:0:SERVER"
  | Shrink_grant -> Some "coverage:partial:CLIENT.main:srv:0:SERVER"
  | Drop_open -> Some "coverage:not-open:CLIENT.main:srv:0:SERVER"
  | Drop_remove -> Some "leak:CLIENT.main:w/req"

let prop_injection =
  QCheck.Test.make ~count:200
    ~name:"cubicheck: well-formed clean; each injected violation yields exactly one finding"
    (QCheck.make gen_case)
    (fun case ->
      let fs = Static.run (build_case case) in
      match expected_key case with
      | None -> fs = []
      | Some k -> List.length fs = 1 && (List.hd fs).Report.key = k)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_injection ]

let () =
  Alcotest.run "analysis"
    [
      ( "callgraph",
        [
          Alcotest.test_case "clean" `Quick test_callgraph_clean;
          Alcotest.test_case "missing thunk" `Quick test_callgraph_missing_thunk;
          Alcotest.test_case "missing guard" `Quick test_callgraph_missing_guard;
          Alcotest.test_case "direct call" `Quick test_callgraph_direct_call;
          Alcotest.test_case "unresolved" `Quick test_callgraph_unresolved;
          Alcotest.test_case "edges" `Quick test_callgraph_edges;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "no grant" `Quick test_coverage_no_grant;
          Alcotest.test_case "not open" `Quick test_coverage_not_open;
          Alcotest.test_case "partial" `Quick test_coverage_partial;
          Alcotest.test_case "branch intersection" `Quick test_coverage_branch_intersection;
          Alcotest.test_case "init seeds exports" `Quick test_coverage_init_seeds_exports;
          Alcotest.test_case "transitive accessor" `Quick test_coverage_transitive_accessor;
          Alcotest.test_case "shared callee exempt" `Quick test_coverage_shared_callee_exempt;
        ] );
      ( "leaks",
        [
          Alcotest.test_case "leak flagged" `Quick test_leak_flagged;
          Alcotest.test_case "destroy clean" `Quick test_leak_destroy_clean;
          Alcotest.test_case "standing exempt" `Quick test_leak_standing_exempt;
          Alcotest.test_case "partial on branch" `Quick test_leak_partial_on_branch;
        ] );
      ( "grant semantics",
        [
          Alcotest.test_case "covers" `Quick test_window_covers;
          Alcotest.test_case "monitor grants" `Quick test_monitor_window_grants;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "crossing suppresses race" `Quick
            test_replay_crossing_suppresses_race;
          Alcotest.test_case "race detected" `Quick test_replay_race_detected;
          Alcotest.test_case "mirror tracks acl" `Quick test_replay_mirror_tracks_acl;
        ] );
      ( "seeded",
        [
          Alcotest.test_case "all caught" `Quick test_seeded_all_caught;
          Alcotest.test_case "static exactly one" `Quick test_seeded_static_exactly_one;
        ] );
      ( "report",
        [ Alcotest.test_case "baseline diff" `Quick test_baseline_diff ] );
      ( "stacks",
        [
          Alcotest.test_case "fs stack clean" `Quick test_fs_stack_clean;
          Alcotest.test_case "net stack clean" `Quick test_net_stack_clean;
        ] );
      ("properties", qsuite);
    ]
