(* CubiCheck: the static isolation analyzer and the trace-driven
   dynamic plane. Unit tests per pass, the seeded broken examples, the
   byte-exact window grant semantics, and qcheck properties (a random
   well-formed program analyses clean; each injected violation yields
   exactly one finding). *)

open Cubicle
open Analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fundecl = Iface.fundecl

(* --- little program builders ------------------------------------------ *)

let server ?(derefs = [ 0 ]) ?(writes = []) () =
  ("SERVER", Types.Isolated, [ "srv" ], [ fundecl ~derefs ~writes "srv" [] ])

let client body = ("CLIENT", Types.Isolated, [ "main" ], [ fundecl "main" body ])

let clean_body ?(bytes = 128) () =
  [
    Iface.Alloc { buf = "req"; bytes };
    Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes; standing = false; rw = false };
    Iface.Window_open { win = "w"; peer = "SERVER" };
    Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", bytes) ] };
    Iface.Window_close { win = "w"; peer = "SERVER" };
    Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
  ]

let keys fs = List.map (fun f -> f.Report.key) fs

(* --- callgraph pass ---------------------------------------------------- *)

let test_callgraph_clean () =
  let p = Ir.make [ client (clean_body ()); server () ] in
  check_int "no findings" 0 (List.length (Static.run p))

let test_callgraph_missing_thunk () =
  let p = Ir.make ~missing_thunks:[ "srv" ] [ client (clean_body ()); server () ] in
  let fs = Callgraph.check p in
  check_int "one finding" 1 (List.length fs);
  let f = List.hd fs in
  check_bool "critical" true (f.Report.severity = Report.Critical);
  check_bool "key" true (f.Report.key = "trampoline:no-thunk:CLIENT.main:srv")

let test_callgraph_missing_guard () =
  let p =
    Ir.make ~missing_guards:[ ("CLIENT", "srv") ] [ client (clean_body ()); server () ]
  in
  let fs = Callgraph.check p in
  check_int "one finding" 1 (List.length fs);
  check_bool "high" true ((List.hd fs).Report.severity = Report.High)

let test_callgraph_direct_call () =
  let p =
    Ir.make [ client [ Iface.Direct_call { sym = "srv" } ]; server () ]
  in
  let fs = Callgraph.check p in
  check_int "one finding" 1 (List.length fs);
  check_bool "critical" true ((List.hd fs).Report.severity = Report.Critical)

let test_callgraph_unresolved () =
  let p = Ir.make [ client [ Iface.Call { sym = "ghost"; ptr_args = [] } ] ] in
  let fs = Callgraph.check p in
  check_int "one finding" 1 (List.length fs);
  check_bool "key" true ((List.hd fs).Report.key = "trampoline:unresolved:CLIENT.main:ghost")

let test_callgraph_edges () =
  let p = Ir.make [ client (clean_body ()); server () ] in
  match Callgraph.edges p with
  | [ e ] ->
      check_bool "edge" true
        (e.Callgraph.caller = "CLIENT" && e.Callgraph.callee = "SERVER"
       && e.Callgraph.sym = "srv")
  | es -> Alcotest.failf "expected 1 edge, got %d" (List.length es)

(* --- coverage pass ------------------------------------------------------ *)

let test_coverage_no_grant () =
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
    ]
  in
  let fs = Windows.check (Ir.make [ client body; server () ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "key" true
    ((List.hd fs).Report.key = "coverage:no-grant:CLIENT.main:srv:0:SERVER")

let test_coverage_not_open () =
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add
        { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = false };
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
      Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
    ]
  in
  let fs = Windows.check (Ir.make [ client body; server () ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "key" true
    ((List.hd fs).Report.key = "coverage:not-open:CLIENT.main:srv:0:SERVER")

let test_coverage_partial () =
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add
        { win = "w"; buf = Iface.Local "req"; bytes = 64; standing = false; rw = false };
      Iface.Window_open { win = "w"; peer = "SERVER" };
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
      Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
    ]
  in
  let fs = Windows.check (Ir.make [ client body; server () ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "key" true
    ((List.hd fs).Report.key = "coverage:partial:CLIENT.main:srv:0:SERVER")

let test_coverage_branch_intersection () =
  (* the grant happens on only one arm: a must-analysis flags the call
     after the join *)
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Branch
        [
          [
            Iface.Window_add
              { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = false };
            Iface.Window_open { win = "w"; peer = "SERVER" };
          ];
          [];
        ];
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
    ]
  in
  let fs = Windows.check (Ir.make [ client body; server () ]) in
  check_int "flagged after join" 1 (List.length fs)

let test_coverage_init_seeds_exports () =
  (* a standing grant made in __init covers calls in every export *)
  let iface =
    [
      fundecl "__init"
        [
          Iface.Alloc { buf = "staging"; bytes = 4096 };
          Iface.Window_add
            { win = "w"; buf = Iface.Local "staging"; bytes = 4096; standing = true; rw = false };
          Iface.Window_open { win = "w"; peer = "SERVER" };
        ];
      fundecl "main"
        [ Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "staging", 4096) ] } ];
    ]
  in
  let p = Ir.make [ ("CLIENT", Types.Isolated, [ "main" ], iface); server () ] in
  check_int "covered from init" 0 (List.length (Static.run p))

let test_coverage_transitive_accessor () =
  (* CLIENT -> PROXY (forwards arg 0) -> SERVER (derefs): the grant must
     be open for SERVER, the transitive accessor, not just PROXY *)
  let proxy =
    ( "PROXY",
      Types.Isolated,
      [ "fwd" ],
      [
        fundecl "fwd" [ Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Param 0, 0) ] } ];
      ] )
  in
  let body_open_for peer =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add
        { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = false };
      Iface.Window_open { win = "w"; peer };
      Iface.Call { sym = "fwd"; ptr_args = [ (0, Iface.Local "req", 128) ] };
      Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
    ]
  in
  let fs_proxy_only =
    Windows.check (Ir.make [ client (body_open_for "PROXY"); proxy; server () ])
  in
  check_bool "proxy-only grant flagged" true
    (List.mem "coverage:not-open:CLIENT.main:fwd:0:SERVER" (keys fs_proxy_only));
  let fs_server =
    Windows.check (Ir.make [ client (body_open_for "SERVER"); proxy; server () ])
  in
  check_bool "server grant has no SERVER finding" false
    (List.mem "coverage:not-open:CLIENT.main:fwd:0:SERVER" (keys fs_server))

let test_coverage_ro_write () =
  (* the callee writes through arg 0, but the covering grant is R-only:
     the write never faults at runtime (read-first retag), so the
     static pass must flag it Critical *)
  let fs =
    Windows.check (Ir.make [ client (clean_body ()); server ~writes:[ 0 ] () ])
  in
  check_int "one finding" 1 (List.length fs);
  let f = List.hd fs in
  check_bool "critical" true (f.Report.severity = Report.Critical);
  check_bool "key" true (f.Report.key = "coverage:ro-write:CLIENT.main:srv:0:SERVER")

let test_coverage_rw_grant_allows_write () =
  (* same program with an RW grant: no finding at all *)
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add
        { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = true };
      Iface.Window_open { win = "w"; peer = "SERVER" };
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
      Iface.Window_close { win = "w"; peer = "SERVER" };
      Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
    ]
  in
  check_int "no findings" 0
    (List.length (Windows.check (Ir.make [ client body; server ~writes:[ 0 ] () ])))

let test_overprivilege_lint () =
  (* an RW grant nobody ever writes through: Medium least-privilege
     lint — it should have been granted R *)
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add
        { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = true };
      Iface.Window_open { win = "w"; peer = "SERVER" };
      Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", 128) ] };
      Iface.Window_close { win = "w"; peer = "SERVER" };
      Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
    ]
  in
  let fs = Windows.check (Ir.make [ client body; server () ]) in
  check_int "one finding" 1 (List.length fs);
  let f = List.hd fs in
  check_bool "medium" true (f.Report.severity = Report.Medium);
  check_bool "key" true (f.Report.key = "overpriv:CLIENT:w/req")

let test_coverage_shared_callee_exempt () =
  (* calls into shared code run with the caller's privileges: no window
     needed for the caller's own buffer *)
  let libc =
    ("LIBC", Types.Shared, [ "memcpy" ], [ fundecl ~derefs:[ 0; 1 ] "memcpy" [] ])
  in
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Call { sym = "memcpy"; ptr_args = [ (0, Iface.Local "req", 128) ] };
    ]
  in
  check_int "no findings" 0 (List.length (Static.run (Ir.make [ client body; libc ])))

(* --- leak pass ---------------------------------------------------------- *)

let test_leak_flagged () =
  let body =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add
        { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = true };
    ]
  in
  let fs = Leaks.check (Ir.make [ client body ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "high" true ((List.hd fs).Report.severity = Report.High);
  check_bool "key" true ((List.hd fs).Report.key = "leak:CLIENT.main:w/req")

let test_leak_destroy_clean () =
  let body =
    [
      Iface.Window_add
        { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = true };
      Iface.Window_destroy { win = "w" };
    ]
  in
  check_int "no findings" 0 (List.length (Leaks.check (Ir.make [ client body ])))

let test_leak_standing_exempt () =
  let body =
    [
      Iface.Window_add
        { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = true; rw = true };
    ]
  in
  check_int "no findings" 0 (List.length (Leaks.check (Ir.make [ client body ])))

let test_leak_partial_on_branch () =
  let body =
    [
      Iface.Window_add
        { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = true };
      Iface.Branch [ [ Iface.Window_remove { win = "w"; buf = Iface.Local "req" } ]; [] ];
    ]
  in
  let fs = Leaks.check (Ir.make [ client body ]) in
  check_int "one finding" 1 (List.length fs);
  check_bool "medium" true ((List.hd fs).Report.severity = Report.Medium)

let test_leak_ro_demoted () =
  (* a leaked read-only grant is disclosure, not corruption: one
     severity below the RW leak *)
  let body rw =
    [
      Iface.Alloc { buf = "req"; bytes = 128 };
      Iface.Window_add { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw };
    ]
  in
  let sev rw =
    match Leaks.check (Ir.make [ client (body rw) ]) with
    | [ f ] -> f.Report.severity
    | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)
  in
  check_bool "RW leak high" true (sev true = Report.High);
  check_bool "R leak medium" true (sev false = Report.Medium)

(* --- window grant semantics (byte-exact coverage) ----------------------- *)

let test_window_covers () =
  let tbl = Window.create_table ~owner:1 ~ncubicles:4 in
  let w = Window.init tbl ~klass:Mm.Page_meta.Heap in
  Window.add_range tbl w ~ptr:0x1000 ~size:16;
  check_bool "exact" true (Window.covers w ~ptr:0x1000 ~size:16);
  check_bool "prefix" true (Window.covers w ~ptr:0x1000 ~size:10);
  check_bool "partial (regression)" false (Window.covers w ~ptr:0x1000 ~size:32);
  check_int "covered prefix" 16 (Window.covered_prefix w ~ptr:0x1000 ~size:32);
  (* adjacent ranges stitch *)
  Window.add_range tbl w ~ptr:0x1010 ~size:16;
  check_bool "stitched" true (Window.covers w ~ptr:0x1000 ~size:32);
  (* a hole breaks coverage *)
  Window.add_range tbl w ~ptr:0x1030 ~size:16;
  check_bool "hole" false (Window.covers w ~ptr:0x1000 ~size:64);
  check_int "stops at hole" 32 (Window.covered_prefix w ~ptr:0x1000 ~size:64);
  check_bool "zero size" false (Window.covers w ~ptr:0x1000 ~size:0);
  (* permissions: RW grants satisfy Write spans; a downgrade (or a
     born-R grant) stops Write coverage exactly where RW coverage ends *)
  check_bool "rw covers write" true (Window.covers ~access:Window.Write w ~ptr:0x1000 ~size:32);
  Window.downgrade_range w ~ptr:0x1010;
  check_bool "read still stitched" true (Window.covers ~access:Window.Read w ~ptr:0x1000 ~size:32);
  check_bool "write broken by downgrade" false
    (Window.covers ~access:Window.Write w ~ptr:0x1000 ~size:32);
  check_int "write prefix stops at R" 16
    (Window.covered_prefix ~access:Window.Write w ~ptr:0x1000 ~size:32);
  Window.add_range ~perm:Window.R tbl w ~ptr:0x1050 ~size:16;
  check_bool "born-R readable" true (Window.covers ~access:Window.Read w ~ptr:0x1050 ~size:16);
  check_bool "born-R not writable" false
    (Window.covers ~access:Window.Write w ~ptr:0x1050 ~size:16)

let test_monitor_window_grants () =
  let mon = Monitor.create ~protection:Types.Full () in
  let a =
    Monitor.create_cubicle mon ~name:"A" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2
  in
  let b =
    Monitor.create_cubicle mon ~name:"B" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  let ctx = Monitor.ctx_for mon a in
  let buf = Monitor.run_as mon a (fun () -> Api.malloc ctx 64) in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:32;
  (* permission: granted but not open *)
  check_bool "not open" false (Monitor.window_grants mon a ~peer:b ~ptr:buf ~size:32);
  Api.window_open ctx wid b;
  check_bool "open + covered" true (Monitor.window_grants mon a ~peer:b ~ptr:buf ~size:32);
  (* size: grant smaller than the access (regression for partial
     coverage) *)
  check_bool "partial" false (Monitor.window_grants mon a ~peer:b ~ptr:buf ~size:64);
  Api.window_close ctx wid b;
  check_bool "closed" false (Monitor.window_grants mon a ~peer:b ~ptr:buf ~size:32)

let test_monitor_ro_write_rejected () =
  (* a DIRECT first-touch write through an R-only grant is the fault
     path's job: the window is found, the permission says no. Only the
     read-first retag makes later writes silent (next test). *)
  let mon = Monitor.create ~protection:Types.Full () in
  let a =
    Monitor.create_cubicle mon ~name:"A" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2
  in
  let b =
    Monitor.create_cubicle mon ~name:"B" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  let ctx = Monitor.ctx_for mon a in
  let buf = Monitor.run_as mon a (fun () -> Api.malloc_page_aligned ctx Hw.Addr.page_size) in
  Monitor.run_as mon a (fun () ->
      let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
      Api.window_add ctx ~perm:Window.R wid ~ptr:buf ~size:Hw.Addr.page_size;
      Api.window_open ctx wid b);
  check_bool "read granted" true
    (Monitor.window_grants ~access:Window.Read mon a ~peer:b ~ptr:buf ~size:16);
  check_bool "write not granted" false
    (Monitor.window_grants ~access:Window.Write mon a ~peer:b ~ptr:buf ~size:16);
  let bctx = Monitor.ctx_for mon b in
  check_bool "first-touch write faults" true
    (match Monitor.run_as mon b (fun () -> Api.write_u8 bctx buf 0x99) with
    | () -> false
    | exception Hw.Fault.Violation _ -> true);
  (* ...but after a READ retags the page to B's key, the same write
     sails through: MPK grants full RW per key. That silent hole is
     what the online race sink exists for. *)
  ignore (Monitor.run_as mon b (fun () -> Api.read_u8 bctx buf));
  Monitor.run_as mon b (fun () -> Api.write_u8 bctx buf 0x99);
  check_int "silent write landed" 0x99
    (Monitor.run_as mon a (fun () -> Api.read_u8 ctx buf))

(* --- dynamic plane ------------------------------------------------------ *)

let test_replay_crossing_suppresses_race () =
  (* same two writes as the seeded race, but with a trampoline crossing
     between them: ordered, no race *)
  let det = Races.create ~name_of:(Printf.sprintf "C%d") in
  Races.access det ~cid:2 ~owner:1 ~page:10 ~access:Telemetry.Event.Write ~covered:true;
  Races.crossing det;
  Races.access det ~cid:3 ~owner:1 ~page:10 ~access:Telemetry.Event.Write ~covered:true;
  check_int "no findings" 0 (List.length (Races.findings det))

let test_replay_race_detected () =
  let det = Races.create ~name_of:(Printf.sprintf "C%d") in
  Races.access det ~cid:2 ~owner:1 ~page:10 ~access:Telemetry.Event.Write ~covered:true;
  Races.access det ~cid:3 ~owner:1 ~page:10 ~access:Telemetry.Event.Write ~covered:true;
  let fs = Races.findings det in
  check_int "one finding" 1 (List.length fs);
  check_bool "race" true ((List.hd fs).Report.pass = "race")

let test_replay_mirror_tracks_acl () =
  let t = Replay.create ~name_of:(Printf.sprintf "C%d") in
  let page = 16 in
  let ptr = page * Hw.Addr.page_size in
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Init; wid = 0; peer = -1; ptr = 0; size = 0; rw = true });
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Add; wid = 0; peer = -1; ptr; size = 64; rw = true });
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Open; wid = 0; peer = 2; ptr = 0; size = 0; rw = true });
  Replay.feed t (Telemetry.Event.Window_access { cid = 2; owner = 1; page; access = Telemetry.Event.Write });
  check_int "covered access ok" 0 (List.length (Replay.findings t));
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Close; wid = 0; peer = 2; ptr = 0; size = 0; rw = true });
  Replay.feed t (Telemetry.Event.Window_access { cid = 2; owner = 1; page; access = Telemetry.Event.Write });
  let fs = Replay.findings t in
  check_int "one finding" 1 (List.length fs);
  check_bool "use-after-close" true ((List.hd fs).Report.pass = "use-after-close");
  check_bool "critical" true ((List.hd fs).Report.severity = Report.Critical)

let test_replay_write_through_ro () =
  (* R-only grant: reads judge clean, a write is flagged even though
     the runtime never faulted *)
  let t = Replay.create ~name_of:(Printf.sprintf "C%d") in
  let page = 16 in
  let ptr = page * Hw.Addr.page_size in
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Init; wid = 0; peer = -1; ptr = 0; size = 0; rw = true });
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Add; wid = 0; peer = -1; ptr; size = 64; rw = false });
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Open; wid = 0; peer = 2; ptr = 0; size = 0; rw = true });
  Replay.feed t (Telemetry.Event.Window_access { cid = 2; owner = 1; page; access = Telemetry.Event.Read });
  check_int "read ok" 0 (List.length (Replay.findings t));
  Replay.feed t (Telemetry.Event.Window_access { cid = 2; owner = 1; page; access = Telemetry.Event.Write });
  let fs = Replay.findings t in
  check_int "one finding" 1 (List.length fs);
  check_bool "write-through-ro" true ((List.hd fs).Report.pass = "write-through-ro");
  check_bool "critical" true ((List.hd fs).Report.severity = Report.Critical)

let test_replay_downgrade_tracked () =
  (* an RW grant downgraded mid-trace: writes before the downgrade are
     legal, writes after are flagged *)
  let t = Replay.create ~name_of:(Printf.sprintf "C%d") in
  let page = 16 in
  let ptr = page * Hw.Addr.page_size in
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Init; wid = 0; peer = -1; ptr = 0; size = 0; rw = true });
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Add; wid = 0; peer = -1; ptr; size = 64; rw = true });
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Open; wid = 0; peer = 2; ptr = 0; size = 0; rw = true });
  Replay.feed t (Telemetry.Event.Window_access { cid = 2; owner = 1; page; access = Telemetry.Event.Write });
  check_int "write before downgrade ok" 0 (List.length (Replay.findings t));
  Replay.feed t (Telemetry.Event.Window { cid = 1; op = Telemetry.Event.Downgrade; wid = 0; peer = -1; ptr; size = 0; rw = false });
  Replay.feed t (Telemetry.Event.Window_access { cid = 2; owner = 1; page; access = Telemetry.Event.Write });
  let fs = Replay.findings t in
  check_int "one finding" 1 (List.length fs);
  check_bool "write-through-ro" true ((List.hd fs).Report.pass = "write-through-ro")

(* --- seeded broken examples --------------------------------------------- *)

let test_seeded_all_caught () =
  List.iter
    (fun (sc : Seeded.scenario) ->
      if not (Seeded.caught sc) then
        Alcotest.failf "seeded scenario %s not caught (expected %s/%s, got %d findings: %s)"
          sc.Seeded.sc_name sc.Seeded.expect_pass
          (Report.severity_name sc.Seeded.expect_severity)
          (List.length sc.Seeded.findings)
          (String.concat ", " (keys sc.Seeded.findings)))
    (Seeded.all ())

let test_seeded_static_exactly_one () =
  List.iter
    (fun (sc : Seeded.scenario) ->
      check_int (sc.Seeded.sc_name ^ " finding count") 1 (List.length sc.Seeded.findings))
    [
      Seeded.missing_trampoline ();
      Seeded.uncovered_pointer ();
      Seeded.leaked_window ();
      Seeded.ro_write ();
    ]

(* --- report / baseline --------------------------------------------------- *)

let test_baseline_diff () =
  let f key severity =
    Report.make ~pass:"coverage" ~severity ~plane:Report.Static ~component:"X"
      ~detail:"d" ~key
  in
  let fs = [ f "a" Report.High; f "b" Report.Medium ] in
  check_int "counts" 2 (List.length (Report.baseline_counts fs));
  let fresh, resolved = Report.diff_baseline ~baseline:[ ("a", 1); ("c", 1) ] fs in
  check_bool "fresh" true (fresh = [ ("b", 1) ]);
  check_bool "resolved" true (resolved = [ ("c", 1) ])

let test_dedup_counts () =
  let f key =
    Report.make ~pass:"leak" ~severity:Report.High ~plane:Report.Static ~component:"X"
      ~detail:"d" ~key
  in
  let fs = [ f "a"; f "b"; f "a"; f "a" ] in
  (match Report.dedup fs with
  | [ x; y ] ->
      check_bool "order kept" true (x.Report.key = "a" && y.Report.key = "b");
      check_int "a collapsed to 3" 3 x.Report.count;
      check_int "b stays 1" 1 y.Report.count
  | ds -> Alcotest.failf "expected 2 deduped findings, got %d" (List.length ds));
  (* the baseline is invariant under dedup: counts are summed, not lost *)
  check_bool "baseline invariant" true
    (Report.baseline_counts fs = Report.baseline_counts (Report.dedup fs))

(* --- shipped stacks analyse clean ---------------------------------------- *)

let test_fs_stack_clean () =
  let sys = Libos.Boot.fs_stack ~protection:Types.Full () in
  let fs = Static.run_built sys.Libos.Boot.built in
  if fs <> [] then
    Alcotest.failf "fs stack: %d findings: %s" (List.length fs)
      (String.concat ", " (keys fs))

let test_net_stack_clean () =
  let sys = Libos.Boot.net_stack ~protection:Types.Full () in
  let fs = Static.run_built sys.Libos.Boot.built in
  if fs <> [] then
    Alcotest.failf "net stack: %d findings: %s" (List.length fs)
      (String.concat ", " (keys fs))

(* --- qcheck properties ---------------------------------------------------- *)

(* Random well-formed single-client programs plus five injectable
   violations. Generators vary buffer size, cleanup style (remove vs
   destroy), whether the window is closed, and harmless padding
   statements. *)

type injection = Clean | No_thunk | Drop_grant | Shrink_grant | Drop_open | Drop_remove

let gen_case =
  QCheck.Gen.(
    let* size_q = int_range 1 16 in
    let size = size_q * 16 in
    let* use_destroy = bool in
    let* close_first = bool in
    let* pad = bool in
    let* inj = oneofl [ Clean; No_thunk; Drop_grant; Shrink_grant; Drop_open; Drop_remove ] in
    return (size, use_destroy, close_first, pad, inj))

let build_case (size, use_destroy, close_first, pad, inj) =
  let grant_bytes = match inj with Shrink_grant -> size / 2 | _ -> size in
  let body =
    (if pad then [ Iface.Alloc { buf = "scratch"; bytes = 16 } ] else [])
    @ [ Iface.Alloc { buf = "req"; bytes = size } ]
    @ (match inj with
      | Drop_grant -> []
      | _ ->
          [
            Iface.Window_add
              {
                win = "w";
                buf = Iface.Local "req";
                bytes = grant_bytes;
                standing = false;
                rw = false;
              };
          ])
    @ (match inj with
      | Drop_open | Drop_grant -> []
      | _ -> [ Iface.Window_open { win = "w"; peer = "SERVER" } ])
    @ [ Iface.Call { sym = "srv"; ptr_args = [ (0, Iface.Local "req", size) ] } ]
    @ (if close_first && inj <> Drop_grant && inj <> Drop_open then
         [ Iface.Window_close { win = "w"; peer = "SERVER" } ]
       else [])
    @
    match inj with
    | Drop_remove | Drop_grant -> []
    | _ ->
        if use_destroy then [ Iface.Window_destroy { win = "w" } ]
        else [ Iface.Window_remove { win = "w"; buf = Iface.Local "req" } ]
  in
  let missing_thunks = match inj with No_thunk -> [ "srv" ] | _ -> [] in
  Ir.make ~missing_thunks [ client body; server () ]

let expected_key (_, _, _, _, inj) =
  match inj with
  | Clean -> None
  | No_thunk -> Some "trampoline:no-thunk:CLIENT.main:srv"
  | Drop_grant -> Some "coverage:no-grant:CLIENT.main:srv:0:SERVER"
  | Shrink_grant -> Some "coverage:partial:CLIENT.main:srv:0:SERVER"
  | Drop_open -> Some "coverage:not-open:CLIENT.main:srv:0:SERVER"
  | Drop_remove -> Some "leak:CLIENT.main:w/req"

let prop_injection =
  QCheck.Test.make ~count:200
    ~name:"cubicheck: well-formed clean; each injected violation yields exactly one finding"
    (QCheck.make gen_case)
    (fun case ->
      let fs = Static.run (build_case case) in
      match expected_key case with
      | None -> fs = []
      | Some k -> List.length fs = 1 && (List.hd fs).Report.key = k)

(* Differential: [Window.covers ~access] / [covered_prefix ~access]
   must agree with a naive per-byte sweep over the range list, for
   random scripts of R/RW grants, downgrades and revocations. *)

type wop = W_grant of int * int * bool | W_down of int | W_revoke of int

let gen_wscript =
  QCheck.Gen.(
    let op =
      frequency
        [
          ( 3,
            let* off = int_range 0 31 in
            let* len = int_range 1 8 in
            let* rw = bool in
            return (W_grant (off, len, rw)) );
          (1, map (fun o -> W_down o) (int_range 0 31));
          (1, map (fun o -> W_revoke o) (int_range 0 31));
        ]
    in
    let* n = int_range 0 14 in
    list_size (return n) op)

let prop_covers_reference =
  QCheck.Test.make ~count:300
    ~name:"window: covers ~access agrees with a per-byte reference sweep"
    (QCheck.make gen_wscript)
    (fun script ->
      let base = 0x4000 in
      let tbl = Window.create_table ~owner:1 ~ncubicles:4 in
      let w = Window.init tbl ~klass:Mm.Page_meta.Heap in
      (* reference: newest-first range list; down/revoke hit the newest
         range rooted at ptr, mirroring the Window implementation *)
      let ranges = ref [] in
      List.iter
        (fun op ->
          match op with
          | W_grant (off, len, rw) ->
              let ptr = base + (off * 16) and size = len * 16 in
              Window.add_range ~perm:(if rw then Window.RW else Window.R) tbl w ~ptr ~size;
              ranges := (ptr, size, ref rw) :: !ranges
          | W_down off -> (
              let ptr = base + (off * 16) in
              match List.find_opt (fun (p, _, _) -> p = ptr) !ranges with
              | None -> ()
              | Some (_, _, rw) ->
                  Window.downgrade_range w ~ptr;
                  rw := false)
          | W_revoke off ->
              let ptr = base + (off * 16) in
              if List.exists (fun (p, _, _) -> p = ptr) !ranges then begin
                Window.remove_range tbl w ~ptr;
                let removed = ref false in
                ranges :=
                  List.filter
                    (fun (p, _, _) ->
                      if (not !removed) && p = ptr then (
                        removed := true;
                        false)
                      else true)
                    !ranges
              end)
        script;
      let byte_ok access b =
        List.exists
          (fun (p, s, rw) -> p <= b && b < p + s && (access = Window.Read || !rw))
          !ranges
      in
      let ref_prefix access ptr size =
        let n = ref 0 in
        (try
           for b = ptr to ptr + size - 1 do
             if byte_ok access b then incr n else raise Exit
           done
         with Exit -> ());
        !n
      in
      let queries = [ (0, 4); (2, 8); (4, 2); (8, 16); (16, 8); (24, 12); (30, 4) ] in
      List.for_all
        (fun access ->
          List.for_all
            (fun (qoff, qlen) ->
              let ptr = base + (qoff * 16) and size = qlen * 16 in
              Window.covered_prefix ~access w ~ptr ~size = ref_prefix access ptr size
              && Window.covers ~access w ~ptr ~size
                 = (size > 0 && ref_prefix access ptr size >= size))
            queries)
        [ Window.Read; Window.Write ])

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_injection; prop_covers_reference ]

let () =
  Alcotest.run "analysis"
    [
      ( "callgraph",
        [
          Alcotest.test_case "clean" `Quick test_callgraph_clean;
          Alcotest.test_case "missing thunk" `Quick test_callgraph_missing_thunk;
          Alcotest.test_case "missing guard" `Quick test_callgraph_missing_guard;
          Alcotest.test_case "direct call" `Quick test_callgraph_direct_call;
          Alcotest.test_case "unresolved" `Quick test_callgraph_unresolved;
          Alcotest.test_case "edges" `Quick test_callgraph_edges;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "no grant" `Quick test_coverage_no_grant;
          Alcotest.test_case "not open" `Quick test_coverage_not_open;
          Alcotest.test_case "partial" `Quick test_coverage_partial;
          Alcotest.test_case "branch intersection" `Quick test_coverage_branch_intersection;
          Alcotest.test_case "init seeds exports" `Quick test_coverage_init_seeds_exports;
          Alcotest.test_case "transitive accessor" `Quick test_coverage_transitive_accessor;
          Alcotest.test_case "ro write" `Quick test_coverage_ro_write;
          Alcotest.test_case "rw grant allows write" `Quick test_coverage_rw_grant_allows_write;
          Alcotest.test_case "over-privilege lint" `Quick test_overprivilege_lint;
          Alcotest.test_case "shared callee exempt" `Quick test_coverage_shared_callee_exempt;
        ] );
      ( "leaks",
        [
          Alcotest.test_case "leak flagged" `Quick test_leak_flagged;
          Alcotest.test_case "destroy clean" `Quick test_leak_destroy_clean;
          Alcotest.test_case "standing exempt" `Quick test_leak_standing_exempt;
          Alcotest.test_case "partial on branch" `Quick test_leak_partial_on_branch;
          Alcotest.test_case "ro demoted" `Quick test_leak_ro_demoted;
        ] );
      ( "grant semantics",
        [
          Alcotest.test_case "covers" `Quick test_window_covers;
          Alcotest.test_case "monitor grants" `Quick test_monitor_window_grants;
          Alcotest.test_case "ro write rejected" `Quick test_monitor_ro_write_rejected;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "crossing suppresses race" `Quick
            test_replay_crossing_suppresses_race;
          Alcotest.test_case "race detected" `Quick test_replay_race_detected;
          Alcotest.test_case "mirror tracks acl" `Quick test_replay_mirror_tracks_acl;
          Alcotest.test_case "write through ro" `Quick test_replay_write_through_ro;
          Alcotest.test_case "downgrade tracked" `Quick test_replay_downgrade_tracked;
        ] );
      ( "seeded",
        [
          Alcotest.test_case "all caught" `Quick test_seeded_all_caught;
          Alcotest.test_case "static exactly one" `Quick test_seeded_static_exactly_one;
        ] );
      ( "report",
        [
          Alcotest.test_case "baseline diff" `Quick test_baseline_diff;
          Alcotest.test_case "dedup counts" `Quick test_dedup_counts;
        ] );
      ( "stacks",
        [
          Alcotest.test_case "fs stack clean" `Quick test_fs_stack_clean;
          Alcotest.test_case "net stack clean" `Quick test_net_stack_clean;
        ] );
      ("properties", qsuite);
    ]
