(* Tests for libmpk-style tag virtualisation (paper §8): more isolated
   cubicles than the 16 hardware keys, with physical keys mapped on
   demand and evicted LRU. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let is_violation f = match f () with
  | _ -> false
  | exception Hw.Fault.Violation _ -> true

(* a system of [n] isolated cubicles, each exporting peek/poke *)
let mk_many n =
  let mon = Monitor.create ~virtualise:true ~protection:Types.Full () in
  let cids =
    List.init n (fun i ->
        let cid =
          Monitor.create_cubicle mon ~name:(Printf.sprintf "C%02d" i) ~kind:Types.Isolated
            ~heap_pages:4 ~stack_pages:1
        in
        Monitor.register_exports mon cid
          [
            {
              Monitor.sym = Printf.sprintf "c%02d_poke" i;
              fn = (fun ctx a -> Api.write_u8 ctx a.(0) (a.(1) land 0xFF); 0);
              stack_bytes = 0;
            };
            {
              Monitor.sym = Printf.sprintf "c%02d_read_own" i;
              fn = (fun ctx a -> Api.read_u8 ctx a.(0));
              stack_bytes = 0;
            };
          ];
        cid)
  in
  (mon, cids)

let test_more_than_16_cubicles_boot () =
  let mon, cids = mk_many 24 in
  check_int "24 cubicles + monitor" 25 (Monitor.ncubicles mon);
  (* every cubicle can run and touch its own heap *)
  List.iteri
    (fun i cid ->
      let ctx = Monitor.ctx_for mon cid in
      let buf = Api.malloc ctx 16 in
      check_int "own access works"
        0
        (Monitor.call mon ~caller:cid (Printf.sprintf "c%02d_poke" i) [| buf; i |]))
    cids

let test_isolation_still_enforced_past_16 () =
  let mon, cids = mk_many 20 in
  let c0 = List.nth cids 0 and c19 = List.nth cids 19 in
  let buf0 = Monitor.malloc mon c0 16 in
  (* cubicle 19 (physical key certainly recycled) cannot touch C00's heap *)
  check_bool "cross access denied" true
    (is_violation (fun () -> Monitor.call mon ~caller:c19 "c19_poke" [| buf0; 1 |]))

let test_evictions_happen () =
  let mon, cids = mk_many 20 in
  (* round-robin through all cubicles: far more working tags than
     physical keys, so evictions must occur *)
  List.iteri
    (fun i cid ->
      let ctx = Monitor.ctx_for mon cid in
      let buf = Api.malloc ctx 8 in
      ignore (Monitor.call mon ~caller:cid (Printf.sprintf "c%02d_poke" i) [| buf; 1 |]))
    cids;
  check_bool "evictions occurred" true (Monitor.tag_evictions mon > 0)

let test_data_survives_eviction () =
  let mon, cids = mk_many 20 in
  let c0 = List.nth cids 0 in
  let ctx0 = Monitor.ctx_for mon c0 in
  let buf = Api.malloc ctx0 8 in
  ignore (Monitor.call mon ~caller:c0 "c00_poke" [| buf; 123 |]);
  (* churn through every other cubicle to force C00's key out *)
  List.iteri
    (fun i cid ->
      if i > 0 then begin
        let ctx = Monitor.ctx_for mon cid in
        let b = Api.malloc ctx 8 in
        ignore (Monitor.call mon ~caller:cid (Printf.sprintf "c%02d_poke" i) [| b; i |])
      end)
    cids;
  check_bool "evicted at least once" true (Monitor.tag_evictions mon > 0);
  (* C00 comes back: its data is intact and readable (lazy re-tagging
     through the fault handler) *)
  check_int "data survived eviction" 123
    (Monitor.call mon ~caller:c0 "c00_read_own" [| buf |])

let test_windows_work_across_virtual_tags () =
  let mon, cids = mk_many 20 in
  let a = List.nth cids 2 and b = List.nth cids 18 in
  let ctx = Monitor.ctx_for mon a in
  let buf = Api.malloc_page_aligned ctx 32 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:32;
  (* closed: denied *)
  check_bool "closed window denied" true
    (is_violation (fun () -> Monitor.call mon ~caller:a "c18_poke" [| buf; 7 |]));
  Api.window_open ctx wid b;
  check_int "open window works" 0 (Monitor.call mon ~caller:a "c18_poke" [| buf; 7 |]);
  Monitor.run_as mon a (fun () -> check_int "written" 7 (Api.read_u8 ctx buf))

let test_without_virtualise_still_fails () =
  let mon = Monitor.create ~protection:Types.Full () in
  for i = 1 to 14 do
    ignore
      (Monitor.create_cubicle mon ~name:(Printf.sprintf "K%d" i) ~kind:Types.Isolated
         ~heap_pages:1 ~stack_pages:1)
  done;
  check_bool "15th fails without virtualise" true
    (match
       Monitor.create_cubicle mon ~name:"K15" ~kind:Types.Isolated ~heap_pages:1
         ~stack_pages:1
     with
    | _ -> false
    | exception Types.Error _ -> true)

let test_virtualised_full_stack () =
  (* the whole library OS stack, plus enough extra isolated components
     to exceed the hardware keys, still serves files correctly *)
  let extras =
    List.init 12 (fun i ->
        (Builder.component ~heap_pages:2 ~stack_pages:1 (Printf.sprintf "X%02d" i),
         Types.Isolated))
  in
  let app = Builder.component ~heap_pages:64 ~stack_pages:4 "APP" in
  let sys =
    Libos.Boot.fs_stack ~protection:Types.Full ~virtualise:true
      ~extra:(extras @ [ (app, Types.Isolated) ])
      ()
  in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  Libos.Fileio.write_file fio "/v.txt" "virtualised tags";
  Alcotest.(check string) "roundtrip" "virtualised tags" (Libos.Fileio.read_file fio "/v.txt");
  check_int "19 cubicles incl. monitor" 20 (Monitor.ncubicles sys.Libos.Boot.mon)

let test_dedicated_tags_rejected_under_virtualise () =
  let mon, cids = mk_many 3 in
  let c0 = List.hd cids in
  let ctx = Monitor.ctx_for mon c0 in
  let buf = Api.malloc_page_aligned ctx 32 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:32;
  check_bool "dedicated tags rejected" true
    (match Api.window_open_dedicated ctx wid (List.nth cids 1) with
    | _ -> false
    | exception Types.Error _ -> true)

(* A failed spawn must leave the monitor exactly as it was: repeated
   oversized creations (stack pages land, then the heap allocation
   blows up) may not leak pages, cids, names or virtual keys. *)
let test_failed_spawns_leak_nothing () =
  let mon =
    Monitor.create ~virtualise:true ~protection:Types.Full ~mem_bytes:(8 * 1024 * 1024) ()
  in
  ignore
    (Monitor.create_cubicle mon ~name:"OK" ~kind:Types.Isolated ~heap_pages:2 ~stack_pages:1);
  let free0 = Monitor.free_page_count mon in
  let n0 = Monitor.ncubicles mon in
  for _ = 1 to 10 do
    match
      Monitor.create_cubicle mon ~name:"BIG" ~kind:Types.Isolated ~heap_pages:1_000_000
        ~stack_pages:2
    with
    | _ -> Alcotest.fail "oversized spawn unexpectedly succeeded"
    | exception (Types.Error _ | Mm.Page_alloc.Out_of_memory) -> ()
  done;
  check_int "no pages leaked" free0 (Monitor.free_page_count mon);
  check_int "no cubicles leaked" n0 (Monitor.ncubicles mon);
  (* the name is free again and a sane footprint still fits *)
  let cid =
    Monitor.create_cubicle mon ~name:"BIG" ~kind:Types.Isolated ~heap_pages:2 ~stack_pages:1
  in
  let ctx = Monitor.ctx_for mon cid in
  Monitor.run_as mon cid (fun () ->
      let b = Api.malloc ctx 8 in
      Api.write_u8 ctx b 42;
      check_int "respawned cubicle works" 42 (Api.read_u8 ctx b))

(* Keymux.free at teardown must scrub the freed tag from every core's
   PKRU still caching it: a register narrowed on another core would
   otherwise retain access to whatever cubicle next binds the slot. *)
let test_teardown_scrubs_core_registers () =
  let mon = Monitor.create ~virtualise:true ~ncores:2 ~protection:Types.Full () in
  let a =
    Monitor.create_cubicle mon ~name:"A" ~kind:Types.Isolated ~heap_pages:2 ~stack_pages:1
  in
  let phys_a = Monitor.cubicle_key mon a in
  let cpu = Monitor.cpu mon in
  (* core 1 caches A's physical tag in a narrowed register *)
  Hw.Cpu.set_core cpu 1;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ phys_a; Monitor.shared_key ]);
  Hw.Cpu.set_core cpu 0;
  check_bool "core 1 caches the tag" true
    (Hw.Pkru.can_read (Hw.Cpu.core_pkru cpu 1) phys_a);
  Monitor.destroy_cubicle mon a;
  check_bool "teardown scrubbed core 1" false
    (Hw.Pkru.can_read (Hw.Cpu.core_pkru cpu 1) phys_a);
  let km = Option.get (Monitor.keymux mon) in
  check_bool "shootdown counted" true ((Hw.Keymux.stats km).Hw.Keymux.key_shootdowns > 0)

(* Returning from a nested call must not re-admit a physical tag that
   was evicted and rebound to a different cubicle while the call ran:
   the restored register is recomputed from the caller's virtual key,
   not written back verbatim. *)
let test_return_does_not_readmit_recycled_tag () =
  let mon, cids = mk_many 20 in
  let km = Option.get (Monitor.keymux mon) in
  let c0 = List.hd cids and c1 = List.nth cids 1 in
  (* c1's churn export drags every other cubicle's key through the
     14-slot pool, guaranteeing c0's binding is evicted and its old
     physical tag rebound to someone else before the call returns *)
  Monitor.register_exports mon c1
    [
      {
        Monitor.sym = "c01_churn";
        fn =
          (fun ctx _ ->
            List.iteri
              (fun i cid ->
                if i >= 2 then begin
                  let b = Monitor.malloc mon cid 8 in
                  ignore (Api.call ctx (Printf.sprintf "c%02d_poke" i) [| b; i |])
                end)
              cids;
            0);
        stack_bytes = 0;
      };
    ];
  let ctx0 = Monitor.ctx_for mon c0 in
  let cpu = Monitor.cpu mon in
  Monitor.run_as mon c0 (fun () ->
      ignore (Api.call ctx0 "c01_churn" [||]);
      check_bool "churn evicted keys" true (Monitor.tag_evictions mon > 0);
      (* back in c0: every pool tag the register admits must be c0's
         own current binding — never a recycled tag now owned by one of
         the churned cubicles *)
      let pkru = Hw.Cpu.pkru cpu in
      for p = 1 to Hw.Pkru.nkeys - 2 do
        if Hw.Pkru.can_read pkru p then begin
          match Hw.Keymux.resident_vkey km p with
          | Some vkey ->
              check_bool
                (Printf.sprintf "tag %d admitted by c0's register belongs to c0" p)
                true
                (Hw.Keymux.cid_of_vkey km vkey = Some c0)
          | None -> Alcotest.failf "c0's register admits unbound tag %d" p
        end
      done)

(* --- qcheck: mapping consistency under random lifecycles ------------------- *)

type sched_op = Spawn of int | Teardown of int | Touch of int

let gen_sched =
  QCheck.Gen.(
    list_size (int_range 30 120)
      (oneof
         [
           map (fun i -> Spawn i) (int_bound 25);
           map (fun i -> Teardown i) (int_bound 25);
           map (fun i -> Touch i) (int_bound 25);
         ]))

let pp_sched ops =
  String.concat ";"
    (List.map
       (function
         | Spawn i -> Printf.sprintf "S%d" i
         | Teardown i -> Printf.sprintf "T%d" i
         | Touch i -> Printf.sprintf "C%d" i)
       ops)

(* Under any spawn/teardown/call schedule the virtual->physical mapping
   must stay consistent with the page tables and every core's PKRU:
   each physical tag is bound to at most one live cubicle, a page
   carrying a pool tag belongs to exactly the cubicle whose virtual key
   owns that tag (evicted cubicles keep no resident tags), and a
   narrowed PKRU register never readmits a tag that is not the current
   binding of some live cubicle. *)
let prop_keymux_consistent =
  QCheck.Test.make ~count:60 ~name:"keymux: mapping consistent under random lifecycle"
    (QCheck.make ~print:pp_sched gen_sched)
    (fun ops ->
      let mon = Monitor.create ~virtualise:true ~ncores:2 ~protection:Types.Full () in
      let km = Option.get (Monitor.keymux mon) in
      let live = Hashtbl.create 16 in
      let bufs = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | Spawn i when not (Hashtbl.mem live i) ->
              let cid =
                Monitor.create_cubicle mon ~name:(Printf.sprintf "S%d" i)
                  ~kind:Types.Isolated ~heap_pages:2 ~stack_pages:1
              in
              Monitor.register_exports mon cid
                [
                  {
                    Monitor.sym = Printf.sprintf "s%d_touch" i;
                    fn =
                      (fun ctx a ->
                        Api.write_u8 ctx a.(0) (i land 0xFF);
                        Api.read_u8 ctx a.(0));
                    stack_bytes = 0;
                  };
                ];
              Hashtbl.replace live i cid;
              Hashtbl.replace bufs i (Monitor.malloc mon cid 8)
          | Spawn _ -> ()
          | Teardown i -> (
              match Hashtbl.find_opt live i with
              | Some cid ->
                  Monitor.destroy_cubicle mon cid;
                  Hashtbl.remove live i;
                  Hashtbl.remove bufs i
              | None -> ())
          | Touch i -> (
              match Hashtbl.find_opt live i with
              | Some cid ->
                  let got =
                    Monitor.call mon ~caller:cid (Printf.sprintf "s%d_touch" i)
                      [| Hashtbl.find bufs i |]
                  in
                  if got <> i land 0xFF then
                    QCheck.Test.fail_reportf "touch %d read back %d" i got
              | None -> ()))
        ops;
      let cpu = Monitor.cpu mon in
      let pt = Hw.Cpu.page_table cpu in
      let residents = Hw.Keymux.residents km in
      let live_cids = Monitor.live_cids mon in
      (* each pool tag bound at most once, to a live cubicle's own vkey *)
      let phys_tags = List.map fst residents in
      if List.length phys_tags <> List.length (List.sort_uniq compare phys_tags) then
        QCheck.Test.fail_reportf "physical tag bound twice: %s"
          (String.concat "," (List.map string_of_int phys_tags));
      List.iter
        (fun (phys, vkey) ->
          match Hw.Keymux.cid_of_vkey km vkey with
          | Some cid when List.mem cid live_cids ->
              if Monitor.cubicle_raw_key mon cid <> vkey then
                QCheck.Test.fail_reportf "tag %d bound to vkey %d, but cubicle %d owns %d"
                  phys vkey cid
                  (Monitor.cubicle_raw_key mon cid)
          | Some cid -> QCheck.Test.fail_reportf "tag %d bound to dead cubicle %d" phys cid
          | None -> QCheck.Test.fail_reportf "tag %d bound to unallocated vkey %d" phys vkey)
        residents;
      (* page tags never alias: a page carrying a pool tag belongs to
         the cubicle resident at that tag; evicted cubicles' pages are
         all back on the monitor tag *)
      Hashtbl.iter
        (fun _ cid ->
          let vkey = Monitor.cubicle_raw_key mon cid in
          let res = Hw.Keymux.resident km vkey in
          List.iter
            (fun page ->
              let tag = Hw.Page_table.key pt page in
              if tag <> 0 && Some tag <> res then
                QCheck.Test.fail_reportf
                  "cubicle %d (vkey %d, resident %s) owns page %d tagged %d" cid vkey
                  (match res with Some p -> string_of_int p | None -> "no")
                  page tag)
            (Mm.Page_meta.owned_by (Monitor.meta mon) cid))
        live;
      (* a narrowed PKRU register only admits currently-bound tags *)
      for core = 0 to Hw.Cpu.ncores cpu - 1 do
        let pkru = Hw.Cpu.core_pkru cpu core in
        if pkru <> Hw.Pkru.all_allow then
          for p = 1 to Hw.Pkru.nkeys - 2 do
            if Hw.Pkru.can_read pkru p && not (List.mem_assoc p residents) then
              QCheck.Test.fail_reportf "core %d PKRU admits unbound tag %d" core p
          done
      done;
      true)

let () =
  Alcotest.run "virtualise"
    [
      ( "tag virtualisation",
        [
          Alcotest.test_case "boot >16" `Quick test_more_than_16_cubicles_boot;
          Alcotest.test_case "isolation holds" `Quick test_isolation_still_enforced_past_16;
          Alcotest.test_case "evictions" `Quick test_evictions_happen;
          Alcotest.test_case "data survives" `Quick test_data_survives_eviction;
          Alcotest.test_case "windows work" `Quick test_windows_work_across_virtual_tags;
          Alcotest.test_case "without flag fails" `Quick test_without_virtualise_still_fails;
          Alcotest.test_case "full stack" `Quick test_virtualised_full_stack;
          Alcotest.test_case "no dedicated tags" `Quick test_dedicated_tags_rejected_under_virtualise;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "failed spawns leak nothing" `Quick
            test_failed_spawns_leak_nothing;
          Alcotest.test_case "teardown scrubs cores" `Quick
            test_teardown_scrubs_core_registers;
          Alcotest.test_case "return recomputes pkru" `Quick
            test_return_does_not_readmit_recycled_tag;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_keymux_consistent ]);
    ]
