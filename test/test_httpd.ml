(* End-to-end tests for the web server: full request path through
   NETDEV, LWIP, NGINX, VFSCORE, RAMFS under all protection levels. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let boot ?(protection = Types.Full) ?(zerocopy = false) files =
  let sys =
    Libos.Boot.net_stack ~protection ~extra:[ (Httpd.Server.component (), Types.Isolated) ] ()
  in
  Libos.Boot.populate sys ~as_app:"NGINX" files;
  let server = Httpd.Server.start ~zerocopy sys in
  let siege = Httpd.Siege.make sys server in
  (sys, server, siege)

let memcpy_cycles sys =
  Telemetry.Attrib.category_total
    (Hw.Cost.attrib (Monitor.cost sys.Libos.Boot.mon))
    Telemetry.Attrib.Memcpy

(* --- http parsing (pure) ------------------------------------------------------ *)

let test_parse_request () =
  (match Httpd.Http.parse_request "GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n" with
  | Some { Httpd.Http.meth; path; keep_alive } ->
      check_str "method" "GET" meth;
      check_str "path" "/index.html" path;
      check_bool "1.0 defaults to close" false keep_alive
  | None -> Alcotest.fail "should parse");
  (match
     Httpd.Http.parse_request "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
   with
  | Some { Httpd.Http.keep_alive; _ } -> check_bool "explicit keep-alive" true keep_alive
  | None -> Alcotest.fail "should parse");
  (match Httpd.Http.parse_request "HEAD /x HTTP/1.1\r\n\r\n" with
  | Some { Httpd.Http.meth; keep_alive; _ } ->
      check_str "head" "HEAD" meth;
      check_bool "1.1 defaults persistent" true keep_alive
  | None -> Alcotest.fail "should parse");
  check_bool "garbage" true (Httpd.Http.parse_request "NONSENSE\r\n\r\n" = None);
  check_bool "post rejected" true
    (Httpd.Http.parse_request "POST /x HTTP/1.0\r\n\r\n" = None);
  check_bool "relative path rejected" true
    (Httpd.Http.parse_request "GET x HTTP/1.0\r\n\r\n" = None)

let test_mime () =
  check_str "html" "text/html" (Httpd.Http.mime_type "/a/index.html");
  check_str "txt" "text/plain" (Httpd.Http.mime_type "/notes.txt");
  check_str "default" "application/octet-stream" (Httpd.Http.mime_type "/blob")

let test_response_header () =
  let h = Httpd.Http.response_header ~status:200 ~content_length:17 () in
  check_bool "status" true (String.length h > 0 && String.sub h 0 15 = "HTTP/1.0 200 OK");
  check_bool "content length" true
    (let rec mem i =
       i + 18 <= String.length h && (String.sub h i 18 = "Content-Length: 17" || mem (i + 1))
     in
     mem 0)

(* --- serving -------------------------------------------------------------------- *)

let test_serve_small_file () =
  let _, _, siege = boot [ ("/index.html", "<html>hi</html>") ] in
  let r = Httpd.Siege.fetch siege "/index.html" in
  check_int "200" 200 r.Httpd.Siege.status;
  check_str "body" "<html>hi</html>" r.Httpd.Siege.body

let test_serve_404 () =
  let _, _, siege = boot [ ("/a", "x") ] in
  let r = Httpd.Siege.fetch siege "/missing" in
  check_int "404" 404 r.Httpd.Siege.status;
  check_str "empty body" "" r.Httpd.Siege.body

let test_serve_large_file_multi_chunk () =
  let body = String.init 100_000 (fun i -> Char.chr (32 + (i mod 90))) in
  let _, _, siege = boot [ ("/big.bin", body) ] in
  let r = Httpd.Siege.fetch siege "/big.bin" in
  check_int "200" 200 r.Httpd.Siege.status;
  check_bool "body intact" true (r.Httpd.Siege.body = body)

let test_serve_many_requests () =
  let files = List.init 5 (fun i -> (Printf.sprintf "/f%d" i, String.make (100 * (i + 1)) 'x')) in
  let _, server, siege = boot files in
  List.iter
    (fun (path, contents) ->
      let r = Httpd.Siege.fetch siege path in
      check_bool ("body " ^ path) true (r.Httpd.Siege.body = contents))
    files;
  check_int "served count" 5 (Httpd.Server.requests_served server)

let test_serve_all_protection_levels () =
  List.iter
    (fun protection ->
      let _, _, siege = boot ~protection [ ("/p", "protected contents") ] in
      let r = Httpd.Siege.fetch siege "/p" in
      check_str
        (Printf.sprintf "body at %s" (Types.protection_to_string protection))
        "protected contents" r.Httpd.Siege.body)
    [ Types.None_; Types.Trampolines; Types.Mpk; Types.Full ]

let test_latency_grows_with_size () =
  let sizes = [ 1024; 65536; 262144 ] in
  let sys, server, siege =
    boot (List.map (fun s -> (Printf.sprintf "/s%d" s, String.make s 'd')) sizes)
  in
  ignore sys;
  ignore server;
  let results =
    Httpd.Siege.latency_for_sizes siege ~sizes ~repeats:1
      ~populate:(fun s -> Printf.sprintf "/s%d" s)
      ()
  in
  (match results with
  | [ (_, small, _); (_, mid, _); (_, big, _) ] ->
      check_bool "monotone" true (small <= mid && mid < big)
  | _ -> Alcotest.fail "expected 3 results");
  ()

let test_fig5_topology () =
  (* Serving traffic produces the Figure 5 edges: NGINX->LWIP,
     LWIP->NETDEV, NGINX->VFSCORE, VFSCORE->RAMFS, LWIP->ALLOC. *)
  let sys, _, siege = boot [ ("/t", String.make 8000 'y') ] in
  let stats = Monitor.stats sys.Libos.Boot.mon in
  let before = Stats.snapshot stats in
  ignore (Httpd.Siege.fetch siege "/t");
  let cid name = Builder.cid sys.Libos.Boot.built name in
  let edges = Stats.diff_edges stats ~since:before in
  let has a b = List.mem_assoc (cid a, cid b) edges in
  check_bool "nginx->lwip" true (has "NGINX" "LWIP");
  check_bool "lwip->netdev" true (has "LWIP" "NETDEV");
  check_bool "nginx->vfs" true (has "NGINX" "VFSCORE");
  check_bool "vfs->ramfs" true (has "VFSCORE" "RAMFS");
  check_bool "lwip->alloc" true (has "LWIP" "ALLOC")

let test_keep_alive_pipelined () =
  let _, server, siege =
    boot [ ("/a.html", "<a/>"); ("/b.txt", "bee"); ("/c.bin", String.make 9000 'c') ]
  in
  let results = Httpd.Siege.fetch_pipelined siege [ "/a.html"; "/b.txt"; "/c.bin" ] in
  (match results with
  | [ (200, a); (200, b); (200, c) ] ->
      check_str "first" "<a/>" a;
      check_str "second" "bee" b;
      check_int "third" 9000 (String.length c)
  | _ -> Alcotest.fail "expected three 200s");
  check_int "three served" 3 (Httpd.Server.requests_served server)

let test_head_request () =
  let _, _, siege = boot [ ("/doc.html", String.make 5000 'h') ] in
  let header = Httpd.Siege.fetch_head siege "/doc.html" in
  check_bool "200" true
    (String.length header >= 15 && String.sub header 0 15 = "HTTP/1.0 200 OK");
  check_bool "content-length advertised" true
    (let rec mem i =
       i + 20 <= String.length header
       && (String.sub header i 20 = "Content-Length: 5000" || mem (i + 1))
     in
     mem 0);
  check_bool "mime type" true
    (let rec mem i =
       i + 9 <= String.length header && (String.sub header i 9 = "text/html" || mem (i + 1))
     in
     mem 0)

(* --- zero-copy sendfile path -------------------------------------------------- *)

let test_zerocopy_matches_copy () =
  (* Same files, same requests, both serving modes: the responses must
     be byte-identical, and the zero-copy path must move at least 5x
     fewer memcpy cycles (body bytes never transit file_buf). *)
  let body = String.init 100_000 (fun i -> Char.chr (32 + (i * 7 mod 90))) in
  let files = [ ("/z.bin", body); ("/tiny.txt", "tiny") ] in
  let run zerocopy =
    let sys, _, siege = boot ~zerocopy files in
    let before = memcpy_cycles sys in
    let r = Httpd.Siege.fetch siege "/z.bin" in
    let t = Httpd.Siege.fetch siege "/tiny.txt" in
    (r, t, memcpy_cycles sys - before)
  in
  let rc, tc, copy_mc = run false in
  let rz, tz, zc_mc = run true in
  check_int "status" rc.Httpd.Siege.status rz.Httpd.Siege.status;
  check_bool "large body identical" true
    (rc.Httpd.Siege.body = body && rz.Httpd.Siege.body = body);
  check_str "tiny body identical" tc.Httpd.Siege.body tz.Httpd.Siege.body;
  check_bool "zero-copy memcpy at least 5x lower" true (zc_mc > 0 && copy_mc >= 5 * zc_mc)

let test_zerocopy_topology () =
  (* Grant-and-forward reroutes the body: RAMFS streams directly into
     LWIP (a call edge that never exists in copy mode), while the
    request path and header sends keep the Figure 5 edges. *)
  let sys, _, siege = boot ~zerocopy:true [ ("/t", String.make 8000 'y') ] in
  let stats = Monitor.stats sys.Libos.Boot.mon in
  let before = Stats.snapshot stats in
  let r = Httpd.Siege.fetch siege "/t" in
  check_int "200" 200 r.Httpd.Siege.status;
  let cid name = Builder.cid sys.Libos.Boot.built name in
  let edges = Stats.diff_edges stats ~since:before in
  let has a b = List.mem_assoc (cid a, cid b) edges in
  check_bool "nginx->vfs" true (has "NGINX" "VFSCORE");
  check_bool "vfs->ramfs" true (has "VFSCORE" "RAMFS");
  check_bool "ramfs->lwip (zero-copy stream)" true (has "RAMFS" "LWIP");
  check_bool "lwip->netdev" true (has "LWIP" "NETDEV")

let test_zerocopy_all_protections () =
  let body = String.make 70_000 'q' in
  List.iter
    (fun protection ->
      let _, _, siege = boot ~protection ~zerocopy:true [ ("/p", body) ] in
      let r = Httpd.Siege.fetch siege "/p" in
      check_bool
        (Printf.sprintf "body at %s" (Types.protection_to_string protection))
        true
        (r.Httpd.Siege.body = body))
    [ Types.None_; Types.Trampolines; Types.Mpk; Types.Full ]

let test_zerocopy_keep_alive_repeat () =
  (* Standing grants: re-serving the same file adds no new ranges, the
     chunks stay granted, and the bytes still arrive intact. *)
  let body = String.make 9000 'r' in
  let _, server, siege = boot ~zerocopy:true [ ("/r.bin", body) ] in
  let results = Httpd.Siege.fetch_pipelined siege [ "/r.bin"; "/r.bin"; "/r.bin" ] in
  (match results with
  | [ (200, a); (200, b); (200, c) ] ->
      check_bool "all three intact" true (a = body && b = body && c = body)
  | _ -> Alcotest.fail "expected three 200s");
  check_int "three served" 3 (Httpd.Server.requests_served server)

let test_full_isolation_overhead_exists () =
  (* CubicleOS must cost more cycles than the unprotected baseline for
     the same work — and not absurdly more (sanity bounds for Fig. 7). *)
  let fetch_cycles protection =
    let _, _, siege = boot ~protection [ ("/w", String.make 65536 'w') ] in
    (Httpd.Siege.fetch siege "/w").Httpd.Siege.cycles
  in
  let base = fetch_cycles Types.None_ in
  let full = fetch_cycles Types.Full in
  check_bool "full costs more" true (full > base);
  check_bool "under 10x" true (full < 10 * base)

(* --- multi-tenant serving sets --------------------------------------------- *)

let test_tenant_request_roundtrip () =
  let sys = Httpd.Tenant.boot ~virtualise:true () in
  List.iter (Httpd.Tenant.spawn sys) [ 1; 2; 3 ];
  List.iter
    (fun t ->
      check_str
        (Printf.sprintf "tenant %d" t)
        (Httpd.Tenant.expected ~tenant:t ~off:5 ~len:40)
        (Httpd.Tenant.request sys ~tenant:t ~off:5 ~len:40))
    [ 1; 2; 3 ];
  (* tenants are isolated components: 3 pairs + gateway + monitor *)
  check_int "cubicle count" 8 (Monitor.ncubicles (Httpd.Tenant.mon sys))

let test_tenant_lifecycle_recycles () =
  let sys = Httpd.Tenant.boot ~virtualise:true () in
  let mon = Httpd.Tenant.mon sys in
  List.iter (Httpd.Tenant.spawn sys) [ 1; 2; 3 ];
  ignore (Httpd.Tenant.request sys ~tenant:2 ~off:0 ~len:16);
  let pages = Monitor.free_page_count mon in
  let cubs = Monitor.ncubicles mon in
  (* teardown + respawn must reuse the dead pair's cids, virtual keys
     and page footprint exactly *)
  Httpd.Tenant.teardown sys 2;
  check_bool "pages released" true (Monitor.free_page_count mon > pages);
  Httpd.Tenant.spawn sys 2;
  check_int "cubicles recycled" cubs (Monitor.ncubicles mon);
  check_int "page footprint identical" pages (Monitor.free_page_count mon);
  check_bool "cid pool not grown" true (List.length (Monitor.live_cids mon) = cubs);
  (* the respawned tenant and an untouched neighbour both serve *)
  List.iter
    (fun t ->
      check_str
        (Printf.sprintf "tenant %d after churn" t)
        (Httpd.Tenant.expected ~tenant:t ~off:9 ~len:25)
        (Httpd.Tenant.request sys ~tenant:t ~off:9 ~len:25))
    [ 2; 3 ];
  check_int "live tenants" 3 (List.length (Httpd.Tenant.live sys))

let test_tenant_teardown_errors () =
  let sys = Httpd.Tenant.boot ~virtualise:true () in
  Httpd.Tenant.spawn sys 1;
  check_bool "double spawn rejected" true
    (match Httpd.Tenant.spawn sys 1 with
    | _ -> false
    | exception Types.Error _ -> true);
  Httpd.Tenant.teardown sys 1;
  check_bool "double teardown rejected" true
    (match Httpd.Tenant.teardown sys 1 with
    | _ -> false
    | exception Types.Error _ -> true);
  check_bool "request to dead tenant rejected" true
    (match Httpd.Tenant.request sys ~tenant:1 ~off:0 ~len:8 with
    | _ -> false
    | exception Types.Error _ -> true)

let test_tenant_pressure_past_16_keys () =
  (* 12 tenants = 25 isolated cubicles over 14 physical tags: every
     round-robin sweep evicts, yet every response stays byte-exact *)
  let sys = Httpd.Tenant.boot ~virtualise:true () in
  let mon = Httpd.Tenant.mon sys in
  List.iter (Httpd.Tenant.spawn sys) (List.init 12 (fun i -> i + 1));
  for round = 0 to 1 do
    for t = 1 to 12 do
      let off = (t * 3) + round and len = 32 + t in
      check_str
        (Printf.sprintf "tenant %d round %d" t round)
        (Httpd.Tenant.expected ~tenant:t ~off ~len)
        (Httpd.Tenant.request sys ~tenant:t ~off ~len)
    done
  done;
  check_bool "evictions occurred" true (Monitor.tag_evictions mon > 0)

let () =
  Alcotest.run "httpd"
    [
      ( "http",
        [
          Alcotest.test_case "parse request" `Quick test_parse_request;
          Alcotest.test_case "mime types" `Quick test_mime;
          Alcotest.test_case "response header" `Quick test_response_header;
        ] );
      ( "serving",
        [
          Alcotest.test_case "small file" `Quick test_serve_small_file;
          Alcotest.test_case "404" `Quick test_serve_404;
          Alcotest.test_case "large file" `Quick test_serve_large_file_multi_chunk;
          Alcotest.test_case "many requests" `Quick test_serve_many_requests;
          Alcotest.test_case "all protections" `Quick test_serve_all_protection_levels;
          Alcotest.test_case "latency vs size" `Slow test_latency_grows_with_size;
          Alcotest.test_case "keep-alive pipeline" `Quick test_keep_alive_pipelined;
          Alcotest.test_case "head request" `Quick test_head_request;
          Alcotest.test_case "fig5 topology" `Quick test_fig5_topology;
          Alcotest.test_case "isolation overhead" `Quick test_full_isolation_overhead_exists;
        ] );
      ( "zero-copy",
        [
          Alcotest.test_case "matches copy mode" `Quick test_zerocopy_matches_copy;
          Alcotest.test_case "grant-and-forward topology" `Quick test_zerocopy_topology;
          Alcotest.test_case "all protections" `Quick test_zerocopy_all_protections;
          Alcotest.test_case "keep-alive repeat" `Quick test_zerocopy_keep_alive_repeat;
        ] );
      ( "tenants",
        [
          Alcotest.test_case "request roundtrip" `Quick test_tenant_request_roundtrip;
          Alcotest.test_case "lifecycle recycles" `Quick test_tenant_lifecycle_recycles;
          Alcotest.test_case "spawn/teardown errors" `Quick test_tenant_teardown_errors;
          Alcotest.test_case "pressure past 16 keys" `Quick test_tenant_pressure_past_16_keys;
        ] );
    ]
