(* Cross-cutting integration tests: multiple applications in one
   system, failure injection, policy matrices, and reference-model
   property tests for the file systems. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- two applications side by side --------------------------------------------- *)

let test_nginx_and_database_coexist () =
  (* The web server and the database engine as two isolated apps over
     one library OS instance, each with private state. *)
  let db_app = Builder.component ~heap_pages:256 ~stack_pages:4 "DBAPP" in
  let sys =
    Libos.Boot.net_stack ~protection:Types.Full ~mem_bytes:(256 * 1024 * 1024)
      ~extra:[ (Httpd.Server.component (), Types.Isolated); (db_app, Types.Isolated) ]
      ()
  in
  (* web side *)
  Libos.Boot.populate sys ~as_app:"NGINX" [ ("/page.html", "<p>served</p>") ];
  let server = Httpd.Server.start sys in
  let siege = Httpd.Siege.make sys server in
  (* db side *)
  let db_ctx = Libos.Boot.app_ctx sys "DBAPP" in
  let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make db_ctx) in
  Monitor.run_as sys.Libos.Boot.mon (Api.self db_ctx) (fun () ->
      let db = Minidb.Db.open_db os ~path:"/shop.db" in
      let t = Minidb.Db.create_table db "orders" in
      Minidb.Db.with_txn db (fun () ->
          for i = 1 to 100 do
            ignore (Minidb.Db.insert db t [ Minidb.Record.int i ])
          done);
      (* interleave: serve a request in the middle of database work *)
      let r = Httpd.Siege.fetch siege "/page.html" in
      check_str "web ok" "<p>served</p>" r.Httpd.Siege.body;
      check_int "db ok" 100 (Minidb.Db.row_count t);
      Minidb.Db.close db);
  (* both applications' files live in the same RAMFS instance *)
  check_int "both apps' files present" 2 (Libos.Ramfs.file_count sys.ramfs)

let test_db_app_cannot_touch_web_buffers () =
  let db_app = Builder.component ~heap_pages:32 ~stack_pages:2 "DBAPP" in
  let sys =
    Libos.Boot.net_stack ~protection:Types.Full
      ~extra:[ (Httpd.Server.component (), Types.Isolated); (db_app, Types.Isolated) ]
      ()
  in
  let nginx_ctx = Libos.Boot.app_ctx sys "NGINX" in
  let secret = Api.malloc_page_aligned nginx_ctx 64 in
  Monitor.run_as sys.Libos.Boot.mon (Api.self nginx_ctx) (fun () ->
      Api.write_string nginx_ctx secret "session cookie");
  let db_ctx = Libos.Boot.app_ctx sys "DBAPP" in
  check_bool "cross-app read blocked" true
    (match Monitor.run_as sys.Libos.Boot.mon (Api.self db_ctx) (fun () ->
         Api.read_u8 db_ctx secret)
     with
    | _ -> false
    | exception Hw.Fault.Violation _ -> true)

(* --- failure injection ------------------------------------------------------------ *)

let test_component_exception_does_not_wedge_system () =
  (* A component raising mid-call must not corrupt monitor state:
     PKRU, current cubicle and later calls all stay correct. *)
  let sys =
    Libos.Boot.fs_stack ~protection:Types.Full
      ~extra:[ (Builder.component ~heap_pages:32 ~stack_pages:2 "APP", Types.Isolated) ]
      ()
  in
  let mon = sys.Libos.Boot.mon in
  let ramfs = Monitor.lookup_cubicle mon "RAMFS" in
  Monitor.register_exports mon ramfs
    [ { Monitor.sym = "ramfs_crash"; fn = (fun _ _ -> failwith "injected fault"); stack_bytes = 0 } ];
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let fio = Libos.Fileio.make ctx in
  Libos.Fileio.write_file fio "/pre" "before crash";
  (* crash the file system component mid-call, twice *)
  for _ = 1 to 2 do
    (try ignore (Api.call ctx "ramfs_crash" [||]) with Failure _ -> ())
  done;
  check_int "cur restored" Monitor.monitor_cid (Monitor.current mon);
  (* the system still works afterwards *)
  Libos.Fileio.write_file fio "/post" "after crash";
  check_str "still serving" "after crash" (Libos.Fileio.read_file fio "/post");
  check_str "old data intact" "before crash" (Libos.Fileio.read_file fio "/pre")

let test_violation_mid_transaction_rolls_back () =
  (* An isolation violation inside a transaction aborts it cleanly. *)
  let app = Builder.component ~heap_pages:128 ~stack_pages:4 "APP" in
  let sys = Libos.Boot.fs_stack ~protection:Types.Full ~extra:[ (app, Types.Isolated) ] () in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make ctx) in
  Monitor.run_as sys.Libos.Boot.mon (Api.self ctx) (fun () ->
      let db = Minidb.Db.open_db os ~path:"/tx.db" in
      let t = Minidb.Db.create_table db "t" in
      Minidb.Db.with_txn db (fun () -> ignore (Minidb.Db.insert db t [ Minidb.Record.int 1 ]));
      (* a transaction that trips a protection fault part-way *)
      let vfs_page =
        let rec find p =
          if Monitor.page_owner sys.Libos.Boot.mon p
             = Some (Monitor.lookup_cubicle sys.Libos.Boot.mon "VFSCORE")
          then Hw.Addr.base_of_page p
          else find (p + 1)
        in
        find 0
      in
      (try
         Minidb.Db.with_txn db (fun () ->
             ignore (Minidb.Db.insert db t [ Minidb.Record.int 2 ]);
             (* illegal: the app touches VFSCORE memory *)
             ignore (Api.read_u8 ctx vfs_page))
       with Hw.Fault.Violation _ -> ());
      check_int "partial insert rolled back" 1 (Minidb.Db.row_count t);
      Minidb.Db.close db)

(* --- policy x protection matrix ------------------------------------------------------ *)

let test_write_path_under_all_policies () =
  List.iter
    (fun mapping ->
      List.iter
        (fun revocation ->
          let policy = { Monitor.mapping; revocation } in
          let app = Builder.component ~heap_pages:64 ~stack_pages:2 "APP" in
          let sys =
            Libos.Boot.fs_stack ~protection:Types.Full ~policy
              ~extra:[ (app, Types.Isolated) ] ()
          in
          let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
          Libos.Fileio.write_file fio "/p" "policy matrix";
          check_str "roundtrip" "policy matrix" (Libos.Fileio.read_file fio "/p"))
        [ `Causal; `Eager_revoke ])
    [ `Lazy_trap; `Eager_on_open ]

let test_virtualised_net_stack_serves () =
  let extras =
    List.init 10 (fun i ->
        (Builder.component ~heap_pages:2 ~stack_pages:1 (Printf.sprintf "PAD%02d" i),
         Types.Isolated))
  in
  let sys =
    Libos.Boot.net_stack ~protection:Types.Full ~virtualise:true
      ~extra:((Httpd.Server.component (), Types.Isolated) :: extras)
      ()
  in
  Libos.Boot.populate sys ~as_app:"NGINX" [ ("/v", String.make 5000 'v') ];
  let server = Httpd.Server.start sys in
  let siege = Httpd.Siege.make sys server in
  let r = Httpd.Siege.fetch siege "/v" in
  check_int "served under virtualised tags" 5000 (String.length r.Httpd.Siege.body);
  check_bool "tags were virtualised" true (Monitor.tag_evictions sys.Libos.Boot.mon >= 0)

(* --- reference-model property tests --------------------------------------------------- *)

(* random file system operation scripts, checked against a Hashtbl of
   OCaml strings *)
type fs_op =
  | Op_write of int * string  (* file index, contents *)
  | Op_append of int * string
  | Op_delete of int
  | Op_rename of int * int
  | Op_read of int
  | Op_truncate of int * int

let fs_op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun i s -> Op_write (i, s)) (int_bound 4) (string_size (int_bound 600));
        map2 (fun i s -> Op_append (i, s)) (int_bound 4) (string_size (int_bound 300));
        map (fun i -> Op_delete i) (int_bound 4);
        map2 (fun a b -> Op_rename (a, b)) (int_bound 4) (int_bound 4);
        map (fun i -> Op_read i) (int_bound 4);
        map2 (fun i n -> Op_truncate (i, n)) (int_bound 4) (int_bound 500);
      ])

let apply_ref (reference : (string, string) Hashtbl.t) name = function
  | Op_write (_, s) -> Hashtbl.replace reference name s
  | Op_append (_, s) ->
      Hashtbl.replace reference name (Option.value ~default:"" (Hashtbl.find_opt reference name) ^ s)
  | Op_delete _ -> Hashtbl.remove reference name
  | Op_truncate (_, n) -> (
      match Hashtbl.find_opt reference name with
      | Some s ->
          let cur = String.length s in
          Hashtbl.replace reference name
            (if n <= cur then String.sub s 0 n else s ^ String.make (n - cur) '\000')
      | None -> ())
  | Op_rename _ | Op_read _ -> ()

let run_fs_script fio ops =
  let reference = Hashtbl.create 8 in
  let name i = Printf.sprintf "/f%d" i in
  List.iter
    (fun op ->
      (match op with
      | Op_write (i, s) -> Libos.Fileio.write_file fio (name i) s
      | Op_append (i, s) ->
          let fd = Libos.Fileio.open_file fio (name i) ~create:true in
          let off = Libos.Fileio.file_size fio fd in
          if String.length s > 0 then begin
            let ctx = Libos.Fileio.ctx fio in
            let buf = Api.malloc_page_aligned ctx (String.length s) in
            Api.write_string ctx buf s;
            ignore (Libos.Fileio.pwrite fio ~fd ~buf ~len:(String.length s) ~off);
            Api.free ctx buf
          end;
          ignore (Libos.Fileio.close_file fio fd)
      | Op_delete i -> ignore (Libos.Fileio.unlink fio (name i))
      | Op_rename (a, b) ->
          if a <> b && Libos.Fileio.exists fio (name a) then begin
            ignore (Libos.Fileio.rename fio ~old_name:(name a) ~new_name:(name b));
            (match Hashtbl.find_opt reference (name a) with
            | Some s ->
                Hashtbl.remove reference (name a);
                Hashtbl.replace reference (name b) s
            | None -> ())
          end
      | Op_truncate (i, n) ->
          if Libos.Fileio.exists fio (name i) then begin
            let fd = Libos.Fileio.open_file fio (name i) ~create:false in
            ignore (Libos.Fileio.truncate fio ~fd ~size:n);
            ignore (Libos.Fileio.close_file fio fd)
          end
      | Op_read _ -> ());
      match op with
      | Op_rename _ -> ()
      | Op_truncate (i, _) ->
          if Hashtbl.mem reference (name i) then apply_ref reference (name i) op
      | Op_write (i, _) | Op_append (i, _) | Op_delete i | Op_read i ->
          apply_ref reference (name i) op)
    ops;
  (* final state must agree with the reference *)
  Hashtbl.fold
    (fun name contents acc ->
      acc && Libos.Fileio.exists fio name && Libos.Fileio.read_file fio name = contents)
    reference true
  && List.for_all
       (fun i ->
         Hashtbl.mem reference (name i) = Libos.Fileio.exists fio (name i))
       [ 0; 1; 2; 3; 4 ]

let fs_op_print op =
  let e = String.escaped in
  match op with
  | Op_write (i, s) -> Printf.sprintf "write(%d,%S)" i (e s)
  | Op_append (i, s) -> Printf.sprintf "append(%d,%S)" i (e s)
  | Op_delete i -> Printf.sprintf "delete(%d)" i
  | Op_rename (a, b) -> Printf.sprintf "rename(%d,%d)" a b
  | Op_read i -> Printf.sprintf "read(%d)" i
  | Op_truncate (i, n) -> Printf.sprintf "truncate(%d,%d)" i n

let prop_ramfs_matches_reference =
  QCheck.Test.make ~count:25 ~name:"ramfs: random op scripts match a reference model"
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map fs_op_print ops))
       QCheck.Gen.(list_size (int_range 1 25) fs_op_gen))
    (fun ops ->
      let app = Builder.component ~heap_pages:128 ~stack_pages:2 "APP" in
      let sys = Libos.Boot.fs_stack ~protection:Types.Full ~extra:[ (app, Types.Isolated) ] () in
      let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
      run_fs_script fio ops)

let prop_fatfs_matches_reference =
  QCheck.Test.make ~count:20 ~name:"fatfs: random op scripts match a reference model"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) fs_op_gen))
    (fun ops ->
      let app = Builder.component ~heap_pages:128 ~stack_pages:2 "APP" in
      let disk = Libos.Blkdev.create_disk ~sectors:8192 in
      let sys = Libos.Boot.fat_stack ~protection:Types.Full ~extra:[ (app, Types.Isolated) ] ~disk () in
      let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
      run_fs_script fio ops)

let prop_tcp_stream_integrity =
  (* arbitrary chunks sent over a connection arrive intact and ordered *)
  QCheck.Test.make ~count:20 ~name:"lwip: stream delivers exactly the sent bytes"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 10) (string_size (int_range 1 4000))))
    (fun chunks ->
      let app = Builder.component ~heap_pages:64 ~stack_pages:2 "APP" in
      let sys = Libos.Boot.net_stack ~protection:Types.Full ~extra:[ (app, Types.Isolated) ] () in
      let netdev = Option.get sys.Libos.Boot.netdev in
      let ctx = Libos.Boot.app_ctx sys "APP" in
      let lwip_cid = Api.cid_of ctx "LWIP" in
      Monitor.run_as sys.Libos.Boot.mon (Api.self ctx) (fun () ->
          ignore (Api.call ctx "lwip_listen" [| 80 |]);
          Libos.Netdev.host_inject netdev
            (Libos.Lwip.Frame.encode ~conn:1 ~kind:Libos.Lwip.Frame.Syn ~payload:"" ());
          let conn = Api.call ctx "lwip_accept" [||] in
          let buf = Api.malloc_page_aligned ctx 8192 in
          let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
          Api.window_add ctx wid ~ptr:buf ~size:8192;
          Api.window_open ctx wid lwip_cid;
          let sent =
            List.map
              (fun chunk ->
                Api.write_string ctx buf chunk;
                ignore (Api.call ctx "lwip_send" [| conn; buf; String.length chunk |]);
                chunk)
              chunks
          in
          let reasm = Libos.Lwip.Reassembly.create () in
          List.iter
            (fun f ->
              let c, kind, seq, payload = Libos.Lwip.Frame.decode f in
              if c = 1 && kind = Libos.Lwip.Frame.Data then
                Libos.Lwip.Reassembly.push reasm ~seq payload)
            (Libos.Netdev.host_collect netdev);
          Libos.Lwip.Reassembly.pop_ready reasm = String.concat "" sent))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ramfs_matches_reference; prop_fatfs_matches_reference; prop_tcp_stream_integrity ]

let () =
  Alcotest.run "integration"
    [
      ( "multi-app",
        [
          Alcotest.test_case "nginx + db coexist" `Quick test_nginx_and_database_coexist;
          Alcotest.test_case "cross-app isolation" `Quick test_db_app_cannot_touch_web_buffers;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "component crash" `Quick test_component_exception_does_not_wedge_system;
          Alcotest.test_case "violation in txn" `Quick test_violation_mid_transaction_rolls_back;
        ] );
      ( "matrices",
        [
          Alcotest.test_case "policy matrix" `Quick test_write_path_under_all_policies;
          Alcotest.test_case "virtualised serving" `Quick test_virtualised_net_stack_serves;
        ] );
      ("properties", qsuite);
    ]
