(* Tests for the database engine: records, pager (cache + journal),
   B+tree, tables/indexes, transactions, and the speedtest workload. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let app_component () = Builder.component ~heap_pages:256 ~stack_pages:4 "APP"

let mk_os ?(protection = Types.Full) () =
  let sys =
    Libos.Boot.fs_stack ~protection ~mem_bytes:(128 * 1024 * 1024)
      ~extra:[ (app_component (), Types.Isolated) ]
      ()
  in
  Minidb.Os_iface.cubicleos (Libos.Fileio.make (Libos.Boot.app_ctx sys "APP"))

let mk_linux_os () =
  let mon = Monitor.create ~protection:Types.None_ ~mem_bytes:(64 * 1024 * 1024) () in
  let cid = Monitor.create_cubicle mon ~name:"APP" ~kind:Types.Isolated ~heap_pages:256 ~stack_pages:4 in
  Minidb.Os_iface.linux (Monitor.ctx_for mon cid)

(* --- record ----------------------------------------------------------------- *)

let test_record_roundtrip () =
  let row = [ Minidb.Record.Null; Minidb.Record.int 42; Minidb.Record.Text "hello"; Minidb.Record.Int (-7L) ] in
  Alcotest.(check bool) "roundtrip" true (Minidb.Record.decode (Minidb.Record.encode row) = row)

let test_record_empty_and_errors () =
  check_bool "empty row" true (Minidb.Record.decode (Minidb.Record.encode []) = []);
  check_bool "garbage rejected" true
    (try ignore (Minidb.Record.decode "\x01\x09") ; false with Invalid_argument _ -> true)

let test_record_compare () =
  check_bool "null < int" true (Minidb.Record.compare_value Minidb.Record.Null (Minidb.Record.int 0) < 0);
  check_bool "int < text" true (Minidb.Record.compare_value (Minidb.Record.int 9) (Minidb.Record.Text "a") < 0);
  check_int "int order" (-1) (Minidb.Record.compare_value (Minidb.Record.int 1) (Minidb.Record.int 2))

let prop_record_roundtrip =
  let value_gen =
    QCheck.Gen.(
      oneof
        [
          return Minidb.Record.Null;
          map (fun i -> Minidb.Record.Int (Int64.of_int i)) int;
          map (fun s -> Minidb.Record.Text s) (string_size (int_bound 100));
        ])
  in
  QCheck.Test.make ~name:"record: encode/decode roundtrip"
    (QCheck.make QCheck.Gen.(list_size (int_bound 20) value_gen))
    (fun row -> Minidb.Record.decode (Minidb.Record.encode row) = row)

(* --- pager ------------------------------------------------------------------- *)

let test_pager_basic_rw () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db os ~path:"/test.db" in
  let pg = Minidb.Pager.allocate_page p in
  Minidb.Pager.write_page p pg (fun addr -> Api.write_string os.ctx addr "page data");
  Minidb.Pager.flush p;
  let s =
    Minidb.Pager.read_page p pg (fun addr -> Api.read_string os.ctx addr 9)
  in
  check_str "read back" "page data" s;
  Minidb.Pager.close p

let test_pager_persistence () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db os ~path:"/persist.db" in
  let pg = Minidb.Pager.allocate_page p in
  Minidb.Pager.write_page p pg (fun addr -> Api.write_string os.ctx addr "persisted");
  Minidb.Pager.close p;
  (* reopen: data must come back from the file system *)
  let p2 = Minidb.Pager.open_db os ~path:"/persist.db" in
  check_int "page count" 1 (Minidb.Pager.page_count p2);
  check_str "contents" "persisted"
    (Minidb.Pager.read_page p2 pg (fun addr -> Api.read_string os.ctx addr 9));
  Minidb.Pager.close p2

let test_pager_eviction () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db ~cache_pages:4 os ~path:"/evict.db" in
  let pages = List.init 10 (fun _ -> Minidb.Pager.allocate_page p) in
  List.iteri
    (fun i pg -> Minidb.Pager.write_page p pg (fun addr -> Api.write_u32 os.ctx addr i))
    pages;
  (* more pages than frames: evictions must have spilled correctly *)
  check_bool "evictions happened" true ((Minidb.Pager.stats p).evictions > 0);
  List.iteri
    (fun i pg ->
      check_int
        (Printf.sprintf "page %d" i)
        i
        (Minidb.Pager.read_page p pg (fun addr -> Api.read_u32 os.ctx addr)))
    pages;
  Minidb.Pager.close p

(* Pin the exact victim sequence — not just "evictions happened". The
   Hashtbl tick index must pick the same victims the old full-table
   scan did: least recently used first, recency refreshed by hits, and
   a pinned LRU frame skipped in favour of the next-oldest. *)
let test_pager_lru_order () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db ~cache_pages:4 os ~path:"/lru.db" in
  let pages = List.init 8 (fun _ -> Minidb.Pager.allocate_page p) in
  let pg i = List.nth pages i in
  let read i = ignore (Minidb.Pager.read_page p (pg i) (fun _ -> 0)) in
  let check_cache msg l =
    Alcotest.(check (list int)) msg
      (List.sort compare (List.map pg l))
      (Minidb.Pager.cached_pages p)
  in
  (* allocating 8 pages through 4 frames evicts the first four *)
  check_cache "after fill" [ 4; 5; 6; 7 ];
  read 4;
  (* LRU now 5 *)
  read 0;
  (* evicts 5; LRU now 6 *)
  check_cache "5 evicted" [ 0; 4; 6; 7 ];
  read 6;
  (* LRU now 7 *)
  read 1;
  (* evicts 7; LRU order now 4, 0, 6, 1 *)
  check_cache "7 evicted" [ 0; 1; 4; 6 ];
  (* 4 becomes most recent on the pinning read itself, leaving 0 as
     LRU; the nested miss must evict 0, never the pinned frame *)
  Minidb.Pager.read_page p (pg 4) (fun _ -> read 2);
  check_cache "0 evicted under pin" [ 1; 2; 4; 6 ];
  (* remaining order 6, 1, 4, 2: drain it one miss at a time *)
  read 3;
  check_cache "6 evicted" [ 1; 2; 3; 4 ];
  read 5;
  check_cache "1 evicted" [ 2; 3; 4; 5 ];
  read 7;
  check_cache "4 evicted" [ 2; 3; 5; 7 ];
  check_int "evictions" 10 (Minidb.Pager.stats p).evictions;
  Minidb.Pager.close p

let test_pager_commit () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db os ~path:"/txn.db" in
  let pg = Minidb.Pager.allocate_page p in
  Minidb.Pager.flush p;
  Minidb.Pager.begin_txn p;
  Minidb.Pager.write_page p pg (fun addr -> Api.write_string os.ctx addr "committed");
  Minidb.Pager.commit p;
  check_bool "journal gone" false (os.exists "/txn.db-journal");
  check_str "visible" "committed"
    (Minidb.Pager.read_page p pg (fun addr -> Api.read_string os.ctx addr 9));
  Minidb.Pager.close p

let test_pager_rollback () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db os ~path:"/rb.db" in
  let pg = Minidb.Pager.allocate_page p in
  Minidb.Pager.write_page p pg (fun addr -> Api.write_string os.ctx addr "original!");
  Minidb.Pager.flush p;
  Minidb.Pager.begin_txn p;
  Minidb.Pager.write_page p pg (fun addr -> Api.write_string os.ctx addr "modified!");
  Minidb.Pager.rollback p;
  check_str "restored" "original!"
    (Minidb.Pager.read_page p pg (fun addr -> Api.read_string os.ctx addr 9));
  check_int "allocation rolled back" 1 (Minidb.Pager.page_count p);
  Minidb.Pager.close p

let test_pager_rollback_drops_new_pages () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db os ~path:"/rb2.db" in
  ignore (Minidb.Pager.allocate_page p);
  Minidb.Pager.flush p;
  Minidb.Pager.begin_txn p;
  let extra = Minidb.Pager.allocate_page p in
  check_int "new page" 1 extra;
  Minidb.Pager.rollback p;
  check_int "shrunk back" 1 (Minidb.Pager.page_count p);
  Minidb.Pager.close p

let test_pager_rollback_spilled_pages () =
  (* pages evicted (spilled to the file) mid-transaction must still be
     restored by the journal *)
  let os = mk_os () in
  let p = Minidb.Pager.open_db ~cache_pages:4 os ~path:"/spill.db" in
  let pages = List.init 8 (fun _ -> Minidb.Pager.allocate_page p) in
  List.iteri (fun i pg -> Minidb.Pager.write_page p pg (fun a -> Api.write_u32 os.ctx a i)) pages;
  Minidb.Pager.flush p;
  Minidb.Pager.begin_txn p;
  List.iter
    (fun pg -> Minidb.Pager.write_page p pg (fun a -> Api.write_u32 os.ctx a 9999))
    pages;
  Minidb.Pager.rollback p;
  List.iteri
    (fun i pg ->
      check_int "restored" i (Minidb.Pager.read_page p pg (fun a -> Api.read_u32 os.ctx a)))
    pages;
  Minidb.Pager.close p

let test_pager_nested_txn_rejected () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db os ~path:"/nest.db" in
  Minidb.Pager.begin_txn p;
  check_bool "nested rejected" true
    (try Minidb.Pager.begin_txn p; false with Types.Error _ -> true);
  Minidb.Pager.commit p;
  Minidb.Pager.close p

(* --- WAL journal mode ----------------------------------------------------------- *)

let test_wal_commit_visible () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db ~journal_mode:Minidb.Pager.Wal os ~path:"/w.db" in
  let pg = Minidb.Pager.allocate_page p in
  Minidb.Pager.begin_txn p;
  Minidb.Pager.write_page p pg (fun a -> Api.write_string os.ctx a "wal data!");
  Minidb.Pager.commit p;
  check_bool "records in wal" true (Minidb.Pager.wal_pages p > 0);
  (* database file untouched until checkpoint *)
  check_str "read through wal" "wal data!"
    (Minidb.Pager.read_page p pg (fun a -> Api.read_string os.ctx a 9));
  Minidb.Pager.close p

let test_wal_rollback () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db ~journal_mode:Minidb.Pager.Wal os ~path:"/wr.db" in
  let pg = Minidb.Pager.allocate_page p in
  Minidb.Pager.begin_txn p;
  Minidb.Pager.write_page p pg (fun a -> Api.write_string os.ctx a "original!");
  Minidb.Pager.commit p;
  Minidb.Pager.begin_txn p;
  Minidb.Pager.write_page p pg (fun a -> Api.write_string os.ctx a "discarded");
  Minidb.Pager.rollback p;
  check_str "restored from wal" "original!"
    (Minidb.Pager.read_page p pg (fun a -> Api.read_string os.ctx a 9));
  Minidb.Pager.close p

let test_wal_checkpoint_and_recovery () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db ~journal_mode:Minidb.Pager.Wal os ~path:"/wc.db" in
  let pg = Minidb.Pager.allocate_page p in
  Minidb.Pager.begin_txn p;
  Minidb.Pager.write_page p pg (fun a -> Api.write_string os.ctx a "checkpointed");
  Minidb.Pager.commit p;
  Minidb.Pager.checkpoint p;
  check_int "wal drained" 0 (Minidb.Pager.wal_pages p);
  check_str "in the db file" "checkpointed"
    (Minidb.Pager.read_page p pg (fun a -> Api.read_string os.ctx a 12));
  (* a crash before checkpoint: reopen recovers from the leftover wal *)
  Minidb.Pager.begin_txn p;
  Minidb.Pager.write_page p pg (fun a -> Api.write_string os.ctx a "crash-time!!");
  Minidb.Pager.commit p;
  (* simulate a crash: no close/checkpoint; reopen reads the wal file *)
  let p2 = Minidb.Pager.open_db ~journal_mode:Minidb.Pager.Wal os ~path:"/wc.db" in
  check_bool "wal recovered" true (Minidb.Pager.wal_pages p2 > 0);
  check_str "recovered content" "crash-time!!"
    (Minidb.Pager.read_page p2 pg (fun a -> Api.read_string os.ctx a 12));
  Minidb.Pager.close p2

let test_wal_db_engine_end_to_end () =
  let os = mk_os () in
  let db = Minidb.Db.open_db ~journal_mode:Minidb.Pager.Wal os ~path:"/wdb.db" in
  let t = Minidb.Db.create_table db "t" in
  Minidb.Db.with_txn db (fun () ->
      for i = 1 to 200 do
        ignore (Minidb.Db.insert db t [ Minidb.Record.int i ])
      done);
  (try
     Minidb.Db.with_txn db (fun () ->
         ignore (Minidb.Db.insert db t [ Minidb.Record.int 999 ]);
         failwith "abort")
   with Failure _ -> ());
  let t = Minidb.Db.find_table db "t" in
  check_int "wal txn semantics" 200 (Minidb.Db.row_count t);
  Minidb.Db.close db;
  (* close checkpointed everything into the main file *)
  let db2 = Minidb.Db.open_db os ~path:"/wdb.db" in
  check_int "persisted via checkpoint" 200 (Minidb.Db.row_count (Minidb.Db.find_table db2 "t"))

(* --- btree -------------------------------------------------------------------- *)

let mk_tree ?(cache = 64) () =
  let os = mk_os () in
  let p = Minidb.Pager.open_db ~cache_pages:cache os ~path:"/tree.db" in
  (Minidb.Btree.create p, p)

let test_btree_insert_find () =
  let t, _ = mk_tree () in
  Minidb.Btree.insert t ~key:5L ~payload:"five";
  Minidb.Btree.insert t ~key:1L ~payload:"one";
  Minidb.Btree.insert t ~key:9L ~payload:"nine";
  check_bool "find 5" true (Minidb.Btree.find t 5L = Some "five");
  check_bool "find 1" true (Minidb.Btree.find t 1L = Some "one");
  check_bool "missing" true (Minidb.Btree.find t 7L = None)

let test_btree_replace () =
  let t, _ = mk_tree () in
  Minidb.Btree.insert t ~key:5L ~payload:"old";
  Minidb.Btree.insert t ~key:5L ~payload:"new";
  check_bool "replaced" true (Minidb.Btree.find t 5L = Some "new");
  check_int "one entry" 1 (Minidb.Btree.count_range t ~lo:Int64.min_int ~hi:Int64.max_int)

let test_btree_many_keys_split () =
  let t, _ = mk_tree () in
  let n = 3000 in
  for i = 1 to n do
    Minidb.Btree.insert t ~key:(Int64.of_int (i * 7 mod n)) ~payload:(Printf.sprintf "v%d" (i * 7 mod n))
  done;
  check_bool "tree grew" true (Minidb.Btree.depth t > 1);
  let ok = ref true in
  for i = 0 to n - 1 do
    if Minidb.Btree.find t (Int64.of_int i) <> Some (Printf.sprintf "v%d" i) then ok := false
  done;
  check_bool "all present" true !ok

let test_btree_range_order () =
  let t, _ = mk_tree () in
  for i = 100 downto 1 do
    Minidb.Btree.insert t ~key:(Int64.of_int i) ~payload:(string_of_int i)
  done;
  let seen = ref [] in
  Minidb.Btree.iter_range t ~lo:20L ~hi:40L (fun k _ -> seen := Int64.to_int k :: !seen);
  Alcotest.(check (list int)) "ordered inclusive range" (List.init 21 (fun i -> 20 + i))
    (List.rev !seen)

let test_btree_delete () =
  let t, _ = mk_tree () in
  for i = 1 to 500 do
    Minidb.Btree.insert t ~key:(Int64.of_int i) ~payload:"x"
  done;
  check_bool "delete present" true (Minidb.Btree.delete t 250L);
  check_bool "delete absent" false (Minidb.Btree.delete t 250L);
  check_bool "gone" true (Minidb.Btree.find t 250L = None);
  check_int "count drops" 499 (Minidb.Btree.count_range t ~lo:Int64.min_int ~hi:Int64.max_int)

let test_btree_min_max () =
  let t, _ = mk_tree () in
  check_bool "empty min" true (Minidb.Btree.min_key t = None);
  List.iter (fun k -> Minidb.Btree.insert t ~key:k ~payload:"") [ 42L; -3L; 17L ];
  check_bool "min" true (Minidb.Btree.min_key t = Some (-3L));
  check_bool "max" true (Minidb.Btree.max_key t = Some 42L)

let test_btree_payload_cap () =
  let t, _ = mk_tree () in
  check_bool "oversized rejected" true
    (try
       Minidb.Btree.insert t ~key:1L ~payload:(String.make 2000 'x');
       false
     with Types.Error _ -> true)

let prop_btree_matches_map =
  QCheck.Test.make ~count:20 ~name:"btree: agrees with a reference map"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 300) (pair (int_bound 500) (string_of_size (QCheck.Gen.int_bound 30))))
    (fun ops ->
      let t, _ = mk_tree () in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          Minidb.Btree.insert t ~key:(Int64.of_int k) ~payload:v;
          Hashtbl.replace reference k v)
        ops;
      Hashtbl.fold
        (fun k v acc -> acc && Minidb.Btree.find t (Int64.of_int k) = Some v)
        reference true
      && Minidb.Btree.count_range t ~lo:Int64.min_int ~hi:Int64.max_int
         = Hashtbl.length reference)

let prop_btree_iter_sorted =
  QCheck.Test.make ~count:20 ~name:"btree: iteration is sorted, no duplicates"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 400) (int_bound 1000))
    (fun keys ->
      let t, _ = mk_tree () in
      List.iter (fun k -> Minidb.Btree.insert t ~key:(Int64.of_int k) ~payload:"") keys;
      let seen = ref [] in
      Minidb.Btree.iter_all t (fun k _ -> seen := k :: !seen);
      let l = List.rev !seen in
      l = List.sort_uniq Int64.compare (List.map Int64.of_int keys))

(* --- db ------------------------------------------------------------------------- *)

let mk_db ?protection () =
  let os = mk_os ?protection () in
  Minidb.Db.open_db os ~path:"/app.db"

let test_db_insert_get () =
  let db = mk_db () in
  let t = Minidb.Db.create_table db "t" in
  let r1 = Minidb.Db.insert db t [ Minidb.Record.int 10; Minidb.Record.Text "a" ] in
  let r2 = Minidb.Db.insert db t [ Minidb.Record.int 20; Minidb.Record.Text "b" ] in
  check_bool "distinct rowids" true (r1 <> r2);
  check_bool "get r1" true (Minidb.Db.get t r1 = Some [ Minidb.Record.int 10; Minidb.Record.Text "a" ]);
  check_int "count" 2 (Minidb.Db.row_count t)

let test_db_update_delete () =
  let db = mk_db () in
  let t = Minidb.Db.create_table db "t" in
  let r = Minidb.Db.insert db t [ Minidb.Record.int 1 ] in
  check_bool "update" true (Minidb.Db.update db t r [ Minidb.Record.int 2 ]);
  check_bool "updated" true (Minidb.Db.get t r = Some [ Minidb.Record.int 2 ]);
  check_bool "delete" true (Minidb.Db.delete db t r);
  check_bool "gone" true (Minidb.Db.get t r = None);
  check_bool "re-delete" false (Minidb.Db.delete db t r)

let test_db_index_range () =
  let db = mk_db () in
  let t = Minidb.Db.create_table db "t" in
  for i = 1 to 200 do
    ignore (Minidb.Db.insert db t [ Minidb.Record.int (i mod 50); Minidb.Record.int i ])
  done;
  let idx = Minidb.Db.create_index db t ~col:0 ~name:"i0" in
  let hits = ref 0 in
  Minidb.Db.index_range idx t ~lo:10 ~hi:12 (fun _ row ->
      let v = Minidb.Record.to_int (List.hd row) in
      check_bool "in range" true (v >= 10 && v <= 12);
      incr hits);
  check_int "4 rows per value" 12 !hits

let test_db_index_maintained () =
  let db = mk_db () in
  let t = Minidb.Db.create_table db "t" in
  let r = Minidb.Db.insert db t [ Minidb.Record.int 5 ] in
  let idx = Minidb.Db.create_index db t ~col:0 ~name:"i0" in
  ignore (Minidb.Db.update db t r [ Minidb.Record.int 7 ]);
  let at v =
    let n = ref 0 in
    Minidb.Db.index_range idx t ~lo:v ~hi:v (fun _ _ -> incr n);
    !n
  in
  check_int "old key gone" 0 (at 5);
  check_int "new key present" 1 (at 7);
  ignore (Minidb.Db.delete db t r);
  check_int "deleted from index" 0 (at 7);
  check_bool "integrity" true (Minidb.Db.integrity_check db)

let test_db_text_index () =
  let db = mk_db () in
  let t = Minidb.Db.create_table db "t" in
  ignore (Minidb.Db.insert db t [ Minidb.Record.Text "apple" ]);
  ignore (Minidb.Db.insert db t [ Minidb.Record.Text "banana" ]);
  ignore (Minidb.Db.insert db t [ Minidb.Record.Text "apple" ]);
  let idx = Minidb.Db.create_index db t ~col:0 ~name:"txt" in
  let n = ref 0 in
  Minidb.Db.index_eq_text idx t "apple" (fun _ _ -> incr n);
  check_int "two apples" 2 !n;
  let m = ref 0 in
  Minidb.Db.index_eq_text idx t "cherry" (fun _ _ -> incr m);
  check_int "no cherries" 0 !m

let test_db_txn_commit_rollback () =
  let db = mk_db () in
  let t = Minidb.Db.create_table db "t" in
  Minidb.Db.with_txn db (fun () ->
      for i = 1 to 50 do
        ignore (Minidb.Db.insert db t [ Minidb.Record.int i ])
      done);
  check_int "committed" 50 (Minidb.Db.row_count t);
  (* a failing transaction rolls everything back *)
  (try
     Minidb.Db.with_txn db (fun () ->
         for i = 51 to 90 do
           ignore (Minidb.Db.insert db t [ Minidb.Record.int i ])
         done;
         failwith "abort")
   with Failure _ -> ());
  let t = Minidb.Db.find_table db "t" in
  check_int "rolled back" 50 (Minidb.Db.row_count t)

let test_db_persistence () =
  let os = mk_os () in
  let db = Minidb.Db.open_db os ~path:"/persist2.db" in
  let t = Minidb.Db.create_table db "t" in
  ignore (Minidb.Db.insert db t [ Minidb.Record.Text "still here" ]);
  let _ = Minidb.Db.create_index db t ~col:0 ~name:"i" in
  Minidb.Db.close db;
  let db2 = Minidb.Db.open_db os ~path:"/persist2.db" in
  let t2 = Minidb.Db.find_table db2 "t" in
  check_int "row survived" 1 (Minidb.Db.row_count t2);
  check_bool "row content" true (Minidb.Db.get t2 1L = Some [ Minidb.Record.Text "still here" ]);
  let n = ref 0 in
  Minidb.Db.index_eq_text (Minidb.Db.find_index db2 "i") t2 "still here" (fun _ _ -> incr n);
  check_int "index survived" 1 !n

(* --- speedtest --------------------------------------------------------------------- *)

let test_speedtest_all_queries_run () =
  let os = mk_os () in
  let results =
    Minidb.Speedtest.run_all os ~path:"/speed.db" ~n:40 ~measure:(fun f -> f (); 0)
  in
  check_int "31 queries" 31 (List.length results)

let test_speedtest_on_linux_baseline () =
  let os = mk_linux_os () in
  let results =
    Minidb.Speedtest.run_all os ~path:"/speed.db" ~n:40 ~measure:(fun f -> f (); 0)
  in
  check_int "31 queries" 31 (List.length results)

let test_speedtest_heavy_uses_os_more () =
  (* The structural property behind Figure 6's groups: heavy queries
     perform more cross-cubicle calls per query than light ones. *)
  let app = app_component () in
  let sys =
    Libos.Boot.fs_stack ~protection:Types.Full ~mem_bytes:(128 * 1024 * 1024)
      ~extra:[ (app, Types.Isolated) ] ()
  in
  let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make (Libos.Boot.app_ctx sys "APP")) in
  let stats = Monitor.stats sys.mon in
  let results =
    Minidb.Speedtest.run_all os ~path:"/speed.db" ~n:40 ~measure:(fun f ->
        let before = Stats.total_calls stats in
        f ();
        Stats.total_calls stats - before)
  in
  let avg group =
    let xs =
      List.filter_map
        (fun ((q : Minidb.Speedtest.query), c) -> if q.group = group then Some c else None)
        results
    in
    List.fold_left ( + ) 0 xs / List.length xs
  in
  check_bool "heavy group calls >= 2x light group" true
    (avg Minidb.Speedtest.Heavy >= 2 * avg Minidb.Speedtest.Light)

(* random transaction scripts must leave identical table contents under
   both journal modes *)
type txn_op = T_insert of int | T_update of int * int | T_delete of int | T_abort

let txn_op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> T_insert v) (int_bound 1000);
        map2 (fun r v -> T_update (r, v)) (int_range 1 50) (int_bound 1000);
        map (fun r -> T_delete r) (int_range 1 50);
        return T_abort;
      ])

let run_txn_script mode script =
  let os = mk_linux_os () in
  let db = Minidb.Db.open_db ~journal_mode:mode os ~path:"/eq.db" in
  let t = Minidb.Db.create_table db "t" in
  Minidb.Db.with_txn db (fun () ->
      for i = 1 to 50 do
        ignore (Minidb.Db.insert db t [ Minidb.Record.int i ])
      done);
  List.iter
    (fun txn ->
      try
        Minidb.Db.with_txn db (fun () ->
            List.iter
              (fun op ->
                match op with
                | T_insert v -> ignore (Minidb.Db.insert db t [ Minidb.Record.int v ])
                | T_update (r, v) ->
                    ignore (Minidb.Db.update db t (Int64.of_int r) [ Minidb.Record.int v ])
                | T_delete r -> ignore (Minidb.Db.delete db t (Int64.of_int r))
                | T_abort -> failwith "abort")
              txn)
      with Failure _ -> ())
    script;
  let contents = ref [] in
  let t = Minidb.Db.find_table db "t" in
  Minidb.Db.scan t (fun rowid row -> contents := (rowid, row) :: !contents);
  Minidb.Db.close db;
  List.rev !contents

let prop_journal_modes_equivalent =
  QCheck.Test.make ~count:25
    ~name:"pager: rollback and WAL journal modes produce identical contents"
    (QCheck.make
       QCheck.Gen.(list_size (int_bound 8) (list_size (int_bound 10) txn_op_gen)))
    (fun script ->
      run_txn_script Minidb.Pager.Rollback script = run_txn_script Minidb.Pager.Wal script)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_record_roundtrip;
      prop_btree_matches_map;
      prop_btree_iter_sorted;
      prop_journal_modes_equivalent;
    ]

let () =
  Alcotest.run "minidb"
    [
      ( "record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "empty/errors" `Quick test_record_empty_and_errors;
          Alcotest.test_case "compare" `Quick test_record_compare;
        ] );
      ( "pager",
        [
          Alcotest.test_case "basic rw" `Quick test_pager_basic_rw;
          Alcotest.test_case "persistence" `Quick test_pager_persistence;
          Alcotest.test_case "eviction" `Quick test_pager_eviction;
          Alcotest.test_case "lru order" `Quick test_pager_lru_order;
          Alcotest.test_case "commit" `Quick test_pager_commit;
          Alcotest.test_case "rollback" `Quick test_pager_rollback;
          Alcotest.test_case "rollback new pages" `Quick test_pager_rollback_drops_new_pages;
          Alcotest.test_case "rollback spilled" `Quick test_pager_rollback_spilled_pages;
          Alcotest.test_case "nested txn" `Quick test_pager_nested_txn_rejected;
        ] );
      ( "wal",
        [
          Alcotest.test_case "commit visible" `Quick test_wal_commit_visible;
          Alcotest.test_case "rollback" `Quick test_wal_rollback;
          Alcotest.test_case "checkpoint+recovery" `Quick test_wal_checkpoint_and_recovery;
          Alcotest.test_case "engine end-to-end" `Quick test_wal_db_engine_end_to_end;
        ] );
      ( "btree",
        [
          Alcotest.test_case "insert/find" `Quick test_btree_insert_find;
          Alcotest.test_case "replace" `Quick test_btree_replace;
          Alcotest.test_case "splits" `Quick test_btree_many_keys_split;
          Alcotest.test_case "range order" `Quick test_btree_range_order;
          Alcotest.test_case "delete" `Quick test_btree_delete;
          Alcotest.test_case "min/max" `Quick test_btree_min_max;
          Alcotest.test_case "payload cap" `Quick test_btree_payload_cap;
        ] );
      ( "db",
        [
          Alcotest.test_case "insert/get" `Quick test_db_insert_get;
          Alcotest.test_case "update/delete" `Quick test_db_update_delete;
          Alcotest.test_case "index range" `Quick test_db_index_range;
          Alcotest.test_case "index maintained" `Quick test_db_index_maintained;
          Alcotest.test_case "text index" `Quick test_db_text_index;
          Alcotest.test_case "txn" `Quick test_db_txn_commit_rollback;
          Alcotest.test_case "persistence" `Quick test_db_persistence;
        ] );
      ( "speedtest",
        [
          Alcotest.test_case "all queries (cubicleos)" `Slow test_speedtest_all_queries_run;
          Alcotest.test_case "all queries (linux)" `Quick test_speedtest_on_linux_baseline;
          Alcotest.test_case "heavy vs light os usage" `Slow test_speedtest_heavy_uses_os_more;
        ] );
      ("properties", qsuite);
    ]
