(* Tests for the CubicleOS core: cubicles, windows, trap-and-map,
   cross-cubicle calls, loader scanning, builder, CFI. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let is_violation f = match f () with
  | _ -> false
  | exception Hw.Fault.Violation _ -> true

let is_error f = match f () with
  | _ -> false
  | exception Types.Error _ -> true

(* A tiny two-cubicle system: FOO and BAR (the paper's Figure 1c),
   built directly through the monitor (no builder). *)
let mk_system ?(protection = Types.Full) () =
  let mon = Monitor.create ~protection () in
  let foo = Monitor.create_cubicle mon ~name:"FOO" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  let bar = Monitor.create_cubicle mon ~name:"BAR" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  (mon, foo, bar)

(* BAR's exported function: bar(ptr, a) writes 0xAA at ptr[a]. *)
let register_bar mon _bar =
  Monitor.register_exports mon (Monitor.lookup_cubicle mon "BAR")
    [
      {
        Monitor.sym = "bar";
        fn = (fun ctx args -> Api.write_u8 ctx (args.(0) + args.(1)) 0xAA; 0);
        stack_bytes = 0;
      };
    ]

(* --- bitset ---------------------------------------------------------------- *)

let test_bitset () =
  let b = Bitset.empty 10 in
  check_bool "empty" true (Bitset.is_empty b);
  Bitset.add b 3;
  Bitset.add b 7;
  check_bool "mem 3" true (Bitset.mem b 3);
  check_bool "not mem 4" false (Bitset.mem b 4);
  check_int "cardinal" 2 (Bitset.cardinal b);
  Alcotest.(check (list int)) "elements" [ 3; 7 ] (Bitset.elements b);
  Bitset.remove b 3;
  check_bool "removed" false (Bitset.mem b 3);
  Bitset.clear b;
  check_bool "cleared" true (Bitset.is_empty b);
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: element 10 outside universe 10")
    (fun () -> Bitset.add b 10)

(* --- windows (unit) -------------------------------------------------------- *)

let test_window_table () =
  let tbl = Window.create_table ~owner:1 ~ncubicles:8 in
  let w = Window.init tbl ~klass:Mm.Page_meta.Heap in
  Window.add_range tbl w ~ptr:0x1000 ~size:64;
  check_bool "contains" true (Window.contains w 0x1020);
  check_bool "not contains" false (Window.contains w 0x1040);
  Window.open_for w 3;
  check_bool "open for 3" true (Window.is_open_for w 3);
  check_bool "closed for 2" false (Window.is_open_for w 2);
  Window.close_for w 3;
  check_bool "closed again" false (Window.is_open_for w 3);
  (* search only inspects the right class array *)
  check_bool "search heap" true
    (Window.search tbl ~klass:Mm.Page_meta.Heap ~addr:0x1010 <> None);
  check_bool "search stack" true
    (Window.search tbl ~klass:Mm.Page_meta.Stack ~addr:0x1010 = None)

let test_window_destroy () =
  let tbl = Window.create_table ~owner:1 ~ncubicles:8 in
  let w = Window.init tbl ~klass:Mm.Page_meta.Heap in
  let wid = w.Window.wid in
  Window.destroy tbl w;
  check_bool "find fails" true (is_error (fun () -> Window.find tbl wid));
  check_int "no live windows" 0 (Window.count tbl)

let test_window_remove_range () =
  let tbl = Window.create_table ~owner:1 ~ncubicles:8 in
  let w = Window.init tbl ~klass:Mm.Page_meta.Heap in
  Window.add_range tbl w ~ptr:0x1000 ~size:64;
  Window.add_range tbl w ~ptr:0x2000 ~size:64;
  Window.remove_range tbl w ~ptr:0x1000;
  check_bool "first gone" false (Window.contains w 0x1000);
  check_bool "second stays" true (Window.contains w 0x2000);
  check_bool "remove unknown errors" true
    (is_error (fun () -> Window.remove_range tbl w ~ptr:0x9999))

(* Regression: two grants sharing a base address are two ranges, and one
   remove_range must revoke exactly one of them (it used to delete every
   range starting at the pointer). *)
let test_window_remove_range_duplicates () =
  let tbl = Window.create_table ~owner:1 ~ncubicles:8 in
  let w = Window.init tbl ~klass:Mm.Page_meta.Heap in
  Window.add_range tbl w ~ptr:0x1000 ~size:64;
  Window.add_range tbl w ~ptr:0x1000 ~size:4096;
  Window.remove_range tbl w ~ptr:0x1000;
  check_bool "one grant remains" true (Window.contains w 0x1000);
  check_int "exactly one range left" 1 (List.length w.Window.ranges);
  Window.remove_range tbl w ~ptr:0x1000;
  check_bool "second remove revokes the other" false (Window.contains w 0x1000);
  check_bool "third remove errors" true
    (is_error (fun () -> Window.remove_range tbl w ~ptr:0x1000))

(* --- batched window ops & grant forwarding ----------------------------------- *)

let test_window_add_ranges_batch () =
  let mon, foo, bar = mk_system () in
  let ctx = Monitor.ctx_for mon foo in
  let a = Api.malloc_page_aligned ctx 4096 in
  let b = Api.malloc_page_aligned ctx 4096 in
  let c = Api.malloc_page_aligned ctx 4096 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  let stats = Monitor.stats mon in
  let before = Stats.window_ops stats in
  Api.window_add_ranges ctx wid [ (a, 4096); (b, 4096); (c, 4096) ];
  check_int "one monitor crossing for three grants" 1 (Stats.window_ops stats - before);
  Api.window_open ctx wid bar;
  register_bar mon bar;
  (* all three pages really are granted *)
  List.iter (fun p -> ignore (Monitor.call mon ~caller:foo "bar" [| p; 0 |])) [ a; b; c ];
  check_bool "empty batch rejected" true
    (is_error (fun () -> Api.window_add_ranges ctx wid []))

let test_window_add_ranges_atomic () =
  (* one bad range rejects the whole batch: nothing is granted *)
  let mon, foo, _ = mk_system () in
  let ctx = Monitor.ctx_for mon foo in
  let a = Api.malloc_page_aligned ctx 4096 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  check_bool "batch with unowned range rejected" true
    (is_error (fun () -> Api.window_add_ranges ctx wid [ (a, 4096); (0x10, 64) ]));
  let w = Window.find (Monitor.windows_of mon foo) wid in
  check_int "no range leaked from rejected batch" 0 (List.length w.Window.ranges)

let test_window_open_many () =
  let mon, foo, bar = mk_system () in
  let baz =
    Monitor.create_cubicle mon ~name:"BAZ" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  let ctx = Monitor.ctx_for mon foo in
  let a = Api.malloc_page_aligned ctx 4096 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:a ~size:4096;
  let stats = Monitor.stats mon in
  let before = Stats.window_ops stats in
  Api.window_open_many ctx wid [ bar; baz ];
  check_int "one monitor crossing for two opens" 1 (Stats.window_ops stats - before);
  let w = Window.find (Monitor.windows_of mon foo) wid in
  check_bool "open for both peers" true (Window.is_open_for w bar && Window.is_open_for w baz);
  check_bool "self in peer list rejected" true
    (is_error (fun () -> Api.window_open_many ctx wid [ foo ]))

let test_window_forward () =
  let mon, foo, bar = mk_system () in
  let baz =
    Monitor.create_cubicle mon ~name:"BAZ" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  Monitor.register_exports mon baz
    [
      {
        Monitor.sym = "baz_touch";
        fn = (fun ctx args -> Api.read_u8 ctx args.(0));
        stack_bytes = 0;
      };
    ];
  let ctx_foo = Monitor.ctx_for mon foo in
  let ctx_bar = Monitor.ctx_for mon bar in
  let buf = Api.malloc_page_aligned ctx_foo 4096 in
  let wid = Api.window_init ctx_foo ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx_foo wid ~ptr:buf ~size:4096;
  (* a holder can only forward a window that is open for it *)
  check_bool "non-holder cannot forward" true
    (is_error (fun () -> Api.window_forward ctx_bar ~owner:foo wid baz));
  Api.window_open ctx_foo wid bar;
  check_bool "forward to the owner rejected" true
    (is_error (fun () -> Api.window_forward ctx_bar ~owner:foo wid foo));
  Api.window_forward ctx_bar ~owner:foo wid baz;
  let w = Window.find (Monitor.windows_of mon foo) wid in
  check_bool "grant extended to third party" true (Window.is_open_for w baz);
  (* and the third party can really touch the owner's page *)
  check_int "baz reads through forwarded grant" 0 (Monitor.call mon ~caller:foo "baz_touch" [| buf |]);
  (* the owner can also forward its own window directly *)
  let quux =
    Monitor.create_cubicle mon ~name:"QUUX" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  Api.window_forward ctx_foo ~owner:foo wid quux;
  check_bool "owner self-forward opens" true (Window.is_open_for w quux)

(* --- spatial isolation ------------------------------------------------------ *)

let test_spatial_isolation () =
  let mon, foo, bar = mk_system () in
  let foo_buf = Monitor.malloc mon foo 64 in
  Hw.Cpu.wrpkru (Monitor.cpu mon) Hw.Pkru.all_allow;
  Hw.Cpu.write_u8 (Monitor.cpu mon) foo_buf 42;
  (* run as BAR: FOO's heap must be unreachable *)
  register_bar mon bar;
  check_bool "BAR cannot write FOO heap" true
    (is_violation (fun () -> Monitor.call mon ~caller:foo "bar" [| foo_buf; 0 |]))

let test_window_grants_access () =
  (* The Figure 1c flow: FOO opens a window to its array for BAR, calls
     bar(array, 5), BAR writes through the pointer. *)
  let mon, foo, bar = mk_system () in
  register_bar mon bar;
  let ctx = Monitor.ctx_for mon foo in
  let array = Api.malloc_page_aligned ctx 10 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:array ~size:10;
  Api.window_open ctx wid bar;
  check_int "bar returns" 0 (Monitor.call mon ~caller:foo "bar" [| array; 5 |]);
  Api.window_close ctx wid bar;
  (* FOO sees the write (zero-copy sharing) *)
  Hw.Cpu.wrpkru (Monitor.cpu mon) Hw.Pkru.all_allow;
  check_int "0xAA written" 0xAA (Hw.Cpu.read_u8 (Monitor.cpu mon) (array + 5))

let test_window_close_blocks_third_party () =
  let mon, foo, bar = mk_system () in
  let baz = Monitor.create_cubicle mon ~name:"BAZ" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1 in
  register_bar mon bar;
  Monitor.register_exports mon baz
    [ { Monitor.sym = "baz_read"; fn = (fun ctx args -> Api.read_u8 ctx args.(0)); stack_bytes = 0 } ];
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 16 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:16;
  Api.window_open ctx wid bar;
  (* BAR can access, BAZ cannot: ACLs are per-cubicle *)
  ignore (Monitor.call mon ~caller:foo "bar" [| buf; 1 |]);
  check_bool "BAZ denied" true
    (is_violation (fun () -> Monitor.call mon ~caller:foo "baz_read" [| buf |]))

let test_causal_consistency () =
  (* Closing a window does not retag; the grantee may still touch the
     page until the owner (or another authorised cubicle) faults it
     back (§5.6 "causal tag consistency"). *)
  let mon, foo, bar = mk_system () in
  register_bar mon bar;
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 16 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:16;
  Api.window_open ctx wid bar;
  ignore (Monitor.call mon ~caller:foo "bar" [| buf; 0 |]);
  let retags_before = Monitor.retag_count mon in
  Api.window_close ctx wid bar;
  check_int "close does not retag" retags_before (Monitor.retag_count mon);
  (* BAR still holds the tag: another call succeeds without a new retag
     (causally consistent: it could have accessed before the close). *)
  ignore (Monitor.call mon ~caller:foo "bar" [| buf; 1 |]);
  check_int "no retag on cached tag" retags_before (Monitor.retag_count mon);
  (* Now FOO touches its own page: it faults back to FOO's tag... *)
  Monitor.register_exports mon foo
    [ { Monitor.sym = "foo_touch"; fn = (fun c a -> Api.write_u8 c a.(0) 7; 0); stack_bytes = 0 } ];
  ignore (Monitor.call mon ~caller:bar "foo_touch" [| buf |]);
  check_int "owner touch retags" (retags_before + 1) (Monitor.retag_count mon);
  (* ...and from now on BAR is locked out (window is closed). *)
  check_bool "BAR locked out after owner reclaim" true
    (is_violation (fun () -> Monitor.call mon ~caller:foo "bar" [| buf; 2 |]))

let test_window_ownership_enforced () =
  let mon, foo, bar = mk_system () in
  let foo_ctx = Monitor.ctx_for mon foo in
  let bar_ctx = Monitor.ctx_for mon bar in
  let foo_buf = Api.malloc_page_aligned foo_ctx 16 in
  (* BAR cannot put FOO's memory into BAR's window *)
  let wid = Api.window_init bar_ctx ~klass:Mm.Page_meta.Heap in
  check_bool "foreign memory rejected" true
    (is_error (fun () -> Api.window_add bar_ctx wid ~ptr:foo_buf ~size:16));
  (* BAR cannot manage FOO's windows: wids are per-cubicle *)
  let foo_wid = Api.window_init foo_ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add foo_ctx foo_wid ~ptr:foo_buf ~size:16;
  check_bool "bar cannot open foo's window via own table" true
    (is_error (fun () -> Api.window_open bar_ctx foo_wid foo)
    || (* wid may exist in BAR's table too; then opening it must not
          grant access to FOO's buffer *)
    not (Window.contains (Window.find (Monitor.windows_of mon bar) foo_wid) foo_buf))

let test_window_class_mismatch () =
  let mon, foo, _bar = mk_system () in
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 16 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Stack in
  (* heap memory cannot enter a stack-class window *)
  check_bool "class mismatch" true
    (is_error (fun () -> Api.window_add ctx wid ~ptr:buf ~size:16))

let test_stack_windows () =
  (* Figure 4's actual scenario: the shared buffer is a stack variable. *)
  let mon, foo, bar = mk_system () in
  register_bar mon bar;
  let ctx = Monitor.ctx_for mon foo in
  let sp = Monitor.stack_base mon foo in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Stack in
  Api.window_add ctx wid ~ptr:sp ~size:10;
  Api.window_open ctx wid bar;
  ignore (Monitor.call mon ~caller:foo "bar" [| sp; 3 |]);
  Hw.Cpu.wrpkru (Monitor.cpu mon) Hw.Pkru.all_allow;
  check_int "stack byte written" 0xAA (Hw.Cpu.read_u8 (Monitor.cpu mon) (sp + 3))

let test_page_granularity_leak () =
  (* Windows are enforced at page granularity: data co-located on the
     same page as a windowed buffer leaks — the reason the paper tells
     developers to segregate allocations onto separate pages. *)
  let mon, foo, bar = mk_system () in
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 16 in
  let secret = Api.malloc ctx 8 in
  (* only run the check when the allocator co-located them *)
  if Hw.Addr.page_of secret = Hw.Addr.page_of buf then begin
    Monitor.register_exports mon bar
      [ { Monitor.sym = "bar_peek"; fn = (fun c a -> Api.read_u8 c a.(0)); stack_bytes = 0 } ];
    let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
    Api.window_add ctx wid ~ptr:buf ~size:16;
    Api.window_open ctx wid bar;
    (* the window covers only buf, but the whole page gets retagged once
       BAR touches buf — after which secret is exposed *)
    ignore (Monitor.call mon ~caller:foo "bar_peek" [| buf |]);
    check_int "co-located secret readable" 0
      (Monitor.call mon ~caller:foo "bar_peek" [| secret |])
  end

let test_self_open_rejected () =
  let mon, foo, _ = mk_system () in
  let ctx = Monitor.ctx_for mon foo in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  check_bool "self-open rejected" true (is_error (fun () -> Api.window_open ctx wid foo))

(* --- protection levels ------------------------------------------------------ *)

let test_protection_none_no_faults () =
  let mon, foo, bar = mk_system ~protection:Types.None_ () in
  register_bar mon bar;
  let buf = Monitor.malloc mon foo 16 in
  (* no window, but no MPK either: the write goes through *)
  ignore (Monitor.call mon ~caller:foo "bar" [| buf; 0 |]);
  check_int "no faults" 0 (Hw.Cpu.fault_count (Monitor.cpu mon))

let test_protection_mpk_no_acls () =
  (* "CubicleOS w/o ACLs": MPK faults happen but every window is open. *)
  let mon, foo, bar = mk_system ~protection:Types.Mpk () in
  register_bar mon bar;
  let buf = Monitor.malloc mon foo 16 in
  ignore (Monitor.call mon ~caller:foo "bar" [| buf; 0 |]);
  check_bool "fault happened" true (Hw.Cpu.fault_count (Monitor.cpu mon) > 0);
  check_bool "retag happened" true (Monitor.retag_count mon > 0)

let test_protection_full_needs_window () =
  let mon, foo, bar = mk_system ~protection:Types.Full () in
  register_bar mon bar;
  let buf = Monitor.malloc mon foo 16 in
  check_bool "denied without window" true
    (is_violation (fun () -> Monitor.call mon ~caller:foo "bar" [| buf; 0 |]))

(* --- cross-cubicle calls ----------------------------------------------------- *)

let test_call_unknown_symbol_cfi () =
  let mon, foo, _ = mk_system () in
  check_bool "unknown symbol rejected" true
    (is_error (fun () -> Monitor.call mon ~caller:foo "no_such_entry" [||]));
  check_int "counted as rejected" 1 (Stats.rejected (Monitor.stats mon))

let test_call_counts_edges () =
  let mon, foo, bar = mk_system () in
  register_bar mon bar;
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 16 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:16;
  Api.window_open ctx wid bar;
  for _ = 1 to 5 do
    ignore (Monitor.call mon ~caller:foo "bar" [| buf; 0 |])
  done;
  check_int "edge count" 5 (Stats.calls_between (Monitor.stats mon) ~caller:foo ~callee:bar);
  check_int "sym count" 5 (Stats.calls_to_sym (Monitor.stats mon) "bar")

let test_call_pkru_restored_on_exception () =
  let mon, _foo, bar = mk_system () in
  Monitor.register_exports mon bar
    [ { Monitor.sym = "bar_raise"; fn = (fun _ _ -> failwith "boom"); stack_bytes = 0 } ];
  let saved = Hw.Cpu.pkru (Monitor.cpu mon) in
  (try ignore (Monitor.call mon ~caller:1 "bar_raise" [||]) with Failure _ -> ());
  check_bool "pkru restored" true (Hw.Cpu.pkru (Monitor.cpu mon) = saved);
  check_int "cur restored" Monitor.monitor_cid (Monitor.current mon)

let test_nested_calls () =
  (* FOO -> BAR -> FOO reentry: the shadow discipline restores each
     level correctly. *)
  let mon, foo, bar = mk_system () in
  Monitor.register_exports mon foo
    [ { Monitor.sym = "foo_leaf"; fn = (fun _ _ -> 17); stack_bytes = 0 } ];
  Monitor.register_exports mon bar
    [ { Monitor.sym = "bar_mid"; fn = (fun ctx _ -> Api.call ctx "foo_leaf" [||] + 1); stack_bytes = 0 } ];
  check_int "nested result" 18 (Monitor.call mon ~caller:foo "bar_mid" [||]);
  check_int "cur restored" Monitor.monitor_cid (Monitor.current mon)

let test_shared_cubicle_runs_with_caller_privileges () =
  let mon, foo, _bar = mk_system () in
  let libc = Monitor.create_cubicle mon ~name:"LIBC" ~kind:Types.Shared ~heap_pages:2 ~stack_pages:0 in
  Monitor.register_exports mon libc
    [
      {
        Monitor.sym = "libc_memcpy";
        fn = (fun ctx args -> Api.memcpy ctx ~dst:args.(0) ~src:args.(1) ~len:args.(2); args.(0));
        stack_bytes = 0;
      };
    ];
  (* memcpy within FOO's own heap: runs with FOO's privileges, so no
     window needed and no monitor involvement *)
  let ctx = Monitor.ctx_for mon foo in
  let a = Api.malloc ctx 32 and b = Api.malloc ctx 32 in
  Monitor.register_exports mon foo
    [
      {
        Monitor.sym = "foo_work";
        fn =
          (fun ctx args ->
            Api.write_string ctx args.(0) "hi";
            ignore (Api.call ctx "libc_memcpy" [| args.(1); args.(0); 2 |]);
            Api.read_u8 ctx args.(1));
        stack_bytes = 0;
      };
    ];
  let calls_before = Stats.total_calls (Monitor.stats mon) in
  check_int "copied" (Char.code 'h') (Monitor.call mon ~caller:Monitor.monitor_cid "foo_work" [| a; b |]);
  (* only foo_work transits the monitor; libc_memcpy is a shared call *)
  check_int "one monitored call" (calls_before + 1) (Stats.total_calls (Monitor.stats mon));
  check_int "one shared call" 1 (Stats.shared_calls (Monitor.stats mon))

let test_stack_argument_copy () =
  (* An export with by-stack arguments: the trampoline must copy the
     bytes from the caller's stack to the callee's stack. *)
  let mon, foo, bar = mk_system () in
  let cpu = Monitor.cpu mon in
  let foo_sp = Monitor.stack_base mon foo in
  let bar_sp = Monitor.stack_base mon bar in
  Hw.Cpu.priv_write_string cpu foo_sp "stack args: 0123456789ABCDEF";
  Monitor.register_exports mon bar
    [
      {
        Monitor.sym = "bar_stackargs";
        (* the callee reads the copied arguments from its own stack *)
        fn = (fun ctx _ -> Api.read_u8 ctx (Monitor.stack_base ctx.Monitor.mon ctx.Monitor.self + 12));
        stack_bytes = 28;
      };
    ];
  check_int "callee sees copied stack bytes" (Char.code '0')
    (Monitor.call mon ~caller:foo "bar_stackargs" [||]);
  Hw.Cpu.wrpkru cpu Hw.Pkru.all_allow;
  Alcotest.(check string) "full copy" "stack args: 0123456789ABCDEF"
    (Bytes.to_string (Hw.Cpu.priv_read_bytes cpu bar_sp 28))

let test_monitor_logs_events () =
  (* the monitor emits Logs events; capture them with a reporter *)
  let captured = ref 0 in
  let reporter =
    {
      Logs.report =
        (fun _src _level ~over k msgf ->
          incr captured;
          msgf (fun ?header:_ ?tags:_ fmt ->
              Format.ikfprintf
                (fun _ ->
                  over ();
                  k ())
                Format.str_formatter fmt));
    }
  in
  let saved = Logs.reporter () in
  Logs.set_reporter reporter;
  Logs.set_level (Some Logs.Debug);
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter saved;
      Logs.set_level (Some Logs.Warning))
    (fun () ->
      let mon, foo, bar = mk_system () in
      register_bar mon bar;
      let ctx = Monitor.ctx_for mon foo in
      let buf = Api.malloc_page_aligned ctx 16 in
      let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
      Api.window_add ctx wid ~ptr:buf ~size:16;
      Api.window_open ctx wid bar;
      ignore (Monitor.call mon ~caller:foo "bar" [| buf; 0 |]);
      check_bool "events captured" true (!captured > 0))

(* --- loader ------------------------------------------------------------------- *)

let test_loader_rejects_wrpkru () =
  let mon = Monitor.create ~protection:Types.Full () in
  let img =
    {
      Loader.img_name = "EVIL";
      code = Hw.Instr.assemble [ Nop; Wrpkru; Ret ];
      rodata = Bytes.empty;
      data = Bytes.empty;
      signed = false;
    }
  in
  check_bool "rejected" true
    (match Loader.load mon img ~kind:Types.Isolated ~heap_pages:1 ~stack_pages:1 ~exports:[] with
    | _ -> false
    | exception Loader.Rejected ("EVIL", _) -> true)

let test_loader_rejects_syscall () =
  let mon = Monitor.create ~protection:Types.Full () in
  let img =
    {
      Loader.img_name = "EVIL2";
      code = Hw.Instr.assemble [ Syscall ];
      rodata = Bytes.empty;
      data = Bytes.empty;
      signed = false;
    }
  in
  check_bool "rejected" true
    (match Loader.load mon img ~kind:Types.Isolated ~heap_pages:1 ~stack_pages:1 ~exports:[] with
    | _ -> false
    | exception Loader.Rejected _ -> true)

let test_loader_rejects_hidden_sequence () =
  let mon = Monitor.create ~protection:Types.Full () in
  let img =
    {
      Loader.img_name = "SNEAKY";
      code = Hw.Instr.assemble [ Mov_imm (1, 0x00EF010F); Ret ];
      rodata = Bytes.empty;
      data = Bytes.empty;
      signed = false;
    }
  in
  check_bool "hidden wrpkru rejected" true
    (match Loader.load mon img ~kind:Types.Isolated ~heap_pages:1 ~stack_pages:1 ~exports:[] with
    | _ -> false
    | exception Loader.Rejected _ -> true)

let test_loader_accepts_signed_trusted_code () =
  let mon = Monitor.create ~protection:Types.Full () in
  let img =
    {
      Loader.img_name = "TRAMPOLINES";
      code = Hw.Instr.assemble [ Wrpkru; Call 0; Wrpkru; Ret ];
      rodata = Bytes.empty;
      data = Bytes.empty;
      signed = true;
    }
  in
  let loaded = Loader.load mon img ~kind:Types.Trusted ~heap_pages:1 ~stack_pages:1 ~exports:[] in
  check_bool "loaded" true (loaded.Loader.cid > 0)

let test_loader_code_execute_only () =
  let mon = Monitor.create ~protection:Types.Full () in
  let img = Loader.image_of_ops ~name:"COMP" () in
  let loaded = Loader.load mon img ~kind:Types.Isolated ~heap_pages:2 ~stack_pages:1 ~exports:[] in
  let pt = Hw.Cpu.page_table (Monitor.cpu mon) in
  let perm = Hw.Page_table.perm pt (Hw.Addr.page_of loaded.Loader.code_base) in
  check_bool "exec" true perm.x;
  check_bool "no read" false perm.r;
  check_bool "no write" false perm.w

let test_loader_data_perms () =
  let mon = Monitor.create ~protection:Types.Full () in
  let img =
    {
      Loader.img_name = "D";
      code = Hw.Instr.assemble [ Ret ];
      rodata = Bytes.of_string "const";
      data = Bytes.of_string "vars!";
      signed = false;
    }
  in
  let loaded = Loader.load mon img ~kind:Types.Isolated ~heap_pages:1 ~stack_pages:1 ~exports:[] in
  let pt = Hw.Cpu.page_table (Monitor.cpu mon) in
  let ro = Hw.Page_table.perm pt (Hw.Addr.page_of loaded.Loader.rodata_base) in
  check_bool "ro readable" true ro.r;
  check_bool "ro not writable" false ro.w;
  let rw = Hw.Page_table.perm pt (Hw.Addr.page_of loaded.Loader.data_base) in
  check_bool "data writable" true rw.w;
  (* contents copied in *)
  Hw.Cpu.wrpkru (Monitor.cpu mon) Hw.Pkru.all_allow;
  Alcotest.(check string) "rodata contents" "const"
    (Bytes.to_string (Hw.Cpu.priv_read_bytes (Monitor.cpu mon) loaded.Loader.rodata_base 5))

let test_loader_page_metadata () =
  let mon = Monitor.create ~protection:Types.Full () in
  let img = Loader.image_of_ops ~name:"META" () in
  let loaded = Loader.load mon img ~kind:Types.Isolated ~heap_pages:2 ~stack_pages:1 ~exports:[] in
  let meta = Monitor.meta mon in
  check_bool "code page kind" true
    (Mm.Page_meta.kind meta (Hw.Addr.page_of loaded.Loader.code_base) = Some Mm.Page_meta.Code);
  check_bool "code page owner" true
    (Mm.Page_meta.owner meta (Hw.Addr.page_of loaded.Loader.code_base) = Some loaded.Loader.cid)

(* --- trampolines / CFI --------------------------------------------------------- *)

let mk_built () =
  let mon = Monitor.create ~protection:Types.Full () in
  let comps =
    [
      ( Builder.component
          ~exports:[ { Monitor.sym = "alpha_fn"; fn = (fun _ _ -> 1); stack_bytes = 0 } ]
          "ALPHA",
        Types.Isolated );
      ( Builder.component
          ~exports:[ { Monitor.sym = "beta_fn"; fn = (fun _ _ -> 2); stack_bytes = 0 } ]
          "BETA",
        Types.Isolated );
    ]
  in
  Builder.build mon comps

let test_builder_and_call () =
  let built = mk_built () in
  let alpha = Builder.cid built "ALPHA" in
  check_int "call works" 2 (Monitor.call built.Builder.mon ~caller:alpha "beta_fn" [||])

let test_builder_rejects_undeclared_export () =
  let mon = Monitor.create ~protection:Types.Full () in
  let comp =
    Builder.component ~exportsyms:[ "listed" ]
      ~exports:[ { Monitor.sym = "unlisted"; fn = (fun _ _ -> 0); stack_bytes = 0 } ]
      "BADCOMP"
  in
  check_bool "undeclared rejected" true
    (match Builder.build mon [ (comp, Types.Isolated) ] with
    | _ -> false
    | exception Builder.Undeclared_export ("BADCOMP", "unlisted") -> true)

let test_guard_page_entry_allowed () =
  let built = mk_built () in
  let alpha = Builder.cid built "ALPHA" in
  (* entering through one's own guard page is fine *)
  Trampoline.enter_via_guard built.Builder.trampolines ~caller:alpha "beta_fn"

let test_rogue_thunk_fetch_faults () =
  (* Jumping directly into the monitor-owned trampoline thunk must
     fault under the modified MPK (tag-wide NX). *)
  let built = mk_built () in
  let alpha = Builder.cid built "ALPHA" in
  let thunk = Trampoline.thunk_addr built.Builder.trampolines "beta_fn" in
  check_bool "rogue fetch faults" true
    (is_violation (fun () ->
         Trampoline.rogue_fetch built.Builder.mon ~as_cubicle:alpha ~addr:thunk))

let test_rogue_cross_code_fetch_faults () =
  (* ALPHA jumping into BETA's code (bypassing its public entries) *)
  let mon = Monitor.create ~protection:Types.Full () in
  let img = Loader.image_of_ops ~name:"BETA" () in
  let beta = Loader.load mon img ~kind:Types.Isolated ~heap_pages:1 ~stack_pages:1 ~exports:[] in
  let _alpha =
    Loader.load mon (Loader.image_of_ops ~name:"ALPHA" ()) ~kind:Types.Isolated
      ~heap_pages:1 ~stack_pages:1 ~exports:[]
  in
  let alpha_cid = Monitor.lookup_cubicle mon "ALPHA" in
  check_bool "cross-code fetch faults" true
    (is_violation (fun () ->
         Trampoline.rogue_fetch mon ~as_cubicle:alpha_cid ~addr:beta.Loader.code_base))

let test_own_code_fetch_allowed () =
  let mon = Monitor.create ~protection:Types.Full () in
  let loaded =
    Loader.load mon (Loader.image_of_ops ~name:"SOLO" ()) ~kind:Types.Isolated
      ~heap_pages:1 ~stack_pages:1 ~exports:[]
  in
  Trampoline.rogue_fetch mon ~as_cubicle:loaded.Loader.cid ~addr:loaded.Loader.code_base

(* --- key exhaustion -------------------------------------------------------------- *)

let test_key_exhaustion () =
  let mon = Monitor.create ~protection:Types.Full () in
  (* keys 1..14 for isolated cubicles *)
  for i = 1 to 14 do
    ignore
      (Monitor.create_cubicle mon ~name:(Printf.sprintf "C%d" i) ~kind:Types.Isolated
         ~heap_pages:1 ~stack_pages:1)
  done;
  check_bool "15th isolated cubicle fails" true
    (is_error (fun () ->
         Monitor.create_cubicle mon ~name:"C15" ~kind:Types.Isolated ~heap_pages:1
           ~stack_pages:1));
  (* shared cubicles do not consume isolated keys *)
  ignore
    (Monitor.create_cubicle mon ~name:"SHARED" ~kind:Types.Shared ~heap_pages:1 ~stack_pages:0)

(* --- malloc/free ------------------------------------------------------------------ *)

let test_malloc_heap_growth () =
  let mon, foo, _ = mk_system () in
  let ctx = Monitor.ctx_for mon foo in
  (* allocate more than the initial heap; the monitor grows it *)
  let blocks = List.init 20 (fun _ -> Api.malloc ctx 8192) in
  check_int "all distinct" 20 (List.length (List.sort_uniq compare blocks));
  List.iter (Api.free ctx) blocks

let test_free_foreign_pointer () =
  let mon, foo, bar = mk_system () in
  let bar_buf = Monitor.malloc mon bar 64 in
  check_bool "foreign free rejected" true
    (is_error (fun () -> Monitor.free mon foo bar_buf))

let test_alloc_pages_ownership () =
  let mon, foo, _ = mk_system () in
  let base = Monitor.alloc_pages mon foo 3 ~kind:Mm.Page_meta.Heap in
  check_bool "owned" true (Monitor.page_owner mon (Hw.Addr.page_of base) = Some foo);
  Monitor.free_pages mon foo base;
  check_bool "released" true (Monitor.page_owner mon (Hw.Addr.page_of base) = None)

(* --- teardown (dlclose) ------------------------------------------------------------- *)

let test_destroy_cubicle () =
  let mon, foo, bar = mk_system () in
  register_bar mon bar;
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 16 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:16;
  Api.window_open ctx wid bar;
  ignore (Monitor.call mon ~caller:foo "bar" [| buf; 0 |]);
  let bar_pages = Mm.Page_meta.owned_by (Monitor.meta mon) bar in
  check_bool "bar owned pages" true (bar_pages <> []);
  Monitor.destroy_cubicle mon bar;
  (* its exports are gone: CFI error, not a crash *)
  check_bool "export unresolved" true
    (is_error (fun () -> Monitor.call mon ~caller:foo "bar" [| buf; 0 |]));
  (* its pages were released *)
  check_bool "pages released" true (Mm.Page_meta.owned_by (Monitor.meta mon) bar = []);
  (* the other cubicle is unaffected *)
  Monitor.run_as mon foo (fun () -> Api.write_u8 ctx buf 5)

let test_destroy_recycles_key () =
  let mon, _foo, bar = mk_system () in
  let bar_key = Monitor.cubicle_key mon bar in
  Monitor.destroy_cubicle mon bar;
  let baz =
    Monitor.create_cubicle mon ~name:"BAZ" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  check_int "key reused" bar_key (Monitor.cubicle_key mon baz);
  (* and the recycled key grants no access to scrubbed memory: BAZ's
     fresh pages read as zeroes *)
  let ctx = Monitor.ctx_for mon baz in
  let b = Api.malloc ctx 16 in
  Monitor.run_as mon baz (fun () -> check_int "scrubbed" 0 (Api.read_u8 ctx b))

let test_destroy_revokes_peer_grants () =
  (* Destroying a cubicle must close it out of every peer's windows: the
     cid is recycled, and a stale `opened` bit would hand the unrelated
     successor every window the dead cubicle was ever granted. *)
  let mon, foo, bar = mk_system () in
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 16 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:16;
  Api.window_open ctx wid bar;
  Monitor.destroy_cubicle mon bar;
  (* the live ACL no longer lists the dead cid *)
  List.iter
    (fun w -> check_bool "grant revoked" false (Window.is_open_for w bar))
    (Window.live_windows (Monitor.windows_of mon foo));
  (* a successor reusing the cid starts with no access to FOO's buffer *)
  let baz =
    Monitor.create_cubicle mon ~name:"BAZ" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
  in
  check_int "cid recycled" bar baz;
  Monitor.register_exports mon baz
    [
      {
        Monitor.sym = "baz_poke";
        fn = (fun ctx a -> Api.write_u8 ctx a.(0) 1; 0);
        stack_bytes = 0;
      };
    ];
  check_bool "successor denied" true
    (is_violation (fun () -> Monitor.call mon ~caller:baz "baz_poke" [| buf |]));
  (* FOO can re-grant to the successor explicitly, as for any peer *)
  Api.window_open ctx wid baz;
  check_int "explicit re-grant works" 0 (Monitor.call mon ~caller:baz "baz_poke" [| buf |])

let test_spawn_guards_cover_existing_exports () =
  (* A freshly spawned cubicle must be able to guard-call exports that
     predate its own spawn batch, exactly like statically-built ones. *)
  let built = mk_built () in
  let gamma_comp =
    Builder.component
      ~exports:[ { Monitor.sym = "gamma_fn"; fn = (fun _ _ -> 3); stack_bytes = 0 } ]
      "GAMMA"
  in
  let fresh = Builder.spawn built [ (gamma_comp, Types.Isolated) ] in
  let gamma = List.assoc "GAMMA" fresh in
  check_bool "guard entry for pre-existing export" true
    (Trampoline.has_guard built.Builder.trampolines gamma "alpha_fn");
  Trampoline.enter_via_guard built.Builder.trampolines ~caller:gamma "alpha_fn";
  check_int "call to pre-existing export works" 1
    (Monitor.call built.Builder.mon ~caller:gamma "alpha_fn" [||])

let test_destroy_full_slot_reuse () =
  (* churn: create and destroy cubicles repeatedly without exhausting
     the 14 keys *)
  let mon = Monitor.create ~protection:Types.Full () in
  for round = 1 to 40 do
    let cid =
      Monitor.create_cubicle mon
        ~name:(Printf.sprintf "EPHEMERAL%d" round)
        ~kind:Types.Isolated ~heap_pages:2 ~stack_pages:1
    in
    Monitor.destroy_cubicle mon cid
  done;
  check_bool "still boots another" true
    (Monitor.create_cubicle mon ~name:"FINAL" ~kind:Types.Isolated ~heap_pages:2
       ~stack_pages:1
    > 0)

let test_destroy_monitor_rejected () =
  let mon, _, _ = mk_system () in
  check_bool "monitor protected" true
    (is_error (fun () -> Monitor.destroy_cubicle mon Monitor.monitor_cid))

(* --- properties -------------------------------------------------------------------- *)

let prop_window_acl =
  (* For any sequence of open/close operations, is_open_for reflects
     exactly the most recent operation per cubicle. *)
  QCheck.Test.make ~name:"window: ACL reflects last open/close per cubicle"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (pair bool (int_bound 7)))
    (fun script ->
      let tbl = Window.create_table ~owner:0 ~ncubicles:8 in
      let w = Window.init tbl ~klass:Mm.Page_meta.Heap in
      let expect = Array.make 8 false in
      List.iter
        (fun (open_, cid) ->
          if open_ then (Window.open_for w cid; expect.(cid) <- true)
          else (Window.close_for w cid; expect.(cid) <- false))
        script;
      Array.for_all Fun.id
        (Array.mapi (fun cid e -> Window.is_open_for w cid = e) expect))

let prop_scan_catches_planted =
  (* Planting a forbidden sequence at a random offset in random bytes is
     always caught. *)
  QCheck.Test.make ~name:"scan: planted forbidden sequence always found"
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 4 200)) (int_bound 199))
    (fun (s, pos) ->
      QCheck.assume (pos + 3 <= String.length s);
      let b = Bytes.of_string s in
      Bytes.blit_string "\x0F\x01\xEF" 0 b pos 3;
      List.exists (fun h -> h.Hw.Instr.offset = pos && h.what = "wrpkru")
        (Hw.Instr.scan_forbidden b))

let prop_search_index_matches_linear =
  (* Differential test for the page-indexed ACL lookup: after any
     sequence of window create / grant / revoke / destroy operations,
     [search] must agree with the original linear scan on both the
     winning wid and the charged "descriptors inspected" count, and
     [covers] must agree with a per-byte [contains] sweep. *)
  QCheck.Test.make ~count:300 ~name:"window: page index = linear search (wid & inspected)"
    QCheck.(
      list_of_size (Gen.int_range 1 60)
        (quad (int_bound 3) (int_bound 7) (int_bound 31) (int_bound 8)))
    (fun script ->
      let tbl = Window.create_table ~owner:1 ~ncubicles:4 in
      let windows = ref [] in
      let pick i =
        match !windows with [] -> None | l -> Some (List.nth l (i mod List.length l))
      in
      List.iter
        (fun (op, wi, page, sz) ->
          (* sub-page granularity on purpose: ranges share pages, span
             several, start mid-page *)
          let ptr = 0x1000 + (page * 1024) and size = 1 + (sz * 700) in
          let ignoring f = try f () with Types.Error _ -> () in
          match op with
          | 0 ->
              if List.length !windows < 12 then
                ignoring (fun () ->
                    windows := Window.init tbl ~klass:Mm.Page_meta.Heap :: !windows)
          | 1 -> (
              match pick wi with
              | Some w -> ignoring (fun () -> Window.add_range tbl w ~ptr ~size)
              | None -> ())
          | 2 -> (
              match pick wi with
              | Some w -> ignoring (fun () -> Window.remove_range tbl w ~ptr)
              | None -> ())
          | _ -> (
              match pick wi with
              | Some w -> ignoring (fun () -> Window.destroy tbl w)
              | None -> ()))
        script;
      let norm = Option.map (fun ((w : Window.t), n) -> (w.Window.wid, n)) in
      let searches_agree = ref true in
      for a = 0 to 100 do
        let addr = 0x1000 + (a * 512) in
        if
          norm (Window.search tbl ~klass:Mm.Page_meta.Heap ~addr)
          <> norm (Window.search_linear tbl ~klass:Mm.Page_meta.Heap ~addr)
        then searches_agree := false
      done;
      let naive_covers w ~ptr ~size =
        let rec go a = a >= ptr + size || (Window.contains w a && go (a + 1)) in
        go ptr
      in
      let covers_agree =
        List.for_all
          (fun (w : Window.t) ->
            List.for_all
              (fun (ptr, size) -> Window.covers w ~ptr ~size = naive_covers w ~ptr ~size)
              [ (0x1000, 1); (0x1400, 512); (0x2000, 3000); (0x5000, 1024) ])
          (Window.live_windows tbl)
      in
      !searches_agree && covers_agree)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_window_acl; prop_scan_catches_planted; prop_search_index_matches_linear ]

let () =
  Alcotest.run "cubicle-core"
    [
      ("bitset", [ Alcotest.test_case "ops" `Quick test_bitset ]);
      ( "window",
        [
          Alcotest.test_case "table" `Quick test_window_table;
          Alcotest.test_case "destroy" `Quick test_window_destroy;
          Alcotest.test_case "remove range" `Quick test_window_remove_range;
          Alcotest.test_case "remove one of duplicate grants" `Quick
            test_window_remove_range_duplicates;
          Alcotest.test_case "batched add" `Quick test_window_add_ranges_batch;
          Alcotest.test_case "batched add atomic" `Quick test_window_add_ranges_atomic;
          Alcotest.test_case "batched open" `Quick test_window_open_many;
          Alcotest.test_case "grant forwarding" `Quick test_window_forward;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "spatial" `Quick test_spatial_isolation;
          Alcotest.test_case "window grants" `Quick test_window_grants_access;
          Alcotest.test_case "third party blocked" `Quick test_window_close_blocks_third_party;
          Alcotest.test_case "causal consistency" `Quick test_causal_consistency;
          Alcotest.test_case "ownership enforced" `Quick test_window_ownership_enforced;
          Alcotest.test_case "class mismatch" `Quick test_window_class_mismatch;
          Alcotest.test_case "stack windows" `Quick test_stack_windows;
          Alcotest.test_case "page granularity leak" `Quick test_page_granularity_leak;
          Alcotest.test_case "self-open rejected" `Quick test_self_open_rejected;
        ] );
      ( "protection levels",
        [
          Alcotest.test_case "none" `Quick test_protection_none_no_faults;
          Alcotest.test_case "mpk w/o acls" `Quick test_protection_mpk_no_acls;
          Alcotest.test_case "full" `Quick test_protection_full_needs_window;
        ] );
      ( "calls",
        [
          Alcotest.test_case "unknown symbol" `Quick test_call_unknown_symbol_cfi;
          Alcotest.test_case "edge counting" `Quick test_call_counts_edges;
          Alcotest.test_case "exception safety" `Quick test_call_pkru_restored_on_exception;
          Alcotest.test_case "nested calls" `Quick test_nested_calls;
          Alcotest.test_case "stack arguments" `Quick test_stack_argument_copy;
          Alcotest.test_case "logging" `Quick test_monitor_logs_events;
          Alcotest.test_case "shared cubicle" `Quick test_shared_cubicle_runs_with_caller_privileges;
        ] );
      ( "loader",
        [
          Alcotest.test_case "rejects wrpkru" `Quick test_loader_rejects_wrpkru;
          Alcotest.test_case "rejects syscall" `Quick test_loader_rejects_syscall;
          Alcotest.test_case "rejects hidden" `Quick test_loader_rejects_hidden_sequence;
          Alcotest.test_case "accepts signed" `Quick test_loader_accepts_signed_trusted_code;
          Alcotest.test_case "x-only code" `Quick test_loader_code_execute_only;
          Alcotest.test_case "data perms" `Quick test_loader_data_perms;
          Alcotest.test_case "page metadata" `Quick test_loader_page_metadata;
        ] );
      ( "cfi",
        [
          Alcotest.test_case "builder calls" `Quick test_builder_and_call;
          Alcotest.test_case "undeclared export" `Quick test_builder_rejects_undeclared_export;
          Alcotest.test_case "guard entry ok" `Quick test_guard_page_entry_allowed;
          Alcotest.test_case "rogue thunk fetch" `Quick test_rogue_thunk_fetch_faults;
          Alcotest.test_case "rogue cross fetch" `Quick test_rogue_cross_code_fetch_faults;
          Alcotest.test_case "own code fetch" `Quick test_own_code_fetch_allowed;
        ] );
      ( "resources",
        [
          Alcotest.test_case "key exhaustion" `Quick test_key_exhaustion;
          Alcotest.test_case "heap growth" `Quick test_malloc_heap_growth;
          Alcotest.test_case "foreign free" `Quick test_free_foreign_pointer;
          Alcotest.test_case "page ownership" `Quick test_alloc_pages_ownership;
          Alcotest.test_case "destroy cubicle" `Quick test_destroy_cubicle;
          Alcotest.test_case "destroy recycles key" `Quick test_destroy_recycles_key;
          Alcotest.test_case "destroy revokes grants" `Quick test_destroy_revokes_peer_grants;
          Alcotest.test_case "spawn guards old exports" `Quick
            test_spawn_guards_cover_existing_exports;
          Alcotest.test_case "destroy churn" `Quick test_destroy_full_slot_reuse;
          Alcotest.test_case "destroy monitor rejected" `Quick test_destroy_monitor_rejected;
        ] );
      ("properties", qsuite);
    ]
