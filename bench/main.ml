(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6). Results are simulated cycles from the machine's
   cost model, reported in the paper's units. Run with no arguments for
   everything, or with a subset of: table2 fig5 fig6 fig7 fig8 fig10a
   fig10b ablation micro hw smp. The extra target `trace` (never part of
   `all`) captures the Fig. 2 write path on the telemetry bus and writes
   trace.json / trace.folded; `--sample N` keeps 1 in N events and
   `--stream` writes the JSON incrementally through a bus sink instead
   of from the ring. `fig6 --attrib` appends the per-cubicle
   cycle-attribution tables; `--latency` (on fig6/fig10a/fig10b)
   appends per-edge call-latency percentiles and, for fig6, writes
   BENCH_latency.json. EXPERIMENTS.md records paper-vs-measured
   numbers. *)

open Cubicle

let fprintf = Printf.printf

let heading title =
  fprintf "\n=======================================================================\n";
  fprintf "%s\n" title;
  fprintf "=======================================================================\n"

(* --- Table 2: component sizes -------------------------------------------- *)

let paper_sloc =
  [
    ("Monitor (asm)", "110", "cross-cubicle calls");
    ("Monitor (C)", "3000", "all components");
    ("Builder (Python)", "640", "trampoline generation");
    ("Unikraft windows", "600", "windows");
    ("SQLite port", "620", "windows");
    ("NGINX port", "390", "windows");
  ]

let table2 () =
  heading "Table 2: Sizes of CubicleOS components";
  fprintf "Paper (SLOC):\n";
  List.iter (fun (c, n, d) -> fprintf "  %-24s %6s  %s\n" c n d) paper_sloc;
  fprintf "\nThis reproduction (loaded component inventory, NGINX deployment):\n";
  let app = Httpd.Server.component () in
  let sys = Libos.Boot.net_stack ~extra:[ (app, Types.Isolated) ] () in
  let mon = sys.Libos.Boot.mon in
  fprintf "  %-10s %-9s %-4s %8s %9s  exports\n" "component" "kind" "key" "exports"
    "heap(KiB)";
  List.iter
    (fun cid ->
      let exports = Monitor.exports_of mon cid in
      fprintf "  %-10s %-9s %-4d %8d %9d  %s\n" (Monitor.cubicle_name mon cid)
        (Types.kind_to_string (Monitor.cubicle_kind mon cid))
        (Monitor.cubicle_key mon cid) (List.length exports)
        (Monitor.cubicle_heap_bytes mon cid / 1024)
        (String.concat "," (List.filteri (fun i _ -> i < 4) exports)
        ^ if List.length exports > 4 then ",…" else ""))
    (Monitor.live_cids mon)

(* --- Figures 5 and 8: cubicle call-count graphs ---------------------------- *)

let print_edges mon edges =
  List.iter
    (fun ((caller, callee), n) ->
      fprintf "  %-10s -> %-10s %9d\n"
        (Monitor.cubicle_name mon caller)
        (Monitor.cubicle_name mon callee)
        n)
    edges

let fig5 () =
  heading "Figure 5: NGINX cubicle graph (cross-cubicle calls during measurement)";
  let app = Httpd.Server.component () in
  let sys = Libos.Boot.net_stack ~extra:[ (app, Types.Isolated) ] () in
  let mon = sys.Libos.Boot.mon in
  (* docroot of random static files, as served to siege *)
  let sizes = [ 1024; 4096; 16384; 65536 ] in
  Libos.Boot.populate sys ~as_app:"NGINX"
    (List.map (fun s -> (Printf.sprintf "/f%d.bin" s, String.make s 'x')) sizes);
  let server = Httpd.Server.start sys in
  let siege = Httpd.Siege.make sys server in
  (* warm up, then measure *)
  ignore (Httpd.Siege.fetch siege "/f1024.bin");
  let before = Stats.snapshot (Monitor.stats mon) in
  let seed = ref 7 in
  for _ = 1 to 40 do
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    let size = List.nth sizes (!seed mod List.length sizes) in
    ignore (Httpd.Siege.fetch siege (Printf.sprintf "/f%d.bin" size))
  done;
  fprintf "40 siege requests over random static files (1-64 KiB):\n";
  print_edges mon (Stats.diff_edges (Monitor.stats mon) ~since:before);
  fprintf "  (plus %d calls into shared cubicles: newlibc-style memcpy etc.)\n"
    (Stats.shared_calls (Monitor.stats mon))

let fig8 () =
  heading "Figure 8: SQLite cubicle graph (call counts include boot)";
  let inst = Ukernel.Compose.make Ukernel.Compose.Cubicle4 in
  ignore
    (Minidb.Speedtest.run_all inst.Ukernel.Compose.os ~path:"/speed.db" ~n:100
       ~measure:(fun f -> f ()));
  fprintf "speedtest1 (n=100), Fig. 8 topology (VFSCORE and RAMFS separate):\n";
  print_edges inst.Ukernel.Compose.mon
    (Stats.edges (Monitor.stats inst.Ukernel.Compose.mon));
  fprintf "  shared-cubicle calls: %d\n"
    (Stats.shared_calls (Monitor.stats inst.Ukernel.Compose.mon))

(* --- Figure 6: per-query execution times under the 4 configs --------------- *)

(* Attach a latency sink post-boot, resetting the counter plane at the
   same instant so per-edge sample counts can be cross-checked against
   calls_between. Cost attribution is untouched. *)
let attach_latency mon =
  let bus = Monitor.bus mon in
  Telemetry.Bus.set_latency bus (Some (Telemetry.Latency.create ()));
  Telemetry.Bus.reset_counters bus

let speedtest_for_protection ?(latency = false) protection ~n =
  let app = Builder.component ~heap_pages:512 ~stack_pages:4 "APP" in
  let sys =
    Libos.Boot.fs_stack ~protection ~mem_bytes:(192 * 1024 * 1024)
      ~extra:[ (app, Types.Isolated) ]
      ()
  in
  if latency then attach_latency sys.Libos.Boot.mon;
  let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make (Libos.Boot.app_ctx sys "APP")) in
  let cost = Monitor.cost sys.Libos.Boot.mon in
  let results =
    Minidb.Speedtest.run_all os ~path:"/speed.db" ~n ~measure:(fun f ->
        let c0 = Hw.Cost.cycles cost in
        f ();
        Hw.Cost.cycles cost - c0)
  in
  (results, sys.Libos.Boot.mon)

(* Per-cubicle x per-category cycle attribution (the measured form of
   the paper's §6.4 overhead decomposition). Aborts if the table does
   not sum to the machine's cycle count — attribution is exhaustive by
   construction, so any mismatch is a bug. *)
let attrib_table mon =
  let cost = Monitor.cost mon in
  let attrib = cost.Hw.Cost.attrib in
  let cname cid = try Monitor.cubicle_name mon cid with _ -> Printf.sprintf "C%d" cid in
  fprintf "%-10s" "cubicle";
  List.iter (fun c -> fprintf "%13s" (Telemetry.Attrib.cat_name c)) Telemetry.Attrib.categories;
  fprintf "%15s %6s\n" "total" "share";
  let grand = Telemetry.Attrib.total attrib in
  List.iter
    (fun (cid, row) ->
      fprintf "%-10s" (cname cid);
      Array.iter (fun v -> fprintf "%13d" v) row;
      let tot = Array.fold_left ( + ) 0 row in
      fprintf "%15d %5.1f%%\n" tot (100. *. float_of_int tot /. float_of_int (max 1 grand)))
    (Telemetry.Attrib.rows attrib);
  fprintf "%-10s" "TOTAL";
  List.iter
    (fun c -> fprintf "%13d" (Telemetry.Attrib.category_total attrib c))
    Telemetry.Attrib.categories;
  fprintf "%15d %5.1f%%\n" grand 100.;
  if grand <> Hw.Cost.cycles cost then begin
    fprintf "FATAL: attribution total %d <> Cost.cycles %d\n" grand (Hw.Cost.cycles cost);
    exit 1
  end

(* Per-edge call-latency percentiles from the bus's latency plane. The
   sink is fed from the same counter-plane sites as calls_between, so
   every counter edge must appear with the identical count — any
   divergence is a call/return pairing bug and aborts the run. The
   microkernel baselines' RPC edges are latency-only observations, so
   they carry no counter to check against. *)
let latency_table mon =
  let bus = Monitor.bus mon in
  match Telemetry.Bus.latency bus with
  | None -> fprintf "  (no latency sink attached)\n"
  | Some lat ->
      let cname cid = try Monitor.cubicle_name mon cid with _ -> Printf.sprintf "C%d" cid in
      let edges = Telemetry.Latency.edges lat in
      if edges = [] then fprintf "  (no cross-cubicle calls observed)\n"
      else begin
        fprintf "  %-10s %-10s %9s %9s %9s %9s %9s %11s\n" "caller" "callee" "count" "p50"
          "p90" "p99" "max" "mean";
        List.iter
          (fun ((caller, callee), h) ->
            let open Telemetry.Hist in
            fprintf "  %-10s %-10s %9d %9d %9d %9d %9d %11.1f\n" (cname caller)
              (cname callee) (count h) (percentile h 0.50) (percentile h 0.90)
              (percentile h 0.99) (max_value h) (mean h))
          edges
      end;
      if Telemetry.Latency.unmatched lat > 0 || Telemetry.Latency.in_flight lat > 0 then
        fprintf "  (unmatched returns: %d, in flight at capture: %d)\n"
          (Telemetry.Latency.unmatched lat)
          (Telemetry.Latency.in_flight lat);
      List.iter
        (fun ((caller, callee), n) ->
          let c =
            match Telemetry.Latency.edge lat ~caller ~callee with
            | Some h -> Telemetry.Hist.count h
            | None -> 0
          in
          if c <> n then begin
            fprintf "FATAL: edge %s->%s: latency count %d <> calls_between %d\n"
              (cname caller) (cname callee) c n;
            exit 1
          end)
        (Telemetry.Bus.edges bus)

let json_key_sanitize s = String.map (function ' ' | '/' -> '_' | c -> c) s

let latency_json_rows mon ~config =
  let bus = Monitor.bus mon in
  match Telemetry.Bus.latency bus with
  | None -> []
  | Some lat ->
      let cname cid = try Monitor.cubicle_name mon cid with _ -> Printf.sprintf "C%d" cid in
      List.concat_map
        (fun ((caller, callee), h) ->
          let key field =
            Printf.sprintf "%s.%s->%s.%s" (json_key_sanitize config) (cname caller)
              (cname callee) field
          in
          let open Telemetry.Hist in
          [
            (key "count", count h);
            (key "p50", percentile h 0.50);
            (key "p90", percentile h 0.90);
            (key "p99", percentile h 0.99);
          ])
        (Telemetry.Latency.edges lat)

let write_flat_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  \"%s\": %d%s\n" k v (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "}\n";
  close_out oc

(* Golden files are flat {"key": int} objects; this scanner is all the
   JSON we need. *)
let parse_flat_json s =
  let pairs = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '"' then begin
      let j = String.index_from s (!i + 1) '"' in
      let key = String.sub s (!i + 1) (j - !i - 1) in
      let k = ref (j + 1) in
      while !k < n && (s.[!k] = ':' || s.[!k] = ' ') do
        incr k
      done;
      let st = !k in
      while !k < n && (match s.[!k] with '0' .. '9' | '-' -> true | _ -> false) do
        incr k
      done;
      if !k > st then pairs := (key, int_of_string (String.sub s st (!k - st))) :: !pairs;
      i := !k
    end
    else incr i
  done;
  !pairs

let read_flat_json path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse_flat_json s

(* The per-edge latency analogue of the hw suite's golden-cycles guard:
   the simulator is deterministic, so every percentile must match the
   checked-in golden file bit-for-bit at the same --n. *)
let latency_check_golden path ~n rows =
  if not (Sys.file_exists path) then begin
    Printf.printf
      "GOLDEN FILE MISSING: %s\nGenerate it with:\n\
      \  dune exec bench/main.exe -- fig6 --latency --n %d --write-golden %s\n"
      path n path;
    exit 1
  end;
  let golden = read_flat_json path in
  let drift = ref [] in
  List.iter
    (fun (key, v) ->
      match List.assoc_opt key golden with
      | Some g when g = v -> ()
      | Some g -> drift := Printf.sprintf "%s: golden %d, measured %d" key g v :: !drift
      | None -> drift := Printf.sprintf "%s: missing from golden file" key :: !drift)
    rows;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key rows) then
        drift := Printf.sprintf "%s: in golden file but edge not measured" key :: !drift)
    golden;
  if !drift <> [] then begin
    fprintf "\nGOLDEN LATENCY DRIFT vs %s:\n" path;
    List.iter (fprintf "  %s\n") (List.rev !drift);
    fprintf
      "If the drift is an intentional cost-model or stack change, recalibrate with:\n\
      \  dune exec bench/main.exe -- fig6 --latency --n %d --write-golden %s\n"
      n path;
    exit 1
  end;
  fprintf "\ngolden check OK: per-edge latency percentiles match %s\n" path

let fig6 ?(n = 150) ?(attrib = false) ?(latency = false) ?(hdr = false)
    ?(lat_out = "BENCH_latency.json") ?golden ?write_golden () =
  let latency = latency || hdr || golden <> None || write_golden <> None in
  heading "Figure 6: SQLite speedtest1 query execution times (simulated ms)";
  let configs =
    [
      ("Unikraft", Types.None_);
      ("w/o MPK", Types.Trampolines);
      ("w/o ACLs", Types.Mpk);
      ("CubicleOS", Types.Full);
    ]
  in
  let full_runs =
    List.map (fun (name, p) -> (name, speedtest_for_protection ~latency p ~n)) configs
  in
  let runs = List.map (fun (name, (r, _)) -> (name, r)) full_runs in
  let base = List.assoc "Unikraft" runs in
  let full = List.assoc "CubicleOS" runs in
  fprintf "%-5s %-5s " "query" "group";
  List.iter (fun (name, _) -> fprintf "%10s " name) runs;
  fprintf "%9s\n" "slowdown";
  List.iteri
    (fun i ((q : Minidb.Speedtest.query), base_cycles) ->
      fprintf "%-5d %-5s " q.id
        (match q.group with Minidb.Speedtest.Light -> "L" | Heavy -> "H");
      List.iter
        (fun (_, results) ->
          let _, c = List.nth results i in
          fprintf "%10.2f " (Hw.Cost.to_ms c))
        runs;
      let _, full_cycles = List.nth full i in
      fprintf "%8.2fx\n" (float_of_int full_cycles /. float_of_int (max 1 base_cycles)))
    base;
  (* the paper's §6.4 decomposition *)
  let group_avg group =
    List.map
      (fun (name, results) ->
        let xs =
          List.filter_map
            (fun ((q : Minidb.Speedtest.query), c) ->
              if q.group = group then Some c else None)
            results
        in
        (name, List.fold_left ( + ) 0 xs / List.length xs))
      runs
  in
  let print_group label group =
    let avgs = group_avg group in
    let base = float_of_int (List.assoc "Unikraft" avgs) in
    fprintf "%s:\n" label;
    List.iter
      (fun (name, c) ->
        fprintf "  %-10s %10.2f ms  (%.2fx)\n" name (Hw.Cost.to_ms c)
          (float_of_int c /. base))
      avgs
  in
  fprintf "\nGroup averages (paper: light group ~1.8x, heavy group ~8x):\n";
  print_group "light queries" Minidb.Speedtest.Light;
  print_group "heavy queries" Minidb.Speedtest.Heavy;
  if attrib then begin
    fprintf
      "\n§6.4 overhead decomposition: per-cubicle cycle attribution (full run incl. boot)\n";
    List.iter
      (fun (name, (_, mon)) ->
        fprintf "\n[%s]\n" name;
        attrib_table mon)
      full_runs
  end;
  if latency then begin
    fprintf
      "\nPer-edge call latency (simulated cycles; counters reset post-boot so\n\
       per-edge counts equal the bus's calls_between — checked):\n";
    List.iter
      (fun (name, (_, mon)) ->
        fprintf "\n[%s]\n" name;
        latency_table mon)
      full_runs;
    let rows =
      List.concat_map (fun (name, (_, mon)) -> latency_json_rows mon ~config:name) full_runs
    in
    write_flat_json lat_out rows;
    fprintf "\nwrote %s\n" lat_out;
    if hdr then begin
      (* HdrHistogram-compatible percentile dump, loadable by hdr-plot
         and the HdrHistogram plotFiles viewer: one section per
         cross-cubicle edge of the full-protection run *)
      let hdr_out =
        (if Filename.check_suffix lat_out ".json" then Filename.chop_suffix lat_out ".json"
         else lat_out)
        ^ ".hdr"
      in
      let mon = snd (List.assoc "CubicleOS" full_runs) in
      let bus = Monitor.bus mon in
      (match Telemetry.Bus.latency bus with
      | None -> ()
      | Some lat ->
          let cname cid =
            try Monitor.cubicle_name mon cid with _ -> Printf.sprintf "C%d" cid
          in
          let oc = open_out hdr_out in
          List.iter
            (fun ((caller, callee), h) ->
              Printf.fprintf oc "#[Edge: %s->%s]\n%s\n" (cname caller) (cname callee)
                (Telemetry.Export.hdr h))
            (Telemetry.Latency.edges lat);
          close_out oc;
          fprintf "wrote HdrHistogram percentile dump to %s\n" hdr_out)
    end;
    (match write_golden with
    | Some path ->
        write_flat_json path rows;
        fprintf "wrote golden per-edge latencies (--n %d) to %s\n" n path
    | None -> ());
    match golden with Some path -> latency_check_golden path ~n rows | None -> ()
  end

(* --- Figure 7: NGINX download latency vs transfer size ---------------------- *)

let fig7 ?(repeats = 3) ?(latency = false) ?(lat_out = "BENCH_latency.json") () =
  heading "Figure 7: NGINX download latency vs transfer size (simulated ms)";
  let sizes = List.init 14 (fun i -> 1024 lsl i) (* 1 KiB .. 8 MiB *) in
  let run protection =
    let app = Httpd.Server.component () in
    let sys =
      Libos.Boot.net_stack ~protection ~mem_bytes:(512 * 1024 * 1024)
        ~extra:[ (app, Types.Isolated) ]
        ()
    in
    if latency then attach_latency sys.Libos.Boot.mon;
    let server = Httpd.Server.start sys in
    let siege = Httpd.Siege.make sys server in
    let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "NGINX") in
    let results =
      Httpd.Siege.latency_for_sizes siege ~sizes ~repeats
        ~populate:(fun size ->
          let path = Printf.sprintf "/f%d.bin" size in
          if not (Libos.Fileio.exists fio path) then
            Libos.Fileio.write_file fio path (String.make size 'd');
          path)
        ()
    in
    (results, sys.Libos.Boot.mon)
  in
  let base, base_mon = run Types.None_ in
  let cubicle, full_mon = run Types.Full in
  fprintf "%12s %14s %14s %9s\n" "size(B)" "baseline(ms)" "CubicleOS(ms)" "overhead";
  List.iter2
    (fun (size, b, _) (_, c, _) -> fprintf "%12d %14.2f %14.2f %8.2fx\n" size b c (c /. b))
    base cubicle;
  if latency then begin
    fprintf
      "\nPer-edge call latency of the serving path (the paper's request pipeline:\n\
       NGINX->LWIP for recv/send, LWIP->NETDEV per frame; counters reset\n\
       post-boot so per-edge counts equal the bus's calls_between — checked):\n";
    let runs = [ ("fig7-baseline", base_mon); ("fig7-CubicleOS", full_mon) ] in
    List.iter
      (fun (name, mon) ->
        fprintf "\n[%s]\n" name;
        latency_table mon;
        (* call out the two edges Figure 7's overhead story hangs on *)
        let bus = Monitor.bus mon in
        match Telemetry.Bus.latency bus with
        | None -> ()
        | Some lat ->
            let cid_of name =
              if Monitor.cubicle_exists mon name then Some (Monitor.lookup_cubicle mon name)
              else None
            in
            List.iter
              (fun (c1, c2) ->
                match (cid_of c1, cid_of c2) with
                | Some caller, Some callee -> (
                    match Telemetry.Latency.edge lat ~caller ~callee with
                    | Some h ->
                        let open Telemetry.Hist in
                        fprintf "  %s->%s: %d calls, p50 %d / p99 %d cycles\n" c1 c2
                          (count h) (percentile h 0.50) (percentile h 0.99)
                    | None -> fprintf "  %s->%s: edge not observed\n" c1 c2)
                | _ -> ())
              [ ("NGINX", "LWIP"); ("LWIP", "NETDEV") ])
      runs;
    (* merge into the flat BENCH_latency.json so a fig6 run in the same
       invocation is appended to, not clobbered *)
    let prior =
      if Sys.file_exists lat_out then
        List.filter
          (fun (k, _) -> not (String.length k >= 5 && String.sub k 0 5 = "fig7-"))
          (read_flat_json lat_out)
      else []
    in
    let rows =
      prior
      @ List.concat_map (fun (name, mon) -> latency_json_rows mon ~config:name) runs
    in
    write_flat_json lat_out rows;
    fprintf "\nwrote %s\n" lat_out
  end

(* --- Figures 9/10: partitioning comparison ----------------------------------- *)

let fig10a ?(n = 120) ?(latency = false) () =
  heading "Figure 10a: slowdown vs Linux (speedtest1 average)";
  fprintf "(Figure 9: '3 components' merges the fs driver into the VFS;\n";
  fprintf " '4 components' separates RAMFS into its own compartment)\n\n";
  let open Ukernel.Compose in
  let configs =
    [
      Linux;
      Unikraft;
      Genode3 Ukernel.Kernel.linux;
      Genode4 Ukernel.Kernel.linux;
      Cubicle3;
      Cubicle4;
    ]
  in
  let runs =
    List.map
      (fun c ->
        let inst = make c in
        if latency then attach_latency inst.mon;
        let per_q = speedtest_run ~n inst in
        (config_name c, List.fold_left (fun acc (_, cyc) -> acc + cyc) 0 per_q, inst.mon))
      configs
  in
  let totals = List.map (fun (name, total, _) -> (name, total)) runs in
  let linux_total = float_of_int (List.assoc "Linux" totals) in
  fprintf "%-16s %16s %9s   (paper)\n" "config" "cycles" "slowdown";
  let paper = [ "1.0x"; "2.8x"; "1.4x"; "29x"; "4.1x"; "5.4x" ] in
  List.iteri
    (fun i (name, total) ->
      fprintf "%-16s %16d %8.1fx   (%s)\n" name total
        (float_of_int total /. linux_total)
        (List.nth paper i))
    totals;
  if latency then begin
    fprintf
      "\nPer-edge call latency (trampoline edges counter-checked; the Genode\n\
       configs' kernel RPC edges are latency-only observations):\n";
    List.iter
      (fun (name, _, mon) ->
        fprintf "\n[%s]\n" name;
        latency_table mon)
      runs
  end

let fig10b ?(n = 120) ?(latency = false) () =
  heading "Figure 10b: slowdown of 4 components vs 3 components";
  let open Ukernel.Compose in
  (* keep the 4-component monitors when --latency: those deployments are
     where the per-packet RPC edges live *)
  let kept = ref [] in
  let total ~keep c =
    let inst = make c in
    if latency then attach_latency inst.mon;
    let t = List.fold_left (fun acc (_, cyc) -> acc + cyc) 0 (speedtest_run ~n inst) in
    if latency && keep then kept := (config_name c, inst.mon) :: !kept;
    t
  in
  let ratio three four =
    let t3 = total ~keep:false three in
    let t4 = total ~keep:true four in
    float_of_int t4 /. float_of_int t3
  in
  let paper =
    [
      ("SeL4", "7.5x");
      ("Fiasco.OC", "4.5x");
      ("NOVA", "4.7x");
      ("Linux", "~20x");
      ("CubicleOS", "1.4x");
    ]
  in
  let results =
    List.map
      (fun k -> (k.Ukernel.Kernel.name, ratio (Genode3 k) (Genode4 k)))
      [ Ukernel.Kernel.sel4; Ukernel.Kernel.fiasco_oc; Ukernel.Kernel.nova; Ukernel.Kernel.linux ]
    @ [ ("CubicleOS", ratio Cubicle3 Cubicle4) ]
  in
  fprintf "%-12s %9s   (paper)\n" "kernel" "slowdown";
  List.iter
    (fun (name, r) -> fprintf "%-12s %8.1fx   (%s)\n" name r (List.assoc name paper))
    results;
  if latency then begin
    fprintf "\nPer-edge call latency of the 4-component deployments:\n";
    List.iter
      (fun (name, mon) ->
        fprintf "\n[%s]\n" name;
        latency_table mon)
      (List.rev !kept)
  end

(* --- Ablations: the design-space choices of §5.6/§8 --------------------------- *)

let ablation () =
  heading "Ablation: window mapping/revocation policies and window-specific tags";
  fprintf
    "The Figure-2 write path (1000 x 4 KiB pwrite through APP->VFSCORE->RAMFS),\n\
     full protection, with CubicleOS's mechanisms swapped for the alternatives\n\
     the paper discusses (§5.6) and the hybrid it suggests (§8):\n\n";
  let run ~policy ~dedicated =
    let sys =
      Libos.Boot.fs_stack ~protection:Types.Full ~policy
        ~extra:[ (Builder.component ~heap_pages:64 ~stack_pages:4 "APP", Types.Isolated) ]
        ()
    in
    let mon = sys.Libos.Boot.mon in
    let ctx = Libos.Boot.app_ctx sys "APP" in
    let fio = Libos.Fileio.make ctx in
    let fd =
      Monitor.run_as mon (Api.self ctx) (fun () ->
          Libos.Fileio.open_file fio "/abl.bin" ~create:true)
    in
    let buf = Api.malloc_page_aligned ctx 4096 in
    let c0 = Hw.Cost.cycles (Monitor.cost mon) in
    let f0 = Hw.Cpu.fault_count (Monitor.cpu mon) in
    let r0 = Monitor.retag_count mon in
    Monitor.run_as mon (Api.self ctx) (fun () ->
        if dedicated then begin
          (* hybrid: one standing window with its own tag *)
          let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
          Api.window_add ctx wid ~ptr:buf ~size:4096;
          Api.window_open_dedicated ctx wid (Api.cid_of ctx "VFSCORE");
          Api.window_open_dedicated ctx wid (Api.call ctx "vfs_backend_cid" [||]);
          for i = 0 to 999 do
            Api.write_u32 ctx buf i;
            ignore (Api.call ctx "vfs_pwrite" [| fd; buf; 4096; i * 4096 |])
          done
        end
        else
          for i = 0 to 999 do
            Api.write_u32 ctx buf i;
            ignore (Libos.Fileio.pwrite fio ~fd ~buf ~len:4096 ~off:(i * 4096))
          done);
    ( Hw.Cost.cycles (Monitor.cost mon) - c0,
      Hw.Cpu.fault_count (Monitor.cpu mon) - f0,
      Monitor.retag_count mon - r0 )
  in
  let configs =
    [
      ("trap-and-map + causal (CubicleOS)", Monitor.default_policy, false);
      ("eager map on open", { Monitor.mapping = `Eager_on_open; revocation = `Causal }, false);
      ("eager revoke on close", { Monitor.mapping = `Lazy_trap; revocation = `Eager_revoke }, false);
      ( "eager map + eager revoke",
        { Monitor.mapping = `Eager_on_open; revocation = `Eager_revoke },
        false );
      ("window-specific tag (hybrid, §8)", Monitor.default_policy, true);
    ]
  in
  fprintf "%-36s %14s %8s %8s\n" "configuration" "cycles" "faults" "retags";
  List.iter
    (fun (name, policy, dedicated) ->
      let cycles, faults, retags = run ~policy ~dedicated in
      fprintf "%-36s %14d %8d %8d\n" name cycles faults retags)
    configs;
  (* Scenario B: the conservative-port pattern the lazy design targets —
     a wide window (16 pages) of which the callee touches only one. *)
  fprintf
    "\nScenario B: 500 calls, 16-page window opened each time, 1 page touched\n\
     (conservatively sized grants, where lazy trap-and-map shines):\n\n";
  let run_wide ~policy =
    let mon = Monitor.create ~policy ~protection:Types.Full () in
    let foo = Monitor.create_cubicle mon ~name:"FOO" ~kind:Types.Isolated ~heap_pages:32 ~stack_pages:2 in
    let bar = Monitor.create_cubicle mon ~name:"BAR" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
    Monitor.register_exports mon bar
      [
        {
          Monitor.sym = "bar_peek";
          fn = (fun c a -> Api.read_u8 c a.(0));
          stack_bytes = 0;
        };
      ];
    let ctx = Monitor.ctx_for mon foo in
    let buf = Api.malloc_page_aligned ctx (16 * 4096) in
    let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
    Api.window_add ctx wid ~ptr:buf ~size:(16 * 4096);
    let c0 = Hw.Cost.cycles (Monitor.cost mon) in
    for _ = 1 to 500 do
      Api.window_open ctx wid bar;
      ignore (Monitor.call mon ~caller:foo "bar_peek" [| buf |]);
      Api.window_close ctx wid bar
    done;
    ( Hw.Cost.cycles (Monitor.cost mon) - c0,
      Hw.Cpu.fault_count (Monitor.cpu mon),
      Monitor.retag_count mon )
  in
  fprintf "%-36s %14s %8s %8s\n" "configuration" "cycles" "faults" "retags";
  List.iter
    (fun (name, policy, dedicated) ->
      if not dedicated then begin
        let cycles, faults, retags = run_wide ~policy in
        fprintf "%-36s %14d %8d %8d\n" name cycles faults retags
      end)
    configs;
  (* Scenario C: tag virtualisation (libmpk, paper §8) — cost of
     running more isolated cubicles than the 16 hardware keys. *)
  fprintf
    "\nScenario C: round-robin calls across N isolated cubicles\n\
     (tag virtualisation on; hardware has 14 usable keys):\n\n";
  fprintf "%-10s %14s %10s %10s\n" "cubicles" "cycles" "evictions" "cyc/call";
  List.iter
    (fun n ->
      let mon = Monitor.create ~virtualise:true ~protection:Types.Full () in
      let cids =
        List.init n (fun i ->
            let cid =
              Monitor.create_cubicle mon ~name:(Printf.sprintf "N%02d" i)
                ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
            in
            Monitor.register_exports mon cid
              [
                {
                  Monitor.sym = Printf.sprintf "n%02d_work" i;
                  fn = (fun ctx a -> Api.write_u8 ctx a.(0) 1; 0);
                  stack_bytes = 0;
                };
              ];
            cid)
      in
      let bufs = List.map (fun cid -> Monitor.malloc mon cid 64) cids in
      let calls = 50 * n in
      let c0 = Hw.Cost.cycles (Monitor.cost mon) in
      for r = 0 to calls - 1 do
        let i = r mod n in
        ignore
          (Monitor.call mon ~caller:Monitor.monitor_cid
             (Printf.sprintf "n%02d_work" i)
             [| List.nth bufs i |])
      done;
      let cycles = Hw.Cost.cycles (Monitor.cost mon) - c0 in
      fprintf "%-10d %14d %10d %10d\n" n cycles (Monitor.tag_evictions mon)
        (cycles / calls))
    [ 4; 8; 12; 14; 16; 20; 28 ];
  (* Scenario D: journal modes — rollback journal vs write-ahead log
     for per-row transaction workloads (the heavy group's pattern). *)
  fprintf
    "\nScenario D: 200 single-row transactions, rollback journal vs WAL\n\
     (full protection; WAL batches its writes into the log):\n\n";
  fprintf "%-20s %14s %12s %10s\n" "journal mode" "cycles" "page writes" "vfs syncs";
  List.iter
    (fun (name, mode) ->
      let app = Builder.component ~heap_pages:256 ~stack_pages:4 "APP" in
      let sys =
        Libos.Boot.fs_stack ~protection:Types.Full ~mem_bytes:(128 * 1024 * 1024)
          ~extra:[ (app, Types.Isolated) ] ()
      in
      let ctx = Libos.Boot.app_ctx sys "APP" in
      let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make ctx) in
      let mon = sys.Libos.Boot.mon in
      Monitor.run_as mon (Api.self ctx) (fun () ->
          let db = Minidb.Db.open_db ~journal_mode:mode os ~path:"/jm.db" in
          let t = Minidb.Db.create_table db "t" in
          Minidb.Db.with_txn db (fun () ->
              for i = 1 to 200 do
                ignore (Minidb.Db.insert db t [ Minidb.Record.int i ])
              done);
          let c0 = Hw.Cost.cycles (Monitor.cost mon) in
          let w0 = (Minidb.Pager.stats (Minidb.Db.pager db)).page_writes in
          for i = 1 to 200 do
            Minidb.Db.with_txn db (fun () ->
                ignore
                  (Minidb.Db.update db t (Int64.of_int i) [ Minidb.Record.int (-i) ]))
          done;
          let cycles = Hw.Cost.cycles (Monitor.cost mon) - c0 in
          let writes = (Minidb.Pager.stats (Minidb.Db.pager db)).page_writes - w0 in
          fprintf "%-20s %14d %12d %10d\n" name cycles writes
            (Stats.calls_to_sym (Monitor.stats mon) "vfs_fsync");
          Minidb.Db.close db))
    [ ("rollback journal", Minidb.Pager.Rollback); ("write-ahead log", Minidb.Pager.Wal) ]

(* --- Bechamel microbenchmarks -------------------------------------------------- *)

let micro () =
  heading "Microbenchmarks (Bechamel; wall-clock of the simulator itself)";
  let open Bechamel in
  let mon = Monitor.create ~protection:Types.Full () in
  let foo = Monitor.create_cubicle mon ~name:"FOO" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  let bar = Monitor.create_cubicle mon ~name:"BAR" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  Monitor.register_exports mon bar
    [
      {
        Monitor.sym = "bar_fn";
        fn = (fun ctx a -> Api.write_u8 ctx a.(0) 1; 0);
        stack_bytes = 0;
      };
    ];
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 4096 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:4096;
  Api.window_open ctx wid bar;
  let cpu = Monitor.cpu mon in
  let tests =
    Test.make_grouped ~name:"cubicleos"
      [
        Test.make ~name:"wrpkru"
          (Staged.stage (fun () -> Hw.Cpu.wrpkru cpu Hw.Pkru.all_allow));
        Test.make ~name:"window-open-close"
          (Staged.stage (fun () ->
               Api.window_close ctx wid bar;
               Api.window_open ctx wid bar));
        Test.make ~name:"cross-cubicle-call-warm"
          (Staged.stage (fun () -> ignore (Monitor.call mon ~caller:foo "bar_fn" [| buf |])));
        Test.make ~name:"trap-and-map-fault"
          (Staged.stage (fun () ->
               Hw.Cpu.set_page_key cpu (Hw.Addr.page_of buf) (Monitor.cubicle_key mon foo);
               ignore (Monitor.call mon ~caller:foo "bar_fn" [| buf |])));
        Test.make ~name:"memcpy-2KiB-simulated"
          (Staged.stage (fun () -> Hw.Cpu.memcpy cpu ~dst:(buf + 2048) ~src:buf ~len:2048));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> fprintf "  %-40s %12.1f ns/op\n" name est
      | _ -> fprintf "  %-40s (no estimate)\n" name)
    (List.sort compare rows)

(* --- hw: software-TLB wall-clock suite -> BENCH_hw.json --------------------------- *)

(* Unlike the bechamel [micro] suite this one is bounded by fixed
   iteration counts, so its simulated-cycle counts are deterministic:
   CI compares them against bench/golden_cycles.json to catch cost-model
   drift, and the wall-clock columns track the trajectory of the
   simulator itself. The TLB must never change simulated behaviour —
   every scenario runs twice (TLB on / TLB off) and the harness fails
   if cycles, faults or wrpkru counts differ. *)

type hw_row = {
  hw_name : string;
  wall_ns_on : float;
  wall_ns_off : float;
  hw_cycles : int;
  hw_faults : int;
  hw_wrpkru : int;
  hw_hit_rate : float;
}

let hw_scenario ~name body =
  let run tlb_on =
    let mon = Monitor.create ~protection:Types.Full () in
    let cpu = Monitor.cpu mon in
    Hw.Cpu.set_tlb_enabled cpu tlb_on;
    let foo =
      Monitor.create_cubicle mon ~name:"FOO" ~kind:Types.Isolated ~heap_pages:32
        ~stack_pages:2
    in
    let bar =
      Monitor.create_cubicle mon ~name:"BAR" ~kind:Types.Isolated ~heap_pages:8
        ~stack_pages:2
    in
    Monitor.register_exports mon bar
      [
        {
          Monitor.sym = "bar_fn";
          fn = (fun ctx a -> Api.write_u8 ctx a.(0) 1; 0);
          stack_bytes = 0;
        };
      ];
    let ctx = Monitor.ctx_for mon foo in
    let buf = Api.malloc_page_aligned ctx (16 * 4096) in
    let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
    Api.window_add ctx wid ~ptr:buf ~size:(16 * 4096);
    let tlb = Hw.Cpu.tlb cpu in
    Hw.Tlb.reset_counters tlb;
    let c0 = Hw.Cost.cycles (Monitor.cost mon) in
    let f0 = Hw.Cpu.fault_count cpu in
    let k0 = Hw.Cpu.wrpkru_count cpu in
    let t0 = Unix.gettimeofday () in
    body mon ctx ~foo ~bar ~buf ~wid;
    let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    ( wall_ns,
      Hw.Cost.cycles (Monitor.cost mon) - c0,
      Hw.Cpu.fault_count cpu - f0,
      Hw.Cpu.wrpkru_count cpu - k0,
      Hw.Tlb.hit_rate tlb )
  in
  let wall_ns_on, cycles_on, faults_on, wrpkru_on, hit_rate = run true in
  let wall_ns_off, cycles_off, faults_off, wrpkru_off, _ = run false in
  if (cycles_on, faults_on, wrpkru_on) <> (cycles_off, faults_off, wrpkru_off) then begin
    fprintf
      "FATAL: %s: TLB changed simulated behaviour\n\
      \  on : cycles=%d faults=%d wrpkru=%d\n\
      \  off: cycles=%d faults=%d wrpkru=%d\n"
      name cycles_on faults_on wrpkru_on cycles_off faults_off wrpkru_off;
    exit 1
  end;
  {
    hw_name = name;
    wall_ns_on;
    wall_ns_off;
    hw_cycles = cycles_on;
    hw_faults = faults_on;
    hw_wrpkru = wrpkru_on;
    hw_hit_rate = hit_rate;
  }

let hw_rows () =
  [
    (* The MMU hot loop: a cubicle scanning its own 16-page heap buffer.
       One page walk per page, then every access is a TLB hit. Reads go
       straight through the checked accessor so the loop measures the
       MMU path, not harness arithmetic. *)
    hw_scenario ~name:"hot_loop_reads" (fun mon ctx ~foo ~bar:_ ~buf ~wid:_ ->
        let cpu = ctx.Monitor.cpu in
        Monitor.run_as mon foo (fun () ->
            for i = 0 to 1_999_999 do
              ignore (Hw.Cpu.read_u8 cpu (buf + (i land 0xFFFF)))
            done));
    (* Window trap-and-map storm: open/fault/retag/close per call —
       dominated by monitor work, the TLB must stay out of the way. *)
    hw_scenario ~name:"trap_and_map_storm" (fun mon ctx ~foo ~bar ~buf ~wid ->
        for _ = 1 to 2_000 do
          Api.window_open ctx wid bar;
          ignore (Monitor.call mon ~caller:foo "bar_fn" [| buf |]);
          Api.window_close ctx wid bar
        done);
    (* Warm cross-cubicle call churn: trampoline PKRU flips flush the
       TLB twice per call, so this measures flush overhead. *)
    hw_scenario ~name:"call_churn" (fun mon ctx ~foo ~bar ~buf ~wid ->
        Api.window_open ctx wid bar;
        ignore (Monitor.call mon ~caller:foo "bar_fn" [| buf |]);
        for _ = 1 to 20_000 do
          ignore (Monitor.call mon ~caller:foo "bar_fn" [| buf |])
        done);
  ]

let hw_write_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  \"%s.wall_ns\": %.0f,\n\
        \  \"%s.wall_ns_tlb_off\": %.0f,\n\
        \  \"%s.simulated_cycles\": %d,\n\
        \  \"%s.faults\": %d,\n\
        \  \"%s.wrpkru\": %d,\n\
        \  \"%s.tlb_hit_rate\": %.4f%s\n"
        r.hw_name r.wall_ns_on r.hw_name r.wall_ns_off r.hw_name r.hw_cycles r.hw_name
        r.hw_faults r.hw_name r.hw_wrpkru r.hw_name r.hw_hit_rate
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "}\n";
  close_out oc

let hw_write_golden path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "  \"%s.cycles\": %d,\n  \"%s.faults\": %d,\n  \"%s.wrpkru\": %d%s\n"
        r.hw_name r.hw_cycles r.hw_name r.hw_faults r.hw_name r.hw_wrpkru
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "}\n";
  close_out oc

let hw_check_golden path rows =
  if not (Sys.file_exists path) then begin
    Printf.printf "GOLDEN FILE MISSING: %s\nGenerate it with:\n  dune exec bench/main.exe -- hw --write-golden %s\n" path path;
    exit 1
  end;
  let ic = open_in path in
  let len = in_channel_length ic in
  let golden = parse_flat_json (really_input_string ic len) in
  close_in ic;
  let drift = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (field, v) ->
          let key = r.hw_name ^ "." ^ field in
          match List.assoc_opt key golden with
          | Some g when g = v -> ()
          | Some g -> drift := Printf.sprintf "%s: golden %d, measured %d" key g v :: !drift
          | None -> drift := Printf.sprintf "%s: missing from golden file" key :: !drift)
        [ ("cycles", r.hw_cycles); ("faults", r.hw_faults); ("wrpkru", r.hw_wrpkru) ])
    rows;
  if !drift <> [] then begin
    fprintf "\nGOLDEN CYCLE DRIFT vs %s:\n" path;
    List.iter (fprintf "  %s\n") (List.rev !drift);
    fprintf
      "If the drift is an intentional cost-model change, recalibrate with:\n\
      \  dune exec bench/main.exe -- hw --write-golden %s\n"
      path;
    exit 1
  end;
  fprintf "\ngolden check OK: simulated cycles match %s\n" path

let hw ?(out = "BENCH_hw.json") ?golden ?write_golden () =
  heading "Software TLB: wall-clock of the simulator (simulated cycles unchanged)";
  let rows = hw_rows () in
  fprintf "%-20s %14s %14s %8s %14s %8s %8s %8s\n" "scenario" "tlb_on(ns)" "tlb_off(ns)"
    "speedup" "cycles" "faults" "wrpkru" "hitrate";
  List.iter
    (fun r ->
      fprintf "%-20s %14.0f %14.0f %7.1fx %14d %8d %8d %7.1f%%\n" r.hw_name r.wall_ns_on
        r.wall_ns_off
        (r.wall_ns_off /. r.wall_ns_on)
        r.hw_cycles r.hw_faults r.hw_wrpkru (100. *. r.hw_hit_rate))
    rows;
  hw_write_json out rows;
  fprintf "wrote %s\n" out;
  Option.iter (fun path -> hw_write_golden path rows; fprintf "wrote %s\n" path) write_golden;
  Option.iter (fun path -> hw_check_golden path rows) golden

(* --- trace: event capture of the Fig. 2 write path -------------------------------- *)

(* Runs the paper's running example (1000 x 4 KiB pwrite through
   APP -> VFSCORE -> RAMFS, full protection) twice — tracing off, then
   on — and fails hard if tracing perturbed simulated behaviour; the
   same identity must hold when the traced run is sampled (--sample N)
   or streamed (--stream). The trace is exported as Chrome trace_event
   JSON and folded-stacks text; with --stream the JSON is written
   incrementally by a bus sink during the run and self-checked
   byte-equal against the ring exporter whenever the ring kept every
   event. *)
let trace ?(out = "trace.json") ?(folded = "trace.folded") ?(sample = 1) ?(stream = false) ()
    =
  heading "Telemetry trace: Fig. 2 write path (1000 x 4 KiB pwrite, full protection)";
  let run ~tracing ~configure =
    let app = Builder.component ~heap_pages:64 ~stack_pages:4 "APP" in
    let sys =
      Libos.Boot.fs_stack ~protection:Types.Full ~extra:[ (app, Types.Isolated) ] ()
    in
    let mon = sys.Libos.Boot.mon in
    Telemetry.Bus.set_tracing (Monitor.bus mon) tracing;
    configure mon;
    let ctx = Libos.Boot.app_ctx sys "APP" in
    let fio = Libos.Fileio.make ctx in
    let fd =
      Monitor.run_as mon (Api.self ctx) (fun () ->
          Libos.Fileio.open_file fio "/trace.bin" ~create:true)
    in
    let buf = Api.malloc_page_aligned ctx 4096 in
    Monitor.run_as mon (Api.self ctx) (fun () ->
        for i = 0 to 999 do
          Api.write_u32 ctx buf i;
          ignore (Libos.Fileio.pwrite fio ~fd ~buf ~len:4096 ~off:(i * 4096))
        done);
    ( mon,
      Hw.Cost.cycles (Monitor.cost mon),
      Hw.Cpu.fault_count (Monitor.cpu mon),
      Hw.Cpu.wrpkru_count (Monitor.cpu mon) )
  in
  let _, c_off, f_off, k_off = run ~tracing:false ~configure:ignore in
  let cycles_per_us = Hw.Cost.cycles_per_us in
  let streamed = Buffer.create (1 lsl 16) in
  let stream_st = ref None in
  let configure mon =
    let bus = Monitor.bus mon in
    if sample > 1 then Telemetry.Bus.set_sampling bus ~every:sample;
    if stream then begin
      let names cid = try Monitor.cubicle_name mon cid with _ -> Printf.sprintf "C%d" cid in
      let st =
        Telemetry.Export.Stream.create ~names ~cycles_per_us
          ~write:(Buffer.add_string streamed) ()
      in
      stream_st := Some st;
      Telemetry.Bus.set_sink bus (Some (Telemetry.Export.Stream.entry st))
    end
  in
  let mon, c_on, f_on, k_on = run ~tracing:true ~configure in
  Option.iter Telemetry.Export.Stream.finish !stream_st;
  let mode =
    (if sample > 1 then Printf.sprintf " (sampled 1/%d)" sample else "")
    ^ if stream then " (streamed)" else ""
  in
  if (c_on, f_on, k_on) <> (c_off, f_off, k_off) then begin
    fprintf
      "FATAL: tracing%s changed simulated behaviour\n\
      \  off: cycles=%d faults=%d wrpkru=%d\n\
      \  on : cycles=%d faults=%d wrpkru=%d\n"
      mode c_off f_off k_off c_on f_on k_on;
    exit 1
  end;
  fprintf "tracing%s on/off bit-identical: cycles=%d faults=%d wrpkru=%d\n" mode c_on f_on
    k_on;
  let bus = Monitor.bus mon in
  let names cid = try Monitor.cubicle_name mon cid with _ -> Printf.sprintf "C%d" cid in
  let entries = Telemetry.Bus.events bus in
  fprintf "events: %d captured, %d dropped (ring capacity %d), %d sampled out, %d emitted\n"
    (Telemetry.Bus.captured bus) (Telemetry.Bus.dropped bus) (Telemetry.Bus.capacity bus)
    (Telemetry.Bus.sampled_out bus)
    (Telemetry.Bus.total_emitted bus);
  if sample > 1 && Telemetry.Bus.dropped bus > 0 then begin
    fprintf "FATAL: sampling 1/%d still overflowed the ring (%d drops)\n" sample
      (Telemetry.Bus.dropped bus);
    exit 1
  end;
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  if stream then begin
    write out (Buffer.contents streamed);
    fprintf "wrote %s (streamed Chrome trace_event JSON, written during the run)\n" out;
    if Telemetry.Bus.dropped bus = 0 then begin
      let ring_json = Telemetry.Export.trace_json ~names ~cycles_per_us entries in
      if not (String.equal ring_json (Buffer.contents streamed)) then begin
        fprintf "FATAL: streamed export differs from ring exporter (%d vs %d bytes)\n"
          (Buffer.length streamed) (String.length ring_json);
        exit 1
      end;
      fprintf "stream byte-match OK: streamed output identical to ring exporter\n"
    end
    else
      fprintf
        "(ring dropped %d events, so the ring exporter holds a suffix only —\n\
        \ byte-match self-check skipped; the streamed file has the full trace)\n"
        (Telemetry.Bus.dropped bus)
  end
  else begin
    write out (Telemetry.Export.trace_json ~names ~cycles_per_us entries);
    fprintf "wrote %s (Chrome trace_event JSON; load in chrome://tracing or Perfetto)\n" out
  end;
  write folded (Telemetry.Export.folded_stacks ~names ~until:c_on entries);
  fprintf "wrote %s (folded stacks; feed to flamegraph.pl or speedscope)\n" folded;
  fprintf "\nper-cubicle cycle attribution of the traced run:\n";
  attrib_table mon

(* --- CubiCheck: static isolation analyzer + trace-driven detectors ---------- *)

(* Dynamic plane: seed the replay mirror from the freshly booted
   monitor (standing __init windows were granted before tracing
   started), trace the workload through a bus sink — so ring capacity
   never truncates the trace — and judge every foreign access against
   the mirrored ACLs. *)
let traced_replay sys workload =
  let mon = sys.Libos.Boot.mon in
  let bus = Monitor.bus mon in
  let name_of cid = try Monitor.cubicle_name mon cid with _ -> Printf.sprintf "C%d" cid in
  let r = Analysis.Replay.create ~name_of in
  Analysis.Replay.seed_from_monitor r mon;
  let acc = ref [] in
  Telemetry.Bus.set_sink bus (Some (fun e -> acc := e :: !acc));
  Telemetry.Bus.set_tracing bus true;
  workload ();
  Telemetry.Bus.set_tracing bus false;
  Telemetry.Bus.set_sink bus None;
  let entries = List.rev !acc in
  Analysis.Replay.run r entries;
  (* the same trace also feeds summary inference: per-edge access modes
     cross-checked against the hand-written Iface summaries *)
  let inf = Analysis.Infer.create () in
  Analysis.Infer.run inf entries;
  (Analysis.Replay.findings r, inf, List.length entries)

(* The inference gate's own regression: a deliberately weakened summary
   (all declared accesses dropped) must fail the cross-check, exactly
   like a stale golden file. *)
let weaken_summary (prog : Analysis.Ir.program) ~comp ~sym =
  {
    prog with
    Analysis.Ir.comps =
      List.map
        (fun (c : Analysis.Ir.comp) ->
          if c.Analysis.Ir.name <> comp then c
          else
            {
              c with
              Analysis.Ir.iface =
                List.map
                  (fun (fd : Iface.fundecl) ->
                    if fd.Iface.fd_sym = sym then
                      Iface.fundecl ~derefs:[] ~writes:[] sym fd.Iface.fd_body
                    else fd)
                  c.Analysis.Ir.iface;
            })
        prog.Analysis.Ir.comps;
  }

let default_baseline = "bench/analysis_baseline.json"

let analyze ?(out = "ANALYSIS.json") ?baseline ?write_baseline () =
  heading "CubiCheck: static isolation analysis + trace-driven dynamic detectors";
  (* fail closed: without an explicit --baseline, diff against the
     checked-in baseline when present so a regression still exits
     non-zero; only a missing file falls through to zero-tolerance *)
  let baseline =
    match baseline with
    | Some _ -> baseline
    | None -> if Sys.file_exists default_baseline then Some default_baseline else None
  in
  let shipped = ref [] in
  let record label fs =
    fprintf "\n[%s] %d finding(s)\n" label (List.length fs);
    if fs = [] then fprintf "  (clean)\n"
    else Analysis.Report.print_table Format.std_formatter fs;
    shipped := !shipped @ fs
  in
  (* static plane: the IR comes from each component's interface summary,
     checked against the trampoline table and window discipline *)
  let fs_sys =
    Libos.Boot.fs_stack ~mem_bytes:(192 * 1024 * 1024)
      ~extra:[ (Builder.component ~heap_pages:512 ~stack_pages:4 "APP", Types.Isolated) ]
      ()
  in
  record "static: fs_stack + APP (the Fig. 6 SQLite deployment)"
    (Analysis.Static.run_built fs_sys.Libos.Boot.built);
  let net_sys =
    Libos.Boot.net_stack ~mem_bytes:(256 * 1024 * 1024)
      ~extra:[ (Httpd.Server.component (), Types.Isolated) ]
      ()
  in
  record "static: net_stack + NGINX (the Fig. 7 deployment)"
    (Analysis.Static.run_built net_sys.Libos.Boot.built);
  (* dynamic plane: replay real traced workloads through the ACL mirror *)
  let fs_dyn, fs_inf, fs_events =
    traced_replay fs_sys (fun () ->
        let os =
          Minidb.Os_iface.cubicleos (Libos.Fileio.make (Libos.Boot.app_ctx fs_sys "APP"))
        in
        ignore (Minidb.Speedtest.run_all os ~path:"/analyze.db" ~n:4 ~measure:(fun f -> f ())))
  in
  record
    (Printf.sprintf "dynamic: speedtest1 (n=4) replayed through the window mirror, %d events"
       fs_events)
    fs_dyn;
  let net_dyn, net_inf, net_events =
    traced_replay net_sys (fun () ->
        let server = Httpd.Server.start net_sys in
        let siege = Httpd.Siege.make net_sys server in
        let fio = Libos.Fileio.make (Libos.Boot.app_ctx net_sys "NGINX") in
        Libos.Fileio.write_file fio "/index.html" (String.make 16384 'x');
        let r = Httpd.Siege.fetch siege "/index.html" in
        if r.Httpd.Siege.status <> 200 then begin
          fprintf "FATAL: analyze workload: GET /index.html returned %d\n" r.Httpd.Siege.status;
          exit 1
        end;
        ignore (Httpd.Siege.fetch_pipelined siege [ "/index.html"; "/missing.bin" ]))
  in
  record
    (Printf.sprintf "dynamic: httpd GET + pipelined requests replayed, %d events" net_events)
    net_dyn;
  (* inference plane: trace-derived summaries vs the hand-written ones —
     a summary claiming less than the trace observed is stale *)
  let fs_prog = Analysis.Ir.of_built fs_sys.Libos.Boot.built in
  let net_prog = Analysis.Ir.of_built net_sys.Libos.Boot.built in
  let describe label inf prog =
    let obs = Analysis.Infer.observations inf prog in
    fprintf "\n[%s] %d traced interface edge(s):\n" label (List.length obs);
    List.iter
      (fun (o : Analysis.Infer.observation) ->
        if o.Analysis.Infer.o_sym <> Analysis.Infer.toplevel_sym then
          fprintf "  %s.%s %s %s\n" o.Analysis.Infer.o_comp o.Analysis.Infer.o_sym
            (match (o.Analysis.Infer.o_read, o.Analysis.Infer.o_write) with
            | _, true -> "writes"
            | true, false -> "reads"
            | false, false -> "touches")
            o.Analysis.Infer.o_owner)
      obs
  in
  describe "infer: fs stack" fs_inf fs_prog;
  record "cross-check: trace-derived vs hand-written summaries (fs stack)"
    (Analysis.Infer.check fs_inf fs_prog);
  describe "infer: net stack" net_inf net_prog;
  record "cross-check: trace-derived vs hand-written summaries (net stack)"
    (Analysis.Infer.check net_inf net_prog);
  (* the gate's own regression: a deliberately stale summary must fail.
     The net trace observes ramfs_pread writing the app's read buffer;
     dropping that claim from the summary must trip the cross-check. *)
  let stale = weaken_summary net_prog ~comp:"RAMFS" ~sym:"ramfs_pread" in
  let stale_caught =
    List.exists
      (fun f -> f.Analysis.Report.key = "summary:write:RAMFS.ramfs_pread")
      (Analysis.Infer.check net_inf stale)
  in
  if not stale_caught then begin
    fprintf
      "\nFATAL: stale-summary self-test: weakening RAMFS.ramfs_pread went uncaught — \
       the inference cross-check is not gating\n";
    exit 1
  end;
  fprintf "\nstale-summary self-test OK: a weakened RAMFS.ramfs_pread summary fails the gate\n";
  (* the seeded violations: the analyzer's own regression harness — one
     deliberately broken example per detector, each of which must trip *)
  let scenarios = Analysis.Seeded.all () in
  fprintf "\nSeeded violations (each must be caught, with the expected severity):\n";
  fprintf "  %-22s %-16s %-9s %s\n" "scenario" "pass" "severity" "verdict";
  List.iter
    (fun (s : Analysis.Seeded.scenario) ->
      fprintf "  %-22s %-16s %-9s %s\n" s.Analysis.Seeded.sc_name s.Analysis.Seeded.expect_pass
        (Analysis.Report.severity_name s.Analysis.Seeded.expect_severity)
        (if Analysis.Seeded.caught s then "caught" else "MISSED"))
    scenarios;
  let missed =
    List.filter (fun s -> not (Analysis.Seeded.caught s)) scenarios
  in
  let shipped = Analysis.Report.sort (Analysis.Report.dedup !shipped) in
  let oc = open_out out in
  output_string oc
    (Analysis.Report.to_json
       ~extra:
         [
           ("seeded_total", string_of_int (List.length scenarios));
           ("seeded_caught", string_of_int (List.length scenarios - List.length missed));
         ]
       shipped);
  close_out oc;
  fprintf "\nwrote %s\n" out;
  (match write_baseline with
  | Some path ->
      write_flat_json path (Analysis.Report.baseline_counts shipped);
      fprintf "wrote baseline (%d key(s)) to %s\n"
        (List.length (Analysis.Report.baseline_counts shipped))
        path
  | None -> ());
  let fail = ref false in
  (match baseline with
  | Some path ->
      if not (Sys.file_exists path) then begin
        fprintf
          "BASELINE MISSING: %s\nGenerate it with:\n\
          \  dune exec bench/main.exe -- analyze --write-baseline %s\n"
          path path;
        exit 1
      end;
      let fresh, resolved = Analysis.Report.diff_baseline ~baseline:(read_flat_json path) shipped in
      if fresh <> [] then begin
        fprintf "\nFINDINGS ABOVE BASELINE (%s):\n" path;
        List.iter (fun (k, c) -> fprintf "  %s (x%d)\n" k c) fresh;
        fail := true
      end
      else fprintf "\nbaseline check OK: no findings above %s\n" path;
      if resolved <> [] then begin
        fprintf "baseline entries no longer observed (re-baseline with --write-baseline):\n";
        List.iter (fun (k, c) -> fprintf "  %s (x%d)\n" k c) resolved
      end
  | None ->
      if shipped <> [] then begin
        fprintf "\n%d finding(s) in the shipped stacks and no --baseline to excuse them\n"
          (List.length shipped);
        fail := true
      end);
  if missed <> [] then begin
    fprintf "\nFATAL: %d seeded violation(s) went uncaught\n" (List.length missed);
    fail := true
  end;
  if !fail then exit 1;
  fprintf
    "\nanalyze OK: shipped stacks hold the window discipline, trace-derived summaries \
     cross-check clean, all %d seeded violations caught\n"
    (List.length scenarios)

(* --- smp: multi-core throughput scaling -> BENCH_smp.json ------------------------- *)

(* Drive a fixed batch of siege connections through the sharded NGINX
   deployment on an N-core machine: one SO_REUSEPORT worker per core,
   one NETDEV ring per core, frames steered to ring [conn mod N] by the
   host bridge (RSS by connection id). All requests are injected up
   front; the SMP scheduler then runs one worker thread per core until
   every shard has served its share. The measurement is the per-core
   cycle delta across the serving phase: the makespan (the maximum
   per-core counter) is the N-core machine's elapsed time, and the
   scaling curve is makespan(1) / makespan(N). Everything is simulated
   cycles, so the curve is deterministic and golden-checked in CI. *)

let smp_conns = 64
let smp_file_size = 8192

type smp_row = {
  smp_ncores : int;
  smp_makespan : int;  (* max per-core cycle delta over the serving phase *)
  smp_total : int;  (* summed cycle delta (the single-timeline cost) *)
  smp_core_deltas : int array;
  smp_migrations : int;
  smp_steals : int;
  smp_shootdowns : int;
}

let smp_run ~ncores =
  let app = Httpd.Server.component ~workers:ncores () in
  let sys =
    Libos.Boot.net_stack ~ncores ~nrings:ncores ~mem_bytes:(256 * 1024 * 1024)
      ~extra:[ (app, Types.Isolated) ]
      ()
  in
  let mon = sys.Libos.Boot.mon in
  let cpu = Monitor.cpu mon in
  let cost = Monitor.cost mon in
  let netdev = Option.get sys.Libos.Boot.netdev in
  let path = Printf.sprintf "/f%d.bin" smp_file_size in
  Libos.Boot.populate sys ~as_app:"NGINX" [ (path, String.make smp_file_size 'x') ];
  let workers = Array.init ncores (fun shard -> Httpd.Server.start ~shard sys) in
  (* online race gate: the ACL mirror rides the telemetry bus for the
     whole serving phase, judging every foreign access as it happens.
     Bus sinks are tracing-gated and charge no simulated cycles, so the
     golden scaling curve is unaffected. *)
  let bus = Monitor.bus mon in
  let name_of cid = try Monitor.cubicle_name mon cid with _ -> Printf.sprintf "C%d" cid in
  let mirror = Analysis.Replay.create ~name_of in
  Analysis.Replay.seed_from_monitor mirror mon;
  Telemetry.Bus.clear_ring bus;
  Telemetry.Bus.set_sink bus (Some (Analysis.Replay.online_sink mirror));
  Telemetry.Bus.set_tracing bus true;
  let per_shard = Array.make ncores 0 in
  for conn = 1 to smp_conns do
    let ring = conn mod ncores in
    per_shard.(ring) <- per_shard.(ring) + 1;
    Libos.Netdev.host_inject ~ring netdev
      (Libos.Lwip.Frame.encode ~conn ~kind:Libos.Lwip.Frame.Syn ~payload:"" ());
    Libos.Netdev.host_inject ~ring netdev
      (Libos.Lwip.Frame.encode ~conn ~kind:Libos.Lwip.Frame.Data
         ~payload:(Printf.sprintf "GET %s HTTP/1.0\r\nHost: sim\r\n\r\n" path)
         ())
  done;
  (* serving phase: one worker thread per core, pinned to its shard's
     core (work stealing may still migrate a straggler) *)
  let bases = Array.init ncores (fun c -> Hw.Cost.core_cycles cost c) in
  let c0 = Hw.Cost.cycles cost in
  let nginx = (Libos.Boot.app_ctx sys "NGINX").Monitor.self in
  let sched = Libos.Sched.create mon in
  Array.iteri
    (fun shard w ->
      ignore
        (Libos.Sched.spawn ~core:shard sched nginx (fun () ->
             let stalled = ref 0 in
             while Httpd.Server.requests_served w < per_shard.(shard) do
               if Httpd.Server.poll w = 0 then begin
                 incr stalled;
                 if !stalled > 100 then
                   Types.error "smp: worker %d stalled (%d/%d served)" shard
                     (Httpd.Server.requests_served w)
                     per_shard.(shard)
               end
               else stalled := 0;
               Libos.Sched.yield ()
             done)))
    workers;
  Libos.Sched.run sched;
  let deltas = Array.init ncores (fun c -> Hw.Cost.core_cycles cost c - bases.(c)) in
  let total_delta = Hw.Cost.cycles cost - c0 in
  if Array.fold_left ( + ) 0 deltas <> total_delta then begin
    fprintf "FATAL: smp %d cores: per-core deltas sum to %d, total delta %d\n" ncores
      (Array.fold_left ( + ) 0 deltas)
      total_delta;
    exit 1
  end;
  (* the telemetry invariant, extended per core: each core plane of the
     attribution table must equal the machine's per-core counter *)
  let attrib = cost.Hw.Cost.attrib in
  for c = 0 to Hw.Cost.ncores cost - 1 do
    if Telemetry.Attrib.core_total attrib ~core:c <> Hw.Cost.core_cycles cost c then begin
      fprintf "FATAL: smp %d cores: attrib core %d total %d <> core cycles %d\n" ncores c
        (Telemetry.Attrib.core_total attrib ~core:c)
        (Hw.Cost.core_cycles cost c);
      exit 1
    end
  done;
  Telemetry.Bus.set_tracing bus false;
  Telemetry.Bus.set_sink bus None;
  (match Analysis.Replay.findings mirror with
  | [] -> ()
  | violations ->
      fprintf "FATAL: smp %d cores: online race sink flagged %d violation(s):\n" ncores
        (List.length violations);
      Analysis.Report.print_table Format.std_formatter violations;
      exit 1);
  let served = Array.fold_left (fun acc w -> acc + Httpd.Server.requests_served w) 0 workers in
  if served <> smp_conns then begin
    fprintf "FATAL: smp %d cores: served %d of %d requests\n" ncores served smp_conns;
    exit 1
  end;
  (* every connection must have received a complete 200 response *)
  let by_conn = Hashtbl.create smp_conns in
  List.iter
    (fun f ->
      let c, kind, seq, payload = Libos.Lwip.Frame.decode f in
      if kind = Libos.Lwip.Frame.Data then begin
        let r =
          match Hashtbl.find_opt by_conn c with
          | Some r -> r
          | None ->
              let r = Libos.Lwip.Reassembly.create () in
              Hashtbl.replace by_conn c r;
              r
        in
        Libos.Lwip.Reassembly.push r ~seq payload
      end)
    (Libos.Netdev.host_collect netdev);
  for conn = 1 to smp_conns do
    let resp =
      match Hashtbl.find_opt by_conn conn with
      | Some r -> Libos.Lwip.Reassembly.pop_ready r
      | None -> ""
    in
    if
      String.length resp <= smp_file_size
      || not (String.length resp > 12 && String.sub resp 9 3 = "200")
    then begin
      fprintf "FATAL: smp %d cores: conn %d got a bad response (%d bytes)\n" ncores conn
        (String.length resp);
      exit 1
    end
  done;
  {
    smp_ncores = ncores;
    smp_makespan = Array.fold_left max 0 deltas;
    smp_total = total_delta;
    smp_core_deltas = deltas;
    smp_migrations = Libos.Sched.migrations sched;
    smp_steals = Libos.Sched.steals sched;
    smp_shootdowns = Hw.Cpu.shootdown_count cpu;
  }

let smp_json_rows rows =
  List.concat_map
    (fun r ->
      let key f = Printf.sprintf "smp%d.%s" r.smp_ncores f in
      let base = (List.hd rows).smp_makespan in
      [
        (key "makespan_cycles", r.smp_makespan);
        (key "total_cycles", r.smp_total);
        (key "speedup_x100", 100 * base / r.smp_makespan);
        (key "migrations", r.smp_migrations);
        (key "steals", r.smp_steals);
        (key "shootdowns", r.smp_shootdowns);
      ]
      @ Array.to_list
          (Array.mapi (fun c d -> (key (Printf.sprintf "core%d_cycles" c), d)) r.smp_core_deltas))
    rows

let smp_check_golden path rows =
  if not (Sys.file_exists path) then begin
    Printf.printf
      "GOLDEN FILE MISSING: %s\nGenerate it with:\n\
      \  dune exec bench/main.exe -- smp --write-golden %s\n"
      path path;
    exit 1
  end;
  let golden = read_flat_json path in
  let drift = ref [] in
  List.iter
    (fun (key, v) ->
      match List.assoc_opt key golden with
      | Some g when g = v -> ()
      | Some g -> drift := Printf.sprintf "%s: golden %d, measured %d" key g v :: !drift
      | None -> drift := Printf.sprintf "%s: missing from golden file" key :: !drift)
    rows;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key rows) then
        drift := Printf.sprintf "%s: in golden file but not measured" key :: !drift)
    golden;
  if !drift <> [] then begin
    fprintf "\nGOLDEN SMP DRIFT vs %s:\n" path;
    List.iter (fprintf "  %s\n") (List.rev !drift);
    fprintf
      "If the drift is an intentional cost-model, scheduler or stack change,\n\
       recalibrate with:\n\
      \  dune exec bench/main.exe -- smp --write-golden %s\n"
      path;
    exit 1
  end;
  fprintf "\ngolden check OK: scaling curve matches %s\n" path

let smp ?(out = "BENCH_smp.json") ?golden ?write_golden () =
  heading
    (Printf.sprintf "SMP scale-out: %d siege connections over 1/2/4/8 simulated cores"
       smp_conns);
  let rows = List.map (fun n -> smp_run ~ncores:n) [ 1; 2; 4; 8 ] in
  let base = (List.hd rows).smp_makespan in
  fprintf "%6s %16s %16s %8s %11s %7s %7s %11s\n" "cores" "makespan(cyc)" "total(cyc)"
    "speedup" "efficiency" "migr" "steals" "shootdowns";
  List.iter
    (fun r ->
      let speedup = float_of_int base /. float_of_int r.smp_makespan in
      fprintf "%6d %16d %16d %7.2fx %10.1f%% %7d %7d %11d\n" r.smp_ncores r.smp_makespan
        r.smp_total speedup
        (100. *. speedup /. float_of_int r.smp_ncores)
        r.smp_migrations r.smp_steals r.smp_shootdowns)
    rows;
  (* the acceptance floors: >=1.7x at 2 cores, >=3x at 4 cores *)
  List.iter
    (fun (n, floor_x100) ->
      match List.find_opt (fun r -> r.smp_ncores = n) rows with
      | None -> ()
      | Some r ->
          let x100 = 100 * base / r.smp_makespan in
          if x100 < floor_x100 then begin
            fprintf "FATAL: %d-core speedup %d.%02dx below the %d.%02dx floor\n" n
              (x100 / 100) (x100 mod 100) (floor_x100 / 100) (floor_x100 mod 100);
            exit 1
          end)
    [ (2, 170); (4, 300) ];
  fprintf "scaling floors OK: >=1.70x at 2 cores, >=3.00x at 4 cores\n";
  fprintf "race sink OK: online window mirror saw zero violations on every soak\n";
  let json = smp_json_rows rows in
  write_flat_json out json;
  fprintf "wrote %s\n" out;
  (match write_golden with
  | Some path ->
      write_flat_json path json;
      fprintf "wrote golden scaling curve to %s\n" path
  | None -> ());
  match golden with Some path -> smp_check_golden path json | None -> ()

(* --- sendfile: zero-copy vs copy serving -> BENCH_zerocopy.json -------------------- *)

(* The tentpole measurement: serve the same file over the same request
   sequence with the pread+send copy path and with the vfs_sendfile
   grant-and-forward path, and decompose both into attribution
   categories per request. The zero-copy path must cut the memcpy
   share by at least 5x (only response headers and 11-byte frame
   headers still move through the simulated memory); everything is
   deterministic, so the whole decomposition is golden-checked. *)

let zc_requests = 32
let zc_file_size = 64 * 1024

type zc_row = {
  zc_mode : string;
  zc_total : int;  (* cycles over the serving phase *)
  zc_cats : (Telemetry.Attrib.category * int) list;
  zc_faults : int;
  zc_window_ops : int;
}

let zc_run ~zerocopy =
  let app = Httpd.Server.component () in
  let sys =
    Libos.Boot.net_stack ~mem_bytes:(256 * 1024 * 1024) ~extra:[ (app, Types.Isolated) ] ()
  in
  let mon = sys.Libos.Boot.mon in
  let path = Printf.sprintf "/f%d.bin" zc_file_size in
  let body = String.init zc_file_size (fun i -> Char.chr (32 + (i * 131 mod 95))) in
  Libos.Boot.populate sys ~as_app:"NGINX" [ (path, body) ];
  let server = Httpd.Server.start ~zerocopy sys in
  let siege = Httpd.Siege.make sys server in
  let cost = Monitor.cost mon in
  let attrib = cost.Hw.Cost.attrib in
  let stats = Monitor.stats mon in
  let cat c = Telemetry.Attrib.category_total attrib c in
  let mode = if zerocopy then "zerocopy" else "copy" in
  let cycles0 = Hw.Cost.cycles cost in
  let cats0 = List.map (fun c -> (c, cat c)) Telemetry.Attrib.categories in
  let faults0 = Stats.faults stats in
  let wops0 = Stats.window_ops stats in
  for req = 1 to zc_requests do
    let r = Httpd.Siege.fetch siege path in
    if r.Httpd.Siege.status <> 200 || r.Httpd.Siege.body <> body then begin
      fprintf "FATAL: sendfile (%s): request %d got status %d, %d body bytes (want 200, %d)\n"
        mode req r.Httpd.Siege.status
        (String.length r.Httpd.Siege.body)
        zc_file_size;
      exit 1
    end
  done;
  (* the sum-to-total invariant must hold on the full timeline *)
  if Telemetry.Attrib.total attrib <> Hw.Cost.cycles cost then begin
    fprintf "FATAL: sendfile (%s): attribution total %d <> Cost.cycles %d\n" mode
      (Telemetry.Attrib.total attrib) (Hw.Cost.cycles cost);
    exit 1
  end;
  let row =
    {
      zc_mode = mode;
      zc_total = Hw.Cost.cycles cost - cycles0;
      zc_cats =
        List.map
          (fun c -> (c, cat c - List.assoc c cats0))
          Telemetry.Attrib.categories;
      zc_faults = Stats.faults stats - faults0;
      zc_window_ops = Stats.window_ops stats - wops0;
    }
  in
  (* and the serving-phase deltas must decompose exactly too *)
  if List.fold_left (fun acc (_, v) -> acc + v) 0 row.zc_cats <> row.zc_total then begin
    fprintf "FATAL: sendfile (%s): category deltas do not sum to the cycle delta\n" mode;
    exit 1
  end;
  row

let zc_json_rows rows =
  List.concat_map
    (fun r ->
      let key f = Printf.sprintf "%s.%s" r.zc_mode f in
      [
        (key "total_cycles", r.zc_total);
        (key "cycles_per_req", r.zc_total / zc_requests);
        (key "faults", r.zc_faults);
        (key "window_ops", r.zc_window_ops);
      ]
      @ List.map
          (fun (c, v) ->
            (key (Telemetry.Attrib.cat_name c ^ "_cycles_per_req"), v / zc_requests))
          r.zc_cats)
    rows

let zc_check_golden path rows =
  if not (Sys.file_exists path) then begin
    Printf.printf
      "GOLDEN FILE MISSING: %s\nGenerate it with:\n\
      \  dune exec bench/main.exe -- sendfile --write-golden %s\n"
      path path;
    exit 1
  end;
  let golden = read_flat_json path in
  let drift = ref [] in
  List.iter
    (fun (key, v) ->
      match List.assoc_opt key golden with
      | Some g when g = v -> ()
      | Some g -> drift := Printf.sprintf "%s: golden %d, measured %d" key g v :: !drift
      | None -> drift := Printf.sprintf "%s: missing from golden file" key :: !drift)
    rows;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key rows) then
        drift := Printf.sprintf "%s: in golden file but not measured" key :: !drift)
    golden;
  if !drift <> [] then begin
    fprintf "\nGOLDEN ZEROCOPY DRIFT vs %s:\n" path;
    List.iter (fprintf "  %s\n") (List.rev !drift);
    fprintf
      "If the drift is an intentional cost-model or stack change, recalibrate with:\n\
      \  dune exec bench/main.exe -- sendfile --write-golden %s\n"
      path;
    exit 1
  end;
  fprintf "\ngolden check OK: zero-copy decomposition matches %s\n" path

let sendfile ?(out = "BENCH_zerocopy.json") ?golden ?write_golden () =
  heading
    (Printf.sprintf "Zero-copy sendfile: %d requests for a %d KiB file, copy vs grant-and-forward"
       zc_requests (zc_file_size / 1024));
  let rows = [ zc_run ~zerocopy:false; zc_run ~zerocopy:true ] in
  fprintf "%-20s" "per request";
  List.iter (fun r -> fprintf "%14s" r.zc_mode) rows;
  fprintf "%10s\n" "ratio";
  let per_req v = v / zc_requests in
  List.iter
    (fun c ->
      fprintf "%-20s" (Telemetry.Attrib.cat_name c ^ " cycles");
      List.iter (fun r -> fprintf "%14d" (per_req (List.assoc c r.zc_cats))) rows;
      match rows with
      | [ copy; zc ] ->
          let cv = List.assoc c copy.zc_cats and zv = List.assoc c zc.zc_cats in
          if zv > 0 then fprintf "%9.2fx\n" (float_of_int cv /. float_of_int zv)
          else fprintf "%10s\n" "-"
      | _ -> fprintf "\n")
    Telemetry.Attrib.categories;
  fprintf "%-20s" "total cycles";
  List.iter (fun r -> fprintf "%14d" (per_req r.zc_total)) rows;
  fprintf "\n%-20s" "faults";
  List.iter (fun r -> fprintf "%14d" r.zc_faults) rows;
  fprintf "\n%-20s" "window ops";
  List.iter (fun r -> fprintf "%14d" r.zc_window_ops) rows;
  fprintf "\n";
  (match rows with
  | [ copy; zc ] ->
      let cm = List.assoc Telemetry.Attrib.Memcpy copy.zc_cats in
      let zm = List.assoc Telemetry.Attrib.Memcpy zc.zc_cats in
      if zm <= 0 || cm < 5 * zm then begin
        fprintf "FATAL: memcpy cycles/request %d (copy) vs %d (zero-copy): below the 5x floor\n"
          (cm / zc_requests) (zm / zc_requests);
        exit 1
      end;
      fprintf "memcpy floor OK: %.1fx fewer data-copy cycles on the zero-copy path\n"
        (float_of_int cm /. float_of_int zm)
  | _ -> ());
  let json = zc_json_rows rows in
  write_flat_json out json;
  fprintf "wrote %s\n" out;
  (match write_golden with
  | Some path ->
      write_flat_json path json;
      fprintf "wrote golden zero-copy decomposition to %s\n" path
  | None -> ());
  match golden with Some path -> zc_check_golden path json | None -> ()

(* --- keys: key virtualisation under multi-tenant pressure -> BENCH_keys.json ------ *)

(* The key-pressure curve: one FS+WEB cubicle pair per tenant behind a
   shared gateway, scaled 8 -> 256 tenants over the same 14 physical
   MPK tags. Round-robin traffic touches every tenant in turn, so each
   request faults the tenant's keys back in and evicts someone else's
   — the key multiplexer's LRU at full churn. Before serving, every
   fourth tenant is torn down and respawned so recycled cids and
   virtual keys carry live traffic. Responses are checked byte-for-byte
   against a host-side oracle and against a no-protection run of the
   same workload (no keys, hence no evictions), the online race mirror
   rides the whole serving phase, and the Keymux attribution category
   must decompose exactly into fault-ins, page retags and shootdowns
   priced at the model's rates. *)

let keys_steps = [ 8; 32; 64; 128; 256 ]
let keys_rounds = 2

type keys_row = {
  k_tenants : int;
  k_cubicles : int;
  k_requests : int;
  k_total : int;  (* cycles over the serving phase *)
  k_fault_ins : int;
  k_evictions : int;
  k_retag_pages : int;
  k_shootdowns : int;
}

let keys_req ~tenant ~round =
  let off = ((tenant * 7) + (round * 13)) mod 256 in
  let len = 64 + (((tenant * 31) + round) mod 192) in
  (off, len)

let keys_serve sys ~tenants ~check =
  let responses = ref [] in
  for round = 0 to keys_rounds - 1 do
    for i = 1 to tenants do
      let off, len = keys_req ~tenant:i ~round in
      let r = Httpd.Tenant.request sys ~tenant:i ~off ~len in
      if check && r <> Httpd.Tenant.expected ~tenant:i ~off ~len then begin
        fprintf "FATAL: keys: tenant %d round %d: response differs from the oracle\n" i round;
        exit 1
      end;
      responses := r :: !responses
    done
  done;
  List.rev !responses

let keys_boot ?protection ?virtualise tenants =
  let sys = Httpd.Tenant.boot ?protection ?virtualise () in
  for i = 1 to tenants do
    Httpd.Tenant.spawn sys i
  done;
  (* lifecycle churn: every fourth tenant dies and comes back, so its
     respawn serves through a recycled cid and virtual key *)
  let i = ref 1 in
  while !i <= tenants do
    Httpd.Tenant.teardown sys !i;
    Httpd.Tenant.spawn sys !i;
    i := !i + 4
  done;
  sys

let keys_run ~tenants =
  let sys = keys_boot ~virtualise:true tenants in
  let mon = Httpd.Tenant.mon sys in
  let cost = Monitor.cost mon in
  let km =
    match Monitor.keymux mon with
    | Some km -> km
    | None ->
        fprintf "FATAL: keys: monitor booted without a key multiplexer\n";
        exit 1
  in
  let cubicles = List.length (Monitor.live_cids mon) in
  (* online race gate over the serving phase, as in the smp bench *)
  let bus = Monitor.bus mon in
  let name_of cid = try Monitor.cubicle_name mon cid with _ -> Printf.sprintf "C%d" cid in
  let mirror = Analysis.Replay.create ~name_of in
  Analysis.Replay.seed_from_monitor mirror mon;
  Telemetry.Bus.clear_ring bus;
  Telemetry.Bus.set_sink bus (Some (Analysis.Replay.online_sink mirror));
  Telemetry.Bus.set_tracing bus true;
  let st = Hw.Keymux.stats km in
  let c0 = Hw.Cost.cycles cost in
  let f0 = st.Hw.Keymux.fault_ins
  and e0 = st.Hw.Keymux.evictions
  and r0 = st.Hw.Keymux.retag_pages
  and s0 = st.Hw.Keymux.key_shootdowns in
  let responses = keys_serve sys ~tenants ~check:true in
  Telemetry.Bus.set_tracing bus false;
  Telemetry.Bus.set_sink bus None;
  (match Analysis.Replay.findings mirror with
  | [] -> ()
  | violations ->
      fprintf "FATAL: keys %d tenants: online race sink flagged %d violation(s):\n" tenants
        (List.length violations);
      Analysis.Report.print_table Format.std_formatter violations;
      exit 1);
  (* whole-run pricing invariant: every cycle in the Keymux category is
     a fault-in, a page retag or a PKRU shootdown at the model's exact
     rates — nothing else may bill the virtualisation layer *)
  let model = cost.Hw.Cost.model in
  let priced =
    (st.Hw.Keymux.fault_ins * model.Hw.Cost.key_reassign)
    + (st.Hw.Keymux.retag_pages * model.Hw.Cost.pkey_set)
    + (st.Hw.Keymux.key_shootdowns * model.Hw.Cost.wrpkru)
  in
  let km_total = Telemetry.Attrib.category_total cost.Hw.Cost.attrib Telemetry.Attrib.Keymux in
  if km_total <> priced then begin
    fprintf
      "FATAL: keys %d tenants: Keymux category %d cycles, but %d fault-ins + %d retags + %d \
       shootdowns price to %d\n"
      tenants km_total st.Hw.Keymux.fault_ins st.Hw.Keymux.retag_pages
      st.Hw.Keymux.key_shootdowns priced;
    exit 1
  end;
  (* no-eviction baseline: the same spawn/churn/request schedule with
     protection off must produce byte-identical responses. Virtual keys
     are still allocated (they are unlimited) but with MPK off they are
     never resolved, so no key is ever faulted in or evicted. *)
  let base =
    keys_serve (keys_boot ~protection:Types.None_ ~virtualise:true tenants) ~tenants ~check:false
  in
  if base <> responses then begin
    fprintf "FATAL: keys %d tenants: responses differ from the no-protection baseline\n" tenants;
    exit 1
  end;
  {
    k_tenants = tenants;
    k_cubicles = cubicles;
    k_requests = List.length responses;
    k_total = Hw.Cost.cycles cost - c0;
    k_fault_ins = st.Hw.Keymux.fault_ins - f0;
    k_evictions = st.Hw.Keymux.evictions - e0;
    k_retag_pages = st.Hw.Keymux.retag_pages - r0;
    k_shootdowns = st.Hw.Keymux.key_shootdowns - s0;
  }

let keys_json_rows rows =
  List.concat_map
    (fun r ->
      let key f = Printf.sprintf "keys%d.%s" r.k_tenants f in
      [
        (key "cubicles", r.k_cubicles);
        (key "requests", r.k_requests);
        (key "total_cycles", r.k_total);
        (key "cycles_per_req", r.k_total / r.k_requests);
        (key "fault_ins", r.k_fault_ins);
        (key "evictions", r.k_evictions);
        (key "retag_pages", r.k_retag_pages);
        (key "shootdowns", r.k_shootdowns);
      ])
    rows

let keys_check_golden path rows =
  if not (Sys.file_exists path) then begin
    Printf.printf
      "GOLDEN FILE MISSING: %s\nGenerate it with:\n\
      \  dune exec bench/main.exe -- keys --write-golden %s\n"
      path path;
    exit 1
  end;
  let golden = read_flat_json path in
  let drift = ref [] in
  List.iter
    (fun (key, v) ->
      match List.assoc_opt key golden with
      | Some g when g = v -> ()
      | Some g -> drift := Printf.sprintf "%s: golden %d, measured %d" key g v :: !drift
      | None -> drift := Printf.sprintf "%s: missing from golden file" key :: !drift)
    rows;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key rows) then
        drift := Printf.sprintf "%s: in golden file but not measured" key :: !drift)
    golden;
  if !drift <> [] then begin
    fprintf "\nGOLDEN KEYS DRIFT vs %s:\n" path;
    List.iter (fprintf "  %s\n") (List.rev !drift);
    fprintf
      "If the drift is an intentional cost-model, keymux or lifecycle change,\n\
       recalibrate with:\n\
      \  dune exec bench/main.exe -- keys --write-golden %s\n"
      path;
    exit 1
  end;
  fprintf "\ngolden check OK: key-pressure curve matches %s\n" path

let keys ?(out = "BENCH_keys.json") ?golden ?write_golden () =
  heading
    (Printf.sprintf
       "Key-pressure: %d..%d tenants (2 cubicles each + gateway) over 14 physical MPK tags"
       (List.hd keys_steps)
       (List.nth keys_steps (List.length keys_steps - 1)));
  let rows = List.map (fun n -> keys_run ~tenants:n) keys_steps in
  fprintf "%8s %9s %9s %14s %10s %10s %10s %11s\n" "tenants" "cubicles" "requests" "cyc/req"
    "fault-ins" "evictions" "retags" "shootdowns";
  List.iter
    (fun r ->
      fprintf "%8d %9d %9d %14d %10d %10d %10d %11d\n" r.k_tenants r.k_cubicles r.k_requests
        (r.k_total / r.k_requests) r.k_fault_ins r.k_evictions r.k_retag_pages r.k_shootdowns)
    rows;
  let top = List.nth rows (List.length rows - 1) in
  if top.k_cubicles < 256 then begin
    fprintf "FATAL: keys: top step ran %d concurrent cubicles, need >= 256\n" top.k_cubicles;
    exit 1
  end;
  if top.k_evictions <= (List.hd rows).k_evictions then begin
    fprintf "FATAL: keys: eviction count did not grow with tenant count (%d -> %d)\n"
      (List.hd rows).k_evictions top.k_evictions;
    exit 1
  end;
  fprintf "scale floor OK: %d concurrent cubicles multiplexed over 14 physical tags\n"
    top.k_cubicles;
  fprintf "byte-identity OK: every response matches the oracle and the no-protection baseline\n";
  fprintf "race sink OK: online window mirror saw zero violations at every step\n";
  let json = keys_json_rows rows in
  write_flat_json out json;
  fprintf "wrote %s\n" out;
  (match write_golden with
  | Some path ->
      write_flat_json path json;
      fprintf "wrote golden key-pressure curve to %s\n" path
  | None -> ());
  match golden with Some path -> keys_check_golden path json | None -> ()

(* --- driver ---------------------------------------------------------------------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* flags with a value: --out FILE, --golden FILE, --write-golden FILE,
     --folded FILE, --sample N, --n N, --repeats N, --lat-out FILE,
     --baseline FILE, --write-baseline FILE; boolean flags: --attrib,
     --latency, --stream, --hdr — matched before the generic rule so
     they never swallow the following token *)
  let rec split_flags targets flags = function
    | [] -> (List.rev targets, List.rev flags)
    | (("--attrib" | "--latency" | "--stream" | "--hdr") as flag) :: rest ->
        split_flags targets ((flag, "true") :: flags) rest
    | flag :: value :: rest when String.length flag > 2 && String.sub flag 0 2 = "--" ->
        split_flags targets ((flag, value) :: flags) rest
    | t :: rest -> split_flags (t :: targets) flags rest
  in
  let targets, flags = split_flags [] [] args in
  let all = targets = [] || targets = [ "all" ] in
  let want name = all || List.mem name targets in
  let bool_flag name = List.mem_assoc name flags in
  let int_flag name = Option.map int_of_string (List.assoc_opt name flags) in
  let t0 = Unix.gettimeofday () in
  if want "table2" then table2 ();
  if want "fig5" then fig5 ();
  if want "fig6" then
    fig6 ?n:(int_flag "--n") ~attrib:(bool_flag "--attrib") ~latency:(bool_flag "--latency")
      ~hdr:(bool_flag "--hdr")
      ?lat_out:(List.assoc_opt "--lat-out" flags)
      ?golden:(if List.mem "fig6" targets then List.assoc_opt "--golden" flags else None)
      ?write_golden:
        (if List.mem "fig6" targets then List.assoc_opt "--write-golden" flags else None)
      ();
  if want "fig7" then
    fig7 ?repeats:(int_flag "--repeats") ~latency:(bool_flag "--latency")
      ?lat_out:(List.assoc_opt "--lat-out" flags)
      ();
  if want "fig8" then fig8 ();
  if want "fig10a" then fig10a ?n:(int_flag "--n") ~latency:(bool_flag "--latency") ();
  if want "fig10b" then fig10b ?n:(int_flag "--n") ~latency:(bool_flag "--latency") ();
  if want "ablation" then ablation ();
  if want "micro" then micro ();
  if want "hw" then
    hw
      ?out:(List.assoc_opt "--out" flags)
      ?golden:(if List.mem "hw" targets then List.assoc_opt "--golden" flags else None)
      ?write_golden:
        (if List.mem "hw" targets then List.assoc_opt "--write-golden" flags else None)
      ();
  if want "smp" then
    smp
      ?out:(if List.mem "smp" targets then List.assoc_opt "--out" flags else None)
      ?golden:(if List.mem "smp" targets then List.assoc_opt "--golden" flags else None)
      ?write_golden:
        (if List.mem "smp" targets then List.assoc_opt "--write-golden" flags else None)
      ();
  if want "sendfile" then
    sendfile
      ?out:(if List.mem "sendfile" targets then List.assoc_opt "--out" flags else None)
      ?golden:(if List.mem "sendfile" targets then List.assoc_opt "--golden" flags else None)
      ?write_golden:
        (if List.mem "sendfile" targets then List.assoc_opt "--write-golden" flags else None)
      ();
  if want "keys" then
    keys
      ?out:(if List.mem "keys" targets then List.assoc_opt "--out" flags else None)
      ?golden:(if List.mem "keys" targets then List.assoc_opt "--golden" flags else None)
      ?write_golden:
        (if List.mem "keys" targets then List.assoc_opt "--write-golden" flags else None)
      ();
  if want "analyze" then
    analyze
      ?out:(if List.mem "analyze" targets then List.assoc_opt "--out" flags else None)
      ?baseline:(List.assoc_opt "--baseline" flags)
      ?write_baseline:(List.assoc_opt "--write-baseline" flags)
      ();
  if List.mem "trace" targets then
    trace
      ?out:(List.assoc_opt "--out" flags)
      ?folded:(List.assoc_opt "--folded" flags)
      ?sample:(int_flag "--sample")
      ~stream:(bool_flag "--stream")
      ();
  fprintf "\n[bench completed in %.1f s wall clock]\n" (Unix.gettimeofday () -. t0)
