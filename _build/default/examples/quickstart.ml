(* Quickstart: the paper's Figure 1c in running code.

   Two isolated components, FOO and BAR. FOO owns a ten-byte array and
   wants BAR's [bar(array, a)] to write into it. Without a window the
   access faults; with a window it proceeds zero-copy; after the window
   closes and FOO reclaims the page, BAR is locked out again.

   Run with: dune exec examples/quickstart.exe *)

open Cubicle

let () =
  print_endline "== CubicleOS quickstart: windows between FOO and BAR ==";

  (* 1. Boot a monitor with full protection and create two cubicles. *)
  let mon = Monitor.create ~protection:Types.Full () in
  let foo = Monitor.create_cubicle mon ~name:"FOO" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  let bar = Monitor.create_cubicle mon ~name:"BAR" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in

  (* 2. BAR exports bar(ptr, a): ptr[a] <- 0xAA, through a trampoline. *)
  Monitor.register_exports mon bar
    [
      {
        Monitor.sym = "bar";
        fn = (fun ctx args -> Api.write_u8 ctx (args.(0) + args.(1)) 0xAA; 0);
        stack_bytes = 0;
      };
    ];

  (* 3. FOO allocates its array (page-aligned, so nothing else shares
        the window's page). *)
  let ctx = Monitor.ctx_for mon foo in
  let array = Api.malloc_page_aligned ctx 10 in
  Api.write_string ctx array "0123456789";

  (* 4. Without a window, the cross-cubicle write faults. *)
  (try
     ignore (Monitor.call mon ~caller:foo "bar" [| array; 5 |]);
     print_endline "!! unexpected: access was allowed"
   with Hw.Fault.Violation (f, _) ->
     Format.printf "without a window: %a -> protection fault (as expected)@." Hw.Fault.pp f);

  (* 5. Open a window for BAR (Figure 1c), call again: zero-copy write. *)
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:array ~size:10;
  Api.window_open ctx wid bar;
  ignore (Monitor.call mon ~caller:foo "bar" [| array; 5 |]);
  Api.window_close ctx wid bar;
  Monitor.run_as mon foo (fun () ->
      Printf.printf "with a window:    array[5] = 0x%02X (written by BAR, zero-copy)\n"
        (Api.read_u8 ctx (array + 5)));

  (* 6. Causal consistency: after FOO touches the page back, the closed
        window really is closed. *)
  (try ignore (Monitor.call mon ~caller:foo "bar" [| array; 6 |]) with
  | Hw.Fault.Violation _ -> print_endline "after close:      BAR is locked out again");

  let stats = Monitor.stats mon in
  Printf.printf
    "stats: %d cross-cubicle calls, %d trap-and-map faults, %d page retags\n"
    (Stats.total_calls stats) (Stats.faults stats) (Stats.retags stats)
