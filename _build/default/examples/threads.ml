(* Cooperative threads example: three tenants multiplexed onto the one
   hardware thread (Unikraft's threading model, paper §8), each a
   separate cubicle with its own PKRU view, sharing the isolated file
   system stack and handing a buffer across a window.

   Run with: dune exec examples/threads.exe *)

open Cubicle

let () =
  print_endline "== Cooperative threads over CubicleOS (per-thread PKRU) ==";
  let tenants = [ "TENANT_A"; "TENANT_B"; "TENANT_C" ] in
  let extra =
    List.map
      (fun name -> (Builder.component ~heap_pages:64 ~stack_pages:2 name, Types.Isolated))
      tenants
  in
  let sys = Libos.Boot.fs_stack ~protection:Types.Full ~extra () in
  let mon = sys.Libos.Boot.mon in
  let sched = Libos.Sched.create mon in

  (* a mailbox owned by TENANT_A, windowed to the others *)
  let ctx_a = Libos.Boot.app_ctx sys "TENANT_A" in
  let mailbox = Api.malloc_page_aligned ctx_a 4096 in

  List.iteri
    (fun i name ->
      let ctx = Libos.Boot.app_ctx sys name in
      let cid = Api.self ctx in
      ignore
        (Libos.Sched.spawn sched cid (fun () ->
             (* each tenant keeps a private file *)
             let fio = Libos.Fileio.make ctx in
             let path = Printf.sprintf "/%s.log" (String.lowercase_ascii name) in
             Libos.Fileio.write_file fio path (Printf.sprintf "%s was here" name);
             Printf.printf "[%s] wrote %s\n" name path;
             Libos.Sched.yield ();
             (* tenant A publishes the mailbox; the others append *)
             if i = 0 then begin
               let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
               Api.window_add ctx wid ~ptr:mailbox ~size:4096;
               List.iter
                 (fun other ->
                   if other <> name then
                     Api.window_open ctx wid (Monitor.lookup_cubicle mon other))
                 tenants;
               Api.write_string ctx mailbox "A:";
               Printf.printf "[%s] opened the mailbox window\n" name
             end
             else begin
               (* B and C may run before A's window opens on their first
                  slice ordering; by this slice it is open *)
               let len =
                 let rec scan i = if Api.read_u8 ctx (mailbox + i) = 0 then i else scan (i + 1) in
                 scan 0
               in
               Api.write_string ctx (mailbox + len) (String.sub name 7 1 ^ ":");
               Printf.printf "[%s] appended to the mailbox\n" name
             end;
             Libos.Sched.yield ();
             (* everyone still sees only their own file *)
             Printf.printf "[%s] rereads own file: %S\n" name (Libos.Fileio.read_file fio path)))
        |> ignore)
    tenants;
  Libos.Sched.run sched;

  Monitor.run_as mon (Api.self ctx_a) (fun () ->
      Printf.printf "\nmailbox after all threads: %S\n"
        (let rec scan i = if Api.read_u8 ctx_a (mailbox + i) = 0 then i else scan (i + 1) in
         Api.read_string ctx_a mailbox (scan 0)));
  Printf.printf "context switches: %d, trap-and-map faults: %d\n"
    (Libos.Sched.context_switches sched)
    (Stats.faults (Monitor.stats mon))
