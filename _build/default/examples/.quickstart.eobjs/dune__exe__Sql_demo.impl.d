examples/sql_demo.ml: Api Builder Cubicle Format Libos List Minidb Monitor Printf String Types
