examples/threads.ml: Api Builder Cubicle Libos List Mm Monitor Printf Stats String Types
