examples/quickstart.ml: Api Array Cubicle Format Hw Mm Monitor Printf Stats Types
