examples/quickstart.mli:
