examples/database.ml: Api Builder Cubicle Hw Int64 Libos List Minidb Monitor Printf Types
