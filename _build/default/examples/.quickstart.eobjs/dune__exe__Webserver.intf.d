examples/webserver.mli:
