examples/webserver.ml: Cubicle Httpd Hw Libos List Monitor Printf Stats String Types
