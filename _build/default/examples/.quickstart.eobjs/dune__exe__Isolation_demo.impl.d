examples/isolation_demo.ml: Api Array Builder Bytes Cubicle Hw Libos List Loader Mm Monitor Printf Stats Trampoline Types
