examples/sql_demo.mli:
