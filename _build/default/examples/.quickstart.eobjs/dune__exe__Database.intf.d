examples/database.mli:
