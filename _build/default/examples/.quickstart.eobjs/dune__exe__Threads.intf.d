examples/threads.mli:
