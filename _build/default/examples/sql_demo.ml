(* SQL demo: the SQL front-end driving the database engine on the fully
   isolated CubicleOS stack, with a persistent FAT disk underneath —
   every layer of the repository in one program:

     SQL -> minidb (pager/btree) -> windows -> VFSCORE -> UKFAT -> BLKDEV

   Run with: dune exec examples/sql_demo.exe *)

open Cubicle

let print_result = function
  | Minidb.Sql.Done -> print_endline "ok"
  | Minidb.Sql.Affected n -> Printf.printf "%d row(s) affected\n" n
  | Minidb.Sql.Rows (headers, rows) ->
      Printf.printf "%s\n" (String.concat " | " headers);
      List.iter
        (fun row ->
          print_endline
            (String.concat " | " (List.map (Format.asprintf "%a" Minidb.Record.pp) row)))
        rows

let boot disk =
  let app = Builder.component ~heap_pages:256 ~stack_pages:4 "APP" in
  Libos.Boot.fat_stack ~protection:Types.Full ~extra:[ (app, Types.Isolated) ] ~disk ()

let () =
  print_endline "== SQL on CubicleOS (persistent FAT disk, full isolation) ==";
  let disk = Libos.Blkdev.create_disk ~sectors:16384 in

  (* First boot: create and populate. *)
  let sys = boot disk in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  Monitor.run_as sys.Libos.Boot.mon (Api.self ctx) (fun () ->
      let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make ctx) in
      let sql = Minidb.Sql.attach (Minidb.Db.open_db os ~path:"/inventory.db") in
      List.iter
        (fun q -> Printf.printf "sql> %s\n" q; print_result (Minidb.Sql.exec sql q))
        [
          "CREATE TABLE parts (name, qty, price)";
          "CREATE INDEX parts_qty ON parts (qty)";
          "INSERT INTO parts VALUES ('bolt', 500, 2), ('nut', 800, 1), ('gear', 12, 40), \
           ('spring', 90, 5)";
          "UPDATE parts SET qty = 11 WHERE name = 'gear'";
          "SELECT name, qty FROM parts WHERE qty < 100 ORDER BY qty";
        ];
      Minidb.Db.close (Minidb.Sql.db sql));

  (* Reboot the whole machine on the same disk: data is still there. *)
  print_endline "\n-- rebooting the simulated machine on the same disk --\n";
  let sys2 = boot disk in
  let ctx2 = Libos.Boot.app_ctx sys2 "APP" in
  Monitor.run_as sys2.Libos.Boot.mon (Api.self ctx2) (fun () ->
      let os2 = Minidb.Os_iface.cubicleos (Libos.Fileio.make ctx2) in
      let sql2 = Minidb.Sql.attach (Minidb.Db.open_db os2 ~path:"/inventory.db") in
      Printf.printf "sql> SELECT * FROM parts ORDER BY price DESC\n";
      print_result (Minidb.Sql.exec sql2 "SELECT * FROM parts ORDER BY price DESC"));
  Printf.printf "\n(%d trap-and-map faults served during the second boot's queries)\n"
    (Cubicle.Stats.faults (Monitor.stats sys2.Libos.Boot.mon))
