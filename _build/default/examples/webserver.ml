(* Web server example: the paper's NGINX deployment (Figure 5).

   Boots the full network stack — PLAT, TIME, ALLOC, VFSCORE, RAMFS,
   NETDEV, LWIP as isolated cubicles plus the shared LIBC — loads the
   NGINX component, populates a docroot, and drives it with the
   siege-like client. Prints per-request latencies and the cubicle
   call graph.

   Run with: dune exec examples/webserver.exe *)

open Cubicle

let () =
  print_endline "== CubicleOS web server (NGINX deployment, full protection) ==";
  let sys =
    Libos.Boot.net_stack ~protection:Types.Full
      ~extra:[ (Httpd.Server.component (), Types.Isolated) ]
      ()
  in
  let mon = sys.Libos.Boot.mon in
  Printf.printf "booted %d cubicles: " (Monitor.ncubicles mon);
  for cid = 0 to Monitor.ncubicles mon - 1 do
    Printf.printf "%s%s" (if cid > 0 then ", " else "") (Monitor.cubicle_name mon cid)
  done;
  print_newline ();

  Libos.Boot.populate sys ~as_app:"NGINX"
    [
      ("/index.html", "<html><body>Hello from CubicleOS!</body></html>");
      ("/logo.bin", String.make 20_000 '\x7F');
      ("/video.bin", String.make 300_000 'v');
    ];
  let server = Httpd.Server.start sys in
  let siege = Httpd.Siege.make sys server in

  List.iter
    (fun path ->
      let r = Httpd.Siege.fetch siege path in
      Printf.printf "GET %-12s -> %d, %7d bytes, %6.2f ms (%d simulated cycles)\n" path
        r.Httpd.Siege.status (String.length r.Httpd.Siege.body) r.Httpd.Siege.latency_ms
        r.Httpd.Siege.cycles)
    [ "/index.html"; "/logo.bin"; "/video.bin"; "/missing.html" ];

  print_endline "\ncross-cubicle call graph (cf. paper Figure 5):";
  List.iter
    (fun ((caller, callee), n) ->
      Printf.printf "  %-8s -> %-8s %7d calls\n"
        (Monitor.cubicle_name mon caller) (Monitor.cubicle_name mon callee) n)
    (Stats.edges (Monitor.stats mon));
  Printf.printf "  trap-and-map faults: %d, retags: %d, wrpkru writes: %d\n"
    (Stats.faults (Monitor.stats mon))
    (Stats.retags (Monitor.stats mon))
    (Hw.Cpu.wrpkru_count (Monitor.cpu mon))
