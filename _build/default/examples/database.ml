(* Database example: the paper's SQLite deployment (Figure 8).

   Runs the same embedded database — tables, secondary indexes,
   transactions with a rollback journal — on top of the isolated file
   system stack, once without protection (Unikraft baseline) and once
   under full CubicleOS, and reports the slowdown per workload phase.

   Run with: dune exec examples/database.exe *)

open Cubicle

let phases db n =
  [
    ( "bulk insert (1 txn)",
      fun () ->
        let t = Minidb.Db.create_table db "accounts" in
        ignore (Minidb.Db.create_index db t ~col:0 ~name:"accounts_owner");
        Minidb.Db.with_txn db (fun () ->
            for i = 1 to n do
              ignore
                (Minidb.Db.insert db t
                   [
                     Minidb.Record.int (i mod 97);
                     Minidb.Record.int (1000 * i);
                     Minidb.Record.Text (Printf.sprintf "account-%04d" i);
                   ])
            done) );
    ( "point lookups",
      fun () ->
        let t = Minidb.Db.find_table db "accounts" in
        for i = 1 to n do
          ignore (Minidb.Db.get t (Int64.of_int ((i * 37 mod n) + 1)))
        done );
    ( "indexed range query",
      fun () ->
        let t = Minidb.Db.find_table db "accounts" in
        let idx = Minidb.Db.find_index db "accounts_owner" in
        let hits = ref 0 in
        Minidb.Db.index_range idx t ~lo:10 ~hi:20 (fun _ _ -> incr hits) );
    ( "per-row update txns",
      fun () ->
        let t = Minidb.Db.find_table db "accounts" in
        for i = 1 to n / 10 do
          Minidb.Db.with_txn db (fun () ->
              ignore
                (Minidb.Db.update db t (Int64.of_int i)
                   [ Minidb.Record.int 7; Minidb.Record.int 0; Minidb.Record.Text "updated" ]))
        done );
    ( "aborted transaction",
      fun () ->
        let t = Minidb.Db.find_table db "accounts" in
        try
          Minidb.Db.with_txn db (fun () ->
              ignore
                (Minidb.Db.insert db t
                   [ Minidb.Record.int 0; Minidb.Record.int 0; Minidb.Record.Text "phantom" ]);
              failwith "deliberate abort")
        with Failure _ -> () );
  ]

let run_config protection =
  let app = Builder.component ~heap_pages:256 ~stack_pages:4 "APP" in
  let sys =
    Libos.Boot.fs_stack ~protection ~mem_bytes:(128 * 1024 * 1024)
      ~extra:[ (app, Types.Isolated) ] ()
  in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make ctx) in
  let db = Minidb.Db.open_db os ~path:"/bank.db" in
  let cost = Monitor.cost sys.Libos.Boot.mon in
  let results =
    List.map
      (fun (name, work) ->
        let c0 = Hw.Cost.cycles cost in
        Monitor.run_as sys.Libos.Boot.mon (Api.self ctx) work;
        (name, Hw.Cost.cycles cost - c0))
      (phases db 400)
  in
  let rows = Minidb.Db.row_count (Minidb.Db.find_table db "accounts") in
  Minidb.Db.close db;
  (results, rows)

let () =
  print_endline "== CubicleOS database (SQLite-style engine on the isolated FS stack) ==";
  let baseline, rows_b = run_config Types.None_ in
  let full, rows_f = run_config Types.Full in
  assert (rows_b = rows_f);
  Printf.printf "%d rows after all phases (identical in both configurations)\n\n" rows_b;
  Printf.printf "%-24s %14s %14s %9s\n" "phase" "Unikraft(cyc)" "CubicleOS(cyc)" "slowdown";
  List.iter2
    (fun (name, b) (_, f) ->
      Printf.printf "%-24s %14d %14d %8.2fx\n" name b f (float_of_int f /. float_of_int b))
    baseline full;
  print_endline "\n(the journal, page cache and B+tree all live in the APP cubicle;";
  print_endline " every file access crosses APP -> VFSCORE -> RAMFS through windows)"
