(* Isolation demo: what CubicleOS stops a malicious component doing.

   Five attack scenarios from the paper's threat model (§2.3), each
   attempted and blocked:
     1. a compromised RAMFS trying to read TLS keys in another cubicle
        (the CVE-2018-5410-style scenario from the introduction);
     2. loading a component whose binary hides a wrpkru sequence inside
        an immediate (ERIM-style misaligned scan);
     3. loading a component that tries to issue raw system calls;
     4. jumping into a trampoline thunk body, bypassing CFI;
     5. a component trying to manage (open) another cubicle's window.

   Run with: dune exec examples/isolation_demo.exe *)

open Cubicle

let attempt name f ~blocked_by =
  match f () with
  | _ -> Printf.printf "  !! %-52s NOT BLOCKED\n" name
  | exception Hw.Fault.Violation _ ->
      Printf.printf "  ok %-52s blocked by %s\n" name blocked_by
  | exception Loader.Rejected (_, hits) ->
      Printf.printf "  ok %-52s blocked by %s (%d forbidden sequences)\n" name blocked_by
        (List.length hits)
  | exception Types.Error _ -> Printf.printf "  ok %-52s blocked by %s\n" name blocked_by

let () =
  print_endline "== CubicleOS isolation demo: attacks and their fate ==";
  let app = Builder.component ~heap_pages:32 ~stack_pages:2 "APP" in
  let sys = Libos.Boot.fs_stack ~protection:Types.Full ~extra:[ (app, Types.Isolated) ] () in
  let mon = sys.Libos.Boot.mon in
  let app_ctx = Libos.Boot.app_ctx sys "APP" in

  (* The application stores a "TLS key" in its own heap. *)
  let tls_key = Api.malloc_page_aligned app_ctx 32 in
  Api.write_string app_ctx tls_key "-----SECRET TLS PRIVATE KEY-----";

  (* 1. A vulnerable/compromised file system tries to exfiltrate it.
        We model the compromise by registering a rogue export in the
        RAMFS cubicle that dereferences an arbitrary pointer. *)
  let ramfs = Monitor.lookup_cubicle mon "RAMFS" in
  Monitor.register_exports mon ramfs
    [
      {
        Monitor.sym = "ramfs_backdoor";
        fn = (fun ctx args -> Api.read_u8 ctx args.(0));
        stack_bytes = 0;
      };
    ];
  attempt "compromised RAMFS reads the app's TLS key"
    (fun () -> Monitor.call mon ~caller:(Api.self app_ctx) "ramfs_backdoor" [| tls_key |])
    ~blocked_by:"spatial isolation (MPK tags)";

  (* 2. Hidden wrpkru in an immediate operand. *)
  attempt "loading a binary with wrpkru hidden in an immediate"
    (fun () ->
      Loader.load mon
        {
          Loader.img_name = "EVIL1";
          code = Hw.Instr.assemble [ Nop; Mov_imm (1, 0x00EF010F); Ret ];
          rodata = Bytes.empty;
          data = Bytes.empty;
          signed = false;
        }
        ~kind:Types.Isolated ~heap_pages:1 ~stack_pages:1 ~exports:[])
    ~blocked_by:"loader binary scan";

  (* 3. Raw system calls. *)
  attempt "loading a binary that issues raw syscalls"
    (fun () ->
      Loader.load mon
        {
          Loader.img_name = "EVIL2";
          code = Hw.Instr.assemble [ Mov_imm (0, 60); Syscall; Ret ];
          rodata = Bytes.empty;
          data = Bytes.empty;
          signed = false;
        }
        ~kind:Types.Isolated ~heap_pages:1 ~stack_pages:1 ~exports:[])
    ~blocked_by:"loader binary scan";

  (* 4. CFI: fetch a trampoline thunk directly instead of entering via
        the guard page. *)
  let thunk = Trampoline.thunk_addr sys.Libos.Boot.built.Builder.trampolines "vfs_open" in
  attempt "jumping into a trampoline thunk body (CFI bypass)"
    (fun () ->
      Trampoline.rogue_fetch mon ~as_cubicle:(Api.self app_ctx) ~addr:thunk;
      0)
    ~blocked_by:"tag-wide no-execute (modified MPK)";

  (* 5. Window ownership: the app tries to window out VFSCORE's memory. *)
  attempt "windowing out another cubicle's memory"
    (fun () ->
      let wid = Api.window_init app_ctx ~klass:Mm.Page_meta.Heap in
      let vfs_heap_page =
        (* any page owned by VFSCORE *)
        let rec find p =
          if Monitor.page_owner mon p = Some (Monitor.lookup_cubicle mon "VFSCORE") then p
          else find (p + 1)
        in
        Hw.Addr.base_of_page (find 0)
      in
      Api.window_add app_ctx wid ~ptr:vfs_heap_page ~size:64;
      0)
    ~blocked_by:"window ownership check";

  (* And the legitimate path still works. *)
  let fio = Libos.Fileio.make app_ctx in
  Libos.Fileio.write_file fio "/legit.txt" "windows make sharing intentional";
  Printf.printf "\nlegitimate file I/O still works: %S\n"
    (Libos.Fileio.read_file fio "/legit.txt");
  Printf.printf "isolation violations caught by the monitor: %d\n"
    (Stats.rejected (Monitor.stats mon))
