(** Per-cubicle heap sub-allocator.

    Each isolated cubicle owns a private first-fit free-list allocator
    over its heap region (paper §4: "each isolated cubicle has its own
    memory sub-allocator"). Block headers are kept on the OCaml side so
    heap corruption by a misbehaving component cannot break the
    allocator itself — matching the paper's placement of allocation
    metadata under monitor control. *)

type t

exception Out_of_heap

val create : base:int -> size:int -> t
(** Manage the byte range [base, base+size). *)

val alloc : ?align:int -> t -> int -> int
(** [alloc t n] returns the address of a fresh block of [n] bytes
    ([align] defaults to 8; pass [4096] for page-aligned buffers that
    must not share window pages with other data). Raises
    {!Out_of_heap}. *)

val free : t -> int -> unit
(** Raises [Invalid_argument] on a double free or a foreign pointer. *)

val block_size : t -> int -> int option
val used_bytes : t -> int
val free_bytes : t -> int
val base : t -> int
val size : t -> int
val live_blocks : t -> int
