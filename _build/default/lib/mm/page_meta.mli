(** Per-page ownership and type metadata.

    CubicleOS keeps a page metadata map that lets the monitor locate,
    in O(1), the owning cubicle and the page class (code, global data,
    stack or heap) of any faulting address (paper §5.3, step ❷). Pages
    are strictly assigned an owner and type at allocation time. *)

type kind = Code | Global | Stack | Heap

type t

val create : int -> t
(** [create npages]: all pages initially unowned. *)

val assign : t -> page:int -> owner:int -> kind:kind -> unit
(** Raises [Invalid_argument] if the page already has an owner —
    ownership is set once at allocation time (safety property from
    L4Sec cited in §5.3). *)

val release : t -> page:int -> unit
val owner : t -> int -> int option
val kind : t -> int -> kind option
val owned_by : t -> int -> int list
(** All pages owned by a cubicle (for teardown); O(npages). *)

val kind_to_string : kind -> string
