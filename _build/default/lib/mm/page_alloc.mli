(** Physical page-frame allocator: hands out contiguous page runs from
    the simulated machine's page space. Used by the loader and by the
    ALLOC component for coarse-grained (page-granular) allocations. *)

type t

exception Out_of_memory

val create : first_page:int -> npages:int -> t
(** [create ~first_page ~npages] manages the page range
    [first_page, first_page+npages). The pages below [first_page] are
    typically reserved for the monitor. *)

val alloc : t -> int -> int
(** [alloc t n] returns the first page of a fresh run of [n] contiguous
    pages. Raises {!Out_of_memory} when no run fits. *)

val free : t -> int -> unit
(** [free t page] releases the run previously returned at [page].
    Raises [Invalid_argument] if [page] is not an allocated run start. *)

val run_size : t -> int -> int option
(** Size in pages of the allocated run starting at [page], if any. *)

val free_pages : t -> int
val used_pages : t -> int
val total_pages : t -> int
