lib/mm/suballoc.ml: Hashtbl List Printf
