lib/mm/page_alloc.mli:
