lib/mm/page_meta.mli:
