lib/mm/page_alloc.ml: Hashtbl Printf
