lib/mm/suballoc.mli:
