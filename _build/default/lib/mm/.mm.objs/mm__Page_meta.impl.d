lib/mm/page_meta.ml: Array Printf
