type kind = Code | Global | Stack | Heap

type t = { owners : int array; kinds : int array }

let kind_to_int = function Code -> 1 | Global -> 2 | Stack -> 3 | Heap -> 4
let kind_of_int = function
  | 1 -> Code
  | 2 -> Global
  | 3 -> Stack
  | 4 -> Heap
  | n -> invalid_arg (Printf.sprintf "Page_meta: bad kind %d" n)

let create npages = { owners = Array.make npages (-1); kinds = Array.make npages 0 }

let check t page =
  if page < 0 || page >= Array.length t.owners then
    invalid_arg (Printf.sprintf "Page_meta: page %d out of range" page)

let assign t ~page ~owner ~kind =
  check t page;
  if t.owners.(page) >= 0 then
    invalid_arg
      (Printf.sprintf "Page_meta.assign: page %d already owned by cubicle %d" page
         t.owners.(page));
  t.owners.(page) <- owner;
  t.kinds.(page) <- kind_to_int kind

let release t ~page =
  check t page;
  t.owners.(page) <- -1;
  t.kinds.(page) <- 0

let owner t page =
  check t page;
  if t.owners.(page) < 0 then None else Some t.owners.(page)

let kind t page =
  check t page;
  if t.kinds.(page) = 0 then None else Some (kind_of_int t.kinds.(page))

let owned_by t cid =
  let acc = ref [] in
  for p = Array.length t.owners - 1 downto 0 do
    if t.owners.(p) = cid then acc := p :: !acc
  done;
  !acc

let kind_to_string = function
  | Code -> "code"
  | Global -> "global"
  | Stack -> "stack"
  | Heap -> "heap"
