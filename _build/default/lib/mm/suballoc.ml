exception Out_of_heap

type t = {
  base : int;
  size : int;
  mutable free_list : (int * int) list;  (* (addr, len) sorted by addr *)
  blocks : (int, int) Hashtbl.t;  (* addr -> len *)
  mutable used : int;
}

let create ~base ~size =
  if size <= 0 then invalid_arg "Suballoc.create: empty heap";
  { base; size; free_list = [ (base, size) ]; blocks = Hashtbl.create 64; used = 0 }

let round_up v align = (v + align - 1) / align * align

let alloc ?(align = 8) t n =
  if n <= 0 then invalid_arg "Suballoc.alloc: non-positive size";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Suballoc.alloc: alignment must be a power of two";
  (* First fit: find a free chunk that can hold an aligned block of n
     bytes; split off any leading pad and trailing remainder. *)
  let rec take = function
    | [] -> raise Out_of_heap
    | (addr, len) :: rest ->
        let start = round_up addr align in
        let pad = start - addr in
        if len >= pad + n then begin
          let pieces = ref rest in
          let tail = len - pad - n in
          if tail > 0 then pieces := (start + n, tail) :: !pieces;
          if pad > 0 then pieces := (addr, pad) :: !pieces;
          (start, !pieces)
        end
        else
          let start', remainder = take rest in
          (start', (addr, len) :: remainder)
  in
  let addr, remainder = take t.free_list in
  t.free_list <- List.sort compare remainder;
  Hashtbl.replace t.blocks addr n;
  t.used <- t.used + n;
  addr

let rec insert addr len = function
  | [] -> [ (addr, len) ]
  | (a, l) :: rest when addr + len = a -> (addr, len + l) :: rest
  | (a, l) :: rest when a + l = addr -> insert a (l + len) rest
  | (a, l) :: rest when addr < a -> (addr, len) :: (a, l) :: rest
  | chunk :: rest -> chunk :: insert addr len rest

let free t addr =
  match Hashtbl.find_opt t.blocks addr with
  | None -> invalid_arg (Printf.sprintf "Suballoc.free: 0x%x is not a live block" addr)
  | Some len ->
      Hashtbl.remove t.blocks addr;
      t.used <- t.used - len;
      t.free_list <- insert addr len t.free_list

let block_size t addr = Hashtbl.find_opt t.blocks addr
let used_bytes t = t.used
let free_bytes t = t.size - t.used
let base t = t.base
let size t = t.size
let live_blocks t = Hashtbl.length t.blocks
