exception Out_of_memory

type t = {
  first_page : int;
  npages : int;
  mutable free_runs : (int * int) list;  (* (start, len), sorted by start *)
  allocated : (int, int) Hashtbl.t;  (* run start -> len *)
  mutable used : int;
}

let create ~first_page ~npages =
  if npages <= 0 then invalid_arg "Page_alloc.create: empty range";
  {
    first_page;
    npages;
    free_runs = [ (first_page, npages) ];
    allocated = Hashtbl.create 64;
    used = 0;
  }

let alloc t n =
  if n <= 0 then invalid_arg "Page_alloc.alloc: non-positive size";
  let rec take = function
    | [] -> raise Out_of_memory
    | (start, len) :: rest when len >= n ->
        let remainder = if len = n then rest else (start + n, len - n) :: rest in
        (start, remainder)
    | run :: rest ->
        let start, remainder = take rest in
        (start, run :: remainder)
  in
  let start, runs = take t.free_runs in
  t.free_runs <- runs;
  Hashtbl.replace t.allocated start n;
  t.used <- t.used + n;
  start

(* Insert a run back, keeping the list sorted and coalescing neighbours. *)
let rec insert_run start len = function
  | [] -> [ (start, len) ]
  | (s, l) :: rest when start + len = s -> (start, len + l) :: rest
  | (s, l) :: rest when s + l = start -> insert_run s (l + len) rest
  | (s, l) :: rest when start < s -> (start, len) :: (s, l) :: rest
  | run :: rest -> run :: insert_run start len rest

let free t page =
  match Hashtbl.find_opt t.allocated page with
  | None -> invalid_arg (Printf.sprintf "Page_alloc.free: page %d is not a run start" page)
  | Some len ->
      Hashtbl.remove t.allocated page;
      t.used <- t.used - len;
      t.free_runs <- insert_run page len t.free_runs

let run_size t page = Hashtbl.find_opt t.allocated page
let used_pages t = t.used
let total_pages t = t.npages
let free_pages t = t.npages - t.used
