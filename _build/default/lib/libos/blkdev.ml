open Cubicle

let sector_size = 512
let sector_cycles = 900 (* per-sector device + driver cost *)

type disk = { data : Bytes.t; sectors : int }

let create_disk ~sectors =
  if sectors <= 0 then invalid_arg "Blkdev.create_disk: need at least one sector";
  { data = Bytes.make (sectors * sector_size) '\000'; sectors }

let disk_sectors d = d.sectors

type state = {
  disk : disk;
  mutable staging : int;  (* DMA page *)
  mutable reads : int;
  mutable writes : int;
}

let check_range state sector n =
  n > 0 && sector >= 0 && sector + n <= state.disk.sectors
  && n * sector_size <= Hw.Addr.page_size

let charge ctx n =
  Hw.Cost.charge (Monitor.cost ctx.Monitor.mon) (n * sector_cycles)

let read_fn state ctx (args : int array) =
  let buf = args.(0) and sector = args.(1) and n = args.(2) in
  if not (check_range state sector n) then Sysdefs.einval
  else begin
    let len = n * sector_size in
    (* disk -> DMA staging (device side), staging -> caller (checked) *)
    Hw.Cpu.priv_write_bytes ctx.Monitor.cpu state.staging
      (Bytes.sub state.disk.data (sector * sector_size) len);
    Api.memcpy ctx ~dst:buf ~src:state.staging ~len;
    charge ctx n;
    state.reads <- state.reads + n;
    Sysdefs.ok
  end

let write_fn state ctx (args : int array) =
  let buf = args.(0) and sector = args.(1) and n = args.(2) in
  if not (check_range state sector n) then Sysdefs.einval
  else begin
    let len = n * sector_size in
    Api.memcpy ctx ~dst:state.staging ~src:buf ~len;
    Bytes.blit
      (Hw.Cpu.priv_read_bytes ctx.Monitor.cpu state.staging len)
      0 state.disk.data (sector * sector_size) len;
    charge ctx n;
    state.writes <- state.writes + n;
    Sysdefs.ok
  end

let capacity_fn state _ctx _ = state.disk.sectors

let init state ctx = state.staging <- Api.alloc_pages ctx 1 ~kind:Mm.Page_meta.Heap

let make disk =
  let state = { disk; staging = 0; reads = 0; writes = 0 } in
  let comp =
    Builder.component "BLKDEV" ~code_ops:512 ~heap_pages:4 ~stack_pages:2
      ~init:(init state)
      ~exports:
        [
          { Monitor.sym = "blk_read"; fn = read_fn state; stack_bytes = 0 };
          { Monitor.sym = "blk_write"; fn = write_fn state; stack_bytes = 0 };
          { Monitor.sym = "blk_capacity"; fn = capacity_fn state; stack_bytes = 0 };
        ]
  in
  (state, comp)

let reads state = state.reads
let writes state = state.writes
