(** System-wide constants and error codes shared by the library OS
    components (errno-style negative returns, network framing, and the
    calibrated cost constants of the network path). *)

val ok : int
val enoent : int
val eexist : int
val ebadf : int
val einval : int
val eagain : int
val eio : int

val mtu : int
(** Maximum frame payload carried by NETDEV (Ethernet-like, 1514). *)

val mss : int
(** Maximum TCP segment payload (1460). *)

val frame_header : int
(** Bytes of the LWIP-lite frame header:
    [conn u32][kind u8][seq u32][len u16]. *)

val send_buffer : int
(** LWIP per-connection send buffer (64 KiB); transfers larger than
    this stall for window acknowledgements, which is what bends the
    latency curve of the paper's Figure 7 after 64 kB. *)

val nic_frame_cycles : int
(** Per-frame driver + wire cost charged by NETDEV. *)

val rtt_stall_cycles : int
(** Cost of draining a full send buffer (one ack round trip). *)

val request_overhead_cycles : int
(** Fixed client-side per-request latency (connection setup, siege
    think time): the ~5 ms floor of Figure 7. *)

val fsync_cycles : int
(** Flush cost charged by RAMFS on fsync (RAM-backed, so small). *)
