(** The BLKDEV component: a sector-addressed block device.

    Mirrors Unikraft's uk_blkdev: callers exchange sector data with the
    device through checked copies (so they must window their buffers to
    BLKDEV), and a DMA staging page moves data to/from the backing
    store. The backing store (the "disk") lives host-side and can be
    detached and re-attached to a different booted system — which is
    how persistence across reboots is tested. *)

type disk

val create_disk : sectors:int -> disk
(** A zeroed disk. *)

val disk_sectors : disk -> int
val sector_size : int
(** 512 bytes. *)

type state

val make : disk -> state * Cubicle.Builder.component
(** Exports: [blk_read(buf,sector,n)] → 0, [blk_write(buf,sector,n)] →
    0, [blk_capacity()] → total sectors. Each transfer charges a
    per-sector device cost. *)

val reads : state -> int
val writes : state -> int
