(** UKSCHED: a cooperative scheduler multiplexing user-level threads
    onto the single hardware thread — Unikraft's threading model, which
    the paper inherits (§8: "user-level threads are multiplexed onto a
    single host thread").

    Every thread belongs to a cubicle; the scheduler enters the
    thread's cubicle ({!Cubicle.Monitor.run_as}) around every slice, so
    each user-level thread runs under its own PKRU view — the
    per-thread access permissions MPK provides (§2.2). Yielding
    suspends the thread via an OCaml effect and re-enqueues it
    round-robin. *)

type t
type tid = int

val create : Cubicle.Monitor.t -> t

val spawn : t -> Cubicle.Types.cid -> (unit -> unit) -> tid
(** Queue a thread that will run inside the given cubicle. *)

val yield : unit -> unit
(** Inside a thread: give up the processor (round-robin). Calling it
    outside a scheduler thread raises [Invalid_argument]. *)

val run : t -> unit
(** Run until every thread has finished. A thread that raises stops the
    scheduler with its exception after the remaining threads are
    parked back in the queue. *)

val alive : t -> int
(** Threads not yet finished. *)

val context_switches : t -> int
