(** The UKFAT component: a FAT-like persistent file system backend over
    the BLKDEV component.

    A second file system backend next to RAMFS, registered with VFSCORE
    under the same fs_ops callback interface (backend tag 2) —
    demonstrating the component modularity CubicleOS inherits from
    Unikraft: the deployer swaps backends without touching VFSCORE or
    applications.

    On-disk layout (512-byte sectors, 4 KiB clusters):
    - sector 0: superblock (magic, cluster count, root size);
    - a 16-bit FAT (0 = free, 0xFFFF = end of chain);
    - a flat root directory of fixed 32-byte entries;
    - the data clusters.
    Metadata updates are write-through; a freshly attached disk with no
    valid superblock is formatted on mount. File contents survive
    reboots of the whole simulated system ({!Blkdev.disk} can be
    re-attached). *)

type state

val make : unit -> state * Cubicle.Builder.component
(** Exports the fs_ops callback table under the "fatfs" prefix:
    [fatfs_lookup], [fatfs_create], [fatfs_pread], [fatfs_pwrite],
    [fatfs_size], [fatfs_truncate], [fatfs_fsync], [fatfs_unlink],
    [fatfs_rename]. Requires a BLKDEV cubicle in the system. *)

val file_count : state -> int
val free_clusters : state -> int
val cluster_size : int
