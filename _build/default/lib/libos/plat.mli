(** The PLAT component: platform glue — console output and a
    deterministic entropy source. *)

type state

val make : ?echo:bool -> unit -> state * Cubicle.Builder.component
(** Exports: [plat_putc(c)], [plat_rand()] (deterministic PRNG),
    [plat_halt()]. With [echo] the console also prints to stdout. *)

val console_contents : state -> string
val clear_console : state -> unit
val halted : state -> bool
