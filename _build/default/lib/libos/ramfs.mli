(** The RAMFS component: an in-memory file system backend.

    File contents live in page-sized chunks owned by the RAMFS cubicle
    (allocated through the system-wide ALLOC component — coarse-grained
    allocations, as in the paper's SQLite deployment). Data moves
    between caller buffers and chunks via the shared-cubicle [memcpy],
    which executes with RAMFS's privileges, so reads/writes of caller
    buffers are authorised by the caller's open windows, and first
    touches of each page go through trap-and-map. *)

type state

val make : unit -> state * Cubicle.Builder.component
(** Exports (the fs_ops callback table registered with VFSCORE):
    [ramfs_lookup], [ramfs_create], [ramfs_pread], [ramfs_pwrite],
    [ramfs_size], [ramfs_truncate], [ramfs_fsync], [ramfs_unlink],
    [ramfs_rename]. *)

val file_count : state -> int
val total_bytes : state -> int
