open Cubicle

let sector_size = Blkdev.sector_size
let sectors_per_cluster = 8
let cluster_size = sectors_per_cluster * sector_size
let magic = 0x554B4654 (* "UKFT" *)
let root_entries = 64
let entry_size = 32
let name_max = 23
let eoc = 0xFFFF (* end-of-chain marker *)

type entry = { mutable used : bool; mutable name : string; mutable first : int; mutable size : int }

type state = {
  mutable ctx : Monitor.ctx option;  (* set at init *)
  mutable staging : int;  (* sector staging buffer, windowed to BLKDEV *)
  mutable cluster_buf : int;  (* one-cluster buffer for data I/O *)
  mutable nclusters : int;
  mutable fat : int array;
  mutable root : entry array;
  mutable fat_start : int;
  mutable root_start : int;
  mutable data_start : int;
}

let ctx_exn state =
  match state.ctx with Some c -> c | None -> Types.error "fatfs: not initialised"

(* --- sector I/O through BLKDEV -------------------------------------------- *)

let read_sectors state ~sector ~n ~into =
  let ctx = ctx_exn state in
  (* the device fills our staging page; we then place the bytes where
     the caller of this helper wants them (both are our own memory) *)
  let r = Api.call ctx "blk_read" [| state.staging; sector; n |] in
  if r <> 0 then Types.error "fatfs: blk_read failed (%d)" r;
  if into <> state.staging then
    Api.memcpy ctx ~dst:into ~src:state.staging ~len:(n * sector_size)

let write_sectors state ~sector ~n ~from =
  let ctx = ctx_exn state in
  if from <> state.staging then
    Api.memcpy ctx ~dst:state.staging ~src:from ~len:(n * sector_size);
  let r = Api.call ctx "blk_write" [| state.staging; sector; n |] in
  if r <> 0 then Types.error "fatfs: blk_write failed (%d)" r

(* --- metadata (de)serialisation, write-through ----------------------------- *)

let fat_sectors state = (state.nclusters * 2 + sector_size - 1) / sector_size
let root_sectors = root_entries * entry_size / sector_size

let flush_fat_entry state cluster =
  (* write back just the sector of the FAT containing this entry *)
  let byte = cluster * 2 in
  let sec = byte / sector_size in
  let ctx = ctx_exn state in
  let base = sec * (sector_size / 2) in
  for i = 0 to (sector_size / 2) - 1 do
    let v = if base + i < state.nclusters then state.fat.(base + i) else 0 in
    Api.write_u16 ctx (state.staging + (2 * i)) v
  done;
  let r = Api.call ctx "blk_write" [| state.staging; state.fat_start + sec; 1 |] in
  if r <> 0 then Types.error "fatfs: FAT write-through failed (%d)" r

let encode_entry state slot =
  let e = state.root.(slot) in
  let ctx = ctx_exn state in
  let off = state.cluster_buf + (slot mod (sector_size / entry_size) * entry_size) in
  Api.write_u8 ctx off (if e.used then 1 else 0);
  let name = if String.length e.name > name_max then String.sub e.name 0 name_max else e.name in
  Api.write_string ctx (off + 1) name;
  if String.length name < name_max then
    Api.memset ctx (off + 1 + String.length name) (name_max - String.length name) '\000';
  Api.write_u16 ctx (off + 24) e.first;
  Api.write_u32 ctx (off + 26) e.size;
  Api.write_u16 ctx (off + 30) 0

let flush_root_slot state slot =
  (* read-modify-write the directory sector holding this slot *)
  let per_sector = sector_size / entry_size in
  let sec = slot / per_sector in
  let first_slot = sec * per_sector in
  for s = first_slot to first_slot + per_sector - 1 do
    encode_entry state s
  done;
  write_sectors state ~sector:(state.root_start + sec) ~n:1 ~from:state.cluster_buf

let mkfs state ~capacity_sectors =
  let ctx = ctx_exn state in
  (* choose nclusters to fit: 1 superblock + FAT + root + data *)
  let overhead c = 1 + ((c * 2 + sector_size - 1) / sector_size) + root_sectors in
  let rec fit c = if overhead c + (c * sectors_per_cluster) <= capacity_sectors then c else fit (c - 8) in
  let nclusters = fit (capacity_sectors / sectors_per_cluster) in
  if nclusters < 8 then Types.error "fatfs: disk too small";
  state.nclusters <- nclusters;
  state.fat <- Array.make nclusters 0;
  state.fat.(0) <- eoc (* cluster 0 reserved: 0 means "free" in chains *);
  state.root <- Array.init root_entries (fun _ -> { used = false; name = ""; first = 0; size = 0 });
  state.fat_start <- 1;
  state.root_start <- 1 + fat_sectors state;
  state.data_start <- state.root_start + root_sectors;
  (* superblock *)
  Api.memset ctx state.staging sector_size '\000';
  Api.write_u32 ctx state.staging magic;
  Api.write_u16 ctx (state.staging + 4) nclusters;
  Api.write_u16 ctx (state.staging + 6) root_entries;
  let r = Api.call ctx "blk_write" [| state.staging; 0; 1 |] in
  if r <> 0 then Types.error "fatfs: superblock write failed";
  for s = 0 to fat_sectors state - 1 do
    flush_fat_entry state (s * (sector_size / 2))
  done;
  for slot = 0 to root_entries - 1 do
    if slot mod (sector_size / entry_size) = 0 then flush_root_slot state slot
  done

let mount state =
  let ctx = ctx_exn state in
  let capacity = Api.call ctx "blk_capacity" [||] in
  read_sectors state ~sector:0 ~n:1 ~into:state.staging;
  if Api.read_u32 ctx state.staging <> magic then mkfs state ~capacity_sectors:capacity
  else begin
    state.nclusters <- Api.read_u16 ctx (state.staging + 4);
    let nroot = Api.read_u16 ctx (state.staging + 6) in
    if nroot <> root_entries then Types.error "fatfs: unsupported root size %d" nroot;
    state.fat_start <- 1;
    state.root_start <- 1 + fat_sectors state;
    state.data_start <- state.root_start + root_sectors;
    (* load the FAT *)
    state.fat <- Array.make state.nclusters 0;
    for sec = 0 to fat_sectors state - 1 do
      read_sectors state ~sector:(state.fat_start + sec) ~n:1 ~into:state.staging;
      for i = 0 to (sector_size / 2) - 1 do
        let c = (sec * (sector_size / 2)) + i in
        if c < state.nclusters then state.fat.(c) <- Api.read_u16 ctx (state.staging + (2 * i))
      done
    done;
    (* load the root directory *)
    state.root <- Array.init root_entries (fun _ -> { used = false; name = ""; first = 0; size = 0 });
    let per_sector = sector_size / entry_size in
    for sec = 0 to root_sectors - 1 do
      read_sectors state ~sector:(state.root_start + sec) ~n:1 ~into:state.staging;
      for i = 0 to per_sector - 1 do
        let slot = (sec * per_sector) + i in
        let off = state.staging + (i * entry_size) in
        let e = state.root.(slot) in
        e.used <- Api.read_u8 ctx off = 1;
        if e.used then begin
          let raw = Api.read_string ctx (off + 1) name_max in
          e.name <- (match String.index_opt raw '\000' with Some z -> String.sub raw 0 z | None -> raw);
          e.first <- Api.read_u16 ctx (off + 24);
          e.size <- Api.read_u32 ctx (off + 26)
        end
      done
    done
  end

(* --- cluster chains -------------------------------------------------------- *)

let cluster_sector state c = state.data_start + (c * sectors_per_cluster)

let alloc_cluster state =
  let rec scan c =
    if c >= state.nclusters then Types.error "fatfs: disk full"
    else if state.fat.(c) = 0 then begin
      state.fat.(c) <- eoc;
      flush_fat_entry state c;
      (* zero the fresh cluster *)
      Api.memset (ctx_exn state) state.cluster_buf cluster_size '\000';
      write_sectors state ~sector:(cluster_sector state c) ~n:sectors_per_cluster
        ~from:state.cluster_buf;
      c
    end
    else scan (c + 1)
  in
  scan 1

(* cluster number holding byte offset [off] of the file, extending the
   chain when [grow] *)
let rec chain_at state e ~off ~grow =
  let idx = off / cluster_size in
  if e.first = 0 then
    if grow then begin
      e.first <- alloc_cluster state;
      chain_at state e ~off ~grow
    end
    else 0
  else begin
    let rec walk c i =
      if i = 0 then c
      else if state.fat.(c) = eoc then
        if grow then begin
          let next = alloc_cluster state in
          state.fat.(c) <- next;
          flush_fat_entry state c;
          walk next (i - 1)
        end
        else 0
      else walk state.fat.(c) (i - 1)
    in
    walk e.first idx
  end

let free_chain state first =
  let rec go c =
    if c <> 0 && c <> eoc then begin
      let next = state.fat.(c) in
      state.fat.(c) <- 0;
      flush_fat_entry state c;
      go next
    end
  in
  go first

(* --- directory -------------------------------------------------------------- *)

let find_slot state name =
  let rec go i =
    if i >= root_entries then None
    else if state.root.(i).used && state.root.(i).name = name then Some i
    else go (i + 1)
  in
  go 0

let free_slot state =
  let rec go i =
    if i >= root_entries then Types.error "fatfs: root directory full"
    else if not state.root.(i).used then i
    else go (i + 1)
  in
  go 0

let read_name ctx ptr len =
  let s = Api.read_string ctx ptr len in
  if String.length s > name_max then String.sub s 0 name_max else s

(* --- the fs_ops exports -------------------------------------------------------- *)

let lookup_fn state ctx (args : int array) =
  match find_slot state (read_name ctx args.(0) args.(1)) with
  | Some slot -> slot + 1
  | None -> Sysdefs.enoent

let create_fn state ctx (args : int array) =
  let name = read_name ctx args.(0) args.(1) in
  match find_slot state name with
  | Some _ -> Sysdefs.eexist
  | None ->
      let slot = free_slot state in
      let e = state.root.(slot) in
      e.used <- true;
      e.name <- name;
      e.first <- 0;
      e.size <- 0;
      flush_root_slot state slot;
      slot + 1

let with_ino state ino f =
  let slot = ino - 1 in
  if slot < 0 || slot >= root_entries || not state.root.(slot).used then Sysdefs.ebadf
  else f slot state.root.(slot)

let read_iodesc ctx desc =
  (Api.read_u32 ctx desc, Api.read_u32 ctx (desc + 4), Int64.to_int (Api.read_i64 ctx (desc + 8)))

(* copy between the caller's buffer and the file, one cluster piece at a
   time through [cluster_buf] *)
let cluster_io state ctx e ~buf ~len ~off ~write =
  let rec step done_ =
    if done_ >= len then done_
    else begin
      let pos = off + done_ in
      let coff = pos mod cluster_size in
      let n = min (len - done_) (cluster_size - coff) in
      let c = chain_at state e ~off:pos ~grow:write in
      if write then begin
        if n < cluster_size then
          (* read-modify-write of a partial cluster *)
          read_sectors state ~sector:(cluster_sector state c) ~n:sectors_per_cluster
            ~into:state.cluster_buf;
        Api.memcpy ctx ~dst:(state.cluster_buf + coff) ~src:(buf + done_) ~len:n;
        write_sectors state ~sector:(cluster_sector state c) ~n:sectors_per_cluster
          ~from:state.cluster_buf
      end
      else if c = 0 then Api.memset ctx (buf + done_) n '\000'
      else begin
        read_sectors state ~sector:(cluster_sector state c) ~n:sectors_per_cluster
          ~into:state.cluster_buf;
        Api.memcpy ctx ~dst:(buf + done_) ~src:(state.cluster_buf + coff) ~len:n
      end;
      step (done_ + n)
    end
  in
  step 0

let pread_fn state ctx (args : int array) =
  let ino, len, off = read_iodesc ctx args.(0) in
  with_ino state ino (fun _slot e ->
      if off >= e.size then 0
      else cluster_io state ctx e ~buf:args.(1) ~len:(min len (e.size - off)) ~off ~write:false)

let pwrite_fn state ctx (args : int array) =
  let ino, len, off = read_iodesc ctx args.(0) in
  with_ino state ino (fun slot e ->
      let n = cluster_io state ctx e ~buf:args.(1) ~len ~off ~write:true in
      if off + n > e.size then begin
        e.size <- off + n;
        flush_root_slot state slot
      end;
      n)

let size_fn state _ctx (args : int array) = with_ino state args.(0) (fun _ e -> e.size)

let truncate_fn state ctx (args : int array) =
  with_ino state args.(0) (fun slot e ->
      let new_size = args.(1) in
      if new_size < e.size then begin
        let keep = (new_size + cluster_size - 1) / cluster_size in
        if keep = 0 then begin
          free_chain state e.first;
          e.first <- 0
        end
        else begin
          (* cut the chain after [keep] clusters *)
          let rec cut c i =
            if i = keep - 1 then begin
              let tail = state.fat.(c) in
              state.fat.(c) <- eoc;
              flush_fat_entry state c;
              free_chain state tail
            end
            else cut state.fat.(c) (i + 1)
          in
          if e.first <> 0 then cut e.first 0;
          (* zero the tail of the boundary cluster on disk so a later
             extension reads zeroes (POSIX truncate semantics) *)
          let coff = new_size mod cluster_size in
          if coff > 0 && e.first <> 0 then begin
            let c = chain_at state e ~off:(new_size - 1) ~grow:false in
            if c <> 0 then begin
              read_sectors state ~sector:(cluster_sector state c) ~n:sectors_per_cluster
                ~into:state.cluster_buf;
              Api.memset ctx (state.cluster_buf + coff) (cluster_size - coff) '\000';
              write_sectors state ~sector:(cluster_sector state c) ~n:sectors_per_cluster
                ~from:state.cluster_buf
            end
          end
        end
      end;
      e.size <- new_size;
      flush_root_slot state slot;
      Sysdefs.ok)

let fsync_fn _state ctx (_args : int array) =
  (* metadata is write-through; charge the device flush *)
  Hw.Cost.charge (Monitor.cost ctx.Monitor.mon) Sysdefs.fsync_cycles;
  Sysdefs.ok

let unlink_fn state ctx (args : int array) =
  match find_slot state (read_name ctx args.(0) args.(1)) with
  | None -> Sysdefs.enoent
  | Some slot ->
      let e = state.root.(slot) in
      free_chain state e.first;
      e.used <- false;
      e.first <- 0;
      e.size <- 0;
      flush_root_slot state slot;
      Sysdefs.ok

let rename_fn state ctx (args : int array) =
  let old_name = read_name ctx args.(0) args.(1) in
  let new_name = read_name ctx args.(2) args.(3) in
  match find_slot state old_name with
  | None -> Sysdefs.enoent
  | Some slot ->
      (match find_slot state new_name with
      | Some target when target <> slot ->
          let te = state.root.(target) in
          free_chain state te.first;
          te.used <- false;
          flush_root_slot state target
      | _ -> ());
      state.root.(slot).name <- new_name;
      flush_root_slot state slot;
      Sysdefs.ok

let init state ctx =
  state.ctx <- Some ctx;
  state.staging <- Api.malloc_page_aligned ctx Hw.Addr.page_size;
  state.cluster_buf <- Api.malloc_page_aligned ctx cluster_size;
  (* standing windows: BLKDEV reads/fills the staging buffer *)
  let blk = Api.cid_of ctx "BLKDEV" in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:state.staging ~size:Hw.Addr.page_size;
  Api.window_open ctx wid blk;
  mount state;
  ignore (Api.call ctx "vfs_register_backend" [| 2 |])

let make () =
  let state =
    {
      ctx = None;
      staging = 0;
      cluster_buf = 0;
      nclusters = 0;
      fat = [||];
      root = [||];
      fat_start = 1;
      root_start = 0;
      data_start = 0;
    }
  in
  let comp =
    Builder.component "UKFAT" ~code_ops:1024 ~heap_pages:8 ~stack_pages:4 ~init:(init state)
      ~exports:
        [
          { Monitor.sym = "fatfs_lookup"; fn = lookup_fn state; stack_bytes = 0 };
          { Monitor.sym = "fatfs_create"; fn = create_fn state; stack_bytes = 0 };
          { Monitor.sym = "fatfs_pread"; fn = pread_fn state; stack_bytes = 0 };
          { Monitor.sym = "fatfs_pwrite"; fn = pwrite_fn state; stack_bytes = 0 };
          { Monitor.sym = "fatfs_size"; fn = size_fn state; stack_bytes = 0 };
          { Monitor.sym = "fatfs_truncate"; fn = truncate_fn state; stack_bytes = 0 };
          { Monitor.sym = "fatfs_fsync"; fn = fsync_fn state; stack_bytes = 0 };
          { Monitor.sym = "fatfs_unlink"; fn = unlink_fn state; stack_bytes = 0 };
          { Monitor.sym = "fatfs_rename"; fn = rename_fn state; stack_bytes = 16 };
        ]
  in
  (state, comp)

let file_count state = Array.fold_left (fun acc e -> if e.used then acc + 1 else acc) 0 state.root
let free_clusters state = Array.fold_left (fun acc v -> if v = 0 then acc + 1 else acc) 0 state.fat
