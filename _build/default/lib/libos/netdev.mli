(** The NETDEV component: a ring-buffer network device.

    Device-side, frames pass through ring slots owned by the NETDEV
    cubicle; callers exchange frame payloads with NETDEV through
    checked copies (so the caller must window its frame buffers to
    NETDEV). Host-side, a bridge injects and collects raw frames with
    DMA-like privileged access, standing in for the wire. Each frame
    movement charges {!Sysdefs.nic_frame_cycles}. *)

type state

val make : unit -> state * Cubicle.Builder.component
(** Exports: [netdev_tx(buf,len)] → 0, [netdev_rx(buf,maxlen)] →
    received length or 0 when no frame is pending. *)

(** {1 Host bridge (the wire; trusted, outside the cubicle system)} *)

val host_inject : state -> bytes -> unit
(** Queue a frame for the device to receive. *)

val host_collect : state -> bytes list
(** Drain all frames the device has transmitted (oldest first). *)

val tx_frames : state -> int
val rx_frames : state -> int
