lib/libos/ramfs.ml: Api Array Builder Cubicle Hashtbl Hw Int64 Monitor Sysdefs
