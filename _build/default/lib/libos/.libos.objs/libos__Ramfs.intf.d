lib/libos/ramfs.mli: Cubicle
