lib/libos/sched.mli: Cubicle
