lib/libos/boot.mli: Blkdev Cubicle Fatfs Lwip Netdev Plat Ramfs
