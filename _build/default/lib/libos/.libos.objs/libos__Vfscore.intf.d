lib/libos/vfscore.mli: Cubicle
