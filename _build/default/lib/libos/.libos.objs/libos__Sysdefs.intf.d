lib/libos/sysdefs.mli:
