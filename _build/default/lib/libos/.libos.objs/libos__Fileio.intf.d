lib/libos/fileio.mli: Cubicle
