lib/libos/sched.ml: Cubicle Effect Fun Monitor Queue Types
