lib/libos/vfscore.ml: Api Array Builder Cubicle Hashtbl Hw Int64 Mm Monitor Sysdefs Types
