lib/libos/libc.mli: Cubicle
