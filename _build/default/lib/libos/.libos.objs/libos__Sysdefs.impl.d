lib/libos/sysdefs.ml:
