lib/libos/alloc_comp.ml: Array Builder Cubicle Mm Monitor
