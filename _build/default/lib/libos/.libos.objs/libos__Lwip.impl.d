lib/libos/lwip.ml: Api Array Buffer Builder Bytes Cubicle Hashtbl Hw Int32 Mm Monitor Printf Queue String Sysdefs Types
