lib/libos/boot.ml: Alloc_comp Blkdev Builder Cubicle Fatfs Fileio Libc List Lwip Monitor Netdev Plat Ramfs Time_comp Types Vfscore
