lib/libos/netdev.mli: Cubicle
