lib/libos/alloc_comp.mli: Cubicle
