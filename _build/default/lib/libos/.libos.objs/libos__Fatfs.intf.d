lib/libos/fatfs.mli: Cubicle
