lib/libos/plat.ml: Array Buffer Builder Char Cubicle Monitor
