lib/libos/time_comp.mli: Cubicle
