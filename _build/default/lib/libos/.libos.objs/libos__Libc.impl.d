lib/libos/libc.ml: Api Array Builder Char Cubicle Monitor
