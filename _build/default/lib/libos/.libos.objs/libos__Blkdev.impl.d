lib/libos/blkdev.ml: Api Array Builder Bytes Cubicle Hw Mm Monitor Sysdefs
