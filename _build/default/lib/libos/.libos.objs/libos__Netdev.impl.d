lib/libos/netdev.ml: Api Array Builder Bytes Cubicle Hw List Mm Monitor Queue Sysdefs
