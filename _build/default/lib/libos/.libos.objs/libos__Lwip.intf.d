lib/libos/lwip.mli: Cubicle
