lib/libos/plat.mli: Cubicle
