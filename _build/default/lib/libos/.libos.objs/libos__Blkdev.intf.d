lib/libos/blkdev.mli: Cubicle
