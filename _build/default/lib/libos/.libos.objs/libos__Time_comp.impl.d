lib/libos/time_comp.ml: Builder Cubicle Hw Monitor
