lib/libos/fileio.ml: Api Cubicle Fun Mm Monitor String Types
