lib/libos/fatfs.ml: Api Array Blkdev Builder Cubicle Hw Int64 Mm Monitor String Sysdefs Types
