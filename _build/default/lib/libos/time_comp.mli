(** The TIME component: monotonic clock derived from the simulated
    cycle counter (2.2 GHz, matching the paper's testbed). *)

val component : unit -> Cubicle.Builder.component
(** Exports: [uk_time_ns()] → monotonic nanoseconds,
    [uk_time_cycles()] → raw cycle count. *)
