(** The LIBC shared cubicle.

    Little state, used by everyone: deployed as a {e shared} cubicle,
    so its routines execute with the privileges, stack and heap of the
    calling cubicle and never transit the monitor (paper §3 step ❹).
    [memcpy] here is the function that performs the actual data
    movement in the Figure 2 write path. *)

val component : unit -> Cubicle.Builder.component
(** Exports: [memcpy(dst,src,len)] (returns [dst]), [memset(p,len,c)],
    [memcmp(a,b,len)], [strnlen(p,max)]. *)
