(** The ALLOC component: the system-wide, coarse-grained (page
    granular) memory allocator. Pages are assigned to the {e calling}
    cubicle — ownership information the trampoline records — so the
    caller can window them out afterwards. *)

val component : unit -> Cubicle.Builder.component
(** Exports: [uk_palloc(npages)] → base address owned by the caller,
    [uk_pfree(base)]. *)
