lib/httpd/http.mli:
