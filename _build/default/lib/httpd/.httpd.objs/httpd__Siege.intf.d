lib/httpd/siege.mli: Libos Server
