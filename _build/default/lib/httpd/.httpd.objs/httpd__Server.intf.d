lib/httpd/server.mli: Cubicle Libos
