lib/httpd/siege.ml: Buffer Cubicle Hw Libos List Monitor Option Printf Server String Types
