lib/httpd/server.ml: Api Buffer Builder Cubicle Fun Http Libos List Mm Monitor String Types
