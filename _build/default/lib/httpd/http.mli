(** HTTP/1.0 request parsing and response formatting (host-side string
    manipulation; the server component moves the actual bytes through
    simulated memory). *)

type request = { meth : string; path : string; keep_alive : bool }

val parse_request : string -> request option
(** Accepts "GET|HEAD /path HTTP/1.x\r\n..." plus headers; [None] on
    malformed input. [keep_alive] reflects the Connection header
    (HTTP/1.0 semantics: close unless keep-alive is requested). *)

val response_header :
  ?content_type:string -> ?keep_alive:bool -> status:int -> content_length:int -> unit -> string

val status_line : int -> string

val mime_type : string -> string
(** By file extension: text/html, text/plain, text/css,
    application/javascript, image/png, application/octet-stream. *)
