(** A siege-like HTTP load generator (host side).

    Speaks the LWIP-lite frame protocol directly against the NETDEV
    host bridge, requests files, reassembles responses and reports
    download latency in simulated milliseconds — the measurement of the
    paper's Figure 7. Latency includes the fixed per-request client
    overhead {!Libos.Sysdefs.request_overhead_cycles} (connection setup
    and client think time, the ~5 ms floor of the figure). *)

type fetch_result = {
  status : int;
  body : string;
  cycles : int;  (** simulated cycles spent serving the request *)
  latency_ms : float;
}

type t

val make : Libos.Boot.system -> Server.t -> t

val fetch : t -> string -> fetch_result
(** Request one path; raises {!Cubicle.Types.Error} if the server stops
    making progress before the response completes. *)

val fetch_pipelined : t -> string list -> (int * string) list
(** Several requests over one keep-alive connection; (status, body) in
    request order. *)

val fetch_head : t -> string -> string
(** A HEAD request; returns the raw response header block. *)

val latency_for_sizes :
  t -> sizes:int list -> ?repeats:int -> populate:(int -> string) -> unit -> (int * float * float) list
(** For each size: create a file of that size (path from [populate]),
    fetch it [repeats] times, and return
    (size, baseline-comparable median latency ms, mean ms). *)
