type request = { meth : string; path : string; keep_alive : bool }

let find_header raw name =
  let lower = String.lowercase_ascii raw in
  let needle = String.lowercase_ascii name ^ ":" in
  let n = String.length needle in
  let rec go i =
    if i + n > String.length lower then None
    else if String.sub lower i n = needle then begin
      let vstart = i + n in
      let vend =
        match String.index_from_opt raw vstart '\r' with
        | Some e -> e
        | None -> String.length raw
      in
      Some (String.trim (String.sub raw vstart (vend - vstart)))
    end
    else go (i + 1)
  in
  go 0

let parse_request raw =
  match String.index_opt raw '\r' with
  | None -> None
  | Some eol -> (
      let line = String.sub raw 0 eol in
      match String.split_on_char ' ' line with
      | [ meth; path; version ]
        when (meth = "GET" || meth = "HEAD")
             && String.length path > 0
             && path.[0] = '/'
             && (version = "HTTP/1.0" || version = "HTTP/1.1") ->
          let keep_alive =
            match find_header raw "connection" with
            | Some v -> String.lowercase_ascii v = "keep-alive"
            | None -> version = "HTTP/1.1" (* 1.1 defaults to persistent *)
          in
          Some { meth; path; keep_alive }
      | _ -> None)

let status_line = function
  | 200 -> "200 OK"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | 500 -> "500 Internal Server Error"
  | code -> Printf.sprintf "%d Unknown" code

let mime_type path =
  let ext =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> ""
  in
  match String.lowercase_ascii ext with
  | "html" | "htm" -> "text/html"
  | "txt" -> "text/plain"
  | "css" -> "text/css"
  | "js" -> "application/javascript"
  | "png" -> "image/png"
  | "json" -> "application/json"
  | _ -> "application/octet-stream"

let response_header ?(content_type = "application/octet-stream") ?(keep_alive = false)
    ~status ~content_length () =
  Printf.sprintf
    "HTTP/1.0 %s\r\nServer: cubicle-httpd\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n"
    (status_line status) content_type content_length
    (if keep_alive then "keep-alive" else "close")
