(** The NGINX-like web server component: serves static files from the
    VFS over LWIP connections.

    The request path per connection is the paper's Figure 5 topology:
    NGINX ↔ LWIP ↔ NETDEV for the byte stream, NGINX ↔ VFSCORE ↔ RAMFS
    for file data, with ALLOC and TIME on the side. File data is read
    in 32 KiB chunks into a server-owned buffer that is windowed to
    VFSCORE/RAMFS for the read and to LWIP for the send. *)

type t

val component : unit -> Cubicle.Builder.component
(** The NGINX cubicle (named "NGINX"); load it with the net stack. *)

val start : Libos.Boot.system -> t
(** Resolve cids, allocate buffers, open the listening socket. Must run
    after boot. *)

val poll : t -> int
(** Accept pending connections and serve every complete request
    currently buffered; returns the number of responses sent. Drive
    this in a loop from the host (it stands in for the server's main
    loop). *)

val requests_served : t -> int
val chunk_size : int
