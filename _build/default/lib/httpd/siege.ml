open Cubicle

type fetch_result = { status : int; body : string; cycles : int; latency_ms : float }

type t = {
  sys : Libos.Boot.system;
  server : Server.t;
  netdev : Libos.Netdev.state;
  mutable next_conn : int;
}

let make sys server =
  match sys.Libos.Boot.netdev with
  | None -> Types.error "siege: system has no network device"
  | Some netdev -> { sys; server; netdev; next_conn = 1 }

let find_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = if i + n > h then None else if String.sub haystack i n = needle then Some i else go (i + 1) in
  go 0

(* [None] while the first response in [raw] is still incomplete; raises
   on malformed input. Returns the status, body and bytes consumed, so
   pipelined responses can be parsed in sequence. *)
let parse_one_response raw =
  if String.length raw < 12 then None
  else begin
    let status =
      try int_of_string (String.sub raw 9 3)
      with _ -> Types.error "siege: bad status line %S" (String.sub raw 0 12)
    in
    match find_substring raw "\r\n\r\n" with
    | None -> None
    | Some hdr_end -> (
        let body_start = hdr_end + 4 in
        let headers = String.lowercase_ascii (String.sub raw 0 body_start) in
        match find_substring headers "content-length:" with
        | None -> Types.error "siege: no content-length header"
        | Some ki ->
            let vstart = ki + String.length "content-length:" in
            let vend =
              match String.index_from_opt raw vstart '\r' with
              | Some e -> e
              | None -> String.length raw
            in
            let len = int_of_string (String.trim (String.sub raw vstart (vend - vstart))) in
            let have = String.length raw - body_start in
            if have >= len then
              Some (status, String.sub raw body_start len, body_start + len)
            else None)
  end

let parse_response raw =
  Option.map (fun (status, body, _) -> (status, body)) (parse_one_response raw)

let fetch t path =
  let conn = t.next_conn in
  t.next_conn <- conn + 1;
  let cost = Monitor.cost t.sys.Libos.Boot.mon in
  let c0 = Hw.Cost.cycles cost in
  Libos.Netdev.host_inject t.netdev (Libos.Lwip.Frame.encode ~conn ~kind:Syn ~payload:"" ());
  Libos.Netdev.host_inject t.netdev
    (Libos.Lwip.Frame.encode ~conn ~kind:Data
       ~payload:(Printf.sprintf "GET %s HTTP/1.0\r\nHost: sim\r\n\r\n" path)
       ());
  let reasm = Libos.Lwip.Reassembly.create () in
  let response = Buffer.create 1024 in
  let finished = ref None in
  let stalled = ref 0 in
  while !finished = None do
    let served = Server.poll t.server in
    let frames = Libos.Netdev.host_collect t.netdev in
    List.iter
      (fun f ->
        let c, kind, seq, payload = Libos.Lwip.Frame.decode f in
        if c = conn && kind = Libos.Lwip.Frame.Data then
          Libos.Lwip.Reassembly.push reasm ~seq payload)
      frames;
    Buffer.add_string response (Libos.Lwip.Reassembly.pop_ready reasm);
    (match parse_response (Buffer.contents response) with
    | Some (status, body) -> finished := Some (status, body)
    | None -> ());
    if served = 0 && frames = [] then begin
      incr stalled;
      if !stalled > 3 then
        Types.error "siege: server stalled fetching %s (%d bytes so far)" path
          (Buffer.length response)
    end
    else stalled := 0
  done;
  let status, body = Option.get !finished in
  let cycles = Hw.Cost.cycles cost - c0 in
  {
    status;
    body;
    cycles;
    latency_ms = Hw.Cost.to_ms (cycles + Libos.Sysdefs.request_overhead_cycles);
  }

(* Send several requests over one keep-alive connection and collect the
   responses in order. *)
let fetch_pipelined t paths =
  let conn = t.next_conn in
  t.next_conn <- conn + 1;
  Libos.Netdev.host_inject t.netdev (Libos.Lwip.Frame.encode ~conn ~kind:Syn ~payload:"" ());
  List.iteri
    (fun i path ->
      let last = i = List.length paths - 1 in
      let connection = if last then "close" else "keep-alive" in
      Libos.Netdev.host_inject t.netdev
        (Libos.Lwip.Frame.encode ~seq:i ~conn ~kind:Data
           ~payload:
             (Printf.sprintf "GET %s HTTP/1.0\r\nHost: sim\r\nConnection: %s\r\n\r\n"
                path connection)
           ()))
    paths;
  let reasm = Libos.Lwip.Reassembly.create () in
  let response = Buffer.create 1024 in
  let results = ref [] in
  let pending = ref (List.length paths) in
  let stalled = ref 0 in
  while !pending > 0 do
    let served = Server.poll t.server in
    let frames = Libos.Netdev.host_collect t.netdev in
    List.iter
      (fun f ->
        let c, kind, seq, payload = Libos.Lwip.Frame.decode f in
        if c = conn && kind = Libos.Lwip.Frame.Data then
          Libos.Lwip.Reassembly.push reasm ~seq payload)
      frames;
    Buffer.add_string response (Libos.Lwip.Reassembly.pop_ready reasm);
    let rec consume () =
      match parse_one_response (Buffer.contents response) with
      | Some (status, body, consumed) ->
          results := (status, body) :: !results;
          decr pending;
          let rest = Buffer.contents response in
          Buffer.clear response;
          Buffer.add_string response (String.sub rest consumed (String.length rest - consumed));
          if !pending > 0 then consume ()
      | None -> ()
    in
    consume ();
    if served = 0 && frames = [] && !pending > 0 then begin
      incr stalled;
      if !stalled > 3 then Types.error "siege: pipelined fetch stalled (%d pending)" !pending
    end
    else stalled := 0
  done;
  List.rev !results

let fetch_head t path =
  let conn = t.next_conn in
  t.next_conn <- conn + 1;
  Libos.Netdev.host_inject t.netdev (Libos.Lwip.Frame.encode ~conn ~kind:Syn ~payload:"" ());
  Libos.Netdev.host_inject t.netdev
    (Libos.Lwip.Frame.encode ~conn ~kind:Data
       ~payload:(Printf.sprintf "HEAD %s HTTP/1.0\r\nHost: sim\r\n\r\n" path)
       ());
  let response = Buffer.create 256 in
  let finished = ref None in
  let stalled = ref 0 in
  while !finished = None do
    let served = Server.poll t.server in
    let frames = Libos.Netdev.host_collect t.netdev in
    List.iter
      (fun f ->
        let c, kind, _seq, payload = Libos.Lwip.Frame.decode f in
        if c = conn && kind = Libos.Lwip.Frame.Data then Buffer.add_string response payload)
      frames;
    (* a HEAD response is just the header block *)
    (match find_substring (Buffer.contents response) "\r\n\r\n" with
    | Some _ -> finished := Some (Buffer.contents response)
    | None -> ());
    if served = 0 && frames = [] && !finished = None then begin
      incr stalled;
      if !stalled > 3 then Types.error "siege: HEAD stalled"
    end
    else stalled := 0
  done;
  Option.get !finished

let latency_for_sizes t ~sizes ?(repeats = 3) ~populate () =
  List.map
    (fun size ->
      let path = populate size in
      let samples = List.init repeats (fun _ -> (fetch t path).latency_ms) in
      let sorted = List.sort compare samples in
      let median = List.nth sorted (repeats / 2) in
      let mean = List.fold_left ( +. ) 0. samples /. float_of_int repeats in
      (size, median, mean))
    sizes
