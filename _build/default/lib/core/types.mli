(** Shared identifiers and enumerations of the CubicleOS core. *)

type cid = int
(** Cubicle identifier; assigned densely at load time, known at link
    time (paper §5.3: O(1) bitmask indexing relies on this). *)

type wid = int
(** Window identifier, unique within its owning cubicle. *)

type kind =
  | Isolated  (** own MPK tag, entered only via trampolines *)
  | Shared
      (** e.g. LIBC: static data shared with everyone; calls execute
          with the caller's privileges, stack and heap *)
  | Trusted  (** monitor and other TCB cubicles: access to all tags *)

type protection =
  | None_  (** baseline Unikraft: plain calls, no isolation *)
  | Trampolines  (** "CubicleOS w/o MPK": calls + stack switches only *)
  | Mpk  (** "CubicleOS w/o ACLs": MPK on, all windows open *)
  | Full  (** complete CubicleOS *)

exception Error of string
(** Misuse of the CubicleOS API (not a memory fault). *)

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val kind_to_string : kind -> string
val protection_to_string : protection -> string
