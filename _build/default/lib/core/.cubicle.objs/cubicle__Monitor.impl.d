lib/core/monitor.ml: Array Bitset Bytes Fun Hashtbl Hw List Logs Mm Stats Types Window
