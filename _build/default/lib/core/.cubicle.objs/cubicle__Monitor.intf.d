lib/core/monitor.mli: Hw Mm Stats Types Window
