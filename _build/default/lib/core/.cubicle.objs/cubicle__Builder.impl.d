lib/core/builder.ml: List Loader Monitor Trampoline Types
