lib/core/window.mli: Bitset Mm Types
