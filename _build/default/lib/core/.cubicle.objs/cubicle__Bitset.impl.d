lib/core/bitset.ml: Printf
