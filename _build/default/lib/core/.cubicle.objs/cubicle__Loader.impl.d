lib/core/loader.ml: Bytes Hw Mm Monitor Types
