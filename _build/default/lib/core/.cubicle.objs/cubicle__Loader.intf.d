lib/core/loader.mli: Hw Monitor Types
