lib/core/bitset.mli:
