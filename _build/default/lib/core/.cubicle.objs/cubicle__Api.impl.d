lib/core/api.ml: Bytes Hw Monitor
