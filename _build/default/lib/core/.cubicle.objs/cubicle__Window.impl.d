lib/core/window.ml: Bitset List Mm Types
