lib/core/trampoline.ml: Bytes Fun Hashtbl Hw List Mm Monitor Types
