lib/core/api.mli: Mm Monitor Types
