lib/core/builder.mli: Monitor Trampoline Types
