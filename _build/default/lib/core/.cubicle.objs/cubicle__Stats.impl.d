lib/core/stats.ml: Hashtbl List Option Types
