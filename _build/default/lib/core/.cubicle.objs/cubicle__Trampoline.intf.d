lib/core/trampoline.mli: Monitor Types
