type t = {
  mutable faults : int;
  mutable retags : int;
  mutable window_ops : int;
  mutable rejected : int;
  mutable shared : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable tlb_flushes : int;
  mutable tlb_invalidations : int;
  edges : (Types.cid * Types.cid, int) Hashtbl.t;
  syms : (string, int) Hashtbl.t;
}

type snapshot = (Types.cid * Types.cid, int) Hashtbl.t

let create () =
  {
    faults = 0;
    retags = 0;
    window_ops = 0;
    rejected = 0;
    shared = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    tlb_flushes = 0;
    tlb_invalidations = 0;
    edges = Hashtbl.create 64;
    syms = Hashtbl.create 64;
  }

let reset t =
  t.faults <- 0;
  t.retags <- 0;
  t.window_ops <- 0;
  t.rejected <- 0;
  t.shared <- 0;
  t.tlb_hits <- 0;
  t.tlb_misses <- 0;
  t.tlb_flushes <- 0;
  t.tlb_invalidations <- 0;
  Hashtbl.reset t.edges;
  Hashtbl.reset t.syms

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let count_call t ~caller ~callee ~sym =
  bump t.edges (caller, callee);
  bump t.syms sym

let count_shared_call t ~caller:_ ~sym =
  t.shared <- t.shared + 1;
  bump t.syms sym

let count_fault t = t.faults <- t.faults + 1
let count_retag t = t.retags <- t.retags + 1
let count_window_op t = t.window_ops <- t.window_ops + 1
let count_rejected t = t.rejected <- t.rejected + 1

let set_tlb_counters t ~hits ~misses ~flushes ~invalidations =
  t.tlb_hits <- hits;
  t.tlb_misses <- misses;
  t.tlb_flushes <- flushes;
  t.tlb_invalidations <- invalidations

let tlb_hits t = t.tlb_hits
let tlb_misses t = t.tlb_misses
let tlb_flushes t = t.tlb_flushes
let tlb_invalidations t = t.tlb_invalidations

let tlb_hit_rate t =
  let total = t.tlb_hits + t.tlb_misses in
  if total = 0 then 0. else float_of_int t.tlb_hits /. float_of_int total

let calls_between t ~caller ~callee =
  Option.value ~default:0 (Hashtbl.find_opt t.edges (caller, callee))

let calls_into t callee =
  Hashtbl.fold (fun (_, ce) n acc -> if ce = callee then acc + n else acc) t.edges 0

let calls_to_sym t sym = Option.value ~default:0 (Hashtbl.find_opt t.syms sym)
let total_calls t = Hashtbl.fold (fun _ n acc -> acc + n) t.edges 0
let shared_calls t = t.shared
let faults t = t.faults
let retags t = t.retags
let window_ops t = t.window_ops
let rejected t = t.rejected

let edges t =
  Hashtbl.fold (fun e n acc -> (e, n) :: acc) t.edges []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let snapshot t = Hashtbl.copy t.edges

let diff_edges t ~since =
  edges t
  |> List.filter_map (fun (e, n) ->
         let before = Option.value ~default:0 (Hashtbl.find_opt since e) in
         if n - before > 0 then Some (e, n - before) else None)
