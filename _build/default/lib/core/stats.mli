(** Runtime counters used by the evaluation: cross-cubicle call counts
    per edge (Figures 5 and 8), trap-and-map activity, window
    operations. *)

type t

val create : unit -> t
val reset : t -> unit

val count_call : t -> caller:Types.cid -> callee:Types.cid -> sym:string -> unit
val count_shared_call : t -> caller:Types.cid -> sym:string -> unit
val count_fault : t -> unit
val count_retag : t -> unit
val count_window_op : t -> unit
val count_rejected : t -> unit
(** CFI / isolation violations that were caught. *)

val set_tlb_counters : t -> hits:int -> misses:int -> flushes:int -> invalidations:int -> unit
(** Install the machine's software-TLB counters ({!Hw.Tlb}); the
    monitor syncs these whenever its stats are read, so they reflect
    the hardware state at observation time rather than accumulating
    independently. *)

val tlb_hits : t -> int
val tlb_misses : t -> int
val tlb_flushes : t -> int
val tlb_invalidations : t -> int

val tlb_hit_rate : t -> float
(** Hits over lookups, in [0,1]; 0 when the TLB was never consulted. *)

val calls_between : t -> caller:Types.cid -> callee:Types.cid -> int
val calls_into : t -> Types.cid -> int
val calls_to_sym : t -> string -> int
val total_calls : t -> int
val shared_calls : t -> int
val faults : t -> int
val retags : t -> int
val window_ops : t -> int
val rejected : t -> int

val edges : t -> ((Types.cid * Types.cid) * int) list
(** All (caller, callee) edges with their call counts, sorted by count
    descending — the annotations on the paper's Figures 5 and 8. *)

type snapshot

val snapshot : t -> snapshot
val diff_edges : t -> since:snapshot -> ((Types.cid * Types.cid) * int) list
(** Edge counts accumulated since the snapshot (the paper counts calls
    "during benchmark measurement time" for Fig. 5). *)
