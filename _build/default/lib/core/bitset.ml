type t = { mutable bits : int; universe : int }

let empty n =
  if n < 0 || n > 62 then invalid_arg "Bitset.empty: universe must be 0..62";
  { bits = 0; universe = n }

let check t i =
  if i < 0 || i >= t.universe then
    invalid_arg (Printf.sprintf "Bitset: element %d outside universe %d" i t.universe)

let add t i =
  check t i;
  t.bits <- t.bits lor (1 lsl i)

let remove t i =
  check t i;
  t.bits <- t.bits land lnot (1 lsl i)

let mem t i =
  check t i;
  t.bits land (1 lsl i) <> 0

let clear t = t.bits <- 0
let is_empty t = t.bits = 0

let cardinal t =
  let rec count b acc = if b = 0 then acc else count (b lsr 1) (acc + (b land 1)) in
  count t.bits 0

let elements t =
  let acc = ref [] in
  for i = t.universe - 1 downto 0 do
    if t.bits land (1 lsl i) <> 0 then acc := i :: !acc
  done;
  !acc

let universe t = t.universe
