type image = {
  img_name : string;
  code : bytes;
  rodata : bytes;
  data : bytes;
  signed : bool;
}

type loaded = {
  cid : Types.cid;
  code_base : int;
  code_pages : int;
  rodata_base : int;
  data_base : int;
}

exception Rejected of string * Hw.Instr.forbidden list

let scan img =
  if not img.signed then
    match Hw.Instr.scan_forbidden img.code with
    | [] -> ()
    | hits -> raise (Rejected (img.img_name, hits))

(* Copy a blob into freshly mapped pages owned by the cubicle. The blob
   is written with monitor privileges before the final (possibly
   execute-only) permission is applied. *)
let map_blob mon cid blob ~kind ~perm =
  let len = Bytes.length blob in
  if len = 0 then 0
  else begin
    let npages = Hw.Addr.pages_for len in
    let base =
      Monitor.alloc_owned_pages mon cid npages ~kind ~perm:Hw.Page_table.perm_rw
    in
    let cpu = Monitor.cpu mon in
    Hw.Cpu.priv_write_bytes cpu base blob;
    let first = Hw.Addr.page_of base in
    for p = first to first + npages - 1 do
      Hw.Page_table.set_perm (Hw.Cpu.page_table cpu) p perm
    done;
    base
  end

let load mon img ~kind ~heap_pages ~stack_pages ~exports =
  scan img;
  let cid = Monitor.create_cubicle mon ~name:img.img_name ~kind ~heap_pages ~stack_pages in
  (* Code pages are execute-only: CubicleOS never lets a cubicle read or
     change the permissions of code (§5.4 rule 1). *)
  let code_base = map_blob mon cid img.code ~kind:Mm.Page_meta.Code ~perm:Hw.Page_table.perm_x in
  let rodata_base = map_blob mon cid img.rodata ~kind:Mm.Page_meta.Global ~perm:Hw.Page_table.perm_r in
  let data_base = map_blob mon cid img.data ~kind:Mm.Page_meta.Global ~perm:Hw.Page_table.perm_rw in
  Monitor.register_exports mon cid exports;
  {
    cid;
    code_base;
    code_pages = Hw.Addr.pages_for (Bytes.length img.code);
    rodata_base;
    data_base;
  }

let image_of_ops ~name ?(data_bytes = 256) ?(ops = 256) () =
  {
    img_name = name;
    code = Hw.Instr.synth_code ~ops name;
    rodata = Bytes.empty;
    data = Bytes.make data_bytes '\000';
    signed = false;
  }
