(** The cubicle loader: the only path by which code enters the system
    (paper §5.4).

    It enforces two integrity properties on untrusted images before
    mapping them executable: no [syscall] and no [wrpkru] byte
    sequences anywhere in the code (scanned at every byte offset), and
    execute-only code pages whose permissions cubicles can never change
    afterwards. Images generated and signed by the trusted builder
    (trampoline thunks) are exempt from the scan. *)

type image = {
  img_name : string;
  code : bytes;
  rodata : bytes;  (** read-only globals *)
  data : bytes;  (** read-write globals *)
  signed : bool;  (** true only for trusted-builder output *)
}

type loaded = {
  cid : Types.cid;
  code_base : int;
  code_pages : int;
  rodata_base : int;
  data_base : int;
}

exception Rejected of string * Hw.Instr.forbidden list
(** Image name and the offending byte offsets. *)

val scan : image -> unit
(** Raises {!Rejected} if the image contains forbidden sequences. *)

val load :
  Monitor.t ->
  image ->
  kind:Types.kind ->
  heap_pages:int ->
  stack_pages:int ->
  exports:Monitor.export_spec list ->
  loaded
(** Scan (unless signed), create the cubicle, map code pages
    execute-only, rodata read-only, data read-write, populate the page
    metadata map, and register the exports so cross-cubicle calls
    resolve through trampolines. *)

val image_of_ops : name:string -> ?data_bytes:int -> ?ops:int -> unit -> image
(** Convenience: an unsigned image with synthesized (safe) code. *)
