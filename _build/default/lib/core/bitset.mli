(** Cubicle bitmasks. Each window descriptor stores the set of cubicles
    it is open for as a bitmask whose size is fixed at deployment time
    (the number of cubicles is known at link time; paper §5.3). *)

type t

val empty : int -> t
(** [empty n] is the empty set over a universe of [n] cubicles. *)

val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit
val is_empty : t -> bool
val cardinal : t -> int
val elements : t -> int list
val universe : t -> int
