type cid = int
type wid = int
type kind = Isolated | Shared | Trusted
type protection = None_ | Trampolines | Mpk | Full

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let kind_to_string = function
  | Isolated -> "isolated"
  | Shared -> "shared"
  | Trusted -> "trusted"

let protection_to_string = function
  | None_ -> "baseline"
  | Trampolines -> "w/o MPK"
  | Mpk -> "w/o ACLs"
  | Full -> "full"
