lib/ukernel/compose.mli: Cubicle Kernel Minidb
