lib/ukernel/rpc.ml: Api Bytes Cubicle Hw Kernel Monitor
