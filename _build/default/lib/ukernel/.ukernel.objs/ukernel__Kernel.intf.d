lib/ukernel/kernel.mli:
