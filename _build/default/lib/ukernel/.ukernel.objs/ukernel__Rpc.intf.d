lib/ukernel/rpc.mli: Cubicle Kernel
