lib/ukernel/kernel.ml:
