lib/ukernel/compose.ml: Builder Bytes Cubicle Hashtbl Hw Kernel Libos List Minidb Monitor Rpc Types
