(** Cost models of the kernels the paper compares against (§6.5).

    Genode RPC on a given kernel costs: two kernel transitions for the
    call, two for the reply, plus Genode's session dispatch. The
    per-kernel constants are calibrated so that the Figure 10b
    slowdowns (the cost of separating RAMFS into its own component)
    land where the paper measured them: ~7.5x for SeL4, ~4.5x for
    Fiasco.OC, ~4.7x for NOVA, and far worse for Genode hosted on
    Linux, where each session crossing rides on SCs/sockets. The exact
    values and the calibration method are recorded in EXPERIMENTS.md. *)

type t = {
  name : string;
  rpc_cycles : int;  (** one full Genode RPC round trip *)
  signal_cycles : int;  (** one asynchronous signal delivery *)
}

val sel4 : t
val fiasco_oc : t
val nova : t
val linux : t
val all : t list
