(** Genode-style session RPC over a message buffer.

    The message-based interface of the paper's Figure 1b: arguments and
    data are marshalled into a shared message buffer, the kernel
    switches to the server, the dispatcher unmarshals and executes, and
    the reply travels back the same way. Every byte of payload is
    physically copied through a simulated-memory message page in each
    direction — the copy overhead that CubicleOS's windows avoid. *)

type t

val create : Cubicle.Monitor.ctx -> Kernel.t -> t
(** Allocates the session's message buffer page. *)

val kernel : t -> Kernel.t

val call : t -> payload:int -> (unit -> 'a) -> 'a
(** One RPC round trip: marshal [payload] bytes in, kernel switch,
    run the server-side body, marshal the reply out, switch back. *)

val signal : t -> unit
(** One asynchronous signal delivery (packet-stream acknowledgement). *)

val copy_in : t -> bytes -> unit
(** Stage host-side data through the message buffer (charged copy). *)

val copy_out : t -> int -> bytes
(** Read data back out of the message buffer (charged copy). *)

val buffer_addr : t -> int
val rpc_count : t -> int
