type t = { name : string; rpc_cycles : int; signal_cycles : int }

(* Calibrated against the paper's Figure 10b (see EXPERIMENTS.md):
   Genode's RPC on the three microkernels costs a few thousand cycles
   per round trip; hosted on Linux each crossing rides on host
   primitives and costs tens of thousands. SeL4's larger constant
   reflects the measured behaviour of the Genode/SeL4 combination in
   the paper (7.5x), not raw seL4 IPC latency. *)
let sel4 = { name = "SeL4"; rpc_cycles = 11_900; signal_cycles = 5_950 }
let fiasco_oc = { name = "Fiasco.OC"; rpc_cycles = 6_500; signal_cycles = 3_250 }
let nova = { name = "NOVA"; rpc_cycles = 7_000; signal_cycles = 3_500 }
let linux = { name = "Linux"; rpc_cycles = 36_000; signal_cycles = 18_000 }
let all = [ sel4; fiasco_oc; nova; linux ]
