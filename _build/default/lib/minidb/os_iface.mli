(** The OS interface the database engine runs on.

    The engine is written against this record so the same code runs on
    every deployment the paper evaluates:
    - {!cubicleos}: through {!Libos.Fileio} (windows + trampolines into
      VFSCORE/RAMFS) — all four protection levels;
    - {!linux}: a host-Linux model — an OCaml-side file table, with a
      syscall charge and the same checked data movement into the
      caller's buffers (the Figure 10a baseline);
    - the microkernel/Genode RPC variants live in [lib/ukernel]. *)

type t = {
  ctx : Cubicle.Monitor.ctx;  (** the application cubicle's context *)
  open_file : string -> create:bool -> int;
  close_file : int -> int;
  pread : fd:int -> buf:int -> len:int -> off:int -> int;
  pwrite : fd:int -> buf:int -> len:int -> off:int -> int;
  file_size : int -> int;
  truncate : fd:int -> size:int -> int;
  fsync : int -> int;
  unlink : string -> int;
  exists : string -> bool;
  rename : old_name:string -> new_name:string -> int;
}

val cubicleos : Libos.Fileio.t -> t

val linux : Cubicle.Monitor.ctx -> t
(** Fresh private file namespace per call. *)
