(** The speedtest1-shaped workload (paper §6.4, Figure 6).

    Thirty-one queries with the ids the paper plots. The two groups the
    paper identifies are reproduced structurally:
    - the {e light} group works on small, page-cache-resident tables or
      batches its writes into large transactions, so it reaches the OS
      interface rarely;
    - the {e heavy} group works on a table several times larger than
      the page cache, uses per-row transactions (journal + fsync per
      operation), or rebuilds indexes — it reaches the OS interface on
      nearly every step.

    The [n] parameter scales row counts (the benchmark's [--stat]
    analogue). All randomness is a deterministic LCG so runs are
    reproducible across configurations. *)

type group = Light | Heavy

type query = { id : int; name : string; group : group }

val queries : query list
(** In the order of the paper's Figure 6 x-axis. *)

type state

val prepare : Os_iface.t -> path:string -> n:int -> state
(** Open the database and run the schema/population queries' common
    setup (creates empty tables; queries 100/110 do the population). *)

val run : state -> query -> unit
(** Execute one query. Queries must run in list order the first time
    (later queries read data earlier ones created). *)

val finish : state -> unit

val run_all :
  Os_iface.t -> path:string -> n:int -> measure:(( unit -> unit) -> 'a) -> (query * 'a) list
(** Run the whole suite, applying [measure] around each query (e.g. to
    capture simulated cycles). *)
