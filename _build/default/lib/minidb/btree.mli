(** A B+tree over pager pages: 64-bit keys, string payloads (≤ 1 KiB),
    leaf chaining for range scans. Used for both table storage (key =
    rowid, payload = encoded record) and secondary indexes (key =
    composite of column value and rowid, payload = rowid).

    Deletion is lazy (no rebalancing): entries are removed from leaves,
    and emptied nodes are left in place — the strategy speedtest-style
    workloads tolerate well and a common simplification (documented in
    DESIGN.md). *)

type t

val create : Pager.t -> t
(** Allocates an empty root leaf. *)

val attach : Pager.t -> root:int -> t
(** Open an existing tree by root page number. *)

val root : t -> int
(** The current root page (persist it in the catalog; it changes when
    the root splits). *)

val max_payload : int

val insert : t -> key:int64 -> payload:string -> unit
(** Replaces the payload if the key exists. *)

val find : t -> int64 -> string option

val delete : t -> int64 -> bool
(** [true] if the key was present. *)

val iter_range : t -> lo:int64 -> hi:int64 -> (int64 -> string -> unit) -> unit
(** In key order over [lo, hi] inclusive. *)

val fold_range :
  t -> lo:int64 -> hi:int64 -> init:'a -> f:('a -> int64 -> string -> 'a) -> 'a

val count_range : t -> lo:int64 -> hi:int64 -> int
val iter_all : t -> (int64 -> string -> unit) -> unit
val min_key : t -> int64 option
val max_key : t -> int64 option
val depth : t -> int
