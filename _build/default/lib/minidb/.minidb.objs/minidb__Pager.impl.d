lib/minidb/pager.ml: Api Cubicle Fun Hashtbl List Os_iface Types
