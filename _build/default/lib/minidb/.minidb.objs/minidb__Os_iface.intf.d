lib/minidb/os_iface.mli: Cubicle Libos
