lib/minidb/btree.ml: Api Array Buffer Bytes Char Cubicle Int32 Int64 Pager String Types
