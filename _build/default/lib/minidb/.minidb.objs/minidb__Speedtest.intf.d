lib/minidb/speedtest.mli: Os_iface
