lib/minidb/record.ml: Buffer Char Format Int32 Int64 List Printf String
