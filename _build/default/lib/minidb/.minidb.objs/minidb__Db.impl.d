lib/minidb/db.ml: Api Btree Buffer Bytes Char Cubicle Format Int32 Int64 List Option Pager Record String Types
