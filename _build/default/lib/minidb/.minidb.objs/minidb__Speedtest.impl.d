lib/minidb/speedtest.ml: Api Char Cubicle Db Hashtbl Int64 List Monitor Option Pager Printf Record String Types
