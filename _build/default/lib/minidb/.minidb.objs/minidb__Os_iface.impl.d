lib/minidb/os_iface.ml: Bytes Cubicle Hashtbl Hw Libos Monitor
