lib/minidb/sql.ml: Buffer Cubicle Db Format Hashtbl Int64 List Printf Record String Types
