lib/minidb/db.mli: Os_iface Pager Record
