lib/minidb/pager.mli: Cubicle Os_iface
