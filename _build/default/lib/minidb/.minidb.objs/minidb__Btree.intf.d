lib/minidb/btree.mli: Pager
