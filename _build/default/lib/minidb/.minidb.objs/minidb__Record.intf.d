lib/minidb/record.mli: Format
