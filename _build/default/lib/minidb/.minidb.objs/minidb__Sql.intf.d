lib/minidb/sql.mli: Db Record
