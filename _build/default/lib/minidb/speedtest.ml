open Cubicle

type group = Light | Heavy

type query = { id : int; name : string; group : group }

let queries =
  [
    { id = 100; name = "batched INSERTs into t1"; group = Light };
    { id = 110; name = "batched indexed INSERTs into t2"; group = Light };
    { id = 120; name = "batched UPDATEs on t1"; group = Light };
    { id = 130; name = "per-row UPDATE txns on t2"; group = Heavy };
    { id = 140; name = "point SELECTs on t1"; group = Light };
    { id = 142; name = "range SELECTs on t1"; group = Light };
    { id = 145; name = "index range SELECTs on t1"; group = Light };
    { id = 150; name = "SUM aggregate on t1"; group = Light };
    { id = 160; name = "filtered COUNT on t1"; group = Light };
    { id = 161; name = "MIN/MAX probes on t1"; group = Light };
    { id = 170; name = "per-row DELETE+reINSERT txns on t2"; group = Heavy };
    { id = 180; name = "batched INSERTs into t1 (second wave)"; group = Light };
    { id = 190; name = "CREATE t3 AS COPY OF t1"; group = Light };
    { id = 210; name = "CREATE INDEX on t2(b)"; group = Heavy };
    { id = 230; name = "small UPDATE txns on t1"; group = Light };
    { id = 240; name = "random point SELECTs on t2"; group = Heavy };
    { id = 250; name = "sequential scan of t1"; group = Light };
    { id = 260; name = "rowid join t1-t2 (random keys)"; group = Heavy };
    { id = 270; name = "index join t1-t2"; group = Heavy };
    { id = 280; name = "GROUP BY over t2"; group = Heavy };
    { id = 290; name = "ORDER BY over random subset of t2"; group = Heavy };
    { id = 300; name = "predicate scan of t1"; group = Light };
    { id = 310; name = "per-row wide-row INSERT txns into t4"; group = Heavy };
    { id = 320; name = "COUNT(*) of t1"; group = Light };
    { id = 400; name = "sequential rowid reads of t1"; group = Light };
    { id = 410; name = "random wide-row reads of t4"; group = Heavy };
    { id = 500; name = "batched text INSERTs into t5"; group = Light };
    { id = 510; name = "text predicate scan of t2"; group = Heavy };
    { id = 520; name = "mixed read txn on t1"; group = Light };
    { id = 980; name = "integrity check"; group = Heavy };
    { id = 990; name = "analyze row counts"; group = Light };
  ]

type state = { db : Db.t; n : int; mutable seed : int }

let rand st bound =
  st.seed <- ((st.seed * 1103515245) + 12345) land 0x3FFFFFFF;
  st.seed mod bound

let prepare os ~path ~n =
  let db = Db.open_db ~cache_pages:48 os ~path in
  { db; n = max 10 n; seed = 42 }

let finish st = Db.close st.db

(* t1/t3/t5 are small (cache-resident); t2 is ~4n rows of ~440 B and
   exceeds the 48-page cache; t4 holds ~900 B wide rows. *)

let t1_row st i =
  [ Record.int i; Record.int (rand st 1000); Record.Text (Printf.sprintf "row-%06d" i) ]

let t2_row st i =
  [
    Record.int (rand st (4 * st.n));
    Record.int (rand st 1_000_000);
    Record.Text (Printf.sprintf "payload-%08d-%s" i (String.make 400 'd'));
  ]

(* Queries execute as the application cubicle: its own B-tree parsing,
   record decoding and cache handling run under its MPK permissions,
   exactly like SQLite code inside the SQLITE cubicle. *)
let as_app st f =
  let ctx = Pager.ctx (Db.pager st.db) in
  Monitor.run_as ctx.Monitor.mon ctx.Monitor.self f

let run_query st q =
  let db = st.db in
  let n = st.n in
  match q.id with
  | 100 ->
      let t1 = Db.create_table db "t1" in
      Db.with_txn db (fun () ->
          for i = 1 to n do
            ignore (Db.insert db t1 (t1_row st i))
          done)
  | 110 ->
      let t2 = Db.create_table db "t2" in
      ignore (Db.create_index db t2 ~col:0 ~name:"t2a");
      Db.with_txn db (fun () ->
          for i = 1 to 4 * n do
            ignore (Db.insert db t2 (t2_row st i))
          done)
  | 120 ->
      let t1 = Db.find_table db "t1" in
      Db.with_txn db (fun () ->
          for i = 1 to n do
            ignore (Db.update db t1 (Int64.of_int i) (t1_row st i))
          done)
  | 130 ->
      let t2 = Db.find_table db "t2" in
      for _ = 1 to (4 * n) / 10 do
        let rowid = Int64.of_int (1 + rand st (4 * n)) in
        Db.with_txn db (fun () -> ignore (Db.update db t2 rowid (t2_row st 0)))
      done
  | 140 ->
      let t1 = Db.find_table db "t1" in
      for i = 1 to n do
        ignore (Db.get t1 (Int64.of_int i))
      done
  | 142 ->
      let t1 = Db.find_table db "t1" in
      for _ = 1 to 100 do
        let lo = 1 + rand st n in
        let count = ref 0 in
        Db.scan_range t1 ~lo:(Int64.of_int lo)
          ~hi:(Int64.of_int (lo + (n / 20)))
          (fun _ _ -> incr count)
      done
  | 145 ->
      let t1 = Db.find_table db "t1" in
      let idx =
        try Db.find_index db "t1a"
        with Types.Error _ -> Db.create_index db t1 ~col:0 ~name:"t1a"
      in
      for _ = 1 to 100 do
        let lo = rand st n in
        Db.index_range idx t1 ~lo ~hi:(lo + 10) (fun _ _ -> ())
      done
  | 150 ->
      let t1 = Db.find_table db "t1" in
      let sum = ref 0L in
      Db.scan t1 (fun _ row -> sum := Int64.add !sum (Int64.of_int (Record.to_int (List.nth row 1))));
      ignore !sum
  | 160 ->
      let t1 = Db.find_table db "t1" in
      ignore (Db.count_where t1 (fun row -> Record.to_int (List.nth row 1) mod 3 = 0))
  | 161 ->
      let t1 = Db.find_table db "t1" in
      let mn = ref max_int and mx = ref min_int in
      Db.scan t1 (fun _ row ->
          let v = Record.to_int (List.nth row 1) in
          if v < !mn then mn := v;
          if v > !mx then mx := v)
  | 170 ->
      let t2 = Db.find_table db "t2" in
      for _ = 1 to (4 * n) / 10 do
        let rowid = Int64.of_int (1 + rand st (4 * n)) in
        Db.with_txn db (fun () ->
            match Db.get t2 rowid with
            | None -> ()
            | Some row ->
                ignore (Db.delete db t2 rowid);
                ignore (Db.insert db t2 row))
      done
  | 180 ->
      let t1 = Db.find_table db "t1" in
      Db.with_txn db (fun () ->
          for i = n + 1 to 2 * n do
            ignore (Db.insert db t1 (t1_row st i))
          done)
  | 190 ->
      let t1 = Db.find_table db "t1" in
      let t3 = Db.create_table db "t3" in
      Db.with_txn db (fun () -> Db.scan t1 (fun _ row -> ignore (Db.insert db t3 row)))
  | 210 ->
      let t2 = Db.find_table db "t2" in
      Db.with_txn db (fun () -> ignore (Db.create_index db t2 ~col:1 ~name:"t2b"))
  | 230 ->
      let t1 = Db.find_table db "t1" in
      for _ = 1 to n / 10 do
        let rowid = Int64.of_int (1 + rand st n) in
        Db.with_txn db (fun () -> ignore (Db.update db t1 rowid (t1_row st 0)))
      done
  | 240 ->
      let t2 = Db.find_table db "t2" in
      for _ = 1 to 4 * n do
        ignore (Db.get t2 (Int64.of_int (1 + rand st (4 * n))))
      done
  | 250 ->
      let t1 = Db.find_table db "t1" in
      Db.scan t1 (fun _ _ -> ())
  | 260 ->
      let t1 = Db.find_table db "t1" in
      let t2 = Db.find_table db "t2" in
      for _ = 1 to n do
        let rowid = Int64.of_int (1 + rand st n) in
        match Db.get t1 rowid with
        | None -> ()
        | Some _ -> ignore (Db.get t2 (Int64.of_int (1 + rand st (4 * n))))
      done
  | 270 ->
      let t1 = Db.find_table db "t1" in
      let t2 = Db.find_table db "t2" in
      let idx = Db.find_index db "t2a" in
      Db.scan_range t1 ~lo:1L ~hi:(Int64.of_int (n / 2)) (fun _ row ->
          let v = Record.to_int (List.hd row) in
          Db.index_range idx t2 ~lo:v ~hi:v (fun _ _ -> ()))
  | 280 ->
      let t2 = Db.find_table db "t2" in
      let groups = Hashtbl.create 64 in
      Db.scan t2 (fun _ row ->
          let g = Record.to_int (List.hd row) mod 97 in
          Hashtbl.replace groups g (1 + Option.value ~default:0 (Hashtbl.find_opt groups g)))
  | 290 ->
      let t2 = Db.find_table db "t2" in
      let acc = ref [] in
      for _ = 1 to n do
        match Db.get t2 (Int64.of_int (1 + rand st (4 * n))) with
        | Some row -> acc := Record.to_int (List.nth row 1) :: !acc
        | None -> ()
      done;
      ignore (List.sort compare !acc)
  | 300 ->
      let t1 = Db.find_table db "t1" in
      ignore
        (Db.count_where t1 (fun row ->
             String.length (Record.to_text (List.nth row 2)) > 5))
  | 310 ->
      let t4 = Db.create_table db "t4" in
      for i = 1 to n / 5 do
        Db.with_txn db (fun () ->
            ignore
              (Db.insert db t4
                 [ Record.int i; Record.Text (String.make 900 (Char.chr (65 + (i mod 26)))) ]))
      done
  | 320 ->
      let t1 = Db.find_table db "t1" in
      ignore (Db.row_count t1)
  | 400 ->
      let t1 = Db.find_table db "t1" in
      let hi = Int64.to_int (Db.max_rowid t1) in
      for i = 1 to hi do
        ignore (Db.get t1 (Int64.of_int i))
      done
  | 410 ->
      let t4 = Db.find_table db "t4" in
      for _ = 1 to n do
        ignore (Db.get t4 (Int64.of_int (1 + rand st (n / 5))))
      done
  | 500 ->
      let t5 = Db.create_table db "t5" in
      Db.with_txn db (fun () ->
          for i = 1 to n do
            ignore
              (Db.insert db t5 [ Record.Text (Printf.sprintf "text-%d-%s" i (String.make 30 't')) ])
          done)
  | 510 ->
      let t2 = Db.find_table db "t2" in
      ignore
        (Db.count_where t2 (fun row ->
             let s = Record.to_text (List.nth row 2) in
             String.length s > 10 && s.[8] = '0'))
  | 520 ->
      let t1 = Db.find_table db "t1" in
      Db.with_txn db (fun () ->
          for _ = 1 to n / 2 do
            ignore (Db.get t1 (Int64.of_int (1 + rand st n)))
          done)
  | 980 ->
      if not (Db.integrity_check db) then Types.error "speedtest: integrity check failed"
  | 990 ->
      List.iter (fun name -> ignore (Db.row_count (Db.find_table db name))) (Db.table_names db)
  | id -> Types.error "speedtest: unknown query %d" id

(* speedtest1 brackets each query with clock reads, so the TIME edge
   of the paper's Figure 8 appears *)
let run st q =
  as_app st (fun () ->
      let ctx = Pager.ctx (Db.pager st.db) in
      let clock () =
        if Monitor.has_export ctx.Monitor.mon "uk_time_ns" then
          ignore (Api.call ctx "uk_time_ns" [||])
      in
      clock ();
      run_query st q;
      clock ())

let run_all os ~path ~n ~measure =
  let st = prepare os ~path ~n in
  let results = List.map (fun q -> (q, measure (fun () -> run st q))) queries in
  finish st;
  results
