open Cubicle

type t = {
  ctx : Monitor.ctx;
  open_file : string -> create:bool -> int;
  close_file : int -> int;
  pread : fd:int -> buf:int -> len:int -> off:int -> int;
  pwrite : fd:int -> buf:int -> len:int -> off:int -> int;
  file_size : int -> int;
  truncate : fd:int -> size:int -> int;
  fsync : int -> int;
  unlink : string -> int;
  exists : string -> bool;
  rename : old_name:string -> new_name:string -> int;
}

let cubicleos fio =
  {
    ctx = Libos.Fileio.ctx fio;
    open_file = (fun path ~create -> Libos.Fileio.open_file fio path ~create);
    close_file = (fun fd -> Libos.Fileio.close_file fio fd);
    pread = (fun ~fd ~buf ~len ~off -> Libos.Fileio.pread fio ~fd ~buf ~len ~off);
    pwrite = (fun ~fd ~buf ~len ~off -> Libos.Fileio.pwrite fio ~fd ~buf ~len ~off);
    file_size = (fun fd -> Libos.Fileio.file_size fio fd);
    truncate = (fun ~fd ~size -> Libos.Fileio.truncate fio ~fd ~size);
    fsync = (fun fd -> Libos.Fileio.fsync fio fd);
    unlink = (fun path -> Libos.Fileio.unlink fio path);
    exists = (fun path -> Libos.Fileio.exists fio path);
    rename = (fun ~old_name ~new_name -> Libos.Fileio.rename fio ~old_name ~new_name);
  }

(* --- host Linux model ---------------------------------------------------- *)

type lfile = { mutable data : Bytes.t; mutable size : int }

let charge_syscall (ctx : Monitor.ctx) =
  Hw.Cost.charge (Monitor.cost ctx.mon) (Monitor.cost ctx.mon).model.syscall

let grow f want =
  if Bytes.length f.data < want then begin
    let ndata = Bytes.make (max want (2 * Bytes.length f.data + 4096)) '\000' in
    Bytes.blit f.data 0 ndata 0 f.size;
    f.data <- ndata
  end

let linux ctx =
  let files : (string, lfile) Hashtbl.t = Hashtbl.create 16 in
  let fds : (int, lfile) Hashtbl.t = Hashtbl.create 16 in
  let next_fd = ref 3 in
  let cpu = ctx.Monitor.cpu in
  {
    ctx;
    open_file =
      (fun path ~create ->
        charge_syscall ctx;
        match Hashtbl.find_opt files path with
        | Some f ->
            let fd = !next_fd in
            incr next_fd;
            Hashtbl.replace fds fd f;
            fd
        | None ->
            if not create then Libos.Sysdefs.enoent
            else begin
              let f = { data = Bytes.create 4096; size = 0 } in
              Hashtbl.replace files path f;
              let fd = !next_fd in
              incr next_fd;
              Hashtbl.replace fds fd f;
              fd
            end);
    close_file =
      (fun fd ->
        charge_syscall ctx;
        if Hashtbl.mem fds fd then (Hashtbl.remove fds fd; 0) else Libos.Sysdefs.ebadf);
    pread =
      (fun ~fd ~buf ~len ~off ->
        charge_syscall ctx;
        match Hashtbl.find_opt fds fd with
        | None -> Libos.Sysdefs.ebadf
        | Some f ->
            if off >= f.size then 0
            else begin
              let n = min len (f.size - off) in
              (* kernel copies into the user buffer *)
              Hw.Cpu.write_bytes cpu buf (Bytes.sub f.data off n);
              n
            end);
    pwrite =
      (fun ~fd ~buf ~len ~off ->
        charge_syscall ctx;
        match Hashtbl.find_opt fds fd with
        | None -> Libos.Sysdefs.ebadf
        | Some f ->
            grow f (off + len);
            Bytes.blit (Hw.Cpu.read_bytes cpu buf len) 0 f.data off len;
            f.size <- max f.size (off + len);
            len);
    file_size =
      (fun fd ->
        charge_syscall ctx;
        match Hashtbl.find_opt fds fd with
        | None -> Libos.Sysdefs.ebadf
        | Some f -> f.size);
    truncate =
      (fun ~fd ~size ->
        charge_syscall ctx;
        match Hashtbl.find_opt fds fd with
        | None -> Libos.Sysdefs.ebadf
        | Some f ->
            grow f size;
            if size < f.size then Bytes.fill f.data size (f.size - size) '\000';
            f.size <- size;
            0);
    fsync = (fun _fd -> charge_syscall ctx; 0);
    unlink =
      (fun path ->
        charge_syscall ctx;
        if Hashtbl.mem files path then (Hashtbl.remove files path; 0)
        else Libos.Sysdefs.enoent);
    exists = (fun path -> charge_syscall ctx; Hashtbl.mem files path);
    rename =
      (fun ~old_name ~new_name ->
        charge_syscall ctx;
        match Hashtbl.find_opt files old_name with
        | None -> Libos.Sysdefs.enoent
        | Some f ->
            Hashtbl.remove files old_name;
            Hashtbl.replace files new_name f;
            0);
  }
