open Cubicle

(* Composite index keys: value * 2^22 + rowid. Values must fit 40 bits
   signed, rowids 22 bits — ample for speedtest-scale data. *)
let rowid_bits = 22
let rowid_mask = Int64.of_int ((1 lsl rowid_bits) - 1)

let composite v rowid =
  Int64.add (Int64.shift_left v rowid_bits) (Int64.logand rowid rowid_mask)

let text_key s =
  (* stable 38-bit hash for equality-only text indexes *)
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFFFF) s;
  Int64.of_int !h

type index = {
  idx_name : string;
  idx_col : int;
  idx_text : bool;
  idx_tree : Btree.t;
}

type table = {
  tbl_name : string;
  tree : Btree.t;
  mutable next_rowid : int64;
  mutable indexes : index list;
}

type t = { pager : Pager.t; mutable tables : table list; mutable dirty_catalog : bool }

let pager t = t.pager

(* --- catalog (page 0) ------------------------------------------------------ *)

let magic = 0x4D444231 (* "MDB1" *)

let encode_catalog t =
  let b = Buffer.create 256 in
  Buffer.add_int32_le b (Int32.of_int magic);
  Buffer.add_uint16_le b (List.length t.tables);
  List.iter
    (fun tbl ->
      Buffer.add_uint8 b (String.length tbl.tbl_name);
      Buffer.add_string b tbl.tbl_name;
      Buffer.add_int32_le b (Int32.of_int (Btree.root tbl.tree));
      Buffer.add_int64_le b tbl.next_rowid;
      Buffer.add_uint8 b (List.length tbl.indexes);
      List.iter
        (fun idx ->
          Buffer.add_uint8 b (String.length idx.idx_name);
          Buffer.add_string b idx.idx_name;
          Buffer.add_uint8 b idx.idx_col;
          Buffer.add_uint8 b (if idx.idx_text then 1 else 0);
          Buffer.add_int32_le b (Int32.of_int (Btree.root idx.idx_tree)))
        tbl.indexes)
    t.tables;
  Buffer.contents b

let decode_catalog pager s =
  if Int32.to_int (String.get_int32_le s 0) <> magic then
    Types.error "db: bad catalog magic";
  let ntables = Char.code s.[4] lor (Char.code s.[5] lsl 8) in
  let pos = ref 6 in
  let u8 () = let v = Char.code s.[!pos] in incr pos; v in
  let str n = let v = String.sub s !pos n in pos := !pos + n; v in
  let u32 () = let v = Int32.to_int (String.get_int32_le s !pos) in pos := !pos + 4; v in
  let i64 () = let v = String.get_int64_le s !pos in pos := !pos + 8; v in
  List.init ntables (fun _ ->
      let name = str (u8 ()) in
      let root = u32 () in
      let next_rowid = i64 () in
      let nidx = u8 () in
      let indexes =
        List.init nidx (fun _ ->
            let idx_name = str (u8 ()) in
            let idx_col = u8 () in
            let idx_text = u8 () = 1 in
            let root = u32 () in
            { idx_name; idx_col; idx_text; idx_tree = Btree.attach pager ~root })
      in
      { tbl_name = name; tree = Btree.attach pager ~root; next_rowid; indexes })

let save_catalog t =
  let s = encode_catalog t in
  if String.length s > Pager.page_size then Types.error "db: catalog overflows page 0";
  Pager.write_page t.pager 0 (fun addr ->
      Api.write_bytes (Pager.ctx t.pager) addr (Bytes.of_string s);
      Api.memset (Pager.ctx t.pager) (addr + String.length s)
        (Pager.page_size - String.length s) '\000');
  t.dirty_catalog <- false

let open_db ?cache_pages ?journal_mode os ~path =
  let pager = Pager.open_db ?cache_pages ?journal_mode os ~path in
  if Pager.page_count pager = 0 then begin
    let p0 = Pager.allocate_page pager in
    assert (p0 = 0);
    let t = { pager; tables = []; dirty_catalog = true } in
    save_catalog t;
    t
  end
  else begin
    let s =
      Pager.read_page pager 0 (fun addr ->
          Bytes.to_string (Api.read_bytes (Pager.ctx pager) addr Pager.page_size))
    in
    { pager; tables = decode_catalog pager s; dirty_catalog = false }
  end

let close t =
  save_catalog t;
  Pager.close t.pager

(* --- schema ------------------------------------------------------------------ *)

let create_table t name =
  if List.exists (fun tbl -> tbl.tbl_name = name) t.tables then
    Types.error "db: table %s exists" name;
  let tbl = { tbl_name = name; tree = Btree.create t.pager; next_rowid = 1L; indexes = [] } in
  t.tables <- t.tables @ [ tbl ];
  t.dirty_catalog <- true;
  tbl

let find_table t name =
  match List.find_opt (fun tbl -> tbl.tbl_name = name) t.tables with
  | Some tbl -> tbl
  | None -> Types.error "db: no table %s" name

let table_names t = List.map (fun tbl -> tbl.tbl_name) t.tables

let col_value row col =
  match List.nth_opt row col with
  | Some v -> v
  | None -> Types.error "db: row has no column %d" col

let index_key idx rowid row =
  match col_value row idx.idx_col with
  | Record.Int v when not idx.idx_text -> composite v rowid
  | Record.Text s when idx.idx_text -> composite (text_key s) rowid
  | Record.Null -> composite Int64.min_int rowid
  | v ->
      Types.error "db: index %s: column type mismatch (%s)" idx.idx_name
        (Format.asprintf "%a" Record.pp v)

let create_index t tbl ~col ~name =
  if List.exists (fun i -> i.idx_name = name) tbl.indexes then
    Types.error "db: index %s exists" name;
  (* sniff column type from the first row, defaulting to integer *)
  let textual = ref false in
  (try
     Btree.iter_all tbl.tree (fun _ payload ->
         (match col_value (Record.decode payload) col with
         | Record.Text _ -> textual := true
         | Record.Int _ | Record.Null -> ());
         raise Exit)
   with Exit -> ());
  let idx = { idx_name = name; idx_col = col; idx_text = !textual; idx_tree = Btree.create t.pager } in
  Btree.iter_all tbl.tree (fun rowid payload ->
      let row = Record.decode payload in
      Btree.insert idx.idx_tree ~key:(index_key idx rowid row)
        ~payload:(Int64.to_string rowid));
  tbl.indexes <- tbl.indexes @ [ idx ];
  t.dirty_catalog <- true;
  idx

let find_index t name =
  let rec scan = function
    | [] -> Types.error "db: no index %s" name
    | tbl :: rest -> (
        match List.find_opt (fun i -> i.idx_name = name) tbl.indexes with
        | Some i -> i
        | None -> scan rest)
  in
  scan t.tables

let row_count tbl = Btree.count_range tbl.tree ~lo:Int64.min_int ~hi:Int64.max_int

(* --- transactions --------------------------------------------------------------- *)

let begin_txn t =
  (* make the pre-transaction state durable: the rollback path reloads
     the catalog from the file, so it must be there (and clean frames
     must match the file) before journalling starts *)
  if t.dirty_catalog then save_catalog t;
  Pager.flush t.pager;
  Pager.begin_txn t.pager

let commit t =
  if t.dirty_catalog then save_catalog t;
  Pager.commit t.pager

let rollback t =
  Pager.rollback t.pager;
  (* roots may have moved and been rolled back: reload the catalog *)
  let s =
    Pager.read_page t.pager 0 (fun addr ->
        Bytes.to_string (Api.read_bytes (Pager.ctx t.pager) addr Pager.page_size))
  in
  t.tables <- decode_catalog t.pager s;
  t.dirty_catalog <- false

let in_txn t = Pager.in_txn t.pager

let with_txn t f =
  begin_txn t;
  match f () with
  | v ->
      commit t;
      v
  | exception e ->
      rollback t;
      raise e

(* --- rows ------------------------------------------------------------------------ *)

let insert t tbl row =
  let rowid = tbl.next_rowid in
  tbl.next_rowid <- Int64.add rowid 1L;
  t.dirty_catalog <- true;
  Btree.insert tbl.tree ~key:rowid ~payload:(Record.encode row);
  List.iter
    (fun idx ->
      Btree.insert idx.idx_tree ~key:(index_key idx rowid row)
        ~payload:(Int64.to_string rowid))
    tbl.indexes;
  rowid

let get tbl rowid = Option.map Record.decode (Btree.find tbl.tree rowid)

let update t tbl rowid row =
  match Btree.find tbl.tree rowid with
  | None -> false
  | Some old_payload ->
      let old_row = Record.decode old_payload in
      List.iter
        (fun idx ->
          let old_key = index_key idx rowid old_row in
          let new_key = index_key idx rowid row in
          if not (Int64.equal old_key new_key) then begin
            ignore (Btree.delete idx.idx_tree old_key);
            Btree.insert idx.idx_tree ~key:new_key ~payload:(Int64.to_string rowid)
          end)
        tbl.indexes;
      Btree.insert tbl.tree ~key:rowid ~payload:(Record.encode row);
      t.dirty_catalog <- true;
      true

let delete t tbl rowid =
  match Btree.find tbl.tree rowid with
  | None -> false
  | Some payload ->
      let row = Record.decode payload in
      List.iter
        (fun idx -> ignore (Btree.delete idx.idx_tree (index_key idx rowid row)))
        tbl.indexes;
      ignore (Btree.delete tbl.tree rowid);
      t.dirty_catalog <- true;
      true

(* --- queries ---------------------------------------------------------------------- *)

let scan tbl f = Btree.iter_all tbl.tree (fun rowid payload -> f rowid (Record.decode payload))

let scan_range tbl ~lo ~hi f =
  Btree.iter_range tbl.tree ~lo ~hi (fun rowid payload -> f rowid (Record.decode payload))

let fetch_for tbl f rowid =
  match get tbl rowid with Some row -> f rowid row | None -> ()

let index_range idx tbl ~lo ~hi f =
  let lo64 = Int64.shift_left (Int64.of_int lo) rowid_bits in
  let hi64 = Int64.add (Int64.shift_left (Int64.of_int hi) rowid_bits) rowid_mask in
  Btree.iter_range idx.idx_tree ~lo:lo64 ~hi:hi64 (fun _ payload ->
      fetch_for tbl f (Int64.of_string payload))

let index_eq_text idx tbl s f =
  let v = text_key s in
  let lo64 = Int64.shift_left v rowid_bits in
  let hi64 = Int64.add lo64 rowid_mask in
  Btree.iter_range idx.idx_tree ~lo:lo64 ~hi:hi64 (fun _ payload ->
      let rowid = Int64.of_string payload in
      (* hash index: verify the actual value *)
      match get tbl rowid with
      | Some row when Record.to_text (col_value row idx.idx_col) = s -> f rowid row
      | _ -> ())

let count_where tbl pred =
  let n = ref 0 in
  scan tbl (fun _ row -> if pred row then incr n);
  !n

let max_rowid tbl = Option.value ~default:0L (Btree.max_key tbl.tree)

let integrity_check t =
  List.for_all
    (fun tbl ->
      let rows = row_count tbl in
      List.for_all
        (fun idx ->
          let entries = ref 0 in
          let ok = ref true in
          Btree.iter_all idx.idx_tree (fun key payload ->
              incr entries;
              let rowid = Int64.of_string payload in
              match get tbl rowid with
              | None -> ok := false
              | Some row -> if not (Int64.equal key (index_key idx rowid row)) then ok := false);
          !ok && !entries = rows)
        tbl.indexes)
    t.tables
