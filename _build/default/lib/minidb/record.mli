(** Row (record) serialization: typed column values packed into a byte
    string, SQLite-record style (a header of type tags followed by the
    column payloads). *)

type value = Null | Int of int64 | Text of string

val int : int -> value
(** Convenience for [Int (Int64.of_int n)]. *)

val to_int : value -> int
(** Raises [Invalid_argument] on non-integers. *)

val to_text : value -> string

val encode : value list -> string
val decode : string -> value list
(** Raises [Invalid_argument] on malformed input. *)

val encoded_size : value list -> int
val compare_value : value -> value -> int
(** NULL < Int < Text; ints numerically, texts lexicographically. *)

val pp : Format.formatter -> value -> unit
