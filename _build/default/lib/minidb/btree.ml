open Cubicle

let page_size = Pager.page_size
let max_payload = 1024

type t = { pager : Pager.t; mutable root : int }

type leaf = {
  lkeys : int64 array;
  lpayloads : string array;
  next : int;  (* next-leaf page number + 1; 0 = none *)
}

type interior = {
  ikeys : int64 array;  (* n separators *)
  children : int array;  (* n+1 children; child i holds keys < ikeys.(i) …
                            precisely: keys k with (number of ikeys ≤ k) = i *)
}

type node = Leaf of leaf | Interior of interior

(* --- node (de)serialization ------------------------------------------------ *)

let leaf_bytes keys payloads =
  ignore keys;
  Array.fold_left (fun acc p -> acc + 10 + String.length p) 7 payloads

let interior_max_keys = (page_size - 11) / 12

let encode_node node =
  let b = Buffer.create 512 in
  (match node with
  | Leaf l ->
      Buffer.add_uint8 b 1;
      Buffer.add_uint16_le b (Array.length l.lkeys);
      Buffer.add_int32_le b (Int32.of_int l.next);
      Array.iteri
        (fun i k ->
          Buffer.add_int64_le b k;
          Buffer.add_uint16_le b (String.length l.lpayloads.(i));
          Buffer.add_string b l.lpayloads.(i))
        l.lkeys
  | Interior n ->
      Buffer.add_uint8 b 2;
      Buffer.add_uint16_le b (Array.length n.ikeys);
      Buffer.add_int32_le b (Int32.of_int n.children.(0));
      Array.iteri
        (fun i k ->
          Buffer.add_int64_le b k;
          Buffer.add_int32_le b (Int32.of_int n.children.(i + 1)))
        n.ikeys);
  let s = Buffer.contents b in
  if String.length s > page_size then Types.error "btree: node overflows page";
  s

let decode_node s =
  let kind = Char.code s.[0] in
  let nkeys = Char.code s.[1] lor (Char.code s.[2] lsl 8) in
  let u32 off = Int32.to_int (String.get_int32_le s off) in
  match kind with
  | 1 ->
      let next = u32 3 in
      let lkeys = Array.make nkeys 0L in
      let lpayloads = Array.make nkeys "" in
      let pos = ref 7 in
      for i = 0 to nkeys - 1 do
        lkeys.(i) <- String.get_int64_le s !pos;
        let len = Char.code s.[!pos + 8] lor (Char.code s.[!pos + 9] lsl 8) in
        lpayloads.(i) <- String.sub s (!pos + 10) len;
        pos := !pos + 10 + len
      done;
      Leaf { lkeys; lpayloads; next }
  | 2 ->
      let children = Array.make (nkeys + 1) 0 in
      children.(0) <- u32 3;
      let ikeys = Array.make nkeys 0L in
      for i = 0 to nkeys - 1 do
        let off = 7 + (12 * i) in
        ikeys.(i) <- String.get_int64_le s off;
        children.(i + 1) <- u32 (off + 8)
      done;
      Interior { ikeys; children }
  | k -> Types.error "btree: bad node kind %d" k

let read_node t pageno =
  Pager.read_page t.pager pageno (fun addr ->
      decode_node (Bytes.to_string (Api.read_bytes (Pager.ctx t.pager) addr page_size)))

let write_node t pageno node =
  let s = encode_node node in
  Pager.write_page t.pager pageno (fun addr ->
      Api.write_bytes (Pager.ctx t.pager) addr (Bytes.of_string s);
      (* keep the rest of the page deterministic *)
      if String.length s < page_size then
        Api.memset (Pager.ctx t.pager) (addr + String.length s)
          (page_size - String.length s) '\000')

let empty_leaf = Leaf { lkeys = [||]; lpayloads = [||]; next = 0 }

let create pager =
  let root = Pager.allocate_page pager in
  let t = { pager; root } in
  write_node t root empty_leaf;
  t

let attach pager ~root = { pager; root }
let root t = t.root

(* binary search: number of elements in [a] that are <= key *)
let rank (a : int64 array) (key : int64) =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare a.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* position of key in a sorted array, or the insertion point *)
let find_pos (a : int64 array) (key : int64) =
  let r = rank a key in
  if r > 0 && Int64.equal a.(r - 1) key then `Found (r - 1) else `Insert r

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let array_set a i x =
  let a' = Array.copy a in
  a'.(i) <- x;
  a'

let sub a lo len = Array.sub a lo len

(* --- insert ----------------------------------------------------------------- *)

(* Returns [Some (sep, right_page)] when the node split. *)
let rec insert_at t pageno ~key ~payload =
  match read_node t pageno with
  | Leaf l -> (
      let lkeys, lpayloads =
        match find_pos l.lkeys key with
        | `Found i -> (l.lkeys, array_set l.lpayloads i payload)
        | `Insert i -> (array_insert l.lkeys i key, array_insert l.lpayloads i payload)
      in
      if leaf_bytes lkeys lpayloads <= page_size then begin
        write_node t pageno (Leaf { lkeys; lpayloads; next = l.next });
        None
      end
      else begin
        (* split: upper half moves to a fresh right sibling *)
        let n = Array.length lkeys in
        let mid = n / 2 in
        let right_page = Pager.allocate_page t.pager in
        let right =
          Leaf { lkeys = sub lkeys mid (n - mid); lpayloads = sub lpayloads mid (n - mid); next = l.next }
        in
        let left =
          Leaf { lkeys = sub lkeys 0 mid; lpayloads = sub lpayloads 0 mid; next = right_page + 1 }
        in
        write_node t right_page right;
        write_node t pageno left;
        Some (lkeys.(mid), right_page)
      end)
  | Interior n -> (
      let ci = rank n.ikeys key in
      match insert_at t n.children.(ci) ~key ~payload with
      | None -> None
      | Some (sep, right_page) ->
          let ikeys = array_insert n.ikeys ci sep in
          let children = array_insert n.children (ci + 1) right_page in
          if Array.length ikeys <= interior_max_keys then begin
            write_node t pageno (Interior { ikeys; children });
            None
          end
          else begin
            let m = Array.length ikeys / 2 in
            let up = ikeys.(m) in
            let right_page' = Pager.allocate_page t.pager in
            let right =
              Interior
                {
                  ikeys = sub ikeys (m + 1) (Array.length ikeys - m - 1);
                  children = sub children (m + 1) (Array.length children - m - 1);
                }
            in
            let left = Interior { ikeys = sub ikeys 0 m; children = sub children 0 (m + 1) } in
            write_node t right_page' right;
            write_node t pageno left;
            Some (up, right_page')
          end)

let insert t ~key ~payload =
  if String.length payload > max_payload then
    Types.error "btree: payload of %d bytes exceeds max %d" (String.length payload)
      max_payload;
  match insert_at t t.root ~key ~payload with
  | None -> ()
  | Some (sep, right_page) ->
      let new_root = Pager.allocate_page t.pager in
      write_node t new_root (Interior { ikeys = [| sep |]; children = [| t.root; right_page |] });
      t.root <- new_root

(* --- lookup ------------------------------------------------------------------ *)

let rec leaf_for t pageno key =
  match read_node t pageno with
  | Leaf l -> (pageno, l)
  | Interior n -> leaf_for t n.children.(rank n.ikeys key) key

let find t key =
  let _, l = leaf_for t t.root key in
  match find_pos l.lkeys key with
  | `Found i -> Some l.lpayloads.(i)
  | `Insert _ -> None

let delete t key =
  let pageno, l = leaf_for t t.root key in
  match find_pos l.lkeys key with
  | `Found i ->
      write_node t pageno
        (Leaf { lkeys = array_remove l.lkeys i; lpayloads = array_remove l.lpayloads i; next = l.next });
      true
  | `Insert _ -> false

(* --- range scans ---------------------------------------------------------------- *)

let iter_range t ~lo ~hi f =
  if Int64.compare lo hi <= 0 then begin
    let _, first = leaf_for t t.root lo in
    let rec walk (l : leaf) =
      let n = Array.length l.lkeys in
      let stop = ref false in
      for i = 0 to n - 1 do
        if not !stop then begin
          let k = l.lkeys.(i) in
          if Int64.compare k hi > 0 then stop := true
          else if Int64.compare k lo >= 0 then f k l.lpayloads.(i)
        end
      done;
      if (not !stop) && l.next <> 0 then
        match read_node t (l.next - 1) with
        | Leaf l' -> walk l'
        | Interior _ -> Types.error "btree: leaf chain reaches interior node"
    in
    walk first
  end

let fold_range t ~lo ~hi ~init ~f =
  let acc = ref init in
  iter_range t ~lo ~hi (fun k p -> acc := f !acc k p);
  !acc

let count_range t ~lo ~hi = fold_range t ~lo ~hi ~init:0 ~f:(fun acc _ _ -> acc + 1)
let iter_all t f = iter_range t ~lo:Int64.min_int ~hi:Int64.max_int f

let min_key t =
  let exception Found of int64 in
  try
    iter_all t (fun k _ -> raise (Found k));
    None
  with Found k -> Some k

let max_key t = fold_range t ~lo:Int64.min_int ~hi:Int64.max_int ~init:None ~f:(fun _ k _ -> Some k)

let depth t =
  let rec go pageno acc =
    match read_node t pageno with
    | Leaf _ -> acc
    | Interior n -> go n.children.(0) (acc + 1)
  in
  go t.root 1
