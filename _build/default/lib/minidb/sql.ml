open Cubicle

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --- lexer -------------------------------------------------------------- *)

type token =
  | Ident of string
  | Int_lit of int64
  | Str_lit of string
  | Punct of string  (* ( ) , ; * = <> < <= > >= *)
  | Eof

let keywords =
  [
    "create"; "table"; "index"; "on"; "insert"; "into"; "values"; "select"; "from";
    "where"; "order"; "by"; "desc"; "asc"; "limit"; "update"; "set"; "delete"; "begin";
    "commit"; "rollback"; "and"; "or"; "not"; "null";
  ]

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let emit t = tokens := t :: !tokens in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !pos < n do
    match input.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '(' | ')' | ',' | ';' | '*' | '=' ->
        emit (Punct (String.make 1 input.[!pos]));
        incr pos
    | '<' ->
        if !pos + 1 < n && input.[!pos + 1] = '=' then (emit (Punct "<="); pos := !pos + 2)
        else if !pos + 1 < n && input.[!pos + 1] = '>' then (emit (Punct "<>"); pos := !pos + 2)
        else (emit (Punct "<"); incr pos)
    | '>' ->
        if !pos + 1 < n && input.[!pos + 1] = '=' then (emit (Punct ">="); pos := !pos + 2)
        else (emit (Punct ">"); incr pos)
    | '\'' ->
        (* string literal, '' escapes a quote *)
        let b = Buffer.create 16 in
        incr pos;
        let rec go () =
          if !pos >= n then parse_error "unterminated string literal"
          else if input.[!pos] = '\'' then
            if !pos + 1 < n && input.[!pos + 1] = '\'' then begin
              Buffer.add_char b '\'';
              pos := !pos + 2;
              go ()
            end
            else incr pos
          else begin
            Buffer.add_char b input.[!pos];
            incr pos;
            go ()
          end
        in
        go ();
        emit (Str_lit (Buffer.contents b))
    | '-' when !pos + 1 < n && input.[!pos + 1] >= '0' && input.[!pos + 1] <= '9' ->
        let start = !pos in
        incr pos;
        while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
          incr pos
        done;
        emit (Int_lit (Int64.of_string (String.sub input start (!pos - start))))
    | c when c >= '0' && c <= '9' ->
        let start = !pos in
        while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
          incr pos
        done;
        emit (Int_lit (Int64.of_string (String.sub input start (!pos - start))))
    | c when is_ident_char c ->
        let start = !pos in
        while (match peek () with Some c when is_ident_char c -> true | _ -> false) do
          incr pos
        done;
        emit (Ident (String.lowercase_ascii (String.sub input start (!pos - start))))
    | c -> parse_error "unexpected character %C" c
  done;
  List.rev (Eof :: !tokens)

(* --- AST ----------------------------------------------------------------- *)

type expr =
  | Lit of Record.value
  | Col of string
  | Cmp of string * expr * expr  (* = <> < <= > >= *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type stmt =
  | Create_table of string * string list
  | Create_index of string * string * string  (* index, table, column *)
  | Insert of string * expr list list
  | Select of {
      cols : string list option;  (* None = * *)
      aggregates : (string * string) list;  (* (fn, col); col "*" for a bare COUNT *)
      table : string;
      where : expr option;
      order_by : (string * bool) option;  (* column, descending *)
      limit : int option;
    }
  | Update of string * (string * expr) list * expr option
  | Delete of string * expr option
  | Begin_txn
  | Commit
  | Rollback

(* --- parser ---------------------------------------------------------------- *)

type parser_state = { mutable toks : token list }

let peek_tok p = match p.toks with t :: _ -> t | [] -> Eof

let advance p = match p.toks with _ :: rest -> p.toks <- rest | [] -> ()

let tok_to_string = function
  | Ident s -> s
  | Int_lit i -> Int64.to_string i
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Punct s -> s
  | Eof -> "<end>"

let expect_punct p s =
  match peek_tok p with
  | Punct x when x = s -> advance p
  | t -> parse_error "expected %S, found %s" s (tok_to_string t)

let expect_kw p kw =
  match peek_tok p with
  | Ident x when x = kw -> advance p
  | t -> parse_error "expected %s, found %s" (String.uppercase_ascii kw) (tok_to_string t)

let accept_kw p kw =
  match peek_tok p with Ident x when x = kw -> advance p; true | _ -> false

let ident p =
  match peek_tok p with
  | Ident x when not (List.mem x keywords) -> advance p; x
  | t -> parse_error "expected an identifier, found %s" (tok_to_string t)

let rec parse_expr p = parse_or p

and parse_or p =
  let left = parse_and p in
  if accept_kw p "or" then Or (left, parse_or p) else left

and parse_and p =
  let left = parse_not p in
  if accept_kw p "and" then And (left, parse_and p) else left

and parse_not p = if accept_kw p "not" then Not (parse_not p) else parse_cmp p

and parse_cmp p =
  let left = parse_atom p in
  match peek_tok p with
  | Punct (("=" | "<>" | "<" | "<=" | ">" | ">=") as op) ->
      advance p;
      Cmp (op, left, parse_atom p)
  | _ -> left

and parse_atom p =
  match peek_tok p with
  | Int_lit i -> advance p; Lit (Record.Int i)
  | Str_lit s -> advance p; Lit (Record.Text s)
  | Ident "null" -> advance p; Lit Record.Null
  | Ident x when not (List.mem x keywords) -> advance p; Col x
  | Punct "(" ->
      advance p;
      let e = parse_expr p in
      expect_punct p ")";
      e
  | t -> parse_error "expected an expression, found %s" (tok_to_string t)

let parse_ident_list p =
  expect_punct p "(";
  let rec go acc =
    let x = ident p in
    match peek_tok p with
    | Punct "," -> advance p; go (x :: acc)
    | _ ->
        expect_punct p ")";
        List.rev (x :: acc)
  in
  go []

let parse_value_tuple p =
  expect_punct p "(";
  let rec go acc =
    let e = parse_expr p in
    match peek_tok p with
    | Punct "," -> advance p; go (e :: acc)
    | _ ->
        expect_punct p ")";
        List.rev (e :: acc)
  in
  go []

let parse_stmt p =
  match peek_tok p with
  | Ident "create" -> (
      advance p;
      match peek_tok p with
      | Ident "table" ->
          advance p;
          let name = ident p in
          Create_table (name, parse_ident_list p)
      | Ident "index" ->
          advance p;
          let idx = ident p in
          expect_kw p "on";
          let table = ident p in
          expect_punct p "(";
          let col = ident p in
          expect_punct p ")";
          Create_index (idx, table, col)
      | t -> parse_error "expected TABLE or INDEX, found %s" (tok_to_string t))
  | Ident "insert" ->
      advance p;
      expect_kw p "into";
      let table = ident p in
      expect_kw p "values";
      let rec tuples acc =
        let t = parse_value_tuple p in
        if (match peek_tok p with Punct "," -> true | _ -> false) then begin
          advance p;
          tuples (t :: acc)
        end
        else List.rev (t :: acc)
      in
      Insert (table, tuples [])
  | Ident "select" ->
      advance p;
      let aggregate_fns = [ "count"; "sum"; "min"; "max"; "avg" ] in
      let is_aggregate () =
        match p.toks with
        | Ident f :: Punct "(" :: _ when List.mem f aggregate_fns -> true
        | _ -> false
      in
      let parse_aggregate () =
        let f = match peek_tok p with Ident f -> advance p; f | _ -> assert false in
        expect_punct p "(";
        let col =
          match peek_tok p with
          | Punct "*" when f = "count" -> advance p; "*"
          | _ -> ident p
        in
        expect_punct p ")";
        (f, col)
      in
      let cols, aggregates =
        match peek_tok p with
        | Punct "*" -> advance p; (None, [])
        | _ when is_aggregate () ->
            let rec go acc =
              let a = parse_aggregate () in
              match peek_tok p with
              | Punct "," -> advance p; go (a :: acc)
              | _ -> List.rev (a :: acc)
            in
            (Some [], go [])
        | _ ->
            let rec go acc =
              let c = ident p in
              match peek_tok p with
              | Punct "," -> advance p; go (c :: acc)
              | _ -> List.rev (c :: acc)
            in
            (Some (go []), [])
      in
      expect_kw p "from";
      let table = ident p in
      let where = if accept_kw p "where" then Some (parse_expr p) else None in
      let order_by =
        if accept_kw p "order" then begin
          expect_kw p "by";
          let c = ident p in
          let desc = if accept_kw p "desc" then true else (ignore (accept_kw p "asc"); false) in
          Some (c, desc)
        end
        else None
      in
      let limit =
        if accept_kw p "limit" then
          match peek_tok p with
          | Int_lit i -> advance p; Some (Int64.to_int i)
          | t -> parse_error "expected a number after LIMIT, found %s" (tok_to_string t)
        else None
      in
      Select { cols; aggregates; table; where; order_by; limit }
  | Ident "update" ->
      advance p;
      let table = ident p in
      expect_kw p "set";
      let rec assignments acc =
        let c = ident p in
        expect_punct p "=";
        let e = parse_expr p in
        match peek_tok p with
        | Punct "," -> advance p; assignments ((c, e) :: acc)
        | _ -> List.rev ((c, e) :: acc)
      in
      let sets = assignments [] in
      let where = if accept_kw p "where" then Some (parse_expr p) else None in
      Update (table, sets, where)
  | Ident "delete" ->
      advance p;
      expect_kw p "from";
      let table = ident p in
      let where = if accept_kw p "where" then Some (parse_expr p) else None in
      Delete (table, where)
  | Ident "begin" -> advance p; Begin_txn
  | Ident "commit" -> advance p; Commit
  | Ident "rollback" -> advance p; Rollback
  | t -> parse_error "expected a statement, found %s" (tok_to_string t)

let parse input =
  let p = { toks = lex input } in
  let stmt = parse_stmt p in
  (match peek_tok p with
  | Eof -> ()
  | Punct ";" -> (
      advance p;
      match peek_tok p with
      | Eof -> ()
      | t -> parse_error "trailing input: %s" (tok_to_string t))
  | t -> parse_error "trailing input: %s" (tok_to_string t));
  stmt

(* --- schema persistence ---------------------------------------------------- *)

type result = Rows of string list * Record.value list list | Affected of int | Done

type t = {
  db : Db.t;
  schema : (string, string list) Hashtbl.t;  (* table -> columns *)
  indexes : (string, string * int) Hashtbl.t;  (* index -> (table, col position) *)
}

let schema_table = "__schema"

let load_schema t =
  match Db.find_table t.db schema_table with
  | exception Types.Error _ -> ()
  | meta ->
      Db.scan meta (fun _ row ->
          match row with
          | [ Record.Text "table"; Record.Text name; Record.Text cols ] ->
              Hashtbl.replace t.schema name (String.split_on_char ',' cols)
          | [ Record.Text "index"; Record.Text name; Record.Text spec ] -> (
              match String.split_on_char ',' spec with
              | [ tbl; pos ] -> Hashtbl.replace t.indexes name (tbl, int_of_string pos)
              | _ -> ())
          | _ -> ())

let save_schema_entry t kind name payload =
  let meta =
    match Db.find_table t.db schema_table with
    | m -> m
    | exception Types.Error _ -> Db.create_table t.db schema_table
  in
  ignore (Db.insert t.db meta [ Record.Text kind; Record.Text name; Record.Text payload ])

let attach db =
  let t = { db; schema = Hashtbl.create 8; indexes = Hashtbl.create 8 } in
  load_schema t;
  t

let db t = t.db

let columns_of t table =
  match Hashtbl.find_opt t.schema table with
  | Some cols -> cols
  | None -> Types.error "sql: unknown table %s" table

let col_pos t table col =
  let cols = columns_of t table in
  let rec go i = function
    | [] -> Types.error "sql: table %s has no column %s" table col
    | c :: _ when c = col -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 cols

(* --- evaluation ---------------------------------------------------------------- *)

let rec eval t table row rowid = function
  | Lit v -> v
  | Col "rowid" -> Record.Int rowid
  | Col c -> List.nth row (col_pos t table c)
  | Cmp (op, a, b) -> (
      let va = eval t table row rowid a and vb = eval t table row rowid b in
      match (va, vb) with
      | Record.Null, _ | _, Record.Null -> Record.Null  (* SQL three-valued-ish *)
      | _ ->
          let c = Record.compare_value va vb in
          let r =
            match op with
            | "=" -> c = 0
            | "<>" -> c <> 0
            | "<" -> c < 0
            | "<=" -> c <= 0
            | ">" -> c > 0
            | ">=" -> c >= 0
            | _ -> assert false
          in
          Record.Int (if r then 1L else 0L))
  | And (a, b) -> (
      match (eval t table row rowid a, eval t table row rowid b) with
      | Record.Int x, Record.Int y -> Record.Int (if x <> 0L && y <> 0L then 1L else 0L)
      | _ -> Record.Null)
  | Or (a, b) -> (
      match (eval t table row rowid a, eval t table row rowid b) with
      | Record.Int x, Record.Int y -> Record.Int (if x <> 0L || y <> 0L then 1L else 0L)
      | _ -> Record.Null)
  | Not a -> (
      match eval t table row rowid a with
      | Record.Int x -> Record.Int (if x = 0L then 1L else 0L)
      | _ -> Record.Null)

let truthy = function Record.Int x -> x <> 0L | _ -> false

let matches t table where rowid row =
  match where with None -> true | Some e -> truthy (eval t table row rowid e)

(* Planner: find an index usable for the WHERE clause. Returns the scan
   as a fold over (rowid, row). *)
let plan t table_name where f =
  let tbl = Db.find_table t.db table_name in
  let indexed_col pos =
    Hashtbl.fold
      (fun idx (tbl', p) acc -> if tbl' = table_name && p = pos then Some idx else acc)
      t.indexes None
  in
  let try_index =
    match where with
    | Some (Cmp ("=", Col c, Lit (Record.Int v)))
    | Some (Cmp ("=", Lit (Record.Int v), Col c))
      when c <> "rowid" -> (
        match indexed_col (col_pos t table_name c) with
        | Some idx -> Some (idx, Int64.to_int v, Int64.to_int v)
        | None -> None)
    | Some (And (Cmp (">=", Col c, Lit (Record.Int lo)), Cmp ("<=", Col c', Lit (Record.Int hi))))
      when c = c' && c <> "rowid" -> (
        match indexed_col (col_pos t table_name c) with
        | Some idx -> Some (idx, Int64.to_int lo, Int64.to_int hi)
        | None -> None)
    | Some (Cmp ("=", Col "rowid", Lit (Record.Int v)))
    | Some (Cmp ("=", Lit (Record.Int v), Col "rowid")) ->
        (* rowid point lookup, no index object needed *)
        (match Db.get tbl v with Some row -> f v row | None -> ());
        raise Exit
    | _ -> None
  in
  match try_index with
  | Some (idx_name, lo, hi) ->
      Db.index_range (Db.find_index t.db idx_name) tbl ~lo ~hi (fun rowid row -> f rowid row)
  | None -> Db.scan tbl f

let scan_matching t table_name where f =
  try plan t table_name where (fun rowid row -> if matches t table_name where rowid row then f rowid row)
  with Exit -> ()

(* --- executor --------------------------------------------------------------------- *)

let exec t input =
  match parse input with
  | Create_table (name, cols) ->
      if Hashtbl.mem t.schema name then Types.error "sql: table %s exists" name;
      ignore (Db.create_table t.db name);
      Hashtbl.replace t.schema name cols;
      save_schema_entry t "table" name (String.concat "," cols);
      Done
  | Create_index (idx, table, col) ->
      let pos = col_pos t table col in
      ignore (Db.create_index t.db (Db.find_table t.db table) ~col:pos ~name:idx);
      Hashtbl.replace t.indexes idx (table, pos);
      save_schema_entry t "index" idx (Printf.sprintf "%s,%d" table pos);
      Done
  | Insert (table, tuples) ->
      let tbl = Db.find_table t.db table in
      let ncols = List.length (columns_of t table) in
      List.iter
        (fun tuple ->
          if List.length tuple <> ncols then
            Types.error "sql: %s expects %d values" table ncols;
          let row = List.map (fun e -> eval t table [] 0L e) tuple in
          ignore (Db.insert t.db tbl row))
        tuples;
      Affected (List.length tuples)
  | Select { cols; aggregates; table; where; order_by; limit } when aggregates <> [] ->
      ignore cols;
      ignore order_by;
      ignore limit;
      (* aggregate query: one result row *)
      let count = ref 0 in
      let accs =
        List.map (fun (f, col) -> (f, col, ref None)) aggregates
      in
      scan_matching t table where (fun rowid row ->
          incr count;
          List.iter
            (fun (f, col, acc) ->
              if not (f = "count") then begin
                let v =
                  if col = "rowid" then Record.Int rowid
                  else List.nth row (col_pos t table col)
                in
                match (v, !acc) with
                | Record.Null, _ -> ()
                | v, None -> acc := Some (v, 1)
                | Record.Int x, Some (Record.Int y, n) -> (
                    match f with
                    | "sum" | "avg" -> acc := Some (Record.Int (Int64.add x y), n + 1)
                    | "min" -> if Int64.compare x y < 0 then acc := Some (Record.Int x, n + 1) else acc := Some (Record.Int y, n + 1)
                    | "max" -> if Int64.compare x y > 0 then acc := Some (Record.Int x, n + 1) else acc := Some (Record.Int y, n + 1)
                    | _ -> ())
                | v, Some (prev, n) -> (
                    match f with
                    | "min" -> if Record.compare_value v prev < 0 then acc := Some (v, n + 1) else acc := Some (prev, n + 1)
                    | "max" -> if Record.compare_value v prev > 0 then acc := Some (v, n + 1) else acc := Some (prev, n + 1)
                    | _ -> Types.error "sql: %s over non-integer column %s" f col)
              end)
            accs);
      let headers = List.map (fun (f, col) -> Printf.sprintf "%s(%s)" f col) aggregates in
      let row =
        List.map
          (fun (f, _col, acc) ->
            match f with
            | "count" -> Record.Int (Int64.of_int !count)
            | "avg" -> (
                match !acc with
                | Some (Record.Int total, n) when n > 0 ->
                    Record.Int (Int64.div total (Int64.of_int n))
                | _ -> Record.Null)
            | _ -> ( match !acc with Some (v, _) -> v | None -> Record.Null))
          accs
      in
      Rows (headers, [ row ])
  | Select { cols; aggregates = _; table; where; order_by; limit } ->
      let all_cols = columns_of t table in
      let rows = ref [] in
      scan_matching t table where (fun rowid row -> rows := (rowid, row) :: !rows);
      let rows = List.rev !rows in
      let rows =
        match order_by with
        | None -> rows
        | Some (col, desc) ->
            let key (rowid, row) =
              if col = "rowid" then Record.Int rowid else List.nth row (col_pos t table col)
            in
            let cmp a b = Record.compare_value (key a) (key b) in
            let sorted = List.stable_sort cmp rows in
            if desc then List.rev sorted else sorted
      in
      let rows =
        match limit with
        | None -> rows
        | Some k -> List.filteri (fun i _ -> i < k) rows
      in
      let headers, project =
        match cols with
        | None -> (all_cols, fun (_, row) -> row)
        | Some cs ->
            ( cs,
              fun (rowid, row) ->
                List.map
                  (fun c ->
                    if c = "rowid" then Record.Int rowid else List.nth row (col_pos t table c))
                  cs )
      in
      Rows (headers, List.map project rows)
  | Update (table, sets, where) ->
      let tbl = Db.find_table t.db table in
      let targets = ref [] in
      scan_matching t table where (fun rowid row -> targets := (rowid, row) :: !targets);
      List.iter
        (fun (rowid, row) ->
          let row' =
            List.mapi
              (fun i v ->
                match List.assoc_opt (List.nth (columns_of t table) i) sets with
                | Some e -> eval t table row rowid e
                | None -> v)
              row
          in
          ignore (Db.update t.db tbl rowid row'))
        !targets;
      Affected (List.length !targets)
  | Delete (table, where) ->
      let tbl = Db.find_table t.db table in
      let targets = ref [] in
      scan_matching t table where (fun rowid _ -> targets := rowid :: !targets);
      List.iter (fun rowid -> ignore (Db.delete t.db tbl rowid)) !targets;
      Affected (List.length !targets)
  | Begin_txn ->
      Db.begin_txn t.db;
      Done
  | Commit ->
      Db.commit t.db;
      Done
  | Rollback ->
      Db.rollback t.db;
      Done

let exec_script t script =
  String.split_on_char ';' script
  |> List.filter_map (fun s -> if String.trim s = "" then None else Some (exec t s))
