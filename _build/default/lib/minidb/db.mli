(** The database engine: catalog, tables, secondary indexes, and a
    small execution layer (point/range queries, updates, joins,
    aggregates) — enough surface to express the speedtest1 workload.

    Storage: page 0 holds the catalog (table/index roots and rowid
    counters); each table is a B+tree keyed by rowid with
    record-encoded rows; each index is a B+tree keyed by a composite of
    the column value and the rowid. Transactions delegate to the
    pager's rollback journal; the catalog is re-written on commit when
    roots moved. *)

type t
type table
type index

val open_db :
  ?cache_pages:int -> ?journal_mode:Pager.journal_mode -> Os_iface.t -> path:string -> t
val close : t -> unit
val pager : t -> Pager.t

(** {1 Schema} *)

val create_table : t -> string -> table
val find_table : t -> string -> table
(** Raises {!Cubicle.Types.Error} if absent. *)

val table_names : t -> string list

val create_index : t -> table -> col:int -> name:string -> index
(** Builds the index from existing rows. [col] indexes into the row's
    value list; integer columns get ordered range support, text columns
    equality lookups. *)

val find_index : t -> string -> index
val row_count : table -> int

(** {1 Transactions} *)

val begin_txn : t -> unit
val commit : t -> unit
val rollback : t -> unit
val in_txn : t -> bool

val with_txn : t -> (unit -> 'a) -> 'a
(** Begin/commit around [f]; rolls back if [f] raises. *)

(** {1 Rows} *)

val insert : t -> table -> Record.value list -> int64
(** Returns the assigned rowid; maintains all indexes. *)

val get : table -> int64 -> Record.value list option
val update : t -> table -> int64 -> Record.value list -> bool
val delete : t -> table -> int64 -> bool

(** {1 Queries} *)

val scan : table -> (int64 -> Record.value list -> unit) -> unit
val scan_range : table -> lo:int64 -> hi:int64 -> (int64 -> Record.value list -> unit) -> unit

val index_range :
  index -> table -> lo:int -> hi:int -> (int64 -> Record.value list -> unit) -> unit
(** Integer-indexed rows with [lo <= col <= hi], fetching each row. *)

val index_eq_text : index -> table -> string -> (int64 -> Record.value list -> unit) -> unit

val count_where : table -> (Record.value list -> bool) -> int
val max_rowid : table -> int64

val integrity_check : t -> bool
(** Walk every table and index; verify every index entry resolves to a
    live row with the indexed value, and row/entry counts agree. *)
