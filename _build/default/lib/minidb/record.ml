type value = Null | Int of int64 | Text of string

let int n = Int (Int64.of_int n)

let to_int = function
  | Int i -> Int64.to_int i
  | Null -> invalid_arg "Record.to_int: NULL"
  | Text _ -> invalid_arg "Record.to_int: text value"

let to_text = function
  | Text s -> s
  | Int i -> Int64.to_string i
  | Null -> invalid_arg "Record.to_text: NULL"

let encoded_size values =
  1
  + List.fold_left
      (fun acc v ->
        acc + 1 + match v with Null -> 0 | Int _ -> 8 | Text s -> 4 + String.length s)
      0 values

let encode values =
  let n = List.length values in
  if n > 255 then invalid_arg "Record.encode: too many columns";
  let b = Buffer.create (encoded_size values) in
  Buffer.add_uint8 b n;
  List.iter
    (fun v ->
      match v with
      | Null -> Buffer.add_uint8 b 0
      | Int i ->
          Buffer.add_uint8 b 1;
          Buffer.add_int64_le b i
      | Text s ->
          Buffer.add_uint8 b 2;
          Buffer.add_int32_le b (Int32.of_int (String.length s));
          Buffer.add_string b s)
    values;
  Buffer.contents b

let decode s =
  if String.length s < 1 then invalid_arg "Record.decode: empty";
  let n = Char.code s.[0] in
  let pos = ref 1 in
  let need k =
    if !pos + k > String.length s then invalid_arg "Record.decode: truncated"
  in
  let rec cols i acc =
    if i = n then List.rev acc
    else begin
      need 1;
      let tag = Char.code s.[!pos] in
      incr pos;
      let v =
        match tag with
        | 0 -> Null
        | 1 ->
            need 8;
            let i64 = String.get_int64_le s !pos in
            pos := !pos + 8;
            Int i64
        | 2 ->
            need 4;
            let len = Int32.to_int (String.get_int32_le s !pos) in
            pos := !pos + 4;
            if len < 0 then invalid_arg "Record.decode: negative length";
            need len;
            let txt = String.sub s !pos len in
            pos := !pos + len;
            Text txt
        | t -> invalid_arg (Printf.sprintf "Record.decode: bad tag %d" t)
      in
      cols (i + 1) (v :: acc)
    end
  in
  let result = cols 0 [] in
  if !pos <> String.length s then invalid_arg "Record.decode: trailing bytes";
  result

let compare_value a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Int64.compare x y
  | Int _, Text _ -> -1
  | Text _, Int _ -> 1
  | Text x, Text y -> String.compare x y

let pp fmt = function
  | Null -> Format.pp_print_string fmt "NULL"
  | Int i -> Format.fprintf fmt "%Ld" i
  | Text s -> Format.fprintf fmt "%S" s
