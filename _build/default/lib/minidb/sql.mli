(** A small SQL front-end over {!Db}: hand-written lexer, recursive
    descent parser, and an executor with rudimentary planning (an
    equality or range predicate on an indexed column uses the index;
    everything else scans).

    Supported statements:
    - [CREATE TABLE t (col, ...)] — columns are dynamically typed;
    - [CREATE INDEX idx ON t (col)];
    - [INSERT INTO t VALUES (e, ...), (e, ...), ...];
    - [SELECT * | col, ... FROM t [WHERE expr] [ORDER BY col [DESC]]
      [LIMIT n]];
    - [UPDATE t SET col = e, ... [WHERE expr]];
    - [DELETE FROM t [WHERE expr]];
    - [BEGIN] / [COMMIT] / [ROLLBACK].

    Expressions: integer and 'string' literals, NULL, column names, the
    [rowid] pseudo-column, comparisons (=, <>, <, <=, >, >=), AND, OR,
    NOT, parentheses.

    Column names are persisted in a reserved [__schema] table so they
    survive close/reopen. *)

exception Parse_error of string

type result =
  | Rows of string list * Record.value list list
      (** column headers and row values, for SELECT *)
  | Affected of int  (** rows touched, for INSERT/UPDATE/DELETE *)
  | Done  (** DDL and transaction control *)

type t

val attach : Db.t -> t
(** Wrap an open database (loads any persisted schema). *)

val db : t -> Db.t

val exec : t -> string -> result
(** Execute one statement. Raises {!Parse_error} on syntax errors and
    {!Cubicle.Types.Error} on semantic ones (unknown table/column). *)

val exec_script : t -> string -> result list
(** Execute a [;]-separated script. *)

val columns_of : t -> string -> string list
(** Declared column names of a table. *)
