(** Memory protection faults raised by the simulated machine. *)

type access = Read | Write | Exec

type reason =
  | Not_present  (** page not mapped *)
  | Page_perm  (** page-level R/W/X denied the access *)
  | Key_perm  (** PKRU denied the access for the page's key *)

type t = { addr : int; access : access; key : int; reason : reason }

exception Violation of t * string
(** Raised when no fault handler resolves the fault: the simulated
    equivalent of a fatal SIGSEGV. The string names the failing
    subsystem or cubicle for diagnostics. *)

val access_to_string : access -> string
val reason_to_string : reason -> string
val pp : Format.formatter -> t -> unit
val violation : ?who:string -> t -> 'a
