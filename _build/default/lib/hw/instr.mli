(** A small instruction model for component code images.

    CubicleOS's loader refuses to load any component whose code contains
    a [wrpkru] or [syscall] instruction, scanning the raw bytes so that
    sequences hidden inside immediates or spanning instruction
    boundaries are also caught (as in ERIM / Hodor). To exercise that
    mechanism faithfully, component images in this reproduction are real
    byte strings assembled from this instruction set, and the forbidden
    instructions use their genuine x86-64 encodings:
    [wrpkru] = [0F 01 EF], [syscall] = [0F 05]. *)

type t =
  | Nop
  | Ret
  | Halt
  | Jmp of int  (** relative displacement *)
  | Call of int  (** relative displacement *)
  | Mov_imm of int * int  (** register, 32-bit immediate *)
  | Load of int * int  (** register <- [addr] *)
  | Store of int * int  (** [addr] <- register *)
  | Add of int * int  (** reg += reg *)
  | Wrpkru  (** forbidden in untrusted code *)
  | Rdpkru
  | Syscall  (** forbidden in untrusted code *)

val encode : t -> string
(** Byte encoding of one instruction. *)

val assemble : t list -> bytes
(** Concatenated encoding of an instruction sequence. *)

val decode : bytes -> int -> (t * int) option
(** [decode code off] decodes the instruction at [off], returning it and
    the offset of the next instruction, or [None] on an invalid or
    truncated encoding. *)

val length : t -> int

type forbidden = { offset : int; what : string }

val scan_forbidden : bytes -> forbidden list
(** [scan_forbidden code] finds every occurrence of a forbidden byte
    sequence at {e any} byte offset, aligned with the instruction stream
    or not. An empty result means the image is safe to map executable. *)

val synth_code : ?ops:int -> string -> bytes
(** [synth_code name] deterministically synthesizes a plausible, safe
    instruction stream for a component called [name] — used by the
    builder to give every component a non-trivial code image for the
    loader to scan and measure. *)
