type perm = { r : bool; w : bool; x : bool }

let perm_none = { r = false; w = false; x = false }
let perm_r = { r = true; w = false; x = false }
let perm_rw = { r = true; w = true; x = false }
let perm_x = { r = false; w = false; x = true }
let perm_rx = { r = true; w = false; x = true }

(* Entries are packed into an int array: bit 0 present, bits 1-3 R/W/X,
   bits 4-7 the MPK key. [on_change] fires after every entry mutation
   so the CPU's software TLB can invalidate its cached decision for
   that page, no matter who performed the mutation (monitor retags,
   loader perm setup, tests poking the table directly). *)
type t = { entries : int array; mutable on_change : int -> unit }

let create npages = { entries = Array.make npages 0; on_change = ignore }
let npages t = Array.length t.entries
let set_hook t f = t.on_change <- f

let check t p =
  if p < 0 || p >= Array.length t.entries then
    invalid_arg (Printf.sprintf "Page_table: page %d out of range" p)

let present t p =
  check t p;
  t.entries.(p) land 1 = 1

let set_present t p b =
  check t p;
  t.entries.(p) <- (if b then t.entries.(p) lor 1 else t.entries.(p) land lnot 1);
  t.on_change p

let perm t p =
  check t p;
  let e = t.entries.(p) in
  { r = e land 2 <> 0; w = e land 4 <> 0; x = e land 8 <> 0 }

let set_perm t p { r; w; x } =
  check t p;
  let bits = (if r then 2 else 0) lor (if w then 4 else 0) lor if x then 8 else 0 in
  t.entries.(p) <- t.entries.(p) land lnot 0b1110 lor bits;
  t.on_change p

let key t p =
  check t p;
  (t.entries.(p) lsr 4) land 0xF

let set_key t p k =
  check t p;
  if k < 0 || k >= Pkru.nkeys then invalid_arg "Page_table.set_key: bad key";
  t.entries.(p) <- t.entries.(p) land lnot 0xF0 lor (k lsl 4);
  t.on_change p

let allows p (a : Fault.access) =
  match a with Fault.Read -> p.r | Fault.Write -> p.w | Fault.Exec -> p.x
