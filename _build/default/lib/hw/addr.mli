(** Address arithmetic for the simulated machine.

    The simulated machine is byte-addressable with 4 KiB pages. Addresses
    are plain non-negative [int]s into a single flat physical/virtual
    space (the simulation does not model translation; MPK operates on the
    flat page array, as CubicleOS runs in a single address space). *)

val page_size : int
(** Bytes per page (4096). *)

val page_shift : int
(** log2 of [page_size]. *)

val page_of : int -> int
(** [page_of addr] is the page number containing [addr]. *)

val base_of_page : int -> int
(** [base_of_page p] is the first address of page [p]. *)

val offset : int -> int
(** [offset addr] is the offset of [addr] within its page. *)

val align_up : int -> int
(** [align_up n] rounds [n] up to a multiple of [page_size]. *)

val align_down : int -> int
(** [align_down n] rounds [n] down to a multiple of [page_size]. *)

val pages_for : int -> int
(** [pages_for bytes] is the number of pages needed to hold [bytes]. *)

val is_aligned : int -> bool
(** [is_aligned addr] is true when [addr] is page-aligned. *)
