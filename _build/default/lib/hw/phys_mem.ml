type t = { data : Bytes.t; npages : int }

let create bytes =
  let sz = Addr.align_up (max bytes Addr.page_size) in
  { data = Bytes.make sz '\000'; npages = sz lsr Addr.page_shift }

let size t = Bytes.length t.data
let npages t = t.npages

let check t addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.data then
    invalid_arg (Printf.sprintf "Phys_mem: access [0x%x, +%d) out of memory" addr len)

(* Unsafe scalar accessors: no bounds check, for callers that have
   already proven the access in-bounds (the CPU's TLB fast path — a
   live TLB entry implies the page, and so the whole single-page
   access, lies inside memory). The u32 variants also dodge the Int32
   boxing of [Bytes.get_int32_le]. *)

let unsafe_get_u8 t addr = Char.code (Bytes.unsafe_get t.data addr)

let unsafe_set_u8 t addr v = Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let unsafe_get_u16 t addr =
  Char.code (Bytes.unsafe_get t.data addr)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 1)) lsl 8)

let unsafe_set_u16 t addr v =
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set t.data (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

let unsafe_get_u32 t addr =
  unsafe_get_u16 t addr lor (unsafe_get_u16 t (addr + 2) lsl 16)

let unsafe_set_u32 t addr v =
  unsafe_set_u16 t addr (v land 0xFFFF);
  unsafe_set_u16 t (addr + 2) ((v lsr 16) land 0xFFFF)

let get_u8 t addr =
  check t addr 1;
  Char.code (Bytes.get t.data addr)

let set_u8 t addr v =
  check t addr 1;
  Bytes.set t.data addr (Char.chr (v land 0xFF))

let get_u16 t addr =
  check t addr 2;
  Bytes.get_uint16_le t.data addr

let set_u16 t addr v =
  check t addr 2;
  Bytes.set_uint16_le t.data addr (v land 0xFFFF)

let get_u32 t addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFFFFFF

let set_u32 t addr v =
  check t addr 4;
  Bytes.set_int32_le t.data addr (Int32.of_int v)

let get_i64 t addr =
  check t addr 8;
  Bytes.get_int64_le t.data addr

let set_i64 t addr v =
  check t addr 8;
  Bytes.set_int64_le t.data addr v

let read_bytes t addr len =
  check t addr len;
  Bytes.sub t.data addr len

let write_bytes t addr b =
  check t addr (Bytes.length b);
  Bytes.blit b 0 t.data addr (Bytes.length b)

let write_string t addr s =
  check t addr (String.length s);
  Bytes.blit_string s 0 t.data addr (String.length s)

let blit t ~src ~dst ~len =
  check t src len;
  check t dst len;
  Bytes.blit t.data src t.data dst len

let fill t addr len c =
  check t addr len;
  Bytes.fill t.data addr len c
