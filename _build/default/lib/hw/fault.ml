type access = Read | Write | Exec
type reason = Not_present | Page_perm | Key_perm
type t = { addr : int; access : access; key : int; reason : reason }

exception Violation of t * string

let access_to_string = function Read -> "read" | Write -> "write" | Exec -> "exec"

let reason_to_string = function
  | Not_present -> "page not present"
  | Page_perm -> "page permission"
  | Key_perm -> "protection key"

let pp fmt t =
  Format.fprintf fmt "fault(%s at 0x%x, key %d: %s)" (access_to_string t.access)
    t.addr t.key (reason_to_string t.reason)

let violation ?(who = "?") t = raise (Violation (t, who))
