type t =
  | Nop
  | Ret
  | Halt
  | Jmp of int
  | Call of int
  | Mov_imm of int * int
  | Load of int * int
  | Store of int * int
  | Add of int * int
  | Wrpkru
  | Rdpkru
  | Syscall

let u32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Bytes.to_string b

(* Opcode bytes are chosen to avoid colliding with 0x0F prefixes except
   for the genuine x86 encodings of the privileged instructions. *)
let encode = function
  | Nop -> "\x90"
  | Ret -> "\xC3"
  | Halt -> "\xF4"
  | Jmp d -> "\xE9" ^ u32 d
  | Call d -> "\xE8" ^ u32 d
  | Mov_imm (r, imm) -> Printf.sprintf "\xB8%c" (Char.chr (r land 0xFF)) ^ u32 imm
  | Load (r, a) -> Printf.sprintf "\x8B%c" (Char.chr (r land 0xFF)) ^ u32 a
  | Store (r, a) -> Printf.sprintf "\x89%c" (Char.chr (r land 0xFF)) ^ u32 a
  | Add (r1, r2) -> Printf.sprintf "\x01%c%c" (Char.chr (r1 land 0xFF)) (Char.chr (r2 land 0xFF))
  | Wrpkru -> "\x0F\x01\xEF"
  | Rdpkru -> "\x0F\x01\xEE"
  | Syscall -> "\x0F\x05"

let length i = String.length (encode i)

let assemble instrs =
  Bytes.of_string (String.concat "" (List.map encode instrs))

let rd32 code off =
  if off + 4 > Bytes.length code then None
  else Some (Int32.to_int (Bytes.get_int32_le code off))

let decode code off =
  if off >= Bytes.length code then None
  else
    let byte i =
      if off + i < Bytes.length code then Some (Char.code (Bytes.get code (off + i)))
      else None
    in
    match Char.code (Bytes.get code off) with
    | 0x90 -> Some (Nop, off + 1)
    | 0xC3 -> Some (Ret, off + 1)
    | 0xF4 -> Some (Halt, off + 1)
    | 0xE9 -> Option.map (fun d -> (Jmp d, off + 5)) (rd32 code (off + 1))
    | 0xE8 -> Option.map (fun d -> (Call d, off + 5)) (rd32 code (off + 1))
    | 0xB8 -> (
        match (byte 1, rd32 code (off + 2)) with
        | Some r, Some imm -> Some (Mov_imm (r, imm), off + 6)
        | _ -> None)
    | 0x8B -> (
        match (byte 1, rd32 code (off + 2)) with
        | Some r, Some a -> Some (Load (r, a), off + 6)
        | _ -> None)
    | 0x89 -> (
        match (byte 1, rd32 code (off + 2)) with
        | Some r, Some a -> Some (Store (r, a), off + 6)
        | _ -> None)
    | 0x01 -> (
        match (byte 1, byte 2) with
        | Some r1, Some r2 -> Some (Add (r1, r2), off + 3)
        | _ -> None)
    | 0x0F -> (
        match (byte 1, byte 2) with
        | Some 0x05, _ -> Some (Syscall, off + 2)
        | Some 0x01, Some 0xEF -> Some (Wrpkru, off + 3)
        | Some 0x01, Some 0xEE -> Some (Rdpkru, off + 3)
        | _ -> None)
    | _ -> None

type forbidden = { offset : int; what : string }

let forbidden_seqs = [ ("\x0F\x01\xEF", "wrpkru"); ("\x0F\x05", "syscall") ]

let scan_forbidden code =
  let n = Bytes.length code in
  let hits = ref [] in
  for off = n - 1 downto 0 do
    List.iter
      (fun (seq, what) ->
        let len = String.length seq in
        if off + len <= n then
          let matches = ref true in
          for i = 0 to len - 1 do
            if Bytes.get code (off + i) <> seq.[i] then matches := false
          done;
          if !matches then hits := { offset = off; what } :: !hits)
      forbidden_seqs
  done;
  !hits

(* A cheap deterministic PRNG so synthesized images are stable across
   runs (benchmark reproducibility). *)
let synth_code ?(ops = 256) name =
  let seed = ref (Hashtbl.hash name land 0x3FFFFFFF) in
  let next () =
    seed := (!seed * 1103515245) + 12345 land 0x3FFFFFFF;
    (!seed lsr 7) land 0xFFFFFF
  in
  let rec gen n acc =
    if n = 0 then List.rev (Ret :: acc)
    else
      let i =
        (* Immediates are masked so they cannot contain a 0x0F byte,
           keeping synthesized images free of forbidden sequences. *)
        let imm () = next () land 0x0E0E0E in
        match next () mod 6 with
        | 0 -> Nop
        | 1 -> Mov_imm (next () land 0x0E, imm ())
        | 2 -> Load (next () land 0x0E, imm ())
        | 3 -> Store (next () land 0x0E, imm ())
        | 4 -> Add (next () land 0x0E, next () land 0x0E)
        | _ -> Call (imm ())
      in
      gen (n - 1) (i :: acc)
  in
  assemble (gen ops [])
