lib/hw/cpu.ml: Addr Bytes Cost Fault Page_table Phys_mem Pkru String
