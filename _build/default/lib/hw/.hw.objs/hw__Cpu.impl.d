lib/hw/cpu.ml: Addr Array Bytes Cost Fault Page_table Phys_mem Pkru String Tlb
