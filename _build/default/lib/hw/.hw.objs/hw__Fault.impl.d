lib/hw/fault.ml: Format
