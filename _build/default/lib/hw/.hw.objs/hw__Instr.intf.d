lib/hw/instr.mli:
