lib/hw/cost.mli:
