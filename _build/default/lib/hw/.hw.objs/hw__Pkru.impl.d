lib/hw/pkru.ml: Format List Printf
