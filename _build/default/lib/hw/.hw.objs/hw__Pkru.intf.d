lib/hw/pkru.mli: Format
