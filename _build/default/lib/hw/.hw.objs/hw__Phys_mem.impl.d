lib/hw/phys_mem.ml: Addr Bytes Char Int32 Printf String
