lib/hw/addr.ml:
