lib/hw/page_table.ml: Array Fault Pkru Printf
