lib/hw/cost.ml:
