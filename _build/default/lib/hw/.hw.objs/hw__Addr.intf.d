lib/hw/addr.mli:
