lib/hw/cpu.mli: Cost Fault Page_table Phys_mem Pkru Tlb
