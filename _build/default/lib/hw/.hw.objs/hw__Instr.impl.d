lib/hw/instr.ml: Bytes Char Hashtbl Int32 List Option Printf String
