lib/hw/page_table.mli: Fault
