let page_shift = 12
let page_size = 1 lsl page_shift
let page_of addr = addr lsr page_shift
let base_of_page p = p lsl page_shift
let offset addr = addr land (page_size - 1)
let align_up n = (n + page_size - 1) land lnot (page_size - 1)
let align_down n = n land lnot (page_size - 1)
let pages_for bytes = if bytes <= 0 then 0 else (bytes + page_size - 1) lsr page_shift
let is_aligned addr = addr land (page_size - 1) = 0
