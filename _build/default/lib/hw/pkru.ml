type t = int

let nkeys = 16
let all_allow = 0
let all_deny = (1 lsl (2 * nkeys)) - 1

let check_key k =
  if k < 0 || k >= nkeys then invalid_arg (Printf.sprintf "Pkru: key %d out of range" k)

let deny r k =
  check_key k;
  r lor (0b11 lsl (2 * k))

let allow r k =
  check_key k;
  r land lnot (0b11 lsl (2 * k))

let allow_read_only r k =
  check_key k;
  allow r k lor (0b10 lsl (2 * k))

let can_read r k =
  check_key k;
  r land (1 lsl (2 * k)) = 0

let can_write r k =
  check_key k;
  r land (0b11 lsl (2 * k)) = 0

let of_keys ks = List.fold_left allow all_deny ks

let pp fmt r =
  Format.fprintf fmt "pkru{";
  for k = 0 to nkeys - 1 do
    let s =
      if can_write r k then "rw" else if can_read r k then "r-" else "--"
    in
    if s <> "--" then Format.fprintf fmt " %d:%s" k s
  done;
  Format.fprintf fmt " }"
