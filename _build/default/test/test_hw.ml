(* Unit and property tests for the simulated hardware (lib/hw). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Addr ---------------------------------------------------------------- *)

let test_addr_basics () =
  check_int "page size" 4096 Hw.Addr.page_size;
  check_int "page of 0" 0 (Hw.Addr.page_of 0);
  check_int "page of 4095" 0 (Hw.Addr.page_of 4095);
  check_int "page of 4096" 1 (Hw.Addr.page_of 4096);
  check_int "base of page 3" 12288 (Hw.Addr.base_of_page 3);
  check_int "offset" 123 (Hw.Addr.offset (8192 + 123));
  check_int "align_up exact" 4096 (Hw.Addr.align_up 4096);
  check_int "align_up up" 8192 (Hw.Addr.align_up 4097);
  check_int "align_down" 4096 (Hw.Addr.align_down 8191);
  check_int "pages_for 0" 0 (Hw.Addr.pages_for 0);
  check_int "pages_for 1" 1 (Hw.Addr.pages_for 1);
  check_int "pages_for 4096" 1 (Hw.Addr.pages_for 4096);
  check_int "pages_for 4097" 2 (Hw.Addr.pages_for 4097);
  check_bool "aligned" true (Hw.Addr.is_aligned 8192);
  check_bool "unaligned" false (Hw.Addr.is_aligned 8193)

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"addr: page_of/base_of_page/offset reconstruct"
    QCheck.(int_bound 100_000_000)
    (fun a -> Hw.Addr.base_of_page (Hw.Addr.page_of a) + Hw.Addr.offset a = a)

(* --- Pkru ---------------------------------------------------------------- *)

let test_pkru_basics () =
  let r = Hw.Pkru.all_deny in
  check_bool "deny read" false (Hw.Pkru.can_read r 3);
  check_bool "deny write" false (Hw.Pkru.can_write r 3);
  let r = Hw.Pkru.allow r 3 in
  check_bool "allow read" true (Hw.Pkru.can_read r 3);
  check_bool "allow write" true (Hw.Pkru.can_write r 3);
  check_bool "others still denied" false (Hw.Pkru.can_read r 4);
  let r = Hw.Pkru.allow_read_only r 3 in
  check_bool "ro read" true (Hw.Pkru.can_read r 3);
  check_bool "ro write" false (Hw.Pkru.can_write r 3)

let test_pkru_all_allow () =
  for k = 0 to Hw.Pkru.nkeys - 1 do
    check_bool "read" true (Hw.Pkru.can_read Hw.Pkru.all_allow k);
    check_bool "write" true (Hw.Pkru.can_write Hw.Pkru.all_allow k)
  done

let test_pkru_of_keys () =
  let r = Hw.Pkru.of_keys [ 1; 15 ] in
  check_bool "key 1 rw" true (Hw.Pkru.can_write r 1);
  check_bool "key 15 rw" true (Hw.Pkru.can_write r 15);
  check_bool "key 0 denied" false (Hw.Pkru.can_read r 0);
  check_bool "key 7 denied" false (Hw.Pkru.can_read r 7)

let test_pkru_bad_key () =
  Alcotest.check_raises "key 16 rejected" (Invalid_argument "Pkru: key 16 out of range")
    (fun () -> ignore (Hw.Pkru.can_read Hw.Pkru.all_allow 16))

let prop_pkru_deny_allow_inverse =
  QCheck.Test.make ~name:"pkru: allow after deny restores rw"
    QCheck.(int_bound 15)
    (fun k ->
      let r = Hw.Pkru.allow (Hw.Pkru.deny Hw.Pkru.all_allow k) k in
      Hw.Pkru.can_read r k && Hw.Pkru.can_write r k)

(* --- Page_table ---------------------------------------------------------- *)

let test_page_table () =
  let pt = Hw.Page_table.create 8 in
  check_bool "absent" false (Hw.Page_table.present pt 5);
  Hw.Page_table.set_present pt 5 true;
  check_bool "present" true (Hw.Page_table.present pt 5);
  Hw.Page_table.set_perm pt 5 Hw.Page_table.perm_rw;
  let p = Hw.Page_table.perm pt 5 in
  check_bool "r" true p.r;
  check_bool "w" true p.w;
  check_bool "x" false p.x;
  Hw.Page_table.set_key pt 5 9;
  check_int "key" 9 (Hw.Page_table.key pt 5);
  (* perm and key are independent *)
  Hw.Page_table.set_perm pt 5 Hw.Page_table.perm_x;
  check_int "key preserved" 9 (Hw.Page_table.key pt 5);
  check_bool "now exec-only" true (Hw.Page_table.perm pt 5).x;
  check_bool "no read" false (Hw.Page_table.perm pt 5).r

let test_page_table_allows () =
  let open Hw.Page_table in
  check_bool "rw allows read" true (allows perm_rw Hw.Fault.Read);
  check_bool "rw allows write" true (allows perm_rw Hw.Fault.Write);
  check_bool "rw denies exec" false (allows perm_rw Hw.Fault.Exec);
  check_bool "x allows exec" true (allows perm_x Hw.Fault.Exec);
  check_bool "x denies read" false (allows perm_x Hw.Fault.Read);
  check_bool "r denies write" false (allows perm_r Hw.Fault.Write)

(* --- Phys_mem ------------------------------------------------------------ *)

let test_phys_mem_scalars () =
  let m = Hw.Phys_mem.create 8192 in
  Hw.Phys_mem.set_u8 m 100 0xAB;
  check_int "u8" 0xAB (Hw.Phys_mem.get_u8 m 100);
  Hw.Phys_mem.set_u16 m 200 0xBEEF;
  check_int "u16" 0xBEEF (Hw.Phys_mem.get_u16 m 200);
  Hw.Phys_mem.set_u32 m 300 0xDEADBEEF;
  check_int "u32" 0xDEADBEEF (Hw.Phys_mem.get_u32 m 300);
  Hw.Phys_mem.set_i64 m 400 0x1122334455667788L;
  Alcotest.(check int64) "i64" 0x1122334455667788L (Hw.Phys_mem.get_i64 m 400)

let test_phys_mem_blit_overlap () =
  let m = Hw.Phys_mem.create 4096 in
  Hw.Phys_mem.write_string m 0 "abcdefgh";
  Hw.Phys_mem.blit m ~src:0 ~dst:2 ~len:6;
  Alcotest.(check string) "memmove semantics" "ababcdef"
    (Bytes.to_string (Hw.Phys_mem.read_bytes m 0 8))

let test_phys_mem_bounds () =
  let m = Hw.Phys_mem.create 4096 in
  Alcotest.check_raises "oob write"
    (Invalid_argument "Phys_mem: access [0x1000, +1) out of memory") (fun () ->
      Hw.Phys_mem.set_u8 m 4096 1)

(* --- Instr --------------------------------------------------------------- *)

let test_instr_roundtrip () =
  let instrs =
    [
      Hw.Instr.Nop;
      Hw.Instr.Ret;
      Hw.Instr.Halt;
      Hw.Instr.Jmp 1234;
      Hw.Instr.Call (-56);
      Hw.Instr.Mov_imm (3, 99);
      Hw.Instr.Load (1, 4096);
      Hw.Instr.Store (2, 8192);
      Hw.Instr.Add (1, 2);
      Hw.Instr.Wrpkru;
      Hw.Instr.Rdpkru;
      Hw.Instr.Syscall;
    ]
  in
  let code = Hw.Instr.assemble instrs in
  let rec decode_all off acc =
    if off >= Bytes.length code then List.rev acc
    else
      match Hw.Instr.decode code off with
      | Some (i, next) -> decode_all next (i :: acc)
      | None -> Alcotest.failf "decode failed at offset %d" off
  in
  Alcotest.(check int) "same count" (List.length instrs) (List.length (decode_all 0 []));
  List.iter2
    (fun a b -> check_bool "instr equal" true (a = b))
    instrs (decode_all 0 [])

let test_scan_finds_wrpkru () =
  let code = Hw.Instr.assemble [ Nop; Nop; Wrpkru; Ret ] in
  match Hw.Instr.scan_forbidden code with
  | [ { offset; what } ] ->
      check_int "offset" 2 offset;
      Alcotest.(check string) "what" "wrpkru" what
  | l -> Alcotest.failf "expected 1 hit, got %d" (List.length l)

let test_scan_finds_syscall () =
  let code = Hw.Instr.assemble [ Syscall ] in
  check_int "one hit" 1 (List.length (Hw.Instr.scan_forbidden code))

let test_scan_misaligned_sequence () =
  (* A wrpkru sequence hidden inside a mov immediate: the bytes
     0F 01 EF appear in the immediate, not as a decoded instruction.
     The scanner must still find it (ERIM-style). *)
  let imm = 0x00EF010F in
  let code = Hw.Instr.assemble [ Mov_imm (1, imm); Ret ] in
  let hits = Hw.Instr.scan_forbidden code in
  check_bool "found hidden wrpkru" true
    (List.exists (fun h -> h.Hw.Instr.what = "wrpkru") hits)

let test_scan_clean_code () =
  let code = Hw.Instr.assemble [ Nop; Mov_imm (1, 42); Load (1, 100); Ret ] in
  check_int "no hits" 0 (List.length (Hw.Instr.scan_forbidden code))

let test_synth_code_safe () =
  (* Synthesized component images must never contain forbidden bytes. *)
  List.iter
    (fun name ->
      let code = Hw.Instr.synth_code ~ops:2048 name in
      check_int (name ^ " clean") 0 (List.length (Hw.Instr.scan_forbidden code)))
    [ "VFSCORE"; "RAMFS"; "LWIP"; "NGINX"; "SQLITE"; "ALLOC"; "TIME"; "PLAT" ]

let test_synth_code_deterministic () =
  let a = Hw.Instr.synth_code "X" and b = Hw.Instr.synth_code "X" in
  check_bool "stable" true (Bytes.equal a b)

(* --- Cpu ----------------------------------------------------------------- *)

let mk_cpu () =
  let cpu = Hw.Cpu.create ~mem_bytes:(64 * 4096) () in
  (* identity-map all pages rw, key 0 *)
  for p = 0 to Hw.Cpu.npages cpu - 1 do
    Hw.Cpu.map_page cpu p Hw.Page_table.perm_rw ~key:0
  done;
  cpu

let test_cpu_rw_roundtrip () =
  let cpu = mk_cpu () in
  Hw.Cpu.write_u32 cpu 5000 0xCAFE;
  check_int "u32" 0xCAFE (Hw.Cpu.read_u32 cpu 5000);
  Hw.Cpu.write_string cpu 6000 "hello";
  Alcotest.(check string) "str" "hello"
    (Bytes.to_string (Hw.Cpu.read_bytes cpu 6000 5))

let test_cpu_not_present_fault () =
  let cpu = mk_cpu () in
  Hw.Cpu.unmap_page cpu 3;
  Alcotest.check_raises "not present"
    (Hw.Fault.Violation
       ( { Hw.Fault.addr = 4096 * 3; access = Hw.Fault.Read; key = 0; reason = Hw.Fault.Not_present },
         "?" ))
    (fun () -> ignore (Hw.Cpu.read_u8 cpu (4096 * 3)))

let test_cpu_page_perm_fault () =
  let cpu = mk_cpu () in
  Hw.Cpu.map_page cpu 4 Hw.Page_table.perm_r ~key:0;
  (* reads fine, writes fault *)
  ignore (Hw.Cpu.read_u8 cpu (4096 * 4));
  check_bool "write faults" true
    (try
       Hw.Cpu.write_u8 cpu (4096 * 4) 1;
       false
     with Hw.Fault.Violation (f, _) -> f.reason = Hw.Fault.Page_perm)

let test_cpu_mpk_disabled_ignores_keys () =
  let cpu = mk_cpu () in
  Hw.Cpu.map_page cpu 5 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.wrpkru cpu Hw.Pkru.all_deny;
  (* MPK off: key is ignored *)
  Hw.Cpu.write_u8 cpu (4096 * 5) 1;
  check_int "read back" 1 (Hw.Cpu.read_u8 cpu (4096 * 5))

let test_cpu_mpk_key_fault () =
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 5 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0 ]);
  check_bool "key fault on read" true
    (try
       ignore (Hw.Cpu.read_u8 cpu (4096 * 5));
       false
     with Hw.Fault.Violation (f, _) -> f.reason = Hw.Fault.Key_perm && f.key = 7)

let test_cpu_mpk_write_disable () =
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 5 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.allow_read_only (Hw.Pkru.of_keys [ 0 ]) 7);
  ignore (Hw.Cpu.read_u8 cpu (4096 * 5));
  check_bool "wd blocks write" true
    (try
       Hw.Cpu.write_u8 cpu (4096 * 5) 1;
       false
     with Hw.Fault.Violation (f, _) -> f.reason = Hw.Fault.Key_perm)

let test_cpu_handler_resolves () =
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 5 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0 ]);
  let resolved = ref 0 in
  Hw.Cpu.set_handler cpu
    (Some
       (fun cpu f ->
         incr resolved;
         (* retag the faulting page to an allowed key: trap-and-map *)
         Hw.Cpu.set_page_key cpu (Hw.Addr.page_of f.Hw.Fault.addr) 0;
         true));
  Hw.Cpu.write_u8 cpu (4096 * 5) 42;
  check_int "one fault" 1 !resolved;
  check_int "value stored" 42 (Hw.Cpu.read_u8 cpu (4096 * 5));
  check_int "no second fault" 1 !resolved

let test_cpu_handler_lies () =
  (* A handler that claims resolution but does not fix the permission
     must not cause an infinite loop: the access re-checks once and
     raises. *)
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 5 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0 ]);
  Hw.Cpu.set_handler cpu (Some (fun _ _ -> true));
  check_bool "still violates" true
    (try
       Hw.Cpu.write_u8 cpu (4096 * 5) 1;
       false
     with Hw.Fault.Violation _ -> true)

let test_cpu_exec_follows_access () =
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 6 Hw.Page_table.perm_x ~key:7;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0 ]);
  (* stock MPK: exec not checked against PKRU *)
  Hw.Cpu.fetch cpu (4096 * 6) 4;
  (* modified MPK (the paper's hardware change): AD implies NX *)
  Hw.Cpu.set_exec_follows_access cpu true;
  check_bool "exec now faults" true
    (try
       Hw.Cpu.fetch cpu (4096 * 6) 4;
       false
     with Hw.Fault.Violation (f, _) -> f.access = Hw.Fault.Exec)

let test_cpu_blit_checks_both_sides () =
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 7 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0 ]);
  Hw.Cpu.write_string cpu 100 "data";
  check_bool "memcpy to protected page faults" true
    (try
       Hw.Cpu.memcpy cpu ~dst:(4096 * 7) ~src:100 ~len:4;
       false
     with Hw.Fault.Violation _ -> true)

let test_cpu_range_crossing_pages () =
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 9 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0 ]);
  (* a write spanning page 8 (allowed) into page 9 (denied) faults *)
  check_bool "spanning write faults" true
    (try
       Hw.Cpu.write_bytes cpu (4096 * 9 - 2) (Bytes.make 4 'x');
       false
     with Hw.Fault.Violation (f, _) -> Hw.Addr.page_of f.Hw.Fault.addr = 9)

let test_cpu_costs () =
  let cpu = mk_cpu () in
  let c0 = Hw.Cost.cycles (Hw.Cpu.cost cpu) in
  Hw.Cpu.wrpkru cpu Hw.Pkru.all_allow;
  let c1 = Hw.Cost.cycles (Hw.Cpu.cost cpu) in
  check_int "wrpkru cost" Hw.Cost.default_model.wrpkru (c1 - c0);
  Hw.Cpu.set_page_key cpu 1 3;
  let c2 = Hw.Cost.cycles (Hw.Cpu.cost cpu) in
  check_int "pkey cost" Hw.Cost.default_model.pkey_set (c2 - c1);
  check_int "wrpkru counted" 1 (Hw.Cpu.wrpkru_count cpu)

(* --- Tlb ------------------------------------------------------------------ *)

(* (a) A cached allow decision must die with the page's key: retag to a
   key the (unchanged) PKRU denies and the very next access faults. *)
let test_tlb_set_key_invalidates () =
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 5 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0; 7 ]);
  (* warm the TLB entry for page 5 *)
  ignore (Hw.Cpu.read_u8 cpu (4096 * 5));
  ignore (Hw.Cpu.read_u8 cpu (4096 * 5));
  (* monitor-style retag to a foreign key, PKRU untouched *)
  Hw.Cpu.set_page_key cpu 5 9;
  check_bool "faults after retag" true
    (try
       ignore (Hw.Cpu.read_u8 cpu (4096 * 5));
       false
     with Hw.Fault.Violation (f, _) -> f.reason = Hw.Fault.Key_perm && f.key = 9)

(* (b) Full system: after a window is closed and the monitor has
   retagged the page back to its owner, a further call into the callee
   must fault (and be rejected) — no stale allow may survive in the
   TLB. *)
let test_tlb_window_close_observed () =
  let open Cubicle in
  let mon = Monitor.create ~protection:Types.Full () in
  let foo =
    Monitor.create_cubicle mon ~name:"FOO" ~kind:Types.Isolated ~heap_pages:8
      ~stack_pages:2
  in
  let bar =
    Monitor.create_cubicle mon ~name:"BAR" ~kind:Types.Isolated ~heap_pages:8
      ~stack_pages:2
  in
  Monitor.register_exports mon bar
    [
      {
        Monitor.sym = "bar_peek";
        fn = (fun ctx a -> Api.read_u8 ctx a.(0));
        stack_bytes = 0;
      };
    ];
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 4096 in
  Monitor.run_as mon foo (fun () -> Api.write_u8 ctx buf 42);
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:4096;
  Api.window_open ctx wid bar;
  check_int "peek through open window" 42 (Monitor.call mon ~caller:foo "bar_peek" [| buf |]);
  Api.window_close ctx wid bar;
  (* the owner touches the page: causal revocation retags it to FOO *)
  Monitor.run_as mon foo (fun () -> Api.write_u8 ctx buf 43);
  check_bool "closed window is closed" true
    (try
       ignore (Monitor.call mon ~caller:foo "bar_peek" [| buf |]);
       false
     with Hw.Fault.Violation _ | Types.Error _ -> true)

(* (c) A PKRU write must be observed by the next access. *)
let test_tlb_wrpkru_observed () =
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 5 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0; 7 ]);
  ignore (Hw.Cpu.read_u8 cpu (4096 * 5));
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0 ]);
  check_bool "faults after wrpkru" true
    (try
       ignore (Hw.Cpu.read_u8 cpu (4096 * 5));
       false
     with Hw.Fault.Violation (f, _) -> f.reason = Hw.Fault.Key_perm);
  (* flipping back re-allows *)
  Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ 0; 7 ]);
  ignore (Hw.Cpu.read_u8 cpu (4096 * 5))

(* (d) Counters behave, and simulated cycles are identical on/off. *)
let test_tlb_counters () =
  let cpu = mk_cpu () in
  Hw.Cpu.set_mpk_enabled cpu true;
  let tlb = Hw.Cpu.tlb cpu in
  Hw.Tlb.reset_counters tlb;
  for _ = 1 to 100 do
    ignore (Hw.Cpu.read_u8 cpu 4096)
  done;
  check_int "one miss" 1 (Hw.Tlb.misses tlb);
  check_int "99 hits" 99 (Hw.Tlb.hits tlb);
  check_bool "hit rate" true (abs_float (Hw.Tlb.hit_rate tlb -. 0.99) < 1e-9);
  Hw.Cpu.set_page_key cpu 1 0;
  check_bool "invalidation counted" true (Hw.Tlb.invalidations tlb > 0);
  Hw.Cpu.wrpkru cpu Hw.Pkru.all_deny;
  check_bool "flush counted" true (Hw.Tlb.flushes tlb > 0)

let tlb_workload cpu =
  (* mixed reads/writes plus a resolved trap-and-map fault *)
  Hw.Cpu.set_mpk_enabled cpu true;
  Hw.Cpu.map_page cpu 9 Hw.Page_table.perm_rw ~key:7;
  Hw.Cpu.set_handler cpu
    (Some
       (fun cpu f ->
         Hw.Cpu.set_page_key cpu (Hw.Addr.page_of f.Hw.Fault.addr) 0;
         true));
  for i = 0 to 4999 do
    Hw.Cpu.write_u32 cpu (4096 + (i mod 1000 * 4)) i;
    ignore (Hw.Cpu.read_u32 cpu (4096 + (i mod 1000 * 4)))
  done;
  (* faulting access, resolved by the handler (trap-and-map) *)
  Hw.Cpu.write_u8 cpu (4096 * 9) 1;
  for _ = 1 to 1000 do
    ignore (Hw.Cpu.read_u8 cpu (4096 * 9))
  done

let test_tlb_cycles_identical () =
  let run enabled =
    let cpu = mk_cpu () in
    Hw.Cpu.set_tlb_enabled cpu enabled;
    tlb_workload cpu;
    (Hw.Cost.cycles (Hw.Cpu.cost cpu), Hw.Cpu.fault_count cpu, Hw.Cpu.wrpkru_count cpu)
  in
  let on_cycles, on_faults, on_wrpkru = run true in
  let off_cycles, off_faults, off_wrpkru = run false in
  check_int "cycles identical" off_cycles on_cycles;
  check_int "faults identical" off_faults on_faults;
  check_int "wrpkru identical" off_wrpkru on_wrpkru;
  (* and the TLB was actually exercised in the enabled run *)
  let cpu = mk_cpu () in
  tlb_workload cpu;
  check_bool "tlb exercised" true (Hw.Tlb.hit_rate (Hw.Cpu.tlb cpu) > 0.9)

let prop_cpu_write_read_roundtrip =
  QCheck.Test.make ~name:"cpu: bytes written are read back"
    QCheck.(pair (int_bound 1000) (string_of_size (QCheck.Gen.int_bound 200)))
    (fun (addr, s) ->
      let cpu = mk_cpu () in
      Hw.Cpu.write_string cpu addr s;
      Bytes.to_string (Hw.Cpu.read_bytes cpu addr (String.length s)) = s)

let instr_gen =
  QCheck.Gen.(
    oneof
      [
        return Hw.Instr.Nop;
        return Hw.Instr.Ret;
        return Hw.Instr.Halt;
        map (fun d -> Hw.Instr.Jmp d) (int_range (-100000) 100000);
        map (fun d -> Hw.Instr.Call d) (int_range (-100000) 100000);
        map2 (fun r i -> Hw.Instr.Mov_imm (r, i)) (int_bound 255) (int_range (-1000000) 1000000);
        map2 (fun r a -> Hw.Instr.Load (r, a)) (int_bound 255) (int_bound 1000000);
        map2 (fun r a -> Hw.Instr.Store (r, a)) (int_bound 255) (int_bound 1000000);
        map2 (fun a b -> Hw.Instr.Add (a, b)) (int_bound 255) (int_bound 255);
        return Hw.Instr.Wrpkru;
        return Hw.Instr.Rdpkru;
        return Hw.Instr.Syscall;
      ])

let prop_instr_assemble_decode =
  QCheck.Test.make ~name:"instr: assemble/decode roundtrip for whole programs"
    (QCheck.make QCheck.Gen.(list_size (int_bound 80) instr_gen))
    (fun instrs ->
      let code = Hw.Instr.assemble instrs in
      let rec decode_all off acc =
        if off >= Bytes.length code then Some (List.rev acc)
        else
          match Hw.Instr.decode code off with
          | Some (i, next) -> decode_all next (i :: acc)
          | None -> None
      in
      decode_all 0 [] = Some instrs)

let prop_scan_iff_privileged =
  (* clean instruction streams (no Wrpkru/Syscall and no 0x0F bytes in
     operands) never trip the scanner *)
  QCheck.Test.make ~name:"scan: safe opcodes with safe operands never flagged"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_bound 60)
           (oneof
              [
                return Hw.Instr.Nop;
                return Hw.Instr.Ret;
                map2
                  (fun r i -> Hw.Instr.Mov_imm (r land 0x0E, i land 0x0E0E0E))
                  (int_bound 255) (int_bound 0xFFFFFF);
                map2
                  (fun a b -> Hw.Instr.Add (a land 0x0E, b land 0x0E))
                  (int_bound 255) (int_bound 255);
              ])))
    (fun instrs -> Hw.Instr.scan_forbidden (Hw.Instr.assemble instrs) = [])

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_addr_roundtrip; prop_pkru_deny_allow_inverse; prop_cpu_write_read_roundtrip;
    prop_instr_assemble_decode; prop_scan_iff_privileged ]

let () =
  Alcotest.run "hw"
    [
      ( "addr",
        [
          Alcotest.test_case "basics" `Quick test_addr_basics;
        ] );
      ( "pkru",
        [
          Alcotest.test_case "basics" `Quick test_pkru_basics;
          Alcotest.test_case "all_allow" `Quick test_pkru_all_allow;
          Alcotest.test_case "of_keys" `Quick test_pkru_of_keys;
          Alcotest.test_case "bad key" `Quick test_pkru_bad_key;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "entry fields" `Quick test_page_table;
          Alcotest.test_case "allows" `Quick test_page_table_allows;
        ] );
      ( "phys_mem",
        [
          Alcotest.test_case "scalars" `Quick test_phys_mem_scalars;
          Alcotest.test_case "blit overlap" `Quick test_phys_mem_blit_overlap;
          Alcotest.test_case "bounds" `Quick test_phys_mem_bounds;
        ] );
      ( "instr",
        [
          Alcotest.test_case "roundtrip" `Quick test_instr_roundtrip;
          Alcotest.test_case "scan wrpkru" `Quick test_scan_finds_wrpkru;
          Alcotest.test_case "scan syscall" `Quick test_scan_finds_syscall;
          Alcotest.test_case "scan misaligned" `Quick test_scan_misaligned_sequence;
          Alcotest.test_case "scan clean" `Quick test_scan_clean_code;
          Alcotest.test_case "synth safe" `Quick test_synth_code_safe;
          Alcotest.test_case "synth deterministic" `Quick test_synth_code_deterministic;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "rw roundtrip" `Quick test_cpu_rw_roundtrip;
          Alcotest.test_case "not present" `Quick test_cpu_not_present_fault;
          Alcotest.test_case "page perm" `Quick test_cpu_page_perm_fault;
          Alcotest.test_case "mpk off ignores keys" `Quick test_cpu_mpk_disabled_ignores_keys;
          Alcotest.test_case "mpk key fault" `Quick test_cpu_mpk_key_fault;
          Alcotest.test_case "write disable" `Quick test_cpu_mpk_write_disable;
          Alcotest.test_case "handler resolves" `Quick test_cpu_handler_resolves;
          Alcotest.test_case "handler lies" `Quick test_cpu_handler_lies;
          Alcotest.test_case "exec follows access" `Quick test_cpu_exec_follows_access;
          Alcotest.test_case "blit checks both" `Quick test_cpu_blit_checks_both_sides;
          Alcotest.test_case "range crossing" `Quick test_cpu_range_crossing_pages;
          Alcotest.test_case "costs" `Quick test_cpu_costs;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "set_key invalidates" `Quick test_tlb_set_key_invalidates;
          Alcotest.test_case "window close observed" `Quick test_tlb_window_close_observed;
          Alcotest.test_case "wrpkru observed" `Quick test_tlb_wrpkru_observed;
          Alcotest.test_case "counters" `Quick test_tlb_counters;
          Alcotest.test_case "cycles identical on/off" `Quick test_tlb_cycles_identical;
        ] );
      ("properties", qsuite);
    ]
