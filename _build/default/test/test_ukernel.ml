(* Tests for the microkernel/Genode baseline and the cross-system
   comparison harness (paper §6.5). *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- kernel cost models -------------------------------------------------- *)

let test_kernel_ordering () =
  (* Genode hosted on Linux pays by far the most per crossing. *)
  let cost k = k.Ukernel.Kernel.rpc_cycles in
  check_bool "linux most expensive" true
    (List.for_all
       (fun k -> cost Ukernel.Kernel.linux >= cost k)
       Ukernel.Kernel.all);
  List.iter
    (fun k ->
      check_bool (k.Ukernel.Kernel.name ^ " positive") true
        (k.Ukernel.Kernel.rpc_cycles > 0 && k.Ukernel.Kernel.signal_cycles > 0))
    Ukernel.Kernel.all

(* --- rpc ------------------------------------------------------------------- *)

let mk_ctx () =
  let mon = Monitor.create ~protection:Types.None_ () in
  let cid = Monitor.create_cubicle mon ~name:"APP" ~kind:Types.Isolated ~heap_pages:16 ~stack_pages:2 in
  (mon, Monitor.ctx_for mon cid)

let test_rpc_charges () =
  let mon, ctx = mk_ctx () in
  let rpc = Ukernel.Rpc.create ctx Ukernel.Kernel.sel4 in
  let c0 = Hw.Cost.cycles (Monitor.cost mon) in
  let r = Ukernel.Rpc.call rpc ~payload:0 (fun () -> 42) in
  check_int "result" 42 r;
  let delta = Hw.Cost.cycles (Monitor.cost mon) - c0 in
  check_bool "charged at least the kernel cost" true
    (delta >= Ukernel.Kernel.sel4.Ukernel.Kernel.rpc_cycles);
  check_int "rpc counted" 1 (Ukernel.Rpc.rpc_count rpc)

let test_rpc_payload_costs_more () =
  let mon, ctx = mk_ctx () in
  let rpc = Ukernel.Rpc.create ctx Ukernel.Kernel.nova in
  let measure payload =
    let c0 = Hw.Cost.cycles (Monitor.cost mon) in
    ignore (Ukernel.Rpc.call rpc ~payload (fun () -> 0));
    Hw.Cost.cycles (Monitor.cost mon) - c0
  in
  check_bool "marshalling scales with payload" true (measure 4096 > measure 8)

let test_rpc_buffer_roundtrip () =
  let _, ctx = mk_ctx () in
  let rpc = Ukernel.Rpc.create ctx Ukernel.Kernel.fiasco_oc in
  Ukernel.Rpc.copy_in rpc (Bytes.of_string "through the message buffer");
  Alcotest.(check string) "copy out" "through the message buffer"
    (Bytes.to_string (Ukernel.Rpc.copy_out rpc 26))

(* --- compose: behavioural equivalence across deployments -------------------- *)

let tiny_workload (os : Minidb.Os_iface.t) =
  let db = Minidb.Db.open_db os ~path:"/t.db" in
  let t = Minidb.Db.create_table db "t" in
  Minidb.Db.with_txn db (fun () ->
      for i = 1 to 100 do
        ignore (Minidb.Db.insert db t [ Minidb.Record.int i; Minidb.Record.Text "x" ])
      done);
  let sum = ref 0 in
  Minidb.Db.scan t (fun _ row -> sum := !sum + Minidb.Record.to_int (List.hd row));
  ignore (Minidb.Db.delete db t 50L);
  let count = Minidb.Db.row_count t in
  Minidb.Db.close db;
  (!sum, count)

let test_all_configs_compute_same_result () =
  let expected = (5050, 99) in
  List.iter
    (fun config ->
      let inst = Ukernel.Compose.make config in
      let result = tiny_workload inst.Ukernel.Compose.os in
      check_bool (Ukernel.Compose.config_name config ^ " result") true (result = expected))
    Ukernel.Compose.
      [
        Linux;
        Unikraft;
        Genode3 Ukernel.Kernel.sel4;
        Genode4 Ukernel.Kernel.sel4;
        Cubicle3;
        Cubicle4;
      ]

let test_speedtest_totals_ordering () =
  (* The paper's Figure 10a ordering: Linux < Genode-3 < Unikraft <
     CubicleOS-3 < CubicleOS-4 < Genode-4 (on Linux). *)
  let n = 40 in
  let total c = Ukernel.Compose.speedtest_total_cycles ~n c in
  let linux = total Ukernel.Compose.Linux in
  let genode3 = total (Ukernel.Compose.Genode3 Ukernel.Kernel.linux) in
  let genode4 = total (Ukernel.Compose.Genode4 Ukernel.Kernel.linux) in
  let unikraft = total Ukernel.Compose.Unikraft in
  let cubicle3 = total Ukernel.Compose.Cubicle3 in
  let cubicle4 = total Ukernel.Compose.Cubicle4 in
  check_bool "linux < genode3" true (linux < genode3);
  check_bool "genode3 < unikraft" true (genode3 < unikraft);
  check_bool "unikraft < cubicle3" true (unikraft < cubicle3);
  check_bool "cubicle3 < cubicle4" true (cubicle3 < cubicle4);
  check_bool "cubicle4 < genode4" true (cubicle4 < genode4)

let test_partitioning_cheaper_than_microkernels () =
  (* The headline claim: adding the RAMFS compartment costs far less
     under CubicleOS than under any message-passing kernel. *)
  let n = 40 in
  let ratio three four =
    float_of_int (Ukernel.Compose.speedtest_total_cycles ~n four)
    /. float_of_int (Ukernel.Compose.speedtest_total_cycles ~n three)
  in
  let cubicle = ratio Ukernel.Compose.Cubicle3 Ukernel.Compose.Cubicle4 in
  List.iter
    (fun k ->
      let g = ratio (Ukernel.Compose.Genode3 k) (Ukernel.Compose.Genode4 k) in
      check_bool (k.Ukernel.Kernel.name ^ " worse than CubicleOS") true (g > cubicle);
      (* the paper's artifact notes: microkernels always above 4x,
         CubicleOS markedly smaller *)
      check_bool (k.Ukernel.Kernel.name ^ " above 3x") true (g > 3.))
    Ukernel.Kernel.all;
  check_bool "cubicle ratio below 2x" true (cubicle < 2.)

let test_genode4_scales_with_kernel_cost () =
  let n = 30 in
  let total k = Ukernel.Compose.speedtest_total_cycles ~n (Ukernel.Compose.Genode4 k) in
  check_bool "linux slowest" true
    (List.for_all (fun k -> total Ukernel.Kernel.linux >= total k) Ukernel.Kernel.all)

let () =
  Alcotest.run "ukernel"
    [
      ("kernel", [ Alcotest.test_case "ordering" `Quick test_kernel_ordering ]);
      ( "rpc",
        [
          Alcotest.test_case "charges" `Quick test_rpc_charges;
          Alcotest.test_case "payload scaling" `Quick test_rpc_payload_costs_more;
          Alcotest.test_case "buffer roundtrip" `Quick test_rpc_buffer_roundtrip;
        ] );
      ( "compose",
        [
          Alcotest.test_case "same results everywhere" `Slow test_all_configs_compute_same_result;
          Alcotest.test_case "fig10a ordering" `Slow test_speedtest_totals_ordering;
          Alcotest.test_case "partitioning advantage" `Slow test_partitioning_cheaper_than_microkernels;
          Alcotest.test_case "genode4 kernel scaling" `Slow test_genode4_scales_with_kernel_cost;
        ] );
    ]
