(* Model-based property test of the window/trap-and-map semantics.

   A reference model of the paper's §5.3/§5.6 rules:
   - each page has an owner and a current tag holder (initially the
     owner);
   - an access by cubicle X to a page owned by Y succeeds iff
     X = Y, or X already holds the tag (causal consistency), or a
     window of Y covering the page is currently open for X;
   - a successful access by X retags the page to X when X = Y or the
     window is open (a pure tag-holder access leaves it in place).

   Random scripts of window operations and accesses are run against
   both the real monitor and the model; allowed/denied decisions and
   final tag holders must agree exactly. *)

open Cubicle

type op =
  | Open_for of int  (* grantee index *)
  | Close_for of int
  | Access of int * int  (* actor index, page index *)
  | Owner_touch of int  (* page index *)

let nactors = 3
let npages = 3

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun g -> Open_for g) (int_bound (nactors - 1));
        map (fun g -> Close_for g) (int_bound (nactors - 1));
        map2 (fun a p -> Access (a, p)) (int_bound (nactors - 1)) (int_bound (npages - 1));
        map (fun p -> Owner_touch p) (int_bound (npages - 1));
      ])

(* the reference model *)
type model = {
  mutable m_open : bool array;  (* window open for actor i *)
  m_tag : int array;  (* page -> current tag holder (-1 = owner) *)
}

let model_access m ~actor ~page =
  (* owner is actor -1 conceptually; actors are grantees *)
  let allowed = m.m_tag.(page) = actor || m.m_open.(actor) in
  if allowed && m.m_open.(actor) then m.m_tag.(page) <- actor;
  (* a cached-tag access without an open window keeps the tag *)
  allowed

let model_owner_touch m ~page = m.m_tag.(page) <- -1

let run_script ops =
  (* real system: OWNER owns [npages] page-aligned buffers in one
     window; ACTOR0..2 are grantees *)
  let mon = Monitor.create ~protection:Types.Full () in
  let owner = Monitor.create_cubicle mon ~name:"OWNER" ~kind:Types.Isolated ~heap_pages:16 ~stack_pages:1 in
  let actors =
    Array.init nactors (fun i ->
        let cid =
          Monitor.create_cubicle mon ~name:(Printf.sprintf "ACTOR%d" i)
            ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1
        in
        Monitor.register_exports mon cid
          [
            {
              Monitor.sym = Printf.sprintf "actor%d_touch" i;
              fn = (fun ctx a -> Api.write_u8 ctx a.(0) 1; 0);
              stack_bytes = 0;
            };
          ];
        cid)
  in
  Monitor.register_exports mon owner
    [
      {
        Monitor.sym = "owner_touch";
        fn = (fun ctx a -> Api.write_u8 ctx a.(0) 1; 0);
        stack_bytes = 0;
      };
    ];
  let ctx = Monitor.ctx_for mon owner in
  let pages = Array.init npages (fun _ -> Api.malloc_page_aligned ctx 4096) in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Array.iter (fun p -> Api.window_add ctx wid ~ptr:p ~size:4096) pages;
  let model = { m_open = Array.make nactors false; m_tag = Array.make npages (-1) } in
  let agree = ref true in
  List.iter
    (fun op ->
      match op with
      | Open_for g ->
          Api.window_open ctx wid actors.(g);
          model.m_open.(g) <- true
      | Close_for g ->
          Api.window_close ctx wid actors.(g);
          model.m_open.(g) <- false
      | Owner_touch p ->
          ignore (Monitor.call mon ~caller:actors.(0) "owner_touch" [| pages.(p) |]);
          model_owner_touch model ~page:p
      | Access (a, p) ->
          let real_allowed =
            match
              Monitor.call mon ~caller:owner
                (Printf.sprintf "actor%d_touch" a)
                [| pages.(p) |]
            with
            | _ -> true
            | exception Hw.Fault.Violation _ -> false
          in
          let model_allowed = model_access model ~actor:a ~page:p in
          if real_allowed <> model_allowed then agree := false)
    ops;
  (* final tag holders must agree too *)
  Array.iteri
    (fun p addr ->
      let key = Hw.Cpu.page_key (Monitor.cpu mon) (Hw.Addr.page_of addr) in
      let expect_key =
        if model.m_tag.(p) = -1 then Monitor.cubicle_key mon owner
        else Monitor.cubicle_key mon actors.(model.m_tag.(p))
      in
      if key <> expect_key then agree := false)
    pages;
  !agree

let prop_trap_and_map_matches_model =
  QCheck.Test.make ~count:60 ~name:"monitor: trap-and-map + causal consistency match the model"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) op_gen))
    run_script

let () =
  Alcotest.run "model"
    [ ("semantics", [ QCheck_alcotest.to_alcotest prop_trap_and_map_matches_model ]) ]
