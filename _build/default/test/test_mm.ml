(* Unit and property tests for the memory-management substrate (lib/mm). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Page_alloc ----------------------------------------------------------- *)

let test_palloc_alloc_free () =
  let pa = Mm.Page_alloc.create ~first_page:10 ~npages:100 in
  let a = Mm.Page_alloc.alloc pa 10 in
  check_int "first run at base" 10 a;
  let b = Mm.Page_alloc.alloc pa 5 in
  check_int "second run after first" 20 b;
  check_int "used" 15 (Mm.Page_alloc.used_pages pa);
  Mm.Page_alloc.free pa a;
  check_int "used after free" 5 (Mm.Page_alloc.used_pages pa);
  (* freed space is reused *)
  let c = Mm.Page_alloc.alloc pa 10 in
  check_int "reuse" 10 c

let test_palloc_coalesce () =
  let pa = Mm.Page_alloc.create ~first_page:0 ~npages:30 in
  let a = Mm.Page_alloc.alloc pa 10 in
  let b = Mm.Page_alloc.alloc pa 10 in
  let c = Mm.Page_alloc.alloc pa 10 in
  check_int "exhausted" 0 (Mm.Page_alloc.free_pages pa);
  Mm.Page_alloc.free pa a;
  Mm.Page_alloc.free pa c;
  Mm.Page_alloc.free pa b;
  (* all three coalesce back into one run of 30 *)
  let d = Mm.Page_alloc.alloc pa 30 in
  check_int "full run again" 0 d

let test_palloc_oom () =
  let pa = Mm.Page_alloc.create ~first_page:0 ~npages:8 in
  Alcotest.check_raises "oom" Mm.Page_alloc.Out_of_memory (fun () ->
      ignore (Mm.Page_alloc.alloc pa 9))

let test_palloc_bad_free () =
  let pa = Mm.Page_alloc.create ~first_page:0 ~npages:8 in
  let a = Mm.Page_alloc.alloc pa 4 in
  Alcotest.check_raises "free inside run"
    (Invalid_argument "Page_alloc.free: page 2 is not a run start") (fun () ->
      Mm.Page_alloc.free pa (a + 2))

let test_palloc_run_size () =
  let pa = Mm.Page_alloc.create ~first_page:0 ~npages:8 in
  let a = Mm.Page_alloc.alloc pa 3 in
  check_bool "size known" true (Mm.Page_alloc.run_size pa a = Some 3);
  check_bool "other unknown" true (Mm.Page_alloc.run_size pa (a + 1) = None)

let prop_palloc_no_overlap =
  QCheck.Test.make ~name:"page_alloc: live runs never overlap"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_range 1 8))
    (fun sizes ->
      let pa = Mm.Page_alloc.create ~first_page:0 ~npages:512 in
      let runs = List.map (fun n -> (Mm.Page_alloc.alloc pa n, n)) sizes in
      let rec pairs = function
        | [] -> true
        | (s, n) :: rest ->
            List.for_all (fun (s', n') -> s + n <= s' || s' + n' <= s) rest
            && pairs rest
      in
      pairs runs)

let prop_palloc_free_restores =
  QCheck.Test.make ~name:"page_alloc: freeing everything restores capacity"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (int_range 1 10))
    (fun sizes ->
      let pa = Mm.Page_alloc.create ~first_page:5 ~npages:256 in
      let runs = List.map (fun n -> Mm.Page_alloc.alloc pa n) sizes in
      List.iter (Mm.Page_alloc.free pa) runs;
      Mm.Page_alloc.free_pages pa = 256 && Mm.Page_alloc.alloc pa 256 = 5)

(* --- Suballoc ------------------------------------------------------------- *)

let test_suballoc_basics () =
  let sa = Mm.Suballoc.create ~base:0x1000 ~size:4096 in
  let a = Mm.Suballoc.alloc sa 100 in
  check_int "first block at base" 0x1000 a;
  let b = Mm.Suballoc.alloc sa 50 in
  check_bool "blocks disjoint" true (b >= a + 100);
  check_int "used" 150 (Mm.Suballoc.used_bytes sa);
  Mm.Suballoc.free sa a;
  check_int "used after free" 50 (Mm.Suballoc.used_bytes sa);
  check_int "live blocks" 1 (Mm.Suballoc.live_blocks sa)

let test_suballoc_alignment () =
  let sa = Mm.Suballoc.create ~base:0x1008 ~size:65536 in
  let a = Mm.Suballoc.alloc ~align:4096 sa 100 in
  check_int "page aligned" 0 (a land 4095);
  let b = Mm.Suballoc.alloc ~align:64 sa 10 in
  check_int "64 aligned" 0 (b land 63)

let test_suballoc_double_free () =
  let sa = Mm.Suballoc.create ~base:0 ~size:4096 in
  let a = Mm.Suballoc.alloc sa 10 in
  Mm.Suballoc.free sa a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Suballoc.free: 0x0 is not a live block") (fun () ->
      Mm.Suballoc.free sa a)

let test_suballoc_oom_and_reuse () =
  let sa = Mm.Suballoc.create ~base:0 ~size:256 in
  let a = Mm.Suballoc.alloc sa 200 in
  Alcotest.check_raises "oom" Mm.Suballoc.Out_of_heap (fun () ->
      ignore (Mm.Suballoc.alloc sa 100));
  Mm.Suballoc.free sa a;
  (* coalesced back: a full-size block fits again *)
  ignore (Mm.Suballoc.alloc sa 256)

let prop_suballoc_no_overlap =
  QCheck.Test.make ~name:"suballoc: live blocks never overlap"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_range 1 100))
    (fun sizes ->
      let sa = Mm.Suballoc.create ~base:0 ~size:65536 in
      let blocks = List.map (fun n -> (Mm.Suballoc.alloc sa n, n)) sizes in
      let rec pairs = function
        | [] -> true
        | (s, n) :: rest ->
            List.for_all (fun (s', n') -> s + n <= s' || s' + n' <= s) rest
            && pairs rest
      in
      pairs blocks)

let prop_suballoc_free_all_coalesces =
  QCheck.Test.make ~name:"suballoc: free-all coalesces to one chunk"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_range 1 64))
    (fun sizes ->
      let sa = Mm.Suballoc.create ~base:128 ~size:8192 in
      let blocks = List.map (Mm.Suballoc.alloc sa) sizes in
      List.iter (Mm.Suballoc.free sa) blocks;
      Mm.Suballoc.used_bytes sa = 0 && Mm.Suballoc.alloc sa 8192 = 128)

let prop_suballoc_interleaved =
  (* Interleave allocs and frees; invariants must hold throughout. *)
  QCheck.Test.make ~name:"suballoc: interleaved alloc/free keeps accounting"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (pair bool (int_range 1 64)))
    (fun script ->
      let sa = Mm.Suballoc.create ~base:0 ~size:16384 in
      let live = ref [] in
      List.iter
        (fun (do_free, n) ->
          if do_free && !live <> [] then begin
            match !live with
            | (a, sz) :: rest ->
                Mm.Suballoc.free sa a;
                live := rest;
                ignore sz
            | [] -> ()
          end
          else
            match Mm.Suballoc.alloc sa n with
            | a -> live := (a, n) :: !live
            | exception Mm.Suballoc.Out_of_heap -> ())
        script;
      let expect = List.fold_left (fun acc (_, n) -> acc + n) 0 !live in
      Mm.Suballoc.used_bytes sa = expect
      && Mm.Suballoc.live_blocks sa = List.length !live)

(* --- Page_meta ------------------------------------------------------------ *)

let test_meta_assign_release () =
  let m = Mm.Page_meta.create 16 in
  check_bool "unowned" true (Mm.Page_meta.owner m 3 = None);
  Mm.Page_meta.assign m ~page:3 ~owner:7 ~kind:Mm.Page_meta.Heap;
  check_bool "owner" true (Mm.Page_meta.owner m 3 = Some 7);
  check_bool "kind" true (Mm.Page_meta.kind m 3 = Some Mm.Page_meta.Heap);
  Mm.Page_meta.release m ~page:3;
  check_bool "released" true (Mm.Page_meta.owner m 3 = None)

let test_meta_single_assignment () =
  (* Ownership is set once at allocation time (L4Sec-style safety). *)
  let m = Mm.Page_meta.create 16 in
  Mm.Page_meta.assign m ~page:3 ~owner:1 ~kind:Mm.Page_meta.Code;
  Alcotest.check_raises "reassign denied"
    (Invalid_argument "Page_meta.assign: page 3 already owned by cubicle 1") (fun () ->
      Mm.Page_meta.assign m ~page:3 ~owner:2 ~kind:Mm.Page_meta.Heap)

let test_meta_owned_by () =
  let m = Mm.Page_meta.create 16 in
  Mm.Page_meta.assign m ~page:1 ~owner:5 ~kind:Mm.Page_meta.Stack;
  Mm.Page_meta.assign m ~page:4 ~owner:5 ~kind:Mm.Page_meta.Heap;
  Mm.Page_meta.assign m ~page:2 ~owner:6 ~kind:Mm.Page_meta.Heap;
  Alcotest.(check (list int)) "pages of 5" [ 1; 4 ] (Mm.Page_meta.owned_by m 5)

let test_meta_kinds () =
  List.iter
    (fun (k, s) -> Alcotest.(check string) "name" s (Mm.Page_meta.kind_to_string k))
    [
      (Mm.Page_meta.Code, "code");
      (Mm.Page_meta.Global, "global");
      (Mm.Page_meta.Stack, "stack");
      (Mm.Page_meta.Heap, "heap");
    ]

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_palloc_no_overlap;
      prop_palloc_free_restores;
      prop_suballoc_no_overlap;
      prop_suballoc_free_all_coalesces;
      prop_suballoc_interleaved;
    ]

let () =
  Alcotest.run "mm"
    [
      ( "page_alloc",
        [
          Alcotest.test_case "alloc/free" `Quick test_palloc_alloc_free;
          Alcotest.test_case "coalesce" `Quick test_palloc_coalesce;
          Alcotest.test_case "oom" `Quick test_palloc_oom;
          Alcotest.test_case "bad free" `Quick test_palloc_bad_free;
          Alcotest.test_case "run size" `Quick test_palloc_run_size;
        ] );
      ( "suballoc",
        [
          Alcotest.test_case "basics" `Quick test_suballoc_basics;
          Alcotest.test_case "alignment" `Quick test_suballoc_alignment;
          Alcotest.test_case "double free" `Quick test_suballoc_double_free;
          Alcotest.test_case "oom and reuse" `Quick test_suballoc_oom_and_reuse;
        ] );
      ( "page_meta",
        [
          Alcotest.test_case "assign/release" `Quick test_meta_assign_release;
          Alcotest.test_case "single assignment" `Quick test_meta_single_assignment;
          Alcotest.test_case "owned_by" `Quick test_meta_owned_by;
          Alcotest.test_case "kind names" `Quick test_meta_kinds;
        ] );
      ("properties", qsuite);
    ]
