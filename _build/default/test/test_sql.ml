(* Tests for the SQL front-end: lexing/parsing, execution, planning,
   transactions, schema persistence. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_sql () =
  let mon = Monitor.create ~protection:Types.None_ ~mem_bytes:(64 * 1024 * 1024) () in
  let cid = Monitor.create_cubicle mon ~name:"APP" ~kind:Types.Isolated ~heap_pages:256 ~stack_pages:4 in
  let os = Minidb.Os_iface.linux (Monitor.ctx_for mon cid) in
  (os, Minidb.Sql.attach (Minidb.Db.open_db os ~path:"/sql.db"))

let rows = function
  | Minidb.Sql.Rows (_, rs) -> rs
  | _ -> Alcotest.fail "expected rows"

let affected = function
  | Minidb.Sql.Affected n -> n
  | _ -> Alcotest.fail "expected affected count"

let ints result = List.map (function [ Minidb.Record.Int i ] -> Int64.to_int i | _ -> -1) (rows result)

let setup_people sql =
  ignore (Minidb.Sql.exec sql "CREATE TABLE people (name, age, city)");
  ignore
    (Minidb.Sql.exec sql
       "INSERT INTO people VALUES ('alice', 30, 'london'), ('bob', 25, 'paris'), \
        ('carol', 35, 'london'), ('dave', 25, 'berlin')")

(* --- parsing errors ---------------------------------------------------------- *)

let test_parse_errors () =
  let _, sql = mk_sql () in
  List.iter
    (fun bad ->
      check_bool bad true
        (match Minidb.Sql.exec sql bad with
        | _ -> false
        | exception Minidb.Sql.Parse_error _ -> true))
    [
      "SELEC * FROM t";
      "SELECT * FROM";
      "INSERT INTO t (1,2)";
      "CREATE TABLE (a)";
      "SELECT * FROM t WHERE";
      "UPDATE t SET";
      "SELECT * FROM t LIMIT 'x'";
      "SELECT * FROM t extra garbage";
      "INSERT INTO t VALUES ('unterminated)";
    ]

let test_semantic_errors () =
  let _, sql = mk_sql () in
  setup_people sql;
  List.iter
    (fun bad ->
      check_bool bad true
        (match Minidb.Sql.exec sql bad with
        | _ -> false
        | exception Types.Error _ -> true))
    [
      "SELECT * FROM nosuch";
      "SELECT nosuch FROM people";
      "INSERT INTO people VALUES (1)";
      "CREATE TABLE people (x)";
    ]

(* --- basic CRUD ---------------------------------------------------------------- *)

let test_insert_select () =
  let _, sql = mk_sql () in
  setup_people sql;
  let r = Minidb.Sql.exec sql "SELECT * FROM people" in
  check_int "4 rows" 4 (List.length (rows r));
  (match r with
  | Minidb.Sql.Rows (headers, _) ->
      Alcotest.(check (list string)) "headers" [ "name"; "age"; "city" ] headers
  | _ -> Alcotest.fail "rows expected");
  let r = Minidb.Sql.exec sql "SELECT age FROM people WHERE name = 'alice'" in
  Alcotest.(check (list int)) "alice is 30" [ 30 ] (ints r)

let test_where_operators () =
  let _, sql = mk_sql () in
  setup_people sql;
  let count q = List.length (rows (Minidb.Sql.exec sql q)) in
  check_int "eq" 2 (count "SELECT * FROM people WHERE city = 'london'");
  check_int "neq" 2 (count "SELECT * FROM people WHERE city <> 'london'");
  check_int "lt" 2 (count "SELECT * FROM people WHERE age < 30");
  check_int "le" 3 (count "SELECT * FROM people WHERE age <= 30");
  check_int "gt" 1 (count "SELECT * FROM people WHERE age > 30");
  check_int "and" 1 (count "SELECT * FROM people WHERE city = 'london' AND age > 30");
  check_int "or" 3 (count "SELECT * FROM people WHERE city = 'paris' OR city = 'london'");
  check_int "not" 2 (count "SELECT * FROM people WHERE NOT city = 'london'");
  check_int "parens" 3
    (count "SELECT * FROM people WHERE (age = 25 AND city = 'paris') OR city = 'london'")

let test_order_limit () =
  let _, sql = mk_sql () in
  setup_people sql;
  let r = Minidb.Sql.exec sql "SELECT age FROM people ORDER BY age" in
  Alcotest.(check (list int)) "ascending" [ 25; 25; 30; 35 ] (ints r);
  let r = Minidb.Sql.exec sql "SELECT age FROM people ORDER BY age DESC LIMIT 2" in
  Alcotest.(check (list int)) "desc limit" [ 35; 30 ] (ints r)

let test_update_delete () =
  let _, sql = mk_sql () in
  setup_people sql;
  check_int "update count" 2
    (affected (Minidb.Sql.exec sql "UPDATE people SET city = 'rome' WHERE city = 'london'"));
  check_int "moved" 2
    (List.length (rows (Minidb.Sql.exec sql "SELECT * FROM people WHERE city = 'rome'")));
  check_int "delete count" 2
    (affected (Minidb.Sql.exec sql "DELETE FROM people WHERE age = 25"));
  check_int "2 remain" 2 (List.length (rows (Minidb.Sql.exec sql "SELECT * FROM people")))

let test_rowid_pseudo_column () =
  let _, sql = mk_sql () in
  setup_people sql;
  let r = Minidb.Sql.exec sql "SELECT rowid FROM people WHERE name = 'alice'" in
  Alcotest.(check (list int)) "rowid 1" [ 1 ] (ints r);
  let r = Minidb.Sql.exec sql "SELECT name FROM people WHERE rowid = 2" in
  check_bool "by rowid" true (rows r = [ [ Minidb.Record.Text "bob" ] ])

let test_null_semantics () =
  let _, sql = mk_sql () in
  ignore (Minidb.Sql.exec sql "CREATE TABLE t (a)");
  ignore (Minidb.Sql.exec sql "INSERT INTO t VALUES (NULL), (1)");
  (* NULL compares to nothing *)
  check_int "null invisible to =" 1
    (List.length (rows (Minidb.Sql.exec sql "SELECT * FROM t WHERE a = 1")));
  check_int "null invisible to <>" 0
    (List.length (rows (Minidb.Sql.exec sql "SELECT * FROM t WHERE a <> 1")))

let test_string_escapes () =
  let _, sql = mk_sql () in
  ignore (Minidb.Sql.exec sql "CREATE TABLE q (s)");
  ignore (Minidb.Sql.exec sql "INSERT INTO q VALUES ('it''s quoted')");
  check_bool "escape" true
    (rows (Minidb.Sql.exec sql "SELECT s FROM q") = [ [ Minidb.Record.Text "it's quoted" ] ])

let test_aggregates () =
  let _, sql = mk_sql () in
  setup_people sql;
  let one q =
    match Minidb.Sql.exec sql q with
    | Minidb.Sql.Rows (_, [ row ]) -> row
    | _ -> Alcotest.fail "expected one aggregate row"
  in
  check_bool "count(*)" true (one "SELECT COUNT(*) FROM people" = [ Minidb.Record.Int 4L ]);
  check_bool "count filtered" true
    (one "SELECT COUNT(*) FROM people WHERE city = 'london'" = [ Minidb.Record.Int 2L ]);
  check_bool "sum" true (one "SELECT SUM(age) FROM people" = [ Minidb.Record.Int 115L ]);
  check_bool "min/max together" true
    (one "SELECT MIN(age), MAX(age) FROM people"
    = [ Minidb.Record.Int 25L; Minidb.Record.Int 28L ]
    || one "SELECT MIN(age), MAX(age) FROM people"
       = [ Minidb.Record.Int 25L; Minidb.Record.Int 35L ]);
  check_bool "avg" true (one "SELECT AVG(age) FROM people" = [ Minidb.Record.Int 28L ]);
  check_bool "min over text" true
    (one "SELECT MIN(name) FROM people" = [ Minidb.Record.Text "alice" ]);
  (* empty set: count 0, others NULL *)
  ignore (Minidb.Sql.exec sql "CREATE TABLE empty (x)");
  check_bool "count empty" true
    (one "SELECT COUNT(*) FROM empty" = [ Minidb.Record.Int 0L ]);
  check_bool "sum empty is null" true
    (one "SELECT SUM(x) FROM empty" = [ Minidb.Record.Null ])

(* --- planning ------------------------------------------------------------------- *)

let test_index_used_for_equality () =
  let _, sql = mk_sql () in
  ignore (Minidb.Sql.exec sql "CREATE TABLE big (v, pad)");
  ignore (Minidb.Sql.exec sql "BEGIN");
  for i = 1 to 500 do
    ignore
      (Minidb.Sql.exec sql (Printf.sprintf "INSERT INTO big VALUES (%d, 'x')" (i mod 50)))
  done;
  ignore (Minidb.Sql.exec sql "COMMIT");
  ignore (Minidb.Sql.exec sql "CREATE INDEX big_v ON big (v)");
  check_int "index equality" 10
    (List.length (rows (Minidb.Sql.exec sql "SELECT * FROM big WHERE v = 7")));
  check_int "index range" 30
    (List.length (rows (Minidb.Sql.exec sql "SELECT * FROM big WHERE v >= 5 AND v <= 7")))

let test_txn_rollback_via_sql () =
  let _, sql = mk_sql () in
  setup_people sql;
  ignore (Minidb.Sql.exec sql "BEGIN");
  ignore (Minidb.Sql.exec sql "DELETE FROM people");
  check_int "empty inside txn" 0 (List.length (rows (Minidb.Sql.exec sql "SELECT * FROM people")));
  ignore (Minidb.Sql.exec sql "ROLLBACK");
  check_int "restored" 4 (List.length (rows (Minidb.Sql.exec sql "SELECT * FROM people")))

let test_schema_persists () =
  let os, sql = mk_sql () in
  setup_people sql;
  ignore (Minidb.Sql.exec sql "CREATE INDEX people_age ON people (age)");
  (* the application closes and reopens the database *)
  Minidb.Db.close (Minidb.Sql.db sql);
  let db2 = Minidb.Db.open_db os ~path:"/sql.db" in
  let sql2 = Minidb.Sql.attach db2 in
  Alcotest.(check (list string)) "columns survive" [ "name"; "age"; "city" ]
    (Minidb.Sql.columns_of sql2 "people");
  check_int "data survives" 4 (List.length (rows (Minidb.Sql.exec sql2 "SELECT * FROM people")));
  check_int "index survives and plans" 2
    (List.length (rows (Minidb.Sql.exec sql2 "SELECT * FROM people WHERE age = 25")))

let test_exec_script () =
  let _, sql = mk_sql () in
  let results =
    Minidb.Sql.exec_script sql
      "CREATE TABLE s (x); INSERT INTO s VALUES (1), (2); SELECT x FROM s ORDER BY x DESC;"
  in
  check_int "3 statements" 3 (List.length results);
  Alcotest.(check (list int)) "script result" [ 2; 1 ] (ints (List.nth results 2))

(* --- on the full CubicleOS stack ---------------------------------------------------- *)

let test_sql_on_cubicleos () =
  let app = Builder.component ~heap_pages:256 ~stack_pages:4 "APP" in
  let sys =
    Libos.Boot.fs_stack ~protection:Types.Full ~mem_bytes:(128 * 1024 * 1024)
      ~extra:[ (app, Types.Isolated) ] ()
  in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make ctx) in
  Monitor.run_as sys.Libos.Boot.mon (Api.self ctx) (fun () ->
      let sql = Minidb.Sql.attach (Minidb.Db.open_db os ~path:"/app.db") in
      ignore (Minidb.Sql.exec sql "CREATE TABLE kv (k, v)");
      ignore (Minidb.Sql.exec sql "INSERT INTO kv VALUES ('answer', 42)");
      check_bool "query through the whole isolated stack" true
        (rows (Minidb.Sql.exec sql "SELECT v FROM kv WHERE k = 'answer'")
        = [ [ Minidb.Record.Int 42L ] ]))

(* --- property: parser never misparses generated selects ------------------------------ *)

let prop_roundtrip_int_inserts =
  QCheck.Test.make ~count:30 ~name:"sql: inserted ints are selected back"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_range (-1000) 1000))
    (fun xs ->
      let _, sql = mk_sql () in
      ignore (Minidb.Sql.exec sql "CREATE TABLE p (x)");
      List.iter
        (fun x -> ignore (Minidb.Sql.exec sql (Printf.sprintf "INSERT INTO p VALUES (%d)" x)))
        xs;
      let got = ints (Minidb.Sql.exec sql "SELECT x FROM p ORDER BY rowid") in
      got = xs)

(* random predicates over random rows: SQL WHERE agrees with a direct
   OCaml evaluation of the same predicate *)
type pred = P_lt of int | P_ge of int | P_eq of int | P_and of pred * pred | P_or of pred * pred | P_not of pred

let rec pred_gen depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof
        [
          map (fun v -> P_lt v) (int_bound 100);
          map (fun v -> P_ge v) (int_bound 100);
          map (fun v -> P_eq v) (int_bound 100);
        ]
    else
      oneof
        [
          map (fun v -> P_lt v) (int_bound 100);
          map2 (fun a b -> P_and (a, b)) (pred_gen (depth - 1)) (pred_gen (depth - 1));
          map2 (fun a b -> P_or (a, b)) (pred_gen (depth - 1)) (pred_gen (depth - 1));
          map (fun a -> P_not a) (pred_gen (depth - 1));
        ])

let rec pred_to_sql = function
  | P_lt v -> Printf.sprintf "x < %d" v
  | P_ge v -> Printf.sprintf "x >= %d" v
  | P_eq v -> Printf.sprintf "x = %d" v
  | P_and (a, b) -> Printf.sprintf "(%s AND %s)" (pred_to_sql a) (pred_to_sql b)
  | P_or (a, b) -> Printf.sprintf "(%s OR %s)" (pred_to_sql a) (pred_to_sql b)
  | P_not a -> Printf.sprintf "(NOT %s)" (pred_to_sql a)

let rec pred_eval p x =
  match p with
  | P_lt v -> x < v
  | P_ge v -> x >= v
  | P_eq v -> x = v
  | P_and (a, b) -> pred_eval a x && pred_eval b x
  | P_or (a, b) -> pred_eval a x || pred_eval b x
  | P_not a -> not (pred_eval a x)

let prop_where_matches_ocaml =
  QCheck.Test.make ~count:30 ~name:"sql: WHERE agrees with direct evaluation"
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 1 40) (int_bound 100)) (pred_gen 2)))
    (fun (xs, pred) ->
      let _, sql = mk_sql () in
      ignore (Minidb.Sql.exec sql "CREATE TABLE p (x)");
      List.iter
        (fun x -> ignore (Minidb.Sql.exec sql (Printf.sprintf "INSERT INTO p VALUES (%d)" x)))
        xs;
      let got =
        ints
          (Minidb.Sql.exec sql
             (Printf.sprintf "SELECT x FROM p WHERE %s ORDER BY rowid" (pred_to_sql pred)))
      in
      got = List.filter (pred_eval pred) xs)

let () =
  Alcotest.run "sql"
    [
      ( "parsing",
        [
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
        ] );
      ( "crud",
        [
          Alcotest.test_case "insert/select" `Quick test_insert_select;
          Alcotest.test_case "where operators" `Quick test_where_operators;
          Alcotest.test_case "order/limit" `Quick test_order_limit;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "rowid" `Quick test_rowid_pseudo_column;
          Alcotest.test_case "null" `Quick test_null_semantics;
          Alcotest.test_case "string escapes" `Quick test_string_escapes;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
        ] );
      ( "planning & txns",
        [
          Alcotest.test_case "index planning" `Quick test_index_used_for_equality;
          Alcotest.test_case "rollback" `Quick test_txn_rollback_via_sql;
          Alcotest.test_case "schema persistence" `Quick test_schema_persists;
          Alcotest.test_case "scripts" `Quick test_exec_script;
        ] );
      ( "integration",
        [ Alcotest.test_case "on cubicleos" `Quick test_sql_on_cubicleos ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_int_inserts;
          QCheck_alcotest.to_alcotest prop_where_matches_ocaml;
        ] );
    ]
