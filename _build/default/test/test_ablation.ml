(* Tests for the design-space ablations of §5.6/§8: eager mapping,
   eager revocation, and window-specific (dedicated) MPK tags. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let is_violation f = match f () with
  | _ -> false
  | exception Hw.Fault.Violation _ -> true

let mk_system ?policy () =
  let mon = Monitor.create ?policy ~protection:Types.Full () in
  let foo = Monitor.create_cubicle mon ~name:"FOO" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  let bar = Monitor.create_cubicle mon ~name:"BAR" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  Monitor.register_exports mon bar
    [
      {
        Monitor.sym = "bar_touch";
        fn = (fun ctx a -> Api.write_u8 ctx a.(0) 0xAA; 0);
        stack_bytes = 0;
      };
    ];
  (mon, foo, bar)

let windowed_buffer mon foo =
  let ctx = Monitor.ctx_for mon foo in
  let buf = Api.malloc_page_aligned ctx 4096 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:4096;
  (ctx, buf, wid)

(* --- eager mapping ----------------------------------------------------------- *)

let test_eager_open_no_faults () =
  let policy = { Monitor.mapping = `Eager_on_open; revocation = `Causal } in
  let mon, foo, bar = mk_system ~policy () in
  let ctx, buf, wid = windowed_buffer mon foo in
  Api.window_open ctx wid bar;
  let faults0 = Hw.Cpu.fault_count (Monitor.cpu mon) in
  ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |]);
  check_int "no fault on first access" faults0 (Hw.Cpu.fault_count (Monitor.cpu mon))

let test_lazy_open_faults_once () =
  let mon, foo, bar = mk_system () in
  let ctx, buf, wid = windowed_buffer mon foo in
  Api.window_open ctx wid bar;
  let faults0 = Hw.Cpu.fault_count (Monitor.cpu mon) in
  ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |]);
  check_int "exactly one fault" (faults0 + 1) (Hw.Cpu.fault_count (Monitor.cpu mon));
  (* and none on the second touch *)
  ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |]);
  check_int "tag cached" (faults0 + 1) (Hw.Cpu.fault_count (Monitor.cpu mon))

let test_eager_open_pays_retags_even_unused () =
  (* The cost asymmetry CubicleOS exploits: eager mapping retags pages
     that the grantee may never touch. *)
  let policy = { Monitor.mapping = `Eager_on_open; revocation = `Causal } in
  let mon, foo, bar = mk_system ~policy () in
  let ctx, _, wid = windowed_buffer mon foo in
  let r0 = Monitor.retag_count mon in
  Api.window_open ctx wid bar;
  check_bool "retagged on open without any access" true (Monitor.retag_count mon > r0);
  let mon', foo', bar' = mk_system () in
  let ctx', _, wid' = windowed_buffer mon' foo' in
  let r0' = Monitor.retag_count mon' in
  Api.window_open ctx' wid' bar';
  check_int "lazy retags nothing" r0' (Monitor.retag_count mon')

(* --- eager revocation ----------------------------------------------------------- *)

let test_eager_revoke_blocks_immediately () =
  let policy = { Monitor.mapping = `Lazy_trap; revocation = `Eager_revoke } in
  let mon, foo, bar = mk_system ~policy () in
  let ctx, buf, wid = windowed_buffer mon foo in
  Api.window_open ctx wid bar;
  ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |]);
  Api.window_close ctx wid bar;
  (* under causal consistency BAR could still touch the page; under
     eager revocation it faults right away *)
  check_bool "locked out immediately" true
    (is_violation (fun () -> Monitor.call mon ~caller:foo "bar_touch" [| buf |]))

let test_causal_revoke_allows_cached_tag () =
  let mon, foo, bar = mk_system () in
  let ctx, buf, wid = windowed_buffer mon foo in
  Api.window_open ctx wid bar;
  ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |]);
  Api.window_close ctx wid bar;
  ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |]);
  check_bool "causally consistent access allowed" true true

let test_eager_revoke_costs_more_retags () =
  let run policy =
    let mon, foo, bar = mk_system ~policy () in
    let ctx, buf, wid = windowed_buffer mon foo in
    for _ = 1 to 10 do
      Api.window_open ctx wid bar;
      ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |]);
      Api.window_close ctx wid bar
    done;
    Monitor.retag_count mon
  in
  let causal = run Monitor.default_policy in
  let eager = run { Monitor.mapping = `Lazy_trap; revocation = `Eager_revoke } in
  check_bool "causal needs fewer retags" true (causal < eager)

(* --- dedicated window tags --------------------------------------------------------- *)

let test_dedicated_tag_no_faults_after_grant () =
  let mon, foo, bar = mk_system () in
  let ctx, buf, wid = windowed_buffer mon foo in
  Api.window_open_dedicated ctx wid bar;
  let faults0 = Hw.Cpu.fault_count (Monitor.cpu mon) in
  for _ = 1 to 5 do
    ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |])
  done;
  check_int "zero faults on hot window" faults0 (Hw.Cpu.fault_count (Monitor.cpu mon));
  check_int "one key in use" 1 (Monitor.dedicated_keys_in_use mon)

let test_dedicated_tag_owner_keeps_access () =
  let mon, foo, bar = mk_system () in
  let ctx, buf, wid = windowed_buffer mon foo in
  Api.window_open_dedicated ctx wid bar;
  (* the owner can still read/write its own (now specially tagged) data *)
  Monitor.run_as mon foo (fun () -> Api.write_u8 ctx buf 7);
  Monitor.run_as mon foo (fun () -> check_int "owner reads back" 7 (Api.read_u8 ctx buf))

let test_dedicated_tag_third_party_blocked () =
  let mon, foo, bar = mk_system () in
  let baz = Monitor.create_cubicle mon ~name:"BAZ" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1 in
  Monitor.register_exports mon baz
    [ { Monitor.sym = "baz_read"; fn = (fun c a -> Api.read_u8 c a.(0)); stack_bytes = 0 } ];
  let ctx, buf, wid = windowed_buffer mon foo in
  Api.window_open_dedicated ctx wid bar;
  check_bool "third party still blocked" true
    (is_violation (fun () -> Monitor.call mon ~caller:foo "baz_read" [| buf |]))

let test_dedicated_tag_close_returns_key () =
  let mon, foo, bar = mk_system () in
  let ctx, buf, wid = windowed_buffer mon foo in
  Api.window_open_dedicated ctx wid bar;
  check_int "key in use" 1 (Monitor.dedicated_keys_in_use mon);
  Api.window_close_dedicated ctx wid bar;
  check_int "key returned" 0 (Monitor.dedicated_keys_in_use mon);
  (* BAR really is locked out now *)
  check_bool "revoked" true
    (is_violation (fun () -> Monitor.call mon ~caller:foo "bar_touch" [| buf |]));
  (* and the owner's pages came back to the owner's tag *)
  Monitor.run_as mon foo (fun () -> ignore (Api.read_u8 ctx buf))

let test_dedicated_tags_exhaust () =
  (* One tag per window: with 2 cubicle keys used, ~12 dedicated tags
     fit before the pool is dry — the paper's core argument against
     per-buffer tags (§5.6). *)
  let mon, foo, bar = mk_system () in
  let ctx = Monitor.ctx_for mon foo in
  let exhausted = ref false in
  Api.window_table_extend ctx ~klass:Mm.Page_meta.Heap;
  (try
     for _ = 1 to 14 do
       let buf = Api.malloc_page_aligned ctx 4096 in
       let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
       Api.window_add ctx wid ~ptr:buf ~size:4096;
       Api.window_open_dedicated ctx wid bar
     done
   with Types.Error _ -> exhausted := true);
  check_bool "tags exhausted" true !exhausted;
  (* trap-and-map keeps working fine with many windows, provided the
     descriptor arrays are extended (paper §5.3) *)
  let mon', foo', bar' = mk_system () in
  let ctx' = Monitor.ctx_for mon' foo' in
  check_bool "array fills up without extension" true
    (match
       for _ = 1 to 30 do
         let buf = Api.malloc_page_aligned ctx' 4096 in
         let wid = Api.window_init ctx' ~klass:Mm.Page_meta.Heap in
         Api.window_add ctx' wid ~ptr:buf ~size:4096
       done
     with
    | () -> false
    | exception Types.Error _ -> true);
  Api.window_table_extend ctx' ~klass:Mm.Page_meta.Heap;
  Api.window_table_extend ctx' ~klass:Mm.Page_meta.Heap;
  for _ = 1 to 20 do
    let buf = Api.malloc_page_aligned ctx' 4096 in
    let wid = Api.window_init ctx' ~klass:Mm.Page_meta.Heap in
    Api.window_add ctx' wid ~ptr:buf ~size:4096;
    Api.window_open ctx' wid bar'
  done;
  check_bool "trap-and-map scales past 16 windows" true true

let test_dedicated_reuse_after_release () =
  let mon, foo, bar = mk_system () in
  let ctx = Monitor.ctx_for mon foo in
  for _ = 1 to 30 do
    let buf = Api.malloc_page_aligned ctx 4096 in
    let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
    Api.window_add ctx wid ~ptr:buf ~size:4096;
    Api.window_open_dedicated ctx wid bar;
    Api.window_close_dedicated ctx wid bar;
    Api.window_destroy ctx wid
  done;
  check_int "keys recycled" 0 (Monitor.dedicated_keys_in_use mon)

let test_hybrid_cheaper_for_hot_window () =
  (* §8's suggested hybrid: a frequently re-opened window is cheaper
     with a dedicated tag than with per-cycle trap-and-map. *)
  let hot_cycles use_dedicated =
    let mon, foo, bar = mk_system () in
    let ctx, buf, wid = windowed_buffer mon foo in
    let c0 = Hw.Cost.cycles (Monitor.cost mon) in
    if use_dedicated then begin
      Api.window_open_dedicated ctx wid bar;
      for _ = 1 to 100 do
        ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |]);
        Monitor.run_as mon foo (fun () -> Api.write_u8 ctx buf 1)
      done
    end
    else begin
      Api.window_open ctx wid bar;
      for _ = 1 to 100 do
        ignore (Monitor.call mon ~caller:foo "bar_touch" [| buf |]);
        (* the owner touching the page bounces the tag back each time *)
        Monitor.run_as mon foo (fun () -> Api.write_u8 ctx buf 1)
      done
    end;
    Hw.Cost.cycles (Monitor.cost mon) - c0
  in
  check_bool "dedicated tag wins for ping-pong access" true
    (hot_cycles true < hot_cycles false)

let () =
  Alcotest.run "ablation"
    [
      ( "eager mapping",
        [
          Alcotest.test_case "no faults" `Quick test_eager_open_no_faults;
          Alcotest.test_case "lazy faults once" `Quick test_lazy_open_faults_once;
          Alcotest.test_case "eager pays unused" `Quick test_eager_open_pays_retags_even_unused;
        ] );
      ( "eager revocation",
        [
          Alcotest.test_case "blocks immediately" `Quick test_eager_revoke_blocks_immediately;
          Alcotest.test_case "causal allows cached" `Quick test_causal_revoke_allows_cached_tag;
          Alcotest.test_case "causal fewer retags" `Quick test_eager_revoke_costs_more_retags;
        ] );
      ( "dedicated tags",
        [
          Alcotest.test_case "no faults" `Quick test_dedicated_tag_no_faults_after_grant;
          Alcotest.test_case "owner access" `Quick test_dedicated_tag_owner_keeps_access;
          Alcotest.test_case "third party blocked" `Quick test_dedicated_tag_third_party_blocked;
          Alcotest.test_case "close returns key" `Quick test_dedicated_tag_close_returns_key;
          Alcotest.test_case "exhaustion" `Quick test_dedicated_tags_exhaust;
          Alcotest.test_case "key recycling" `Quick test_dedicated_reuse_after_release;
          Alcotest.test_case "hybrid wins when hot" `Quick test_hybrid_cheaper_for_hot_window;
        ] );
    ]
