(* Tests for the persistent-disk stack: BLKDEV and the UKFAT backend,
   including persistence across reboots of the whole simulated system. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let app_component () = Builder.component ~heap_pages:64 ~stack_pages:4 "APP"

let boot_fat ?(protection = Types.Full) disk =
  Libos.Boot.fat_stack ~protection ~extra:[ (app_component (), Types.Isolated) ] ~disk ()

let mk_disk () = Libos.Blkdev.create_disk ~sectors:4096 (* 2 MiB *)

(* --- blkdev ------------------------------------------------------------------ *)

let test_blkdev_rw () =
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let blk = Api.cid_of ctx "BLKDEV" in
  let buf = Api.malloc_page_aligned ctx 4096 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:4096;
  Api.window_open ctx wid blk;
  Monitor.run_as sys.Libos.Boot.mon (Api.self ctx) (fun () ->
      Api.write_string ctx buf "sector payload";
      (* use a sector far beyond the file system's area *)
      check_int "write ok" 0 (Api.call ctx "blk_write" [| buf; 4000; 1 |]);
      Api.memset ctx buf 4096 '\000';
      check_int "read ok" 0 (Api.call ctx "blk_read" [| buf; 4000; 1 |]);
      check_str "roundtrip" "sector payload" (Api.read_string ctx buf 14))

let test_blkdev_bounds () =
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let buf = Api.malloc_page_aligned ctx 4096 in
  check_int "past end" Libos.Sysdefs.einval (Api.call ctx "blk_read" [| buf; 4095; 2 |]);
  check_int "too many sectors" Libos.Sysdefs.einval (Api.call ctx "blk_read" [| buf; 0; 9 |]);
  check_int "capacity" 4096 (Api.call ctx "blk_capacity" [||])

let test_blkdev_needs_window () =
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let buf = Api.malloc_page_aligned ctx 4096 in
  (* no window for BLKDEV: the DMA copy must fault *)
  check_bool "unwindowed transfer faults" true
    (match
       Monitor.run_as sys.Libos.Boot.mon (Api.self ctx) (fun () ->
           Api.call ctx "blk_write" [| buf; 4000; 1 |])
     with
    | _ -> false
    | exception Hw.Fault.Violation _ -> true)

(* --- fatfs through the VFS ------------------------------------------------------ *)

let test_fat_write_read () =
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  Libos.Fileio.write_file fio "/hello" "persistent hello";
  check_str "roundtrip" "persistent hello" (Libos.Fileio.read_file fio "/hello");
  check_int "one file" 1 (Libos.Fatfs.file_count (Option.get sys.Libos.Boot.fatfs));
  check_bool "device saw traffic" true
    (Libos.Blkdev.writes (Option.get sys.Libos.Boot.blkdev) > 0)

let test_fat_large_file_chain () =
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  (* spans many 4 KiB clusters *)
  let contents = String.init 50_000 (fun i -> Char.chr (i mod 251)) in
  Libos.Fileio.write_file fio "/big" contents;
  check_str "50 kB across clusters" contents (Libos.Fileio.read_file fio "/big")

let test_fat_persistence_across_reboot () =
  let disk = mk_disk () in
  (* first boot: write files, then the whole system goes away *)
  let sys1 = boot_fat disk in
  let fio1 = Libos.Fileio.make (Libos.Boot.app_ctx sys1 "APP") in
  Libos.Fileio.write_file fio1 "/config" "across reboots";
  Libos.Fileio.write_file fio1 "/data" (String.make 9000 'p');
  (* second boot on the same disk: contents must still be there *)
  let sys2 = boot_fat disk in
  let fio2 = Libos.Fileio.make (Libos.Boot.app_ctx sys2 "APP") in
  check_bool "config exists" true (Libos.Fileio.exists fio2 "/config");
  check_str "config content" "across reboots" (Libos.Fileio.read_file fio2 "/config");
  check_str "data content" (String.make 9000 'p') (Libos.Fileio.read_file fio2 "/data");
  check_int "both files found" 2 (Libos.Fatfs.file_count (Option.get sys2.Libos.Boot.fatfs))

let test_fat_unlink_frees_clusters () =
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let fat = Option.get sys.Libos.Boot.fatfs in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  let free0 = Libos.Fatfs.free_clusters fat in
  Libos.Fileio.write_file fio "/tmp" (String.make 20_000 'x');
  check_bool "clusters consumed" true (Libos.Fatfs.free_clusters fat < free0);
  check_int "unlink" 0 (Libos.Fileio.unlink fio "/tmp");
  check_int "clusters released" free0 (Libos.Fatfs.free_clusters fat)

let test_fat_truncate () =
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let fat = Option.get sys.Libos.Boot.fatfs in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  Libos.Fileio.write_file fio "/t" (String.make 20_000 'q');
  let before = Libos.Fatfs.free_clusters fat in
  let fd = Libos.Fileio.open_file fio "/t" ~create:false in
  check_int "truncate" 0 (Libos.Fileio.truncate fio ~fd ~size:100);
  check_int "size" 100 (Libos.Fileio.file_size fio fd);
  check_bool "clusters freed" true (Libos.Fatfs.free_clusters fat > before);
  check_str "prefix kept" (String.make 100 'q') (Libos.Fileio.read_file fio "/t")

let test_fat_rename_replace () =
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  Libos.Fileio.write_file fio "/a" "AAA";
  Libos.Fileio.write_file fio "/b" "BBB";
  check_int "rename" 0 (Libos.Fileio.rename fio ~old_name:"/a" ~new_name:"/b");
  check_bool "a gone" false (Libos.Fileio.exists fio "/a");
  check_str "b replaced" "AAA" (Libos.Fileio.read_file fio "/b");
  check_int "one file" 1 (Libos.Fatfs.file_count (Option.get sys.Libos.Boot.fatfs))

let test_fat_sparse () =
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let fio = Libos.Fileio.make ctx in
  let fd = Libos.Fileio.open_file fio "/s" ~create:true in
  let buf = Api.malloc_page_aligned ctx 16 in
  Api.write_string ctx buf "tail";
  check_int "write at 9000" 4 (Libos.Fileio.pwrite fio ~fd ~buf ~len:4 ~off:9000);
  check_int "size" 9004 (Libos.Fileio.file_size fio fd);
  (* earlier clusters were allocated zeroed *)
  check_int "read hole" 16 (Libos.Fileio.pread fio ~fd ~buf ~len:16 ~off:100);
  check_str "zeroes" (String.make 16 '\000') (Api.read_string ctx buf 16)

let test_fat_disk_full () =
  let small = Libos.Blkdev.create_disk ~sectors:256 (* 128 KiB *) in
  let sys = boot_fat small in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  check_bool "disk fills up" true
    (match Libos.Fileio.write_file fio "/huge" (String.make 200_000 'z') with
    | () -> false
    | exception Types.Error _ -> true)

let test_fat_database_runs_on_it () =
  (* the whole database engine, unchanged, on the persistent backend *)
  let disk = Libos.Blkdev.create_disk ~sectors:16384 (* 8 MiB *) in
  let sys = boot_fat disk in
  let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make (Libos.Boot.app_ctx sys "APP")) in
  let db = Minidb.Db.open_db os ~path:"/fat.db" in
  let t = Minidb.Db.create_table db "t" in
  Minidb.Db.with_txn db (fun () ->
      for i = 1 to 200 do
        ignore (Minidb.Db.insert db t [ Minidb.Record.int i ])
      done);
  check_int "rows" 200 (Minidb.Db.row_count t);
  Minidb.Db.close db;
  (* reboot and reopen the same database *)
  let sys2 = boot_fat disk in
  let os2 = Minidb.Os_iface.cubicleos (Libos.Fileio.make (Libos.Boot.app_ctx sys2 "APP")) in
  let db2 = Minidb.Db.open_db os2 ~path:"/fat.db" in
  check_int "rows after reboot" 200 (Minidb.Db.row_count (Minidb.Db.find_table db2 "t"))

let test_fat_isolation_holds () =
  (* the same window discipline applies to the new backend *)
  let disk = mk_disk () in
  let sys = boot_fat disk in
  let ctx = Libos.Boot.app_ctx sys "APP" in
  let fio = Libos.Fileio.make ctx in
  let fd = Libos.Fileio.open_file fio "/w" ~create:true in
  let buf = Api.malloc_page_aligned ctx 64 in
  check_bool "unwindowed vfs_pwrite faults" true
    (match Api.call ctx "vfs_pwrite" [| fd; buf; 16; 0 |] with
    | _ -> false
    | exception Hw.Fault.Violation _ -> true)

let () =
  Alcotest.run "fatfs"
    [
      ( "blkdev",
        [
          Alcotest.test_case "rw" `Quick test_blkdev_rw;
          Alcotest.test_case "bounds" `Quick test_blkdev_bounds;
          Alcotest.test_case "needs window" `Quick test_blkdev_needs_window;
        ] );
      ( "fatfs",
        [
          Alcotest.test_case "write/read" `Quick test_fat_write_read;
          Alcotest.test_case "large chain" `Quick test_fat_large_file_chain;
          Alcotest.test_case "persistence" `Quick test_fat_persistence_across_reboot;
          Alcotest.test_case "unlink frees" `Quick test_fat_unlink_frees_clusters;
          Alcotest.test_case "truncate" `Quick test_fat_truncate;
          Alcotest.test_case "rename replace" `Quick test_fat_rename_replace;
          Alcotest.test_case "sparse" `Quick test_fat_sparse;
          Alcotest.test_case "disk full" `Quick test_fat_disk_full;
          Alcotest.test_case "database on fat" `Quick test_fat_database_runs_on_it;
          Alcotest.test_case "isolation holds" `Quick test_fat_isolation_holds;
        ] );
    ]
