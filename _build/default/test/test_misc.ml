(* Unit tests for supporting modules: stats, cost accounting, window
   descriptor array capacity, and remaining accessor corners. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- stats -------------------------------------------------------------- *)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.count_call s ~caller:1 ~callee:2 ~sym:"f";
  Stats.count_call s ~caller:1 ~callee:2 ~sym:"f";
  Stats.count_call s ~caller:2 ~callee:3 ~sym:"g";
  Stats.count_shared_call s ~caller:1 ~sym:"memcpy";
  Stats.count_fault s;
  Stats.count_retag s;
  Stats.count_window_op s;
  Stats.count_rejected s;
  check_int "edge 1->2" 2 (Stats.calls_between s ~caller:1 ~callee:2);
  check_int "into 2" 2 (Stats.calls_into s 2);
  check_int "into 3" 1 (Stats.calls_into s 3);
  check_int "sym f" 2 (Stats.calls_to_sym s "f");
  check_int "total" 3 (Stats.total_calls s);
  check_int "shared" 1 (Stats.shared_calls s);
  check_int "faults" 1 (Stats.faults s);
  check_int "retags" 1 (Stats.retags s);
  check_int "window ops" 1 (Stats.window_ops s);
  check_int "rejected" 1 (Stats.rejected s)

let test_stats_edges_sorted () =
  let s = Stats.create () in
  for _ = 1 to 5 do Stats.count_call s ~caller:1 ~callee:2 ~sym:"hot" done;
  Stats.count_call s ~caller:3 ~callee:4 ~sym:"cold";
  (match Stats.edges s with
  | ((1, 2), 5) :: ((3, 4), 1) :: [] -> ()
  | _ -> Alcotest.fail "expected sorted edges");
  let snap = Stats.snapshot s in
  Stats.count_call s ~caller:3 ~callee:4 ~sym:"cold";
  (match Stats.diff_edges s ~since:snap with
  | [ ((3, 4), 1) ] -> ()
  | _ -> Alcotest.fail "expected only the delta")

let test_stats_reset () =
  let s = Stats.create () in
  Stats.count_call s ~caller:1 ~callee:2 ~sym:"f";
  Stats.count_fault s;
  Stats.reset s;
  check_int "calls cleared" 0 (Stats.total_calls s);
  check_int "faults cleared" 0 (Stats.faults s)

(* --- cost --------------------------------------------------------------- *)

let test_cost_accounting () =
  let c = Hw.Cost.create () in
  Hw.Cost.charge c 100;
  Hw.Cost.charge_mem c 64;
  check_bool "cycles accumulate" true (Hw.Cost.cycles c > 100);
  check_int "bytes tracked" 64 c.Hw.Cost.mem_bytes;
  Hw.Cost.reset c;
  check_int "reset" 0 (Hw.Cost.cycles c)

let test_cost_conversions () =
  (* 2.2 GHz: 2.2M cycles per ms *)
  check_bool "ms" true (abs_float (Hw.Cost.to_ms 2_200_000 -. 1.0) < 1e-9);
  check_bool "us" true (abs_float (Hw.Cost.to_us 2_200 -. 1.0) < 1e-9)

let test_custom_model () =
  let model = { Hw.Cost.default_model with wrpkru = 999 } in
  let cpu = Hw.Cpu.create ~model () in
  let c0 = Hw.Cost.cycles (Hw.Cpu.cost cpu) in
  Hw.Cpu.wrpkru cpu Hw.Pkru.all_allow;
  check_int "model override respected" 999 (Hw.Cost.cycles (Hw.Cpu.cost cpu) - c0)

(* --- window descriptor array capacity (paper §5.3) ------------------------ *)

let test_window_capacity_and_extend () =
  let tbl = Window.create_table ~owner:1 ~ncubicles:4 in
  check_int "initial capacity" 8 (Window.capacity tbl Mm.Page_meta.Heap);
  for _ = 1 to 8 do
    ignore (Window.init tbl ~klass:Mm.Page_meta.Heap)
  done;
  check_bool "ninth rejected" true
    (match Window.init tbl ~klass:Mm.Page_meta.Heap with
    | _ -> false
    | exception Types.Error _ -> true);
  (* other classes are unaffected *)
  ignore (Window.init tbl ~klass:Mm.Page_meta.Stack);
  Window.extend tbl Mm.Page_meta.Heap;
  check_int "doubled" 16 (Window.capacity tbl Mm.Page_meta.Heap);
  ignore (Window.init tbl ~klass:Mm.Page_meta.Heap);
  check_int "nine heap windows live" 9
    (List.length
       (List.filter
          (fun w -> w.Window.klass = Mm.Page_meta.Heap)
          (Window.live_windows tbl)))

let test_window_destroy_frees_slot () =
  let tbl = Window.create_table ~owner:1 ~ncubicles:4 in
  let ws = List.init 8 (fun _ -> Window.init tbl ~klass:Mm.Page_meta.Heap) in
  Window.destroy tbl (List.hd ws);
  (* a freed slot can be reused without extending *)
  ignore (Window.init tbl ~klass:Mm.Page_meta.Heap)

let test_monitor_extend_api () =
  let mon = Monitor.create ~protection:Types.Full () in
  let c = Monitor.create_cubicle mon ~name:"C" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1 in
  let ctx = Monitor.ctx_for mon c in
  for _ = 1 to 8 do
    ignore (Api.window_init ctx ~klass:Mm.Page_meta.Heap)
  done;
  check_bool "full" true
    (match Api.window_init ctx ~klass:Mm.Page_meta.Heap with
    | _ -> false
    | exception Types.Error _ -> true);
  Api.window_table_extend ctx ~klass:Mm.Page_meta.Heap;
  ignore (Api.window_init ctx ~klass:Mm.Page_meta.Heap)

(* --- cpu odds and ends ------------------------------------------------------ *)

let test_cpu_u16 () =
  let cpu = Hw.Cpu.create ~mem_bytes:8192 () in
  Hw.Cpu.map_page cpu 0 Hw.Page_table.perm_rw ~key:0;
  Hw.Cpu.write_u16 cpu 10 0xBEEF;
  check_int "u16 roundtrip" 0xBEEF (Hw.Cpu.read_u16 cpu 10);
  (* masked to 16 bits *)
  Hw.Cpu.write_u16 cpu 10 0x12345;
  check_int "masked" 0x2345 (Hw.Cpu.read_u16 cpu 10)

let test_fault_pp () =
  let f = { Hw.Fault.addr = 0x2000; access = Hw.Fault.Write; key = 3; reason = Hw.Fault.Key_perm } in
  Alcotest.(check string) "pretty" "fault(write at 0x2000, key 3: protection key)"
    (Format.asprintf "%a" Hw.Fault.pp f)

let test_types_strings () =
  check_bool "kinds" true
    (List.map Types.kind_to_string [ Types.Isolated; Types.Shared; Types.Trusted ]
    = [ "isolated"; "shared"; "trusted" ]);
  check_bool "protections" true
    (List.map Types.protection_to_string
       [ Types.None_; Types.Trampolines; Types.Mpk; Types.Full ]
    = [ "baseline"; "w/o MPK"; "w/o ACLs"; "full" ])

(* --- reproducibility --------------------------------------------------------- *)

let test_speedtest_deterministic () =
  (* identical configurations must produce identical simulated cycle
     counts: all randomness in the stack is seeded deterministic *)
  let total () = Ukernel.Compose.speedtest_total_cycles ~n:30 Ukernel.Compose.Cubicle4 in
  check_int "bit-identical rerun" (total ()) (total ())

let test_webserver_deterministic () =
  let run () =
    let sys =
      Libos.Boot.net_stack ~protection:Types.Full
        ~extra:[ (Httpd.Server.component (), Types.Isolated) ] ()
    in
    Libos.Boot.populate sys ~as_app:"NGINX" [ ("/d", String.make 20000 'd') ];
    let siege = Httpd.Siege.make sys (Httpd.Server.start sys) in
    (Httpd.Siege.fetch siege "/d").Httpd.Siege.cycles
  in
  check_int "identical request cost" (run ()) (run ())

let () =
  Alcotest.run "misc"
    [
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "edges sorted" `Quick test_stats_edges_sorted;
          Alcotest.test_case "reset" `Quick test_stats_reset;
        ] );
      ( "cost",
        [
          Alcotest.test_case "accounting" `Quick test_cost_accounting;
          Alcotest.test_case "conversions" `Quick test_cost_conversions;
          Alcotest.test_case "custom model" `Quick test_custom_model;
        ] );
      ( "window capacity",
        [
          Alcotest.test_case "capacity+extend" `Quick test_window_capacity_and_extend;
          Alcotest.test_case "destroy frees slot" `Quick test_window_destroy_frees_slot;
          Alcotest.test_case "monitor api" `Quick test_monitor_extend_api;
        ] );
      ( "reproducibility",
        [
          Alcotest.test_case "speedtest deterministic" `Slow test_speedtest_deterministic;
          Alcotest.test_case "webserver deterministic" `Quick test_webserver_deterministic;
        ] );
      ( "odds and ends",
        [
          Alcotest.test_case "u16" `Quick test_cpu_u16;
          Alcotest.test_case "fault pp" `Quick test_fault_pp;
          Alcotest.test_case "type names" `Quick test_types_strings;
        ] );
    ]
