test/test_misc.ml: Alcotest Api Cubicle Format Httpd Hw Libos List Mm Monitor Stats String Types Ukernel Window
