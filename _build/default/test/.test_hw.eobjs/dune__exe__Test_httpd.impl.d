test/test_httpd.ml: Alcotest Builder Char Cubicle Httpd Libos List Monitor Printf Stats String Types
