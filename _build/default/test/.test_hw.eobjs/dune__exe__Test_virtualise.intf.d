test/test_virtualise.mli:
