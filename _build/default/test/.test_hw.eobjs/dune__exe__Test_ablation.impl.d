test/test_ablation.ml: Alcotest Api Array Cubicle Hw Mm Monitor Types
