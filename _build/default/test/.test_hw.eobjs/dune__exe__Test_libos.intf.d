test/test_libos.mli:
