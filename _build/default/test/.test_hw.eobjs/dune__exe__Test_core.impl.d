test/test_core.ml: Alcotest Api Array Bitset Builder Bytes Char Cubicle Format Fun Hw List Loader Logs Mm Monitor Printf QCheck QCheck_alcotest Stats String Trampoline Types Window
