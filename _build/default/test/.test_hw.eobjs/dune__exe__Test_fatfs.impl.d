test/test_fatfs.ml: Alcotest Api Builder Char Cubicle Hw Libos Minidb Mm Monitor Option String Types
