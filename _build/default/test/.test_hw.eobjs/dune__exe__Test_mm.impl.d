test/test_mm.ml: Alcotest List Mm QCheck QCheck_alcotest
