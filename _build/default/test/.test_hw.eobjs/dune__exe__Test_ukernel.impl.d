test/test_ukernel.ml: Alcotest Bytes Cubicle Hw List Minidb Monitor Types Ukernel
