test/test_model.ml: Alcotest Api Array Cubicle Hw List Mm Monitor Printf QCheck QCheck_alcotest Types
