test/test_hw.ml: Alcotest Api Array Bytes Cubicle Hw List Mm Monitor QCheck QCheck_alcotest String Types
