test/test_hw.ml: Alcotest Bytes Hw List QCheck QCheck_alcotest String
