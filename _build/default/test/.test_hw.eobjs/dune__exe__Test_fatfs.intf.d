test/test_fatfs.mli:
