test/test_sched.ml: Alcotest Api Buffer Builder Cubicle Hw Libos Mm Monitor Types
