test/test_minidb.ml: Alcotest Api Builder Cubicle Hashtbl Int64 Libos List Minidb Monitor Printf QCheck QCheck_alcotest Stats String Types
