test/test_virtualise.ml: Alcotest Api Array Builder Cubicle Hw Libos List Mm Monitor Printf Types
