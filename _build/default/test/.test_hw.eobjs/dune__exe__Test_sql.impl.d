test/test_sql.ml: Alcotest Api Builder Cubicle Int64 Libos List Minidb Monitor Printf QCheck QCheck_alcotest Types
