test/test_ukernel.mli:
