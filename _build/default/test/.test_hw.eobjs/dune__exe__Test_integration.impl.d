test/test_integration.ml: Alcotest Api Builder Cubicle Hashtbl Httpd Hw Libos List Minidb Mm Monitor Option Printf QCheck QCheck_alcotest String Types
