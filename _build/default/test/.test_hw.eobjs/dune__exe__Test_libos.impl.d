test/test_libos.ml: Alcotest Api Buffer Builder Char Cubicle Fun Hw Libos List Mm Monitor Option Printf QCheck QCheck_alcotest Stats String Types
