(* Tests for the cooperative scheduler: interleaving, per-thread PKRU,
   and isolation between threads of different cubicles. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_system () =
  let mon = Monitor.create ~protection:Types.Full () in
  let a = Monitor.create_cubicle mon ~name:"A" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  let b = Monitor.create_cubicle mon ~name:"B" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  (mon, a, b)

let test_round_robin_interleaving () =
  let mon, a, b = mk_system () in
  let sched = Libos.Sched.create mon in
  let trace = Buffer.create 16 in
  let worker tag =
    fun () ->
      for _ = 1 to 3 do
        Buffer.add_string trace tag;
        Libos.Sched.yield ()
      done
  in
  ignore (Libos.Sched.spawn sched a (worker "a"));
  ignore (Libos.Sched.spawn sched b (worker "b"));
  Libos.Sched.run sched;
  Alcotest.(check string) "strict alternation" "ababab" (Buffer.contents trace);
  check_int "all done" 0 (Libos.Sched.alive sched);
  check_bool "switches counted" true (Libos.Sched.context_switches sched >= 6)

let test_threads_run_under_own_pkru () =
  (* Each thread sees exactly its cubicle's permissions: thread A can
     touch A's heap but faults on B's, and vice versa — even though
     they interleave on the same hardware thread. *)
  let mon, a, b = mk_system () in
  let ctx_a = Monitor.ctx_for mon a and ctx_b = Monitor.ctx_for mon b in
  let buf_a = Api.malloc ctx_a 16 and buf_b = Api.malloc ctx_b 16 in
  let sched = Libos.Sched.create mon in
  let a_faulted = ref false and b_faulted = ref false in
  ignore
    (Libos.Sched.spawn sched a (fun () ->
         Api.write_u8 ctx_a buf_a 1;
         Libos.Sched.yield ();
         (try Api.write_u8 ctx_a buf_b 9 with Hw.Fault.Violation _ -> a_faulted := true);
         Libos.Sched.yield ();
         Api.write_u8 ctx_a buf_a 2));
  ignore
    (Libos.Sched.spawn sched b (fun () ->
         Api.write_u8 ctx_b buf_b 1;
         Libos.Sched.yield ();
         (try Api.write_u8 ctx_b buf_a 9 with Hw.Fault.Violation _ -> b_faulted := true);
         Libos.Sched.yield ();
         Api.write_u8 ctx_b buf_b 2));
  Libos.Sched.run sched;
  check_bool "A blocked from B's heap" true !a_faulted;
  check_bool "B blocked from A's heap" true !b_faulted;
  Hw.Cpu.wrpkru (Monitor.cpu mon) Hw.Pkru.all_allow;
  check_int "A's final write landed" 2 (Hw.Cpu.read_u8 (Monitor.cpu mon) buf_a);
  check_int "B's final write landed" 2 (Hw.Cpu.read_u8 (Monitor.cpu mon) buf_b)

let test_threads_share_via_windows () =
  (* A window opened by one thread's cubicle grants another thread's
     cubicle access, across yields. *)
  let mon, a, b = mk_system () in
  let ctx_a = Monitor.ctx_for mon a and ctx_b = Monitor.ctx_for mon b in
  let shared = Api.malloc_page_aligned ctx_a 64 in
  let sched = Libos.Sched.create mon in
  ignore
    (Libos.Sched.spawn sched a (fun () ->
         let wid = Api.window_init ctx_a ~klass:Mm.Page_meta.Heap in
         Api.window_add ctx_a wid ~ptr:shared ~size:64;
         Api.window_open ctx_a wid b;
         Api.write_string ctx_a shared "from thread A";
         Libos.Sched.yield ();
         (* B appended while we were parked *)
         Alcotest.(check string) "B's reply visible" "from thread A + B"
           (Api.read_string ctx_a shared 17)));
  ignore
    (Libos.Sched.spawn sched b (fun () ->
         (* runs after A's first slice: the window is already open *)
         Alcotest.(check string) "A's data visible" "from thread A"
           (Api.read_string ctx_b shared 13);
         Api.write_string ctx_b (shared + 13) " + B"));
  Libos.Sched.run sched;
  check_int "all finished" 0 (Libos.Sched.alive sched)

let test_many_threads () =
  let mon, a, b = mk_system () in
  let sched = Libos.Sched.create mon in
  let counter = ref 0 in
  for i = 1 to 50 do
    ignore
      (Libos.Sched.spawn sched
         (if i mod 2 = 0 then a else b)
         (fun () ->
           incr counter;
           Libos.Sched.yield ();
           incr counter))
  done;
  Libos.Sched.run sched;
  check_int "every slice ran" 100 !counter

let test_yield_outside_thread_rejected () =
  check_bool "rejected" true
    (try Libos.Sched.yield (); false with Invalid_argument _ -> true)

let test_exception_propagates () =
  let mon, a, _ = mk_system () in
  let sched = Libos.Sched.create mon in
  ignore (Libos.Sched.spawn sched a (fun () -> failwith "thread crashed"));
  check_bool "exception surfaces" true
    (try Libos.Sched.run sched; false with Failure _ -> true);
  (* monitor state restored despite the crash *)
  check_int "cur restored" Monitor.monitor_cid (Monitor.current mon)

let test_file_io_from_threads () =
  (* two application threads doing interleaved file I/O through the
     full isolated stack *)
  let app1 = Builder.component ~heap_pages:64 ~stack_pages:2 "APP1" in
  let app2 = Builder.component ~heap_pages:64 ~stack_pages:2 "APP2" in
  let sys =
    Libos.Boot.fs_stack ~protection:Types.Full
      ~extra:[ (app1, Types.Isolated); (app2, Types.Isolated) ]
      ()
  in
  let sched = Libos.Sched.create sys.Libos.Boot.mon in
  let cid1 = Builder.cid sys.Libos.Boot.built "APP1" in
  let cid2 = Builder.cid sys.Libos.Boot.built "APP2" in
  let fio1 = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP1") in
  let fio2 = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP2") in
  ignore
    (Libos.Sched.spawn sched cid1 (fun () ->
         Libos.Fileio.write_file fio1 "/one" "first half ";
         Libos.Sched.yield ();
         let fd = Libos.Fileio.open_file fio1 "/one" ~create:false in
         let ctx = Libos.Fileio.ctx fio1 in
         let buf = Api.malloc_page_aligned ctx 16 in
         Api.write_string ctx buf "second half";
         ignore (Libos.Fileio.pwrite fio1 ~fd ~buf ~len:11 ~off:11);
         ignore (Libos.Fileio.close_file fio1 fd)));
  ignore
    (Libos.Sched.spawn sched cid2 (fun () ->
         Libos.Fileio.write_file fio2 "/two" "interleaved";
         Libos.Sched.yield ();
         Alcotest.(check string) "sees own file" "interleaved"
           (Libos.Fileio.read_file fio2 "/two")));
  Libos.Sched.run sched;
  Alcotest.(check string) "interleaved writes composed" "first half second half"
    (Libos.Fileio.read_file fio1 "/one")

let () =
  Alcotest.run "sched"
    [
      ( "cooperative threads",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin_interleaving;
          Alcotest.test_case "per-thread pkru" `Quick test_threads_run_under_own_pkru;
          Alcotest.test_case "windows across threads" `Quick test_threads_share_via_windows;
          Alcotest.test_case "many threads" `Quick test_many_threads;
          Alcotest.test_case "yield outside" `Quick test_yield_outside_thread_rejected;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "threaded file io" `Quick test_file_io_from_threads;
        ] );
    ]
