(* Tests for libmpk-style tag virtualisation (paper §8): more isolated
   cubicles than the 16 hardware keys, with physical keys mapped on
   demand and evicted LRU. *)

open Cubicle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let is_violation f = match f () with
  | _ -> false
  | exception Hw.Fault.Violation _ -> true

(* a system of [n] isolated cubicles, each exporting peek/poke *)
let mk_many n =
  let mon = Monitor.create ~virtualise:true ~protection:Types.Full () in
  let cids =
    List.init n (fun i ->
        let cid =
          Monitor.create_cubicle mon ~name:(Printf.sprintf "C%02d" i) ~kind:Types.Isolated
            ~heap_pages:4 ~stack_pages:1
        in
        Monitor.register_exports mon cid
          [
            {
              Monitor.sym = Printf.sprintf "c%02d_poke" i;
              fn = (fun ctx a -> Api.write_u8 ctx a.(0) (a.(1) land 0xFF); 0);
              stack_bytes = 0;
            };
            {
              Monitor.sym = Printf.sprintf "c%02d_read_own" i;
              fn = (fun ctx a -> Api.read_u8 ctx a.(0));
              stack_bytes = 0;
            };
          ];
        cid)
  in
  (mon, cids)

let test_more_than_16_cubicles_boot () =
  let mon, cids = mk_many 24 in
  check_int "24 cubicles + monitor" 25 (Monitor.ncubicles mon);
  (* every cubicle can run and touch its own heap *)
  List.iteri
    (fun i cid ->
      let ctx = Monitor.ctx_for mon cid in
      let buf = Api.malloc ctx 16 in
      check_int "own access works"
        0
        (Monitor.call mon ~caller:cid (Printf.sprintf "c%02d_poke" i) [| buf; i |]))
    cids

let test_isolation_still_enforced_past_16 () =
  let mon, cids = mk_many 20 in
  let c0 = List.nth cids 0 and c19 = List.nth cids 19 in
  let buf0 = Monitor.malloc mon c0 16 in
  (* cubicle 19 (physical key certainly recycled) cannot touch C00's heap *)
  check_bool "cross access denied" true
    (is_violation (fun () -> Monitor.call mon ~caller:c19 "c19_poke" [| buf0; 1 |]))

let test_evictions_happen () =
  let mon, cids = mk_many 20 in
  (* round-robin through all cubicles: far more working tags than
     physical keys, so evictions must occur *)
  List.iteri
    (fun i cid ->
      let ctx = Monitor.ctx_for mon cid in
      let buf = Api.malloc ctx 8 in
      ignore (Monitor.call mon ~caller:cid (Printf.sprintf "c%02d_poke" i) [| buf; 1 |]))
    cids;
  check_bool "evictions occurred" true (Monitor.tag_evictions mon > 0)

let test_data_survives_eviction () =
  let mon, cids = mk_many 20 in
  let c0 = List.nth cids 0 in
  let ctx0 = Monitor.ctx_for mon c0 in
  let buf = Api.malloc ctx0 8 in
  ignore (Monitor.call mon ~caller:c0 "c00_poke" [| buf; 123 |]);
  (* churn through every other cubicle to force C00's key out *)
  List.iteri
    (fun i cid ->
      if i > 0 then begin
        let ctx = Monitor.ctx_for mon cid in
        let b = Api.malloc ctx 8 in
        ignore (Monitor.call mon ~caller:cid (Printf.sprintf "c%02d_poke" i) [| b; i |])
      end)
    cids;
  check_bool "evicted at least once" true (Monitor.tag_evictions mon > 0);
  (* C00 comes back: its data is intact and readable (lazy re-tagging
     through the fault handler) *)
  check_int "data survived eviction" 123
    (Monitor.call mon ~caller:c0 "c00_read_own" [| buf |])

let test_windows_work_across_virtual_tags () =
  let mon, cids = mk_many 20 in
  let a = List.nth cids 2 and b = List.nth cids 18 in
  let ctx = Monitor.ctx_for mon a in
  let buf = Api.malloc_page_aligned ctx 32 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:32;
  (* closed: denied *)
  check_bool "closed window denied" true
    (is_violation (fun () -> Monitor.call mon ~caller:a "c18_poke" [| buf; 7 |]));
  Api.window_open ctx wid b;
  check_int "open window works" 0 (Monitor.call mon ~caller:a "c18_poke" [| buf; 7 |]);
  Monitor.run_as mon a (fun () -> check_int "written" 7 (Api.read_u8 ctx buf))

let test_without_virtualise_still_fails () =
  let mon = Monitor.create ~protection:Types.Full () in
  for i = 1 to 14 do
    ignore
      (Monitor.create_cubicle mon ~name:(Printf.sprintf "K%d" i) ~kind:Types.Isolated
         ~heap_pages:1 ~stack_pages:1)
  done;
  check_bool "15th fails without virtualise" true
    (match
       Monitor.create_cubicle mon ~name:"K15" ~kind:Types.Isolated ~heap_pages:1
         ~stack_pages:1
     with
    | _ -> false
    | exception Types.Error _ -> true)

let test_virtualised_full_stack () =
  (* the whole library OS stack, plus enough extra isolated components
     to exceed the hardware keys, still serves files correctly *)
  let extras =
    List.init 12 (fun i ->
        (Builder.component ~heap_pages:2 ~stack_pages:1 (Printf.sprintf "X%02d" i),
         Types.Isolated))
  in
  let app = Builder.component ~heap_pages:64 ~stack_pages:4 "APP" in
  let sys =
    Libos.Boot.fs_stack ~protection:Types.Full ~virtualise:true
      ~extra:(extras @ [ (app, Types.Isolated) ])
      ()
  in
  let fio = Libos.Fileio.make (Libos.Boot.app_ctx sys "APP") in
  Libos.Fileio.write_file fio "/v.txt" "virtualised tags";
  Alcotest.(check string) "roundtrip" "virtualised tags" (Libos.Fileio.read_file fio "/v.txt");
  check_int "19 cubicles incl. monitor" 20 (Monitor.ncubicles sys.Libos.Boot.mon)

let test_dedicated_tags_rejected_under_virtualise () =
  let mon, cids = mk_many 3 in
  let c0 = List.hd cids in
  let ctx = Monitor.ctx_for mon c0 in
  let buf = Api.malloc_page_aligned ctx 32 in
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add ctx wid ~ptr:buf ~size:32;
  check_bool "dedicated tags rejected" true
    (match Api.window_open_dedicated ctx wid (List.nth cids 1) with
    | _ -> false
    | exception Types.Error _ -> true)

let () =
  Alcotest.run "virtualise"
    [
      ( "tag virtualisation",
        [
          Alcotest.test_case "boot >16" `Quick test_more_than_16_cubicles_boot;
          Alcotest.test_case "isolation holds" `Quick test_isolation_still_enforced_past_16;
          Alcotest.test_case "evictions" `Quick test_evictions_happen;
          Alcotest.test_case "data survives" `Quick test_data_survives_eviction;
          Alcotest.test_case "windows work" `Quick test_windows_work_across_virtual_tags;
          Alcotest.test_case "without flag fails" `Quick test_without_virtualise_still_fails;
          Alcotest.test_case "full stack" `Quick test_virtualised_full_stack;
          Alcotest.test_case "no dedicated tags" `Quick test_dedicated_tags_rejected_under_virtualise;
        ] );
    ]
