(* The cubicleos command-line tool: boot simulated CubicleOS systems,
   inspect deployments, serve HTTP traffic, and run database workloads
   from the shell. *)

open Cubicle
open Cmdliner

let protection_conv =
  let parse = function
    | "none" | "baseline" -> Ok Types.None_
    | "trampolines" -> Ok Types.Trampolines
    | "mpk" -> Ok Types.Mpk
    | "full" -> Ok Types.Full
    | s -> Error (`Msg (Printf.sprintf "unknown protection %S (none|trampolines|mpk|full)" s))
  in
  let print fmt p = Format.pp_print_string fmt (Types.protection_to_string p) in
  Arg.conv (parse, print)

let protection_arg =
  let doc = "Protection level: none, trampolines, mpk, or full." in
  Arg.(value & opt protection_conv Types.Full & info [ "p"; "protection" ] ~docv:"LEVEL" ~doc)

(* --- info ----------------------------------------------------------------- *)

let info_cmd =
  let run protection net =
    let extra = [ (Builder.component ~heap_pages:32 ~stack_pages:2 "APP", Types.Isolated) ] in
    let sys =
      if net then Libos.Boot.net_stack ~protection ~extra ()
      else Libos.Boot.fs_stack ~protection ~extra ()
    in
    let mon = sys.Libos.Boot.mon in
    Printf.printf "protection: %s\n" (Types.protection_to_string protection);
    Printf.printf "%-10s %-9s %-4s %s\n" "cubicle" "kind" "key" "exports";
    for cid = 0 to Monitor.ncubicles mon - 1 do
      Printf.printf "%-10s %-9s %-4d %s\n" (Monitor.cubicle_name mon cid)
        (Types.kind_to_string (Monitor.cubicle_kind mon cid))
        (Monitor.cubicle_key mon cid)
        (String.concat ", " (Monitor.exports_of mon cid))
    done
  in
  let net =
    Arg.(value & flag & info [ "net" ] ~doc:"Boot the network stack (NGINX deployment).")
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Boot a system and print its cubicle inventory.")
    Term.(const run $ protection_arg $ net)

(* --- serve ------------------------------------------------------------------ *)

let serve_cmd =
  let run protection paths =
    let sys =
      Libos.Boot.net_stack ~protection
        ~extra:[ (Httpd.Server.component (), Types.Isolated) ]
        ()
    in
    Libos.Boot.populate sys ~as_app:"NGINX"
      [ ("/index.html", "<html>cubicleos</html>"); ("/data.bin", String.make 100_000 'd') ];
    let server = Httpd.Server.start sys in
    let siege = Httpd.Siege.make sys server in
    let paths = if paths = [] then [ "/index.html"; "/data.bin" ] else paths in
    List.iter
      (fun path ->
        let r = Httpd.Siege.fetch siege path in
        Printf.printf "GET %-14s -> %d  %8d bytes  %7.2f ms\n" path r.Httpd.Siege.status
          (String.length r.Httpd.Siege.body)
          r.Httpd.Siege.latency_ms)
      paths
  in
  let paths = Arg.(value & pos_all string [] & info [] ~docv:"PATH") in
  Cmd.v
    (Cmd.info "serve" ~doc:"Boot the web server and fetch paths through the simulated network.")
    Term.(const run $ protection_arg $ paths)

(* --- speedtest ----------------------------------------------------------------- *)

let speedtest_cmd =
  let run protection n =
    let app = Builder.component ~heap_pages:512 ~stack_pages:4 "APP" in
    let sys =
      Libos.Boot.fs_stack ~protection ~mem_bytes:(192 * 1024 * 1024)
        ~extra:[ (app, Types.Isolated) ]
        ()
    in
    let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make (Libos.Boot.app_ctx sys "APP")) in
    let cost = Monitor.cost sys.Libos.Boot.mon in
    let results =
      Minidb.Speedtest.run_all os ~path:"/speed.db" ~n ~measure:(fun f ->
          let c0 = Hw.Cost.cycles cost in
          f ();
          Hw.Cost.cycles cost - c0)
    in
    Printf.printf "%-5s %-6s %12s  %s\n" "query" "group" "time(ms)" "description";
    List.iter
      (fun ((q : Minidb.Speedtest.query), c) ->
        Printf.printf "%-5d %-6s %12.2f  %s\n" q.id
          (match q.group with Minidb.Speedtest.Light -> "light" | Heavy -> "heavy")
          (Hw.Cost.to_ms c) q.name)
      results
  in
  let n =
    Arg.(value & opt int 100 & info [ "n"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")
  in
  Cmd.v
    (Cmd.info "speedtest" ~doc:"Run the speedtest1-style database workload.")
    Term.(const run $ protection_arg $ n)

(* --- sql --------------------------------------------------------------------- *)

let sql_cmd =
  let run protection script =
    let app = Builder.component ~heap_pages:256 ~stack_pages:4 "APP" in
    let sys =
      Libos.Boot.fs_stack ~protection ~mem_bytes:(128 * 1024 * 1024)
        ~extra:[ (app, Types.Isolated) ]
        ()
    in
    let ctx = Libos.Boot.app_ctx sys "APP" in
    Monitor.run_as sys.Libos.Boot.mon (Api.self ctx) (fun () ->
        let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make ctx) in
        let sql = Minidb.Sql.attach (Minidb.Db.open_db os ~path:"/cli.db") in
        List.iter
          (fun result ->
            match result with
            | Minidb.Sql.Done -> print_endline "ok"
            | Minidb.Sql.Affected n -> Printf.printf "%d row(s)\n" n
            | Minidb.Sql.Rows (headers, rows) ->
                print_endline (String.concat " | " headers);
                List.iter
                  (fun row ->
                    print_endline
                      (String.concat " | "
                         (List.map (Format.asprintf "%a" Minidb.Record.pp) row)))
                  rows)
          (Minidb.Sql.exec_script sql script))
  in
  let script =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCRIPT" ~doc:"Semicolon-separated SQL statements.")
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run a SQL script on the isolated database stack.")
    Term.(const run $ protection_arg $ script)

(* --- attack ----------------------------------------------------------------- *)

let attack_cmd =
  let run () =
    let app = Builder.component ~heap_pages:32 ~stack_pages:2 "APP" in
    let sys = Libos.Boot.fs_stack ~protection:Types.Full ~extra:[ (app, Types.Isolated) ] () in
    let mon = sys.Libos.Boot.mon in
    let app_ctx = Libos.Boot.app_ctx sys "APP" in
    let attempt name ~blocked_by f =
      match f () with
      | _ -> Printf.printf "!! %-50s NOT BLOCKED\n" name
      | exception Hw.Fault.Violation _ -> Printf.printf "ok %-50s (%s)\n" name blocked_by
      | exception Loader.Rejected _ -> Printf.printf "ok %-50s (%s)\n" name blocked_by
      | exception Types.Error _ -> Printf.printf "ok %-50s (%s)\n" name blocked_by
    in
    let secret = Api.malloc_page_aligned app_ctx 32 in
    Monitor.run_as mon (Api.self app_ctx) (fun () ->
        Api.write_string app_ctx secret "private key material here!!!!!!");
    let ramfs = Monitor.lookup_cubicle mon "RAMFS" in
    Monitor.register_exports mon ramfs
      [
        {
          Monitor.sym = "rogue_read";
          fn = (fun ctx a -> Api.read_u8 ctx a.(0));
          stack_bytes = 0;
        };
      ];
    attempt "cross-cubicle read of app secret" ~blocked_by:"MPK tags" (fun () ->
        Monitor.call mon ~caller:(Api.self app_ctx) "rogue_read" [| secret |]);
    attempt "loading wrpkru-bearing binary" ~blocked_by:"loader scan" (fun () ->
        Loader.load mon
          {
            Loader.img_name = "EVIL";
            code = Hw.Instr.assemble [ Wrpkru; Ret ];
            rodata = Bytes.empty;
            data = Bytes.empty;
            signed = false;
          }
          ~kind:Types.Isolated ~heap_pages:1 ~stack_pages:1 ~exports:[]);
    attempt "calling an unregistered symbol" ~blocked_by:"CFI" (fun () ->
        Monitor.call mon ~caller:(Api.self app_ctx) "no_such_fn" [||]);
    attempt "windowing foreign memory" ~blocked_by:"ownership check" (fun () ->
        let wid = Api.window_init app_ctx ~klass:Mm.Page_meta.Heap in
        let vfs = Monitor.lookup_cubicle mon "VFSCORE" in
        let page =
          let rec find p =
            if Monitor.page_owner mon p = Some vfs then Hw.Addr.base_of_page p
            else find (p + 1)
          in
          find 0
        in
        Api.window_add app_ctx wid ~ptr:page ~size:16;
        0)
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Demonstrate blocked isolation attacks.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "cubicleos" ~version:"1.0.0"
       ~doc:"Simulated CubicleOS: an MPK-isolated library OS (ASPLOS'21 reproduction).")
    [ info_cmd; serve_cmd; speedtest_cmd; sql_cmd; attack_cmd ]

let () = exit (Cmd.eval main)
