bench/probe.ml: Cubicle Hw List Minidb Monitor Printf Stats Ukernel
