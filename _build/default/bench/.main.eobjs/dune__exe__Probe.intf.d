bench/probe.mli:
