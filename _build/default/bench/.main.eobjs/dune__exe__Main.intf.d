bench/main.mli:
