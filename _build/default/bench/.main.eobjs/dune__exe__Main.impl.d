bench/main.ml: Analyze Api Array Bechamel Benchmark Builder Cubicle Hashtbl Httpd Hw Int64 Libos List Measure Minidb Mm Monitor Printf Staged Stats String Sys Test Time Toolkit Types Ukernel Unix
