(* Calibration probe (development tool): per-configuration cycle totals
   and operation counts for the speedtest workload. Used to derive the
   cost-model constants documented in EXPERIMENTS.md; not part of the
   benchmark harness proper. Run: dune exec bench/probe.exe *)
open Cubicle

let vfs_syms = ["vfs_open";"vfs_close";"vfs_pread";"vfs_pwrite";"vfs_size";"vfs_truncate";"vfs_fsync";"vfs_unlink";"vfs_exists";"vfs_rename"]

let () =
  let n = 120 in
  List.iter (fun config ->
    let inst = Ukernel.Compose.make config in
    let cost = Monitor.cost inst.Ukernel.Compose.mon in
    let stats = Monitor.stats inst.Ukernel.Compose.mon in
    let c0 = Hw.Cost.cycles cost in
    ignore (Minidb.Speedtest.run_all inst.Ukernel.Compose.os ~path:"/speed.db" ~n ~measure:(fun f -> f ()));
    let total = Hw.Cost.cycles cost - c0 in
    let vfs_ops = List.fold_left (fun acc s -> acc + Stats.calls_to_sym stats s) 0 vfs_syms in
    Printf.printf "%-16s total=%12d vfs_ops=%7d faults=%7d retags=%7d calls=%8d shared=%8d\n"
      (Ukernel.Compose.config_name config) total vfs_ops
      (Stats.faults stats) (Stats.retags stats) (Stats.total_calls stats) (Stats.shared_calls stats))
    Ukernel.Compose.[ Linux; Unikraft; Cubicle3; Cubicle4 ]
