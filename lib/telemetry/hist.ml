(* Log-bucketed histogram of non-negative cycle counts. Values below
   [sub] are recorded exactly; above that each power of two is split
   into [sub] sub-buckets (HdrHistogram-style), bounding the relative
   quantisation error of any reported percentile to 1/sub ~ 6%.
   Recording is allocation-free: one array increment. *)

let sub_bits = 4
let sub = 1 lsl sub_bits

(* Index layout: bucket i < sub holds exactly the value i; from there
   each octave [2^b, 2^(b+1)) for b >= sub_bits contributes [sub]
   buckets. 63-bit OCaml ints need at most (63 - sub_bits) octaves. *)
let nbuckets = sub * (63 - sub_bits + 1)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () = { counts = Array.make nbuckets 0; n = 0; sum = 0; min_v = max_int; max_v = 0 }

let reset t =
  Array.fill t.counts 0 nbuckets 0;
  t.n <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

(* floor(log2 v) for v > 0 *)
let log2_floor v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index v =
  if v < sub then v
  else begin
    let b = log2_floor v in
    let shift = b - sub_bits in
    ((shift + 1) * sub) + ((v lsr shift) - sub)
  end

(* Smallest value that lands in bucket [i]: the inverse of {!index} on
   bucket lower bounds. *)
let bucket_low i =
  if i < sub then i
  else begin
    let shift = (i / sub) - 1 in
    let off = i mod sub in
    (sub + off) lsl shift
  end

let add t v =
  let v = max 0 v in
  t.counts.(index v) <- t.counts.(index v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let sum t = t.sum
let min_value t = if t.n = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n

let percentile t q =
  if t.n = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
    (* the top-ranked sample is the maximum, which we track exactly *)
    if rank >= t.n then t.max_v
    else begin
    let i = ref 0 in
    let cum = ref 0 in
    while !cum < rank && !i < nbuckets do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    (* [!i - 1] is the bucket holding the ranked sample; report its lower
       bound, clamped into the observed range so single samples and
       extrema come back exactly. *)
    let v = bucket_low (!i - 1) in
    min (max v t.min_v) t.max_v
    end
  end

let iter_buckets f t =
  Array.iteri (fun i c -> if c > 0 then f ~low:(bucket_low i) ~count:c) t.counts
