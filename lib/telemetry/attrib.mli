(** Per-cubicle, per-category cycle attribution.

    The sink behind [Hw.Cost]: every simulated cycle charged anywhere in
    the system is billed to the {e currently executing cubicle} (set by
    the monitor on every cubicle switch) under a cost {!category}. The
    §6.4 overhead decomposition — trampoline vs MPK vs window vs data
    copy shares — is then a measured table whose rows sum exactly to
    the machine's total cycle count.

    Attribution is always on (it is one array add per charge) and never
    charges cycles itself, so it cannot perturb simulated behaviour. *)

type category =
  | Tramp  (** trampoline entry/exit, stack switching, direct calls *)
  | Mpk  (** [wrpkru] and page-key reassignment (incl. trap-and-map retags) *)
  | Window  (** window ACL bookkeeping and descriptor searches *)
  | Memcpy  (** data movement through the simulated memory *)
  | Fault  (** protection-fault delivery *)
  | Ipc
      (** kernel IPC / framework dispatch of the microkernel baselines
          (Genode RPC round trips, signals, library-VFS dispatch) — the
          mechanism the paper's Fig. 10 compares trampolines against *)
  | Keymux
      (** protection-key virtualization: virtual-key fault-ins
          (libmpk-style reassignment), eviction page retags and the
          PKRU shootdowns that scrub an evicted key from remote cores.
          Zero unless tag virtualisation is enabled, so existing
          configurations attribute identically. *)
  | Other  (** everything else: OS work, syscalls, device models *)

val categories : category list
(** In display order. *)

val ncat : int
val cat_index : category -> int
val cat_name : category -> string

type t

val create : unit -> t
(** All cycles are billed to cubicle 0 (the monitor) on core 0 until
    {!set_current} / {!set_core} say otherwise. *)

val set_current : t -> int -> unit
(** [set_current t cid] — subsequent charges are billed to [cid]. The
    table grows on demand. *)

val current : t -> int

val set_core : t -> int -> unit
(** [set_core t core] — subsequent charges are billed to [core]'s plane
    of the table (still under the current cubicle). The scheduler moves
    this on every slice via [Hw.Cpu.set_core]; the table grows on
    demand. *)

val core : t -> int

val ncores : t -> int
(** Number of core planes the table has grown to (>= 1). *)

val charge : t -> category -> int -> unit
(** Bill [n] cycles; allocation-free hot path. *)

val cycles : t -> cid:int -> category -> int
val row : t -> cid:int -> int array
(** A copy of one cubicle's per-category cycles summed across all cores,
    indexed by {!cat_index}. *)

val rows : t -> (int * int array) list
(** All cubicles with non-zero totals (summed across cores), ascending
    cubicle id. *)

val total : t -> int
(** Sum over all rows and all cores; equals [Hw.Cost.cycles] of the
    machine this sink is attached to. *)

val category_total : t -> category -> int

(** {1 Per-core views} — the core dimension of the table. The invariant
    extends per core: [core_total t ~core] equals the machine's
    per-core cycle counter, and the core totals sum to {!total}. *)

val core_row : t -> core:int -> cid:int -> int array
val core_rows : t -> core:int -> (int * int array) list
val core_total : t -> core:int -> int

val reset : t -> unit
