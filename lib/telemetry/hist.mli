(** Log-bucketed histogram of non-negative cycle counts.

    Values below 16 are recorded exactly; above that every power of two
    is split into 16 sub-buckets (HdrHistogram-style), so any reported
    percentile is within ~6% of the true sample. Recording is one array
    increment — cheap enough to sit on the cross-cubicle call path
    without perturbing wall-clock measurements (and it never charges
    simulated cycles, so it cannot perturb simulated time at all). *)

type t

val create : unit -> t
val reset : t -> unit

val add : t -> int -> unit
(** Record one sample; negative values clamp to 0. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** 0 when empty. *)

val mean : t -> float
(** 0. when empty. *)

val percentile : t -> float -> int
(** [percentile t q] for [q] in [0,1] ([q] is clamped): the lower bound
    of the bucket holding the sample of rank [ceil (q * count)],
    clamped into [[min_value, max_value]] — so a single-sample
    histogram reports that sample exactly at every percentile, and a
    value sitting on a bucket boundary is reported exactly. When the
    rank reaches [count] the exact tracked maximum is returned. 0 when
    empty. *)

val iter_buckets : (low:int -> count:int -> unit) -> t -> unit
(** Non-empty buckets, ascending; [low] is the bucket's smallest
    representable value. *)
