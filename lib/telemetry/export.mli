(** Exporters for captured event rings.

    Both take [names] to render cubicle ids (the bus stores plain ints)
    and operate on {!Bus.events} output; neither touches the live bus. *)

val trace_json :
  ?process_name:string ->
  names:(int -> string) ->
  cycles_per_us:float ->
  Bus.entry list ->
  string
(** Chrome [trace_event] JSON (the ["traceEvents"] array form), loadable
    in [chrome://tracing] or Perfetto. Trampoline {!Event.Call} /
    {!Event.Return} pairs become nested duration slices on one track
    (the machine is single-threaded); faults, retags, PKRU writes,
    window/TLB/scheduler/pager activity become instant events with their
    payloads under ["args"]. Timestamps are simulated cycles divided by
    [cycles_per_us]. *)

val folded_stacks : ?root:string -> names:(int -> string) -> Bus.entry list -> string
(** Folded-stacks text ("frame;frame;frame cycles" per line, suitable
    for flamegraph.pl or speedscope). Simulated cycles elapsed between
    consecutive events are attributed to the cross-cubicle call stack
    in effect; frames are ["CUBICLE:sym"]. *)
