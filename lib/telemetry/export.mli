(** Exporters for captured event rings.

    All take [names] to render cubicle ids (the bus stores plain ints).
    {!trace_json} and {!folded_stacks} are pure functions over
    {!Bus.events} output; {!Stream} writes the same trace_event JSON
    incrementally through a caller-supplied writer, so a trace is no
    longer bounded by the ring capacity. *)

module Stream : sig
  (** Incremental Chrome [trace_event] writer.

      Create one, then either attach {!entry} as the bus's sink
      ([Bus.set_sink bus (Some (Stream.entry st))]) to write the trace
      during the run, or feed it a captured entry list. Call {!finish}
      exactly once at capture: it closes any still-open duration slices
      and writes the JSON trailer. Feeding the same entries through a
      stream and through {!trace_json} produces byte-identical output
      (the latter is implemented on the former). *)

  type t

  val create :
    ?process_name:string ->
    names:(int -> string) ->
    cycles_per_us:float ->
    write:(string -> unit) ->
    unit ->
    t
  (** Writes the JSON header through [write] immediately. [write] is
      called with successive chunks of well-formed UTF-8 JSON text; it
      must not charge simulated cycles (write host-side only). *)

  val entry : t -> Bus.entry -> unit
  (** Format and write one entry. {!Event.Call} opens a duration slice,
      {!Event.Return} closes the innermost one — a return with no open
      slice (its begin predates the trace window or was sampled out) is
      dropped rather than corrupting slice nesting. Raises
      [Invalid_argument] after {!finish}. *)

  val open_slices : t -> int
  (** Duration slices currently open. *)

  val finish : t -> unit
  (** Close remaining open slices at the last seen timestamp and write
      the trailer. Idempotent. *)
end

val trace_json :
  ?process_name:string ->
  names:(int -> string) ->
  cycles_per_us:float ->
  Bus.entry list ->
  string
(** Chrome [trace_event] JSON (the ["traceEvents"] array form), loadable
    in [chrome://tracing] or Perfetto. Trampoline {!Event.Call} /
    {!Event.Return} pairs become nested duration slices on their core's
    track (tid = core + 1, one lane per simulated core); faults, retags,
    PKRU writes, window/TLB/scheduler/pager activity become instant
    events with their payloads under ["args"]. Timestamps are simulated
    cycles divided by [cycles_per_us]. Orphan end-events are dropped and
    still-open slices closed at the end, exactly as {!Stream} does. *)

val hdr : Hist.t -> string
(** HdrHistogram-compatible percentile-distribution text (the
    ["Value Percentile TotalCount 1/(1-Percentile)"] table plus the
    [#\[Mean/Max/Buckets\]] footer), loadable by hdr-plot and the
    HdrHistogram plotFiles web viewer. One cumulative row per non-empty
    bucket from {!Hist.iter_buckets}; the final row reports the exact
    tracked maximum at percentile 1.0. Empty histogram → header only. *)

val folded_stacks :
  ?root:string -> ?until:int -> names:(int -> string) -> Bus.entry list -> string
(** Folded-stacks text ("frame;frame;frame cycles" per line, suitable
    for flamegraph.pl or speedscope). Simulated cycles elapsed between
    consecutive events are attributed to the cross-cubicle call stack
    in effect; frames are ["CUBICLE:sym"]. Pass [~until] (the cycle
    count at capture) to attribute the tail — the cycles after the last
    event — to the stack in effect there; without it that tail is
    unattributed. *)
