type category = Tramp | Mpk | Window | Memcpy | Fault | Ipc | Other

let categories = [ Tramp; Mpk; Window; Memcpy; Fault; Ipc; Other ]
let ncat = List.length categories

let cat_index = function
  | Tramp -> 0
  | Mpk -> 1
  | Window -> 2
  | Memcpy -> 3
  | Fault -> 4
  | Ipc -> 5
  | Other -> 6

let cat_name = function
  | Tramp -> "tramp"
  | Mpk -> "mpk"
  | Window -> "window"
  | Memcpy -> "memcpy"
  | Fault -> "fault"
  | Ipc -> "ipc"
  | Other -> "other"

type t = {
  mutable rows : int array array;  (* cubicle id -> per-category cycles *)
  mutable cur : int;
  mutable cur_row : int array;  (* == rows.(cur); cached for the hot path *)
}

let initial_rows = 8

let create () =
  let rows = Array.init initial_rows (fun _ -> Array.make ncat 0) in
  { rows; cur = 0; cur_row = rows.(0) }

let grow t cid =
  let n = Array.length t.rows in
  let n' = max (cid + 1) (2 * n) in
  let rows = Array.init n' (fun i -> if i < n then t.rows.(i) else Array.make ncat 0) in
  t.rows <- rows

let set_current t cid =
  if cid < 0 then invalid_arg "Attrib.set_current: negative cubicle id";
  if cid >= Array.length t.rows then grow t cid;
  t.cur <- cid;
  t.cur_row <- t.rows.(cid)

let current t = t.cur

let[@inline] charge t cat n =
  let i = cat_index cat in
  Array.unsafe_set t.cur_row i (Array.unsafe_get t.cur_row i + n)

let row_total r = Array.fold_left ( + ) 0 r

let cycles t ~cid cat =
  if cid >= 0 && cid < Array.length t.rows then t.rows.(cid).(cat_index cat) else 0

let row t ~cid =
  if cid >= 0 && cid < Array.length t.rows then Array.copy t.rows.(cid)
  else Array.make ncat 0

let rows t =
  let acc = ref [] in
  for cid = Array.length t.rows - 1 downto 0 do
    if row_total t.rows.(cid) > 0 then acc := (cid, Array.copy t.rows.(cid)) :: !acc
  done;
  !acc

let total t = Array.fold_left (fun acc r -> acc + row_total r) 0 t.rows

let category_total t cat =
  let i = cat_index cat in
  Array.fold_left (fun acc r -> acc + r.(i)) 0 t.rows

let reset t = Array.iter (fun r -> Array.fill r 0 ncat 0) t.rows
