type category = Tramp | Mpk | Window | Memcpy | Fault | Ipc | Keymux | Other

let categories = [ Tramp; Mpk; Window; Memcpy; Fault; Ipc; Keymux; Other ]
let ncat = List.length categories

let cat_index = function
  | Tramp -> 0
  | Mpk -> 1
  | Window -> 2
  | Memcpy -> 3
  | Fault -> 4
  | Ipc -> 5
  | Keymux -> 6
  | Other -> 7

let cat_name = function
  | Tramp -> "tramp"
  | Mpk -> "mpk"
  | Window -> "window"
  | Memcpy -> "memcpy"
  | Fault -> "fault"
  | Ipc -> "ipc"
  | Keymux -> "keymux"
  | Other -> "other"

(* The table is keyed core x cubicle x category. The hot path still
   touches exactly one cached row: [cur_row == cores.(cur_core).(cur)],
   refreshed whenever either coordinate moves. The pre-SMP API (rows,
   row, total, ...) sums across cores, so single-core callers see the
   same numbers as before. *)
type t = {
  mutable cores : int array array array;  (* core -> cubicle id -> per-category cycles *)
  mutable cur_core : int;
  mutable cur : int;
  mutable cur_row : int array;  (* == cores.(cur_core).(cur); cached for the hot path *)
}

let initial_rows = 8
let fresh_rows n = Array.init n (fun _ -> Array.make ncat 0)

let create () =
  let rows = fresh_rows initial_rows in
  { cores = [| rows |]; cur_core = 0; cur = 0; cur_row = rows.(0) }

let grow_rows t core cid =
  let rows = t.cores.(core) in
  let n = Array.length rows in
  if cid >= n then begin
    let n' = max (cid + 1) (2 * n) in
    t.cores.(core) <- Array.init n' (fun i -> if i < n then rows.(i) else Array.make ncat 0)
  end

let set_current t cid =
  if cid < 0 then invalid_arg "Attrib.set_current: negative cubicle id";
  grow_rows t t.cur_core cid;
  t.cur <- cid;
  t.cur_row <- t.cores.(t.cur_core).(cid)

let set_core t core =
  if core < 0 then invalid_arg "Attrib.set_core: negative core id";
  let n = Array.length t.cores in
  if core >= n then
    t.cores <-
      Array.init (core + 1) (fun i -> if i < n then t.cores.(i) else fresh_rows initial_rows);
  t.cur_core <- core;
  grow_rows t core t.cur;
  t.cur_row <- t.cores.(core).(t.cur)

let current t = t.cur
let core t = t.cur_core
let ncores t = Array.length t.cores

let[@inline] charge t cat n =
  let i = cat_index cat in
  Array.unsafe_set t.cur_row i (Array.unsafe_get t.cur_row i + n)

let row_total r = Array.fold_left ( + ) 0 r

let nrows t = Array.fold_left (fun acc rows -> max acc (Array.length rows)) 0 t.cores

let cycles t ~cid cat =
  if cid < 0 then 0
  else
    let i = cat_index cat in
    Array.fold_left
      (fun acc rows -> if cid < Array.length rows then acc + rows.(cid).(i) else acc)
      0 t.cores

let row t ~cid =
  let r = Array.make ncat 0 in
  if cid >= 0 then
    Array.iter
      (fun rows ->
        if cid < Array.length rows then
          Array.iteri (fun i v -> r.(i) <- r.(i) + v) rows.(cid))
      t.cores;
  r

let rows t =
  let acc = ref [] in
  for cid = nrows t - 1 downto 0 do
    let r = row t ~cid in
    if row_total r > 0 then acc := (cid, r) :: !acc
  done;
  !acc

let total t =
  Array.fold_left
    (fun acc rows -> Array.fold_left (fun acc r -> acc + row_total r) acc rows)
    0 t.cores

let category_total t cat =
  let i = cat_index cat in
  Array.fold_left
    (fun acc rows -> Array.fold_left (fun acc r -> acc + r.(i)) acc rows)
    0 t.cores

(* Per-core views, used by the SMP scheduler and bench to show one
   attribution table per simulated core. *)

let core_row t ~core ~cid =
  if core >= 0 && core < Array.length t.cores && cid >= 0 && cid < Array.length t.cores.(core)
  then Array.copy t.cores.(core).(cid)
  else Array.make ncat 0

let core_rows t ~core =
  if core < 0 || core >= Array.length t.cores then []
  else begin
    let rows = t.cores.(core) in
    let acc = ref [] in
    for cid = Array.length rows - 1 downto 0 do
      if row_total rows.(cid) > 0 then acc := (cid, Array.copy rows.(cid)) :: !acc
    done;
    !acc
  end

let core_total t ~core =
  if core < 0 || core >= Array.length t.cores then 0
  else Array.fold_left (fun acc r -> acc + row_total r) 0 t.cores.(core)

let reset t = Array.iter (fun rows -> Array.iter (fun r -> Array.fill r 0 ncat 0) rows) t.cores
