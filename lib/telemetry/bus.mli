(** The telemetry bus: one per simulated machine.

    Two planes share the bus:

    - an {e event plane}: a fixed-capacity {!Ring} of timestamped
      {!Event.t}s. Off by default; when off, emission is a single
      branch and nothing allocates. When on, each emit is one ring
      store (the ring overwrites its oldest entry when full, counting
      drops, so tracing can never abort a run).
    - a {e counter plane}: always-on aggregate counters for the
      evaluation's figures — cross-cubicle call edges, per-symbol call
      counts, faults, retags, window ops, rejected accesses. These are
      what [Core.Stats] reads, so the counters are event-sourced at the
      same sites that trace.

    Timestamps are simulated cycles, read through the [now] closure the
    owning machine installs ({!set_now}); the bus itself never charges
    cycles, so tracing on vs off is bit-identical in simulated time. *)

type entry = { at : int;  (** simulated cycles at emission *) ev : Event.t }

type t = {
  mutable tracing : bool;
  mutable now : unit -> int;
  ring : entry Ring.t;
  mutable faults : int;
  mutable retags : int;
  mutable window_ops : int;
  mutable rejected : int;
  mutable shared : int;
  edges : (int * int, int) Hashtbl.t;
  syms : (string, int) Hashtbl.t;
}
(** The representation is exposed so the machine's accessor fast path
    can open-code the [tracing] test without a cross-module call
    (the same deal as [Hw.Tlb]). Treat it as owned by the machine: all
    other code must go through the functions below. *)

val default_capacity : int

val create : ?capacity:int -> ?now:(unit -> int) -> unit -> t
(** Tracing starts disabled; [now] defaults to a constant 0 until
    {!set_now} installs the machine's cycle clock. *)

val set_now : t -> (unit -> int) -> unit

val tracing : t -> bool
val set_tracing : t -> bool -> unit

val emit : t -> Event.t -> unit
(** Push onto the ring if tracing; a single branch otherwise. Callers
    on hot paths should test {!tracing} first so the event itself is
    only allocated when it will be kept. *)

val events : t -> entry list
(** Ring contents, oldest first. *)

val iter_events : (entry -> unit) -> t -> unit
val captured : t -> int
val dropped : t -> int
val total_emitted : t -> int
val clear_ring : t -> unit
val capacity : t -> int

(** {1 Counter plane} — always on; the sites below both bump the
    aggregate and (when tracing) emit the corresponding event. Sites
    whose event carries more context than the counter (faults, retags,
    window ops, rejections) bump here and emit separately. *)

val count_call : t -> caller:int -> callee:int -> sym:string -> unit
val count_shared_call : t -> caller:int -> sym:string -> unit
val count_fault : t -> unit
val count_retag : t -> unit
val count_window_op : t -> unit
val count_rejected : t -> unit

val faults : t -> int
val retags : t -> int
val window_ops : t -> int
val rejected : t -> int
val shared_calls : t -> int
val calls_between : t -> caller:int -> callee:int -> int
val calls_into : t -> int -> int
val calls_to_sym : t -> string -> int
val total_calls : t -> int

val edges : t -> ((int * int) * int) list
(** All (caller, callee) edges with call counts, descending. *)

val snapshot_edges : t -> (int * int, int) Hashtbl.t

val reset_counters : t -> unit
(** Clears the counter plane only; the ring is cleared separately with
    {!clear_ring}. *)
