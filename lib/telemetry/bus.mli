(** The telemetry bus: one per simulated machine.

    Three planes share the bus:

    - an {e event plane}: a fixed-capacity {!Ring} of timestamped
      {!Event.t}s. Off by default; when off, emission is a single
      branch and nothing allocates. When on, each emit is one ring
      store (the ring overwrites its oldest entry when full, counting
      drops, so tracing can never abort a run). The plane can be
      {e sampled} ({!set_sampling}) — keep 1 in [n] emissions — and/or
      {e streamed} ({!set_sink}) — every kept entry is also handed to a
      caller-supplied sink, lifting the ring-capacity ceiling on trace
      length.
    - a {e counter plane}: always-on aggregate counters for the
      evaluation's figures — cross-cubicle call edges, per-symbol call
      counts, faults, retags, window ops, rejected accesses. These are
      what [Core.Stats] reads, so the counters are event-sourced at the
      same sites that trace. Sampling never applies here.
    - a {e latency plane}: an optional {!Latency} sink
      ({!set_latency}) fed from the counter-plane call sites (never
      from the ring), folding call/return pairs into per-edge cycle
      histograms that are exact under sampling and ring wrap.

    Timestamps are simulated cycles, read through the [now] closure the
    owning machine installs ({!set_now}); the bus itself never charges
    cycles, so tracing on vs off (sampled or streamed or neither) is
    bit-identical in simulated time. *)

type entry = {
  at : int;  (** simulated cycles at emission *)
  core : int;  (** simulated core that emitted it *)
  seq : int;  (** global emission order across cores *)
  ev : Event.t;
}

type t = {
  mutable tracing : bool;
  mutable now : unit -> int;
  ring_capacity : int;
  mutable rings : entry Ring.t array;
  mutable cur_core : int;
  mutable seq : int;
  mutable every : int;
  mutable countdown : int;
  mutable sampled_out : int;
  mutable sink : (entry -> unit) option;
  mutable lat : Latency.t option;
  mutable faults : int;
  mutable retags : int;
  mutable window_ops : int;
  mutable rejected : int;
  mutable shared : int;
  edges : (int * int, int) Hashtbl.t;
  syms : (string, int) Hashtbl.t;
}
(** The representation is exposed so the machine's accessor fast path
    can open-code the [tracing] test without a cross-module call
    (the same deal as [Hw.Tlb]). Treat it as owned by the machine: all
    other code must go through the functions below. *)

val default_capacity : int

val create : ?capacity:int -> ?now:(unit -> int) -> unit -> t
(** Tracing starts disabled, unsampled, with no sink and no latency
    sink; [now] defaults to a constant 0 until {!set_now} installs the
    machine's cycle clock. *)

val set_now : t -> (unit -> int) -> unit

val tracing : t -> bool
val set_tracing : t -> bool -> unit

val set_core : t -> int -> unit
(** Route subsequent emissions to [core]'s event track (one {!Ring} per
    simulated core, each of {!capacity} entries, created on demand) —
    a chatty core can only evict its own history. Moved by
    [Hw.Cpu.set_core]; everything below that reads "the ring" sums or
    merges the per-core tracks. *)

val core : t -> int

val ncores : t -> int
(** Number of event tracks the bus has grown to (>= 1). *)

val set_sampling : t -> every:int -> unit
(** Keep 1 in [every] event-plane emissions ([every = 1] keeps all; the
    emission after a call to this function is always kept, so sampling
    is deterministic). Counter and latency planes are unaffected.
    Raises [Invalid_argument] for [every < 1]. *)

val sampling : t -> int

val sampled_out : t -> int
(** Emissions discarded by sampling since the last {!clear_ring}. *)

val set_sink : t -> (entry -> unit) option -> unit
(** Streamed export: every entry the ring keeps (post-sampling) is also
    passed to the sink, during the run. The sink must not charge
    simulated cycles (exporter sinks only buffer/write host-side). *)

val set_latency : t -> Latency.t option -> unit
(** Attach a latency sink; call sites feed it from the counter plane. *)

val latency : t -> Latency.t option

val emit : t -> Event.t -> unit
(** Push onto the ring (and sink) if tracing and the sampler keeps it;
    a single branch when tracing is off. Callers on hot paths should
    test {!tracing} first so the event itself is only allocated when it
    may be kept. *)

val events : t -> entry list
(** All per-core tracks merged back into global emission order
    (ascending [seq]); with one core this is just the ring contents,
    oldest first. *)

val iter_events : (entry -> unit) -> t -> unit
val captured : t -> int
val dropped : t -> int
val total_emitted : t -> int

val clear_ring : t -> unit
(** Clears every core's track; also resets {!sampled_out}, the global
    sequence counter and the sampling countdown. *)

val capacity : t -> int
(** Per-core track capacity. *)

(** {1 Counter plane} — always on; the sites below both bump the
    aggregate and (when tracing) emit the corresponding event. Sites
    whose event carries more context than the counter (faults, retags,
    window ops, rejections) bump here and emit separately. *)

val count_call : t -> caller:int -> callee:int -> sym:string -> unit

val count_return : t -> caller:int -> callee:int -> sym:string -> unit
(** The return edge of {!count_call}: feeds the latency plane and (when
    tracing) emits {!Event.Return}. No counter is bumped — the call was
    already counted. *)

val observe_call : t -> caller:int -> callee:int -> unit
(** Latency plane only: record a crossing that is not a trampoline call
    edge (the microkernel baselines' RPC round trips). No counter, no
    event. *)

val observe_return : t -> caller:int -> callee:int -> unit

val count_shared_call : t -> caller:int -> sym:string -> unit
val count_fault : t -> unit
val count_retag : t -> unit
val count_window_op : t -> unit
val count_rejected : t -> unit

val faults : t -> int
val retags : t -> int
val window_ops : t -> int
val rejected : t -> int
val shared_calls : t -> int
val calls_between : t -> caller:int -> callee:int -> int
val calls_into : t -> int -> int
val calls_to_sym : t -> string -> int
val total_calls : t -> int

val edges : t -> ((int * int) * int) list
(** All (caller, callee) edges with call counts, descending. *)

val snapshot_edges : t -> (int * int, int) Hashtbl.t

val reset_counters : t -> unit
(** Clears the counter plane only; the ring is cleared separately with
    {!clear_ring}, and an attached {!Latency} sink with
    [Latency.reset]. *)
