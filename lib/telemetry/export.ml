(* Exporters for the event ring: Chrome trace_event JSON (load in
   chrome://tracing or https://ui.perfetto.dev) and folded-stacks text
   (feed to flamegraph.pl / speedscope). The JSON exporter is built on
   {!Stream}, which formats one entry at a time through a
   caller-supplied writer — attach [Stream.entry] as a [Bus] sink to
   write the trace incrementally during the run (no ring-capacity
   ceiling), or feed it a captured entry list after the fact
   ({!trace_json} does exactly that, so the two paths are byte-identical
   on the same entries by construction). *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* One trace_event object. [ph] "B"/"E" nest duration slices; each
   simulated core is its own track ([tid] = core + 1), so slices nest
   per core and the trace viewer shows one lane per core. Everything
   else is an instant event on its core's lane. *)
let add_trace_obj b ~name ~cat ~ph ~ts ~tid ~args =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b name;
  Buffer.add_string b ",\"cat\":";
  buf_add_json_string b cat;
  Buffer.add_string b (Printf.sprintf ",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d" ph ts tid);
  (match ph with "i" -> Buffer.add_string b ",\"s\":\"t\"" | _ -> ());
  (match args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          buf_add_json_string b k;
          Buffer.add_char b ':';
          v b)
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let jstr s b = buf_add_json_string b s
let jint (n : int) b = Buffer.add_string b (string_of_int n)

module Stream = struct
  type t = {
    write : string -> unit;
    names : int -> string;
    cycles_per_us : float;
    scratch : Buffer.t;  (* per-entry formatting buffer, reused *)
    stacks : (int, string list) Hashtbl.t;
        (* per-core open "B" slices, innermost first: slices nest per
           track, so each core keeps its own stack *)
    mutable last_ts : float;
    mutable finished : bool;
  }

  let create ?(process_name = "cubicleos-sim") ~names ~cycles_per_us ~write () =
    let b = Buffer.create 256 in
    Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    Buffer.add_string b "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":";
    buf_add_json_string b process_name;
    Buffer.add_string b "}}";
    write (Buffer.contents b);
    {
      write;
      names;
      cycles_per_us;
      scratch = Buffer.create 512;
      stacks = Hashtbl.create 4;
      last_ts = 0.;
      finished = false;
    }

  let flush t =
    t.write (Buffer.contents t.scratch);
    Buffer.clear t.scratch

  let stack t core = Option.value ~default:[] (Hashtbl.find_opt t.stacks core)

  let entry t { Bus.at; core; ev; _ } =
    if t.finished then invalid_arg "Export.Stream.entry: stream already finished";
    let b = t.scratch in
    let names = t.names in
    let ts = float_of_int at /. t.cycles_per_us in
    t.last_ts <- ts;
    let tid = core + 1 in
    let obj ~name ~cat ~ph ~args =
      Buffer.add_string b ",\n";
      add_trace_obj b ~name ~cat ~ph ~ts ~tid ~args
    in
    let instant ?(cat = "event") name args = obj ~name ~cat ~ph:"i" ~args in
    (match ev with
    | Event.Call { caller; callee; sym } ->
        Hashtbl.replace t.stacks core (sym :: stack t core);
        obj ~name:sym ~cat:"call" ~ph:"B"
          ~args:[ ("caller", jstr (names caller)); ("callee", jstr (names callee)) ]
    | Event.Return { sym; _ } -> (
        (* An "E" whose "B" predates the trace (ring wrapped, trace
           started mid-call, or the "B" was sampled out) would corrupt
           slice nesting in Perfetto: only emit it while a slice is
           open on this core's track. *)
        match stack t core with
        | [] -> ()
        | _ :: rest ->
            Hashtbl.replace t.stacks core rest;
            obj ~name:sym ~cat:"call" ~ph:"E" ~args:[])
    | Event.Shared_call { caller; sym } ->
        instant ~cat:"call" ("shared:" ^ sym) [ ("caller", jstr (names caller)) ]
    | Event.Guard_fetch { cid; sym } ->
        instant ~cat:"call" ("guard:" ^ sym) [ ("cubicle", jstr (names cid)) ]
    | Event.Fault { addr; access; key; reason; resolved } ->
        instant ~cat:"fault" "fault"
          [
            ("addr", jint addr);
            ("access", jstr (Event.access_name access));
            ("key", jint key);
            ("reason", jstr (Event.reason_name reason));
            ("resolved", fun b -> Buffer.add_string b (string_of_bool resolved));
          ]
    | Event.Retag { page; to_key } ->
        instant ~cat:"fault" "retag" [ ("page", jint page); ("to_key", jint to_key) ]
    | Event.Key_fault_in { cid; vkey; phys } ->
        instant ~cat:"mpk" "key_fault_in"
          [ ("cubicle", jstr (names cid)); ("vkey", jint vkey); ("phys", jint phys) ]
    | Event.Key_evict { cid; vkey; phys; pages } ->
        instant ~cat:"mpk" "key_evict"
          [
            ("cubicle", jstr (names cid));
            ("vkey", jint vkey);
            ("phys", jint phys);
            ("pages", jint pages);
          ]
    | Event.Pkru_write { value } -> instant ~cat:"mpk" "wrpkru" [ ("pkru", jint value) ]
    | Event.Rejected { cid } -> instant ~cat:"fault" "rejected" [ ("cubicle", jstr (names cid)) ]
    | Event.Window { cid; op; wid; peer; ptr; size; rw } ->
        instant ~cat:"window"
          ("window:" ^ Event.window_op_name op)
          ([ ("cubicle", jstr (names cid)); ("wid", jint wid) ]
          @ (if peer >= 0 then [ ("peer", jstr (names peer)) ] else [])
          @ (if size > 0 then [ ("ptr", jint ptr); ("size", jint size) ] else [])
          @ if rw then [] else [ ("perm", jstr "r") ])
    | Event.Window_access { cid; owner; page; access } ->
        instant ~cat:"window"
          ("window_access:" ^ Event.access_name access)
          [ ("cubicle", jstr (names cid)); ("owner", jstr (names owner)); ("page", jint page) ]
    | Event.Tlb op -> instant ~cat:"tlb" ("tlb:" ^ Event.tlb_op_name op) []
    | Event.Sched_switch { tid; cid } ->
        instant ~cat:"sched" "sched_switch"
          [ ("tid", jint tid); ("cubicle", jstr (names cid)) ]
    | Event.Pager op -> instant ~cat:"pager" ("pager:" ^ Event.pager_op_name op) []
    | Event.Mark s -> instant ~cat:"mark" ("mark:" ^ s) []);
    flush t

  let open_slices t = Hashtbl.fold (fun _ syms acc -> acc + List.length syms) t.stacks 0

  let finish t =
    if not t.finished then begin
      t.finished <- true;
      let b = t.scratch in
      (* Close slices still open at capture (call in flight, or its "E"
         was sampled out) at the last seen timestamp, innermost first
         per core track, so the emitted "B"s all nest. *)
      let cores = Hashtbl.fold (fun core _ acc -> core :: acc) t.stacks [] in
      List.iter
        (fun core ->
          List.iter
            (fun sym ->
              Buffer.add_string b ",\n";
              add_trace_obj b ~name:sym ~cat:"call" ~ph:"E" ~ts:t.last_ts ~tid:(core + 1)
                ~args:[])
            (stack t core))
        (List.sort compare cores);
      Hashtbl.reset t.stacks;
      Buffer.add_string b "]}\n";
      flush t
    end
end

let trace_json ?process_name ~names ~cycles_per_us entries =
  let b = Buffer.create 65536 in
  let st = Stream.create ?process_name ~names ~cycles_per_us ~write:(Buffer.add_string b) () in
  List.iter (Stream.entry st) entries;
  Stream.finish st;
  Buffer.contents b

(* HdrHistogram percentile-distribution text (the format written by
   HistogramLogProcessor / expected by hdr-plot and
   hdrhistogram.github.io/HdrHistogram/plotFiles.html): one cumulative
   row per non-empty bucket, then the summary footer. StdDeviation is
   computed over bucket lower bounds — the same ~6% quantisation the
   histogram itself has. *)
let hdr h =
  let b = Buffer.create 1024 in
  Buffer.add_string b "       Value     Percentile TotalCount 1/(1-Percentile)\n\n";
  let total = Hist.count h in
  if total > 0 then begin
    let ftotal = float_of_int total in
    let seen = ref 0 in
    Hist.iter_buckets
      (fun ~low ~count ->
        seen := !seen + count;
        let q = float_of_int !seen /. ftotal in
        (* the last row reports the exact tracked maximum and omits
           1/(1-q), exactly as HdrHistogram prints its final line *)
        if !seen = total then
          Buffer.add_string b
            (Printf.sprintf "%12.3f %14.12f %10d\n"
               (float_of_int (Hist.max_value h))
               1.0 !seen)
        else
          Buffer.add_string b
            (Printf.sprintf "%12.3f %14.12f %10d %14.2f\n" (float_of_int low) q !seen
               (1. /. (1. -. q))))
      h;
    let mean = Hist.mean h in
    let var = ref 0. in
    Hist.iter_buckets
      (fun ~low ~count ->
        let d = float_of_int low -. mean in
        var := !var +. (float_of_int count *. d *. d))
      h;
    let nbuckets = ref 0 in
    Hist.iter_buckets (fun ~low:_ ~count:_ -> incr nbuckets) h;
    Buffer.add_string b
      (Printf.sprintf "#[Mean    = %12.3f, StdDeviation   = %12.3f]\n" mean
         (sqrt (!var /. ftotal)));
    Buffer.add_string b
      (Printf.sprintf "#[Max     = %12.3f, Total count    = %10d]\n"
         (float_of_int (Hist.max_value h))
         total);
    Buffer.add_string b (Printf.sprintf "#[Buckets = %12d, SubBuckets     = %10d]\n" !nbuckets 16)
  end;
  Buffer.contents b

(* Folded stacks: attribute the simulated cycles elapsed between
   consecutive events to the call stack in effect before each event.
   Frames are "CUBICLE:sym"; the root frame collects time outside any
   traced cross-cubicle call. Each core keeps its own stack (its root
   frame is "<root>@coreN" for cores past 0, so a single-core trace is
   unchanged); the cycles between two merged events go to the core that
   was executing — the one emitting the later event. *)
let folded_stacks ?(root = "main") ?until ~names entries =
  let tbl = Hashtbl.create 64 in
  let bump key dt =
    if dt > 0 then
      Hashtbl.replace tbl key (dt + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let stacks = Hashtbl.create 4 (* core -> stack, top first *) in
  let stack_of core =
    match Hashtbl.find_opt stacks core with
    | Some st -> st
    | None -> [ (if core = 0 then root else Printf.sprintf "%s@core%d" root core) ]
  in
  let key_of st = String.concat ";" (List.rev st) in
  let last = ref (match entries with { Bus.at; _ } :: _ -> at | [] -> 0) in
  let last_core = ref 0 in
  List.iter
    (fun { Bus.at; core; ev; _ } ->
      bump (key_of (stack_of core)) (at - !last);
      last := at;
      last_core := core;
      match ev with
      | Event.Call { callee; sym; _ } ->
          Hashtbl.replace stacks core
            (Printf.sprintf "%s:%s" (names callee) sym :: stack_of core)
      | Event.Return _ -> (
          match stack_of core with
          | _ :: (_ :: _ as rest) -> Hashtbl.replace stacks core rest
          | _ -> () (* unbalanced return (trace started mid-call): keep root *))
      | _ -> ())
    entries;
  (* The tail: cycles between the last event and capture belong to the
     stack in effect there — without this the end of every run vanished
     from flamegraphs. *)
  (match until with Some u -> bump (key_of (stack_of !last_core)) (u - !last) | None -> ());
  let lines =
    Hashtbl.fold (fun k v acc -> Printf.sprintf "%s %d" k v :: acc) tbl []
    |> List.sort compare
  in
  String.concat "\n" lines ^ if lines = [] then "" else "\n"
