(* Exporters for the event ring: Chrome trace_event JSON (load in
   chrome://tracing or https://ui.perfetto.dev) and folded-stacks text
   (feed to flamegraph.pl / speedscope). Both are pure functions over a
   captured entry list; timestamps are simulated cycles converted with
   the caller's clock rate. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* One trace_event object. [ph] "B"/"E" nest duration slices (the
   machine models a single hardware thread, so one track nests
   correctly); everything else is an instant event. *)
let add_trace_obj b ~name ~cat ~ph ~ts ~args =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b name;
  Buffer.add_string b ",\"cat\":";
  buf_add_json_string b cat;
  Buffer.add_string b (Printf.sprintf ",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":1" ph ts);
  (match ph with "i" -> Buffer.add_string b ",\"s\":\"t\"" | _ -> ());
  (match args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          buf_add_json_string b k;
          Buffer.add_char b ':';
          v b)
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let jstr s b = buf_add_json_string b s
let jint (n : int) b = Buffer.add_string b (string_of_int n)

let trace_json ?(process_name = "cubicleos-sim") ~names ~cycles_per_us entries =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":";
  buf_add_json_string b process_name;
  Buffer.add_string b "}}";
  List.iter
    (fun { Bus.at; ev } ->
      Buffer.add_string b ",\n";
      let ts = float_of_int at /. cycles_per_us in
      let instant ?(cat = "event") name args = add_trace_obj b ~name ~cat ~ph:"i" ~ts ~args in
      match ev with
      | Event.Call { caller; callee; sym } ->
          add_trace_obj b ~name:sym ~cat:"call" ~ph:"B" ~ts
            ~args:[ ("caller", jstr (names caller)); ("callee", jstr (names callee)) ]
      | Event.Return { sym; _ } -> add_trace_obj b ~name:sym ~cat:"call" ~ph:"E" ~ts ~args:[]
      | Event.Shared_call { caller; sym } ->
          instant ~cat:"call" ("shared:" ^ sym) [ ("caller", jstr (names caller)) ]
      | Event.Guard_fetch { cid; sym } ->
          instant ~cat:"call" ("guard:" ^ sym) [ ("cubicle", jstr (names cid)) ]
      | Event.Fault { addr; access; key; reason; resolved } ->
          instant ~cat:"fault" "fault"
            [
              ("addr", jint addr);
              ("access", jstr (Event.access_name access));
              ("key", jint key);
              ("reason", jstr (Event.reason_name reason));
              ("resolved", fun b -> Buffer.add_string b (string_of_bool resolved));
            ]
      | Event.Retag { page; to_key } ->
          instant ~cat:"fault" "retag" [ ("page", jint page); ("to_key", jint to_key) ]
      | Event.Pkru_write { value } -> instant ~cat:"mpk" "wrpkru" [ ("pkru", jint value) ]
      | Event.Rejected { cid } -> instant ~cat:"fault" "rejected" [ ("cubicle", jstr (names cid)) ]
      | Event.Window { cid; op } ->
          instant ~cat:"window"
            ("window:" ^ Event.window_op_name op)
            [ ("cubicle", jstr (names cid)) ]
      | Event.Tlb op -> instant ~cat:"tlb" ("tlb:" ^ Event.tlb_op_name op) []
      | Event.Sched_switch { tid; cid } ->
          instant ~cat:"sched" "sched_switch"
            [ ("tid", jint tid); ("cubicle", jstr (names cid)) ]
      | Event.Pager op -> instant ~cat:"pager" ("pager:" ^ Event.pager_op_name op) []
      | Event.Mark s -> instant ~cat:"mark" ("mark:" ^ s) [])
    entries;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Folded stacks: attribute the simulated cycles elapsed between
   consecutive events to the call stack in effect before each event.
   Frames are "CUBICLE:sym"; the root frame collects time outside any
   traced cross-cubicle call. *)
let folded_stacks ?(root = "main") ~names entries =
  let tbl = Hashtbl.create 64 in
  let bump key dt =
    if dt > 0 then
      Hashtbl.replace tbl key (dt + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let stack = ref [ root ] (* top first *) in
  let key_of st = String.concat ";" (List.rev st) in
  let last = ref (match entries with { Bus.at; _ } :: _ -> at | [] -> 0) in
  List.iter
    (fun { Bus.at; ev } ->
      bump (key_of !stack) (at - !last);
      last := at;
      match ev with
      | Event.Call { callee; sym; _ } ->
          stack := Printf.sprintf "%s:%s" (names callee) sym :: !stack
      | Event.Return _ -> (
          match !stack with
          | _ :: (_ :: _ as rest) -> stack := rest
          | _ -> () (* unbalanced return (trace started mid-call): keep root *))
      | _ -> ())
    entries;
  let lines =
    Hashtbl.fold (fun k v acc -> Printf.sprintf "%s %d" k v :: acc) tbl []
    |> List.sort compare
  in
  String.concat "\n" lines ^ if lines = [] then "" else "\n"
