(** Fixed-capacity ring buffer for trace entries.

    The storage is allocated once at creation; {!push} never allocates.
    When the ring is full, pushing overwrites the oldest element and
    counts it in {!dropped}, so a trace always holds the most recent
    [capacity] entries and reports exactly how much history was lost. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [create ~capacity ~dummy] — [dummy] fills unused slots (and refills
    them on {!clear}) so the ring never retains stale elements. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Live elements currently held, [<= capacity]. *)

val dropped : 'a t -> int
(** Elements overwritten because the ring was full. *)

val total : 'a t -> int
(** Elements ever pushed ([length + dropped] after any wrap). *)

val push : 'a t -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val clear : 'a t -> unit
(** Drop all elements and reset every counter. *)
