type access = Read | Write | Exec
type fault_reason = Not_present | Page_perm | Key_perm

type window_op =
  | Init
  | Extend
  | Add
  | Remove
  | Open
  | Forward
  | Close
  | Close_all
  | Destroy
  | Downgrade
  | Open_dedicated
  | Close_dedicated

type tlb_op = Hit | Miss | Flush | Invalidate

type pager_op =
  | Cache_hit
  | Cache_miss
  | Evict
  | Page_read
  | Page_write
  | Commit
  | Rollback
  | Wal_append
  | Checkpoint

type t =
  | Fault of { addr : int; access : access; key : int; reason : fault_reason; resolved : bool }
  | Retag of { page : int; to_key : int }
  | Key_fault_in of { cid : int; vkey : int; phys : int }
  | Key_evict of { cid : int; vkey : int; phys : int; pages : int }
  | Pkru_write of { value : int }
  | Call of { caller : int; callee : int; sym : string }
  | Return of { caller : int; callee : int; sym : string }
  | Shared_call of { caller : int; sym : string }
  | Guard_fetch of { cid : int; sym : string }
  | Rejected of { cid : int }
  | Window of {
      cid : int;
      op : window_op;
      wid : int;
      peer : int;
      ptr : int;
      size : int;
      rw : bool;  (** grant permission: [false] for read-only [Add] ranges *)
    }
  | Window_access of { cid : int; owner : int; page : int; access : access }
  | Tlb of tlb_op
  | Sched_switch of { tid : int; cid : int }
  | Pager of pager_op
  | Mark of string

let access_name = function Read -> "read" | Write -> "write" | Exec -> "exec"

let reason_name = function
  | Not_present -> "not_present"
  | Page_perm -> "page_perm"
  | Key_perm -> "key_perm"

let window_op_name = function
  | Init -> "init"
  | Extend -> "extend"
  | Add -> "add"
  | Remove -> "remove"
  | Open -> "open"
  | Forward -> "forward"
  | Close -> "close"
  | Close_all -> "close_all"
  | Destroy -> "destroy"
  | Downgrade -> "downgrade"
  | Open_dedicated -> "open_dedicated"
  | Close_dedicated -> "close_dedicated"

let tlb_op_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Flush -> "flush"
  | Invalidate -> "invalidate"

let pager_op_name = function
  | Cache_hit -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Evict -> "evict"
  | Page_read -> "page_read"
  | Page_write -> "page_write"
  | Commit -> "commit"
  | Rollback -> "rollback"
  | Wal_append -> "wal_append"
  | Checkpoint -> "checkpoint"

let name = function
  | Fault _ -> "fault"
  | Retag _ -> "retag"
  | Key_fault_in _ -> "key_fault_in"
  | Key_evict _ -> "key_evict"
  | Pkru_write _ -> "wrpkru"
  | Call _ -> "call"
  | Return _ -> "return"
  | Shared_call _ -> "shared_call"
  | Guard_fetch _ -> "guard_fetch"
  | Rejected _ -> "rejected"
  | Window _ -> "window"
  | Window_access _ -> "window_access"
  | Tlb _ -> "tlb"
  | Sched_switch _ -> "sched_switch"
  | Pager _ -> "pager"
  | Mark _ -> "mark"

let pp ppf ev =
  match ev with
  | Fault { addr; access; key; reason; resolved } ->
      Format.fprintf ppf "fault addr=0x%x %s key=%d %s%s" addr (access_name access) key
        (reason_name reason)
        (if resolved then " (resolved)" else "")
  | Retag { page; to_key } -> Format.fprintf ppf "retag page=%d -> key %d" page to_key
  | Key_fault_in { cid; vkey; phys } ->
      Format.fprintf ppf "key_fault_in cubicle=%d vkey=%d -> phys %d" cid vkey phys
  | Key_evict { cid; vkey; phys; pages } ->
      Format.fprintf ppf "key_evict cubicle=%d vkey=%d phys=%d (%d pages retagged)" cid vkey
        phys pages
  | Pkru_write { value } -> Format.fprintf ppf "wrpkru 0x%08x" value
  | Call { caller; callee; sym } -> Format.fprintf ppf "call %s: %d -> %d" sym caller callee
  | Return { caller; callee; sym } ->
      Format.fprintf ppf "return %s: %d -> %d" sym callee caller
  | Shared_call { caller; sym } -> Format.fprintf ppf "shared %s (caller %d)" sym caller
  | Guard_fetch { cid; sym } -> Format.fprintf ppf "guard_fetch %s (cubicle %d)" sym cid
  | Rejected { cid } -> Format.fprintf ppf "rejected (cubicle %d)" cid
  | Window { cid; op; wid; peer; ptr; size; rw } ->
      Format.fprintf ppf "window %s wid=%d (cubicle %d)" (window_op_name op) wid cid;
      if peer >= 0 then Format.fprintf ppf " peer=%d" peer;
      if size > 0 then Format.fprintf ppf " ptr=0x%x size=%d" ptr size;
      if not rw then Format.fprintf ppf " ro"
  | Window_access { cid; owner; page; access } ->
      Format.fprintf ppf "window_access %s page=%d (cubicle %d -> owner %d)"
        (access_name access) page cid owner
  | Tlb op -> Format.fprintf ppf "tlb %s" (tlb_op_name op)
  | Sched_switch { tid; cid } -> Format.fprintf ppf "sched tid=%d cid=%d" tid cid
  | Pager op -> Format.fprintf ppf "pager %s" (pager_op_name op)
  | Mark s -> Format.fprintf ppf "mark %s" s
