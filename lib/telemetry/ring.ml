type 'a t = {
  buf : 'a array;
  dummy : 'a;
  mutable start : int;  (* index of the oldest live element *)
  mutable len : int;
  mutable dropped : int;
  mutable total : int;
}

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity dummy; dummy; start = 0; len = 0; dropped = 0; total = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped
let total t = t.total

let push t x =
  let cap = Array.length t.buf in
  t.total <- t.total + 1;
  if t.len = cap then begin
    (* full: overwrite the oldest, counting it as dropped *)
    Array.unsafe_set t.buf t.start x;
    t.start <- (t.start + 1) mod cap;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.buf.((t.start + t.len) mod cap) <- x;
    t.len <- t.len + 1
  end

let iter f t =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod cap)
  done

let to_list t =
  let cap = Array.length t.buf in
  List.init t.len (fun i -> t.buf.((t.start + i) mod cap))

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) t.dummy;
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.total <- 0
