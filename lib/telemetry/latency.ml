(* Per-edge call-latency sink: pairs call/return observations into one
   {!Hist} per caller->callee edge. Fed by the bus's counter-plane call
   sites (and the ukernel's RPC layer), NOT by the event ring, so the
   recorded distribution is exact regardless of ring capacity or
   event-plane sampling. *)

type pending = { p_caller : int; p_callee : int; p_at : int }

type t = {
  tbl : (int * int, Hist.t) Hashtbl.t;
  mutable stack : pending list;  (* in-flight calls, innermost first *)
  mutable unmatched : int;
}

let create () = { tbl = Hashtbl.create 16; stack = []; unmatched = 0 }

let reset t =
  Hashtbl.reset t.tbl;
  t.stack <- [];
  t.unmatched <- 0

let on_call t ~caller ~callee ~at =
  t.stack <- { p_caller = caller; p_callee = callee; p_at = at } :: t.stack

let hist_for t edge =
  match Hashtbl.find_opt t.tbl edge with
  | Some h -> h
  | None ->
      let h = Hist.create () in
      Hashtbl.add t.tbl edge h;
      h

let on_return t ~caller ~callee ~at =
  (* The machine models one hardware thread and returns are observed
     even when the callee raises, so the matching frame is normally the
     head; scan deeper only to survive a sink attached mid-call. *)
  let rec pop = function
    | [] -> None
    | p :: rest when p.p_caller = caller && p.p_callee = callee -> Some (p, rest)
    | p :: rest -> (
        match pop rest with Some (q, rest') -> Some (q, p :: rest') | None -> None)
  in
  match pop t.stack with
  | None -> t.unmatched <- t.unmatched + 1
  | Some (p, rest) ->
      t.stack <- rest;
      Hist.add (hist_for t (caller, callee)) (at - p.p_at)

let edge t ~caller ~callee = Hashtbl.find_opt t.tbl (caller, callee)

let edges t =
  Hashtbl.fold (fun e h acc -> ((e, h) :: acc)) t.tbl []
  |> List.sort (fun ((_, a) : _ * Hist.t) (_, b) -> compare (Hist.count b) (Hist.count a))

let observed t = Hashtbl.fold (fun _ h acc -> acc + Hist.count h) t.tbl 0
let unmatched t = t.unmatched
let in_flight t = List.length t.stack
