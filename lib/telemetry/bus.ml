type entry = { at : int; core : int; seq : int; ev : Event.t }

type t = {
  mutable tracing : bool;
  mutable now : unit -> int;
  ring_capacity : int;
  (* one event track per simulated core; a chatty core can only evict
     its own history. [seq] is the global emission order, so merging
     the tracks reproduces the exact interleaving. *)
  mutable rings : entry Ring.t array;
  mutable cur_core : int;
  mutable seq : int;
  (* event-plane sampling: keep 1 in [every] emissions (1 = keep all).
     [countdown] is the distance to the next kept event. *)
  mutable every : int;
  mutable countdown : int;
  mutable sampled_out : int;
  (* streamed export: a sink sees exactly the entries the ring keeps *)
  mutable sink : (entry -> unit) option;
  (* latency plane: fed from the counter-plane call sites, never from
     the ring, so it is exact under sampling and ring wrap *)
  mutable lat : Latency.t option;
  (* counter plane: always on, allocation-free (the hashtable bumps
     replace existing bindings after first touch) *)
  mutable faults : int;
  mutable retags : int;
  mutable window_ops : int;
  mutable rejected : int;
  mutable shared : int;
  edges : (int * int, int) Hashtbl.t;
  syms : (string, int) Hashtbl.t;
}

let default_capacity = 65536
let dummy_entry = { at = 0; core = 0; seq = 0; ev = Event.Mark "" }

let create ?(capacity = default_capacity) ?(now = fun () -> 0) () =
  {
    tracing = false;
    now;
    ring_capacity = capacity;
    rings = [| Ring.create ~capacity ~dummy:dummy_entry |];
    cur_core = 0;
    seq = 0;
    every = 1;
    countdown = 1;
    sampled_out = 0;
    sink = None;
    lat = None;
    faults = 0;
    retags = 0;
    window_ops = 0;
    rejected = 0;
    shared = 0;
    edges = Hashtbl.create 64;
    syms = Hashtbl.create 64;
  }

let set_now t f = t.now <- f
let tracing t = t.tracing
let set_tracing t b = t.tracing <- b

let set_core t core =
  if core < 0 then invalid_arg "Bus.set_core: negative core id";
  let n = Array.length t.rings in
  if core >= n then
    t.rings <-
      Array.init (core + 1) (fun i ->
          if i < n then t.rings.(i)
          else Ring.create ~capacity:t.ring_capacity ~dummy:dummy_entry);
  t.cur_core <- core

let core t = t.cur_core
let ncores t = Array.length t.rings

let set_sampling t ~every =
  if every < 1 then invalid_arg "Bus.set_sampling: every must be >= 1";
  t.every <- every;
  t.countdown <- 1 (* the next emission is kept, deterministically *)

let sampling t = t.every
let sampled_out t = t.sampled_out
let set_sink t f = t.sink <- f
let set_latency t l = t.lat <- l
let latency t = t.lat

let[@inline] emit t ev =
  if t.tracing then begin
    t.countdown <- t.countdown - 1;
    if t.countdown <= 0 then begin
      t.countdown <- t.every;
      let e = { at = t.now (); core = t.cur_core; seq = t.seq; ev } in
      t.seq <- t.seq + 1;
      Ring.push (Array.unsafe_get t.rings t.cur_core) e;
      match t.sink with None -> () | Some f -> f e
    end
    else t.sampled_out <- t.sampled_out + 1
  end

let sum f t = Array.fold_left (fun acc r -> acc + f r) 0 t.rings

let events t =
  match t.rings with
  | [| r |] -> Ring.to_list r
  | rings ->
      Array.to_list rings
      |> List.concat_map Ring.to_list
      |> List.sort (fun (a : entry) (b : entry) -> compare a.seq b.seq)

let iter_events f t =
  match t.rings with [| r |] -> Ring.iter f r | _ -> List.iter f (events t)

let captured t = sum Ring.length t
let dropped t = sum Ring.dropped t
let total_emitted t = sum Ring.total t

let clear_ring t =
  Array.iter Ring.clear t.rings;
  t.seq <- 0;
  t.sampled_out <- 0;
  t.countdown <- 1

let capacity t = t.ring_capacity

(* --- counter plane ------------------------------------------------------ *)

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let count_call t ~caller ~callee ~sym =
  bump t.edges (caller, callee);
  bump t.syms sym;
  (match t.lat with Some l -> Latency.on_call l ~caller ~callee ~at:(t.now ()) | None -> ());
  if t.tracing then emit t (Event.Call { caller; callee; sym })

let count_return t ~caller ~callee ~sym =
  (match t.lat with
  | Some l -> Latency.on_return l ~caller ~callee ~at:(t.now ())
  | None -> ());
  if t.tracing then emit t (Event.Return { caller; callee; sym })

let observe_call t ~caller ~callee =
  match t.lat with Some l -> Latency.on_call l ~caller ~callee ~at:(t.now ()) | None -> ()

let observe_return t ~caller ~callee =
  match t.lat with Some l -> Latency.on_return l ~caller ~callee ~at:(t.now ()) | None -> ()

let count_shared_call t ~caller ~sym =
  t.shared <- t.shared + 1;
  bump t.syms sym;
  if t.tracing then emit t (Event.Shared_call { caller; sym })

let count_fault t = t.faults <- t.faults + 1
let count_retag t = t.retags <- t.retags + 1
let count_window_op t = t.window_ops <- t.window_ops + 1
let count_rejected t = t.rejected <- t.rejected + 1

let faults t = t.faults
let retags t = t.retags
let window_ops t = t.window_ops
let rejected t = t.rejected
let shared_calls t = t.shared

let calls_between t ~caller ~callee =
  Option.value ~default:0 (Hashtbl.find_opt t.edges (caller, callee))

let calls_into t callee =
  Hashtbl.fold (fun (_, ce) n acc -> if ce = callee then acc + n else acc) t.edges 0

let calls_to_sym t sym = Option.value ~default:0 (Hashtbl.find_opt t.syms sym)
let total_calls t = Hashtbl.fold (fun _ n acc -> acc + n) t.edges 0

let edges t =
  Hashtbl.fold (fun e n acc -> (e, n) :: acc) t.edges []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let snapshot_edges t = Hashtbl.copy t.edges

let reset_counters t =
  t.faults <- 0;
  t.retags <- 0;
  t.window_ops <- 0;
  t.rejected <- 0;
  t.shared <- 0;
  Hashtbl.reset t.edges;
  Hashtbl.reset t.syms
