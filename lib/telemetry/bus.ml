type entry = { at : int; ev : Event.t }

type t = {
  mutable tracing : bool;
  mutable now : unit -> int;
  ring : entry Ring.t;
  (* counter plane: always on, allocation-free (the hashtable bumps
     replace existing bindings after first touch) *)
  mutable faults : int;
  mutable retags : int;
  mutable window_ops : int;
  mutable rejected : int;
  mutable shared : int;
  edges : (int * int, int) Hashtbl.t;
  syms : (string, int) Hashtbl.t;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) ?(now = fun () -> 0) () =
  {
    tracing = false;
    now;
    ring = Ring.create ~capacity ~dummy:{ at = 0; ev = Event.Mark "" };
    faults = 0;
    retags = 0;
    window_ops = 0;
    rejected = 0;
    shared = 0;
    edges = Hashtbl.create 64;
    syms = Hashtbl.create 64;
  }

let set_now t f = t.now <- f
let tracing t = t.tracing
let set_tracing t b = t.tracing <- b

let[@inline] emit t ev = if t.tracing then Ring.push t.ring { at = t.now (); ev }

let events t = Ring.to_list t.ring
let iter_events f t = Ring.iter f t.ring
let captured t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let total_emitted t = Ring.total t.ring
let clear_ring t = Ring.clear t.ring
let capacity t = Ring.capacity t.ring

(* --- counter plane ------------------------------------------------------ *)

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let count_call t ~caller ~callee ~sym =
  bump t.edges (caller, callee);
  bump t.syms sym;
  if t.tracing then emit t (Event.Call { caller; callee; sym })

let count_shared_call t ~caller ~sym =
  t.shared <- t.shared + 1;
  bump t.syms sym;
  if t.tracing then emit t (Event.Shared_call { caller; sym })

let count_fault t = t.faults <- t.faults + 1
let count_retag t = t.retags <- t.retags + 1
let count_window_op t = t.window_ops <- t.window_ops + 1
let count_rejected t = t.rejected <- t.rejected + 1

let faults t = t.faults
let retags t = t.retags
let window_ops t = t.window_ops
let rejected t = t.rejected
let shared_calls t = t.shared

let calls_between t ~caller ~callee =
  Option.value ~default:0 (Hashtbl.find_opt t.edges (caller, callee))

let calls_into t callee =
  Hashtbl.fold (fun (_, ce) n acc -> if ce = callee then acc + n else acc) t.edges 0

let calls_to_sym t sym = Option.value ~default:0 (Hashtbl.find_opt t.syms sym)
let total_calls t = Hashtbl.fold (fun _ n acc -> acc + n) t.edges 0

let edges t =
  Hashtbl.fold (fun e n acc -> (e, n) :: acc) t.edges []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let snapshot_edges t = Hashtbl.copy t.edges

let reset_counters t =
  t.faults <- 0;
  t.retags <- 0;
  t.window_ops <- 0;
  t.rejected <- 0;
  t.shared <- 0;
  Hashtbl.reset t.edges;
  Hashtbl.reset t.syms
