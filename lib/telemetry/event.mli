(** Typed telemetry events.

    One variant per observable action of the simulated system, emitted
    onto the {!Bus} at the existing count sites: memory faults and
    trap-and-map retags ({!Fault}, {!Retag}), PKRU writes, trampoline
    calls and returns, window ACL operations, software-TLB activity,
    scheduler slice switches, and pager/journal operations.

    Cubicle and key identifiers are plain [int]s so this library sits
    below [hw] and [cubicle] in the dependency order; the exporters take
    a naming function to render them. *)

type access = Read | Write | Exec
type fault_reason = Not_present | Page_perm | Key_perm

type window_op =
  | Init
  | Extend
  | Add
  | Remove
  | Open
  | Forward  (** a holder of the window extended the grant to a third cubicle *)
  | Close
  | Close_all
  | Destroy
  | Downgrade  (** an RW grant downgraded to read-only in place *)
  | Open_dedicated
  | Close_dedicated

type tlb_op = Hit | Miss | Flush | Invalidate

type pager_op =
  | Cache_hit
  | Cache_miss
  | Evict
  | Page_read
  | Page_write
  | Commit
  | Rollback
  | Wal_append
  | Checkpoint

type t =
  | Fault of { addr : int; access : access; key : int; reason : fault_reason; resolved : bool }
      (** A protection fault delivered by the machine; [resolved] is
          whether the handler fixed it (trap-and-map). *)
  | Retag of { page : int; to_key : int }  (** Trap-and-map key reassignment. *)
  | Key_fault_in of { cid : int; vkey : int; phys : int }
      (** Key virtualisation: [cid]'s virtual key [vkey] was bound to
          physical MPK tag [phys] (libmpk-style reassignment). The
          replay plane uses these to mirror the virtual→physical map so
          a recycled physical tag never aliases two tenants. *)
  | Key_evict of { cid : int; vkey : int; phys : int; pages : int }
      (** Key virtualisation: [cid]'s binding to [phys] was evicted to
          make room; [pages] of its pages were retagged back to the
          monitor. *)
  | Pkru_write of { value : int }
  | Call of { caller : int; callee : int; sym : string }
      (** Cross-cubicle trampoline entry (paired with {!Return}). *)
  | Return of { caller : int; callee : int; sym : string }
  | Shared_call of { caller : int; sym : string }
      (** Call into a shared cubicle (caller's privileges, no trampoline). *)
  | Guard_fetch of { cid : int; sym : string }
      (** Instruction fetch of a trampoline guard entry. *)
  | Rejected of { cid : int }  (** A caught CFI / isolation violation. *)
  | Window of {
      cid : int;
      op : window_op;
      wid : int;
      peer : int;
      ptr : int;
      size : int;
      rw : bool;
    }
      (** A window ACL operation that succeeded. [wid] identifies the
          window within the owner; [peer] is the grantee for
          open/close-style ops (-1 otherwise); [ptr]/[size] carry the
          range for add/remove (0 otherwise); [rw] is the grant's
          permission for [Add] ([false] = read-only; [true] and
          meaningless for non-grant ops). Rich enough that an offline
          consumer (the CubiCheck replay plane) can mirror the full
          window ACL state, permissions included. *)
  | Window_access of { cid : int; owner : int; page : int; access : access }
      (** A checked memory access by [cid] touching a page owned by a
          {e different} cubicle — the raw material for the replay
          plane's race / use-after-close detection. Emitted from the
          {!Api} access helpers only while tracing, and never charged:
          traced and untraced runs stay cycle-identical. *)
  | Tlb of tlb_op
  | Sched_switch of { tid : int; cid : int }
  | Pager of pager_op
  | Mark of string  (** Free-form phase marker (benchmark harness). *)

val access_name : access -> string
val reason_name : fault_reason -> string
val window_op_name : window_op -> string
val tlb_op_name : tlb_op -> string
val pager_op_name : pager_op -> string

val name : t -> string
(** Short kind name ("fault", "retag", …) used by the exporters. *)

val pp : Format.formatter -> t -> unit
