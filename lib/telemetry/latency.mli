(** Per-edge call-latency distributions.

    A sink that pairs call/return observations into one {!Hist} of
    simulated-cycle latencies per caller->callee edge. Attach one to a
    {!Bus} with [Bus.set_latency] and the bus's counter-plane call
    sites feed it directly — the sink sees {e every} cross-cubicle
    call, independent of ring capacity and of event-plane sampling, so
    per-edge sample counts equal the bus's [calls_between]. The
    microkernel baselines feed their RPC round trips through the same
    interface ([Bus.observe_call] / [Bus.observe_return]).

    Observation never charges simulated cycles. *)

type t

val create : unit -> t
val reset : t -> unit

val on_call : t -> caller:int -> callee:int -> at:int -> unit
(** A call on edge [caller->callee] began at cycle [at]. *)

val on_return : t -> caller:int -> callee:int -> at:int -> unit
(** The innermost in-flight call on that edge returned at cycle [at];
    records [at - call time] in the edge's histogram. A return with no
    matching call (sink attached mid-call) is counted in {!unmatched}
    and otherwise ignored. *)

val edge : t -> caller:int -> callee:int -> Hist.t option

val edges : t -> ((int * int) * Hist.t) list
(** All edges with their histograms, descending sample count. *)

val observed : t -> int
(** Total completed calls recorded across all edges. *)

val unmatched : t -> int
val in_flight : t -> int
