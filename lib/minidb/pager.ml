open Cubicle

let page_size = 4096

type journal_mode = Rollback | Wal

let wal_record = 4 + page_size  (* [pageno u32][page data] *)
let wal_autocheckpoint = 1000  (* records *)

type frame = {
  addr : int;
  mutable pageno : int;
  mutable dirty : bool;
  mutable last_used : int;
  mutable pins : int;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable page_reads : int;
  mutable page_writes : int;
  mutable commits : int;
  mutable rollbacks : int;
}

type t = {
  os : Os_iface.t;
  path : string;
  journal_path : string;
  mode : journal_mode;
  mutable wal_fd : int;
  wal_path : string;
  wal_index : (int, int) Hashtbl.t;  (* pageno -> offset of newest wal copy *)
  mutable wal_off : int;  (* append cursor *)
  mutable txn_wal_start : int;
  fd : int;
  cache_pages : int;
  frames : (int, frame) Hashtbl.t;  (* pageno -> frame *)
  lru_tick : (int, int) Hashtbl.t;  (* tick -> pageno touched at that tick *)
  mutable lru_floor : int;  (* no live entry below this tick *)
  mutable free_frames : int list;  (* spare buffers *)
  mutable allocated_frames : int;
  mutable tick : int;
  mutable npages : int;
  mutable txn : bool;
  journaled : (int, unit) Hashtbl.t;
  mutable jfd : int;
  mutable joff : int;
  mutable txn_orig_npages : int;
  scratch : int;  (* small buffer for journal record headers *)
  st : stats;
}

let stats t = t.st
let page_count t = t.npages
let cached_pages t = List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) t.frames [])
let in_txn t = t.txn
let ctx t = t.os.Os_iface.ctx

let[@inline] emit_pager t op =
  let b = Hw.Cpu.bus (ctx t).Monitor.cpu in
  if b.Telemetry.Bus.tracing then Telemetry.Bus.emit b (Telemetry.Event.Pager op)
let journal_mode t = t.mode
let wal_pages t = t.wal_off / wal_record

let open_db ?(cache_pages = 64) ?(journal_mode = Rollback) (os : Os_iface.t) ~path =
  let fd = os.open_file path ~create:true in
  if fd < 0 then Types.error "pager: cannot open %s (%d)" path fd;
  let size = os.file_size fd in
  let scratch = Api.malloc_page_aligned os.ctx 64 in
  let wal_path = path ^ "-wal" in
  let wal_fd, wal_off, wal_index, wal_max_page =
    match journal_mode with
    | Rollback -> (-1, 0, Hashtbl.create 1, -1)
    | Wal ->
        let wfd = os.open_file wal_path ~create:true in
        if wfd < 0 then Types.error "pager: cannot open WAL (%d)" wfd;
        (* recover: rebuild the index from any records left behind *)
        let index = Hashtbl.create 64 in
        let wsize = os.file_size wfd in
        let max_page = ref (-1) in
        let off = ref 0 in
        while !off + wal_record <= wsize do
          let n = os.pread ~fd:wfd ~buf:scratch ~len:4 ~off:!off in
          if n <> 4 then Types.error "pager: corrupt WAL header";
          let pageno = Api.read_u32 os.ctx scratch in
          Hashtbl.replace index pageno !off;
          if pageno > !max_page then max_page := pageno;
          off := !off + wal_record
        done;
        (wfd, !off, index, !max_page)
  in
  {
    os;
    path;
    journal_path = path ^ "-journal";
    mode = journal_mode;
    wal_fd;
    wal_path;
    wal_index;
    wal_off;
    txn_wal_start = 0;
    fd;
    cache_pages = max 4 cache_pages;
    frames = Hashtbl.create 128;
    lru_tick = Hashtbl.create 128;
    lru_floor = 1;
    free_frames = [];
    allocated_frames = 0;
    tick = 0;
    npages = max ((size + page_size - 1) / page_size) (wal_max_page + 1);
    txn = false;
    journaled = Hashtbl.create 64;
    jfd = -1;
    joff = 0;
    txn_orig_npages = 0;
    scratch;
    st =
      {
        hits = 0;
        misses = 0;
        evictions = 0;
        page_reads = 0;
        page_writes = 0;
        commits = 0;
        rollbacks = 0;
      };
  }

let check_pageno t pageno =
  if pageno < 0 || pageno >= t.npages then
    Types.error "pager: page %d out of range (file has %d)" pageno t.npages

let writeback t frame =
  t.st.page_writes <- t.st.page_writes + 1;
  emit_pager t Telemetry.Event.Page_write;
  (match t.mode with
  | Rollback ->
      let n =
        t.os.pwrite ~fd:t.fd ~buf:frame.addr ~len:page_size ~off:(frame.pageno * page_size)
      in
      if n <> page_size then Types.error "pager: short page write (%d)" n
  | Wal ->
      (* append-only: [pageno][data] at the log cursor *)
      Api.write_u32 (ctx t) t.scratch frame.pageno;
      let n = t.os.pwrite ~fd:t.wal_fd ~buf:t.scratch ~len:4 ~off:t.wal_off in
      if n <> 4 then Types.error "pager: WAL header write failed";
      let n =
        t.os.pwrite ~fd:t.wal_fd ~buf:frame.addr ~len:page_size ~off:(t.wal_off + 4)
      in
      if n <> page_size then Types.error "pager: WAL data write failed";
      Hashtbl.replace t.wal_index frame.pageno t.wal_off;
      t.wal_off <- t.wal_off + wal_record;
      emit_pager t Telemetry.Event.Wal_append);
  frame.dirty <- false

(* LRU bookkeeping: [lru_tick] maps a tick to the page touched at that
   tick, and a touch drops the frame's previous entry, so every cached
   frame has exactly one live entry — at its [last_used] tick. Ticks
   are unique and ascending, so the lowest live entry is the least
   recently used frame: victim search walks up from [lru_floor] instead
   of folding over the whole frame table. Entries left behind by frames
   dropped on rollback go stale (no frame, or a frame touched since);
   the walk deletes them as it passes. The floor only advances over
   stale entries, never past a live-but-pinned one, so a frame skipped
   while pinned is found again by the next search. *)
let touch t frame =
  Hashtbl.remove t.lru_tick frame.last_used;
  t.tick <- t.tick + 1;
  frame.last_used <- t.tick;
  Hashtbl.replace t.lru_tick t.tick frame.pageno

let lru_victim t =
  let rec scan k contiguous =
    if k > t.tick then None
    else
      match Hashtbl.find_opt t.lru_tick k with
      | None ->
          if contiguous then t.lru_floor <- k + 1;
          scan (k + 1) contiguous
      | Some pageno -> (
          match Hashtbl.find_opt t.frames pageno with
          | Some f when f.last_used = k ->
              if f.pins = 0 then Some f else scan (k + 1) false
          | _ ->
              Hashtbl.remove t.lru_tick k;
              if contiguous then t.lru_floor <- k + 1;
              scan (k + 1) contiguous)
  in
  scan t.lru_floor true

(* Find a buffer for a new frame: reuse a spare, allocate a fresh one
   while under capacity, or evict the least recently used unpinned
   frame (spilling it if dirty). *)
let acquire_buffer t =
  match t.free_frames with
  | addr :: rest ->
      t.free_frames <- rest;
      addr
  | [] ->
      if t.allocated_frames < t.cache_pages then begin
        t.allocated_frames <- t.allocated_frames + 1;
        Api.malloc_page_aligned t.os.ctx page_size
      end
      else begin
        match lru_victim t with
        | None -> Types.error "pager: all %d cache frames pinned" t.cache_pages
        | Some f ->
            if f.dirty then writeback t f;
            Hashtbl.remove t.frames f.pageno;
            Hashtbl.remove t.lru_tick f.last_used;
            t.st.evictions <- t.st.evictions + 1;
            emit_pager t Telemetry.Event.Evict;
            f.addr
      end

let load_frame t pageno =
  match Hashtbl.find_opt t.frames pageno with
  | Some f ->
      t.st.hits <- t.st.hits + 1;
      emit_pager t Telemetry.Event.Cache_hit;
      touch t f;
      f
  | None ->
      t.st.misses <- t.st.misses + 1;
      emit_pager t Telemetry.Event.Cache_miss;
      let addr = acquire_buffer t in
      t.st.page_reads <- t.st.page_reads + 1;
      emit_pager t Telemetry.Event.Page_read;
      let n =
        match
          if t.mode = Wal then Hashtbl.find_opt t.wal_index pageno else None
        with
        | Some woff -> t.os.pread ~fd:t.wal_fd ~buf:addr ~len:page_size ~off:(woff + 4)
        | None -> t.os.pread ~fd:t.fd ~buf:addr ~len:page_size ~off:(pageno * page_size)
      in
      (* a fresh page at EOF reads short: zero-fill the tail *)
      if n < page_size then Api.memset t.os.ctx (addr + n) (page_size - n) '\000';
      let f = { addr; pageno; dirty = false; last_used = 0; pins = 0 } in
      Hashtbl.replace t.frames pageno f;
      touch t f;
      f

let with_pinned t pageno f =
  check_pageno t pageno;
  let frame = load_frame t pageno in
  frame.pins <- frame.pins + 1;
  Fun.protect ~finally:(fun () -> frame.pins <- frame.pins - 1) (fun () -> f frame)

let read_page t pageno f = with_pinned t pageno (fun frame -> f frame.addr)

(* Append the current (pre-modification) content of a page to the
   rollback journal: a [pageno] header then the 4 KiB of data. *)
let journal_page t frame =
  if t.mode = Rollback && t.txn && not (Hashtbl.mem t.journaled frame.pageno) then begin
    Api.write_u32 t.os.ctx t.scratch frame.pageno;
    let n = t.os.pwrite ~fd:t.jfd ~buf:t.scratch ~len:4 ~off:t.joff in
    if n <> 4 then Types.error "pager: journal header write failed";
    let n = t.os.pwrite ~fd:t.jfd ~buf:frame.addr ~len:page_size ~off:(t.joff + 4) in
    if n <> page_size then Types.error "pager: journal data write failed";
    t.joff <- t.joff + 4 + page_size;
    Hashtbl.replace t.journaled frame.pageno ()
  end

let write_page t pageno f =
  with_pinned t pageno (fun frame ->
      journal_page t frame;
      frame.dirty <- true;
      f frame.addr)

let allocate_page t =
  let pageno = t.npages in
  t.npages <- t.npages + 1;
  (* materialise a zeroed cached frame; the file grows on writeback *)
  let addr = acquire_buffer t in
  Api.memset t.os.ctx addr page_size '\000';
  let f = { addr; pageno; dirty = true; last_used = 0; pins = 0 } in
  Hashtbl.replace t.frames pageno f;
  touch t f;
  (if t.txn then Hashtbl.replace t.journaled pageno ());
  pageno

let begin_txn t =
  if t.txn then Types.error "pager: nested transaction";
  (match t.mode with
  | Rollback ->
      let jfd = t.os.open_file t.journal_path ~create:true in
      if jfd < 0 then Types.error "pager: cannot create journal (%d)" jfd;
      t.jfd <- jfd;
      t.joff <- 0
  | Wal -> t.txn_wal_start <- t.wal_off);
  t.txn <- true;
  t.txn_orig_npages <- t.npages;
  Hashtbl.reset t.journaled

let flush t =
  Hashtbl.iter (fun _ f -> if f.dirty then writeback t f) t.frames

let end_txn t =
  (match t.mode with
  | Rollback ->
      ignore (t.os.close_file t.jfd);
      ignore (t.os.unlink t.journal_path);
      t.jfd <- -1
  | Wal -> ());
  t.txn <- false;
  Hashtbl.reset t.journaled

(* Fold the newest copy of every logged page back into the database
   file and truncate the log. *)
let checkpoint t =
  if t.txn then Types.error "pager: checkpoint inside transaction";
  if t.mode = Wal && Hashtbl.length t.wal_index > 0 then begin
    emit_pager t Telemetry.Event.Checkpoint;
    let buf = Api.malloc_page_aligned (ctx t) page_size in
    Hashtbl.iter
      (fun pageno woff ->
        let n = t.os.pread ~fd:t.wal_fd ~buf ~len:page_size ~off:(woff + 4) in
        if n <> page_size then Types.error "pager: WAL read during checkpoint failed";
        let w = t.os.pwrite ~fd:t.fd ~buf ~len:page_size ~off:(pageno * page_size) in
        if w <> page_size then Types.error "pager: checkpoint write failed")
      t.wal_index;
    Api.free (ctx t) buf;
    ignore (t.os.fsync t.fd);
    ignore (t.os.truncate ~fd:t.wal_fd ~size:0);
    ignore (t.os.fsync t.wal_fd);
    t.wal_off <- 0;
    Hashtbl.reset t.wal_index
  end

let commit t =
  if not t.txn then Types.error "pager: commit outside transaction";
  (match t.mode with
  | Rollback ->
      ignore (t.os.fsync t.jfd);
      flush t;
      ignore (t.os.fsync t.fd)
  | Wal ->
      flush t;
      ignore (t.os.fsync t.wal_fd));
  t.st.commits <- t.st.commits + 1;
  emit_pager t Telemetry.Event.Commit;
  end_txn t;
  if t.mode = Wal && t.wal_off / wal_record > wal_autocheckpoint then checkpoint t

let rebuild_wal_index t upto =
  Hashtbl.reset t.wal_index;
  let off = ref 0 in
  while !off + wal_record <= upto do
    let n = t.os.pread ~fd:t.wal_fd ~buf:t.scratch ~len:4 ~off:!off in
    if n <> 4 then Types.error "pager: corrupt WAL during rollback";
    Hashtbl.replace t.wal_index (Api.read_u32 (ctx t) t.scratch) !off;
    off := !off + wal_record
  done

let rollback_wal t =
  (* drop dirty frames; discard any records this transaction spilled *)
  let dropped =
    Hashtbl.fold (fun p f acc -> if f.dirty then (p, f) :: acc else acc) t.frames []
  in
  List.iter
    (fun (p, f) ->
      Hashtbl.remove t.frames p;
      t.free_frames <- f.addr :: t.free_frames)
    dropped;
  if t.wal_off > t.txn_wal_start then begin
    ignore (t.os.truncate ~fd:t.wal_fd ~size:t.txn_wal_start);
    t.wal_off <- t.txn_wal_start;
    rebuild_wal_index t t.txn_wal_start;
    (* clean frames may cache data from discarded records *)
    let stale =
      Hashtbl.fold (fun p f acc -> if f.pins = 0 then (p, f) :: acc else acc) t.frames []
    in
    List.iter
      (fun (p, f) ->
        Hashtbl.remove t.frames p;
        t.free_frames <- f.addr :: t.free_frames)
      stale
  end;
  t.npages <- t.txn_orig_npages;
  t.st.rollbacks <- t.st.rollbacks + 1;
  emit_pager t Telemetry.Event.Rollback;
  end_txn t

let rollback t =
  if not t.txn then Types.error "pager: rollback outside transaction";
  if t.mode = Wal then rollback_wal t
  else begin
  (* drop every dirty frame, then replay the journal into the file and
     cache *)
  let dropped = Hashtbl.fold (fun p f acc -> if f.dirty then (p, f) :: acc else acc) t.frames [] in
  List.iter
    (fun (p, f) ->
      Hashtbl.remove t.frames p;
      t.free_frames <- f.addr :: t.free_frames)
    dropped;
  let jsize = t.joff in
  let buf = Api.malloc_page_aligned t.os.ctx page_size in
  let rec replay off =
    if off < jsize then begin
      let n = t.os.pread ~fd:t.jfd ~buf:t.scratch ~len:4 ~off in
      if n <> 4 then Types.error "pager: corrupt journal";
      let pageno = Api.read_u32 t.os.ctx t.scratch in
      let n = t.os.pread ~fd:t.jfd ~buf ~len:page_size ~off:(off + 4) in
      if n <> page_size then Types.error "pager: corrupt journal data";
      let w = t.os.pwrite ~fd:t.fd ~buf ~len:page_size ~off:(pageno * page_size) in
      if w <> page_size then Types.error "pager: journal replay write failed";
      (match Hashtbl.find_opt t.frames pageno with
      | Some f ->
          Hashtbl.remove t.frames pageno;
          t.free_frames <- f.addr :: t.free_frames
      | None -> ());
      replay (off + 4 + page_size)
    end
  in
  replay 0;
  Api.free t.os.ctx buf;
  t.npages <- t.txn_orig_npages;
  ignore (t.os.truncate ~fd:t.fd ~size:(t.npages * page_size));
  t.st.rollbacks <- t.st.rollbacks + 1;
  emit_pager t Telemetry.Event.Rollback;
  end_txn t
  end

let close t =
  if t.txn then Types.error "pager: close inside transaction";
  flush t;
  if t.mode = Wal then begin
    checkpoint t;
    ignore (t.os.close_file t.wal_fd);
    ignore (t.os.unlink t.wal_path)
  end;
  ignore (t.os.close_file t.fd)
