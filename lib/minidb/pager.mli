(** The database pager: a fixed-capacity page cache with LRU eviction
    over a single database file, plus a rollback journal giving atomic
    transactions (SQLite-style: before a page is first modified inside
    a transaction its original content is appended to the journal;
    commit flushes dirty pages and deletes the journal; rollback
    replays it).

    Cache frames are page-aligned buffers in the application cubicle's
    heap; every miss, spill, journal append and sync goes through the
    OS interface — which is exactly the "uses the OS interface more
    often" axis that separates the two query groups of the paper's
    Figure 6. *)

val page_size : int

type journal_mode =
  | Rollback  (** journal the old content, write pages in place (default) *)
  | Wal
      (** write-ahead log: committed pages are appended to a [-wal]
          file and folded back into the database by {!checkpoint}
          (automatically on close, or when the log exceeds
          ~1000 pages). Readers consult the WAL index first. *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable page_reads : int;
  mutable page_writes : int;
  mutable commits : int;
  mutable rollbacks : int;
}

val open_db : ?cache_pages:int -> ?journal_mode:journal_mode -> Os_iface.t -> path:string -> t
(** Opens or creates the database file. Default cache: 64 pages,
    rollback journal. An existing non-empty WAL from a previous session
    is recovered on open (its pages take precedence until the next
    checkpoint). *)

val journal_mode : t -> journal_mode

val checkpoint : t -> unit
(** WAL mode: fold the log back into the database file and truncate it.
    No-op in rollback mode or when the WAL is empty. Raises inside a
    transaction. *)

val wal_pages : t -> int
(** Entries currently in the write-ahead log (0 in rollback mode). *)

val close : t -> unit
(** Commits nothing: flushes dirty pages outside a transaction, then
    closes. Raises {!Cubicle.Types.Error} if a transaction is open. *)

val page_count : t -> int
val stats : t -> stats

val cached_pages : t -> int list
(** Page numbers currently held in cache frames, sorted — the
    observable the LRU eviction-order tests pin down. *)

val ctx : t -> Cubicle.Monitor.ctx
(** The application context frames live in (for reading frame bytes). *)

val allocate_page : t -> int
(** Extend the file by one (zeroed) page; returns its page number. *)

val read_page : t -> int -> (int -> 'a) -> 'a
(** [read_page t pageno f] pins the page's cache frame and calls
    [f addr] with the simulated-memory address of its contents. *)

val write_page : t -> int -> (int -> 'a) -> 'a
(** Like {!read_page} but journals the original content first (inside a
    transaction) and marks the frame dirty. *)

val begin_txn : t -> unit
val in_txn : t -> bool
val commit : t -> unit
val rollback : t -> unit

val flush : t -> unit
(** Write back all dirty frames (no transaction semantics). *)
