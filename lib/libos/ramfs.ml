open Cubicle

let chunk_size = Hw.Addr.page_size

type file = {
  ino : int;
  mutable name : string;
  mutable size : int;
  mutable chunks : int array;  (* page addresses; 0 = not yet allocated *)
}

type state = {
  by_name : (string, file) Hashtbl.t;
  by_ino : (int, file) Hashtbl.t;
  mutable next_ino : int;
  (* zero-copy sendfile: one standing heap window carrying every chunk
     page granted to the network stack, created lazily on the first
     sendfile. [granted] tracks the chunk addresses currently in the
     window so each page is granted once and revoked before free. *)
  mutable sf_wid : int;  (* -1 until the first sendfile *)
  granted : (int, unit) Hashtbl.t;
}

let read_path ctx ptr len = Api.read_string ctx ptr len

let ensure_chunks state ctx file n =
  ignore state;
  if Array.length file.chunks < n then begin
    let chunks = Array.make n 0 in
    Array.blit file.chunks 0 chunks 0 (Array.length file.chunks);
    file.chunks <- chunks
  end;
  for i = 0 to n - 1 do
    if file.chunks.(i) = 0 then
      file.chunks.(i) <- Api.call ctx "uk_palloc" [| 1 |]
  done

let lookup_fn state ctx (args : int array) =
  let path = read_path ctx args.(0) args.(1) in
  match Hashtbl.find_opt state.by_name path with
  | Some f -> f.ino
  | None -> Sysdefs.enoent

let create_fn state ctx (args : int array) =
  let path = read_path ctx args.(0) args.(1) in
  match Hashtbl.find_opt state.by_name path with
  | Some _ -> Sysdefs.eexist
  | None ->
      let ino = state.next_ino in
      state.next_ino <- ino + 1;
      let f = { ino; name = path; size = 0; chunks = [||] } in
      Hashtbl.replace state.by_name path f;
      Hashtbl.replace state.by_ino ino f;
      ino

let with_ino state ino f =
  match Hashtbl.find_opt state.by_ino ino with None -> Sysdefs.ebadf | Some file -> f file

(* Copy [len] bytes between a caller buffer and file chunks, one chunk
   piece at a time, through the shared-cubicle memcpy. *)
let chunk_io state ctx file ~buf ~len ~off ~write =
  if write then ensure_chunks state ctx file ((off + len + chunk_size - 1) / chunk_size);
  let rec step done_ =
    if done_ >= len then done_
    else begin
      let pos = off + done_ in
      let ci = pos / chunk_size and coff = pos mod chunk_size in
      let n = min (len - done_) (chunk_size - coff) in
      if write then
        ignore (Api.call ctx "memcpy" [| file.chunks.(ci) + coff; buf + done_; n |])
      else if ci < Array.length file.chunks && file.chunks.(ci) <> 0 then
        ignore (Api.call ctx "memcpy" [| buf + done_; file.chunks.(ci) + coff; n |])
      else
        (* sparse hole: read as zeroes *)
        ignore (Api.call ctx "memset" [| buf + done_; n; 0 |]);
      step (done_ + n)
    end
  in
  step 0

(* pread/pwrite receive an io descriptor (in the VFS's staging window)
   plus the data buffer pointer (in the application's window). *)
let read_iodesc ctx desc =
  let ino = Api.read_u32 ctx desc in
  let len = Api.read_u32 ctx (desc + 4) in
  let off = Int64.to_int (Api.read_i64 ctx (desc + 8)) in
  (ino, len, off)

let pread_fn state ctx (args : int array) =
  let ino, len, off = read_iodesc ctx args.(0) in
  with_ino state ino (fun file ->
      let buf = args.(1) in
      if off >= file.size then 0
      else
        let len = min len (file.size - off) in
        chunk_io state ctx file ~buf ~len ~off ~write:false)

let pwrite_fn state ctx (args : int array) =
  let ino, len, off = read_iodesc ctx args.(0) in
  with_ino state ino (fun file ->
      let buf = args.(1) in
      let n = chunk_io state ctx file ~buf ~len ~off ~write:true in
      file.size <- max file.size (off + n);
      n)

let size_fn state _ctx (args : int array) = with_ino state args.(0) (fun f -> f.size)

(* Revoke a chunk's sendfile grant (if any) before the page goes back
   to the allocator: a freed page must never stay reachable through a
   standing window. *)
let revoke_chunk state ctx addr =
  if state.sf_wid >= 0 && Hashtbl.mem state.granted addr then begin
    Api.window_remove ctx state.sf_wid ~ptr:addr;
    Hashtbl.remove state.granted addr
  end

(* Zero-copy sendfile: grant the chunk pages backing [off, off+len) to
   the network stack through the standing sendfile window (batched —
   one monitor crossing for the whole span) and stream the bytes with
   lwip_send_zc, which forwards the grant to NETDEV. No payload byte is
   copied by RAMFS. *)
let sendfile_fn state ctx (args : int array) =
  let ino, len, off = read_iodesc ctx args.(0) in
  let conn = args.(1) in
  with_ino state ino (fun file ->
      if off >= file.size then 0
      else begin
        let len = min len (file.size - off) in
        if len <= 0 then 0
        else begin
          if state.sf_wid < 0 then begin
            let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
            Api.window_open_many ctx wid [ Api.cid_of ctx "LWIP" ];
            state.sf_wid <- wid
          end;
          (* materialise holes: a granted page must exist (the page-cache
             fill a real sendfile would do) *)
          ensure_chunks state ctx file ((off + len + chunk_size - 1) / chunk_size);
          let first = off / chunk_size and last = (off + len - 1) / chunk_size in
          let fresh = ref [] in
          for ci = first to last do
            let addr = file.chunks.(ci) in
            if not (Hashtbl.mem state.granted addr) then begin
              Hashtbl.replace state.granted addr ();
              fresh := (addr, chunk_size) :: !fresh
            end
          done;
          (* grant the fresh chunk pages (batched), then downgrade each
             grant to read-only: the network stack only ever reads file
             chunks on the transmit path, so a compromised LWIP/NETDEV
             must not be able to scribble into the page cache through
             the standing window. The downgrade is a priced window op
             per fresh chunk; already-granted chunks stay R for free. *)
          (match List.rev !fresh with
          | [] -> ()
          | ranges ->
              Api.window_add_ranges ctx state.sf_wid ranges;
              List.iter (fun (ptr, _) -> Api.window_downgrade ctx state.sf_wid ~ptr) ranges);
          let rec step done_ =
            if done_ >= len then done_
            else begin
              let pos = off + done_ in
              let ci = pos / chunk_size and coff = pos mod chunk_size in
              let n = min (len - done_) (chunk_size - coff) in
              let r =
                Api.call ctx "lwip_send_zc"
                  [| conn; file.chunks.(ci) + coff; n; state.sf_wid |]
              in
              if r <> n then Types.error "ramfs: short zero-copy send (%d/%d)" r n;
              step (done_ + n)
            end
          in
          step 0
        end
      end)

let truncate_fn state ctx (args : int array) =
  with_ino state args.(0) (fun file ->
      let new_size = args.(1) in
      if new_size < file.size then begin
        (* free now-unused whole chunks *)
        let keep = (new_size + chunk_size - 1) / chunk_size in
        Array.iteri
          (fun i addr ->
            if i >= keep && addr <> 0 then begin
              revoke_chunk state ctx addr;
              ignore (Api.call ctx "uk_pfree" [| addr |]);
              file.chunks.(i) <- 0
            end)
          file.chunks;
        (* zero the tail of the boundary chunk so a later extension
           reads zeroes, not stale bytes (POSIX truncate semantics).
           The boundary chunk may not exist: a sparse file extended by
           truncate has fewer allocated chunks than its size implies *)
        let coff = new_size mod chunk_size in
        if coff > 0 && keep >= 1 && keep <= Array.length file.chunks && file.chunks.(keep - 1) <> 0 then
          ignore
            (Api.call ctx "memset" [| file.chunks.(keep - 1) + coff; chunk_size - coff; 0 |])
      end;
      file.size <- new_size;
      Sysdefs.ok)

let fsync_fn _state ctx (_args : int array) =
  Hw.Cost.charge (Monitor.cost ctx.Monitor.mon) Sysdefs.fsync_cycles;
  Sysdefs.ok

let unlink_fn state ctx (args : int array) =
  let path = read_path ctx args.(0) args.(1) in
  match Hashtbl.find_opt state.by_name path with
  | None -> Sysdefs.enoent
  | Some file ->
      Array.iter
        (fun addr ->
          if addr <> 0 then begin
            revoke_chunk state ctx addr;
            ignore (Api.call ctx "uk_pfree" [| addr |])
          end)
        file.chunks;
      Hashtbl.remove state.by_name path;
      Hashtbl.remove state.by_ino file.ino;
      Sysdefs.ok

let rename_fn state ctx (args : int array) =
  let old_path = read_path ctx args.(0) args.(1) in
  let new_path = read_path ctx args.(2) args.(3) in
  match Hashtbl.find_opt state.by_name old_path with
  | None -> Sysdefs.enoent
  | Some file ->
      (match Hashtbl.find_opt state.by_name new_path with
      | Some target when target.ino <> file.ino ->
          (* rename over an existing file replaces it *)
          Array.iter
            (fun addr ->
              if addr <> 0 then begin
                revoke_chunk state ctx addr;
                ignore (Api.call ctx "uk_pfree" [| addr |])
              end)
            target.chunks;
          Hashtbl.remove state.by_ino target.ino
      | _ -> ());
      Hashtbl.remove state.by_name old_path;
      file.name <- new_path;
      Hashtbl.replace state.by_name new_path file;
      Sysdefs.ok

let init _state ctx =
  (* fill in VFSCORE's callback table, interposed through trampolines *)
  ignore (Api.call ctx "vfs_register_backend" [| 1 |])

let make ?(sendfile = false) () =
  let state =
    {
      by_name = Hashtbl.create 64;
      by_ino = Hashtbl.create 64;
      next_ino = 1;
      sf_wid = -1;
      granted = Hashtbl.create 64;
    }
  in
  (* when the sendfile path is compiled in, every chunk free first
     revokes the page's standing grant *)
  let free_loop =
    Iface.Loop
      ((if sendfile then
          [ Iface.Window_remove { win = "sf_win"; buf = Iface.Local "file_chunks" } ]
        else [])
      @ [ Iface.Call { sym = "uk_pfree"; ptr_args = [] } ])
  in
  let zc_iface =
    if not sendfile then []
    else
      [
        (* grant-and-forward: chunk pages enter the standing sf_win,
           opened for LWIP, which forwards the grant to NETDEV before
           the gather transmit touches the payload *)
        Iface.fundecl ~derefs:[ 0 ] "ramfs_sendfile"
          [
            Iface.Loop [ Iface.Call { sym = "uk_palloc"; ptr_args = [] } ];
            Iface.Window_add
              {
                win = "sf_win";
                buf = Iface.Local "file_chunks";
                bytes = chunk_size;
                standing = true;
                rw = false;
              };
            Iface.Window_open { win = "sf_win"; peer = "LWIP" };
            Iface.Window_forward { win = "sf_win"; peer = "NETDEV" };
            Iface.Loop
              [
                Iface.Call
                  {
                    sym = "lwip_send_zc";
                    ptr_args = [ (1, Iface.Local "file_chunks", chunk_size) ];
                  };
              ];
          ];
      ]
  in
  let zc_exports =
    if not sendfile then []
    else [ { Monitor.sym = "ramfs_sendfile"; fn = sendfile_fn state; stack_bytes = 0 } ]
  in
  let comp =
    Builder.component "RAMFS" ~code_ops:768 ~heap_pages:8 ~stack_pages:4 ~init:(init state)
      ~iface:
        ([
           Iface.fundecl "__init"
             [ Iface.Call { sym = "vfs_register_backend"; ptr_args = [] } ];
           Iface.fundecl ~derefs:[ 0 ] "ramfs_lookup" [];
           Iface.fundecl ~derefs:[ 0 ] "ramfs_create" [];
           (* data ops read the iodesc (arg 0) and copy through the
              caller's buffer (arg 1) via shared libc, running with this
              cubicle's privileges *)
           Iface.fundecl ~derefs:[ 0; 1 ] ~writes:[ 1 ] "ramfs_pread"
             [ Iface.Loop [ Iface.Call { sym = "memcpy"; ptr_args = [] } ] ];
           Iface.fundecl ~derefs:[ 0; 1 ] "ramfs_pwrite"
             [
               Iface.Loop
                 [
                   Iface.Call { sym = "uk_palloc"; ptr_args = [] };
                   Iface.Call { sym = "memcpy"; ptr_args = [] };
                 ];
             ];
           Iface.fundecl "ramfs_size" [];
           Iface.fundecl "ramfs_truncate"
             [
               free_loop;
               Iface.Branch [ [ Iface.Call { sym = "memset"; ptr_args = [] } ]; [] ];
             ];
           Iface.fundecl "ramfs_fsync" [];
           Iface.fundecl ~derefs:[ 0 ] "ramfs_unlink" [ free_loop ];
           Iface.fundecl ~derefs:[ 0; 2 ] "ramfs_rename" [ free_loop ];
         ]
        @ zc_iface)
      ~exports:
        ([
           { Monitor.sym = "ramfs_lookup"; fn = lookup_fn state; stack_bytes = 0 };
           { Monitor.sym = "ramfs_create"; fn = create_fn state; stack_bytes = 0 };
           { Monitor.sym = "ramfs_pread"; fn = pread_fn state; stack_bytes = 0 };
           { Monitor.sym = "ramfs_pwrite"; fn = pwrite_fn state; stack_bytes = 0 };
           { Monitor.sym = "ramfs_size"; fn = size_fn state; stack_bytes = 0 };
           { Monitor.sym = "ramfs_truncate"; fn = truncate_fn state; stack_bytes = 0 };
           { Monitor.sym = "ramfs_fsync"; fn = fsync_fn state; stack_bytes = 0 };
           { Monitor.sym = "ramfs_unlink"; fn = unlink_fn state; stack_bytes = 0 };
           { Monitor.sym = "ramfs_rename"; fn = rename_fn state; stack_bytes = 16 };
         ]
        @ zc_exports)
  in
  (state, comp)

let file_count state = Hashtbl.length state.by_name
let total_bytes state = Hashtbl.fold (fun _ f acc -> acc + f.size) state.by_ino 0
