open Cubicle

let palloc_fn (ctx : Monitor.ctx) (args : int array) =
  Monitor.alloc_pages ctx.mon ctx.caller args.(0) ~kind:Mm.Page_meta.Heap

let pfree_fn (ctx : Monitor.ctx) (args : int array) =
  Monitor.free_pages ctx.mon ctx.caller args.(0);
  0

let component () =
  (* the page arguments are monitor-mediated, never dereferenced by
     ALLOC itself: no window obligations *)
  Builder.component "ALLOC" ~code_ops:384 ~heap_pages:2 ~stack_pages:2
    ~iface:[ Iface.fundecl "uk_palloc" []; Iface.fundecl "uk_pfree" [] ]
    ~exports:
      [
        { Monitor.sym = "uk_palloc"; fn = palloc_fn; stack_bytes = 0 };
        { Monitor.sym = "uk_pfree"; fn = pfree_fn; stack_bytes = 0 };
      ]
