open Cubicle

type t = {
  ctx : Monitor.ctx;
  vfs_cid : Types.cid;
  backend_cid : Types.cid;
  path_buf : int;  (* page-aligned; reused for every path argument *)
  path_wid : Types.wid;
  data_wid : Types.wid;  (* reused window for data buffers *)
}

let make ctx =
  let vfs_cid = Api.cid_of ctx "VFSCORE" in
  let backend_cid = Api.call ctx "vfs_backend_cid" [||] in
  let path_buf = Api.malloc_page_aligned ctx 512 in
  let path_wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  (* paths are read by VFSCORE only (it re-stages them for the backend),
     so the standing grant is read-only *)
  Api.window_add ctx ~perm:Window.R path_wid ~ptr:path_buf ~size:512;
  Api.window_open ctx path_wid vfs_cid;
  let data_wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  { ctx; vfs_cid; backend_cid; path_buf; path_wid; data_wid }

let ctx t = t.ctx

let with_path t path f =
  let len = String.length path in
  if len = 0 || len > 500 then Types.error "fileio: bad path %S" path;
  Api.write_string t.ctx t.path_buf path;
  f t.path_buf len

let with_window ?(perm = Window.RW) t ~ptr ~size f =
  let teardown () =
    Api.window_close_all t.ctx t.data_wid;
    Api.window_remove t.ctx t.data_wid ~ptr
  in
  (* the setup itself can fail halfway (e.g. the backend cubicle is
     gone when the second open runs): roll the partial grant back
     before re-raising, or the range and the VFSCORE open leak into
     every later use of the shared data window *)
  (try
     Api.window_add t.ctx ~perm t.data_wid ~ptr ~size;
     Api.window_open t.ctx t.data_wid t.vfs_cid;
     if t.backend_cid <> t.vfs_cid then Api.window_open t.ctx t.data_wid t.backend_cid
   with e ->
     (try teardown () with _ -> ());
     raise e);
  Fun.protect ~finally:teardown f

let open_file t path ~create =
  with_path t path (fun p len ->
      Api.call t.ctx "vfs_open" [| p; len; (if create then 1 else 0) |])

let close_file t fd = Api.call t.ctx "vfs_close" [| fd |]

let pread t ~fd ~buf ~len ~off =
  with_window t ~ptr:buf ~size:len (fun () ->
      Api.call t.ctx "vfs_pread" [| fd; buf; len; off |])

let pwrite t ~fd ~buf ~len ~off =
  (* the backend only reads the source buffer on the write path *)
  with_window ~perm:Window.R t ~ptr:buf ~size:len (fun () ->
      Api.call t.ctx "vfs_pwrite" [| fd; buf; len; off |])

(* Zero-copy: no caller buffer, hence no window to manage — the file
   system grants its own chunk pages to the network stack. *)
let sendfile t ~fd ~conn ~len ~off = Api.call t.ctx "vfs_sendfile" [| fd; conn; len; off |]

let file_size t fd = Api.call t.ctx "vfs_size" [| fd |]
let truncate t ~fd ~size = Api.call t.ctx "vfs_truncate" [| fd; size |]
let fsync t fd = Api.call t.ctx "vfs_fsync" [| fd |]

let unlink t path = with_path t path (fun p len -> Api.call t.ctx "vfs_unlink" [| p; len |])
let exists t path = with_path t path (fun p len -> Api.call t.ctx "vfs_exists" [| p; len |]) = 1

let rename t ~old_name ~new_name =
  (* both names share the path staging buffer: old at 0, new at 256 *)
  let ol = String.length old_name and nl = String.length new_name in
  if ol = 0 || ol > 250 || nl = 0 || nl > 250 then Types.error "fileio: bad rename paths";
  Api.write_string t.ctx t.path_buf old_name;
  Api.write_string t.ctx (t.path_buf + 256) new_name;
  Api.call t.ctx "vfs_rename" [| t.path_buf; ol; t.path_buf + 256; nl |]

let write_file t path contents =
  let fd = open_file t path ~create:true in
  if fd < 0 then Types.error "fileio: cannot create %s (%d)" path fd;
  let len = String.length contents in
  if len > 0 then begin
    let buf = Api.malloc_page_aligned t.ctx len in
    Api.write_string t.ctx buf contents;
    let n = pwrite t ~fd ~buf ~len ~off:0 in
    Api.free t.ctx buf;
    if n <> len then Types.error "fileio: short write to %s (%d/%d)" path n len
  end;
  ignore (truncate t ~fd ~size:len);
  ignore (close_file t fd)

let read_file t path =
  let fd = open_file t path ~create:false in
  if fd < 0 then Types.error "fileio: cannot open %s (%d)" path fd;
  let size = file_size t fd in
  let result =
    if size = 0 then ""
    else begin
      let buf = Api.malloc_page_aligned t.ctx size in
      let n = pread t ~fd ~buf ~len:size ~off:0 in
      let s = Api.read_string t.ctx buf n in
      Api.free t.ctx buf;
      s
    end
  in
  ignore (close_file t fd);
  result
