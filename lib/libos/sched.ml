open Cubicle

type _ Effect.t += Yield : unit Effect.t

type tid = int

type thread = {
  tid : tid;
  cid : Types.cid;
  body : unit -> unit;  (* used only for the first slice *)
  mutable last_core : int;  (* core of the previous slice; -1 before the first *)
}

type runnable =
  | Fresh of thread
  | Resumed of thread * (unit, unit) Effect.Deep.continuation

type t = {
  mon : Monitor.t;
  queues : runnable Queue.t array;  (* one run queue per simulated core *)
  quantum : int;  (* min cycles a slice keeps the core across yields; 0 = rotate on every yield *)
  mutable next_tid : int;
  mutable switches : int;
  mutable migrations : int;  (* slices run on a different core than the thread's last *)
  mutable steals : int;  (* slices an idle core took from another core's queue *)
  mutable slice_start : int;  (* Cost.cycles at the start of the running slice *)
  mutable running : bool;
}

let create ?ncores ?(quantum = 0) mon =
  let machine_cores = Hw.Cpu.ncores (Monitor.cpu mon) in
  let ncores = Option.value ~default:machine_cores ncores in
  if ncores < 1 || ncores > machine_cores then
    invalid_arg
      (Printf.sprintf "Sched.create: ncores %d out of range (machine has %d)" ncores
         machine_cores);
  if quantum < 0 then invalid_arg "Sched.create: negative quantum";
  {
    mon;
    queues = Array.init ncores (fun _ -> Queue.create ());
    quantum;
    next_tid = 1;
    switches = 0;
    migrations = 0;
    steals = 0;
    slice_start = 0;
    running = false;
  }

let ncores t = Array.length t.queues

let least_loaded t =
  let best = ref 0 in
  for c = 1 to ncores t - 1 do
    if Queue.length t.queues.(c) < Queue.length t.queues.(!best) then best := c
  done;
  !best

let spawn ?core t cid body =
  let core =
    match core with
    | None -> least_loaded t
    | Some c ->
        if c < 0 || c >= ncores t then
          invalid_arg (Printf.sprintf "Sched.spawn: no core %d" c);
        c
  in
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  Queue.push (Fresh { tid; cid; body; last_core = -1 }) t.queues.(core);
  tid

let current_scheduler : t option ref = ref None

let yield () =
  match !current_scheduler with
  | Some _ -> Effect.perform Yield
  | None -> invalid_arg "Sched.yield: not inside a scheduler thread"

(* Run one slice of a thread on [core] under its cubicle's PKRU; a
   Yield effect either continues in place (slice quantum not yet used
   up) or parks the continuation on the core's run queue. The
   continuation is resumed under the handler installed at the thread's
   first slice, so the quantum test reads the scheduler's slice clock
   rather than closing over a start time. *)
let slice t core runnable =
  let thread = match runnable with Fresh th | Resumed (th, _) -> th in
  t.switches <- t.switches + 1;
  if thread.last_core >= 0 && thread.last_core <> core then
    t.migrations <- t.migrations + 1;
  thread.last_core <- core;
  let cpu = Monitor.cpu t.mon in
  if Hw.Cpu.core_id cpu <> core then Hw.Cpu.set_core cpu core;
  t.slice_start <- Hw.Cost.cycles (Monitor.cost t.mon);
  let b = Monitor.bus t.mon in
  if b.Telemetry.Bus.tracing then
    Telemetry.Bus.emit b (Telemetry.Event.Sched_switch { tid = thread.tid; cid = thread.cid });
  Monitor.run_as t.mon thread.cid (fun () ->
      match runnable with
      | Fresh th ->
          Effect.Deep.match_with th.body ()
            {
              retc = (fun () -> ());
              exnc = raise;
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | Yield ->
                      Some
                        (fun (k : (a, unit) Effect.Deep.continuation) ->
                          if
                            t.quantum > 0
                            && Hw.Cost.cycles (Monitor.cost t.mon) - t.slice_start
                               < t.quantum
                          then Effect.Deep.continue k ()
                          else
                            Queue.push (Resumed (th, k))
                              t.queues.(Hw.Cpu.core_id (Monitor.cpu t.mon)))
                  | _ -> None);
            }
      | Resumed (_, k) -> Effect.Deep.continue k ())

let alive t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues

(* Pick the next runnable for [core]: its own queue first, else steal
   the oldest thread from the most loaded other queue. *)
let next_runnable t core =
  let q = t.queues.(core) in
  if not (Queue.is_empty q) then Some (Queue.pop q)
  else begin
    let victim = ref (-1) in
    for c = 0 to ncores t - 1 do
      if
        c <> core
        && Queue.length t.queues.(c) > (if !victim < 0 then 0 else Queue.length t.queues.(!victim))
      then victim := c
    done;
    if !victim < 0 then None
    else begin
      t.steals <- t.steals + 1;
      Some (Queue.pop t.queues.(!victim))
    end
  end

let run t =
  if t.running then invalid_arg "Sched.run: scheduler is already running";
  t.running <- true;
  let saved = !current_scheduler in
  let cpu = Monitor.cpu t.mon in
  let entry_core = Hw.Cpu.core_id cpu in
  current_scheduler := Some t;
  Fun.protect
    ~finally:(fun () ->
      current_scheduler := saved;
      t.running <- false;
      if Hw.Cpu.core_id cpu <> entry_core then Hw.Cpu.set_core cpu entry_core)
    (fun () ->
      (* The cores take turns: one slice per core per round. Work
         stealing keeps an idle core busy the moment any queue has a
         backlog, which is what flattens the makespan (max per-core
         cycles) and yields the scaling curve. *)
      while alive t > 0 do
        for core = 0 to ncores t - 1 do
          match next_runnable t core with
          | Some r -> slice t core r
          | None -> ()
        done
      done)

let context_switches t = t.switches
let migrations t = t.migrations
let steals t = t.steals
