open Cubicle

type _ Effect.t += Yield : unit Effect.t

type tid = int

type thread = {
  tid : tid;
  cid : Types.cid;
  body : unit -> unit;  (* used only for the first slice *)
}

type runnable =
  | Fresh of thread
  | Resumed of thread * (unit, unit) Effect.Deep.continuation

type t = {
  mon : Monitor.t;
  queue : runnable Queue.t;
  mutable next_tid : int;
  mutable switches : int;
  mutable running : bool;
}

let create mon =
  { mon; queue = Queue.create (); next_tid = 1; switches = 0; running = false }

let spawn t cid body =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  Queue.push (Fresh { tid; cid; body }) t.queue;
  tid

let current_scheduler : t option ref = ref None

let yield () =
  match !current_scheduler with
  | Some _ -> Effect.perform Yield
  | None -> invalid_arg "Sched.yield: not inside a scheduler thread"

(* Run one slice of a thread under its cubicle's PKRU; a Yield effect
   parks the continuation back on the queue. *)
let slice t runnable =
  let thread = match runnable with Fresh th | Resumed (th, _) -> th in
  t.switches <- t.switches + 1;
  let b = Monitor.bus t.mon in
  if b.Telemetry.Bus.tracing then
    Telemetry.Bus.emit b (Telemetry.Event.Sched_switch { tid = thread.tid; cid = thread.cid });
  Monitor.run_as t.mon thread.cid (fun () ->
      match runnable with
      | Fresh th ->
          Effect.Deep.match_with th.body ()
            {
              retc = (fun () -> ());
              exnc = raise;
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | Yield ->
                      Some
                        (fun (k : (a, unit) Effect.Deep.continuation) ->
                          Queue.push (Resumed (th, k)) t.queue)
                  | _ -> None);
            }
      | Resumed (_, k) -> Effect.Deep.continue k ())

let run t =
  if t.running then invalid_arg "Sched.run: scheduler is already running";
  t.running <- true;
  let saved = !current_scheduler in
  current_scheduler := Some t;
  Fun.protect
    ~finally:(fun () ->
      current_scheduler := saved;
      t.running <- false)
    (fun () ->
      while not (Queue.is_empty t.queue) do
        slice t (Queue.pop t.queue)
      done)

let alive t = Queue.length t.queue
let context_switches t = t.switches
