(** The RAMFS component: an in-memory file system backend.

    File contents live in page-sized chunks owned by the RAMFS cubicle
    (allocated through the system-wide ALLOC component — coarse-grained
    allocations, as in the paper's SQLite deployment). Data moves
    between caller buffers and chunks via the shared-cubicle [memcpy],
    which executes with RAMFS's privileges, so reads/writes of caller
    buffers are authorised by the caller's open windows, and first
    touches of each page go through trap-and-map. *)

type state

val make : ?sendfile:bool -> unit -> state * Cubicle.Builder.component
(** Exports (the fs_ops callback table registered with VFSCORE):
    [ramfs_lookup], [ramfs_create], [ramfs_pread], [ramfs_pwrite],
    [ramfs_size], [ramfs_truncate], [ramfs_fsync], [ramfs_unlink],
    [ramfs_rename].

    [sendfile] (default false) additionally exports
    [ramfs_sendfile(iodesc, conn)]: the zero-copy fast path that grants
    the file's chunk pages to LWIP through a standing window (batched
    adds, one monitor crossing per span) and streams them with
    [lwip_send_zc], which forwards the grant to NETDEV. Only enable on
    stacks that load the network components — the interface summary
    names LWIP/NETDEV and [lwip_send_zc]. *)

val file_count : state -> int
val total_bytes : state -> int
