open Cubicle

let now_ns_fn (ctx : Monitor.ctx) _ =
  let cycles = Hw.Cost.cycles (Monitor.cost ctx.mon) in
  (* 2.2 GHz: 10 ns per 22 cycles. *)
  cycles * 10 / 22

let now_cycles_fn (ctx : Monitor.ctx) _ = Hw.Cost.cycles (Monitor.cost ctx.mon)

let component () =
  Builder.component "TIME" ~code_ops:128 ~heap_pages:1 ~stack_pages:1
    ~iface:[ Iface.fundecl "uk_time_ns" []; Iface.fundecl "uk_time_cycles" [] ]
    ~exports:
      [
        { Monitor.sym = "uk_time_ns"; fn = now_ns_fn; stack_bytes = 0 };
        { Monitor.sym = "uk_time_cycles"; fn = now_cycles_fn; stack_bytes = 0 };
      ]
