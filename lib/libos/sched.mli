(** UKSCHED: the cubicle thread scheduler.

    Threads are multiplexed onto the machine's simulated cores: each
    core has its own run queue, the cores take turns running one slice
    each ([Hw.Cpu.set_core] swaps the per-core PKRU/TLB and routes
    cycle charges to that core's counter), and an idle core steals the
    oldest thread from the most loaded queue, migrating it. On a
    single-core machine this degenerates to Unikraft's model — the one
    the paper inherits (§8: "user-level threads are multiplexed onto a
    single host thread") — with strict round-robin rotation.

    Every thread belongs to a cubicle; the scheduler enters the
    thread's cubicle ({!Cubicle.Monitor.run_as}) around every slice, so
    each user-level thread runs under its own PKRU view — the
    per-thread access permissions MPK provides (§2.2). Yielding
    suspends the thread via an OCaml effect; whether a yield actually
    rotates is governed by the slice quantum. *)

type t
type tid = int

val create : ?ncores:int -> ?quantum:int -> Cubicle.Monitor.t -> t
(** [ncores] defaults to the machine's core count ([Hw.Cpu.ncores]) and
    may not exceed it. [quantum] is the minimum number of simulated
    cycles a slice keeps its core: yields before the quantum is used up
    continue in place, the first yield past it rotates. The default 0
    rotates on {e every} yield (exact round-robin — the pre-SMP
    behaviour). Preemption happens at yield points: a thread that never
    yields keeps its core, as under any cooperative model. *)

val ncores : t -> int

val spawn : ?core:int -> t -> Cubicle.Types.cid -> (unit -> unit) -> tid
(** Queue a thread that will run inside the given cubicle, on [core]'s
    run queue (default: the least-loaded core). The placement is only
    initial — an idle core may steal the thread before its first
    slice. *)

val yield : unit -> unit
(** Inside a thread: offer up the processor. Calling it outside a
    scheduler thread raises [Invalid_argument]. *)

val run : t -> unit
(** Run until every thread has finished. A thread that raises stops the
    scheduler with its exception after the remaining threads are
    parked back in their queues; the machine is switched back to the
    core it entered on. *)

val alive : t -> int
(** Threads not yet finished, across all run queues. *)

val context_switches : t -> int

val migrations : t -> int
(** Slices that ran on a different core than the thread's previous
    slice. *)

val steals : t -> int
(** Times an idle core took a thread from another core's queue. *)
