(** Application-side file I/O wrappers with window management.

    This module is the analogue of the paper's porting effort (the
    ~400–600 SLOC added to NGINX and SQLite): each VFS call is wrapped
    so that path strings and data buffers are placed in windows opened
    for VFSCORE {e and} the file system backend before the call —
    windows must be opened by the owner for all cubicles in a nested
    call chain ahead of time (paper §5.6) — and closed after it. *)

type t

val make : Cubicle.Monitor.ctx -> t
(** Resolves the VFSCORE and backend cubicle ids, allocates a
    page-aligned path staging buffer in the caller's heap and a
    reusable data window. *)

val ctx : t -> Cubicle.Monitor.ctx

val with_window :
  ?perm:Cubicle.Window.perm -> t -> ptr:int -> size:int -> (unit -> 'a) -> 'a
(** Expose a caller-owned heap buffer to VFSCORE and the backend for
    the duration of [f] (open … call … close, as in Figure 2). [perm]
    defaults to [RW] (what {!pread} needs — the backend fills the
    buffer); {!pwrite} narrows it to [R]. *)

val open_file : t -> string -> create:bool -> int
val close_file : t -> int -> int
val pread : t -> fd:int -> buf:int -> len:int -> off:int -> int
(** [buf] must be a heap buffer owned by the calling cubicle; the
    window is managed internally. *)

val pwrite : t -> fd:int -> buf:int -> len:int -> off:int -> int

val sendfile : t -> fd:int -> conn:int -> len:int -> off:int -> int
(** Zero-copy [vfs_sendfile]: stream [len] bytes of the file at [off]
    to LWIP connection [conn] without staging them in a caller buffer
    (requires a stack booted with the sendfile path, e.g.
    {!Boot.net_stack}). Returns the byte count sent or a negative
    errno. *)

val file_size : t -> int -> int
val truncate : t -> fd:int -> size:int -> int
val fsync : t -> int -> int
val unlink : t -> string -> int
val exists : t -> string -> bool
val rename : t -> old_name:string -> new_name:string -> int

val write_file : t -> string -> string -> unit
(** Create/overwrite a whole file from a host string (staged through a
    caller-owned bounce buffer). Raises {!Cubicle.Types.Error} on
    failure. *)

val read_file : t -> string -> string
(** Read a whole file into a host string. *)
