open Cubicle

let memcpy_fn ctx (args : int array) =
  Api.memcpy ctx ~dst:args.(0) ~src:args.(1) ~len:args.(2);
  args.(0)

let memset_fn ctx (args : int array) =
  Api.memset ctx args.(0) args.(1) (Char.chr (args.(2) land 0xFF));
  args.(0)

let memcmp_fn ctx (args : int array) =
  let a = Api.read_bytes ctx args.(0) args.(2) in
  let b = Api.read_bytes ctx args.(1) args.(2) in
  compare a b

let strnlen_fn ctx (args : int array) =
  let p = args.(0) and maxlen = args.(1) in
  let rec scan i = if i >= maxlen || Api.read_u8 ctx (p + i) = 0 then i else scan (i + 1) in
  scan 0

(* CubiCheck summaries: shared code runs with the caller's privileges,
   so the declared dereferences are attributed to whichever component
   forwards a pointer here. *)
let iface =
  [
    Iface.fundecl ~derefs:[ 0; 1 ] ~writes:[ 0 ] "memcpy" [];
    Iface.fundecl ~derefs:[ 0 ] ~writes:[ 0 ] "memset" [];
    Iface.fundecl ~derefs:[ 0; 1 ] "memcmp" [];
    Iface.fundecl ~derefs:[ 0 ] "strnlen" [];
  ]

let component () =
  Builder.component "LIBC" ~code_ops:512 ~heap_pages:2 ~stack_pages:0 ~iface
    ~exports:
      [
        { Monitor.sym = "memcpy"; fn = memcpy_fn; stack_bytes = 0 };
        { Monitor.sym = "memset"; fn = memset_fn; stack_bytes = 0 };
        { Monitor.sym = "memcmp"; fn = memcmp_fn; stack_bytes = 0 };
        { Monitor.sym = "strnlen"; fn = strnlen_fn; stack_bytes = 0 };
      ]
