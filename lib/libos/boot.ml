open Cubicle

type system = {
  mon : Monitor.t;
  built : Builder.built;
  plat : Plat.state;
  ramfs : Ramfs.state;
  netdev : Netdev.state option;
  lwip : Lwip.state option;
  blkdev : Blkdev.state option;
  fatfs : Fatfs.state option;
}

let base_components ~merge_fs ?(sendfile = false) () =
  let plat_state, plat = Plat.make () in
  let ramfs_state, ramfs = Ramfs.make ~sendfile () in
  let vfs = Vfscore.component ~sendfile () in
  let fs_comps =
    if merge_fs then
      (* Figure 9a: the virtual file system module with the built-in
         RAMFS driver — one cubicle. The merged cubicle keeps the name
         VFSCORE so applications resolve it unchanged. *)
      [ (Builder.merge "VFSCORE" [ vfs; ramfs ], Types.Isolated) ]
    else [ (vfs, Types.Isolated); (ramfs, Types.Isolated) ]
  in
  let comps =
    [
      (Libc.component (), Types.Shared);
      (plat, Types.Isolated);
      (Time_comp.component (), Types.Isolated);
      (Alloc_comp.component (), Types.Isolated);
    ]
    @ fs_comps
  in
  (plat_state, ramfs_state, comps)

let fs_stack ?(protection = Types.Full) ?policy ?virtualise ?(merge_fs = false)
    ?(mem_bytes = 64 * 1024 * 1024) ?(extra = []) () =
  let mon = Monitor.create ~mem_bytes ?policy ?virtualise ~protection () in
  let plat_state, ramfs_state, comps = base_components ~merge_fs () in
  let built = Builder.build mon (comps @ extra) in
  {
    mon;
    built;
    plat = plat_state;
    ramfs = ramfs_state;
    netdev = None;
    lwip = None;
    blkdev = None;
    fatfs = None;
  }

let net_stack ?(protection = Types.Full) ?policy ?virtualise ?ncores ?(nrings = 1)
    ?(mem_bytes = 128 * 1024 * 1024) ?(extra = []) () =
  let mon = Monitor.create ~mem_bytes ?ncores ?policy ?virtualise ~protection () in
  (* network stacks always carry the zero-copy sendfile path: the
     fs-side summaries it adds name LWIP/NETDEV, which exist here *)
  let plat_state, ramfs_state, comps = base_components ~merge_fs:false ~sendfile:true () in
  let netdev_state, netdev = Netdev.make ~nrings () in
  let lwip_state, lwip = Lwip.make ~nshards:nrings () in
  let built =
    Builder.build mon (comps @ [ (netdev, Types.Isolated); (lwip, Types.Isolated) ] @ extra)
  in
  {
    mon;
    built;
    plat = plat_state;
    ramfs = ramfs_state;
    netdev = Some netdev_state;
    lwip = Some lwip_state;
    blkdev = None;
    fatfs = None;
  }

(* A persistent-disk deployment: UKFAT over BLKDEV replaces RAMFS as
   the VFS backend (backend tag 2). Re-attaching the same disk to a new
   system finds the files again. *)
let fat_stack ?(protection = Types.Full) ?policy ?(mem_bytes = 64 * 1024 * 1024)
    ?(extra = []) ~disk () =
  let mon = Monitor.create ~mem_bytes ?policy ~protection () in
  let plat_state, plat = Plat.make () in
  let ramfs_state, _unused_ramfs = Ramfs.make () in
  let blk_state, blk = Blkdev.make disk in
  let fat_state, fat = Fatfs.make () in
  let comps =
    [
      (Libc.component (), Types.Shared);
      (plat, Types.Isolated);
      (Time_comp.component (), Types.Isolated);
      (Alloc_comp.component (), Types.Isolated);
      (Vfscore.component ~backend:"fatfs" (), Types.Isolated);
      (blk, Types.Isolated);
      (fat, Types.Isolated);
    ]
  in
  let built = Builder.build mon (comps @ extra) in
  {
    mon;
    built;
    plat = plat_state;
    ramfs = ramfs_state;
    netdev = None;
    lwip = None;
    blkdev = Some blk_state;
    fatfs = Some fat_state;
  }

let app_ctx sys name = Monitor.ctx_for sys.mon (Builder.cid sys.built name)

let populate sys ~as_app files =
  let fio = Fileio.make (app_ctx sys as_app) in
  List.iter (fun (name, contents) -> Fileio.write_file fio name contents) files
