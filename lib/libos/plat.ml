open Cubicle

type state = {
  console : Buffer.t;
  echo : bool;
  mutable rand_state : int;
  mutable halted : bool;
}

let putc_fn state _ctx (args : int array) =
  let c = Char.chr (args.(0) land 0xFF) in
  Buffer.add_char state.console c;
  if state.echo then print_char c;
  0

let rand_fn state _ctx _ =
  (* xorshift: deterministic so benchmark runs are reproducible *)
  let x = state.rand_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  state.rand_state <- x land max_int;
  state.rand_state land 0x3FFFFFFF

let halt_fn state _ctx _ =
  state.halted <- true;
  0

let make ?(echo = false) () =
  let state = { console = Buffer.create 256; echo; rand_state = 0x2545F491; halted = false } in
  let comp =
    Builder.component "PLAT" ~code_ops:512 ~heap_pages:2 ~stack_pages:2
      ~iface:
        [
          Iface.fundecl "plat_putc" [];
          Iface.fundecl "plat_rand" [];
          Iface.fundecl "plat_halt" [];
        ]
      ~exports:
        [
          { Monitor.sym = "plat_putc"; fn = putc_fn state; stack_bytes = 0 };
          { Monitor.sym = "plat_rand"; fn = rand_fn state; stack_bytes = 0 };
          { Monitor.sym = "plat_halt"; fn = halt_fn state; stack_bytes = 0 };
        ]
  in
  (state, comp)

let console_contents state = Buffer.contents state.console
let clear_console state = Buffer.clear state.console
let halted state = state.halted
