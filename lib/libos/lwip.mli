(** The LWIP component: a TCP-lite stream stack over NETDEV.

    Connections carry ordered byte streams segmented into MSS-sized
    frames. Per-segment buffers (pbufs) are allocated page-granular
    from the system-wide ALLOC (the paper's Figure 5 shows LWIP as the
    heaviest ALLOC client), windowed to NETDEV for the device copy, and
    freed after use — so in full-protection deployments every segment
    pays allocation, window management and trap-and-map costs, which is
    where NGINX's 2x large-transfer overhead comes from.

    Transfers beyond the 64 KiB send buffer charge an ack round trip
    ({!Sysdefs.rtt_stall_cycles}), bending the latency curve after
    64 kB exactly as the paper's Figure 7 describes. *)

type state

val make : ?nshards:int -> unit -> state * Cubicle.Builder.component
(** Exports: [lwip_listen(port)], [lwip_accept(shard?)] → conn id or
    -EAGAIN, [lwip_recv(conn,buf,maxlen)] → n (0 = nothing pending,
    -EBADF on closed+drained), [lwip_send(conn,buf,len)] → n,
    [lwip_close(conn)].

    [nshards] (default 1) gives the stack that many independent accept
    shards, SO_REUSEPORT style: shard [s] drives NETDEV ring [s]
    through its own staging page and keeps its own accept backlog, so N
    SMP httpd workers can pump frames concurrently. A connection
    belongs to shard [conn mod nshards] (RSS by connection id — the
    host bridge must steer frames accordingly); [lwip_accept]'s
    optional argument selects the shard to pump and pop (default 0). *)

val nshards : state -> int

(** {1 Host-side frame protocol (used by test clients / siege)} *)

module Frame : sig
  type kind = Syn | Data | Fin

  val encode : ?seq:int -> conn:int -> kind:kind -> payload:string -> unit -> bytes
  (** Data frames carry a per-connection sequence number; the stack
      delivers segments to the stream strictly in order, parking
      out-of-order arrivals. *)

  val decode : bytes -> int * kind * int * string
  (** (connection, kind, sequence, payload); raises [Invalid_argument]
      on malformed frames. *)
end

(** Host-side in-order reassembly of sequenced data frames (used by
    test clients and siege). *)
module Reassembly : sig
  type t

  val create : unit -> t
  val push : t -> seq:int -> string -> unit
  val pop_ready : t -> string
  (** The consecutive bytes accumulated so far (consumed). *)

  val pending : t -> int
  (** Frames parked waiting for a gap to fill. *)
end

val connections : state -> int
