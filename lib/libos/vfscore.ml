open Cubicle

type backend = { prefix : string; cid : Types.cid }

type open_file = { ino : int }

type state = {
  mutable backend : backend option;
  fds : (int, open_file) Hashtbl.t;
  mutable next_fd : int;
  mutable free_fds : int list;  (* closed fds, reused before next_fd grows *)
  mutable path_buf : int;  (* two half-page staging slots *)
  mutable path_wid : Types.wid;
}

let backend_exn state =
  match state.backend with
  | Some b -> b
  | None -> Types.error "vfscore: no file system backend registered"

(* Copy a path from the caller's memory into one of VFSCORE's staging
   slots (slot 0 or 1), returning its address. The staging page is
   permanently windowed to the backend. *)
let stage_path state ctx ~slot ~ptr ~len =
  if len <= 0 || len > 2040 then Types.error "vfscore: bad path length %d" len;
  let dst = state.path_buf + (slot * 2048) in
  Api.memcpy ctx ~dst ~src:ptr ~len;
  dst

let bsym state suffix = (backend_exn state).prefix ^ "_" ^ suffix

(* The linuxu-platform inefficiency of the library OS (paper Fig. 10a:
   Unikraft alone is ~2.8x slower than native Linux): every VFS
   operation crosses the user-level platform layer. Applies to all
   Unikraft-based configurations, including CubicleOS. *)
let charge_platform (ctx : Monitor.ctx) =
  Hw.Cost.charge (Monitor.cost ctx.mon) (Monitor.cost ctx.mon).model.unikraft_op

let wrap fn state ctx args =
  charge_platform ctx;
  fn state ctx args

let register_backend_fn state ctx (args : int array) =
  let prefix =
    match args.(0) with
    | 1 -> "ramfs"
    | 2 -> "fatfs"
    | tag -> Types.error "vfscore: unknown backend tag %d" tag
  in
  state.backend <- Some { prefix; cid = ctx.Monitor.caller };
  (* Grant the backend standing access to the path staging buffer —
     unless it lives in this very cubicle (merged deployments). *)
  if ctx.Monitor.caller <> ctx.Monitor.self then
    Api.window_open ctx state.path_wid ctx.Monitor.caller;
  Sysdefs.ok

let backend_cid_fn state _ctx _ = (backend_exn state).cid

let lookup state ctx ~ptr ~len =
  let path = stage_path state ctx ~slot:0 ~ptr ~len in
  Api.call ctx (bsym state "lookup") [| path; len |]

let open_fn state ctx (args : int array) =
  let ptr = args.(0) and len = args.(1) and flags = args.(2) in
  let ino = lookup state ctx ~ptr ~len in
  let ino =
    if ino >= 0 then ino
    else if flags land 1 = 1 then
      let path = stage_path state ctx ~slot:0 ~ptr ~len in
      Api.call ctx (bsym state "create") [| path; len |]
    else Sysdefs.enoent
  in
  if ino < 0 then ino
  else begin
    (* reuse a recycled fd number before growing the table: a soak run
       of open/close cycles must not exhaust the fd-number space *)
    let fd =
      match state.free_fds with
      | fd :: rest ->
          state.free_fds <- rest;
          fd
      | [] ->
          let fd = state.next_fd in
          state.next_fd <- state.next_fd + 1;
          fd
    in
    Hashtbl.replace state.fds fd { ino };
    fd
  end

let with_fd state fd f =
  match Hashtbl.find_opt state.fds fd with None -> Sysdefs.ebadf | Some o -> f o

let close_fn state _ctx (args : int array) =
  if Hashtbl.mem state.fds args.(0) then begin
    Hashtbl.remove state.fds args.(0);
    state.free_fds <- args.(0) :: state.free_fds;
    Sysdefs.ok
  end
  else Sysdefs.ebadf

(* Data operations hand the backend an io descriptor (struct uio style,
   as Unikraft's vfscore does) through the staging window; the data
   buffer itself is passed through zero-copy. *)
let stage_iodesc state ctx ~ino ~len ~off =
  let desc = state.path_buf + 1024 in
  Api.write_u32 ctx desc ino;
  Api.write_u32 ctx (desc + 4) len;
  Api.write_i64 ctx (desc + 8) (Int64.of_int off);
  desc

let pread_fn state ctx (args : int array) =
  with_fd state args.(0) (fun o ->
      let desc = stage_iodesc state ctx ~ino:o.ino ~len:args.(2) ~off:args.(3) in
      Api.call ctx (bsym state "pread") [| desc; args.(1) |])

(* sendfile(fd, conn, len, off): stage the iodesc exactly like pread,
   but the data never comes back — the backend grants the backing pages
   to the network stack and streams them out (zero-copy fast path). *)
let sendfile_fn state ctx (args : int array) =
  with_fd state args.(0) (fun o ->
      let desc = stage_iodesc state ctx ~ino:o.ino ~len:args.(2) ~off:args.(3) in
      Api.call ctx (bsym state "sendfile") [| desc; args.(1) |])

let pwrite_fn state ctx (args : int array) =
  with_fd state args.(0) (fun o ->
      let desc = stage_iodesc state ctx ~ino:o.ino ~len:args.(2) ~off:args.(3) in
      Api.call ctx (bsym state "pwrite") [| desc; args.(1) |])

let size_fn state ctx (args : int array) =
  with_fd state args.(0) (fun o -> Api.call ctx (bsym state "size") [| o.ino |])

let truncate_fn state ctx (args : int array) =
  with_fd state args.(0) (fun o ->
      Api.call ctx (bsym state "truncate") [| o.ino; args.(1) |])

let fsync_fn state ctx (args : int array) =
  with_fd state args.(0) (fun o -> Api.call ctx (bsym state "fsync") [| o.ino |])

let unlink_fn state ctx (args : int array) =
  let path = stage_path state ctx ~slot:0 ~ptr:args.(0) ~len:args.(1) in
  Api.call ctx (bsym state "unlink") [| path; args.(1) |]

let exists_fn state ctx (args : int array) =
  if lookup state ctx ~ptr:args.(0) ~len:args.(1) >= 0 then 1 else 0

let rename_fn state ctx (args : int array) =
  let old_path = stage_path state ctx ~slot:0 ~ptr:args.(0) ~len:args.(1) in
  let new_path = stage_path state ctx ~slot:1 ~ptr:args.(2) ~len:args.(3) in
  Api.call ctx (bsym state "rename") [| old_path; args.(1); new_path; args.(3) |]

let init state ctx =
  state.path_buf <- Api.malloc_page_aligned ctx 4096;
  state.path_wid <- Api.window_init ctx ~klass:Mm.Page_meta.Heap;
  (* read-only standing grant: VFSCORE fills its own staging slots; the
     backend only ever reads paths and io descriptors through them *)
  Api.window_add ctx ~perm:Window.R state.path_wid ~ptr:state.path_buf ~size:4096

(* CubiCheck summary. The backend is registered at runtime, so the
   callee prefix is a parameter ([ramfs] by default, [fatfs] for the
   persistent-disk stack); the registration-time [window_open] to the
   dynamic backend caller is modelled as an init-time open to peer "*"
   (documented soundness caveat: the summary cannot name a cubicle that
   only exists at runtime). *)
let iface ~backend ~sendfile =
  let b s = backend ^ "_" ^ s in
  let staged ~arg ~bytes = (arg, Iface.Local "path_staging", bytes) in
  (if not sendfile then []
   else
     [
       (* the iodesc goes through the staging window; no data buffer
          crosses here at all (the backend grants its own pages) *)
       Iface.fundecl "vfs_sendfile"
         [ Iface.Call { sym = b "sendfile"; ptr_args = [ staged ~arg:0 ~bytes:1040 ] } ];
     ])
  @ [
    Iface.fundecl "__init"
      [
        Iface.Alloc { buf = "path_staging"; bytes = 4096 };
        Iface.Window_add
          {
            win = "path_wid";
            buf = Iface.Local "path_staging";
            bytes = 4096;
            standing = true;
            rw = false;
          };
        Iface.Window_open { win = "path_wid"; peer = "*" };
      ];
    Iface.fundecl "vfs_register_backend" [];
    Iface.fundecl "vfs_backend_cid" [];
    Iface.fundecl ~derefs:[ 0 ] "vfs_open"
      [
        Iface.Call { sym = b "lookup"; ptr_args = [ staged ~arg:0 ~bytes:2048 ] };
        Iface.Branch
          [ [ Iface.Call { sym = b "create"; ptr_args = [ staged ~arg:0 ~bytes:2048 ] } ]; [] ];
      ];
    Iface.fundecl "vfs_close" [];
    (* data ops: the io descriptor goes through the staging window, the
       data buffer is forwarded zero-copy (arg 1 of the backend call) *)
    Iface.fundecl "vfs_pread"
      [
        Iface.Call
          { sym = b "pread"; ptr_args = [ staged ~arg:0 ~bytes:1040; (1, Iface.Param 1, 0) ] };
      ];
    Iface.fundecl "vfs_pwrite"
      [
        Iface.Call
          { sym = b "pwrite"; ptr_args = [ staged ~arg:0 ~bytes:1040; (1, Iface.Param 1, 0) ] };
      ];
    Iface.fundecl "vfs_size" [ Iface.Call { sym = b "size"; ptr_args = [] } ];
    Iface.fundecl "vfs_truncate" [ Iface.Call { sym = b "truncate"; ptr_args = [] } ];
    Iface.fundecl "vfs_fsync" [ Iface.Call { sym = b "fsync"; ptr_args = [] } ];
    Iface.fundecl ~derefs:[ 0 ] "vfs_unlink"
      [ Iface.Call { sym = b "unlink"; ptr_args = [ staged ~arg:0 ~bytes:2048 ] } ];
    Iface.fundecl ~derefs:[ 0 ] "vfs_exists"
      [ Iface.Call { sym = b "lookup"; ptr_args = [ staged ~arg:0 ~bytes:2048 ] } ];
    Iface.fundecl ~derefs:[ 0; 2 ] "vfs_rename"
      [
        Iface.Call
          {
            sym = b "rename";
            ptr_args = [ staged ~arg:0 ~bytes:2048; staged ~arg:2 ~bytes:4096 ];
          };
      ];
  ]

let component ?(backend = "ramfs") ?(sendfile = false) () =
  let state =
    {
      backend = None;
      fds = Hashtbl.create 32;
      next_fd = 3;
      free_fds = [];
      path_buf = 0;
      path_wid = 0;
    }
  in
  Builder.component "VFSCORE" ~code_ops:1024 ~heap_pages:8 ~stack_pages:4
    ~init:(init state) ~iface:(iface ~backend ~sendfile)
    ~exports:
      ((if not sendfile then []
        else [ { Monitor.sym = "vfs_sendfile"; fn = wrap sendfile_fn state; stack_bytes = 0 } ])
      @ [
        { Monitor.sym = "vfs_register_backend"; fn = register_backend_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_backend_cid"; fn = backend_cid_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_open"; fn = wrap open_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_close"; fn = wrap close_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_pread"; fn = wrap pread_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_pwrite"; fn = wrap pwrite_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_size"; fn = wrap size_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_truncate"; fn = wrap truncate_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_fsync"; fn = wrap fsync_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_unlink"; fn = wrap unlink_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_exists"; fn = wrap exists_fn state; stack_bytes = 0 };
        { Monitor.sym = "vfs_rename"; fn = wrap rename_fn state; stack_bytes = 16 };
      ])
