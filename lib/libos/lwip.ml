open Cubicle

module Frame = struct
  type kind = Syn | Data | Fin

  let kind_to_int = function Syn -> 0 | Data -> 1 | Fin -> 2
  let kind_of_int = function
    | 0 -> Syn
    | 1 -> Data
    | 2 -> Fin
    | n -> invalid_arg (Printf.sprintf "Lwip.Frame: bad kind %d" n)

  let encode ?(seq = 0) ~conn ~kind ~payload () =
    let n = String.length payload in
    if n > Sysdefs.mss then invalid_arg "Lwip.Frame.encode: payload exceeds MSS";
    let b = Bytes.create (Sysdefs.frame_header + n) in
    Bytes.set_int32_le b 0 (Int32.of_int conn);
    Bytes.set_uint8 b 4 (kind_to_int kind);
    Bytes.set_int32_le b 5 (Int32.of_int seq);
    Bytes.set_uint16_le b 9 n;
    Bytes.blit_string payload 0 b Sysdefs.frame_header n;
    b

  let decode b =
    if Bytes.length b < Sysdefs.frame_header then invalid_arg "Lwip.Frame: short frame";
    let conn = Int32.to_int (Bytes.get_int32_le b 0) in
    let kind = kind_of_int (Bytes.get_uint8 b 4) in
    let seq = Int32.to_int (Bytes.get_int32_le b 5) in
    let len = Bytes.get_uint16_le b 9 in
    if Bytes.length b <> Sysdefs.frame_header + len then
      invalid_arg "Lwip.Frame: length mismatch";
    (conn, kind, seq, Bytes.sub_string b Sysdefs.frame_header len)
end

(* Host-side in-order reassembly of sequenced data frames. *)
module Reassembly = struct
  type t = { parked : (int, string) Hashtbl.t; mutable next_seq : int; ready : Buffer.t }

  let create () = { parked = Hashtbl.create 8; next_seq = 0; ready = Buffer.create 256 }

  let push t ~seq payload =
    if seq >= t.next_seq then Hashtbl.replace t.parked seq payload;
    let rec drain () =
      match Hashtbl.find_opt t.parked t.next_seq with
      | Some p ->
          Buffer.add_string t.ready p;
          Hashtbl.remove t.parked t.next_seq;
          t.next_seq <- t.next_seq + 1;
          drain ()
      | None -> ()
    in
    drain ()

  let pop_ready t =
    let s = Buffer.contents t.ready in
    Buffer.clear t.ready;
    s

  let pending t = Hashtbl.length t.parked
end

(* A received segment held in an LWIP-owned pbuf page. *)
type segment = { pbuf : int; mutable off : int; mutable len : int }

type conn = {
  id : int;
  mutable rx : segment Queue.t;
  parked : (int, segment) Hashtbl.t;  (* out-of-order segments by seq *)
  mutable next_rx_seq : int;
  mutable next_tx_seq : int;
  mutable fin_seen : bool;
  mutable closed : bool;
  mutable unacked : int;  (* bytes sent since the last modelled ack *)
}

(* The stack can run [nshards] independent accept shards (SO_REUSEPORT
   style): each shard drives its own NETDEV ring through its own
   staging page and keeps its own accept backlog, so N httpd workers
   can pump frames concurrently without sharing any LWIP buffer. A
   connection's shard is [conn_id mod nshards] — the host bridge
   steers frames accordingly (RSS by connection id). *)
type state = {
  nshards : int;
  mutable listening : bool;
  conns : (int, conn) Hashtbl.t;
  pending_accept : int Queue.t array;  (* one backlog per shard *)
  mutable netdev_cid : Types.cid;
  rx_staging : int array;  (* per-shard page for incoming frames, windowed to NETDEV *)
  staging_wids : Types.wid array;
  (* (owner, wid) pairs already forwarded to NETDEV on the zero-copy
     send path; wids are never reused, so one forward per grant window
     is enough for the lifetime of the stack *)
  forwarded : (Types.cid * Types.wid, unit) Hashtbl.t;
}

let nshards state = state.nshards
let shard_of_conn state conn_id = conn_id mod state.nshards

(* Pull every pending frame out of one NETDEV ring into per-connection
   segment queues. Runs inside accept/recv/send, like lwIP's input
   pump. *)
let pump state ctx shard =
  let staging = state.rx_staging.(shard) in
  let rec loop () =
    let n = Api.call ctx "netdev_rx" [| staging; Sysdefs.mtu; shard |] in
    if n > 0 then begin
      let conn_id = Api.read_u32 ctx staging in
      let kind = Api.read_u8 ctx (staging + 4) in
      let seq = Api.read_u32 ctx (staging + 5) in
      let len = Api.read_u16 ctx (staging + 9) in
      (match kind with
      | 0 (* syn *) ->
          if state.listening && not (Hashtbl.mem state.conns conn_id) then begin
            Hashtbl.replace state.conns conn_id
              {
                id = conn_id;
                rx = Queue.create ();
                parked = Hashtbl.create 8;
                next_rx_seq = 0;
                next_tx_seq = 0;
                fin_seen = false;
                closed = false;
                unacked = 0;
              };
            Queue.push conn_id state.pending_accept.(shard)
          end
      | 1 (* data *) -> (
          match Hashtbl.find_opt state.conns conn_id with
          | None -> ()
          | Some c ->
              (* copy payload into a fresh pbuf from ALLOC; deliver
                 segments to the stream strictly in sequence order,
                 parking anything that arrived early *)
              if seq >= c.next_rx_seq && not (Hashtbl.mem c.parked seq) then begin
                let pbuf = Api.call ctx "uk_palloc" [| 1 |] in
                ignore
                  (Api.call ctx "memcpy" [| pbuf; staging + Sysdefs.frame_header; len |]);
                Hashtbl.replace c.parked seq { pbuf; off = 0; len };
                let rec deliver () =
                  match Hashtbl.find_opt c.parked c.next_rx_seq with
                  | Some seg ->
                      Hashtbl.remove c.parked c.next_rx_seq;
                      c.next_rx_seq <- c.next_rx_seq + 1;
                      Queue.push seg c.rx;
                      deliver ()
                  | None -> ()
                in
                deliver ()
              end)
      | 2 (* fin *) -> (
          match Hashtbl.find_opt state.conns conn_id with
          | None -> ()
          | Some c -> c.fin_seen <- true)
      | _ -> ());
      loop ()
    end
  in
  loop ()

let listen_fn state _ctx (_args : int array) =
  state.listening <- true;
  Sysdefs.ok

(* [lwip_accept(shard?)]: pump that shard's ring and pop its backlog;
   the shard argument defaults to 0, so single-shard callers are
   unchanged. *)
let accept_fn state ctx (args : int array) =
  let shard = if Array.length args > 0 then args.(0) else 0 in
  if shard < 0 || shard >= state.nshards then Sysdefs.einval
  else begin
    pump state ctx shard;
    if Queue.is_empty state.pending_accept.(shard) then Sysdefs.eagain
    else Queue.pop state.pending_accept.(shard)
  end

let recv_fn state ctx (args : int array) =
  let conn_id = args.(0) and buf = args.(1) and maxlen = args.(2) in
  pump state ctx (shard_of_conn state conn_id);
  match Hashtbl.find_opt state.conns conn_id with
  | None -> Sysdefs.ebadf
  | Some c ->
      if Queue.is_empty c.rx then if c.fin_seen then Sysdefs.ebadf else 0
      else begin
        let seg = Queue.peek c.rx in
        let n = min maxlen seg.len in
        ignore (Api.call ctx "memcpy" [| buf; seg.pbuf + seg.off; n |]);
        seg.off <- seg.off + n;
        seg.len <- seg.len - n;
        if seg.len = 0 then begin
          ignore (Queue.pop c.rx);
          ignore (Api.call ctx "uk_pfree" [| seg.pbuf |])
        end;
        n
      end

(* Send one segment: pbuf from ALLOC, header + payload copy, window it
   to NETDEV, transmit on the connection's ring, tear the window down,
   free the pbuf. *)
let send_segment state ctx ~conn_id ~seq ~src ~len =
  let pbuf = Api.call ctx "uk_palloc" [| 1 |] in
  Api.write_u32 ctx pbuf conn_id;
  Api.write_u8 ctx (pbuf + 4) 1;
  Api.write_u32 ctx (pbuf + 5) seq;
  Api.write_u16 ctx (pbuf + 9) len;
  ignore (Api.call ctx "memcpy" [| pbuf + Sysdefs.frame_header; src; len |]);
  let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
  (* NETDEV only reads the pbuf on its way to the wire *)
  Api.window_add ctx ~perm:Window.R wid ~ptr:pbuf ~size:Hw.Addr.page_size;
  Api.window_open ctx wid state.netdev_cid;
  let r =
    Api.call ctx "netdev_tx"
      [| pbuf; Sysdefs.frame_header + len; shard_of_conn state conn_id |]
  in
  Api.window_destroy ctx wid;
  ignore (Api.call ctx "uk_pfree" [| pbuf |]);
  r

let send_fn state ctx (args : int array) =
  let conn_id = args.(0) and buf = args.(1) and len = args.(2) in
  pump state ctx (shard_of_conn state conn_id);
  match Hashtbl.find_opt state.conns conn_id with
  | None -> Sysdefs.ebadf
  | Some c ->
      if c.closed then Sysdefs.ebadf
      else begin
        let rec loop sent =
          if sent >= len then sent
          else begin
            let n = min Sysdefs.mss (len - sent) in
            let seq = c.next_tx_seq in
            c.next_tx_seq <- seq + 1;
            (match send_segment state ctx ~conn_id ~seq ~src:(buf + sent) ~len:n with
            | r when r < 0 -> Types.error "lwip: netdev_tx failed (%d)" r
            | _ -> ());
            c.unacked <- c.unacked + n;
            if c.unacked >= Sysdefs.send_buffer then begin
              (* send buffer full: stall for the ack round trip *)
              Hw.Cost.charge (Monitor.cost ctx.Monitor.mon) Sysdefs.rtt_stall_cycles;
              c.unacked <- 0
            end;
            loop (sent + n)
          end
        in
        loop 0
      end

(* Zero-copy send: the payload stays in the caller's (file system's)
   pages, reachable through the grant window [owner_wid] the caller
   opened for LWIP. LWIP forwards that grant once to NETDEV
   (grant-and-forward, §5.6 nested chains), writes the 11-byte frame
   header into its own shard staging page — already standing-windowed
   to NETDEV — and hands NETDEV the (header, payload-span) pair to
   gather straight onto the wire. No payload byte is ever memcpy'd by
   the network stack. *)
let send_zc_fn state ctx (args : int array) =
  let conn_id = args.(0) and src = args.(1) and len = args.(2) and owner_wid = args.(3) in
  let shard = shard_of_conn state conn_id in
  pump state ctx shard;
  match Hashtbl.find_opt state.conns conn_id with
  | None -> Sysdefs.ebadf
  | Some c ->
      if c.closed then Sysdefs.ebadf
      else begin
        let owner = ctx.Monitor.caller in
        if not (Hashtbl.mem state.forwarded (owner, owner_wid)) then begin
          Api.window_forward ctx ~owner owner_wid state.netdev_cid;
          Hashtbl.replace state.forwarded (owner, owner_wid) ()
        end;
        let hdr = state.rx_staging.(shard) + 2048 in
        let rec loop sent =
          if sent >= len then sent
          else begin
            let n = min Sysdefs.mss (len - sent) in
            let seq = c.next_tx_seq in
            c.next_tx_seq <- seq + 1;
            Api.write_u32 ctx hdr conn_id;
            Api.write_u8 ctx (hdr + 4) 1;
            Api.write_u32 ctx (hdr + 5) seq;
            Api.write_u16 ctx (hdr + 9) n;
            (match
               Api.call ctx "netdev_tx_gather"
                 [| hdr; Sysdefs.frame_header; src + sent; n; shard |]
             with
            | r when r < 0 -> Types.error "lwip: netdev_tx_gather failed (%d)" r
            | _ -> ());
            c.unacked <- c.unacked + n;
            if c.unacked >= Sysdefs.send_buffer then begin
              Hw.Cost.charge (Monitor.cost ctx.Monitor.mon) Sysdefs.rtt_stall_cycles;
              c.unacked <- 0
            end;
            loop (sent + n)
          end
        in
        loop 0
      end

let close_fn state ctx (args : int array) =
  match Hashtbl.find_opt state.conns args.(0) with
  | None -> Sysdefs.ebadf
  | Some c ->
      c.closed <- true;
      (* fin frame, via the connection's shard staging buffer *)
      let shard = shard_of_conn state args.(0) in
      let staging = state.rx_staging.(shard) in
      Api.write_u32 ctx staging args.(0);
      Api.write_u8 ctx (staging + 4) 2;
      Api.write_u32 ctx (staging + 5) c.next_tx_seq;
      Api.write_u16 ctx (staging + 9) 0;
      ignore (Api.call ctx "netdev_tx" [| staging; Sysdefs.frame_header; shard |]);
      Hashtbl.remove state.conns args.(0);
      Sysdefs.ok

let init state ctx =
  state.netdev_cid <- Api.cid_of ctx "NETDEV";
  (* one standing window per shard plus a transient tx window — extend
     the heap descriptor array past its initial 8 slots if needed
     (paper §5.3: descriptor arrays are fixed-size, extended on
     request) *)
  let rec ensure cap need =
    if cap < need then begin
      Api.window_table_extend ctx ~klass:Mm.Page_meta.Heap;
      ensure (2 * cap) need
    end
  in
  ensure 8 (state.nshards + 2);
  for shard = 0 to state.nshards - 1 do
    state.rx_staging.(shard) <- Api.alloc_pages ctx 1 ~kind:Mm.Page_meta.Heap;
    (* standing window per shard: NETDEV fills the staging page on
       netdev_rx and reads fin frames from it on netdev_tx *)
    let wid = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
    Api.window_add ctx wid ~ptr:state.rx_staging.(shard) ~size:Hw.Addr.page_size;
    Api.window_open ctx wid state.netdev_cid;
    state.staging_wids.(shard) <- wid
  done

let make ?(nshards = 1) () =
  if nshards < 1 then invalid_arg "Lwip.make: nshards must be >= 1";
  let state =
    {
      nshards;
      listening = false;
      conns = Hashtbl.create 16;
      pending_accept = Array.init nshards (fun _ -> Queue.create ());
      netdev_cid = -1;
      rx_staging = Array.make nshards 0;
      staging_wids = Array.make nshards 0;
      forwarded = Hashtbl.create 8;
    }
  in
  (* rx pump: drain frames from NETDEV into the standing staging page,
     then park payload copies in pbufs *)
  let pump_iface =
    [
      Iface.Loop
        [
          Iface.Call
            { sym = "netdev_rx"; ptr_args = [ (0, Iface.Local "rx_staging", 4096) ] };
          Iface.Call { sym = "uk_palloc"; ptr_args = [] };
          Iface.Call { sym = "memcpy"; ptr_args = [] };
        ];
    ]
  in
  (* tx: one short-lived window per segment pbuf, torn down after the
     transmit returns *)
  let send_iface =
    [
      Iface.Loop
        [
          Iface.Call { sym = "uk_palloc"; ptr_args = [] };
          Iface.Call { sym = "memcpy"; ptr_args = [] };
          Iface.Window_add
            {
              win = "tx_win";
              buf = Iface.Local "pbuf";
              bytes = 4096;
              standing = false;
              rw = false;
            };
          Iface.Window_open { win = "tx_win"; peer = "NETDEV" };
          Iface.Call { sym = "netdev_tx"; ptr_args = [ (0, Iface.Local "pbuf", 4096) ] };
          Iface.Window_destroy { win = "tx_win" };
          Iface.Call { sym = "uk_pfree"; ptr_args = [] };
        ];
    ]
  in
  (* one staging page + standing window per shard; shard 0 keeps the
     historical names so single-shard summaries are unchanged *)
  let init_iface =
    List.concat
      (List.init nshards (fun i ->
           let buf = if i = 0 then "rx_staging" else Printf.sprintf "rx_staging%d" i in
           let win = if i = 0 then "staging_wid" else Printf.sprintf "staging_wid%d" i in
           [
             Iface.Alloc { buf; bytes = 4096 };
             (* stays RW: NETDEV fills the staging page on netdev_rx *)
             Iface.Window_add
               { win; buf = Iface.Local buf; bytes = 4096; standing = true; rw = true };
             Iface.Window_open { win; peer = "NETDEV" };
           ]))
  in
  let iface =
    [
      Iface.fundecl "__init" init_iface;
      Iface.fundecl "lwip_listen" [];
      Iface.fundecl "lwip_accept" pump_iface;
      Iface.fundecl ~derefs:[ 1 ] ~writes:[ 1 ] "lwip_recv"
        (pump_iface
        @ [
            Iface.Call { sym = "memcpy"; ptr_args = [] };
            Iface.Branch [ [ Iface.Call { sym = "uk_pfree"; ptr_args = [] } ]; [] ];
          ]);
      Iface.fundecl ~derefs:[ 1 ] "lwip_send" (pump_iface @ send_iface);
      (* zero-copy send: LWIP itself never dereferences the payload
         (arg 1) — it forwards the span to NETDEV's gather transmit,
         with the frame header staged in the standing rx_staging
         window. The grant forward is modelled by the caller's summary
         (the window belongs to the file system, not to LWIP). *)
      Iface.fundecl "lwip_send_zc"
        (pump_iface
        @ [
            Iface.Loop
              [
                Iface.Call
                  {
                    sym = "netdev_tx_gather";
                    ptr_args =
                      [
                        (0, Iface.Local "rx_staging", Sysdefs.frame_header);
                        (2, Iface.Param 1, 0);
                      ];
                  };
              ];
          ]);
      Iface.fundecl "lwip_close"
        [
          Iface.Call
            {
              sym = "netdev_tx";
              ptr_args = [ (0, Iface.Local "rx_staging", Sysdefs.frame_header) ];
            };
        ];
    ]
  in
  let comp =
    Builder.component "LWIP" ~code_ops:2048 ~heap_pages:(32 + nshards) ~stack_pages:4
      ~init:(init state) ~iface
      ~exports:
        [
          { Monitor.sym = "lwip_listen"; fn = listen_fn state; stack_bytes = 0 };
          { Monitor.sym = "lwip_accept"; fn = accept_fn state; stack_bytes = 0 };
          { Monitor.sym = "lwip_recv"; fn = recv_fn state; stack_bytes = 0 };
          { Monitor.sym = "lwip_send"; fn = send_fn state; stack_bytes = 0 };
          { Monitor.sym = "lwip_send_zc"; fn = send_zc_fn state; stack_bytes = 0 };
          { Monitor.sym = "lwip_close"; fn = close_fn state; stack_bytes = 0 };
        ]
  in
  (state, comp)

let connections state = Hashtbl.length state.conns
