(** The VFSCORE component: virtual file system layer.

    Holds the file-descriptor table and dispatches to a file system
    backend through a callback table filled in at initialisation time —
    resolved as dynamic symbols so that every backend call transits a
    cross-cubicle trampoline, exactly the interposition trick CubicleOS
    plays on Unikraft (paper §5.2 item 2).

    Path strings arrive in the {e caller's} memory (the caller must
    have windowed them to VFSCORE); VFSCORE copies each path into its
    own page-aligned staging buffer, which it keeps permanently
    windowed to the backend — its only long-lived window. Data buffers
    are passed through to the backend {e zero-copy}: VFSCORE never
    touches their bytes, and the calling application must have opened
    its buffer window for both VFSCORE's and the backend's cubicles
    ahead of the call (the paper's rule for nested calls, §5.6). *)

val component : ?backend:string -> ?sendfile:bool -> unit -> Cubicle.Builder.component
(** [backend] is the symbol prefix the CubiCheck interface summary
    names for backend calls ([_lookup], [_pread], …) — ["ramfs"] by
    default, ["fatfs"] for the persistent-disk stack. The runtime
    dispatch is unaffected (the real prefix is fixed by whichever
    backend registers).

    [sendfile] (default false) additionally exports
    [vfs_sendfile(fd, conn, len, off)]: the fd's inode/length/offset are
    staged as an io descriptor, and the backend streams the bytes to the
    network stack zero-copy (no data buffer crosses VFSCORE). Enable
    only on stacks whose backend exports [<backend>_sendfile].

    Exports:
    - [vfs_register_backend(tag)] — backend self-registration
      (tag 1 = "ramfs" symbol prefix); the caller's cubicle id is
      recorded from the trampoline;
    - [vfs_backend_cid()] — for applications to open data windows;
    - [vfs_open(path,len,flags)] → fd (flags bit0 = create),
      [vfs_close(fd)],
      [vfs_pread(fd,buf,len,off)] / [vfs_pwrite(fd,buf,len,off)] → n,
      [vfs_size(fd)], [vfs_truncate(fd,size)], [vfs_fsync(fd)],
      [vfs_unlink(path,len)], [vfs_exists(path,len)],
      [vfs_rename(old,olen,new,nlen)].
    Errors are negative errno values from {!Sysdefs}. *)
