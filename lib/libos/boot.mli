(** System assembly: boots CubicleOS deployments of the library OS.

    The deployment mirrors the paper's evaluation configurations:
    - the file system stack used by SQLite (Fig. 8): PLAT, TIME, ALLOC,
      VFSCORE, RAMFS as isolated cubicles, LIBC shared;
    - the network stack used by NGINX (Fig. 5) adds NETDEV and LWIP;
    - Fig. 9's 3-component deployment merges VFSCORE and RAMFS into one
      cubicle ([merge_fs]). *)

type system = {
  mon : Cubicle.Monitor.t;
  built : Cubicle.Builder.built;
  plat : Plat.state;
  ramfs : Ramfs.state;
  netdev : Netdev.state option;
  lwip : Lwip.state option;
  blkdev : Blkdev.state option;
  fatfs : Fatfs.state option;
}

val fs_stack :
  ?protection:Cubicle.Types.protection ->
  ?policy:Cubicle.Monitor.policy ->
  ?virtualise:bool ->
  ?merge_fs:bool ->
  ?mem_bytes:int ->
  ?extra:(Cubicle.Builder.component * Cubicle.Types.kind) list ->
  unit ->
  system
(** File system stack (no network). [extra] appends application
    components (loaded last). [merge_fs] links VFSCORE+RAMFS into a
    single cubicle (Figure 9a). Default protection: [Full]. *)

val net_stack :
  ?protection:Cubicle.Types.protection ->
  ?policy:Cubicle.Monitor.policy ->
  ?virtualise:bool ->
  ?ncores:int ->
  ?nrings:int ->
  ?mem_bytes:int ->
  ?extra:(Cubicle.Builder.component * Cubicle.Types.kind) list ->
  unit ->
  system
(** Full network stack: the NGINX deployment of Figure 5 (8 isolated
    cubicles once the application is added). [ncores] sizes the
    simulated machine (default 1); [nrings] (default 1) shards NETDEV
    and the LWIP accept path so one httpd worker per ring can serve
    traffic concurrently on an SMP machine. *)

val fat_stack :
  ?protection:Cubicle.Types.protection ->
  ?policy:Cubicle.Monitor.policy ->
  ?mem_bytes:int ->
  ?extra:(Cubicle.Builder.component * Cubicle.Types.kind) list ->
  disk:Blkdev.disk ->
  unit ->
  system
(** Persistent-disk deployment: VFSCORE backed by the UKFAT file system
    over BLKDEV (the [ramfs] field is an unused placeholder here).
    Re-attaching the same {!Blkdev.disk} to a freshly booted system
    mounts the existing contents. *)

val app_ctx : system -> string -> Cubicle.Monitor.ctx
(** Context of a named component, for driving applications. *)

val populate : system -> as_app:string -> (string * string) list -> unit
(** Create files (name, contents) through the VFS from the given
    application component — e.g. an NGINX docroot. *)
