(** The NETDEV component: a ring-buffer network device.

    Device-side, frames pass through ring slots owned by the NETDEV
    cubicle; callers exchange frame payloads with NETDEV through
    checked copies (so the caller must window its frame buffers to
    NETDEV). Host-side, a bridge injects and collects raw frames with
    DMA-like privileged access, standing in for the wire. Each frame
    movement charges {!Sysdefs.nic_frame_cycles}.

    The device can expose several independent rx/tx ring pairs
    ([make ~nrings]) — the hardware half of SO_REUSEPORT-style accept
    sharding: each SMP httpd worker drives its own ring, and the host
    bridge steers each connection's frames to one ring (RSS by
    connection id). Each ring has its own DMA staging slot, so
    concurrent workers never alias the staging page. *)

type state

val make : ?nrings:int -> unit -> state * Cubicle.Builder.component
(** Exports: [netdev_tx(buf,len[,ring])] → 0,
    [netdev_rx(buf,maxlen[,ring])] → received length or 0 when no frame
    is pending on that ring. The ring argument defaults to 0, so
    single-ring callers are unchanged. Default [nrings] is 1. *)

val nrings : state -> int

(** {1 Host bridge (the wire; trusted, outside the cubicle system)} *)

val host_inject : ?ring:int -> state -> bytes -> unit
(** Queue a frame for the device to receive on [ring] (default 0). *)

val host_collect : state -> bytes list
(** Drain all frames the device has transmitted, every ring, oldest
    first within a ring. *)

val tx_frames : state -> int
val rx_frames : state -> int
