open Cubicle

(* One receive/transmit ring pair per core (the SO_REUSEPORT-style
   sharding the SMP httpd uses); each ring owns its own DMA staging
   page so concurrent workers never share a slot. *)
type ring = {
  host_to_dev : bytes Queue.t;
  dev_to_host : bytes Queue.t;
  mutable ring_base : int;  (* one page used as the DMA staging slot *)
}

type state = {
  rings : ring array;
  mutable tx_frames : int;
  mutable rx_frames : int;
}

let nrings state = Array.length state.rings

let charge_frame ctx =
  Hw.Cost.charge (Monitor.cost ctx.Monitor.mon) Sysdefs.nic_frame_cycles

(* The optional third argument selects the ring; the single-ring
   callers keep passing [| buf; len |]. *)
let ring_of (args : int array) = if Array.length args > 2 then args.(2) else 0

let tx_fn state ctx (args : int array) =
  let buf = args.(0) and len = args.(1) and r = ring_of args in
  if len <= 0 || len > Sysdefs.mtu || r < 0 || r >= nrings state then Sysdefs.einval
  else begin
    let ring = state.rings.(r) in
    (* caller buffer -> ring slot (checked: needs the caller's window),
       then the "DMA engine" moves the slot out to the wire. *)
    Api.memcpy ctx ~dst:ring.ring_base ~src:buf ~len;
    let frame = Hw.Cpu.priv_read_bytes ctx.Monitor.cpu ring.ring_base len in
    Queue.push frame ring.dev_to_host;
    charge_frame ctx;
    state.tx_frames <- state.tx_frames + 1;
    Sysdefs.ok
  end

(* Scatter-gather transmit for the zero-copy sendfile path: the caller
   hands a tiny header (its own staging page) and a payload span it does
   NOT own — the payload lives in pages the file system granted through
   a forwarded window. The header is copied into the ring slot (checked,
   charged); the payload is only *touched* once per page through the
   checked access path — driving the trap-and-map faults and the
   Window_access telemetry the attribution and replay planes rely on —
   and then gathered off those pages by the DMA engine without any
   charged memcpy. *)
let tx_gather_fn state ctx (args : int array) =
  let hdr = args.(0)
  and hdr_len = args.(1)
  and payload = args.(2)
  and plen = args.(3)
  and r = if Array.length args > 4 then args.(4) else 0 in
  if
    hdr_len <= 0 || plen <= 0
    || hdr_len + plen > Sysdefs.mtu
    || r < 0
    || r >= nrings state
  then Sysdefs.einval
  else begin
    let ring = state.rings.(r) in
    Api.memcpy ctx ~dst:ring.ring_base ~src:hdr ~len:hdr_len;
    (* one checked touch per payload page: window enforcement (and its
       cost) stays exact, the bulk bytes are never copied by the CPU *)
    for p = Hw.Addr.page_of payload to Hw.Addr.page_of (payload + plen - 1) do
      ignore (Api.read_u8 ctx (max payload (Hw.Addr.base_of_page p)))
    done;
    let frame = Bytes.create (hdr_len + plen) in
    Bytes.blit (Hw.Cpu.priv_read_bytes ctx.Monitor.cpu ring.ring_base hdr_len) 0 frame 0
      hdr_len;
    Bytes.blit (Hw.Cpu.priv_read_bytes ctx.Monitor.cpu payload plen) 0 frame hdr_len plen;
    Queue.push frame ring.dev_to_host;
    charge_frame ctx;
    state.tx_frames <- state.tx_frames + 1;
    Sysdefs.ok
  end

let rx_fn state ctx (args : int array) =
  let buf = args.(0) and maxlen = args.(1) and r = ring_of args in
  if r < 0 || r >= nrings state then Sysdefs.einval
  else
    let ring = state.rings.(r) in
    if Queue.is_empty ring.host_to_dev then 0
    else begin
      let frame = Queue.pop ring.host_to_dev in
      let len = Bytes.length frame in
      if len > maxlen then Sysdefs.einval
      else begin
        (* wire -> ring slot (DMA), then ring slot -> caller buffer *)
        Hw.Cpu.priv_write_bytes ctx.Monitor.cpu ring.ring_base frame;
        Api.memcpy ctx ~dst:buf ~src:ring.ring_base ~len;
        charge_frame ctx;
        state.rx_frames <- state.rx_frames + 1;
        len
      end
    end

let init state ctx =
  Array.iter
    (fun ring -> ring.ring_base <- Api.alloc_pages ctx 1 ~kind:Mm.Page_meta.Heap)
    state.rings

let make ?(nrings = 1) () =
  if nrings < 1 then invalid_arg "Netdev.make: nrings must be >= 1";
  let state =
    {
      rings =
        Array.init nrings (fun _ ->
            { host_to_dev = Queue.create (); dev_to_host = Queue.create (); ring_base = 0 });
      tx_frames = 0;
      rx_frames = 0;
    }
  in
  let comp =
    Builder.component "NETDEV" ~code_ops:640 ~heap_pages:(4 + nrings) ~stack_pages:2
      ~init:(init state)
      ~iface:
        [
          (* both sides copy through the caller's buffer: tx reads it
             into the ring slot, rx fills it from the slot *)
          Iface.fundecl ~derefs:[ 0 ] "netdev_tx" [];
          Iface.fundecl ~derefs:[ 0 ] ~writes:[ 0 ] "netdev_rx" [];
          (* gather tx dereferences both the header (arg 0) and the
             granted payload span (arg 2) *)
          Iface.fundecl ~derefs:[ 0; 2 ] "netdev_tx_gather" [];
        ]
      ~exports:
        [
          { Monitor.sym = "netdev_tx"; fn = tx_fn state; stack_bytes = 0 };
          { Monitor.sym = "netdev_rx"; fn = rx_fn state; stack_bytes = 0 };
          { Monitor.sym = "netdev_tx_gather"; fn = tx_gather_fn state; stack_bytes = 0 };
        ]
  in
  (state, comp)

let host_inject ?(ring = 0) state frame =
  if ring < 0 || ring >= nrings state then invalid_arg "Netdev.host_inject: no such ring";
  Queue.push frame state.rings.(ring).host_to_dev

let host_collect state =
  let acc = ref [] in
  Array.iter
    (fun ring ->
      while not (Queue.is_empty ring.dev_to_host) do
        acc := Queue.pop ring.dev_to_host :: !acc
      done)
    state.rings;
  List.rev !acc

let tx_frames state = state.tx_frames
let rx_frames state = state.rx_frames
