open Cubicle

type state = {
  host_to_dev : bytes Queue.t;
  dev_to_host : bytes Queue.t;
  mutable ring_base : int;  (* one page used as the DMA staging slot *)
  mutable tx_frames : int;
  mutable rx_frames : int;
}

let charge_frame ctx =
  Hw.Cost.charge (Monitor.cost ctx.Monitor.mon) Sysdefs.nic_frame_cycles

let tx_fn state ctx (args : int array) =
  let buf = args.(0) and len = args.(1) in
  if len <= 0 || len > Sysdefs.mtu then Sysdefs.einval
  else begin
    (* caller buffer -> ring slot (checked: needs the caller's window),
       then the "DMA engine" moves the slot out to the wire. *)
    Api.memcpy ctx ~dst:state.ring_base ~src:buf ~len;
    let frame = Hw.Cpu.priv_read_bytes ctx.Monitor.cpu state.ring_base len in
    Queue.push frame state.dev_to_host;
    charge_frame ctx;
    state.tx_frames <- state.tx_frames + 1;
    Sysdefs.ok
  end

let rx_fn state ctx (args : int array) =
  let buf = args.(0) and maxlen = args.(1) in
  if Queue.is_empty state.host_to_dev then 0
  else begin
    let frame = Queue.pop state.host_to_dev in
    let len = Bytes.length frame in
    if len > maxlen then Sysdefs.einval
    else begin
      (* wire -> ring slot (DMA), then ring slot -> caller buffer *)
      Hw.Cpu.priv_write_bytes ctx.Monitor.cpu state.ring_base frame;
      Api.memcpy ctx ~dst:buf ~src:state.ring_base ~len;
      charge_frame ctx;
      state.rx_frames <- state.rx_frames + 1;
      len
    end
  end

let init state ctx = state.ring_base <- Api.alloc_pages ctx 1 ~kind:Mm.Page_meta.Heap

let make () =
  let state =
    {
      host_to_dev = Queue.create ();
      dev_to_host = Queue.create ();
      ring_base = 0;
      tx_frames = 0;
      rx_frames = 0;
    }
  in
  let comp =
    Builder.component "NETDEV" ~code_ops:640 ~heap_pages:4 ~stack_pages:2
      ~init:(init state)
      ~iface:
        [
          (* both sides copy through the caller's buffer: tx reads it
             into the ring slot, rx fills it from the slot *)
          Iface.fundecl ~derefs:[ 0 ] "netdev_tx" [];
          Iface.fundecl ~derefs:[ 0 ] "netdev_rx" [];
        ]
      ~exports:
        [
          { Monitor.sym = "netdev_tx"; fn = tx_fn state; stack_bytes = 0 };
          { Monitor.sym = "netdev_rx"; fn = rx_fn state; stack_bytes = 0 };
        ]
  in
  (state, comp)

let host_inject state frame = Queue.push frame state.host_to_dev

let host_collect state =
  let acc = ref [] in
  while not (Queue.is_empty state.dev_to_host) do
    acc := Queue.pop state.dev_to_host :: !acc
  done;
  List.rev !acc

let tx_frames state = state.tx_frames
let rx_frames state = state.rx_frames
