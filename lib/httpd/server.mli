(** The NGINX-like web server component: serves static files from the
    VFS over LWIP connections.

    The request path per connection is the paper's Figure 5 topology:
    NGINX ↔ LWIP ↔ NETDEV for the byte stream, NGINX ↔ VFSCORE ↔ RAMFS
    for file data, with ALLOC and TIME on the side. File data is read
    in 32 KiB chunks into a server-owned buffer that is windowed to
    VFSCORE/RAMFS for the read and to LWIP for the send. *)

type t

val component : ?workers:int -> unit -> Cubicle.Builder.component
(** The NGINX cubicle (named "NGINX"); load it with the net stack.
    [workers] (default 1) sizes the heap for that many concurrent
    SO_REUSEPORT-style workers ({!start} once per shard). *)

val start : ?shard:int -> ?zerocopy:bool -> Libos.Boot.system -> t
(** Resolve cids, allocate buffers, open the listening socket. Must run
    after boot. [shard] (default 0) is the LWIP accept shard / NETDEV
    ring this worker drives — boot the stack with
    [Boot.net_stack ~nrings:n] and start one worker per shard to serve
    traffic concurrently across simulated cores. [zerocopy] (default
    false) serves file bodies through [vfs_sendfile] — the file system
    grants its chunk pages to LWIP and forwards the grant to NETDEV, so
    no body byte is ever copied into the server's buffer. *)

val poll : t -> int
(** Accept pending connections and serve every complete request
    currently buffered; returns the number of responses sent. Drive
    this in a loop from the host (it stands in for the server's main
    loop). *)

val requests_served : t -> int
val chunk_size : int
