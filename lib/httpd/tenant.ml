open Cubicle

(* Multi-tenant serving sets for the key-pressure bench: each tenant is
   a private FS<i>+WEB<i> cubicle pair behind one shared gateway, so N
   tenants put 2N+1 isolated cubicles on the machine — far past the 14
   physical MPK tags once N grows, which is exactly the pressure the
   key multiplexer exists to absorb.

   The request path exercises every isolation mechanism per request:
   the gateway opens a per-request window over its request page for
   WEB<i> and calls [t<i>_get]; WEB<i> reads the request through that
   window, calls [t<i>_read] so FS<i> fills WEB's chunk buffer through
   a standing RW window, assembles an HTTP response in its response
   page, and the gateway reads it back through a standing R window.
   Every cross-cubicle entry resolves the callee's virtual key, so
   round-robin traffic over enough tenants faults keys in and out on
   nearly every call. *)

let page = Hw.Addr.page_size

let fs_name i = Printf.sprintf "TFS%d" i
let web_name i = Printf.sprintf "TWEB%d" i
let read_sym i = Printf.sprintf "t%d_read" i
let get_sym i = Printf.sprintf "t%d_get" i
let gw_name = "GW"

(* Deterministic per-tenant file bytes, printable so responses diff
   readably: the bench recomputes them host-side for the byte-identity
   check. *)
let content_byte ~tenant off = 32 + (((tenant * 37) + (off * 11)) mod 95)

let header_for len = Printf.sprintf "HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n" len

let expected ~tenant ~off ~len =
  header_for len ^ String.init len (fun j -> Char.chr (content_byte ~tenant (off + j)))

(* FS<i>: the tenant's file store. [t<i>_read dst off len] writes the
   file bytes into the caller's buffer — WEB's chunk page, reached
   through WEB's standing RW window. *)
let fs_component tenant =
  let fn ctx (args : int array) =
    let dst = args.(0) and off = args.(1) and len = args.(2) in
    for j = 0 to len - 1 do
      Api.write_u8 ctx (dst + j) (content_byte ~tenant (off + j))
    done;
    len
  in
  Builder.component ~heap_pages:2 ~stack_pages:1
    ~iface:[ Iface.fundecl ~derefs:[ 0 ] ~writes:[ 0 ] (read_sym tenant) [] ]
    ~exports:[ { Monitor.sym = read_sym tenant; fn; stack_bytes = 0 } ]
    (fs_name tenant)

(* WEB<i>: the tenant's server. Owns a chunk page (standing RW window
   for FS<i>) and a response page (standing R window for the gateway).
   [t<i>_get req] reads (off, len) from the gateway's request page,
   pulls the bytes from FS<i>, and leaves [u32 total][response bytes]
   in the response page, returning its address. *)
let web_component tenant =
  let chunk = ref 0 in
  let resp = ref 0 in
  let init ctx =
    chunk := Api.malloc_page_aligned ctx page;
    resp := Api.malloc_page_aligned ctx page;
    let wc = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
    Api.window_add ctx wc ~ptr:!chunk ~size:page;
    Api.window_open ctx wc (Api.cid_of ctx (fs_name tenant));
    let wr = Api.window_init ctx ~klass:Mm.Page_meta.Heap in
    Api.window_add ctx ~perm:Window.R wr ~ptr:!resp ~size:page;
    Api.window_open ctx wr (Api.cid_of ctx gw_name)
  in
  let fn ctx (args : int array) =
    let req = args.(0) in
    let off = Api.read_u32 ctx req in
    let len = Api.read_u32 ctx (req + 4) in
    ignore (Api.call ctx (read_sym tenant) [| !chunk; off; len |]);
    let header = header_for len in
    let hlen = String.length header in
    Api.write_u32 ctx !resp (hlen + len);
    Api.write_string ctx (!resp + 4) header;
    Api.memcpy ctx ~dst:(!resp + 4 + hlen) ~src:!chunk ~len;
    !resp
  in
  Builder.component ~heap_pages:4 ~stack_pages:2 ~init
    ~iface:
      [
        Iface.fundecl ~derefs:[ 0 ] (get_sym tenant)
          [ Iface.Call { sym = read_sym tenant; ptr_args = [] } ];
      ]
    ~exports:[ { Monitor.sym = get_sym tenant; fn; stack_bytes = 0 } ]
    (web_name tenant)

type t = {
  mon : Monitor.t;
  built : Builder.built;
  gw : Types.cid;
  gw_req : int;
  gw_wid : Types.wid;
  mutable live : int list;
}

let boot ?(protection = Types.Full) ?virtualise ?(mem_bytes = 512 * 1024 * 1024) () =
  let mon = Monitor.create ~mem_bytes ?virtualise ~protection () in
  let built =
    Builder.build mon
      [ (Builder.component ~heap_pages:4 ~stack_pages:2 gw_name, Types.Isolated) ]
  in
  let gw = Builder.cid built gw_name in
  let ctx = Monitor.ctx_for mon gw in
  let gw_req, gw_wid =
    Monitor.run_as mon gw (fun () ->
        (Api.malloc_page_aligned ctx page, Api.window_init ctx ~klass:Mm.Page_meta.Heap))
  in
  { mon; built; gw; gw_req; gw_wid; live = [] }

let mon t = t.mon
let built t = t.built
let gateway_cid t = t.gw
let live t = List.sort compare t.live

let spawn t i =
  if List.mem i t.live then Types.error "tenant %d is already live" i;
  ignore
    (Builder.spawn ~callers:[ t.gw ] t.built
       [ (fs_component i, Types.Isolated); (web_component i, Types.Isolated) ]);
  t.live <- i :: t.live

let teardown t i =
  if not (List.mem i t.live) then Types.error "tenant %d is not live" i;
  Builder.unload t.built [ web_name i; fs_name i ];
  t.live <- List.filter (fun j -> j <> i) t.live

let request t ~tenant ~off ~len =
  if not (List.mem tenant t.live) then Types.error "tenant %d is not live" tenant;
  if len > page - 64 then Types.error "tenant request: %d bytes exceeds a response page" len;
  let ctx = Monitor.ctx_for t.mon t.gw in
  let web = Monitor.lookup_cubicle t.mon (web_name tenant) in
  Monitor.run_as t.mon t.gw (fun () ->
      Api.write_u32 ctx t.gw_req off;
      Api.write_u32 ctx (t.gw_req + 4) len;
      Api.window_add ctx t.gw_wid ~ptr:t.gw_req ~size:page;
      Api.window_open ctx t.gw_wid web;
      let resp = Api.call ctx (get_sym tenant) [| t.gw_req |] in
      let total = Api.read_u32 ctx resp in
      let body = Api.read_string ctx (resp + 4) total in
      Api.window_close ctx t.gw_wid web;
      Api.window_remove ctx t.gw_wid ~ptr:t.gw_req;
      body)
