(** Multi-tenant serving sets for the key-pressure bench.

    Each tenant is a private FS+WEB cubicle pair behind one shared
    gateway cubicle: [n] live tenants put [2n+1] isolated cubicles on
    the machine, far past the 14 physical MPK tags once [n] grows, so
    round-robin traffic across tenants drives the key multiplexer's
    fault-in/evict path on nearly every request. Tenants spawn and tear
    down at runtime through {!Cubicle.Builder.spawn}/{!Cubicle.Builder.unload}. *)

type t

val boot :
  ?protection:Cubicle.Types.protection -> ?virtualise:bool -> ?mem_bytes:int -> unit -> t
(** Boot a monitor with a gateway cubicle and no tenants. [protection]
    defaults to {!Cubicle.Types.Full}; pass [~protection:Cubicle.Types.None_] for the
    no-isolation baseline the bench diffs responses against.
    [mem_bytes] defaults to 512 MiB — enough for 256 tenants. *)

val mon : t -> Cubicle.Monitor.t
val built : t -> Cubicle.Builder.built
val gateway_cid : t -> Cubicle.Types.cid
val live : t -> int list
(** Live tenant ids, sorted. *)

val spawn : t -> int -> unit
(** Bring tenant [i]'s FS+WEB pair up. {!Cubicle.Types.Error} if already live. *)

val teardown : t -> int -> unit
(** Destroy tenant [i]'s pair: guard entries dropped, pages scrubbed and
    released, keys and cids recycled. {!Cubicle.Types.Error} if not live. *)

val request : t -> tenant:int -> off:int -> len:int -> string
(** Serve one request through the gateway: full HTTP/1.0 response
    (header + [len] file bytes starting at [off]) as the gateway read it
    back through the tenant's response window. *)

val expected : tenant:int -> off:int -> len:int -> string
(** The response [request] must produce, computed host-side without
    touching simulated memory — the bench's byte-identity oracle. *)

val fs_name : int -> string
val web_name : int -> string
