open Cubicle

let chunk_size = 32 * 1024

type conn = { id : int; mutable req : Buffer.t }

type t = {
  ctx : Monitor.ctx;
  fio : Libos.Fileio.t;
  lwip_cid : Types.cid;
  shard : int;  (* the LWIP accept shard / NETDEV ring this worker drives *)
  req_buf : int;  (* page for request bytes *)
  file_buf : int;  (* chunk buffer for file data and response headers *)
  zerocopy : bool;  (* serve file bodies via vfs_sendfile instead of pread+send *)
  mutable conns : conn list;
  mutable served : int;
}

(* CubiCheck summary of the server loop ([__main] is the pseudo-export
   for a component driven from the outside rather than called into).
   Mirrors [start]/[poll_inner]/[serve_file]: a standing path window to
   VFSCORE (the Fileio pattern), a per-request window over [req_buf]
   for LWIP, and per-chunk windows over [file_buf] — to VFSCORE+RAMFS
   for the pread, to LWIP for the send. *)
let iface =
  let lwip_window ~rw buf stmts =
    [
      Iface.Window_add
        { win = "net_win"; buf = Iface.Local buf; bytes = 0; standing = false; rw };
      Iface.Window_open { win = "net_win"; peer = "LWIP" };
    ]
    @ stmts
    @ [ Iface.Window_destroy { win = "net_win" } ]
  in
  (* send path: LWIP only reads the response bytes *)
  let send_chunk =
    lwip_window ~rw:false "file_buf"
      [ Iface.Call { sym = "lwip_send"; ptr_args = [ (1, Iface.Local "file_buf", 0) ] } ]
  in
  [
    Iface.fundecl "__init"
      [
        Iface.Call { sym = "vfs_backend_cid"; ptr_args = [] };
        Iface.Alloc { buf = "path_buf"; bytes = 512 };
        Iface.Window_add
          {
            win = "path_wid";
            buf = Iface.Local "path_buf";
            bytes = 512;
            standing = true;
            rw = false;
          };
        Iface.Window_open { win = "path_wid"; peer = "VFSCORE" };
        Iface.Alloc { buf = "req_buf"; bytes = 4096 };
        Iface.Alloc { buf = "file_buf"; bytes = chunk_size };
        Iface.Call { sym = "lwip_listen"; ptr_args = [] };
      ];
    Iface.fundecl "__main"
      [
        Iface.Loop [ Iface.Call { sym = "lwip_accept"; ptr_args = [] } ];
        Iface.Loop
          ([
             Iface.Loop
               (* RW: LWIP writes the request bytes into req_buf *)
               (lwip_window ~rw:true "req_buf"
                  [
                    Iface.Call
                      { sym = "lwip_recv"; ptr_args = [ (1, Iface.Local "req_buf", 4096) ] };
                  ]);
             Iface.Call { sym = "uk_palloc"; ptr_args = [] };
             Iface.Call { sym = "uk_time_ns"; ptr_args = [] };
             Iface.Call { sym = "vfs_open"; ptr_args = [ (0, Iface.Local "path_buf", 512) ] };
             Iface.Branch
               [
                 (* 200: headers, then stream the file chunk by chunk *)
                 [
                   Iface.Call { sym = "vfs_size"; ptr_args = [] };
                   Iface.Loop
                     ([
                        Iface.Window_add
                          {
                            win = "data_win";
                            buf = Iface.Local "file_buf";
                            bytes = 0;
                            standing = false;
                            rw = true;
                          };
                        Iface.Window_open { win = "data_win"; peer = "VFSCORE" };
                        Iface.Window_open { win = "data_win"; peer = "RAMFS" };
                        Iface.Call
                          {
                            sym = "vfs_pread";
                            ptr_args = [ (1, Iface.Local "file_buf", 0) ];
                          };
                        Iface.Window_close_all { win = "data_win" };
                        Iface.Window_remove
                          { win = "data_win"; buf = Iface.Local "file_buf" };
                      ]
                     @ send_chunk);
                   Iface.Call { sym = "vfs_close"; ptr_args = [] };
                 ];
                 (* 200, zero-copy mode: the body never enters NGINX —
                    the file system streams it via vfs_sendfile (no
                    pointer crosses, only fd/conn/len/off scalars) *)
                 [
                   Iface.Call { sym = "vfs_size"; ptr_args = [] };
                   Iface.Call { sym = "vfs_sendfile"; ptr_args = [] };
                   Iface.Call { sym = "vfs_close"; ptr_args = [] };
                 ];
                 (* error response: headers only *)
                 send_chunk;
               ];
             Iface.Call { sym = "lwip_close"; ptr_args = [] };
             Iface.Call { sym = "uk_pfree"; ptr_args = [] };
           ]
          @ send_chunk);
      ];
  ]

let component ?(workers = 1) () =
  (* each SO_REUSEPORT-style worker needs its own path/request pages
     and 32 KiB chunk buffer from the cubicle heap *)
  Builder.component ~code_ops:2048 ~heap_pages:(16 + (16 * workers)) ~stack_pages:4
    ~iface "NGINX"

let start ?(shard = 0) ?(zerocopy = false) sys =
  let ctx = Libos.Boot.app_ctx sys "NGINX" in
  (* each worker holds two persistent Fileio windows (path + data) plus
     transient net windows; extend the heap descriptor array (initially
     8 slots) so a full worker fleet fits (paper §5.3) *)
  let rec ensure cap need =
    if cap < need then begin
      Api.window_table_extend ctx ~klass:Mm.Page_meta.Heap;
      ensure (2 * cap) need
    end
  in
  ensure 8 (2 * (shard + 2));
  let fio = Libos.Fileio.make ctx in
  let lwip_cid = Api.cid_of ctx "LWIP" in
  let req_buf = Api.malloc_page_aligned ctx 4096 in
  let file_buf = Api.malloc_page_aligned ctx chunk_size in
  (* every worker binds the same port; LWIP's listen is idempotent, the
     shard argument to accept is what splits the backlog *)
  let r = Api.call ctx "lwip_listen" [| 80 |] in
  if r <> 0 then Types.error "nginx: listen failed (%d)" r;
  { ctx; fio; lwip_cid; shard; req_buf; file_buf; zerocopy; conns = []; served = 0 }

let with_lwip_window ?(perm = Window.RW) t ~ptr ~size f =
  let wid = Api.window_init t.ctx ~klass:Mm.Page_meta.Heap in
  Api.window_add t.ctx ~perm wid ~ptr ~size;
  Api.window_open t.ctx wid t.lwip_cid;
  Fun.protect ~finally:(fun () -> Api.window_destroy t.ctx wid) f

let send t conn_id ~ptr ~len =
  (* LWIP only reads the response bytes it segments onto the wire *)
  with_lwip_window ~perm:Window.R t ~ptr ~size:len (fun () ->
      Api.call t.ctx "lwip_send" [| conn_id; ptr; len |])

let send_string t conn_id s =
  Api.write_string t.ctx t.file_buf s;
  ignore (send t conn_id ~ptr:t.file_buf ~len:(String.length s))

(* returns [keep] — whether the connection stays open *)
let respond_error t conn_id status =
  send_string t conn_id (Http.response_header ~status ~content_length:0 ());
  ignore (Api.call t.ctx "lwip_close" [| conn_id |]);
  t.served <- t.served + 1;
  false

let serve_file t conn_id ~meth ~keep_alive path =
  let fd = Libos.Fileio.open_file t.fio path ~create:false in
  if fd < 0 then respond_error t conn_id 404
  else begin
    let size = Libos.Fileio.file_size t.fio fd in
    send_string t conn_id
      (Http.response_header ~content_type:(Http.mime_type path) ~keep_alive ~status:200
         ~content_length:size ());
    if meth <> "HEAD" then
      if t.zerocopy then begin
        (* fast path: the body goes fs → net by grant-and-forward; no
           byte of it ever lands in file_buf *)
        if size > 0 then begin
          let n = Libos.Fileio.sendfile t.fio ~fd ~conn:conn_id ~len:size ~off:0 in
          if n <> size then Types.error "nginx: sendfile returned %d/%d" n size
        end
      end
      else begin
        let rec stream off =
          if off < size then begin
            let want = min chunk_size (size - off) in
            let n = Libos.Fileio.pread t.fio ~fd ~buf:t.file_buf ~len:want ~off in
            if n <= 0 then Types.error "nginx: pread returned %d" n;
            let sent = send t conn_id ~ptr:t.file_buf ~len:n in
            if sent <> n then Types.error "nginx: short send (%d/%d)" sent n;
            stream (off + n)
          end
        in
        stream 0
      end;
    ignore (Libos.Fileio.close_file t.fio fd);
    if not keep_alive then ignore (Api.call t.ctx "lwip_close" [| conn_id |]);
    t.served <- t.served + 1;
    keep_alive
  end

let handle_request t conn raw =
  (* per-request connection state page (as NGINX pools per-request
     memory from the system allocator) and an access-log timestamp *)
  let state_page = Api.call t.ctx "uk_palloc" [| 1 |] in
  ignore (Api.call t.ctx "uk_time_ns" [||]);
  let keep =
    match Http.parse_request raw with
    | None -> respond_error t conn.id 400
    | Some { Http.meth; path; keep_alive } -> serve_file t conn.id ~meth ~keep_alive path
  in
  ignore (Api.call t.ctx "uk_pfree" [| state_page |]);
  keep

let poll_inner t =
  let served_before = t.served in
  (* accept any pending connections *)
  let rec accept_loop () =
    let c = Api.call t.ctx "lwip_accept" [| t.shard |] in
    if c >= 0 then begin
      t.conns <- { id = c; req = Buffer.create 128 } :: t.conns;
      accept_loop ()
    end
  in
  accept_loop ();
  (* pull request bytes for each connection; serve complete requests *)
  let still_open = ref [] in
  List.iter
    (fun conn ->
      let rec drain () =
        let n =
          with_lwip_window t ~ptr:t.req_buf ~size:4096 (fun () ->
              Api.call t.ctx "lwip_recv" [| conn.id; t.req_buf; 4096 |])
        in
        if n > 0 then begin
          Buffer.add_string conn.req (Api.read_string t.ctx t.req_buf n);
          drain ()
        end
      in
      (match drain () with () -> () | exception Types.Error _ -> ());
      let raw = Buffer.contents conn.req in
      let header_end =
        let rec find i =
          if i + 4 > String.length raw then None
          else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
          else find (i + 1)
        in
        find 0
      in
      match header_end with
      | None -> still_open := conn :: !still_open
      | Some hdr_end ->
          let keep = handle_request t conn (String.sub raw 0 hdr_end) in
          if keep then begin
            (* keep-alive: retain any pipelined bytes after the request *)
            let leftover = String.sub raw hdr_end (String.length raw - hdr_end) in
            Buffer.clear conn.req;
            Buffer.add_string conn.req leftover;
            still_open := conn :: !still_open
          end)
    t.conns;
  t.conns <- !still_open;
  t.served - served_before

(* The server main loop runs inside the NGINX cubicle. *)
let poll t = Monitor.run_as t.ctx.Monitor.mon t.ctx.Monitor.self (fun () -> poll_inner t)

let requests_served t = t.served
