(* One flat word array, 63 bits per word: the single-int representation
   capped the system at 62 cubicles, which key virtualisation blows
   straight past (hundreds of tenant cubicles over 15 physical tags).
   Still O(1) add/remove/mem; the word count is fixed at table-creation
   time, as the paper fixes the bitmask size at deployment time. *)

let bits_per_word = 63

type t = { bits : int array; universe : int }

let empty n =
  if n < 0 then invalid_arg "Bitset.empty: negative universe";
  { bits = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; universe = n }

let check t i =
  if i < 0 || i >= t.universe then
    invalid_arg (Printf.sprintf "Bitset: element %d outside universe %d" i t.universe)

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.bits.(w) <- t.bits.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.bits.(w) <- t.bits.(w) land lnot (1 lsl (i mod bits_per_word))

let mem t i =
  check t i;
  t.bits.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let clear t = Array.fill t.bits 0 (Array.length t.bits) 0
let is_empty t = Array.for_all (fun w -> w = 0) t.bits

let cardinal t =
  let rec count b acc = if b = 0 then acc else count (b lsr 1) (acc + (b land 1)) in
  Array.fold_left (fun acc w -> count w acc) 0 t.bits

let elements t =
  let acc = ref [] in
  for i = t.universe - 1 downto 0 do
    if t.bits.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then acc := i :: !acc
  done;
  !acc

let universe t = t.universe
