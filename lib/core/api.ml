type ctx = Monitor.ctx

let window_init (c : ctx) ~klass = Monitor.window_init c.mon c.self ~klass
let window_table_extend (c : ctx) ~klass = Monitor.window_table_extend c.mon c.self ~klass
let window_add (c : ctx) ?perm wid ~ptr ~size =
  Monitor.window_add c.mon c.self ?perm wid ~ptr ~size

let window_remove (c : ctx) wid ~ptr = Monitor.window_remove c.mon c.self wid ~ptr
let window_downgrade (c : ctx) wid ~ptr = Monitor.window_downgrade c.mon c.self wid ~ptr
let window_open (c : ctx) wid other = Monitor.window_open c.mon c.self wid other
let window_close (c : ctx) wid other = Monitor.window_close c.mon c.self wid other
let window_close_all (c : ctx) wid = Monitor.window_close_all c.mon c.self wid
let window_destroy (c : ctx) wid = Monitor.window_destroy c.mon c.self wid

let window_add_ranges (c : ctx) ?perm wid ranges =
  Monitor.window_add_ranges c.mon c.self ?perm wid ranges
let window_open_many (c : ctx) wid peers = Monitor.window_open_many c.mon c.self wid peers

let window_forward (c : ctx) ~owner wid other =
  Monitor.window_forward c.mon c.self ~owner wid other
let call (c : ctx) sym args = Monitor.call c.mon ~caller:c.self sym args
let cid_of (c : ctx) name = Monitor.lookup_cubicle c.mon name
let self (c : ctx) = c.self
let malloc (c : ctx) ?align size = Monitor.malloc c.mon c.self ?align size
let free (c : ctx) addr = Monitor.free c.mon c.self addr
let alloc_pages (c : ctx) n ~kind = Monitor.alloc_pages c.mon c.self n ~kind
let free_pages (c : ctx) base = Monitor.free_pages c.mon c.self base
let malloc_page_aligned (c : ctx) size = malloc c ~align:Hw.Addr.page_size size

(* Observation hook for the CubiCheck replay plane: each checked access
   reports the pages it touches that belong to another cubicle
   (tracing-gated, cost-free — see Monitor.observe_access). The access
   itself still goes through the machine's MPK checks below; the hook
   only makes non-faulting cross-owner accesses (open windows, stale
   tags after a causal-revocation close) visible to offline analysis. *)
let[@inline] obs (c : ctx) addr len access = Monitor.observe_access c.mon ~addr ~len ~access

let read_string (c : ctx) addr len =
  obs c addr len Telemetry.Event.Read;
  Bytes.to_string (Hw.Cpu.read_bytes c.cpu addr len)

let write_string (c : ctx) addr s =
  obs c addr (String.length s) Telemetry.Event.Write;
  Hw.Cpu.write_string c.cpu addr s

let read_bytes (c : ctx) addr len =
  obs c addr len Telemetry.Event.Read;
  Hw.Cpu.read_bytes c.cpu addr len

let write_bytes (c : ctx) addr b =
  obs c addr (Bytes.length b) Telemetry.Event.Write;
  Hw.Cpu.write_bytes c.cpu addr b

let read_u8 (c : ctx) addr =
  obs c addr 1 Telemetry.Event.Read;
  Hw.Cpu.read_u8 c.cpu addr

let write_u8 (c : ctx) addr v =
  obs c addr 1 Telemetry.Event.Write;
  Hw.Cpu.write_u8 c.cpu addr v

let read_u16 (c : ctx) addr =
  obs c addr 2 Telemetry.Event.Read;
  Hw.Cpu.read_u16 c.cpu addr

let write_u16 (c : ctx) addr v =
  obs c addr 2 Telemetry.Event.Write;
  Hw.Cpu.write_u16 c.cpu addr v

let read_u32 (c : ctx) addr =
  obs c addr 4 Telemetry.Event.Read;
  Hw.Cpu.read_u32 c.cpu addr

let write_u32 (c : ctx) addr v =
  obs c addr 4 Telemetry.Event.Write;
  Hw.Cpu.write_u32 c.cpu addr v

let read_i64 (c : ctx) addr =
  obs c addr 8 Telemetry.Event.Read;
  Hw.Cpu.read_i64 c.cpu addr

let write_i64 (c : ctx) addr v =
  obs c addr 8 Telemetry.Event.Write;
  Hw.Cpu.write_i64 c.cpu addr v

let memcpy (c : ctx) ~dst ~src ~len =
  obs c src len Telemetry.Event.Read;
  obs c dst len Telemetry.Event.Write;
  Hw.Cpu.memcpy c.cpu ~dst ~src ~len

let memset (c : ctx) addr len ch =
  obs c addr len Telemetry.Event.Write;
  Hw.Cpu.memset c.cpu addr len ch
let window_open_dedicated (c : ctx) wid other =
  Monitor.window_open_dedicated c.mon c.self wid other

let window_close_dedicated (c : ctx) wid other =
  Monitor.window_close_dedicated c.mon c.self wid other
