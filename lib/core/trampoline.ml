type t = {
  mon : Monitor.t;
  thunks : (string, int) Hashtbl.t;  (* sym -> thunk address *)
  guards : (Types.cid * string, int) Hashtbl.t;
}

(* One thunk: permission switch, the call into the callee's entry point
   (displacement is symbolic here), the switch back, return. *)
let thunk_code = Hw.Instr.assemble [ Wrpkru; Call 0; Wrpkru; Ret ]
let thunk_size = Bytes.length thunk_code

(* One guard entry: enable the monitor tag, jump to the thunk, then
   no-op padding so a misaligned entry runs into the trap. *)
let guard_entry_size = 16

let guard_entry ~thunk_off =
  let body = Hw.Instr.assemble [ Wrpkru; Jmp thunk_off; Halt ] in
  let padded = Bytes.make guard_entry_size '\xF4' (* halt *) in
  Bytes.blit body 0 padded 0 (Bytes.length body);
  padded

(* Thunk pages: signed by the trusted builder, owned by the monitor's
   cubicle, execute-only. Only syms without a thunk get one, so
   respawning a torn-down component reuses its old thunks. *)
let alloc_thunks t syms =
  let fresh = List.filter (fun s -> not (Hashtbl.mem t.thunks s)) syms in
  if fresh <> [] then begin
    let nsyms = List.length fresh in
    let thunk_bytes = Bytes.create (nsyms * thunk_size) in
    List.iteri
      (fun i _ -> Bytes.blit thunk_code 0 thunk_bytes (i * thunk_size) thunk_size)
      fresh;
    let cpu = Monitor.cpu t.mon in
    let npages = Hw.Addr.pages_for (Bytes.length thunk_bytes) in
    let thunk_base =
      Monitor.alloc_owned_pages t.mon Monitor.monitor_cid npages ~kind:Mm.Page_meta.Code
        ~perm:Hw.Page_table.perm_rw
    in
    Hw.Cpu.priv_write_bytes cpu thunk_base thunk_bytes;
    let first = Hw.Addr.page_of thunk_base in
    for p = first to first + npages - 1 do
      Hw.Page_table.set_perm (Hw.Cpu.page_table cpu) p Hw.Page_table.perm_x
    done;
    List.iteri
      (fun i sym -> Hashtbl.replace t.thunks sym (thunk_base + (i * thunk_size)))
      fresh
  end

(* Guard pages: in the calling cubicle's own pages so it can fetch
   them. Each batch of new entries gets its own page run; the run is
   owned by the cubicle, so destroy_cubicle releases it with the rest
   of its memory. *)
let alloc_guards t cid syms =
  let fresh = List.filter (fun s -> not (Hashtbl.mem t.guards (cid, s))) syms in
  if fresh <> [] then begin
    let cpu = Monitor.cpu t.mon in
    let nsyms = List.length fresh in
    let gpages = Hw.Addr.pages_for (nsyms * guard_entry_size) in
    let gbase =
      Monitor.alloc_owned_pages t.mon cid gpages ~kind:Mm.Page_meta.Code
        ~perm:Hw.Page_table.perm_rw
    in
    List.iteri
      (fun i sym ->
        let thunk = Hashtbl.find t.thunks sym in
        let entry_addr = gbase + (i * guard_entry_size) in
        let entry = guard_entry ~thunk_off:(thunk - entry_addr) in
        Hw.Cpu.priv_write_bytes cpu entry_addr entry;
        Hashtbl.replace t.guards (cid, sym) entry_addr)
      fresh;
    let gfirst = Hw.Addr.page_of gbase in
    for p = gfirst to gfirst + gpages - 1 do
      Hw.Page_table.set_perm (Hw.Cpu.page_table cpu) p Hw.Page_table.perm_x
    done
  end

let install mon ~syms =
  let t = { mon; thunks = Hashtbl.create 16; guards = Hashtbl.create 16 } in
  alloc_thunks t syms;
  List.iter
    (fun cid ->
      if Monitor.cubicle_kind mon cid = Types.Isolated then alloc_guards t cid syms)
    (Monitor.live_cids mon);
  t

let extend t ~syms ~cids =
  alloc_thunks t syms;
  List.iter
    (fun cid ->
      if Monitor.cubicle_kind t.mon cid = Types.Isolated then alloc_guards t cid syms)
    cids

let forget_cubicle t cid =
  let dead =
    Hashtbl.fold (fun ((c, _) as k) _ acc -> if c = cid then k :: acc else acc) t.guards []
  in
  List.iter (Hashtbl.remove t.guards) dead

let thunk_addr t sym =
  match Hashtbl.find_opt t.thunks sym with
  | Some a -> a
  | None -> Types.error "no trampoline thunk for symbol %s" sym

let guard_addr t cid sym =
  match Hashtbl.find_opt t.guards (cid, sym) with
  | Some a -> a
  | None -> Types.error "no guard entry for cubicle %d, symbol %s" cid sym

let thunk_cid _ = Monitor.monitor_cid
let syms t = Hashtbl.fold (fun sym _ acc -> sym :: acc) t.thunks [] |> List.sort compare
let has_thunk t sym = Hashtbl.mem t.thunks sym
let has_guard t cid sym = Hashtbl.mem t.guards (cid, sym)

(* Run [f] with the machine configured as if [cid] were executing:
   PKRU narrowed to the cubicle's own tags. *)
let as_cubicle mon cid f =
  let cpu = Monitor.cpu mon in
  if Hw.Cpu.mpk_enabled cpu then begin
    let saved = Hw.Cpu.pkru cpu in
    let key = Monitor.cubicle_key mon cid in
    Hw.Cpu.wrpkru cpu (Hw.Pkru.of_keys [ key; Monitor.shared_key ]);
    Fun.protect ~finally:(fun () -> Hw.Cpu.wrpkru cpu saved) f
  end
  else f ()

let enter_via_guard t ~caller sym =
  let addr = guard_addr t caller sym in
  let b = Monitor.bus t.mon in
  if b.Telemetry.Bus.tracing then
    Telemetry.Bus.emit b (Telemetry.Event.Guard_fetch { cid = caller; sym });
  (* The guard entry lives in the caller's pages: fetching it is legal.
     Its wrpkru then authorises the jump into the monitor-owned thunk. *)
  as_cubicle t.mon caller (fun () -> Hw.Cpu.fetch (Monitor.cpu t.mon) addr 4)

let rogue_fetch mon ~as_cubicle:cid ~addr =
  as_cubicle mon cid (fun () -> Hw.Cpu.fetch (Monitor.cpu mon) addr 4)
