(** Cross-cubicle call trampolines as memory objects.

    The call {e semantics} (permission switch, stack switch, shadow
    stack) live in {!Monitor.call}; this module materialises the
    trampoline {e code pages} so the CFI properties of §5.5 can be
    demonstrated and tested:

    - thunk pages live in the monitor's cubicle (key 0) and legitimately
      contain [wrpkru] — they are generated and signed by the trusted
      builder, so the loader accepts them;
    - guard pages are placed in caller cubicles; each guard entry is a
      [wrpkru; jmp thunk] pair followed by no-op padding so entering a
      guard page anywhere but at an entry's first instruction faults or
      falls through to a trap;
    - with the paper's MPK hardware modification (access-disable implies
      execute-disable), an isolated cubicle cannot fetch thunk bytes
      directly — it must enter through its guard page. *)

type t

val install : Monitor.t -> syms:string list -> t
(** Generate and load the (signed) thunk page(s) for the given exported
    symbols, plus one guard page per existing isolated cubicle. *)

val extend : t -> syms:string list -> cids:Types.cid list -> unit
(** Dynamic spawn support: install thunks for any of [syms] that lack
    one (respawned symbols reuse their old thunk) and guard entries for
    those symbols in each listed isolated cubicle — both freshly
    spawned cubicles and live callers that will now reach the new
    symbols. Non-isolated cids are ignored. *)

val forget_cubicle : t -> Types.cid -> unit
(** Drop all guard entries of a torn-down cubicle. The guard pages
    themselves live in the cubicle's own memory, so
    {!Monitor.destroy_cubicle} scrubs and releases them; this only
    clears the address map so a recycled cid starts clean. *)

val thunk_addr : t -> string -> int
(** Address of the thunk for a symbol. Raises {!Types.Error} if the
    symbol has no thunk. *)

val guard_addr : t -> Types.cid -> string -> int
(** Address of the guard entry for (cubicle, symbol). *)

val thunk_cid : t -> Types.cid
(** The cubicle owning the thunk pages (the monitor). *)

(** {2 Introspection (CubiCheck static plane)} *)

val syms : t -> string list
(** Symbols with an installed thunk, sorted. *)

val has_thunk : t -> string -> bool

val has_guard : t -> Types.cid -> string -> bool
(** Whether (caller cubicle, symbol) has a guard entry — isolated
    cubicles can only reach a thunk through their guard page. *)

val enter_via_guard : t -> caller:Types.cid -> string -> unit
(** Model a well-behaved call entry: fetch the guard entry (in the
    caller's own pages, allowed), which executes [wrpkru] and jumps to
    the thunk. Succeeds silently. *)

val rogue_fetch : Monitor.t -> as_cubicle:Types.cid -> addr:int -> unit
(** Model a rogue jump: attempt an instruction fetch at [addr] while
    executing as [as_cubicle]. Raises {!Hw.Fault.Violation} when CFI
    holds (e.g. jumping straight into a thunk body or into another
    cubicle's code). *)
