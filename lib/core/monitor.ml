let monitor_cid = 0
let shared_key = 15
let monitor_key = 0

let log_src = Logs.Src.create "cubicle.monitor" ~doc:"CubicleOS monitor events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type cubicle = {
  cid : Types.cid;
  name : string;
  kind : Types.kind;
  key : int;
  stack_base : int;
  stack_pages : int;
  mutable heaps : Mm.Suballoc.t list;
  windows : Window.table;
  mutable exports : string list;
  heap_grow_pages : int;
  mutable extra_keys : int list;  (* dedicated window tags this cubicle may use *)
}

type policy = {
  mapping : [ `Lazy_trap | `Eager_on_open ];
      (* Lazy_trap is CubicleOS's trap-and-map; Eager_on_open retags a
         window's pages to the grantee when it is opened (no faults,
         but key writes whether or not the grantee ever touches them). *)
  revocation : [ `Causal | `Eager_revoke ];
      (* Causal is CubicleOS's lazy revocation (§5.6); Eager_revoke
         retags pages back to their owner on window_close. *)
}

let default_policy = { mapping = `Lazy_trap; revocation = `Causal }

type t = {
  m_cpu : Hw.Cpu.t;
  palloc : Mm.Page_alloc.t;
  meta : Mm.Page_meta.t;
  protection : Types.protection;
  policy : policy;
  stats : Stats.t;
  cubs : (Types.cid, cubicle) Hashtbl.t;
  by_name : (string, Types.cid) Hashtbl.t;
  mutable next_cid : Types.cid;
  mutable free_cids : Types.cid list;  (* cids recycled by destroy_cubicle *)
  symbols : (string, export) Hashtbl.t;
  mutable next_key : int;
  mutable free_keys : int list;  (* returned dedicated window tags *)
  virtualise : bool;  (* libmpk-style tag virtualisation (paper §8) *)
  keymux : Hw.Keymux.t option;  (* Some iff [virtualise] *)
  mutable cur : Types.cid;
  mutable page_allocs : (int * int) list;  (* (base page, npages) per cubicle-page alloc *)
  cubicle_runs : (Types.cid, (int * int) list ref) Hashtbl.t;  (* every page run per cubicle *)
  max_cubicles : int;
}

and ctx = { mon : t; self : Types.cid; caller : Types.cid; cpu : Hw.Cpu.t }
and fn = ctx -> int array -> int
and export = { e_sym : string; e_owner : Types.cid; e_fn : fn; e_stack_bytes : int }

type export_spec = { sym : string; fn : fn; stack_bytes : int }

let cpu t = t.m_cpu
let cost t = Hw.Cpu.cost t.m_cpu
let bus t = Hw.Cpu.bus t.m_cpu

(* Stats reads TLB counters through the live Hw.Tlb.t, so there is
   nothing to sync here any more. *)
let stats t = t.stats
let protection t = t.protection
let meta t = t.meta
let current t = t.cur

(* Every change of the executing cubicle goes through here so cycle
   attribution ({!Telemetry.Attrib}) always bills the right row. *)
let set_cur t cid =
  t.cur <- cid;
  Telemetry.Attrib.set_current (Hw.Cpu.cost t.m_cpu).Hw.Cost.attrib cid

let[@inline] emit t ev =
  let b = Hw.Cpu.bus t.m_cpu in
  if b.Telemetry.Bus.tracing then Telemetry.Bus.emit b ev

let get t cid =
  match Hashtbl.find_opt t.cubs cid with
  | Some c -> c
  | None -> Types.error "no cubicle with id %d" cid

let mpk_on t = match t.protection with Types.Mpk | Types.Full -> true | _ -> false

(* libmpk-style tag virtualisation: a cubicle's key may be virtual
   (>= 16); {!Hw.Keymux} maps it on demand to one of the 14 physical
   tags, evicting the least recently used binding when none is free.
   The eviction hook installed in [create] walks the evicted cubicle's
   pages back to the monitor tag so a reassigned physical key can never
   leak access — this scrubbing (plus per-core PKRU shootdowns and the
   libmpk reassignment cost, both priced inside Keymux) is the
   virtualisation cost the paper alludes to when it points at libmpk. *)
let phys_of t (c : cubicle) =
  match t.keymux with
  | Some km when Hw.Keymux.is_virtual c.key -> Hw.Keymux.phys_of km c.key
  | _ -> c.key

let cub_key t cid = phys_of t (get t cid)

(* PKRU for an executing cubicle: its own tag, the shared tag, and any
   dedicated window tags it has been granted. Ordinary windowed pages
   are reached by retagging, not by widening PKRU. *)
let pkru_for t cid =
  let c = get t cid in
  match c.kind with
  | Types.Trusted -> Hw.Pkru.all_allow
  | Types.Isolated | Types.Shared ->
      Hw.Pkru.of_keys (phys_of t c :: shared_key :: c.extra_keys)

(* Restoring a PKRU saved across a nested call/run is only sound when
   the tags it grants still mean what they meant at save time. Under
   tag virtualisation a physical tag in the saved value may have been
   evicted and rebound to a *different* cubicle during the nested run;
   [Keymux.scrub_cores] fixes live registers only, so writing the
   saved value back would silently re-admit the recycled tag until the
   context's next key fault. Recompute the register from the saved
   cubicle instead (re-faulting its key in if it was evicted). A
   fully-permissive register belongs to trusted context and is
   restored verbatim, as is anything saved while a trusted cubicle was
   current (host-side drivers may narrow PKRU without moving [cur]);
   without virtualisation tags are never rebound and the raw restore
   stays exact. *)
let restore_pkru t ~saved_cur ~saved_pkru =
  if
    t.virtualise
    && saved_pkru <> Hw.Pkru.all_allow
    && (match Hashtbl.find_opt t.cubs saved_cur with
       | Some c -> c.kind <> Types.Trusted
       | None -> false)
  then Hw.Cpu.wrpkru t.m_cpu (pkru_for t saved_cur)
  else Hw.Cpu.wrpkru t.m_cpu saved_pkru

(* --- trap-and-map fault handler (paper Fig. 4) ------------------------- *)

let retag t page ~to_key =
  Log.debug (fun m -> m "retag page %d -> key %d" page to_key);
  Hw.Cpu.set_page_key t.m_cpu page to_key;
  Stats.count_retag t.stats;
  emit t (Telemetry.Event.Retag { page; to_key })

let handle_fault t (fault : Hw.Fault.t) =
  Log.debug (fun m -> m "fault: %a (cubicle %d)" Hw.Fault.pp fault t.cur);
  Stats.count_fault t.stats;
  match fault.reason with
  | Hw.Fault.Not_present | Hw.Fault.Page_perm ->
      (* Retagging cannot fix a page-level denial. *)
      false
  | Hw.Fault.Key_perm -> (
      if
        fault.access = Hw.Fault.Exec
        && not
             (t.virtualise
             && Mm.Page_meta.owner t.meta (Hw.Addr.page_of fault.addr) = Some t.cur)
      then
        (* CFI: a cross-cubicle instruction fetch is never resolved by
           trap-and-map; only trampolines switch execution. A cubicle
           refetching its own scrubbed code pages (tag virtualisation)
           is the one exception. *)
        false
      else
        let page = Hw.Addr.page_of fault.addr in
        match Mm.Page_meta.owner t.meta page with
        | None -> false
        | Some owner_cid -> (
            let cur = t.cur in
            if List.mem fault.key (get t cur).extra_keys then begin
              (* the page carries a dedicated window tag this cubicle is
                 entitled to, but the active PKRU predates the grant:
                 refresh it instead of retagging *)
              Hw.Cpu.wrpkru t.m_cpu (pkru_for t cur);
              true
            end
            else
            let cur_key = phys_of t (get t cur) in
            (* Fault-driven key fault-in (tag virtualisation): [phys_of]
               above may have just re-bound the cubicle's virtual key —
               possibly to a different physical tag than the one in the
               active PKRU, if the binding was evicted mid-call. Refresh
               the register, or the retag below would not make the retry
               pass. Never fires without virtualisation: an executing
               cubicle's PKRU always contains its own physical tag. *)
            if not (Hw.Pkru.can_read (Hw.Cpu.pkru t.m_cpu) cur_key) then
              Hw.Cpu.wrpkru t.m_cpu (pkru_for t cur);
            if owner_cid = cur then begin
              (* The cubicle touches its own page, currently tagged for a
                 peer because of a past window access (causal tag
                 consistency): map it back. *)
              retag t page ~to_key:cur_key;
              true
            end
            else
              match t.protection with
              | Types.Mpk ->
                  (* "w/o ACLs": every window is open for any access. *)
                  retag t page ~to_key:cur_key;
                  true
              | Types.Full -> (
                  Hw.Cost.charge_cat (Hw.Cpu.cost t.m_cpu) Telemetry.Attrib.Window
                    (Hw.Cpu.cost t.m_cpu).model.acl_check;
                  let owner = get t owner_cid in
                  match Mm.Page_meta.kind t.meta page with
                  | None -> false
                  | Some klass -> (
                      match Window.search owner.windows ~klass ~addr:fault.addr with
                      | None ->
                          Stats.count_rejected t.stats;
                          emit t (Telemetry.Event.Rejected { cid = cur });
                          false
                      | Some (w, inspected) ->
                          (* Linear ACL search cost; descriptor arrays are
                             short in practice (§5.3 step ❸). *)
                          Hw.Cost.charge_cat (Hw.Cpu.cost t.m_cpu) Telemetry.Attrib.Window
                            (2 * inspected);
                          (* A write through an R-only grant is denied
                             with the full Key_perm pricing already paid
                             (acl_check + descriptor walk): the window
                             was found, the permission says no. Note the
                             asymmetry with lazy trap-and-map: a peer
                             that READ first got the page retagged to
                             its key, so its later write never faults —
                             that silent hole is the online race sink's
                             job (CubiCheck), not the fault handler's. *)
                          if
                            Window.is_open_for w cur
                            && (fault.access <> Hw.Fault.Write
                               || Window.writable w ~addr:fault.addr)
                          then begin
                            retag t page ~to_key:cur_key;
                            true
                          end
                          else begin
                            Stats.count_rejected t.stats;
                            emit t (Telemetry.Event.Rejected { cid = cur });
                            false
                          end))
              | Types.None_ | Types.Trampolines -> false))

(* --- construction ------------------------------------------------------ *)

let monitor_reserved_pages = 16

let create ?(mem_bytes = 64 * 1024 * 1024) ?ncores ?model ?(policy = default_policy)
    ?(virtualise = false) ~protection () =
  let cpu = Hw.Cpu.create ~mem_bytes ?ncores ?model () in
  let npages = Hw.Cpu.npages cpu in
  let palloc =
    Mm.Page_alloc.create ~first_page:monitor_reserved_pages
      ~npages:(npages - monitor_reserved_pages)
  in
  let t =
    {
      m_cpu = cpu;
      palloc;
      meta = Mm.Page_meta.create npages;
      protection;
      policy;
      stats = Stats.of_bus ~tlb:(Hw.Cpu.tlb cpu) (Hw.Cpu.bus cpu);
      cubs = Hashtbl.create 64;
      by_name = Hashtbl.create 64;
      next_cid = monitor_cid + 1;
      free_cids = [];
      symbols = Hashtbl.create 256;
      next_key = 1;
      free_keys = [];
      virtualise;
      keymux = (if virtualise then Some (Hw.Keymux.create cpu) else None);
      cur = monitor_cid;
      page_allocs = [];
      cubicle_runs = Hashtbl.create 32;
      max_cubicles = 1024;
    }
  in
  (* Eviction = walk the victim's still-resident pages back to the
     monitor tag. Priced per page under the Keymux category (the same
     pkey_mprotect cost as any runtime key write, but billed to the
     virtualisation layer rather than plain Mpk), billed to whichever
     cubicle's fault-in forced the eviction. The page-table hook fires
     the cross-core TLB shootdowns; Keymux itself scrubs the evicted
     tag from every core's PKRU and prices those wrpkrus. *)
  (match t.keymux with
  | Some km ->
      Hw.Keymux.set_evict_hook km
        (Some
           (fun ~cid ~vkey:_ ~phys ->
             let cost = Hw.Cpu.cost cpu in
             let pt = Hw.Cpu.page_table cpu in
             let count = ref 0 in
             if Hashtbl.mem t.cubs cid then
               List.iter
                 (fun page ->
                   if Hw.Page_table.key pt page = phys then begin
                     Hw.Cost.charge_cat cost Telemetry.Attrib.Keymux
                       cost.Hw.Cost.model.Hw.Cost.pkey_set;
                     Hw.Page_table.set_key pt page monitor_key;
                     emit t (Telemetry.Event.Retag { page; to_key = monitor_key });
                     incr count
                   end)
                 (Mm.Page_meta.owned_by t.meta cid);
             !count))
  | None -> ());
  (* Monitor's own pages: present, trusted key. *)
  for p = 0 to monitor_reserved_pages - 1 do
    Hw.Cpu.map_page cpu p Hw.Page_table.perm_rw ~key:monitor_key
  done;
  let mon_cubicle =
    {
      cid = monitor_cid;
      name = "MONITOR";
      kind = Types.Trusted;
      key = monitor_key;
      stack_base = 0;
      stack_pages = 2;
      heaps = [];
      windows = Window.create_table ~owner:monitor_cid ~ncubicles:t.max_cubicles;
      exports = [];
      heap_grow_pages = 4;
      extra_keys = [];
    }
  in
  Hashtbl.replace t.cubs monitor_cid mon_cubicle;
  Hashtbl.replace t.by_name mon_cubicle.name monitor_cid;
  if mpk_on t then begin
    Hw.Cpu.set_mpk_enabled cpu true;
    Hw.Cpu.set_exec_follows_access cpu true;
    Hw.Cpu.set_handler cpu (Some (fun _cpu fault -> handle_fault t fault))
  end;
  t

let alloc_owned_pages t cid n ~kind ~perm =
  let c = get t cid in
  let key = if mpk_on t then phys_of t c else c.key land 0xF in
  let page = Mm.Page_alloc.alloc t.palloc n in
  for p = page to page + n - 1 do
    Hw.Cpu.map_page t.m_cpu p perm ~key;
    Mm.Page_meta.assign t.meta ~page:p ~owner:cid ~kind
  done;
  (match Hashtbl.find_opt t.cubicle_runs cid with
  | Some runs -> runs := (page, n) :: !runs
  | None -> Hashtbl.replace t.cubicle_runs cid (ref [ (page, n) ]));
  Hw.Addr.base_of_page page

(* Scrub, unmap and return every page run recorded for [cid]. Shared
   between destroy_cubicle and create_cubicle's failure rollback. *)
let release_runs t cid =
  (match Hashtbl.find_opt t.cubicle_runs cid with
  | Some runs ->
      List.iter
        (fun (page, n) ->
          for p = page to page + n - 1 do
            (* scrub contents so the next owner cannot read stale data *)
            Hw.Cpu.priv_write_bytes t.m_cpu (Hw.Addr.base_of_page p)
              (Bytes.make Hw.Addr.page_size '\000');
            Mm.Page_meta.release t.meta ~page:p;
            Hw.Cpu.unmap_page t.m_cpu p
          done;
          t.page_allocs <- List.filter (fun (p, _) -> p <> page) t.page_allocs;
          Mm.Page_alloc.free t.palloc page)
        !runs;
      Hashtbl.remove t.cubicle_runs cid
  | None -> ())

let create_cubicle t ~name ~kind ~heap_pages ~stack_pages =
  if Hashtbl.mem t.by_name name then Types.error "cubicle %s already exists" name;
  let cid =
    match t.free_cids with
    | c :: rest ->
        t.free_cids <- rest;
        c
    | [] ->
        if t.next_cid >= t.max_cubicles then Types.error "too many cubicles";
        let c = t.next_cid in
        t.next_cid <- c + 1;
        c
  in
  let undo_cid () =
    if cid = t.next_cid - 1 then t.next_cid <- cid else t.free_cids <- cid :: t.free_cids
  in
  let key =
    match kind with
    | Types.Trusted -> monitor_key
    | Types.Shared -> shared_key
    | Types.Isolated -> (
        match t.keymux with
        | Some km ->
            (* virtual key: bound to a physical tag on demand *)
            Hw.Keymux.alloc km ~cid
        | None -> (
            match t.free_keys with
            | k :: rest ->
                t.free_keys <- rest;
                k
            | [] ->
                if t.next_key >= shared_key then begin
                  undo_cid ();
                  Types.error
                    "out of MPK protection keys (15 in use); enable tag virtualisation \
                     (libmpk-style) to run more isolated cubicles"
                end
                else begin
                  let k = t.next_key in
                  t.next_key <- t.next_key + 1;
                  k
                end))
  in
  let cub =
    {
      cid;
      name;
      kind;
      key;
      stack_base = 0;
      stack_pages;
      heaps = [];
      windows = Window.create_table ~owner:cid ~ncubicles:t.max_cubicles;
      exports = [];
      heap_grow_pages = max 4 heap_pages;
      extra_keys = [];
    }
  in
  Hashtbl.replace t.cubs cid cub;
  Hashtbl.replace t.by_name name cid;
  (* Partial-setup rollback: heap (or stack) exhaustion mid-setup must
     not leak the pages, key, cid or name already claimed — a spawn
     either fully succeeds or leaves the monitor exactly as it was. *)
  try
    let stack_base =
      if stack_pages > 0 then
        alloc_owned_pages t cid stack_pages ~kind:Mm.Page_meta.Stack
          ~perm:Hw.Page_table.perm_rw
      else 0
    in
    let cub = { cub with stack_base } in
    Hashtbl.replace t.cubs cid cub;
    if heap_pages > 0 then begin
      let base =
        alloc_owned_pages t cid heap_pages ~kind:Mm.Page_meta.Heap ~perm:Hw.Page_table.perm_rw
      in
      cub.heaps <- [ Mm.Suballoc.create ~base ~size:(heap_pages * Hw.Addr.page_size) ]
    end;
    cid
  with e ->
    release_runs t cid;
    Hashtbl.remove t.cubs cid;
    Hashtbl.remove t.by_name name;
    (match kind with
    | Types.Isolated -> (
        match t.keymux with
        | Some km -> Hw.Keymux.free km key
        | None -> t.free_keys <- key :: t.free_keys)
    | Types.Trusted | Types.Shared -> ());
    undo_cid ();
    raise e

let ncubicles t = Hashtbl.length t.cubs

let live_cids t =
  List.sort compare (Hashtbl.fold (fun cid _ acc -> cid :: acc) t.cubs [])

let free_page_count t = Mm.Page_alloc.free_pages t.palloc
let keymux t = t.keymux
let cubicle_name t cid = (get t cid).name
let cubicle_kind t cid = (get t cid).kind
let cubicle_key t cid = cub_key t cid
let cubicle_raw_key t cid = (get t cid).key

let cubicle_heap_bytes t cid =
  List.fold_left (fun acc h -> acc + Mm.Suballoc.size h) 0 (get t cid).heaps

let stack_base t cid = (get t cid).stack_base

let lookup_cubicle t name =
  match Hashtbl.find_opt t.by_name name with
  | Some cid -> cid
  | None -> Types.error "no cubicle named %s" name

let cubicle_exists t name = Hashtbl.mem t.by_name name
let windows_of t cid = (get t cid).windows
let ctx_for t cid = { mon = t; self = cid; caller = cid; cpu = t.m_cpu }
let ctx_call t cid caller = { mon = t; self = cid; caller; cpu = t.m_cpu }

let register_exports t cid specs =
  let c = get t cid in
  List.iter
    (fun { sym; fn; stack_bytes } ->
      if Hashtbl.mem t.symbols sym then Types.error "duplicate export symbol %s" sym;
      Hashtbl.replace t.symbols sym
        { e_sym = sym; e_owner = cid; e_fn = fn; e_stack_bytes = stack_bytes };
      c.exports <- sym :: c.exports)
    specs

let exports_of t cid = List.rev (get t cid).exports
let has_export t sym = Hashtbl.mem t.symbols sym

(* --- the cross-cubicle call path (trampolines, §5.5) ------------------- *)

let invoke_switched t exp ~caller args =
  let callee = exp.e_owner in
  let saved_cur = t.cur in
  set_cur t callee;
  Fun.protect
    ~finally:(fun () -> set_cur t saved_cur)
    (fun () -> exp.e_fn (ctx_call t callee caller) args)

let call t ~caller sym args =
  let exp =
    match Hashtbl.find_opt t.symbols sym with
    | Some e -> e
    | None ->
        Stats.count_rejected t.stats;
        emit t (Telemetry.Event.Rejected { cid = caller });
        Log.warn (fun m -> m "CFI: call to unresolved symbol %s from cubicle %d" sym caller);
        Types.error "cross-cubicle call to unresolved symbol %s (CFI)" sym
  in
  Log.debug (fun m -> m "call %s: cubicle %d -> %d" sym caller exp.e_owner);
  let callee_cub = get t exp.e_owner in
  let model = (Hw.Cpu.cost t.m_cpu).model in
  match callee_cub.kind with
  | Types.Shared ->
      (* Shared cubicles execute with the caller's privileges, stack and
         heap; the monitor is not involved (§3 step ❹). *)
      Stats.count_shared_call t.stats ~caller ~sym;
      Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Tramp model.call_direct;
      exp.e_fn (ctx_call t caller caller) args
  | Types.Trusted | Types.Isolated when exp.e_owner = caller && t.cur = caller ->
      (* Intra-cubicle call (e.g. components merged into one cubicle,
         Fig. 9a): the target is in the cubicle that is already
         executing — an ordinary function call, no trampoline. *)
      Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Tramp model.call_direct;
      exp.e_fn (ctx_call t exp.e_owner caller) args
  | Types.Trusted | Types.Isolated -> (
      Stats.count_call t.stats ~caller ~callee:exp.e_owner ~sym;
      (* count_call recorded the call start (counter, latency plane,
         traced Call event); guarantee the matching return even when the
         callee raises, so latencies pair up and duration slices nest. *)
      let emit_return () = Stats.count_return t.stats ~caller ~callee:exp.e_owner ~sym in
      Fun.protect ~finally:emit_return @@ fun () ->
      match t.protection with
      | Types.None_ ->
          Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Tramp model.call_direct;
          invoke_switched t exp ~caller args
      | Types.Trampolines | Types.Mpk | Types.Full ->
          Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Tramp
            (model.tramp_fixed + model.stack_switch);
          (* Copy by-stack arguments across per-cubicle stacks. *)
          let caller_cub = get t caller in
          if exp.e_stack_bytes > 0 && caller_cub.stack_base > 0 && callee_cub.stack_base > 0
          then
            Hw.Cpu.priv_blit t.m_cpu ~src:caller_cub.stack_base ~dst:callee_cub.stack_base
              ~len:(min exp.e_stack_bytes (callee_cub.stack_pages * Hw.Addr.page_size));
          if mpk_on t then begin
            let saved_cur = t.cur in
            let saved_pkru = Hw.Cpu.pkru t.m_cpu in
            Hw.Cpu.wrpkru t.m_cpu (pkru_for t exp.e_owner);
            Fun.protect
              ~finally:(fun () -> restore_pkru t ~saved_cur ~saved_pkru)
              (fun () -> invoke_switched t exp ~caller args)
          end
          else invoke_switched t exp ~caller args)

let run_as t cid f =
  let saved_cur = t.cur in
  set_cur t cid;
  if mpk_on t then begin
    let saved_pkru = Hw.Cpu.pkru t.m_cpu in
    Hw.Cpu.wrpkru t.m_cpu (pkru_for t cid);
    Fun.protect
      ~finally:(fun () ->
        set_cur t saved_cur;
        restore_pkru t ~saved_cur ~saved_pkru)
      f
  end
  else Fun.protect ~finally:(fun () -> set_cur t saved_cur) f

(* --- memory services ---------------------------------------------------- *)

let charge_service t =
  let model = (cost t).model in
  match t.protection with
  | Types.None_ -> Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Tramp model.call_direct
  | _ -> Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Tramp model.tramp_fixed

let malloc t cid ?(align = 8) size =
  charge_service t;
  let c = get t cid in
  let rec try_heaps = function
    | [] ->
        let pages = max c.heap_grow_pages (Hw.Addr.pages_for (size + align)) in
        let base = alloc_owned_pages t cid pages ~kind:Mm.Page_meta.Heap ~perm:Hw.Page_table.perm_rw in
        let h = Mm.Suballoc.create ~base ~size:(pages * Hw.Addr.page_size) in
        c.heaps <- h :: c.heaps;
        Mm.Suballoc.alloc ~align h size
    | h :: rest -> ( try Mm.Suballoc.alloc ~align h size with Mm.Suballoc.Out_of_heap -> try_heaps rest)
  in
  try_heaps c.heaps

let free t cid addr =
  charge_service t;
  let c = get t cid in
  let rec find = function
    | [] -> Types.error "cubicle %s: free of foreign pointer 0x%x" c.name addr
    | h :: rest -> (
        match Mm.Suballoc.block_size h addr with
        | Some _ -> Mm.Suballoc.free h addr
        | None -> find rest)
  in
  find c.heaps

let alloc_pages t cid n ~kind =
  charge_service t;
  (* Runtime page allocation assigns MPK keys via the expensive
     pkey_mprotect path (load-time assignment in [alloc_owned_pages]
     happens before the system runs and is not charged). *)
  if mpk_on t then Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Mpk (n * (cost t).model.pkey_set);
  let base = alloc_owned_pages t cid n ~kind ~perm:Hw.Page_table.perm_rw in
  t.page_allocs <- (Hw.Addr.page_of base, n) :: t.page_allocs;
  base

let free_pages t cid base =
  charge_service t;
  (* returning pages strictly reassigns their owner (L4Sec-style), so
     the key write is paid on free as well *)
  let page = Hw.Addr.page_of base in
  match List.assoc_opt page t.page_allocs with
  | None -> Types.error "free_pages: 0x%x is not an allocation base" base
  | Some n ->
      (match Mm.Page_meta.owner t.meta page with
      | Some owner when owner = cid -> ()
      | _ -> Types.error "free_pages: cubicle %d does not own 0x%x" cid base);
      t.page_allocs <- List.filter (fun (p, _) -> p <> page) t.page_allocs;
      (match Hashtbl.find_opt t.cubicle_runs cid with
      | Some runs -> runs := List.filter (fun (p, _) -> p <> page) !runs
      | None -> ());
      if mpk_on t then Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Mpk (n * (cost t).model.pkey_set);
      for p = page to page + n - 1 do
        (* scrub contents so the next owner cannot read stale data —
           same guarantee destroy_cubicle gives for whole-cubicle
           teardown, extended to individual page returns *)
        Hw.Cpu.priv_write_bytes t.m_cpu (Hw.Addr.base_of_page p)
          (Bytes.make Hw.Addr.page_size '\000');
        Mm.Page_meta.release t.meta ~page:p;
        Hw.Cpu.unmap_page t.m_cpu p
      done;
      Mm.Page_alloc.free t.palloc page

(* --- window management (Table 1) ---------------------------------------- *)

(* The cycle charge and the always-on counter happen up front (the
   monitor bills the service call whether or not it succeeds); the
   traced event is emitted only after the operation succeeds, carrying
   enough detail (wid / peer / range) that the CubiCheck replay plane
   can mirror the full window ACL state from the event stream alone. *)
let charge_window_op t =
  match t.protection with
  | Types.None_ -> ()
  | _ ->
      Stats.count_window_op t.stats;
      Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Window (cost t).model.window_op

let emit_window t cid op ?(wid = -1) ?(peer = -1) ?(ptr = 0) ?(size = 0) ?(rw = true) () =
  if t.protection <> Types.None_ then
    emit t (Telemetry.Event.Window { cid; op; wid; peer; ptr; size; rw })

let window_init t cid ~klass =
  charge_window_op t;
  let wid = (Window.init (get t cid).windows ~klass).wid in
  emit_window t cid Telemetry.Event.Init ~wid ();
  wid

(* Extending a descriptor array is a monitor service: it reallocates
   the array in monitor-managed memory (charged as an allocation-sized
   operation). *)
let window_table_extend t cid ~klass =
  charge_window_op t;
  Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Mpk (cost t).model.pkey_set;
  Window.extend (get t cid).windows klass;
  emit_window t cid Telemetry.Event.Extend ()

let find_window t cid wid = Window.find (get t cid).windows wid

(* Windows may only carry memory the caller owns, of the window's
   data class. *)
let check_range_owned t cid (w : Window.t) wid ~ptr ~size =
  let first = Hw.Addr.page_of ptr and last = Hw.Addr.page_of (ptr + size - 1) in
  for p = first to last do
    (match Mm.Page_meta.owner t.meta p with
    | Some o when o = cid -> ()
    | Some o -> Types.error "window_add: page %d belongs to cubicle %d, not %d" p o cid
    | None -> Types.error "window_add: page %d is unowned" p);
    match Mm.Page_meta.kind t.meta p with
    | Some k when k = w.Window.klass -> ()
    | Some k ->
        Types.error "window_add: page %d is %s data but window %d holds %s data" p
          (Mm.Page_meta.kind_to_string k) wid
          (Mm.Page_meta.kind_to_string w.Window.klass)
    | None -> Types.error "window_add: page %d has no class" p
  done

let window_add t cid ?(perm = Window.RW) wid ~ptr ~size =
  charge_window_op t;
  let w = find_window t cid wid in
  check_range_owned t cid w wid ~ptr ~size;
  Window.add_range (get t cid).windows w ~perm ~ptr ~size;
  emit_window t cid Telemetry.Event.Add ~wid ~ptr ~size ~rw:(perm = Window.RW) ()

(* Permission downgrade RW -> R of an existing grant, in place. Under
   causal tag consistency this only narrows the ACL the fault handler
   (and the replay mirror) consults: a peer holding a stale RW-era
   mapping keeps writing until the page migrates back — the same lazy
   window the paper accepts for revocation (§5.6), and exactly what the
   online race sink watches for. *)
let window_downgrade t cid wid ~ptr =
  charge_window_op t;
  let w = find_window t cid wid in
  let size =
    match List.find_opt (fun (r : Window.range) -> r.ptr = ptr) w.Window.ranges with
    | Some r -> r.size
    | None -> 0
  in
  Window.downgrade_range w ~ptr;
  emit_window t cid Telemetry.Event.Downgrade ~wid ~ptr ~size ~rw:false ()

let window_remove t cid wid ~ptr =
  charge_window_op t;
  let w = find_window t cid wid in
  (* record the revoked grant's size before dropping it, so replay can
     retire the exact range *)
  let size =
    match List.find_opt (fun (r : Window.range) -> r.ptr = ptr) w.Window.ranges with
    | Some r -> r.size
    | None -> 0
  in
  Window.remove_range (get t cid).windows w ~ptr;
  emit_window t cid Telemetry.Event.Remove ~wid ~ptr ~size ()

let retag_window_pages t w ~to_key =
  List.iter
    (fun (r : Window.range) ->
      let first = Hw.Addr.page_of r.ptr and last = Hw.Addr.page_of (r.ptr + r.size - 1) in
      for p = first to last do
        if Hw.Cpu.page_key t.m_cpu p <> to_key then retag t p ~to_key
      done)
    w.Window.ranges

let window_open t cid wid other =
  charge_window_op t;
  if other = cid then Types.error "window_open: cannot open a window to oneself";
  ignore (get t other);
  let w = find_window t cid wid in
  Window.open_for w other;
  if mpk_on t && t.policy.mapping = `Eager_on_open then
    retag_window_pages t w ~to_key:(phys_of t (get t other));
  emit_window t cid Telemetry.Event.Open ~wid ~peer:other ()

let window_close t cid wid other =
  charge_window_op t;
  let w = find_window t cid wid in
  Window.close_for w other;
  (* Under causal tag consistency (the default, §5.6) nothing else
     happens: pages migrate back lazily when their owner (or another
     authorised cubicle) next touches them. *)
  if mpk_on t && t.policy.revocation = `Eager_revoke then
    retag_window_pages t w ~to_key:(phys_of t (get t cid));
  emit_window t cid Telemetry.Event.Close ~wid ~peer:other ()

let window_close_all t cid wid =
  charge_window_op t;
  let w = find_window t cid wid in
  Window.close_all w;
  if mpk_on t && t.policy.revocation = `Eager_revoke then
    retag_window_pages t w ~to_key:(phys_of t (get t cid));
  emit_window t cid Telemetry.Event.Close_all ~wid ()

let window_destroy t cid wid =
  charge_window_op t;
  let c = get t cid in
  Window.destroy c.windows (find_window t cid wid);
  emit_window t cid Telemetry.Event.Destroy ~wid ()

(* --- batched window ops + grant-and-forward (sendfile fast path) ------- *)

(* A batched call pays one monitor crossing (one window_op charge) plus
   a small per-extra-descriptor cost, instead of n full crossings. *)
let charge_batch_extra t n =
  if t.protection <> Types.None_ && n > 1 then
    Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Window (2 * (n - 1))

(* Atomic batch: every range is validated before any is granted, so a
   bad descriptor in the middle cannot leave a half-applied batch. One
   Add event per range keeps the replay mirror and counters exact. *)
let window_add_ranges t cid ?(perm = Window.RW) wid ranges =
  if ranges = [] then Types.error "window_add_ranges: empty range list";
  charge_window_op t;
  charge_batch_extra t (List.length ranges);
  let w = find_window t cid wid in
  List.iter (fun (ptr, size) -> check_range_owned t cid w wid ~ptr ~size) ranges;
  List.iter
    (fun (ptr, size) ->
      Window.add_range (get t cid).windows w ~perm ~ptr ~size;
      emit_window t cid Telemetry.Event.Add ~wid ~ptr ~size ~rw:(perm = Window.RW) ())
    ranges

let window_open_many t cid wid peers =
  if peers = [] then Types.error "window_open_many: empty peer list";
  charge_window_op t;
  charge_batch_extra t (List.length peers);
  List.iter
    (fun other ->
      if other = cid then Types.error "window_open: cannot open a window to oneself";
      ignore (get t other))
    peers;
  let w = find_window t cid wid in
  List.iter
    (fun other ->
      Window.open_for w other;
      if mpk_on t && t.policy.mapping = `Eager_on_open then
        retag_window_pages t w ~to_key:(phys_of t (get t other)))
    peers;
  List.iter (fun other -> emit_window t cid Telemetry.Event.Open ~wid ~peer:other ()) peers

(* Grant-and-forward: a cubicle that already holds [owner]'s window
   open for it may extend the grant to a third cubicle further down the
   call chain, without bouncing control back to the owner (paper §5.6
   requires windows opened for every cubicle in a nested chain ahead of
   time — the forward is the monitor-mediated way to do that from the
   middle of the chain). The event is emitted against the owner's
   window so the replay mirror sees the owner's ACL grow, exactly as if
   the owner had opened it. *)
let window_forward t cid ~owner wid other =
  charge_window_op t;
  if other = owner then
    Types.error "window_forward: cubicle %d already owns window %d" other wid;
  ignore (get t other);
  let w = find_window t owner wid in
  if cid <> owner && not (Window.is_open_for w cid) then
    Types.error "window_forward: window %d of cubicle %d is not open for forwarder %d" wid
      owner cid;
  Window.open_for w other;
  if mpk_on t && t.policy.mapping = `Eager_on_open then
    retag_window_pages t w ~to_key:(phys_of t (get t other));
  emit_window t owner Telemetry.Event.Forward ~wid ~peer:other ()

(* Explicit grant check (CubiCheck): does [cid] hold a live window open
   for [peer] whose ranges cover the whole [ptr, ptr+size) span, with
   permission for [access] (default Read)? The byte-exact complement to
   the page-granular trap-and-map path. *)
let window_grants ?(access = Window.Read) t cid ~peer ~ptr ~size =
  List.exists
    (fun w -> Window.is_open_for w peer && Window.covers w ~access ~ptr ~size)
    (Window.live_windows (get t cid).windows)

let alloc_dedicated_key t =
  if t.virtualise then
    Types.error "window-specific tags are not supported with tag virtualisation";
  match t.free_keys with
  | k :: rest ->
      t.free_keys <- rest;
      k
  | [] ->
      if t.next_key >= shared_key then
        Types.error
          "out of MPK protection keys: window-specific tags consume one tag per \
           shared buffer and exhaust the 16 keys quickly (paper §5.6)"
      else begin
        let k = t.next_key in
        t.next_key <- t.next_key + 1;
        k
      end

(* ERIM/Hodor-style window-specific tags (contrasted in §5.6, suggested
   as a hybrid in §8): the window's pages get a tag of their own, which
   both the owner and the grantee enable in PKRU. Accesses to a hot
   window then never fault — at the price of one of the 16 keys per
   window. *)
let window_open_dedicated t cid wid other =
  charge_window_op t;
  emit_window t cid Telemetry.Event.Open_dedicated ~wid ~peer:other ();
  if other = cid then Types.error "window_open_dedicated: cannot open to oneself";
  let w = find_window t cid wid in
  Window.open_for w other;
  let key =
    match w.Window.dedicated_key with
    | Some k -> k
    | None ->
        let k = alloc_dedicated_key t in
        Window.set_dedicated_key w (Some k);
        let owner = get t cid in
        owner.extra_keys <- k :: owner.extra_keys;
        if mpk_on t then retag_window_pages t w ~to_key:k;
        k
  in
  let grantee = get t other in
  if not (List.mem key grantee.extra_keys) then
    grantee.extra_keys <- key :: grantee.extra_keys;
  (* refresh the active PKRU if the affected cubicle is executing *)
  if mpk_on t && (t.cur = cid || t.cur = other) then
    Hw.Cpu.wrpkru t.m_cpu (pkru_for t t.cur)

let window_close_dedicated t cid wid other =
  charge_window_op t;
  emit_window t cid Telemetry.Event.Close_dedicated ~wid ~peer:other ();
  let w = find_window t cid wid in
  Window.close_for w other;
  match w.Window.dedicated_key with
  | None -> ()
  | Some key ->
      let grantee = get t other in
      grantee.extra_keys <- List.filter (fun k -> k <> key) grantee.extra_keys;
      (* last grantee gone: return the tag and the pages to the owner *)
      if Bitset.is_empty w.Window.opened then begin
        let owner = get t cid in
        owner.extra_keys <- List.filter (fun k -> k <> key) owner.extra_keys;
        Window.set_dedicated_key w None;
        if mpk_on t then retag_window_pages t w ~to_key:owner.key;
        t.free_keys <- key :: t.free_keys
      end;
      if mpk_on t && (t.cur = cid || t.cur = other) then
        Hw.Cpu.wrpkru t.m_cpu (pkru_for t t.cur)

(* Dynamic-plane observability: record a checked memory access that
   touches pages owned by a different cubicle. Only runs while tracing
   (one branch otherwise), never charges cycles, and skips trusted
   cubicles and the monitor itself — trusted code legitimately touches
   everything, so reporting it would be pure noise. These events are
   what lets the CubiCheck replay plane see accesses that never fault:
   a write through a stale tag after window_close (causal revocation,
   §5.6) is invisible to the fault handler by design. *)
let observe_access t ~addr ~len ~access =
  let b = Hw.Cpu.bus t.m_cpu in
  if b.Telemetry.Bus.tracing && t.cur <> monitor_cid then
    match (get t t.cur).kind with
    | Types.Trusted -> ()
    | Types.Isolated | Types.Shared ->
        let first = Hw.Addr.page_of addr
        and last = Hw.Addr.page_of (addr + max 1 len - 1) in
        for p = first to last do
          match Mm.Page_meta.owner t.meta p with
          | Some owner when owner <> t.cur ->
              Telemetry.Bus.emit b
                (Telemetry.Event.Window_access { cid = t.cur; owner; page = p; access })
          | _ -> ()
        done

let dedicated_keys_in_use t =
  Hashtbl.fold
    (fun _ c acc ->
      acc
      + List.length
          (List.filter
             (fun w -> w.Window.dedicated_key <> None)
             (Window.live_windows c.windows)))
    t.cubs 0


(* Unload a cubicle (the loader's dlclose counterpart): its exports
   vanish from the symbol table (later calls are CFI errors), all its
   pages are scrubbed, unmapped and returned to the system allocator,
   and its MPK key — physical or virtual — and its cid go back to the
   pools for reuse by a later spawn. *)
let destroy_cubicle t cid =
  if cid = monitor_cid then Types.error "cannot destroy the monitor";
  if t.cur = cid then Types.error "cannot destroy the executing cubicle";
  let c = get t cid in
  (* remove its exports *)
  let doomed =
    Hashtbl.fold (fun sym e acc -> if e.e_owner = cid then sym :: acc else acc) t.symbols []
  in
  List.iter (Hashtbl.remove t.symbols) doomed;
  (* Revoke every grant the dying cubicle holds on peers' windows. The
     cid is about to be recycled, and a stale `opened` bit would hand
     the unrelated successor every window the dead cubicle was ever
     granted — the fault handler's is_open_for check cannot tell the
     two apart. Close events keep the replay mirror's opened-sets in
     step, so CubiCheck judges the recycled cid against the same clean
     ACL state. *)
  Hashtbl.iter
    (fun ocid oc ->
      if ocid <> cid then
        List.iter
          (fun w ->
            if Window.is_open_for w cid then begin
              Window.close_for w cid;
              emit_window t ocid Telemetry.Event.Close ~wid:w.Window.wid ~peer:cid ()
            end)
          (Window.live_windows oc.windows))
    t.cubs;
  (* The dying cubicle's own windows: the live table dies with the
     cubicle record, but the replay mirror only forgets a window on a
     Destroy event — emit them, or a recycled cid that never re-inits
     the wid would inherit the dead window's grants in the mirror. A
     dedicated window tag is returned to the pool and stripped from
     every grantee's extra-key set, so the recycled tag cannot alias a
     future window's pages through a stale PKRU grant. *)
  List.iter
    (fun w ->
      (match w.Window.dedicated_key with
      | Some k ->
          Hashtbl.iter
            (fun _ oc -> oc.extra_keys <- List.filter (fun k' -> k' <> k) oc.extra_keys)
            t.cubs;
          Window.set_dedicated_key w None;
          t.free_keys <- k :: t.free_keys
      | None -> ());
      emit_window t cid Telemetry.Event.Destroy ~wid:w.Window.wid ())
    (Window.live_windows c.windows);
  (* scrub and release every page run *)
  release_runs t cid;
  (* recycle the key: a virtual key's binding is dropped without the
     eviction price (the pages were just scrubbed and unmapped) and
     both the physical slot and the vkey number become reusable *)
  (match c.kind with
  | Types.Isolated -> (
      match t.keymux with
      | Some km -> Hw.Keymux.free km c.key
      | None -> t.free_keys <- c.key :: t.free_keys)
  | Types.Shared | Types.Trusted -> ());
  c.heaps <- [];
  Hashtbl.remove t.cubs cid;
  Hashtbl.remove t.by_name c.name;
  t.free_cids <- cid :: t.free_cids

let tag_evictions t =
  match t.keymux with Some km -> (Hw.Keymux.stats km).Hw.Keymux.evictions | None -> 0
let page_owner t page = Mm.Page_meta.owner t.meta page
let retag_count t = Stats.retags t.stats
