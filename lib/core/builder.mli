(** The trusted component builder (paper §5.2).

    Mirrors how CubicleOS piggy-backs on Unikraft's build: each
    component declares its exported symbols (the [exportsyms.uk] list);
    the builder compiles each component into a separate image, lets the
    deployer choose isolated vs shared per component, loads everything
    through the loader, generates the cross-cubicle trampolines for
    every exported symbol, and finally runs component initialisers (in
    declaration order) so callback tables are wired through dynamic
    symbols — i.e. through trampolines. *)

type component = {
  name : string;
  exportsyms : string list;
      (** public symbols; exports not listed here are rejected *)
  code_ops : int;  (** size of the synthesized code image, in instructions *)
  data_bytes : int;
  heap_pages : int;
  stack_pages : int;
  exports : Monitor.export_spec list;
  init : Monitor.ctx -> unit;
  iface : Iface.t;
      (** CubiCheck interface summary for the component's exports (may
          be empty: exports are then assumed side-effect-free for
          isolation purposes — a documented soundness caveat). *)
}

val component :
  ?exportsyms:string list ->
  ?code_ops:int ->
  ?data_bytes:int ->
  ?heap_pages:int ->
  ?stack_pages:int ->
  ?init:(Monitor.ctx -> unit) ->
  ?exports:Monitor.export_spec list ->
  ?iface:Iface.t ->
  string ->
  component
(** [component name] with defaults; [exportsyms] defaults to the export
    list's symbols. *)

val merge : string -> component list -> component
(** [merge name comps] links several components into a single cubicle
    (the paper's Figure 9a deployments, e.g. CORE+RAMFS). Their exports
    keep their symbols; calls between them become ordinary intra-cubicle
    calls with no trampoline cost. *)

type built = {
  mon : Monitor.t;
  mutable cids : (string * Types.cid) list;
  trampolines : Trampoline.t;
  mutable ifaces : (string * Iface.t) list;
      (** per-component interface summaries, in declaration order —
          the input to [Analysis.Ir.of_built]. Both lists grow on
          {!spawn} and shrink on {!unload}. *)
}

exception Undeclared_export of string * string
(** (component, symbol): an export not listed in exportsyms. *)

val build : Monitor.t -> (component * Types.kind) list -> built
(** Load all components, install trampolines, run initialisers. *)

val cid : built -> string -> Types.cid

val spawn :
  ?callers:Types.cid list ->
  built ->
  (component * Types.kind) list ->
  (string * Types.cid) list
(** Load more components into a running system: the cubicle lifecycle's
    birth half. Checks exports, loads each component, extends the
    trampoline table (thunks for the new symbols; guard entries in each
    spawned isolated cubicle for {e every} live export, matching what
    {!build} gives statically-built cubicles, and in each cubicle of
    [callers] for the new symbols), runs initialisers in declaration
    order, and returns the fresh [(name, cid)] pairs. Component names
    must not collide with live cubicles ({!Types.Error} from the
    monitor if they do). *)

val unload : built -> string list -> unit
(** Tear the named components down: drop their guard entries, then
    {!Monitor.destroy_cubicle} each (exports unregistered, pages
    scrubbed and released, key and cid recycled). The names must not be
    executing at the time of the call. *)
