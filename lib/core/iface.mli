(** Declarative interface summaries for the CubiCheck static plane.

    CubicleOS components are OCaml closures in this simulation, so a
    static analyzer cannot decompile them; instead each component ships
    a small {e interface summary} alongside its code — the moral
    equivalent of the [exportsyms.uk] metadata the real build system
    already consumes (paper §5.2), extended with the facts the isolation
    invariants depend on: which pointer arguments each export passes
    across cubicle boundaries, which windows it creates, grants, opens
    and tears down, and which arguments callees dereference.

    The summary language is deliberately tiny: straight-line statements
    plus [Branch] (alternative paths, analysed as a join) and [Loop]
    (body may run zero or more times). CubiCheck's static passes consume
    this IR; the replay plane then validates the summaries against the
    traced behaviour, so a stale or wrong summary surfaces as a dynamic
    finding rather than silent unsoundness. *)

(** A buffer as seen from inside one export: either the [i]-th argument
    the caller passed in, or a named local/long-lived buffer of the
    component itself. *)
type buf = Param of int | Local of string

type stmt =
  | Alloc of { buf : string; bytes : int }
      (** Names a component-local buffer of [bytes] bytes ([malloc],
          [alloc_pages], or a static carve-out). *)
  | Call of { sym : string; ptr_args : (int * buf * int) list }
      (** Cross-component call through the symbol table. [ptr_args]
          lists pointer-carrying argument positions: [(idx, buf, bytes)]
          says argument [idx] points at [buf] and the callee may touch
          [bytes] bytes through it (0 = the buffer's declared size). *)
  | Direct_call of { sym : string }
      (** An escape hatch: control transfer that does {e not} go through
          the trampoline/symbol table. Always flagged by CubiCheck. *)
  | Window_add of { win : string; buf : buf; bytes : int; standing : bool; rw : bool }
      (** Grant [bytes] bytes of [buf] through window [win]. [standing]
          marks a deliberately permanent grant (e.g. a registration-time
          staging buffer) the leak pass must not report. [rw] is the
          grant permission: [false] declares a read-only grant
          ([Api.window_add ~perm:Window.R]) — the coverage pass flags
          writes reachable through it, and the leak pass reports R-only
          leaks one severity below RW leaks. *)
  | Window_remove of { win : string; buf : buf }
  | Window_open of { win : string; peer : string }
      (** [peer] is a component name, or ["*"] for a grantee resolved
          dynamically (callback registration). *)
  | Window_forward of { win : string; peer : string }
      (** Grant-and-forward: [win] — already open for this component or
          opened by it — is extended to [peer] further down the call
          chain ({!Cubicle.Api.window_forward}). The coverage pass
          treats it exactly like {!Window_open}. *)
  | Window_close of { win : string; peer : string }
  | Window_close_all of { win : string }
  | Window_destroy of { win : string }
  | Branch of stmt list list
      (** Alternative paths: coverage facts must hold on {e all} arms
          (must-analysis), leak facts on {e any} arm (may-analysis). *)
  | Loop of stmt list  (** Body executes zero or more times. *)

type fundecl = {
  fd_sym : string;  (** exported symbol this summary describes *)
  fd_derefs : int list;
      (** argument positions this export dereferences (reads or writes
          through) — what turns a caller's integer into a {e pointer}
          obligation *)
  fd_writes : int list;
      (** the subset of {!fd_derefs} this export {e writes} through —
          the per-pointer-arg access mode the permission-aware coverage
          pass checks against grant permissions. Positions listed here
          but not in [fd_derefs] are still treated as dereferenced. *)
  fd_body : stmt list;
}

type t = fundecl list
(** One component's summaries. An export with no summary is assumed to
    neither dereference arguments nor perform window/call activity —
    CubiCheck treats missing summaries as an explicit soundness caveat
    (see DESIGN.md). *)

val fundecl : ?derefs:int list -> ?writes:int list -> string -> stmt list -> fundecl
(** [fundecl ~derefs ~writes sym body]; [writes] (default none) lists
    the argument positions written through. *)

val pp_buf : Format.formatter -> buf -> unit
val pp_stmt : Format.formatter -> stmt -> unit
