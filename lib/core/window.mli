(** Window descriptors: user-managed, discretionary ACLs for memory.

    Each cubicle has three window descriptor arrays — for global, stack
    and heap data (paper §5.3). A descriptor holds a set of memory
    ranges owned by the cubicle and a bitmask of cubicles the window is
    currently open for. Window 0 is implicit (a cubicle always accesses
    its own memory) and is not represented here.

    The monitor's trap-and-map handler looks up the faulting page in a
    per-table page index (standing sendfile grants make the ACL lookup
    hot); the result — including the charged "descriptors inspected"
    count — is bit-identical to the paper's linear search through the
    descriptor array for the faulting page's class, which is kept as
    {!search_linear} for differential testing. *)

type perm = R | RW
(** A grant's permission. [R] lets the peer read the range; [RW] also
    lets it write. Permission lives on the range, not the window, so
    one window can mix read-only staging ranges with writable data
    ranges. There is no write-only or exec grant: windows share data,
    and exec stays forbidden on foreign pages (paper §5.4). *)

type access = Read | Write
(** What a peer is trying to do through the window. *)

val perm_allows : perm -> access -> bool
(** The permission lattice: [RW] allows everything, [R] allows only
    [Read]. *)

type range = { ptr : int; size : int; mutable perm : perm }

type t = private {
  wid : Types.wid;
  owner : Types.cid;
  klass : Mm.Page_meta.kind;  (** which descriptor array it lives in *)
  mutable ranges : range list;
  mutable opened : Bitset.t;
  mutable alive : bool;
  mutable dedicated_key : int option;
      (** the window's own MPK tag, when the deployment opted into
          ERIM/Hodor-style window-specific tags (paper §5.6/§8) *)
}

type table
(** The three per-cubicle descriptor arrays plus wid allocation. *)

val create_table : owner:Types.cid -> ncubicles:int -> table
val owner : table -> Types.cid

val init : table -> klass:Mm.Page_meta.kind -> t
(** [cubicle_window_init]: fresh empty window in the array for
    [klass]. Raises {!Types.Error} when that descriptor array is full
    (fixed capacity, extended on request via {!extend} — paper §5.3). *)

val capacity : table -> Mm.Page_meta.kind -> int

val extend : table -> Mm.Page_meta.kind -> unit
(** Double the capacity of one descriptor array. *)

val find : table -> Types.wid -> t
(** Raises {!Types.Error} for an unknown or destroyed wid. *)

val add_range : ?perm:perm -> table -> t -> ptr:int -> size:int -> unit
(** Adds a grant and enters its pages into the table's page index.
    [perm] defaults to [RW] (the paper's all-or-nothing grant). *)

val downgrade_range : t -> ptr:int -> unit
(** Downgrade the (newest) grant rooted at [ptr] to [R] in place.
    Downgrading is always safe for the peer — it can only lose write
    access; widening R back to RW is deliberately not provided (the
    owner re-grants instead, so a widening is always a visible window
    op). Raises {!Types.Error} if no range starts at [ptr]. *)

val remove_range : table -> t -> ptr:int -> unit
(** Removes exactly one range starting at [ptr] (the most recently
    added, if several share a base) and unindexes any page no other
    range of the window still touches. Raises {!Types.Error} if no
    range starts at [ptr]. *)

val open_for : t -> Types.cid -> unit
val close_for : t -> Types.cid -> unit
val close_all : t -> unit
val destroy : table -> t -> unit

val is_open_for : t -> Types.cid -> bool
val contains : t -> int -> bool
(** Whether any range of the window contains the address. Window checks
    operate at byte granularity here; the {e enforcement} is per page
    (the monitor retags whole pages), which is why the paper tells
    developers to align shared structures. *)

val covered_prefix : ?access:access -> t -> ptr:int -> size:int -> int
(** How many bytes of the span [\[ptr, ptr+size)] are covered by the
    window's ranges, starting at [ptr] — possibly stitched together
    from several grants. A partially covering grant returns the exact
    byte offset at which a peer's access would fault at runtime. Only
    ranges allowing [access] (default [Read]) participate: a [Write]
    span must be stitched entirely from [RW] grants. *)

val covers : ?access:access -> t -> ptr:int -> size:int -> bool
(** Explicit size check on overlap: the {e whole} span is granted, not
    merely its first byte. The runtime's trap-and-map only ever tests
    single faulting addresses, so a too-short grant used to surface as
    a fault halfway through a peer's copy; CubiCheck's coverage pass
    and this predicate make the full-span check explicit. [access]
    defaults to [Read]. *)

val writable : t -> addr:int -> bool
(** Whether a write to [addr] through this window is backed by some
    [RW] grant — the fault path's permission check. {!contains} stays
    access-agnostic so an R-only write fault is still {e found} (and
    its descriptor walk priced) before being rejected. *)

val search : table -> klass:Mm.Page_meta.kind -> addr:int -> (t * int) option
(** Page-indexed lookup of a live window containing [addr]; also
    returns the number of descriptors a linear scan would have
    inspected so the monitor can charge the same search cost. The
    result is bit-identical to {!search_linear}. *)

val search_linear : table -> klass:Mm.Page_meta.kind -> addr:int -> (t * int) option
(** The original linear search of one descriptor array — the oracle
    {!search} is differentially tested against. *)

val set_dedicated_key : t -> int option -> unit

val live_windows : table -> t list
val count : table -> int
