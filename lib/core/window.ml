type range = { ptr : int; size : int }

type t = {
  wid : Types.wid;
  owner : Types.cid;
  klass : Mm.Page_meta.kind;
  mutable ranges : range list;
  mutable opened : Bitset.t;
  mutable alive : bool;
  mutable dedicated_key : int option;
}

type table = {
  tbl_owner : Types.cid;
  ncubicles : int;
  mutable next_wid : int;
  (* One descriptor array per data class, as in the paper; each has a
     fixed capacity that the monitor extends on request (§5.3: "if a
     window descriptor array runs out of free entries, the user code
     asks the monitor to extend it"). *)
  mutable global_arr : t list;
  mutable stack_arr : t list;
  mutable heap_arr : t list;
  mutable code_arr : t list;  (* unused in practice; completeness *)
  mutable global_cap : int;
  mutable stack_cap : int;
  mutable heap_cap : int;
  mutable code_cap : int;
}

let initial_capacity = 8

let create_table ~owner ~ncubicles =
  {
    tbl_owner = owner;
    ncubicles;
    next_wid = 1;
    global_arr = [];
    stack_arr = [];
    heap_arr = [];
    code_arr = [];
    global_cap = initial_capacity;
    stack_cap = initial_capacity;
    heap_cap = initial_capacity;
    code_cap = initial_capacity;
  }

let owner t = t.tbl_owner

let arr_of table (klass : Mm.Page_meta.kind) =
  match klass with
  | Mm.Page_meta.Global -> table.global_arr
  | Mm.Page_meta.Stack -> table.stack_arr
  | Mm.Page_meta.Heap -> table.heap_arr
  | Mm.Page_meta.Code -> table.code_arr

let set_arr table (klass : Mm.Page_meta.kind) v =
  match klass with
  | Mm.Page_meta.Global -> table.global_arr <- v
  | Mm.Page_meta.Stack -> table.stack_arr <- v
  | Mm.Page_meta.Heap -> table.heap_arr <- v
  | Mm.Page_meta.Code -> table.code_arr <- v

let capacity table (klass : Mm.Page_meta.kind) =
  match klass with
  | Mm.Page_meta.Global -> table.global_cap
  | Mm.Page_meta.Stack -> table.stack_cap
  | Mm.Page_meta.Heap -> table.heap_cap
  | Mm.Page_meta.Code -> table.code_cap

let extend table (klass : Mm.Page_meta.kind) =
  match klass with
  | Mm.Page_meta.Global -> table.global_cap <- 2 * table.global_cap
  | Mm.Page_meta.Stack -> table.stack_cap <- 2 * table.stack_cap
  | Mm.Page_meta.Heap -> table.heap_cap <- 2 * table.heap_cap
  | Mm.Page_meta.Code -> table.code_cap <- 2 * table.code_cap

let init table ~klass =
  if List.length (arr_of table klass) >= capacity table klass then
    Types.error
      "cubicle %d: %s window descriptor array is full (%d entries); extend it first"
      table.tbl_owner
      (Mm.Page_meta.kind_to_string klass)
      (capacity table klass);
  let w =
    {
      wid = table.next_wid;
      owner = table.tbl_owner;
      klass;
      ranges = [];
      opened = Bitset.empty table.ncubicles;
      alive = true;
      dedicated_key = None;
    }
  in
  table.next_wid <- table.next_wid + 1;
  set_arr table klass (w :: arr_of table klass);
  w

let all table = table.global_arr @ table.stack_arr @ table.heap_arr @ table.code_arr

let find table wid =
  match List.find_opt (fun w -> w.wid = wid && w.alive) (all table) with
  | Some w -> w
  | None -> Types.error "window %d not found in cubicle %d" wid table.tbl_owner

let check_alive w = if not w.alive then Types.error "window %d was destroyed" w.wid

let add_range w ~ptr ~size =
  check_alive w;
  if size <= 0 then Types.error "window %d: non-positive range size %d" w.wid size;
  w.ranges <- { ptr; size } :: w.ranges

let remove_range w ~ptr =
  check_alive w;
  (* Exactly one range per remove: two add_range calls with the same
     base (and possibly different sizes) are two grants, and a single
     remove must not revoke both. *)
  let rec drop_one = function
    | [] -> Types.error "window %d: no range starts at 0x%x" w.wid ptr
    | r :: rest when r.ptr = ptr -> rest
    | r :: rest -> r :: drop_one rest
  in
  w.ranges <- drop_one w.ranges

let open_for w cid =
  check_alive w;
  Bitset.add w.opened cid

let close_for w cid =
  check_alive w;
  Bitset.remove w.opened cid

let close_all w =
  check_alive w;
  Bitset.clear w.opened

let destroy table w =
  check_alive w;
  w.alive <- false;
  w.ranges <- [];
  Bitset.clear w.opened;
  set_arr table w.klass (List.filter (fun w' -> w'.wid <> w.wid) (arr_of table w.klass))

let is_open_for w cid = w.alive && Bitset.mem w.opened cid

let contains w addr =
  w.alive && List.exists (fun r -> addr >= r.ptr && addr < r.ptr + r.size) w.ranges

(* Byte-exact span coverage: walk forward from [ptr], at each position
   jumping to the end of any range containing it, until no range makes
   progress. Handles spans stitched together from several grants. *)
let covered_prefix w ~ptr ~size =
  if (not w.alive) || size <= 0 then 0
  else begin
    let pos = ref ptr and limit = ptr + size in
    let progressed = ref true in
    while !pos < limit && !progressed do
      progressed := false;
      List.iter
        (fun r ->
          if !pos >= r.ptr && !pos < r.ptr + r.size then begin
            pos := min limit (r.ptr + r.size);
            progressed := true
          end)
        w.ranges
    done;
    !pos - ptr
  end

let covers w ~ptr ~size = size > 0 && covered_prefix w ~ptr ~size >= size

let search table ~klass ~addr =
  let rec scan inspected = function
    | [] -> None
    | w :: rest ->
        if contains w addr then Some (w, inspected + 1) else scan (inspected + 1) rest
  in
  scan 0 (arr_of table klass)

let set_dedicated_key w k =
  check_alive w;
  w.dedicated_key <- k

let live_windows table = List.filter (fun w -> w.alive) (all table)
let count table = List.length (live_windows table)
