(* A grant's permission: the paper's windows are all-or-nothing, but
   least-privilege compartmentalization (BULKHEAD-style) wants the
   owner to say "this peer may read, not write". [R] vs [RW] lives on
   the range, not the window, so one window can mix read-only staging
   ranges with writable data ranges. *)
type perm = R | RW

type access = Read | Write

let perm_allows p (a : access) =
  match (p, a) with RW, _ -> true | R, Read -> true | R, Write -> false

type range = { ptr : int; size : int; mutable perm : perm }

type t = {
  wid : Types.wid;
  owner : Types.cid;
  klass : Mm.Page_meta.kind;
  mutable ranges : range list;
  mutable opened : Bitset.t;
  mutable alive : bool;
  mutable dedicated_key : int option;
}

type table = {
  tbl_owner : Types.cid;
  ncubicles : int;
  mutable next_wid : int;
  (* One descriptor array per data class, as in the paper; each has a
     fixed capacity that the monitor extends on request (§5.3: "if a
     window descriptor array runs out of free entries, the user code
     asks the monitor to extend it"). *)
  mutable global_arr : t list;
  mutable stack_arr : t list;
  mutable heap_arr : t list;
  mutable code_arr : t list;  (* unused in practice; completeness *)
  mutable global_cap : int;
  mutable stack_cap : int;
  mutable heap_cap : int;
  mutable code_cap : int;
  (* Page-indexed ACL lookup: (class, page) -> windows with a range
     touching that page. Standing sendfile grants make the fault-path
     lookup hot; the index replaces the linear array scan while
     charging exactly what the scan would have (the inspected count is
     recomputed as the winner's array position). *)
  index : (Mm.Page_meta.kind * int, t list ref) Hashtbl.t;
}

let initial_capacity = 8

let create_table ~owner ~ncubicles =
  {
    tbl_owner = owner;
    ncubicles;
    next_wid = 1;
    global_arr = [];
    stack_arr = [];
    heap_arr = [];
    code_arr = [];
    global_cap = initial_capacity;
    stack_cap = initial_capacity;
    heap_cap = initial_capacity;
    code_cap = initial_capacity;
    index = Hashtbl.create 64;
  }

let owner t = t.tbl_owner

let arr_of table (klass : Mm.Page_meta.kind) =
  match klass with
  | Mm.Page_meta.Global -> table.global_arr
  | Mm.Page_meta.Stack -> table.stack_arr
  | Mm.Page_meta.Heap -> table.heap_arr
  | Mm.Page_meta.Code -> table.code_arr

let set_arr table (klass : Mm.Page_meta.kind) v =
  match klass with
  | Mm.Page_meta.Global -> table.global_arr <- v
  | Mm.Page_meta.Stack -> table.stack_arr <- v
  | Mm.Page_meta.Heap -> table.heap_arr <- v
  | Mm.Page_meta.Code -> table.code_arr <- v

let capacity table (klass : Mm.Page_meta.kind) =
  match klass with
  | Mm.Page_meta.Global -> table.global_cap
  | Mm.Page_meta.Stack -> table.stack_cap
  | Mm.Page_meta.Heap -> table.heap_cap
  | Mm.Page_meta.Code -> table.code_cap

let extend table (klass : Mm.Page_meta.kind) =
  match klass with
  | Mm.Page_meta.Global -> table.global_cap <- 2 * table.global_cap
  | Mm.Page_meta.Stack -> table.stack_cap <- 2 * table.stack_cap
  | Mm.Page_meta.Heap -> table.heap_cap <- 2 * table.heap_cap
  | Mm.Page_meta.Code -> table.code_cap <- 2 * table.code_cap

let init table ~klass =
  if List.length (arr_of table klass) >= capacity table klass then
    Types.error
      "cubicle %d: %s window descriptor array is full (%d entries); extend it first"
      table.tbl_owner
      (Mm.Page_meta.kind_to_string klass)
      (capacity table klass);
  let w =
    {
      wid = table.next_wid;
      owner = table.tbl_owner;
      klass;
      ranges = [];
      opened = Bitset.empty table.ncubicles;
      alive = true;
      dedicated_key = None;
    }
  in
  table.next_wid <- table.next_wid + 1;
  set_arr table klass (w :: arr_of table klass);
  w

let all table = table.global_arr @ table.stack_arr @ table.heap_arr @ table.code_arr

let find table wid =
  match List.find_opt (fun w -> w.wid = wid && w.alive) (all table) with
  | Some w -> w
  | None -> Types.error "window %d not found in cubicle %d" wid table.tbl_owner

let check_alive w = if not w.alive then Types.error "window %d was destroyed" w.wid

let range_touches_page r p =
  Hw.Addr.page_of r.ptr <= p && p <= Hw.Addr.page_of (r.ptr + r.size - 1)

let index_range table w r =
  for p = Hw.Addr.page_of r.ptr to Hw.Addr.page_of (r.ptr + r.size - 1) do
    let key = (w.klass, p) in
    match Hashtbl.find_opt table.index key with
    | Some bucket -> if not (List.memq w !bucket) then bucket := w :: !bucket
    | None -> Hashtbl.replace table.index key (ref [ w ])
  done

(* Drop [w] from the bucket of every page of [r] that no remaining
   range of [w] still touches. *)
let unindex_range table w r =
  for p = Hw.Addr.page_of r.ptr to Hw.Addr.page_of (r.ptr + r.size - 1) do
    if not (List.exists (fun r' -> range_touches_page r' p) w.ranges) then begin
      let key = (w.klass, p) in
      match Hashtbl.find_opt table.index key with
      | None -> ()
      | Some bucket -> (
          bucket := List.filter (fun w' -> w' != w) !bucket;
          match !bucket with [] -> Hashtbl.remove table.index key | _ -> ())
    end
  done

let add_range ?(perm = RW) table w ~ptr ~size =
  check_alive w;
  if size <= 0 then Types.error "window %d: non-positive range size %d" w.wid size;
  let r = { ptr; size; perm } in
  w.ranges <- r :: w.ranges;
  index_range table w r

(* In-place permission downgrade RW -> R of the (newest) grant rooted
   at [ptr]. Downgrading is always safe for the peer (it can only lose
   write access); upgrading R -> RW is deliberately not provided — the
   owner re-grants instead, so a widening is always a visible,
   auditable window op. The page index is untouched: the range still
   spans the same pages. *)
let downgrade_range w ~ptr =
  check_alive w;
  let rec first = function
    | [] -> Types.error "window %d: no range starts at 0x%x" w.wid ptr
    | r :: _ when r.ptr = ptr -> r.perm <- R
    | _ :: rest -> first rest
  in
  first w.ranges

let remove_range table w ~ptr =
  check_alive w;
  (* Exactly one range per remove: two add_range calls with the same
     base (and possibly different sizes) are two grants, and a single
     remove must not revoke both. *)
  let removed = ref None in
  let rec drop_one = function
    | [] -> Types.error "window %d: no range starts at 0x%x" w.wid ptr
    | r :: rest when r.ptr = ptr ->
        removed := Some r;
        rest
    | r :: rest -> r :: drop_one rest
  in
  w.ranges <- drop_one w.ranges;
  match !removed with None -> () | Some r -> unindex_range table w r

let open_for w cid =
  check_alive w;
  Bitset.add w.opened cid

let close_for w cid =
  check_alive w;
  Bitset.remove w.opened cid

let close_all w =
  check_alive w;
  Bitset.clear w.opened

let destroy table w =
  check_alive w;
  let old_ranges = w.ranges in
  w.alive <- false;
  w.ranges <- [];
  Bitset.clear w.opened;
  List.iter (fun r -> unindex_range table w r) old_ranges;
  set_arr table w.klass (List.filter (fun w' -> w'.wid <> w.wid) (arr_of table w.klass))

let is_open_for w cid = w.alive && Bitset.mem w.opened cid

let contains w addr =
  w.alive && List.exists (fun r -> addr >= r.ptr && addr < r.ptr + r.size) w.ranges

(* Byte-exact span coverage: walk forward from [ptr], at each position
   jumping to the end of any range containing it, until no range makes
   progress. Handles spans stitched together from several grants. Only
   ranges whose permission allows [access] participate — a Write span
   must be stitched entirely from RW grants; an R hole breaks it. *)
let covered_prefix ?(access = Read) w ~ptr ~size =
  if (not w.alive) || size <= 0 then 0
  else begin
    let pos = ref ptr and limit = ptr + size in
    let progressed = ref true in
    while !pos < limit && !progressed do
      progressed := false;
      List.iter
        (fun r ->
          if perm_allows r.perm access && !pos >= r.ptr && !pos < r.ptr + r.size then begin
            pos := min limit (r.ptr + r.size);
            progressed := true
          end)
        w.ranges
    done;
    !pos - ptr
  end

let covers ?(access = Read) w ~ptr ~size =
  size > 0 && covered_prefix ~access w ~ptr ~size >= size

(* The fault path's permission check: is a write to [addr] through this
   window backed by some RW grant? ([contains] stays access-agnostic —
   the search must still find the window so the denial is priced like
   the paper's Key_perm fault: descriptor walk charged, then reject.) *)
let writable w ~addr =
  w.alive
  && List.exists (fun r -> r.perm = RW && addr >= r.ptr && addr < r.ptr + r.size) w.ranges

(* Reference linear scan of the descriptor array (the paper's §5.3
   step ❸). Kept as the oracle the page index must agree with. *)
let search_linear table ~klass ~addr =
  let rec scan inspected = function
    | [] -> None
    | w :: rest ->
        if contains w addr then Some (w, inspected + 1) else scan (inspected + 1) rest
  in
  scan 0 (arr_of table klass)

(* Page-indexed lookup, bit-identical to [search_linear]: descriptor
   arrays are newest-first with strictly descending (never reused)
   wids, so the linear scan's winner is the containing window with the
   largest wid, and the charged "inspected" count is that window's
   1-based array position. *)
let search table ~klass ~addr =
  match Hashtbl.find_opt table.index (klass, Hw.Addr.page_of addr) with
  | None -> None
  | Some bucket -> (
      match List.filter (fun w -> contains w addr) !bucket with
      | [] -> None
      | first :: rest ->
          let w =
            List.fold_left (fun best w' -> if w'.wid > best.wid then w' else best) first rest
          in
          let rec pos i = function
            | [] -> Types.error "window index: wid %d missing from its array" w.wid
            | w' :: tl -> if w' == w then i else pos (i + 1) tl
          in
          Some (w, pos 1 (arr_of table klass)))

let set_dedicated_key w k =
  check_alive w;
  w.dedicated_key <- k

let live_windows table = List.filter (fun w -> w.alive) (all table)
let count table = List.length (live_windows table)
