type component = {
  name : string;
  exportsyms : string list;
  code_ops : int;
  data_bytes : int;
  heap_pages : int;
  stack_pages : int;
  exports : Monitor.export_spec list;
  init : Monitor.ctx -> unit;
  iface : Iface.t;
}

let component ?exportsyms ?(code_ops = 256) ?(data_bytes = 256) ?(heap_pages = 16)
    ?(stack_pages = 4) ?(init = fun _ -> ()) ?(exports = []) ?(iface = []) name =
  let exportsyms =
    match exportsyms with
    | Some syms -> syms
    | None -> List.map (fun (e : Monitor.export_spec) -> e.sym) exports
  in
  { name; exportsyms; code_ops; data_bytes; heap_pages; stack_pages; exports; init; iface }

let merge name comps =
  {
    name;
    exportsyms = List.concat_map (fun c -> c.exportsyms) comps;
    code_ops = List.fold_left (fun acc c -> acc + c.code_ops) 0 comps;
    data_bytes = List.fold_left (fun acc c -> acc + c.data_bytes) 0 comps;
    heap_pages = List.fold_left (fun acc c -> acc + c.heap_pages) 0 comps;
    stack_pages = List.fold_left (fun acc c -> max acc c.stack_pages) 1 comps;
    exports = List.concat_map (fun c -> c.exports) comps;
    init = (fun ctx -> List.iter (fun c -> c.init ctx) comps);
    iface = List.concat_map (fun c -> c.iface) comps;
  }

type built = {
  mon : Monitor.t;
  mutable cids : (string * Types.cid) list;
  trampolines : Trampoline.t;
  mutable ifaces : (string * Iface.t) list;
}

exception Undeclared_export of string * string

let check_exports c =
  List.iter
    (fun (e : Monitor.export_spec) ->
      if not (List.mem e.sym c.exportsyms) then raise (Undeclared_export (c.name, e.sym)))
    c.exports

let build mon comps =
  List.iter (fun (c, _) -> check_exports c) comps;
  let cids =
    List.map
      (fun (c, kind) ->
        let img =
          Loader.image_of_ops ~name:c.name ~data_bytes:c.data_bytes ~ops:c.code_ops ()
        in
        let loaded =
          Loader.load mon img ~kind ~heap_pages:c.heap_pages ~stack_pages:c.stack_pages
            ~exports:c.exports
        in
        (c.name, loaded.Loader.cid))
      comps
  in
  (* Trampolines cover every public symbol of isolated and trusted
     cubicles; shared-cubicle calls do not transit the monitor. *)
  let syms =
    List.concat_map
      (fun (c, kind) ->
        match kind with
        | Types.Isolated | Types.Trusted ->
            List.map (fun (e : Monitor.export_spec) -> e.sym) c.exports
        | Types.Shared -> [])
      comps
  in
  let trampolines = Trampoline.install mon ~syms in
  (* Initialisers run in declaration order, each entered as its own
     cubicle (the loader jumps to the component's init through a
     trampoline) — this is where callback tables get filled in. *)
  List.iter
    (fun (c, _) ->
      let cid = List.assoc c.name cids in
      Monitor.run_as mon cid (fun () -> c.init (Monitor.ctx_for mon cid)))
    comps;
  { mon; cids; trampolines; ifaces = List.map (fun (c, _) -> (c.name, c.iface)) comps }

let cid built name =
  match List.assoc_opt name built.cids with
  | Some c -> c
  | None -> Types.error "builder: unknown component %s" name

(* Dynamic spawn: the runtime counterpart of [build] — load more
   components into the running system, extend the trampoline table and
   run the newcomers' initialisers. [callers] names already-live
   cubicles that will call into the new exports; they receive guard
   entries for the fresh symbols alongside the spawned cubicles. *)
let spawn ?(callers = []) built comps =
  List.iter (fun (c, _) -> check_exports c) comps;
  let fresh =
    List.map
      (fun (c, kind) ->
        let img =
          Loader.image_of_ops ~name:c.name ~data_bytes:c.data_bytes ~ops:c.code_ops ()
        in
        let loaded =
          Loader.load built.mon img ~kind ~heap_pages:c.heap_pages
            ~stack_pages:c.stack_pages ~exports:c.exports
        in
        (c.name, loaded.Loader.cid))
      comps
  in
  let syms =
    List.concat_map
      (fun (c, kind) ->
        match kind with
        | Types.Isolated | Types.Trusted ->
            List.map (fun (e : Monitor.export_spec) -> e.sym) c.exports
        | Types.Shared -> [])
      comps
  in
  (* Live callers only need guard entries for the new symbols (they
     already hold the rest); the freshly spawned cubicles must be able
     to guard-call every live export, not just the ones introduced in
     their own batch — mirror [build], which covers the full thunk
     table for every isolated cubicle. *)
  Trampoline.extend built.trampolines ~syms ~cids:callers;
  Trampoline.extend built.trampolines
    ~syms:(Trampoline.syms built.trampolines)
    ~cids:(List.map snd fresh);
  built.cids <- built.cids @ fresh;
  built.ifaces <- built.ifaces @ List.map (fun (c, _) -> (c.name, c.iface)) comps;
  List.iter
    (fun (c, _) ->
      let cid = List.assoc c.name fresh in
      Monitor.run_as built.mon cid (fun () -> c.init (Monitor.ctx_for built.mon cid)))
    comps;
  fresh

let unload built names =
  List.iter
    (fun name ->
      let c = cid built name in
      Trampoline.forget_cubicle built.trampolines c;
      Monitor.destroy_cubicle built.mon c;
      built.cids <- List.filter (fun (n, _) -> n <> name) built.cids;
      built.ifaces <- List.filter (fun (n, _) -> n <> name) built.ifaces)
    names
