(** The CubicleOS memory monitor: the trusted cubicle that bootstraps
    the system, owns all MPK tags, authorises memory accesses across
    cubicles (lazy trap-and-map, §5.3) and implements the cross-cubicle
    call path used by the trampolines (§5.5).

    The monitor is cubicle 0. Shared cubicles' pages carry a single
    dedicated key that every thread's PKRU allows, so calls into them
    never transit the monitor. *)

type t

type ctx = { mon : t; self : Types.cid; caller : Types.cid; cpu : Hw.Cpu.t }
(** The capability handed to component code: its own identity, the
    identity of the cubicle that called into it (trusted information
    recorded by the trampoline — used e.g. by ALLOC to assign pages to
    its caller), and the machine for (checked) memory access. All
    CubicleOS services are reached through {!Api} functions taking a
    [ctx]. *)

type fn = ctx -> int array -> int
(** Component function: arguments and result model machine registers
    (addresses and scalars in simulated memory). *)

type export_spec = { sym : string; fn : fn; stack_bytes : int }
(** [stack_bytes] is the size of by-stack arguments the trampoline must
    copy across per-cubicle stacks (from the signature parsed by the
    builder). *)

val monitor_cid : Types.cid
val shared_key : int

type policy = {
  mapping : [ `Lazy_trap | `Eager_on_open ];
  revocation : [ `Causal | `Eager_revoke ];
}
(** Design-space knobs from the paper's §5.6 discussion, for ablation:
    CubicleOS proper is lazy trap-and-map with causal (lazy)
    revocation. [`Eager_on_open] retags every page of a window when it
    opens; [`Eager_revoke] retags pages back to the owner on close. *)

val default_policy : policy
(** Trap-and-map + causal consistency (the paper's design). *)

val create :
  ?mem_bytes:int ->
  ?ncores:int ->
  ?model:Hw.Cost.model ->
  ?policy:policy ->
  ?virtualise:bool ->
  protection:Types.protection ->
  unit ->
  t
(** Builds the machine (with [ncores] simulated cores, default 1),
    reserves monitor memory, installs the fault handler, and enables
    MPK (and the tag-wide no-execute hardware modification) when
    [protection >= Mpk]. *)

val cpu : t -> Hw.Cpu.t
val cost : t -> Hw.Cost.t

val bus : t -> Telemetry.Bus.t
(** The machine's telemetry bus ({!Hw.Cpu.bus}). The monitor emits
    retag / window / rejected-call / trampoline call-return events on
    it; enable [tracing] to capture them in the ring. *)

val stats : t -> Stats.t
(** Runtime counters — a view over {!bus}; TLB counters read live from
    the machine's {!Hw.Tlb} (nothing to sync, cannot go stale). *)

val protection : t -> Types.protection
val meta : t -> Mm.Page_meta.t
val current : t -> Types.cid

(** {1 Cubicle management (loader/TCB only)} *)

val create_cubicle :
  t -> name:string -> kind:Types.kind -> heap_pages:int -> stack_pages:int -> Types.cid
(** Allocates a cubicle id, an MPK key, a stack and an initial heap.
    Raises {!Types.Error} when the 15 hardware tags are exhausted,
    unless the monitor was created with [~virtualise:true] (libmpk-style
    tag virtualisation, the paper's §8 suggestion), in which case
    cubicles receive virtual keys mapped to physical ones on demand. *)

val ncubicles : t -> int
(** Number of {e live} cubicles (monitor included). After a
    {!destroy_cubicle} the cid space may have holes, so this is not an
    iteration bound — use {!live_cids}. *)

val live_cids : t -> Types.cid list
(** All live cubicle ids, ascending (always starts with the monitor). *)

val free_page_count : t -> int
(** Free pages in the system allocator — the leak-regression probe:
    spawn/teardown cycles (including failed spawns) must return it to
    its starting value. *)

val keymux : t -> Hw.Keymux.t option
(** The key-virtualisation plane, present iff the monitor was created
    with [~virtualise:true]. *)

val cubicle_name : t -> Types.cid -> string
val cubicle_kind : t -> Types.cid -> Types.kind
val cubicle_key : t -> Types.cid -> int
(** The cubicle's {e physical} MPK key (with [virtualise], resolving a
    virtual key to a physical one on demand, possibly evicting). *)

val cubicle_raw_key : t -> Types.cid -> int
(** The cubicle's stored key — virtual under [virtualise] — without
    faulting it in or touching LRU state (contrast {!cubicle_key}). *)

val cubicle_heap_bytes : t -> Types.cid -> int
val stack_base : t -> Types.cid -> int
val lookup_cubicle : t -> string -> Types.cid
(** By name; raises {!Types.Error} if unknown. *)

val cubicle_exists : t -> string -> bool
val windows_of : t -> Types.cid -> Window.table
val ctx_for : t -> Types.cid -> ctx

val alloc_owned_pages :
  t -> Types.cid -> int -> kind:Mm.Page_meta.kind -> perm:Hw.Page_table.perm -> int
(** Loader/monitor primitive: map [n] fresh pages owned by the cubicle,
    tagged with its key. Returns the base address. *)

val register_exports : t -> Types.cid -> export_spec list -> unit
(** Raises {!Types.Error} on duplicate symbols (the system has one flat
    symbol namespace, as with Unikraft's exportsyms). *)

val exports_of : t -> Types.cid -> string list
val has_export : t -> string -> bool

(** {1 The cross-cubicle call path} *)

val call : t -> caller:Types.cid -> string -> int array -> int
(** Resolve [sym] and transfer control:
    - unknown symbol → {!Types.Error} (CFI: only registered public entry
      points can be reached);
    - shared cubicle → direct call with the caller's privileges;
    - isolated/trusted → trampoline: fixed cost, per-cubicle stack
      switch (+ copying [stack_bytes] of stack arguments), two PKRU
      writes when MPK is on, shadow-stack discipline for returns. *)

val run_as : t -> Types.cid -> (unit -> 'a) -> 'a
(** Enter a cubicle from the trusted boot path: set the current cubicle
    and narrow PKRU to its tags for the duration of [f] — how
    application main loops execute (every memory access inside [f] is
    checked against the cubicle's permissions). Nested cross-cubicle
    calls restore correctly. *)

(** {1 Memory services (reached via trampolines into ALLOC/monitor)} *)

val malloc : t -> Types.cid -> ?align:int -> int -> int
(** From the calling cubicle's own sub-allocator; the heap is grown
    with fresh pages from the system allocator on exhaustion. *)

val free : t -> Types.cid -> int -> unit
val alloc_pages : t -> Types.cid -> int -> kind:Mm.Page_meta.kind -> int
val free_pages : t -> Types.cid -> int -> unit

(** {1 Window management (Table 1; ownership enforced)} *)

val window_init : t -> Types.cid -> klass:Mm.Page_meta.kind -> Types.wid
(** Raises {!Types.Error} when the descriptor array for [klass] is full
    — call {!window_table_extend} first (paper §5.3). *)

val window_table_extend : t -> Types.cid -> klass:Mm.Page_meta.kind -> unit

val window_add :
  t -> Types.cid -> ?perm:Window.perm -> Types.wid -> ptr:int -> size:int -> unit
(** Checks that every page the range touches is owned by the caller and
    matches the window's data class. [perm] (default [RW]) is the
    grant's permission; an [R] grant lets peers read but makes a
    {e first-touch} write fault a priced rejection. (Under lazy
    trap-and-map a peer that read first holds the page at its own key,
    so its later writes never fault — the online race sink catches
    those.) *)

val window_remove : t -> Types.cid -> Types.wid -> ptr:int -> unit

val window_downgrade : t -> Types.cid -> Types.wid -> ptr:int -> unit
(** Downgrade the grant rooted at [ptr] to read-only in place (emits a
    [Downgrade] window event). Causal semantics: only the ACL narrows;
    stale RW-era mappings persist until the page migrates back. There
    is no upgrade — re-grant with {!window_add} instead, so widenings
    are always visible window ops. *)

val window_open : t -> Types.cid -> Types.wid -> Types.cid -> unit
val window_close : t -> Types.cid -> Types.wid -> Types.cid -> unit
val window_close_all : t -> Types.cid -> Types.wid -> unit
val window_destroy : t -> Types.cid -> Types.wid -> unit

val window_add_ranges :
  t -> Types.cid -> ?perm:Window.perm -> Types.wid -> (int * int) list -> unit
(** Batched {!window_add}: one monitor crossing amortised over a list
    of [(ptr, size)] grants, all carrying [perm] (default [RW]). Every
    range is validated before any is applied (atomic batch); one Add
    event is still emitted per range so replay mirrors and counters
    stay exact. Raises {!Types.Error} on an empty list. *)

val window_open_many : t -> Types.cid -> Types.wid -> Types.cid list -> unit
(** Batched {!window_open}: one monitor crossing amortised over a list
    of peers. All peers are validated before any open is applied. *)

val window_forward : t -> Types.cid -> owner:Types.cid -> Types.wid -> Types.cid -> unit
(** Grant-and-forward: the calling cubicle, which must already hold
    window [wid] of [owner] open for itself, extends the grant to a
    third cubicle further down the call chain (sendfile fast path). The
    Window event is emitted against the owner's window. *)

val window_grants :
  ?access:Window.access ->
  t ->
  Types.cid ->
  peer:Types.cid ->
  ptr:int ->
  size:int ->
  bool
(** Explicit byte-exact grant check: [cid] holds a live window open for
    [peer] whose ranges cover the whole [ptr, ptr+size) span (possibly
    stitched from several grants) with permission for [access] (default
    [Read]). The trap-and-map path only ever tests the single faulting
    address, so a too-short grant used to surface as a mid-copy fault;
    this is the full-span predicate the CubiCheck coverage pass and the
    regression tests rely on. *)

val observe_access : t -> addr:int -> len:int -> access:Telemetry.Event.access -> unit
(** Emit {!Telemetry.Event.Window_access} for each page of
    [addr..addr+len) owned by a cubicle other than the current one.
    Tracing-gated, cost-free, and silent for trusted cubicles; called
    by the {!Api} memory helpers so the replay plane can detect write
    races and use-after-close accesses that never fault. *)

(** {1 Introspection for tests and benchmarks} *)

val page_owner : t -> int -> Types.cid option
val retag_count : t -> int

val tag_evictions : t -> int
(** Physical-key evictions performed by tag virtualisation
    ([(Keymux.stats km).evictions]; 0 without [virtualise]). *)

val destroy_cubicle : t -> Types.cid -> unit
(** Unload a cubicle (the loader's [dlclose] counterpart): removes its
    exports from the symbol table, scrubs and releases all its pages,
    and returns its MPK key (virtual or physical) and its cid to the
    pools for reuse by a later spawn. Raises {!Types.Error} for the
    monitor or the currently executing cubicle. *)

(** {1 Window-specific tags (ablation; §5.6/§8)} *)

val window_open_dedicated : t -> Types.cid -> Types.wid -> Types.cid -> unit
(** Grant access through a dedicated MPK tag instead of trap-and-map:
    the window's pages are retagged once to a tag of their own, which
    both owner and grantee enable in PKRU — no faults on access, but
    one of the 16 keys is consumed per window ({!Types.Error} on
    exhaustion). *)

val window_close_dedicated : t -> Types.cid -> Types.wid -> Types.cid -> unit
(** Revoke a dedicated grant; when the last grantee goes, the tag is
    returned to the pool and the pages to their owner. *)

val dedicated_keys_in_use : t -> int
