(** The CubicleOS API available to untrusted component code (Table 1),
    plus the allocation primitives and checked memory helpers.

    Everything takes the component's {!Monitor.ctx}; ownership and
    isolation policies are enforced by the monitor. *)

type ctx = Monitor.ctx

(** {1 Table 1: window management} *)

val window_init : ctx -> klass:Mm.Page_meta.kind -> Types.wid
val window_table_extend : ctx -> klass:Mm.Page_meta.kind -> unit
val window_add : ctx -> ?perm:Window.perm -> Types.wid -> ptr:int -> size:int -> unit
(** Grant a range through the window, optionally read-only
    ([~perm:Window.R]; default [RW]). *)

val window_remove : ctx -> Types.wid -> ptr:int -> unit

val window_downgrade : ctx -> Types.wid -> ptr:int -> unit
(** Downgrade the grant rooted at [ptr] to read-only in place. Causal
    semantics (§5.6): only the ACL narrows — pages a peer already holds
    stay writable until they migrate back. No upgrade path; re-grant
    with {!window_add} to widen. *)

val window_open : ctx -> Types.wid -> Types.cid -> unit
val window_close : ctx -> Types.wid -> Types.cid -> unit
val window_close_all : ctx -> Types.wid -> unit
val window_destroy : ctx -> Types.wid -> unit

val window_add_ranges : ctx -> ?perm:Window.perm -> Types.wid -> (int * int) list -> unit
(** Batched [window_add] over a list of [(ptr, size)] grants: one
    monitor crossing, atomic validation, one Add event per range, all
    carrying [perm] (default [RW]). *)

val window_open_many : ctx -> Types.wid -> Types.cid list -> unit
(** Batched [window_open] over a list of peers. *)

val window_forward : ctx -> owner:Types.cid -> Types.wid -> Types.cid -> unit
(** Grant-and-forward: extend a window of [owner] — already open for
    the caller — to a third cubicle down the call chain (§5.6 nested
    chains, sendfile fast path). *)

(** {1 Cross-cubicle calls} *)

val call : ctx -> string -> int array -> int
(** Call an exported symbol through its trampoline. *)

val cid_of : ctx -> string -> Types.cid
(** Cubicle id of a component, for [window_open]. Cubicle ids are fixed
    at link time (paper §5.3). *)

val self : ctx -> Types.cid

(** {1 Allocation (trusted primitives)} *)

val malloc : ctx -> ?align:int -> int -> int
val free : ctx -> int -> unit
val alloc_pages : ctx -> int -> kind:Mm.Page_meta.kind -> int
val free_pages : ctx -> int -> unit

val malloc_page_aligned : ctx -> int -> int
(** Page-aligned heap block: used by components that share buffers via
    windows, to avoid unintended sharing of co-located data (§5.3). *)

(** {1 Checked memory access helpers} *)

val read_string : ctx -> int -> int -> string
val write_string : ctx -> int -> string -> unit
val read_bytes : ctx -> int -> int -> bytes
val write_bytes : ctx -> int -> bytes -> unit
val read_u8 : ctx -> int -> int
val write_u8 : ctx -> int -> int -> unit
val read_u16 : ctx -> int -> int
val write_u16 : ctx -> int -> int -> unit
val read_u32 : ctx -> int -> int
val write_u32 : ctx -> int -> int -> unit
val read_i64 : ctx -> int -> int64
val write_i64 : ctx -> int -> int64 -> unit
val memcpy : ctx -> dst:int -> src:int -> len:int -> unit
val memset : ctx -> int -> int -> char -> unit

(** {1 Window-specific tags (ablation)} *)

val window_open_dedicated : ctx -> Types.wid -> Types.cid -> unit
val window_close_dedicated : ctx -> Types.wid -> Types.cid -> unit
