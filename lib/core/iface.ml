type buf = Param of int | Local of string

type stmt =
  | Alloc of { buf : string; bytes : int }
  | Call of { sym : string; ptr_args : (int * buf * int) list }
  | Direct_call of { sym : string }
  | Window_add of { win : string; buf : buf; bytes : int; standing : bool; rw : bool }
  | Window_remove of { win : string; buf : buf }
  | Window_open of { win : string; peer : string }
  | Window_forward of { win : string; peer : string }
  | Window_close of { win : string; peer : string }
  | Window_close_all of { win : string }
  | Window_destroy of { win : string }
  | Branch of stmt list list
  | Loop of stmt list

type fundecl = {
  fd_sym : string;
  fd_derefs : int list;
  fd_writes : int list;
  fd_body : stmt list;
}

type t = fundecl list

let fundecl ?(derefs = []) ?(writes = []) sym body =
  { fd_sym = sym; fd_derefs = derefs; fd_writes = writes; fd_body = body }

let pp_buf ppf = function
  | Param i -> Format.fprintf ppf "arg%d" i
  | Local b -> Format.fprintf ppf "%s" b

let pp_stmt ppf = function
  | Alloc { buf; bytes } -> Format.fprintf ppf "%s = alloc(%d)" buf bytes
  | Call { sym; ptr_args } ->
      Format.fprintf ppf "call %s(%a)" sym
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (i, b, n) -> Format.fprintf ppf "#%d=%a[%d]" i pp_buf b n))
        ptr_args
  | Direct_call { sym } -> Format.fprintf ppf "direct_call %s" sym
  | Window_add { win; buf; bytes; standing; rw } ->
      Format.fprintf ppf "window_add %s <- %a[%d]%s%s" win pp_buf buf bytes
        (if rw then "" else " ro")
        (if standing then " (standing)" else "")
  | Window_remove { win; buf } -> Format.fprintf ppf "window_remove %s -> %a" win pp_buf buf
  | Window_open { win; peer } -> Format.fprintf ppf "window_open %s for %s" win peer
  | Window_forward { win; peer } ->
      Format.fprintf ppf "window_forward %s to %s" win peer
  | Window_close { win; peer } -> Format.fprintf ppf "window_close %s for %s" win peer
  | Window_close_all { win } -> Format.fprintf ppf "window_close_all %s" win
  | Window_destroy { win } -> Format.fprintf ppf "window_destroy %s" win
  | Branch arms ->
      Format.fprintf ppf "branch(%d arms)" (List.length arms)
  | Loop body -> Format.fprintf ppf "loop(%d stmts)" (List.length body)
