(* Stats is now a read-side view over the telemetry bus: the count
   sites feed Telemetry.Bus's always-on counter plane, and every getter
   here folds/delegates over it. TLB counters are read through the live
   Hw.Tlb.t instead of being synced in by the monitor (the old
   [set_tlb_counters] contract), so they can never go stale. *)

type t = { bus : Telemetry.Bus.t; tlb : Hw.Tlb.t option }
type snapshot = (Types.cid * Types.cid, int) Hashtbl.t

let of_bus ?tlb bus = { bus; tlb }
let create () = of_bus (Telemetry.Bus.create ())

let reset t =
  Telemetry.Bus.reset_counters t.bus;
  Option.iter Hw.Tlb.reset_counters t.tlb

let count_call t ~caller ~callee ~sym = Telemetry.Bus.count_call t.bus ~caller ~callee ~sym

let count_return t ~caller ~callee ~sym =
  Telemetry.Bus.count_return t.bus ~caller ~callee ~sym
let count_shared_call t ~caller ~sym = Telemetry.Bus.count_shared_call t.bus ~caller ~sym
let count_fault t = Telemetry.Bus.count_fault t.bus
let count_retag t = Telemetry.Bus.count_retag t.bus
let count_window_op t = Telemetry.Bus.count_window_op t.bus
let count_rejected t = Telemetry.Bus.count_rejected t.bus

let tlb_hits t = match t.tlb with Some tlb -> Hw.Tlb.hits tlb | None -> 0
let tlb_misses t = match t.tlb with Some tlb -> Hw.Tlb.misses tlb | None -> 0
let tlb_flushes t = match t.tlb with Some tlb -> Hw.Tlb.flushes tlb | None -> 0

let tlb_invalidations t =
  match t.tlb with Some tlb -> Hw.Tlb.invalidations tlb | None -> 0

let tlb_hit_rate t =
  let total = tlb_hits t + tlb_misses t in
  if total = 0 then 0. else float_of_int (tlb_hits t) /. float_of_int total

let calls_between t ~caller ~callee = Telemetry.Bus.calls_between t.bus ~caller ~callee
let calls_into t callee = Telemetry.Bus.calls_into t.bus callee
let calls_to_sym t sym = Telemetry.Bus.calls_to_sym t.bus sym
let total_calls t = Telemetry.Bus.total_calls t.bus
let shared_calls t = Telemetry.Bus.shared_calls t.bus
let faults t = Telemetry.Bus.faults t.bus
let retags t = Telemetry.Bus.retags t.bus
let window_ops t = Telemetry.Bus.window_ops t.bus
let rejected t = Telemetry.Bus.rejected t.bus
let edges t = Telemetry.Bus.edges t.bus
let snapshot t = Telemetry.Bus.snapshot_edges t.bus

let diff_edges t ~since =
  edges t
  |> List.filter_map (fun (e, n) ->
         let before = Option.value ~default:0 (Hashtbl.find_opt since e) in
         if n - before > 0 then Some (e, n - before) else None)
