(** Runtime counters used by the evaluation: cross-cubicle call counts
    per edge (Figures 5 and 8), trap-and-map activity, window
    operations.

    Since the telemetry refactor this is a read-side view over
    {!Telemetry.Bus}: the [count_*] functions feed the bus's always-on
    counter plane (and, when tracing is enabled, its event ring), and
    every getter folds over bus state. TLB counters are read live from
    the machine's {!Hw.Tlb} — there is no sync step and no way for them
    to go stale. *)

type t

val of_bus : ?tlb:Hw.Tlb.t -> Telemetry.Bus.t -> t
(** View over an existing bus (the monitor passes the machine's bus and
    TLB). Without [?tlb] the TLB getters return 0. *)

val create : unit -> t
(** Standalone stats over a private bus (tests, tools). *)

val reset : t -> unit

val count_call : t -> caller:Types.cid -> callee:Types.cid -> sym:string -> unit

val count_return : t -> caller:Types.cid -> callee:Types.cid -> sym:string -> unit
(** The return edge of {!count_call}: no counter is bumped (the call
    was already counted), but the bus's latency plane — and, when
    tracing, the event ring — see the return. *)

val count_shared_call : t -> caller:Types.cid -> sym:string -> unit
val count_fault : t -> unit
val count_retag : t -> unit
val count_window_op : t -> unit
val count_rejected : t -> unit
(** CFI / isolation violations that were caught. *)

val tlb_hits : t -> int
val tlb_misses : t -> int
val tlb_flushes : t -> int
val tlb_invalidations : t -> int

val tlb_hit_rate : t -> float
(** Hits over lookups, in [0,1]; 0 when the TLB was never consulted. *)

val calls_between : t -> caller:Types.cid -> callee:Types.cid -> int
val calls_into : t -> Types.cid -> int
val calls_to_sym : t -> string -> int
val total_calls : t -> int
val shared_calls : t -> int
val faults : t -> int
val retags : t -> int
val window_ops : t -> int
val rejected : t -> int

val edges : t -> ((Types.cid * Types.cid) * int) list
(** All (caller, callee) edges with their call counts, sorted by count
    descending — the annotations on the paper's Figures 5 and 8. *)

type snapshot

val snapshot : t -> snapshot
val diff_edges : t -> since:snapshot -> ((Types.cid * Types.cid) * int) list
(** Edge counts accumulated since the snapshot (the paper counts calls
    "during benchmark measurement time" for Fig. 5). *)
