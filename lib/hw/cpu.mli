(** The simulated machine: memory, page table, PKRU, fault delivery and
    cycle accounting.

    Every load/store performed by library OS components and applications
    goes through the checked accessors here, so MPK protection faults
    (and CubicleOS's trap-and-map resolution) are actually exercised.

    The machine models [ncores] simulated cores multiplexed onto one
    host thread: each core owns its own PKRU register and software TLB
    (as the real hardware does) while memory, page table and cycle
    accounting are shared. The SMP scheduler calls {!set_core} before
    every thread slice, swapping the architectural per-core state and
    routing cycle charges and events to that core's counters. With the
    default single core this is exactly the pre-SMP machine, matching
    Unikraft's model of user-level threads multiplexed onto one host
    thread (paper §8).

    A registered {e fault handler} (CubicleOS's monitor) is invoked on a
    protection violation; if it returns [true] the faulting access is
    retried once, otherwise {!Fault.Violation} is raised. *)

type t

type handler = t -> Fault.t -> bool

val create : ?mem_bytes:int -> ?ncores:int -> ?model:Cost.model -> unit -> t
(** [create ()] builds a machine with (default) 64 MiB of memory and one
    core, every page absent, every core's PKRU fully permissive, MPK
    checking off. Raises [Invalid_argument] for [ncores < 1]. *)

val ncores : t -> int

val core_id : t -> int
(** The currently executing core (0 until {!set_core} moves it). *)

val set_core : t -> int -> unit
(** Switch execution to core [c]: subsequent accesses check against that
    core's PKRU and TLB, cycle charges land on its counter
    ([Cost.set_core]) and events on its bus track ([Bus.set_core]).
    Free of simulated cycles — the scheduler models parallelism by
    interleaving slices, and wall-clock per-core time is read back from
    [Cost.core_cycles]. Raises [Invalid_argument] for an out-of-range
    core. *)

val shootdown_count : t -> int
(** TLB invalidations delivered to {e remote} cores: every page-table
    mutation invalidates the page on all cores (the shootdown
    protocol), and each non-local delivery counts here. Always 0 on a
    single-core machine. *)

val mem : t -> Phys_mem.t
val page_table : t -> Page_table.t
val cost : t -> Cost.t
val npages : t -> int

val bus : t -> Telemetry.Bus.t
(** The machine's telemetry bus. Created with the machine and clocked by
    {!Cost.cycles}, so event timestamps are simulated cycles. The CPU
    emits faults, PKRU writes and TLB activity; upper layers (monitor,
    scheduler, pager) emit their own events on the same bus. Tracing is
    off by default and never charges cycles: simulated cycle / fault /
    wrpkru counts are bit-identical with tracing on or off. *)

(** {1 Software TLB} — one per core; amortises the per-access
    permission walk, as real MPK hardware does through the TLB.
    Wall-clock only: simulated cycle counts, fault counts and wrpkru
    counts are identical with the TLB on or off. Invalidation is
    automatic: page-table mutations invalidate per page on {e every}
    core (cross-core shootdown, via {!Page_table.set_hook}); [wrpkru]
    flushes the writing core only; [set_mpk_enabled] and
    [set_exec_follows_access] flush all cores. *)

val tlb : t -> Tlb.t
(** The current core's TLB. *)

val tlb_enabled : t -> bool

val set_tlb_enabled : t -> bool -> unit
(** Applies to every core. Off forces every access down the full-walk
    slow path (used by the benchmark harness to measure the TLB's
    wall-clock effect). *)

val set_handler : t -> handler option -> unit

val mpk_enabled : t -> bool
val set_mpk_enabled : t -> bool -> unit

val exec_follows_access : t -> bool

val set_exec_follows_access : t -> bool -> unit
(** The paper's proposed hardware modification: when on, instruction
    fetch from a page whose key has access-disable set faults even if
    the page-table X bit is set (tag-wide no-execute; §5.5). *)

val pkru : t -> Pkru.t
(** The current core's PKRU register. *)

val wrpkru : t -> Pkru.t -> unit
(** Write the {e current core's} PKRU (the register is core-local, so
    this flushes only that core's TLB). Privileged from the
    simulation's point of view: only trusted CubicleOS code
    (trampolines, monitor) may call this; the loader's binary scan is
    what prevents untrusted components from reaching it. Charges the
    wrpkru cycle cost and counts invocations. *)

val wrpkru_count : t -> int
val fault_count : t -> int

val core_pkru : t -> int -> Pkru.t
(** [core_pkru t c] reads core [c]'s PKRU register without switching to
    it (test/monitor introspection; never charges cycles). Raises
    [Invalid_argument] for an out-of-range core. *)

val scrub_pkru_key : t -> int -> key:int -> unit
(** [scrub_pkru_key t c ~key] denies [key] in core [c]'s PKRU and
    flushes that core's TLB — the shootdown a key-virtualisation
    eviction must deliver to every core still caching the evicted
    physical tag. Charge-free: the key multiplexer prices the wrpkru
    itself so the cost lands on the cubicle that triggered the
    eviction. A remote delivery ([c] not the current core) bumps
    {!shootdown_count}. No-op if the key is already denied there. *)

(** {1 Checked accessors} — used by untrusted component code. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_i64 : t -> int -> int64
val write_i64 : t -> int -> int64 -> unit

val read_bytes : t -> int -> int -> bytes
val write_bytes : t -> int -> bytes -> unit
val write_string : t -> int -> string -> unit

val memcpy : t -> dst:int -> src:int -> len:int -> unit
(** Checked copy within simulated memory. *)

val memset : t -> int -> int -> char -> unit
val fetch : t -> int -> int -> unit
(** [fetch t addr len] models instruction fetch (Exec access). *)

val check_range : t -> int -> int -> Fault.access -> unit
(** Check without transferring data (used to model DMA setup etc.). *)

(** {1 Privileged accessors} — monitor/loader/host-bridge only: bypass
    page-level and key checks but still charge memory cycles. *)

val priv_read_bytes : t -> int -> int -> bytes
val priv_write_bytes : t -> int -> bytes -> unit
val priv_write_string : t -> int -> string -> unit
val priv_blit : t -> dst:int -> src:int -> len:int -> unit
val priv_read_u32 : t -> int -> int
val priv_write_u32 : t -> int -> int -> unit

(** {1 Page-table management} — loader/monitor only. *)

val map_page : t -> int -> Page_table.perm -> key:int -> unit
(** Make page present with given permission and key (no pkey cost; used
    at load time). *)

val unmap_page : t -> int -> unit

val set_page_key : t -> int -> int -> unit
(** Runtime key reassignment: charges the pkey-set cost (the expensive
    [pkey_mprotect] path, ~1100 cycles). *)

val page_key : t -> int -> int
