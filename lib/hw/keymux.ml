(* Virtual protection keys multiplexed over the physical MPK tags.

   MPK gives the machine 16 keys; CubicleOS reserves one for the
   monitor (0) and one for shared cubicles (15), capping the system at
   14 isolated cubicles. The multiplexer lifts the cap libmpk-style:
   every isolated cubicle owns a *virtual* key (numbered from
   [Pkru.nkeys] so the two namespaces never collide) and the physical
   tags [lo..hi] become an LRU cache of key *bindings*. A cubicle's
   first access after losing its binding faults, the monitor's
   [pkru_for]/fault path calls {!phys_of}, and the binding is
   re-established — evicting the least-recently-used resident if the
   pool is full.

   Pricing: every fault-in charges [model.key_reassign] (libmpk's
   pkey_mprotect-based reassignment, the >=1100-cycle figure the paper
   cites). An eviction additionally walks the victim's pages (the
   monitor-installed hook retags them back to the monitor tag, charging
   [pkey_set] per page) and scrubs the evicted tag from every core's
   PKRU that still caches it — one [wrpkru] charge plus a TLB shootdown
   per core. Everything lands under the [Keymux] attribution category,
   billed to the cubicle whose fault-in triggered the eviction. *)

type stats = {
  mutable fault_ins : int;
  mutable evictions : int;
  mutable retag_pages : int;
  mutable key_shootdowns : int;
}

type t = {
  cpu : Cpu.t;
  lo : int;
  hi : int;
  owner : int array;  (* phys tag -> resident vkey, or -1 *)
  last_used : int array;  (* phys tag -> LRU tick (ticks are unique) *)
  binding : (int, int) Hashtbl.t;  (* vkey -> phys, residents only *)
  vkey_cid : (int, int) Hashtbl.t;  (* vkey -> owning cubicle *)
  mutable next_vkey : int;
  mutable free_vkeys : int list;
  mutable tick : int;
  mutable evict_hook : (cid:int -> vkey:int -> phys:int -> int) option;
  stats : stats;
}

let is_virtual k = k >= Pkru.nkeys

let create ?(lo = 1) ?(hi = Pkru.nkeys - 2) cpu =
  if lo < 0 || hi >= Pkru.nkeys || lo > hi then invalid_arg "Keymux.create: bad tag range";
  {
    cpu;
    lo;
    hi;
    owner = Array.make Pkru.nkeys (-1);
    last_used = Array.make Pkru.nkeys 0;
    binding = Hashtbl.create 64;
    vkey_cid = Hashtbl.create 64;
    next_vkey = Pkru.nkeys;
    free_vkeys = [];
    tick = 0;
    evict_hook = None;
    stats = { fault_ins = 0; evictions = 0; retag_pages = 0; key_shootdowns = 0 };
  }

let set_evict_hook t h = t.evict_hook <- h
let stats t = t.stats
let slots t = t.hi - t.lo + 1

let alloc t ~cid =
  let vkey =
    match t.free_vkeys with
    | v :: rest ->
        t.free_vkeys <- rest;
        v
    | [] ->
        let v = t.next_vkey in
        t.next_vkey <- v + 1;
        v
  in
  Hashtbl.replace t.vkey_cid vkey cid;
  vkey

let resident t vkey = Hashtbl.find_opt t.binding vkey
let resident_vkey t phys = if t.owner.(phys) >= 0 then Some t.owner.(phys) else None
let cid_of_vkey t vkey = Hashtbl.find_opt t.vkey_cid vkey

let residents t =
  let acc = ref [] in
  for k = t.hi downto t.lo do
    if t.owner.(k) >= 0 then acc := (k, t.owner.(k)) :: !acc
  done;
  !acc

let[@inline] touch t phys =
  t.tick <- t.tick + 1;
  t.last_used.(phys) <- t.tick

let emit t ev =
  let bus = Cpu.bus t.cpu in
  if Telemetry.Bus.tracing bus then Telemetry.Bus.emit bus ev

(* Scrub an evicted tag from every core still caching it: real MPK
   would deliver an IPI so each core rewrites its PKRU; we price one
   wrpkru per affected core and flush its TLB. A fully-permissive
   register is left alone — it belongs to trusted context (monitor
   boot, host-side test drivers), which retains universal access by
   definition; only narrowed registers hold a specific stale grant of
   the evicted tag that must be revoked before the tag is rebound. *)
let scrub_cores t ~phys =
  let cost = Cpu.cost t.cpu in
  for c = 0 to Cpu.ncores t.cpu - 1 do
    let pkru = Cpu.core_pkru t.cpu c in
    if pkru <> Pkru.all_allow && Pkru.can_read pkru phys then begin
      Cost.charge_cat cost Telemetry.Attrib.Keymux cost.Cost.model.Cost.wrpkru;
      Cpu.scrub_pkru_key t.cpu c ~key:phys;
      t.stats.key_shootdowns <- t.stats.key_shootdowns + 1
    end
  done

(* Drop a vkey's binding without the page-walk part of the eviction
   price: the caller is destroying the cubicle and scrubs/unmaps its
   pages itself, so there is nothing left to retag. The per-core PKRU
   scrub is NOT skippable, though — a core may still cache the tag
   from an earlier run of the dead cubicle, and the freed slot is
   about to be rebound; without the scrub that register would retain
   access to whatever binds the slot next (the aliasing [scrub_cores]
   exists to prevent). The physical slot becomes free and the vkey
   number is recycled for the next [alloc]. *)
let free t vkey =
  (match Hashtbl.find_opt t.binding vkey with
  | Some phys ->
      t.owner.(phys) <- -1;
      t.last_used.(phys) <- 0;
      Hashtbl.remove t.binding vkey;
      scrub_cores t ~phys
  | None -> ());
  if Hashtbl.mem t.vkey_cid vkey then begin
    Hashtbl.remove t.vkey_cid vkey;
    t.free_vkeys <- vkey :: t.free_vkeys
  end

let evict t ~phys =
  let vkey = t.owner.(phys) in
  let cid = match cid_of_vkey t vkey with Some c -> c | None -> -1 in
  Hashtbl.remove t.binding vkey;
  t.owner.(phys) <- -1;
  let pages = match t.evict_hook with Some h -> h ~cid ~vkey ~phys | None -> 0 in
  t.stats.evictions <- t.stats.evictions + 1;
  t.stats.retag_pages <- t.stats.retag_pages + pages;
  scrub_cores t ~phys;
  emit t (Telemetry.Event.Key_evict { cid; vkey; phys; pages })

let free_slot t =
  let found = ref (-1) in
  for k = t.hi downto t.lo do
    if t.owner.(k) = -1 then found := k
  done;
  !found

let lru_slot t =
  let best = ref t.lo in
  for k = t.lo + 1 to t.hi do
    if t.last_used.(k) < t.last_used.(!best) then best := k
  done;
  !best

let phys_of t vkey =
  if not (is_virtual vkey) then vkey
  else
    match Hashtbl.find_opt t.binding vkey with
    | Some phys ->
        touch t phys;
        phys
    | None ->
        if not (Hashtbl.mem t.vkey_cid vkey) then
          invalid_arg (Printf.sprintf "Keymux.phys_of: vkey %d not allocated" vkey);
        let slot =
          match free_slot t with
          | -1 ->
              let victim = lru_slot t in
              evict t ~phys:victim;
              victim
          | k -> k
        in
        let cost = Cpu.cost t.cpu in
        Cost.charge_cat cost Telemetry.Attrib.Keymux cost.Cost.model.Cost.key_reassign;
        t.owner.(slot) <- vkey;
        Hashtbl.replace t.binding vkey slot;
        touch t slot;
        t.stats.fault_ins <- t.stats.fault_ins + 1;
        let cid = match cid_of_vkey t vkey with Some c -> c | None -> -1 in
        emit t (Telemetry.Event.Key_fault_in { cid; vkey; phys = slot });
        slot
