(* Each simulated core owns its own PKRU register and software TLB (as
   the real hardware does); memory, page table and the cycle/telemetry
   sinks are shared. Execution is still one host thread: the scheduler
   interleaves thread slices and calls [set_core] before each, which
   swaps the architectural per-core state and routes cycle charges and
   events to that core's counters/track. *)

type core_state = {
  tlb : Tlb.t;
  mutable pkru : Pkru.t;
}

type t = {
  mem : Phys_mem.t;
  pt : Page_table.t;
  cost : Cost.t;
  bus : Telemetry.Bus.t;
  cores : core_state array;
  mutable cur : core_state;  (* == cores.(cur_core); cached for the fast path *)
  mutable cur_core : int;
  mutable mpk_enabled : bool;
  mutable exec_follows_access : bool;
  mutable handler : handler option;
  mutable in_handler : bool;
  mutable wrpkru_count : int;
  mutable fault_count : int;
  mutable shootdowns : int;  (* TLB invalidations delivered to remote cores *)
}

and handler = t -> Fault.t -> bool

let create ?(mem_bytes = 64 * 1024 * 1024) ?(ncores = 1) ?model () =
  if ncores < 1 then invalid_arg "Cpu.create: ncores must be >= 1";
  let mem = Phys_mem.create mem_bytes in
  let pt = Page_table.create (Phys_mem.npages mem) in
  let cores =
    Array.init ncores (fun _ ->
        { tlb = Tlb.create (Phys_mem.npages mem); pkru = Pkru.all_allow })
  in
  let cost = Cost.create ?model () in
  let bus = Telemetry.Bus.create ~now:(fun () -> Cost.cycles cost) () in
  let t =
    {
      mem;
      pt;
      cost;
      bus;
      cores;
      cur = cores.(0);
      cur_core = 0;
      mpk_enabled = false;
      exec_follows_access = false;
      handler = None;
      in_handler = false;
      wrpkru_count = 0;
      fault_count = 0;
      shootdowns = 0;
    }
  in
  (* Any page-table mutation — monitor retag, loader perm change, a
     test poking the table directly — drops the cached decision on
     every core: the cross-core TLB shootdown. Remote deliveries are
     counted so the bench can report shootdown traffic. *)
  Page_table.set_hook pt (fun p ->
      Array.iter (fun c -> Tlb.invalidate_page c.tlb p) t.cores;
      if Array.length t.cores > 1 then
        t.shootdowns <- t.shootdowns + Array.length t.cores - 1;
      if Telemetry.Bus.tracing bus then
        Telemetry.Bus.emit bus (Telemetry.Event.Tlb Telemetry.Event.Invalidate));
  t

let mem t = t.mem
let bus t = t.bus

let[@inline] emit_tlb_event t op =
  if t.bus.Telemetry.Bus.tracing then Telemetry.Bus.emit t.bus (Telemetry.Event.Tlb op)
let page_table t = t.pt
let cost t = t.cost
let tlb t = t.cur.tlb
let tlb_enabled t = Tlb.enabled t.cur.tlb
let set_tlb_enabled t b = Array.iter (fun c -> Tlb.set_enabled c.tlb b) t.cores
let npages t = Phys_mem.npages t.mem
let set_handler t h = t.handler <- h
let mpk_enabled t = t.mpk_enabled

let ncores t = Array.length t.cores
let core_id t = t.cur_core
let shootdown_count t = t.shootdowns

let set_core t c =
  if c < 0 || c >= Array.length t.cores then
    invalid_arg (Printf.sprintf "Cpu.set_core: no core %d (machine has %d)" c (ncores t));
  t.cur_core <- c;
  t.cur <- t.cores.(c);
  Cost.set_core t.cost c;
  Telemetry.Bus.set_core t.bus c

let flush_all_tlbs t =
  Array.iter (fun c -> Tlb.flush c.tlb) t.cores;
  emit_tlb_event t Telemetry.Event.Flush

let set_mpk_enabled t b =
  if b <> t.mpk_enabled then flush_all_tlbs t;
  t.mpk_enabled <- b

let exec_follows_access t = t.exec_follows_access

let set_exec_follows_access t b =
  if b <> t.exec_follows_access then flush_all_tlbs t;
  t.exec_follows_access <- b

let pkru t = t.cur.pkru

let wrpkru t v =
  Cost.charge_cat t.cost Telemetry.Attrib.Mpk t.cost.model.wrpkru;
  t.wrpkru_count <- t.wrpkru_count + 1;
  (* PKRU is core-local state: writing it flushes only this core's
     cached decisions; the other cores' registers are untouched. *)
  if v <> t.cur.pkru then begin
    Tlb.flush t.cur.tlb;
    emit_tlb_event t Telemetry.Event.Flush
  end;
  if t.bus.Telemetry.Bus.tracing then
    Telemetry.Bus.emit t.bus (Telemetry.Event.Pkru_write { value = v });
  t.cur.pkru <- v

let wrpkru_count t = t.wrpkru_count
let fault_count t = t.fault_count

let core_pkru t c =
  if c < 0 || c >= Array.length t.cores then
    invalid_arg (Printf.sprintf "Cpu.core_pkru: no core %d (machine has %d)" c (ncores t));
  t.cores.(c).pkru

(* Key-virtualisation shootdown: deny [key] in core [c]'s PKRU and drop
   that core's cached decisions. Deliberately charge-free — the key
   multiplexer prices the operation itself (a wrpkru under the Keymux
   attribution category) so eviction cost is billed to the cubicle
   whose fault-in triggered it, not to whoever happens to run on the
   scrubbed core. Remote deliveries count as shootdowns (the IPI). *)
let scrub_pkru_key t c ~key =
  if c < 0 || c >= Array.length t.cores then
    invalid_arg (Printf.sprintf "Cpu.scrub_pkru_key: no core %d (machine has %d)" c (ncores t));
  let core = t.cores.(c) in
  let v = Pkru.deny core.pkru key in
  if v <> core.pkru then begin
    core.pkru <- v;
    Tlb.flush core.tlb;
    if c <> t.cur_core then t.shootdowns <- t.shootdowns + 1;
    emit_tlb_event t Telemetry.Event.Flush
  end

(* Permission check for one page; returns the fault if denied. *)
let check_page t page (access : Fault.access) : Fault.t option =
  let key = Page_table.key t.pt page in
  let mk reason = Some { Fault.addr = Addr.base_of_page page; access; key; reason } in
  if not (Page_table.present t.pt page) then mk Fault.Not_present
  else if not (Page_table.allows (Page_table.perm t.pt page) access) then mk Fault.Page_perm
  else if not t.mpk_enabled then None
  else
    match access with
    | Fault.Read -> if Pkru.can_read t.cur.pkru key then None else mk Fault.Key_perm
    | Fault.Write -> if Pkru.can_write t.cur.pkru key then None else mk Fault.Key_perm
    | Fault.Exec ->
        (* Stock MPK does not check instruction fetch against PKRU; the
           paper's hardware modification makes access-disable imply
           no-execute. *)
        if t.exec_follows_access && not (Pkru.can_read t.cur.pkru key) then mk Fault.Key_perm
        else None

let ev_access : Fault.access -> Telemetry.Event.access = function
  | Fault.Read -> Telemetry.Event.Read
  | Fault.Write -> Telemetry.Event.Write
  | Fault.Exec -> Telemetry.Event.Exec

let ev_reason : Fault.reason -> Telemetry.Event.fault_reason = function
  | Fault.Not_present -> Telemetry.Event.Not_present
  | Fault.Page_perm -> Telemetry.Event.Page_perm
  | Fault.Key_perm -> Telemetry.Event.Key_perm

let deliver_fault t fault =
  t.fault_count <- t.fault_count + 1;
  Cost.charge_cat t.cost Telemetry.Attrib.Fault t.cost.model.fault_trap;
  let resolved =
    match t.handler with
    | Some h when not t.in_handler ->
        t.in_handler <- true;
        let resolved = try h t fault with e -> t.in_handler <- false; raise e in
        t.in_handler <- false;
        resolved
    | _ -> false
  in
  if t.bus.Telemetry.Bus.tracing then
    Telemetry.Bus.emit t.bus
      (Telemetry.Event.Fault
         {
           addr = fault.Fault.addr;
           access = ev_access fault.Fault.access;
           key = fault.Fault.key;
           reason = ev_reason fault.Fault.reason;
           resolved;
         });
  resolved

(* Check one page, delivering faults to the handler and retrying while
   the handler keeps resolving them (a resolved fault may still leave a
   different denial in place, e.g. page-level perms). The TLB fast path
   skips only the re-walk of an already-allowed decision; denials are
   never cached, and no simulated cycles are charged on either path, so
   fault behaviour and cycle counts are identical with the TLB off. *)
let rec ensure_page t page access ~addr =
  let tlb = t.cur.tlb in
  if Tlb.probe tlb page access then begin
    Tlb.record_hit tlb;
    emit_tlb_event t Telemetry.Event.Hit
  end
  else begin
    Tlb.record_miss tlb;
    if Tlb.enabled tlb then emit_tlb_event t Telemetry.Event.Miss;
    match check_page t page access with
    | None -> Tlb.fill tlb page access
    | Some f -> (
        let f = { f with Fault.addr } in
        if deliver_fault t f then
          (* Retry once after resolution; if the handler did not actually
             fix the permission this raises. *)
          match check_page t page access with
          | None -> Tlb.fill tlb page access
          | Some f' -> Fault.violation { f' with Fault.addr }
        else Fault.violation f)
  end

and check_range t addr len access =
  if len < 0 then invalid_arg "Cpu.check_range: negative length";
  if addr < 0 || addr + len > Phys_mem.size t.mem then
    Fault.violation
      { Fault.addr; access; key = 0; reason = Fault.Not_present }
  else if len > 0 then begin
    let first = Addr.page_of addr and last = Addr.page_of (addr + len - 1) in
    for p = first to last do
      ensure_page t p access ~addr:(max addr (Addr.base_of_page p))
    done
  end

(* Accessor fast path: the whole access lies in one page whose decision
   is cached-allowed in the current core's TLB. One offset test, one
   array load, one generation compare — everything [check_range] would
   establish is implied: the cached allow proves presence, page perms
   and key permission (kept current by invalidation), and a live entry
   proves the page is within physical memory. [bit] is the {!Tlb} allow
   bit of the access kind (1 = Read, 2 = Write, 4 = Exec); the probe is
   open-coded on the exposed TLB representation to keep this
   call-free. *)
let[@inline] fast t a len bit =
  let tlb = t.cur.tlb in
  tlb.Tlb.enabled
  && a >= 0
  && len >= 0
  && Addr.offset a + len <= Addr.page_size
  && (let p = Addr.page_of a in
      p < Array.length tlb.Tlb.entries
      &&
      let e = Array.unsafe_get tlb.Tlb.entries p in
      e lsr 3 = tlb.Tlb.gen && e land bit <> 0)
  &&
  (tlb.Tlb.hits <- tlb.Tlb.hits + 1;
   if t.bus.Telemetry.Bus.tracing then
     Telemetry.Bus.emit t.bus (Telemetry.Event.Tlb Telemetry.Event.Hit);
   true)

let read_u8 t a =
  if fast t a 1 1 then begin
    Cost.charge_mem t.cost 1;
    Phys_mem.unsafe_get_u8 t.mem a
  end
  else begin
    check_range t a 1 Fault.Read;
    Cost.charge_mem t.cost 1;
    Phys_mem.get_u8 t.mem a
  end

let write_u8 t a v =
  if fast t a 1 2 then begin
    Cost.charge_mem t.cost 1;
    Phys_mem.unsafe_set_u8 t.mem a v
  end
  else begin
    check_range t a 1 Fault.Write;
    Cost.charge_mem t.cost 1;
    Phys_mem.set_u8 t.mem a v
  end

let read_u16 t a =
  if fast t a 2 1 then begin
    Cost.charge_mem t.cost 2;
    Phys_mem.unsafe_get_u16 t.mem a
  end
  else begin
    check_range t a 2 Fault.Read;
    Cost.charge_mem t.cost 2;
    Phys_mem.get_u16 t.mem a
  end

let write_u16 t a v =
  if fast t a 2 2 then begin
    Cost.charge_mem t.cost 2;
    Phys_mem.unsafe_set_u16 t.mem a v
  end
  else begin
    check_range t a 2 Fault.Write;
    Cost.charge_mem t.cost 2;
    Phys_mem.set_u16 t.mem a v
  end

let read_u32 t a =
  if fast t a 4 1 then begin
    Cost.charge_mem t.cost 4;
    Phys_mem.unsafe_get_u32 t.mem a
  end
  else begin
    check_range t a 4 Fault.Read;
    Cost.charge_mem t.cost 4;
    Phys_mem.get_u32 t.mem a
  end

let write_u32 t a v =
  if fast t a 4 2 then begin
    Cost.charge_mem t.cost 4;
    Phys_mem.unsafe_set_u32 t.mem a v
  end
  else begin
    check_range t a 4 Fault.Write;
    Cost.charge_mem t.cost 4;
    Phys_mem.set_u32 t.mem a v
  end

let read_i64 t a =
  if not (fast t a 8 1) then check_range t a 8 Fault.Read;
  Cost.charge_mem t.cost 8;
  Phys_mem.get_i64 t.mem a

let write_i64 t a v =
  if not (fast t a 8 2) then check_range t a 8 Fault.Write;
  Cost.charge_mem t.cost 8;
  Phys_mem.set_i64 t.mem a v

let read_bytes t a len =
  if not (fast t a len 1) then check_range t a len Fault.Read;
  Cost.charge_mem t.cost len;
  Phys_mem.read_bytes t.mem a len

let write_bytes t a b =
  let len = Bytes.length b in
  if not (fast t a len 2) then check_range t a len Fault.Write;
  Cost.charge_mem t.cost len;
  Phys_mem.write_bytes t.mem a b

let write_string t a s =
  let len = String.length s in
  if not (fast t a len 2) then check_range t a len Fault.Write;
  Cost.charge_mem t.cost len;
  Phys_mem.write_string t.mem a s

let memcpy t ~dst ~src ~len =
  if not (fast t src len 1) then check_range t src len Fault.Read;
  if not (fast t dst len 2) then check_range t dst len Fault.Write;
  Cost.charge_mem t.cost (2 * len);
  Phys_mem.blit t.mem ~src ~dst ~len

let memset t a len c =
  if not (fast t a len 2) then check_range t a len Fault.Write;
  Cost.charge_mem t.cost len;
  Phys_mem.fill t.mem a len c

let fetch t a len =
  if not (fast t a len 4) then check_range t a len Fault.Exec

let priv_read_bytes t a len =
  Cost.charge_mem t.cost len;
  Phys_mem.read_bytes t.mem a len

let priv_write_bytes t a b =
  Cost.charge_mem t.cost (Bytes.length b);
  Phys_mem.write_bytes t.mem a b

let priv_write_string t a s =
  Cost.charge_mem t.cost (String.length s);
  Phys_mem.write_string t.mem a s

let priv_blit t ~dst ~src ~len =
  Cost.charge_mem t.cost (2 * len);
  Phys_mem.blit t.mem ~src ~dst ~len

let priv_read_u32 t a =
  Cost.charge_mem t.cost 4;
  Phys_mem.get_u32 t.mem a

let priv_write_u32 t a v =
  Cost.charge_mem t.cost 4;
  Phys_mem.set_u32 t.mem a v

let map_page t p perm ~key =
  Page_table.set_present t.pt p true;
  Page_table.set_perm t.pt p perm;
  Page_table.set_key t.pt p key

let unmap_page t p = Page_table.set_present t.pt p false

let set_page_key t p k =
  Cost.charge_cat t.cost Telemetry.Attrib.Mpk t.cost.model.pkey_set;
  Page_table.set_key t.pt p k

let page_key t p = Page_table.key t.pt p
