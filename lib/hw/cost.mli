(** Cycle cost model for the simulated machine.

    All performance results in the benchmark harness are simulated cycle
    counts accumulated here. The constants are calibrated against the
    figures the paper itself cites (libmpk numbers for [wrpkru] and key
    assignment; see EXPERIMENTS.md for the calibration of the IPC costs
    used by the microkernel baselines). *)

type model = {
  mem_word : int;  (** per 8 bytes moved by a load/store/blit *)
  mem_op : int;  (** fixed cost per memory operation *)
  wrpkru : int;  (** writing the PKRU register (paper: ~20 cycles) *)
  rdpkru : int;  (** reading the PKRU register *)
  pkey_set : int;  (** assigning an MPK key to a page (paper: >1100 cycles) *)
  key_reassign : int;
      (** virtual-key fault-in: rebinding a cubicle's virtual key to a
          physical MPK tag (libmpk's pkey_mprotect-based reassignment,
          ≈1100 cycles per the figure the paper cites) — charged once
          per fault-in on top of the per-page retag cost *)
  fault_trap : int;  (** delivering a protection fault to a user handler *)
  acl_check : int;
      (** walking the owner's window descriptor arrays and checking the
          cubicle bitmask during trap-and-map (full CubicleOS only; the
          "w/o ACLs" configuration maps without checking) *)
  tramp_fixed : int;  (** fixed cost of a cross-cubicle call trampoline *)
  call_direct : int;  (** a plain function call (shared cubicle / baseline) *)
  stack_switch : int;  (** switching per-cubicle stacks in a trampoline *)
  window_op : int;  (** one window ACL operation (add/open/close) *)
  syscall : int;  (** a host-OS (Linux) system call round trip *)
  unikraft_op : int;
      (** extra per-OS-operation platform inefficiency of the library OS
          running in user mode (linuxu platform), relative to native Linux *)
}

val default_model : model

type t = {
  mutable cycles : int;
  mutable mem_bytes : int;  (** total bytes moved, for reporting *)
  mutable per_core : int array;
      (** per-core cycle counters: each charge lands on the current
          core's counter as well as [cycles], so the per-core counters
          always sum exactly to [cycles]. On an N-core run the makespan
          is the {e maximum} per-core counter, which is what the SMP
          scaling curve measures. *)
  mutable cur_core : int;
  model : model;
  attrib : Telemetry.Attrib.t;
      (** attribution sink: every charge is billed to the currently
          executing cubicle under a cost category, so the per-cubicle
          table always sums to [cycles]. The monitor keeps the current
          cubicle up to date via [Telemetry.Attrib.set_current]. *)
}

val create : ?model:model -> unit -> t

val reset : t -> unit
(** Also resets the per-core counters and the attribution table (their
    totals must track [cycles]). *)

val attrib : t -> Telemetry.Attrib.t

val set_core : t -> int -> unit
(** Route subsequent charges to [core]'s counter (growing the array on
    demand) and move the attribution table's core plane with it. Called
    by [Hw.Cpu.set_core]; never charges cycles itself. *)

val core : t -> int
val ncores : t -> int
val core_cycles : t -> int -> int

val charge : t -> int -> unit
(** [charge t cycles] adds raw cycles, attributed to category
    [Other]. *)

val charge_cat : t -> Telemetry.Attrib.category -> int -> unit
(** [charge_cat t cat cycles] adds raw cycles attributed to [cat]. *)

val charge_mem : t -> int -> unit
(** [charge_mem t len] charges for moving [len] bytes (category
    [Memcpy]). *)

val cycles : t -> int

val cycles_per_ms : float
(** Conversion used when reporting latencies: the paper's testbed is a
    2.2 GHz Xeon, so 2.2e6 cycles per millisecond. *)

val cycles_per_us : float
(** [cycles_per_ms /. 1000.] — the conversion the trace exporters take. *)

val to_ms : int -> float
val to_us : int -> float
