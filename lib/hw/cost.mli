(** Cycle cost model for the simulated machine.

    All performance results in the benchmark harness are simulated cycle
    counts accumulated here. The constants are calibrated against the
    figures the paper itself cites (libmpk numbers for [wrpkru] and key
    assignment; see EXPERIMENTS.md for the calibration of the IPC costs
    used by the microkernel baselines). *)

type model = {
  mem_word : int;  (** per 8 bytes moved by a load/store/blit *)
  mem_op : int;  (** fixed cost per memory operation *)
  wrpkru : int;  (** writing the PKRU register (paper: ~20 cycles) *)
  rdpkru : int;  (** reading the PKRU register *)
  pkey_set : int;  (** assigning an MPK key to a page (paper: >1100 cycles) *)
  fault_trap : int;  (** delivering a protection fault to a user handler *)
  acl_check : int;
      (** walking the owner's window descriptor arrays and checking the
          cubicle bitmask during trap-and-map (full CubicleOS only; the
          "w/o ACLs" configuration maps without checking) *)
  tramp_fixed : int;  (** fixed cost of a cross-cubicle call trampoline *)
  call_direct : int;  (** a plain function call (shared cubicle / baseline) *)
  stack_switch : int;  (** switching per-cubicle stacks in a trampoline *)
  window_op : int;  (** one window ACL operation (add/open/close) *)
  syscall : int;  (** a host-OS (Linux) system call round trip *)
  unikraft_op : int;
      (** extra per-OS-operation platform inefficiency of the library OS
          running in user mode (linuxu platform), relative to native Linux *)
}

val default_model : model

type t = {
  mutable cycles : int;
  mutable mem_bytes : int;  (** total bytes moved, for reporting *)
  model : model;
  attrib : Telemetry.Attrib.t;
      (** attribution sink: every charge is billed to the currently
          executing cubicle under a cost category, so the per-cubicle
          table always sums to [cycles]. The monitor keeps the current
          cubicle up to date via [Telemetry.Attrib.set_current]. *)
}

val create : ?model:model -> unit -> t

val reset : t -> unit
(** Also resets the attribution table (its total must track [cycles]). *)

val attrib : t -> Telemetry.Attrib.t

val charge : t -> int -> unit
(** [charge t cycles] adds raw cycles, attributed to category
    [Other]. *)

val charge_cat : t -> Telemetry.Attrib.category -> int -> unit
(** [charge_cat t cat cycles] adds raw cycles attributed to [cat]. *)

val charge_mem : t -> int -> unit
(** [charge_mem t len] charges for moving [len] bytes (category
    [Memcpy]). *)

val cycles : t -> int

val cycles_per_ms : float
(** Conversion used when reporting latencies: the paper's testbed is a
    2.2 GHz Xeon, so 2.2e6 cycles per millisecond. *)

val cycles_per_us : float
(** [cycles_per_ms /. 1000.] — the conversion the trace exporters take. *)

val to_ms : int -> float
val to_us : int -> float
