(** Raw simulated physical memory: a flat byte array with unchecked
    accessors. All permission checking lives in {!Cpu}; only trusted
    code (monitor, loader, host bridge) touches this module directly. *)

type t

val create : int -> t
(** [create bytes] allocates [bytes] of zeroed memory, rounded up to a
    whole number of pages. *)

val size : t -> int
val npages : t -> int

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit

(** Unchecked scalar accessors for callers that have already proven the
    access in-bounds — the CPU's TLB fast path only. Little-endian,
    like their checked counterparts; the u32 variants avoid Int32
    boxing. *)

val unsafe_get_u8 : t -> int -> int
val unsafe_set_u8 : t -> int -> int -> unit
val unsafe_get_u16 : t -> int -> int
val unsafe_set_u16 : t -> int -> int -> unit
val unsafe_get_u32 : t -> int -> int
val unsafe_set_u32 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit

val read_bytes : t -> int -> int -> bytes
(** [read_bytes t addr len] copies [len] bytes out of simulated memory. *)

val write_bytes : t -> int -> bytes -> unit
val write_string : t -> int -> string -> unit

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Copy within simulated memory (handles overlap like [memmove]). *)

val fill : t -> int -> int -> char -> unit
