type model = {
  mem_word : int;
  mem_op : int;
  wrpkru : int;
  rdpkru : int;
  pkey_set : int;
  key_reassign : int;
  fault_trap : int;
  acl_check : int;
  tramp_fixed : int;
  call_direct : int;
  stack_switch : int;
  window_op : int;
  syscall : int;
  unikraft_op : int;
}

let default_model =
  {
    mem_word = 1;
    mem_op = 2;
    wrpkru = 20;
    rdpkru = 1;
    pkey_set = 1100;
    key_reassign = 1100;
    fault_trap = 800;
    acl_check = 600;
    tramp_fixed = 40;
    call_direct = 5;
    stack_switch = 30;
    window_op = 30;
    syscall = 700;
    unikraft_op = 6000;
  }

type t = {
  mutable cycles : int;
  mutable mem_bytes : int;
  mutable per_core : int array;  (* per-core share of [cycles]; always sums to it *)
  mutable cur_core : int;
  model : model;
  attrib : Telemetry.Attrib.t;
}

let create ?(model = default_model) () =
  {
    cycles = 0;
    mem_bytes = 0;
    per_core = [| 0 |];
    cur_core = 0;
    model;
    attrib = Telemetry.Attrib.create ();
  }

let reset t =
  t.cycles <- 0;
  t.mem_bytes <- 0;
  Array.fill t.per_core 0 (Array.length t.per_core) 0;
  Telemetry.Attrib.reset t.attrib

let attrib t = t.attrib

let set_core t core =
  if core < 0 then invalid_arg "Cost.set_core: negative core id";
  let n = Array.length t.per_core in
  if core >= n then begin
    let a = Array.make (core + 1) 0 in
    Array.blit t.per_core 0 a 0 n;
    t.per_core <- a
  end;
  t.cur_core <- core;
  Telemetry.Attrib.set_core t.attrib core

let core t = t.cur_core
let ncores t = Array.length t.per_core
let core_cycles t core = if core >= 0 && core < Array.length t.per_core then t.per_core.(core) else 0

(* [cur_core < Array.length per_core] is maintained by [set_core], so
   the unsafe accesses below stay in bounds. *)
let[@inline] bump t n =
  t.cycles <- t.cycles + n;
  Array.unsafe_set t.per_core t.cur_core (Array.unsafe_get t.per_core t.cur_core + n)

let[@inline] charge_cat t cat n =
  bump t n;
  Telemetry.Attrib.charge t.attrib cat n

let[@inline] charge t n = charge_cat t Telemetry.Attrib.Other n

let[@inline] charge_mem t len =
  t.mem_bytes <- t.mem_bytes + len;
  let c = t.model.mem_op + (((len + 7) lsr 3) * t.model.mem_word) in
  bump t c;
  Telemetry.Attrib.charge t.attrib Telemetry.Attrib.Memcpy c

let cycles t = t.cycles
let cycles_per_ms = 2.2e6
let cycles_per_us = cycles_per_ms /. 1000.
let to_ms c = float_of_int c /. cycles_per_ms
let to_us c = float_of_int c /. cycles_per_us
