type model = {
  mem_word : int;
  mem_op : int;
  wrpkru : int;
  rdpkru : int;
  pkey_set : int;
  fault_trap : int;
  acl_check : int;
  tramp_fixed : int;
  call_direct : int;
  stack_switch : int;
  window_op : int;
  syscall : int;
  unikraft_op : int;
}

let default_model =
  {
    mem_word = 1;
    mem_op = 2;
    wrpkru = 20;
    rdpkru = 1;
    pkey_set = 1100;
    fault_trap = 800;
    acl_check = 600;
    tramp_fixed = 40;
    call_direct = 5;
    stack_switch = 30;
    window_op = 30;
    syscall = 700;
    unikraft_op = 6000;
  }

type t = {
  mutable cycles : int;
  mutable mem_bytes : int;
  model : model;
  attrib : Telemetry.Attrib.t;
}

let create ?(model = default_model) () =
  { cycles = 0; mem_bytes = 0; model; attrib = Telemetry.Attrib.create () }

let reset t =
  t.cycles <- 0;
  t.mem_bytes <- 0;
  Telemetry.Attrib.reset t.attrib

let attrib t = t.attrib

let[@inline] charge_cat t cat n =
  t.cycles <- t.cycles + n;
  Telemetry.Attrib.charge t.attrib cat n

let[@inline] charge t n = charge_cat t Telemetry.Attrib.Other n

let[@inline] charge_mem t len =
  t.mem_bytes <- t.mem_bytes + len;
  let c = t.model.mem_op + (((len + 7) lsr 3) * t.model.mem_word) in
  t.cycles <- t.cycles + c;
  Telemetry.Attrib.charge t.attrib Telemetry.Attrib.Memcpy c

let cycles t = t.cycles
let cycles_per_ms = 2.2e6
let cycles_per_us = cycles_per_ms /. 1000.
let to_ms c = float_of_int c /. cycles_per_ms
let to_us c = float_of_int c /. cycles_per_us
