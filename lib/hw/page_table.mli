(** Per-page metadata of the simulated MMU: presence, page-level R/W/X
    permissions, and the 4-bit MPK protection key.

    Page-level permissions model the page-table bits that only the
    CubicleOS loader may set (execute-only code pages, read-only data),
    while the key models the MPK tag that the monitor reassigns during
    trap-and-map. *)

type perm = { r : bool; w : bool; x : bool }

val perm_none : perm
val perm_r : perm
val perm_rw : perm
val perm_x : perm
(** Execute-only, as CubicleOS sets on code pages. *)

val perm_rx : perm

type t

val create : int -> t
(** [create npages] creates a table with every page absent, key 0. *)

val npages : t -> int

val set_hook : t -> (int -> unit) -> unit
(** [set_hook t f] installs [f] to be called with the page number after
    every entry mutation ([set_present], [set_perm], [set_key]),
    whoever performs it. {!Cpu} uses this to invalidate its software
    TLB; there is a single hook (last install wins). *)

val present : t -> int -> bool
val set_present : t -> int -> bool -> unit
val perm : t -> int -> perm
val set_perm : t -> int -> perm -> unit
val key : t -> int -> int
val set_key : t -> int -> int -> unit

val allows : perm -> Fault.access -> bool
(** [allows p a] is whether page-level permission [p] admits access
    kind [a]. *)
