(** The PKRU register: per-thread access permissions for the 16 MPK keys.

    Two bits per key, exactly as in the Intel SDM: bit [2k] is AD
    (access disable), bit [2k+1] is WD (write disable). A key with AD set
    can neither be read nor written; a key with only WD set is read-only.

    Values are immutable ints; the machine's live register is only ever
    installed through {!Cpu.wrpkru}, which is therefore the single
    point where PKRU changes flush the software TLB ({!Tlb}). *)

type t = int
(** 32-bit register value. *)

val nkeys : int
(** Number of protection keys (16). *)

val all_allow : t
(** Every key readable and writable (register value 0). *)

val all_deny : t
(** Every key fully disabled. *)

val deny : t -> int -> t
(** [deny r k] disables all access to key [k]. *)

val allow : t -> int -> t
(** [allow r k] grants read and write access to key [k]. *)

val allow_read_only : t -> int -> t
(** [allow_read_only r k] grants read access to key [k] and disables
    writes. *)

val can_read : t -> int -> bool
val can_write : t -> int -> bool

val of_keys : int list -> t
(** [of_keys ks] denies everything except read/write on the keys in
    [ks]. *)

val pp : Format.formatter -> t -> unit
