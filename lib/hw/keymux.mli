(** Virtual protection keys multiplexed over the physical MPK tags.

    Lifts MPK's 16-key limit the way libmpk does: each isolated cubicle
    owns a {e virtual} key (numbered from [Pkru.nkeys] up, so the
    virtual and physical namespaces never collide) and the physical
    tags [lo..hi] form an LRU cache of bindings. {!phys_of} is the
    fault-in: it returns the virtual key's current physical tag,
    binding it on demand and evicting the least-recently-used resident
    when the pool is full.

    An eviction walks the victim's pages back to the monitor tag (via
    the monitor-installed {!set_evict_hook}, priced per page), scrubs
    the tag from every core's PKRU still caching it (one wrpkru charge
    and a TLB shootdown per core), and every fault-in charges the
    libmpk-style reassignment cost — all under the [Keymux] attribution
    category, billed to the cubicle whose fault-in triggered the work.

    The multiplexer never touches page metadata itself; the owning
    monitor supplies the page walk through the hook. *)

type stats = {
  mutable fault_ins : int;  (** virtual-key bindings established (incl. re-binds) *)
  mutable evictions : int;  (** residents evicted to free a physical tag *)
  mutable retag_pages : int;  (** pages retagged back to the monitor by evictions *)
  mutable key_shootdowns : int;
      (** per-core PKRU scrubs delivered when evicting a tag *)
}

type t

val create : ?lo:int -> ?hi:int -> Cpu.t -> t
(** [create cpu] manages physical tags [lo..hi] (default 1..14 — all
    tags except the monitor's 0 and the shared 15). Raises
    [Invalid_argument] on an empty or out-of-range tag interval. *)

val is_virtual : int -> bool
(** [is_virtual k] — keys >= [Pkru.nkeys] are virtual. *)

val slots : t -> int
(** Size of the physical tag pool. *)

val set_evict_hook : t -> (cid:int -> vkey:int -> phys:int -> int) option -> unit
(** The monitor's page walk: called with the victim's cubicle, virtual
    key and (former) physical tag; must retag the victim's
    still-resident pages back to the monitor tag — charging the
    per-page reassignment cost itself — and return how many pages it
    retagged. *)

val alloc : t -> cid:int -> int
(** [alloc t ~cid] hands out a fresh virtual key owned by cubicle
    [cid], recycling numbers released by {!free}. The key is not yet
    resident; the first {!phys_of} faults it in. *)

val free : t -> int -> unit
(** [free t vkey] releases a virtual key at cubicle teardown: drops its
    binding (without the page-walk eviction price — the caller scrubs
    and unmaps the dead cubicle's pages itself), scrubs the freed tag
    from every core's PKRU still caching it (so the recycled slot's
    next owner cannot be aliased by a stale register) and recycles the
    key number. Idempotent. *)

val phys_of : t -> int -> int
(** [phys_of t vkey] — the fault-in. Physical keys pass through
    untouched; a resident virtual key is returned (and its LRU
    position refreshed); a non-resident one is bound to a free
    physical tag, evicting the LRU resident if none is free. Raises
    [Invalid_argument] for a virtual key not handed out by {!alloc}. *)

val resident : t -> int -> int option
(** Side-effect-free: the physical tag [vkey] is currently bound to,
    if any. Never faults in, never touches LRU state. *)

val resident_vkey : t -> int -> int option
(** [resident_vkey t phys] — the virtual key resident at physical tag
    [phys], if any. *)

val cid_of_vkey : t -> int -> int option

val residents : t -> (int * int) list
(** All live [(phys, vkey)] bindings, ascending physical tag. *)

val stats : t -> stats
