(* Software TLB: a direct-mapped per-page cache of "access kind ->
   allowed" decisions, keyed on a global permission generation.

   Each entry packs (generation lsl 3) lor allow_bits, where the allow
   bits are 1 = Read, 2 = Write, 4 = Exec. An entry is live only while
   its generation equals the TLB's current generation, so a global
   flush is a single integer increment; per-page invalidation zeroes
   the entry (generation 0 is never current).

   Only {e allow} decisions are cached — denials always take the slow
   path so trap-and-map fault delivery is unchanged. The TLB saves host
   wall-clock only: no simulated cycles are charged or skipped here. *)

type t = {
  mutable gen : int;
  entries : int array;
  mutable enabled : bool;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable invalidations : int;
}

let access_bit (a : Fault.access) =
  match a with Fault.Read -> 1 | Fault.Write -> 2 | Fault.Exec -> 4

let create npages =
  {
    gen = 1;
    entries = Array.make npages 0;
    enabled = true;
    hits = 0;
    misses = 0;
    flushes = 0;
    invalidations = 0;
  }

let enabled t = t.enabled

let flush t =
  t.gen <- t.gen + 1;
  t.flushes <- t.flushes + 1

let set_enabled t b =
  (* Flush on re-enable so decisions cached before a disabled interval
     can never be trusted (mutation hooks still fire while disabled,
     but this keeps enable/disable trivially safe). *)
  if b && not t.enabled then flush t;
  t.enabled <- b

let invalidate_page t p =
  if p >= 0 && p < Array.length t.entries then begin
    t.entries.(p) <- 0;
    t.invalidations <- t.invalidations + 1
  end

(* The fast path: one array load, one generation compare, one bit
   test. Pure — callers account the lookup with [record_hit] /
   [record_miss] so a single access is counted exactly once even when
   it probes both the accessor fast path and the page walk. *)
let[@inline] probe t p access =
  t.enabled
  && p < Array.length t.entries
  &&
  let e = Array.unsafe_get t.entries p in
  e lsr 3 = t.gen && e land access_bit access <> 0

let[@inline] record_hit t = t.hits <- t.hits + 1
let[@inline] record_miss t = if t.enabled then t.misses <- t.misses + 1

let fill t p access =
  if t.enabled then begin
    let e = t.entries.(p) in
    let live_bits = if e lsr 3 = t.gen then e land 0b111 else 0 in
    t.entries.(p) <- (t.gen lsl 3) lor live_bits lor access_bit access
  end

let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes
let invalidations t = t.invalidations

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0;
  t.invalidations <- 0
