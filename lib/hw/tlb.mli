(** Software TLB for the simulated MMU.

    Real MPK hardware amortises page-table and PKRU permission checks
    through the TLB; this module does the same for the simulator's hot
    loop, caching per-page "access kind → allowed" decisions so
    {!Cpu.read_u8} and friends become one array load plus a generation
    compare instead of a full page walk.

    Invariants the owner ({!Cpu}) must maintain:
    - any per-page mutation (key, perm, presence) invalidates that page;
    - any global permission change (PKRU write, MPK enable toggle,
      exec-follows-access toggle) bumps the generation, invalidating
      every entry at once.

    The TLB affects host wall-clock only. Simulated cycle counts, fault
    counts and wrpkru counts are identical with the TLB on or off. *)

type t = {
  mutable gen : int;  (** current permission generation; entries from
                          older generations are dead. Never 0. *)
  entries : int array;  (** per page: [(gen lsl 3) lor allow_bits] with
                            allow bits 1 = Read, 2 = Write, 4 = Exec *)
  mutable enabled : bool;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable invalidations : int;
}
(** The representation is exposed so {!Cpu}'s accessor fast path can
    open-code the probe (one load, one compare, one bit test) without a
    cross-module call. Treat it as owned by {!Cpu}: all other code must
    go through the functions below. *)

val create : int -> t
(** [create npages] — all entries invalid, TLB enabled. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Disabling forces every access down the slow path (for benchmarking
    the TLB itself); re-enabling flushes. *)

val probe : t -> int -> Fault.access -> bool
(** [probe t page access] — true iff a live cached decision allows the
    access. Pure (no counter updates, safe on out-of-range pages);
    always false when disabled. *)

val record_hit : t -> unit

val record_miss : t -> unit
(** No-op while disabled, so a disabled TLB reports zero lookups. *)

val fill : t -> int -> Fault.access -> unit
(** Record that [access] on [page] is allowed under the current
    generation (called from the slow path after a full check passes). *)

val invalidate_page : t -> int -> unit
(** Drop the cached decision for one page (out-of-range pages are
    ignored, matching page-table hook semantics). *)

val flush : t -> unit
(** Invalidate every entry by bumping the permission generation. *)

(** {1 Counters} *)

val hits : t -> int
val misses : t -> int
val flushes : t -> int
val invalidations : t -> int

val hit_rate : t -> float
(** Hits over lookups, in [0,1]; 0 when there were no lookups. *)

val reset_counters : t -> unit
