(** The deployment configurations of §6.5 (Figures 9 and 10), all
    exposing the same {!Minidb.Os_iface.t} so the identical database
    code runs on each:

    - [Linux]: native host baseline (syscall per op);
    - [Unikraft]: the library OS, unprotected (protection [None_]);
    - [Genode3 k]: SQLite | TIMER | CORE(VFS+RAMFS) over kernel [k] —
      one RPC per file system operation (Figure 9a);
    - [Genode4 k]: RAMFS split out of CORE — the CORE↔RAMFS boundary
      uses Genode's packet-stream protocol (an RPC plus a completion
      signal per 4 KiB packet), which is what makes the separation so
      expensive (Figure 9b);
    - [Cubicle3] / [Cubicle4]: CubicleOS with VFSCORE+RAMFS merged or
      separate, full protection. *)

type config =
  | Linux
  | Unikraft
  | Genode3 of Kernel.t
  | Genode4 of Kernel.t
  | Cubicle3
  | Cubicle4

val config_name : config -> string

type instance = { os : Minidb.Os_iface.t; mon : Cubicle.Monitor.t }

val make : ?mem_bytes:int -> config -> instance
(** A fresh system for the configuration. *)

val speedtest_run : ?n:int -> instance -> (Minidb.Speedtest.query * int) list
(** Run the speedtest suite on an existing instance (so the caller can
    attach telemetry — a latency sink, tracing — to [inst.mon]'s bus
    first). *)

val speedtest_total_cycles : ?n:int -> config -> int
(** Run the whole speedtest suite on a fresh instance and return total
    simulated cycles. *)

val speedtest_per_query : ?n:int -> config -> (Minidb.Speedtest.query * int) list
